// Tests for the pluggable selection-policy layer: registry integrity,
// baseline equivalence with core/selection, and the completeness contract
// (every policy admits exactly when an exact cover exists) checked
// differentially against the exhaustive helpers for every registered policy.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/selection.hpp"
#include "core/selection_policy.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace p2ps::core {
namespace {

Bandwidth r0() { return Bandwidth::playback_rate(); }

Bandwidth chosen_sum(const SelectionResult& result,
                     const std::vector<PeerClass>& classes) {
  Bandwidth sum = Bandwidth::zero();
  for (const std::size_t i : result.chosen) {
    sum += Bandwidth::class_offer(classes[i]);
  }
  return sum;
}

/// Runs `policy` over `classes` with a test-owned RNG substream, the way an
/// engine would (fresh SelectionContext, reused result buffer).
SelectionResult run_policy(const SelectionPolicy& policy,
                           const std::vector<PeerClass>& classes,
                           util::Rng* rng = nullptr,
                           Bandwidth target = Bandwidth::playback_rate()) {
  SelectionResult result;
  SelectionContext context;
  context.rng = rng;
  policy.select_into(result, classes, target, context);
  return result;
}

// ---------- registry ----------

TEST(PolicyRegistry, HasAtLeastFivePoliciesWithUniqueNames) {
  const auto policies = all_selection_policies();
  EXPECT_GE(policies.size(), 5u);
  std::set<std::string> names;
  for (const SelectionPolicy* policy : policies) {
    ASSERT_NE(policy, nullptr);
    EXPECT_FALSE(policy->name().empty());
    EXPECT_FALSE(policy->description().empty());
    names.insert(std::string(policy->name()));
  }
  EXPECT_EQ(names.size(), policies.size()) << "duplicate policy names";
}

TEST(PolicyRegistry, PaperBaselineIsFirst) {
  const auto policies = all_selection_policies();
  ASSERT_FALSE(policies.empty());
  EXPECT_EQ(policies.front(), &paper_dac_policy());
  EXPECT_EQ(paper_dac_policy().name(), "paper-dac");
  EXPECT_FALSE(paper_dac_policy().randomized());
}

TEST(PolicyRegistry, FindLocatesEveryPolicyByName) {
  for (const SelectionPolicy* policy : all_selection_policies()) {
    EXPECT_EQ(find_selection_policy(policy->name()), policy);
  }
}

TEST(PolicyRegistry, FindRejectsUnknownNames) {
  EXPECT_EQ(find_selection_policy("bogus"), nullptr);
  EXPECT_EQ(find_selection_policy(""), nullptr);
  EXPECT_EQ(find_selection_policy("PAPER-DAC"), nullptr);  // names are exact
}

TEST(PolicyRegistry, NamesStringListsEveryPolicy) {
  const std::string names = selection_policy_names();
  for (const SelectionPolicy* policy : all_selection_policies()) {
    EXPECT_NE(names.find(std::string(policy->name())), std::string::npos)
        << names;
  }
}

// ---------- baseline equivalence ----------

TEST(PaperDacPolicy, MatchesSelectExactCoverByteForByte) {
  util::Rng rng(2002);
  for (int round = 0; round < 300; ++round) {
    const std::size_t n = 1 + rng.uniform_below(12);
    std::vector<PeerClass> classes;
    for (std::size_t i = 0; i < n; ++i) {
      classes.push_back(static_cast<PeerClass>(1 + rng.uniform_below(5)));
    }
    const auto direct = select_exact_cover(classes);
    const auto via_policy = run_policy(paper_dac_policy(), classes);
    EXPECT_EQ(via_policy.chosen, direct.chosen) << "round " << round;
    EXPECT_EQ(via_policy.shortfall, direct.shortfall);
  }
}

TEST(MaxCardinalityPolicy, MatchesSelectMaxCardinalityCover) {
  util::Rng rng(7);
  const auto& policy = *find_selection_policy("max-cardinality");
  for (int round = 0; round < 300; ++round) {
    const std::size_t n = 1 + rng.uniform_below(10);
    std::vector<PeerClass> classes;
    for (std::size_t i = 0; i < n; ++i) {
      classes.push_back(static_cast<PeerClass>(1 + rng.uniform_below(4)));
    }
    const auto direct = select_max_cardinality_cover(classes);
    const auto via_policy = run_policy(policy, classes);
    EXPECT_EQ(via_policy.chosen, direct.chosen) << "round " << round;
    EXPECT_EQ(via_policy.shortfall, direct.shortfall);
  }
}

// ---------- completeness: every policy admits iff a cover exists ----------

class PolicyCompleteness
    : public ::testing::TestWithParam<const SelectionPolicy*> {};

TEST_P(PolicyCompleteness, AdmitsIffExactCoverExists) {
  const SelectionPolicy& policy = *GetParam();
  util::Rng master(2002);
  util::Rng selection_rng = master.substream("selection");
  util::Rng case_rng = master.substream("cases");
  for (int round = 0; round < 400; ++round) {
    const std::size_t n = 1 + case_rng.uniform_below(10);
    std::vector<PeerClass> classes;
    for (std::size_t i = 0; i < n; ++i) {
      classes.push_back(static_cast<PeerClass>(1 + case_rng.uniform_below(5)));
    }
    const auto result = run_policy(policy, classes, &selection_rng);
    const bool exhaustive = subset_sum_exists(classes, r0());
    ASSERT_EQ(result.success(), exhaustive)
        << policy.name() << " round " << round << " size " << n;
    if (result.success()) {
      // Chosen indices are valid, unique, and their offers sum exactly.
      std::set<std::size_t> unique(result.chosen.begin(), result.chosen.end());
      EXPECT_EQ(unique.size(), result.chosen.size());
      for (const std::size_t i : result.chosen) EXPECT_LT(i, n);
      EXPECT_EQ(chosen_sum(result, classes), r0()) << policy.name();
    } else {
      EXPECT_GT(result.shortfall, Bandwidth::zero());
    }
  }
}

TEST_P(PolicyCompleteness, RespectsCustomTargets) {
  const SelectionPolicy& policy = *GetParam();
  util::Rng master(5);
  util::Rng selection_rng = master.substream("selection");
  util::Rng case_rng = master.substream("cases");
  const Bandwidth target = Bandwidth::class_offer(1);  // R0/2
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = 1 + case_rng.uniform_below(8);
    std::vector<PeerClass> classes;
    for (std::size_t i = 0; i < n; ++i) {
      classes.push_back(static_cast<PeerClass>(1 + case_rng.uniform_below(5)));
    }
    const auto result = run_policy(policy, classes, &selection_rng, target);
    EXPECT_EQ(result.success(), subset_sum_exists(classes, target))
        << policy.name() << " round " << round;
    if (result.success()) {
      EXPECT_EQ(chosen_sum(result, classes), target);
    }
  }
}

TEST_P(PolicyCompleteness, ReusesTheResultBuffer) {
  // The _into discipline: a second call through the same buffer leaves no
  // residue from the first, even when the second pick is smaller/failing.
  const SelectionPolicy& policy = *GetParam();
  util::Rng master(11);
  util::Rng selection_rng = master.substream("selection");
  SelectionResult result;
  SelectionContext context;
  context.rng = &selection_rng;
  const std::vector<PeerClass> wide{3, 3, 3, 3, 2, 2, 1, 1};
  policy.select_into(result, wide, r0(), context);
  EXPECT_TRUE(result.success());

  const std::vector<PeerClass> impossible{3, 3};  // 1/8 + 1/8 < R0
  policy.select_into(result, impossible, r0(), context);
  EXPECT_FALSE(result.success());
  EXPECT_TRUE(result.chosen.empty() || result.chosen.size() <= 2);
  for (const std::size_t i : result.chosen) EXPECT_LT(i, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyCompleteness,
    ::testing::ValuesIn(all_selection_policies().begin(),
                        all_selection_policies().end()),
    [](const ::testing::TestParamInfo<const SelectionPolicy*>& info) {
      std::string name(info.param->name());
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------- policy-specific behavior ----------

TEST(FirstFitPolicy, TakesCandidatesInListOrder) {
  const auto& policy = *find_selection_policy("first-fit");
  // {1/4, 1/2, 1/4, 1/2}: first-fit takes indices 0, 1, 2 (1/4+1/2+1/4 = R0)
  // where paper-dac would take the two halves.
  const std::vector<PeerClass> classes{2, 1, 2, 1};
  const auto result = run_policy(policy, classes);
  EXPECT_TRUE(result.success());
  EXPECT_EQ(result.chosen, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(FirstFitPolicy, FallsBackWhenOrderWalkStrands) {
  const auto& policy = *find_selection_policy("first-fit");
  // In-order walk takes 1/8 then 1/2 then strands at 3/8 needing 3/8 more
  // with only 1/2 left; the greedy fallback still finds {1/2, 1/2}.
  const std::vector<PeerClass> classes{3, 1, 1};
  const auto result = run_policy(policy, classes);
  EXPECT_TRUE(result.success());
  EXPECT_EQ(chosen_sum(result, classes), r0());
}

TEST(ReciprocityPolicy, PrefersOffersNearTheRequesterClass) {
  const auto& policy = *find_selection_policy("reciprocity");
  SelectionResult result;
  SelectionContext context;
  context.requester_class = 2;
  // Requester of class 2 (offer 1/4): reciprocity ranks the class-2 peers
  // first, covering R0 with four quarters instead of paper-dac's two halves.
  const std::vector<PeerClass> classes{1, 2, 2, 1, 2, 2};
  policy.select_into(result, classes, r0(), context);
  EXPECT_TRUE(result.success());
  EXPECT_EQ(result.chosen, (std::vector<std::size_t>{1, 2, 4, 5}));
}

TEST(ReciprocityPolicy, BreaksDistanceTiesTowardLargerOffers) {
  const auto& policy = *find_selection_policy("reciprocity");
  SelectionResult result;
  SelectionContext context;
  context.requester_class = 2;
  // Classes 1 and 3 are both distance 1 from the requester; the tie breaks
  // toward the higher class (larger offer), so 1/2 is taken before 1/8.
  const std::vector<PeerClass> classes{3, 1, 1};
  policy.select_into(result, classes, r0(), context);
  EXPECT_TRUE(result.success());
  EXPECT_EQ(result.chosen, (std::vector<std::size_t>{1, 2}));
}

TEST(BandwidthProportionalPolicy, RequiresAnRng) {
  const auto& policy = *find_selection_policy("bandwidth-proportional");
  EXPECT_TRUE(policy.randomized());
  SelectionResult result;
  SelectionContext context;  // rng left null
  const std::vector<PeerClass> classes{1, 1};
  EXPECT_THROW(policy.select_into(result, classes, r0(), context),
               util::ContractViolation);
}

TEST(BandwidthProportionalPolicy, IsDeterministicForAFixedSeed) {
  const auto& policy = *find_selection_policy("bandwidth-proportional");
  const std::vector<PeerClass> classes{1, 2, 2, 1, 3, 3, 2, 1};
  const auto pick = [&] {
    util::Rng master(2002);
    util::Rng rng = master.substream("selection");
    std::vector<std::vector<std::size_t>> picks;
    for (int round = 0; round < 50; ++round) {
      const auto result = run_policy(policy, classes, &rng);
      EXPECT_TRUE(result.success());
      picks.push_back(result.chosen);
    }
    return picks;
  };
  EXPECT_EQ(pick(), pick());
}

TEST(PolicyDescriptions, BaselineAndAblationAreDeterministic) {
  for (const SelectionPolicy* policy : all_selection_policies()) {
    if (!policy->randomized()) {
      // Deterministic policies never touch the RNG: same pick with and
      // without one supplied.
      const std::vector<PeerClass> classes{2, 1, 3, 2, 1};
      util::Rng master(42);
      util::Rng rng = master.substream("selection");
      const auto without = run_policy(*policy, classes);
      const auto with = run_policy(*policy, classes, &rng);
      EXPECT_EQ(without.chosen, with.chosen) << policy->name();
    }
  }
}

}  // namespace
}  // namespace p2ps::core
