// Tests for whole-file transmission planning (windows + ragged tail).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/plan.hpp"
#include "util/assert.hpp"

namespace p2ps::core {
namespace {

using media::MediaFile;
using util::SimTime;

const SimTime kDt = SimTime::seconds(1);

TransmissionPlan make_plan(std::vector<PeerClass> classes, std::int64_t segments) {
  return TransmissionPlan(MediaFile(segments, kDt), ots_assignment(classes));
}

TEST(TransmissionPlan, CoversEverySegmentExactlyOnce) {
  const auto plan = make_plan({1, 2, 3, 3}, 20);  // window 8, tail of 4
  std::set<std::int64_t> covered;
  for (const auto& transmission : plan.transmissions()) {
    EXPECT_TRUE(covered.insert(transmission.segment).second)
        << "segment " << transmission.segment << " transmitted twice";
    EXPECT_GE(transmission.segment, 0);
    EXPECT_LT(transmission.segment, 20);
    EXPECT_LT(transmission.start, transmission.finish);
  }
  EXPECT_EQ(covered.size(), 20u);
}

TEST(TransmissionPlan, FullWindowFileMatchesTheorem1Delay) {
  for (std::int64_t windows : {1, 2, 5}) {
    const auto plan = make_plan({1, 2, 3, 3}, 8 * windows);
    EXPECT_EQ(plan.buffering_delay(), kDt * 4) << windows << " windows";
  }
}

TEST(TransmissionPlan, RaggedTailNeverIncreasesDelay) {
  for (std::int64_t segments = 1; segments <= 40; ++segments) {
    const auto plan = make_plan({1, 2, 3, 3}, segments);
    EXPECT_LE(plan.buffering_delay(), kDt * 4) << segments << " segments";
    EXPECT_TRUE(plan.to_buffer().check(kDt * 4).feasible)
        << segments << " segments";
  }
}

TEST(TransmissionPlan, TinyFileHasSmallDelay) {
  // A single segment served by the class-1 supplier arrives at 2Δt; no
  // other constraint exists.
  const auto plan = make_plan({1, 1}, 1);
  EXPECT_EQ(plan.buffering_delay(), kDt * 2);
}

TEST(TransmissionPlan, TransmissionRatesRespectClasses) {
  const auto plan = make_plan({1, 2, 3, 3}, 8);
  for (const auto& transmission : plan.transmissions()) {
    const PeerClass cls = plan.assignment().supplier_class(
        static_cast<std::size_t>(transmission.supplier));
    EXPECT_EQ(transmission.finish - transmission.start, kDt * (1 << cls));
  }
}

TEST(TransmissionPlan, SupplierSegmentCountsFollowQuotas) {
  // 3 full windows: class-1 carries 4/8 of each → 12 of 24.
  const auto plan = make_plan({1, 2, 3, 3}, 24);
  EXPECT_EQ(plan.segments_of_supplier(0), 12);
  EXPECT_EQ(plan.segments_of_supplier(1), 6);
  EXPECT_EQ(plan.segments_of_supplier(2), 3);
  EXPECT_EQ(plan.segments_of_supplier(3), 3);
  EXPECT_THROW((void)plan.segments_of_supplier(4), util::ContractViolation);
}

TEST(TransmissionPlan, SuppliersNeverOverlapTheirOwnTransmissions) {
  const auto plan = make_plan({1, 2, 3, 3}, 29);
  for (std::size_t i = 0; i < plan.assignment().supplier_count(); ++i) {
    SimTime last_finish = SimTime::zero();
    for (const auto& transmission : plan.transmissions()) {
      if (static_cast<std::size_t>(transmission.supplier) != i) continue;
      EXPECT_GE(transmission.start, last_finish);
      last_finish = transmission.finish;
    }
  }
}

TEST(TransmissionPlan, CompletionTimeBoundedByWindowCount) {
  // ceil(29/8) = 4 windows → everything done within 32Δt.
  const auto plan = make_plan({1, 2, 3, 3}, 29);
  EXPECT_LE(plan.completion_time(), kDt * 32);
  EXPECT_GT(plan.completion_time(), kDt * 24);
  EXPECT_EQ(plan.total_viewing_time(),
            plan.buffering_delay() + kDt * 29);
}

TEST(TransmissionPlan, WorksForEverySupplierMultiset) {
  // All sessions up to class 4, over a deliberately ragged file length.
  std::vector<std::vector<PeerClass>> sessions;
  std::vector<PeerClass> current;
  std::function<void(std::int64_t, PeerClass)> recurse =
      [&](std::int64_t remaining, PeerClass next) {
        if (remaining == 0) {
          sessions.push_back(current);
          return;
        }
        for (PeerClass c = next; c <= 4; ++c) {
          if ((16 >> c) <= remaining) {
            current.push_back(c);
            recurse(remaining - (16 >> c), c);
            current.pop_back();
          }
        }
      };
  recurse(16, 1);
  for (const auto& classes : sessions) {
    const auto plan = make_plan(classes, 37);
    const auto n = static_cast<std::int64_t>(classes.size());
    EXPECT_LE(plan.buffering_delay(), kDt * n);
    EXPECT_TRUE(plan.to_buffer().check(kDt * n).feasible);
  }
}

}  // namespace
}  // namespace p2ps::core
