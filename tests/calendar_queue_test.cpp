// Tests for the calendar-queue event list: ordering semantics identical to
// a binary heap, across uniform, bursty and sparse workloads.
#include <gtest/gtest.h>

#include <queue>
#include <sstream>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "util/rng.hpp"

namespace p2ps::sim {
namespace {

using util::SimTime;

TEST(CalendarQueue, EmptyPopsNothing) {
  CalendarQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.pop(), std::nullopt);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(CalendarQueue, SingleEntryRoundTrip) {
  CalendarQueue queue;
  queue.push({SimTime::seconds(5), 1, 42});
  EXPECT_EQ(queue.size(), 1u);
  const auto entry = queue.pop();
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->time, SimTime::seconds(5));
  EXPECT_EQ(entry->payload, 42u);
  EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueue, OrdersByTime) {
  CalendarQueue queue;
  queue.push({SimTime::seconds(30), 0, 3});
  queue.push({SimTime::seconds(10), 1, 1});
  queue.push({SimTime::seconds(20), 2, 2});
  EXPECT_EQ(queue.pop()->payload, 1u);
  EXPECT_EQ(queue.pop()->payload, 2u);
  EXPECT_EQ(queue.pop()->payload, 3u);
}

TEST(CalendarQueue, FifoOnEqualTimestamps) {
  CalendarQueue queue;
  for (std::uint64_t i = 0; i < 20; ++i) {
    queue.push({SimTime::seconds(7), i, i});
  }
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(queue.pop()->payload, i);
  }
}

TEST(CalendarQueue, InterleavedPushPop) {
  CalendarQueue queue;
  queue.push({SimTime::seconds(1), 0, 1});
  queue.push({SimTime::seconds(3), 1, 3});
  EXPECT_EQ(queue.pop()->payload, 1u);
  queue.push({SimTime::seconds(2), 2, 2});
  EXPECT_EQ(queue.pop()->payload, 2u);
  EXPECT_EQ(queue.pop()->payload, 3u);
}

TEST(CalendarQueue, SparseTimesUseDirectSearch) {
  CalendarQueue queue(SimTime::millis(10), 4);
  // Entries much farther apart than buckets*width force the fallback scan.
  queue.push({SimTime::hours(100), 0, 2});
  queue.push({SimTime::hours(1), 1, 1});
  queue.push({SimTime::hours(5000), 2, 3});
  EXPECT_EQ(queue.pop()->payload, 1u);
  EXPECT_EQ(queue.pop()->payload, 2u);
  EXPECT_EQ(queue.pop()->payload, 3u);
}

TEST(CalendarQueue, GrowsAndShrinks) {
  CalendarQueue queue(SimTime::millis(100), 4);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    queue.push({SimTime::millis(static_cast<std::int64_t>(i * 13 % 997)), i, i});
  }
  EXPECT_GT(queue.bucket_count(), 4u);
  EXPECT_GT(queue.resizes(), 0u);
  std::size_t popped = 0;
  while (queue.pop().has_value()) ++popped;
  EXPECT_EQ(popped, 1000u);
}

TEST(CalendarQueue, ClearEmptiesAndRewindsTheCursor) {
  CalendarQueue queue(SimTime::millis(100), 4);
  for (std::uint64_t i = 0; i < 500; ++i) {
    queue.push({SimTime::seconds(static_cast<std::int64_t>(100 + i)), i, i});
  }
  // Advance the dequeue cursor deep into the timeline before clearing.
  for (int i = 0; i < 250; ++i) ASSERT_TRUE(queue.pop().has_value());
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.pop(), std::nullopt);

  // The cursor is back at time zero: entries far earlier than anything the
  // queue saw before clear() must pop first and in order.
  queue.push({SimTime::millis(30), 0, 2});
  queue.push({SimTime::millis(10), 1, 1});
  queue.push({SimTime::seconds(500), 2, 3});
  EXPECT_EQ(queue.pop()->payload, 1u);
  EXPECT_EQ(queue.pop()->payload, 2u);
  EXPECT_EQ(queue.pop()->payload, 3u);
  EXPECT_TRUE(queue.empty());
}

// Regression: a pop-and-reinsert (how the simulator peeks past its
// run_until horizon) advances last_popped_ to the reinserted entry's time.
// Entries pushed *earlier* than that must clamp the resize re-anchor, or a
// push-triggered resize re-anchors the cursor past them and pops them out
// of order.
TEST(CalendarQueue, ReinsertThenEarlierPushesSurviveResize) {
  CalendarQueue queue;  // simulator defaults: 1024 ms width, 8 buckets
  queue.push({SimTime::seconds(100), 0, 999});
  const auto far = queue.pop();  // last_popped_ is now 100 s
  ASSERT_TRUE(far.has_value());
  queue.push(*far);  // horizon peek: put it back unchanged

  // Enough earlier entries that the *last* push triggers a grow-resize
  // (8 -> 16 -> 32 -> 64 -> 128 buckets at sizes 17/33/65/129).
  for (std::uint64_t i = 0; i < 128; ++i) {
    queue.push({SimTime::seconds(20) + SimTime::millis(static_cast<std::int64_t>(i)),
                1 + i, i});
  }
  for (std::uint64_t i = 0; i < 128; ++i) {
    const auto entry = queue.pop();
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->payload, i);
  }
  EXPECT_EQ(queue.pop()->payload, 999u);
  EXPECT_TRUE(queue.empty());
}

struct Workload {
  std::string name;
  std::function<std::int64_t(util::Rng&)> next_gap_ms;
};

class CalendarVsHeap : public ::testing::TestWithParam<int> {};

TEST_P(CalendarVsHeap, MatchesBinaryHeapExactly) {
  // Drive both structures with an identical randomized push/pop script and
  // require identical outputs — including FIFO tie order.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  CalendarQueue calendar(SimTime::millis(64), 4);
  auto compare = [](const CalendarEntry& a, const CalendarEntry& b) { return b < a; };
  std::priority_queue<CalendarEntry, std::vector<CalendarEntry>, decltype(compare)>
      heap(compare);

  std::uint64_t seq = 0;
  std::int64_t clock_ms = 0;
  for (int op = 0; op < 20'000; ++op) {
    const bool push = heap.empty() || rng.bernoulli(0.55);
    if (push) {
      // Mix of dense, clustered and far-future times, never in the past.
      std::int64_t when = clock_ms;
      switch (rng.uniform_below(4)) {
        case 0: when += rng.uniform_int(0, 50); break;
        case 1: when += rng.uniform_int(0, 5'000); break;
        case 2: when += rng.uniform_int(0, 1'000'000); break;
        default: when += 0; break;  // exact ties
      }
      const CalendarEntry entry{SimTime::millis(when), seq, seq};
      ++seq;
      calendar.push(entry);
      heap.push(entry);
    } else {
      const auto from_calendar = calendar.pop();
      ASSERT_TRUE(from_calendar.has_value());
      const CalendarEntry from_heap = heap.top();
      heap.pop();
      EXPECT_EQ(from_calendar->time, from_heap.time) << "op " << op;
      EXPECT_EQ(from_calendar->seq, from_heap.seq) << "op " << op;
      clock_ms = from_heap.time.as_millis();
    }
    ASSERT_EQ(calendar.size(), heap.size());
  }
  // Drain both.
  while (!heap.empty()) {
    const auto from_calendar = calendar.pop();
    ASSERT_TRUE(from_calendar.has_value());
    EXPECT_EQ(from_calendar->seq, heap.top().seq);
    heap.pop();
  }
  EXPECT_TRUE(calendar.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalendarVsHeap, ::testing::Range(1, 9),
                         [](const ::testing::TestParamInfo<int>& info) {
                           std::ostringstream os;
                           os << "seed" << info.param;
                           return os.str();
                         });

}  // namespace
}  // namespace p2ps::sim
