// Tests for the message-level (asynchronous) streaming-system engine.
#include <gtest/gtest.h>

#include "engine/async_system.hpp"
#include "util/assert.hpp"

namespace p2ps::engine {
namespace {

using util::SimTime;

AsyncSimulationConfig small_config(std::uint64_t seed = 11) {
  AsyncSimulationConfig config;
  config.population.seeds = 6;
  config.population.requesters = 60;
  config.population.class_fractions = {0.25, 0.25, 0.25, 0.25};
  config.pattern = workload::ArrivalPattern::kConstant;
  config.arrival_window = SimTime::hours(4);
  config.horizon = SimTime::hours(12);
  config.seed = seed;
  return config;
}

TEST(AsyncEngine, LosslessRunConservesPeers) {
  AsyncStreamingSystem system(small_config());
  const auto result = system.run();

  std::int64_t first_requests = 0;
  for (const auto& counters : result.totals) {
    first_requests += counters.first_requests;
    EXPECT_LE(counters.admissions, counters.first_requests);
  }
  EXPECT_EQ(first_requests, 60);
  EXPECT_GT(result.overall.admissions, 0);
  EXPECT_EQ(result.suppliers_at_end, 6 + result.sessions_completed);
  EXPECT_EQ(result.overall.admissions,
            result.sessions_completed + result.sessions_active_at_end);
  // With no active sessions left, no endpoint may still be busy.
  if (result.sessions_active_at_end == 0) {
    EXPECT_EQ(system.busy_suppliers(), 0);
  }
}

TEST(AsyncEngine, CapacityGrowsLikeTheSyncEngine) {
  const auto result = AsyncStreamingSystem(small_config()).run();
  EXPECT_EQ(result.hourly.front().capacity, 3);  // 6 class-1 seeds
  EXPECT_GT(result.final_capacity, 3);
  for (std::size_t i = 1; i < result.hourly.size(); ++i) {
    EXPECT_GE(result.hourly[i].capacity, result.hourly[i - 1].capacity);
  }
}

TEST(AsyncEngine, DeterministicForSameSeed) {
  const auto a = AsyncStreamingSystem(small_config(3)).run();
  const auto b = AsyncStreamingSystem(small_config(3)).run();
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.final_capacity, b.final_capacity);
  for (std::size_t i = 0; i < a.totals.size(); ++i) {
    EXPECT_EQ(a.totals[i].admissions, b.totals[i].admissions);
    EXPECT_EQ(a.totals[i].rejections, b.totals[i].rejections);
  }
}

TEST(AsyncEngine, LatencyShowsUpInWaitingTimes) {
  // Control messages add (tiny) real latency on top of backoff waits;
  // everything still completes.
  auto config = small_config();
  config.transport.latency.min = SimTime::millis(200);
  config.transport.latency.max = SimTime::millis(800);
  const auto result = AsyncStreamingSystem(config).run();
  EXPECT_GT(result.overall.admissions, 40);
}

TEST(AsyncEngine, SurvivesMessageLoss) {
  auto config = small_config(21);
  config.transport.drop_probability = 0.15;
  config.horizon = SimTime::hours(24);
  const auto result = AsyncStreamingSystem(config).run();
  // Lost probes/replies cost retries, but the system keeps admitting and
  // the bookkeeping stays conserved (watchdogs clean up lost teardowns).
  EXPECT_GT(result.overall.admissions, 30);
  EXPECT_EQ(result.suppliers_at_end, 6 + result.sessions_completed);
  EXPECT_GT(result.overall.rejections, 0);
}

TEST(AsyncEngine, HeavyLossStillMakesProgress) {
  auto config = small_config(22);
  config.transport.drop_probability = 0.5;
  config.horizon = SimTime::hours(48);
  const auto result = AsyncStreamingSystem(config).run();
  EXPECT_GT(result.overall.admissions, 5);
}

/// Failure-injection sweep: at every loss rate the bookkeeping must stay
/// conserved and the admission count must degrade monotonically-ish (each
/// loss level gets strictly harder conditions, same seed).
class AsyncLossSweep : public ::testing::TestWithParam<int> {};

TEST_P(AsyncLossSweep, ConservationHoldsUnderLoss) {
  auto config = small_config(31);
  config.transport.drop_probability = static_cast<double>(GetParam()) / 100.0;
  config.horizon = SimTime::hours(24);
  AsyncStreamingSystem system(config);
  const auto result = system.run();
  EXPECT_EQ(result.suppliers_at_end, 6 + result.sessions_completed);
  EXPECT_EQ(result.overall.admissions,
            result.sessions_completed + result.sessions_active_at_end);
  EXPECT_LE(result.overall.admissions, result.overall.first_requests);
  if (GetParam() == 0) {
    EXPECT_EQ(system.transport().dropped(), 0u);
  } else {
    EXPECT_GT(system.transport().dropped(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(DropPercent, AsyncLossSweep,
                         ::testing::Values(0, 5, 10, 25, 40),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "drop" + std::to_string(info.param);
                         });

TEST(AsyncEngine, NdacModeRuns) {
  auto config = small_config();
  config.protocol.differentiated = false;
  const auto result = AsyncStreamingSystem(config).run();
  EXPECT_GT(result.overall.admissions, 0);
}

TEST(AsyncEngine, ConfigValidation) {
  auto config = small_config();
  config.hold_timeout = config.response_timeout;  // must strictly exceed
  EXPECT_THROW(AsyncStreamingSystem{config}, util::ContractViolation);

  config = small_config();
  config.protocol.m_candidates = 0;
  EXPECT_THROW(AsyncStreamingSystem{config}, util::ContractViolation);

  config = small_config();
  config.horizon = SimTime::hours(1);
  EXPECT_THROW(AsyncStreamingSystem{config}, util::ContractViolation);
}

TEST(AsyncEngine, RunTwiceThrows) {
  AsyncStreamingSystem system(small_config());
  (void)system.run();
  EXPECT_THROW((void)system.run(), util::ContractViolation);
}

TEST(AsyncEngine, MessageVolumeIsProportionalToAttempts) {
  AsyncStreamingSystem system(small_config());
  const auto result = system.run();
  const auto& transport = system.transport();
  // Each attempt sends up to M probes plus replies and control traffic.
  EXPECT_GE(transport.sent(),
            static_cast<std::uint64_t>(result.overall.attempts));
  EXPECT_EQ(transport.dropped(), 0u);  // lossless config
  EXPECT_GT(transport.delivered(), 0u);
}

}  // namespace
}  // namespace p2ps::engine
