// Unit tests for the util module: time, ids, rng, stats, tables, contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"
#include "util/stats.hpp"
#include "util/strong_id.hpp"
#include "util/table.hpp"

namespace p2ps::util {
namespace {

// ---------- SimTime ----------

TEST(SimTime, UnitConversionsAreExact) {
  EXPECT_EQ(SimTime::seconds(1).as_millis(), 1000);
  EXPECT_EQ(SimTime::minutes(1).as_millis(), 60'000);
  EXPECT_EQ(SimTime::hours(1).as_millis(), 3'600'000);
  EXPECT_EQ(SimTime::hours(144).as_hours(), 144.0);
  EXPECT_EQ(SimTime::minutes(90).as_hours(), 1.5);
}

TEST(SimTime, ArithmeticBehavesLikeDurations) {
  const SimTime a = SimTime::minutes(10);
  const SimTime b = SimTime::minutes(20);
  EXPECT_EQ(a + b, SimTime::minutes(30));
  EXPECT_EQ(b - a, SimTime::minutes(10));
  EXPECT_EQ(3 * a, SimTime::minutes(30));
  EXPECT_EQ(a * 6, SimTime::hours(1));
  EXPECT_EQ(SimTime::hours(1) / SimTime::minutes(20), 3);
  EXPECT_LT(a, b);
  EXPECT_EQ(SimTime::zero().as_millis(), 0);
}

TEST(SimTime, CompoundAssignment) {
  SimTime t = SimTime::zero();
  t += SimTime::seconds(5);
  t += SimTime::seconds(7);
  EXPECT_EQ(t, SimTime::seconds(12));
  t -= SimTime::seconds(2);
  EXPECT_EQ(t, SimTime::seconds(10));
}

// ---------- StrongId ----------

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  struct TagA {};
  struct TagB {};
  using IdA = StrongId<TagA>;
  using IdB = StrongId<TagB>;
  static_assert(!std::is_same_v<IdA, IdB>);
  EXPECT_EQ(IdA{7}.value(), 7u);
}

TEST(StrongId, InvalidSentinel) {
  struct Tag {};
  using Id = StrongId<Tag>;
  EXPECT_FALSE(Id{}.valid());
  EXPECT_FALSE(Id::invalid().valid());
  EXPECT_TRUE(Id{0}.valid());
  EXPECT_EQ(Id{}, Id::invalid());
}

TEST(StrongId, Hashable) {
  struct Tag {};
  using Id = StrongId<Tag>;
  std::set<std::size_t> hashes;
  for (std::uint64_t i = 0; i < 100; ++i) {
    hashes.insert(std::hash<Id>{}(Id{i}));
  }
  EXPECT_GT(hashes.size(), 90u);  // no catastrophic collisions
}

// ---------- Rng ----------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, SubstreamsAreIndependentOfConsumption) {
  Rng master(99);
  Rng s1 = master.substream("alpha");
  // Consuming from the master must not change what a later-derived
  // substream with the same label produces.
  Rng master2(99);
  (void)master2;
  Rng s1_again = Rng(99).substream("alpha");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s1(), s1_again());
}

TEST(Rng, NamedSubstreamsDiffer) {
  Rng master(7);
  Rng a = master.substream("arrivals");
  Rng b = master.substream("admission");
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, IndexedSubstreamsDiffer) {
  Rng master(7);
  Rng a = master.substream("grant", 1);
  Rng b = master.substream("grant", 2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

// The demote-to-count contract of the sharded engine's RNG pool: seed plus
// raw-draw count fully determine the stream position, even through helpers
// with data-dependent internal draw counts (uniform_below's rejection
// loop), so a fresh generator fast-forwarded by draws() is bit-identical.
TEST(Rng, DiscardOfDrawsReplaysToTheSamePosition) {
  Rng used(424242);
  // Mix raw draws with rejection-sampled helpers so the raw count is not
  // predictable from the call count alone.
  for (int i = 0; i < 17; ++i) (void)used();
  for (int i = 0; i < 9; ++i) (void)used.uniform_below(7);
  (void)used.uniform01();
  (void)used.bernoulli(0.3);

  Rng replayed(424242);
  replayed.discard(used.draws());
  EXPECT_EQ(replayed.draws(), used.draws());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(replayed(), used());
}

TEST(Rng, DrawsCountsRawOutputsAndResetsOnReseed) {
  Rng rng(5);
  EXPECT_EQ(rng.draws(), 0u);
  (void)rng();
  (void)rng();
  EXPECT_EQ(rng.draws(), 2u);
  rng.reseed(5);
  EXPECT_EQ(rng.draws(), 0u);
  // Substreams are fresh generators: their count starts at zero no matter
  // how much the parent consumed.
  (void)rng();
  EXPECT_EQ(rng.substream("peer", 3).draws(), 0u);
}

TEST(Rng, UniformBelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.uniform_below(17), 17u);
  }
}

TEST(Rng, UniformBelowCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10'000; ++i) seen.insert(rng.uniform_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformBelowIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_below(10)];
  for (int count : counts) {
    EXPECT_NEAR(count, n / 10, n / 100);  // within 10% relative
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01HalfOpen) {
  Rng rng(42);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(8);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(6);
  for (int round = 0; round < 100; ++round) {
    const auto picks = rng.sample_indices(100, 8);
    EXPECT_EQ(picks.size(), 8u);
    std::set<std::size_t> distinct(picks.begin(), picks.end());
    EXPECT_EQ(distinct.size(), 8u);
    for (auto p : picks) EXPECT_LT(p, 100u);
  }
}

TEST(Rng, SampleIndicesFullPopulation) {
  Rng rng(6);
  const auto picks = rng.sample_indices(10, 10);
  std::set<std::size_t> distinct(picks.begin(), picks.end());
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(Rng, SampleIndicesClampsWhenAsked) {
  Rng rng(6);
  EXPECT_EQ(rng.sample_indices(3, 10, /*clamp=*/true).size(), 3u);
  EXPECT_THROW((void)rng.sample_indices(3, 10), ContractViolation);
}

TEST(Rng, SampleIndicesUnbiased) {
  Rng rng(123);
  std::vector<int> counts(20, 0);
  const int rounds = 20'000;
  for (int round = 0; round < rounds; ++round) {
    for (auto p : rng.sample_indices(20, 4)) ++counts[p];
  }
  // Each index expected rounds * 4/20 = 4000 times.
  for (int count : counts) EXPECT_NEAR(count, 4000, 400);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(9);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(std::span<int>(shuffled));
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
  EXPECT_NE(v, shuffled);  // astronomically unlikely to be identity
}

// ---------- stats ----------

TEST(RunningStat, KnownValues) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesCombined) {
  RunningStat a, b, combined;
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real(-5, 5);
    combined.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
}

TEST(RunningStat, PreconditionsThrow) {
  RunningStat s;
  EXPECT_THROW((void)s.mean(), ContractViolation);
  s.add(1.0);
  EXPECT_THROW((void)s.variance(), ContractViolation);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 4
  h.add(-3.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Percentile, NearestRank) {
  std::vector<double> v{15, 20, 35, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 15);
  EXPECT_DOUBLE_EQ(percentile(v, 30), 20);
  EXPECT_DOUBLE_EQ(percentile(v, 40), 20);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 35);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 50);
  EXPECT_THROW((void)percentile({}, 50), ContractViolation);
}

// ---------- table ----------

TEST(TextTable, AlignedOutput) {
  TextTable t({"name", "value"});
  t.new_row().add_cell("alpha").add_cell(1.5, 1);
  t.new_row().add_cell("b").add_cell(static_cast<long long>(42));
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.new_row().add_cell("1").add_cell("2");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, MisuseThrows) {
  TextTable t({"only"});
  EXPECT_THROW(t.add_cell("no row yet"), ContractViolation);
  t.new_row().add_cell("x");
  EXPECT_THROW(t.add_cell("overflow"), ContractViolation);
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(10.0, 0), "10");
}

// ---------- logging ----------

TEST(Logger, RespectsLevelAndSink) {
  auto& logger = Logger::global();
  const LogLevel old_level = logger.level();
  std::vector<std::string> captured;
  logger.set_sink([&](LogLevel, std::string_view message) {
    captured.emplace_back(message);
  });
  logger.set_level(LogLevel::kWarn);
  P2PS_DEBUG("hidden " << 1);
  P2PS_WARN("visible " << 2);
  EXPECT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "visible 2");
  logger.set_level(old_level);
  logger.set_sink([](LogLevel, std::string_view) {});
}

// Shard and sweep workers log through the one global instance while tests
// swap sinks: concurrent logging against mid-run sink swaps and level
// changes must never tear a sink call or race a destroyed std::function
// (run under TSan in CI to mean anything beyond "did not crash").
TEST(Logger, ConcurrentLoggingSurvivesSinkAndLevelChanges) {
  auto& logger = Logger::global();
  const LogLevel old_level = logger.level();
  std::atomic<std::int64_t> delivered{0};
  logger.set_sink([&](LogLevel, std::string_view message) {
    EXPECT_FALSE(message.empty());
    delivered.fetch_add(1, std::memory_order_relaxed);
  });
  logger.set_level(LogLevel::kInfo);
  std::vector<std::thread> workers;
  workers.reserve(4);
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([w] {
      for (int i = 0; i < 500; ++i) {
        P2PS_INFO("worker " << w << " message " << i);
      }
    });
  }
  // Meanwhile the coordinator churns the level and swaps the sink — the
  // exact pattern a test harness inflicts on live shard workers.
  for (int i = 0; i < 50; ++i) {
    logger.set_level(i % 2 == 0 ? LogLevel::kInfo : LogLevel::kWarn);
    logger.set_sink([&](LogLevel, std::string_view) {
      delivered.fetch_add(1, std::memory_order_relaxed);
    });
  }
  logger.set_level(LogLevel::kInfo);
  for (auto& worker : workers) worker.join();
  EXPECT_GT(delivered.load(), 0);
  logger.set_level(old_level);
  logger.set_sink([](LogLevel, std::string_view) {});
}

TEST(LogLevelNames, AllDistinct) {
  EXPECT_EQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_EQ(to_string(LogLevel::kOff), "OFF");
}

// ---------- contracts ----------

TEST(Contracts, ViolationCarriesContext) {
  try {
    P2PS_REQUIRE_MSG(1 == 2, "math broke");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math broke"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(Contracts, PassingChecksAreSilent) {
  EXPECT_NO_THROW(P2PS_REQUIRE(true));
  EXPECT_NO_THROW(P2PS_CHECK(2 + 2 == 4));
  EXPECT_NO_THROW(P2PS_ENSURE(true));
}

}  // namespace
}  // namespace p2ps::util
