// Tests for supplier-subset selection: greedy exactness and minimality vs
// exhaustive search, and the max-cardinality ablation policy.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/selection.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace p2ps::core {
namespace {

Bandwidth r0() { return Bandwidth::playback_rate(); }

TEST(SelectExactCover, SimpleSuccess) {
  const std::vector<PeerClass> classes{1, 1};
  const auto result = select_exact_cover(classes);
  EXPECT_TRUE(result.success());
  EXPECT_EQ(result.chosen.size(), 2u);
}

TEST(SelectExactCover, PrefersLargestOffers) {
  // {1/2, 1/2, 1/4, 1/4}: greedy takes the two halves, not four pieces.
  const std::vector<PeerClass> classes{2, 1, 2, 1};
  const auto result = select_exact_cover(classes);
  EXPECT_TRUE(result.success());
  EXPECT_EQ(result.chosen.size(), 2u);
  EXPECT_EQ(classes[result.chosen[0]], 1);
  EXPECT_EQ(classes[result.chosen[1]], 1);
}

TEST(SelectExactCover, SkipsOvershootingOffers) {
  // Need 1; offers {1/2, 1/2, 1/2}: uses exactly two, skips the third.
  const std::vector<PeerClass> classes{1, 1, 1};
  const auto result = select_exact_cover(classes);
  EXPECT_TRUE(result.success());
  EXPECT_EQ(result.chosen.size(), 2u);
}

TEST(SelectExactCover, ReportsShortfall) {
  const std::vector<PeerClass> classes{2, 3};  // 1/4 + 1/8 = 3/8
  const auto result = select_exact_cover(classes);
  EXPECT_FALSE(result.success());
  EXPECT_EQ(result.shortfall, r0() - Bandwidth::class_offer(2) - Bandwidth::class_offer(3));
}

TEST(SelectExactCover, EmptyCandidates) {
  const auto result = select_exact_cover(std::vector<PeerClass>{});
  EXPECT_FALSE(result.success());
  EXPECT_EQ(result.shortfall, r0());
  EXPECT_TRUE(result.chosen.empty());
}

TEST(SelectExactCover, CustomTarget) {
  const std::vector<PeerClass> classes{2, 3, 3};
  const auto result =
      select_exact_cover(classes, Bandwidth::class_offer(1));  // target 1/2
  EXPECT_TRUE(result.success());
  EXPECT_EQ(result.chosen.size(), 3u);  // 1/4 + 1/8 + 1/8
}

TEST(SelectExactCover, StableOnTies) {
  // Equal offers are taken in list order.
  const std::vector<PeerClass> classes{1, 1, 1};
  const auto result = select_exact_cover(classes);
  EXPECT_EQ(result.chosen, (std::vector<std::size_t>{0, 1}));
}

// Property: greedy succeeds exactly when *some* subset reaches the target
// (the dyadic-offer guarantee the paper's footnote 2 appeals to), and uses
// the minimum number of suppliers.
class SelectionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SelectionProperty, GreedyMatchesExhaustiveSearch) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = 1 + rng.uniform_below(10);
    std::vector<PeerClass> classes;
    for (std::size_t i = 0; i < n; ++i) {
      classes.push_back(static_cast<PeerClass>(1 + rng.uniform_below(5)));
    }
    const auto greedy = select_exact_cover(classes);
    const bool exhaustive = subset_sum_exists(classes, r0());
    EXPECT_EQ(greedy.success(), exhaustive)
        << "round " << round << " size " << n;
    if (greedy.success()) {
      const auto optimal = min_exact_cover_size(classes, r0());
      ASSERT_TRUE(optimal.has_value());
      EXPECT_EQ(greedy.chosen.size(), *optimal);
      // Chosen offers sum exactly to R0.
      Bandwidth sum = Bandwidth::zero();
      for (std::size_t i : greedy.chosen) sum += Bandwidth::class_offer(classes[i]);
      EXPECT_EQ(sum, r0());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectionProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           std::ostringstream os;
                           os << "seed" << info.param;
                           return os.str();
                         });

// ---------- max-cardinality ablation policy ----------

TEST(SelectMaxCardinality, PicksMoreSuppliersWhenPossible) {
  const std::vector<PeerClass> classes{1, 1, 2, 2};
  const auto greedy = select_exact_cover(classes);
  const auto wide = select_max_cardinality_cover(classes);
  EXPECT_TRUE(greedy.success());
  EXPECT_TRUE(wide.success());
  EXPECT_EQ(greedy.chosen.size(), 2u);  // 1/2 + 1/2
  EXPECT_EQ(wide.chosen.size(), 3u);    // 1/4 + 1/4 + 1/2
}

TEST(SelectMaxCardinality, FallsBackWhenAscendingWalkFails) {
  // Ascending greedy on {1/4, 1/2, 1/2} strands at 3/4; the fallback still
  // admits via the two halves.
  const std::vector<PeerClass> classes{2, 1, 1};
  const auto wide = select_max_cardinality_cover(classes);
  EXPECT_TRUE(wide.success());
  Bandwidth sum = Bandwidth::zero();
  for (std::size_t i : wide.chosen) sum += Bandwidth::class_offer(classes[i]);
  EXPECT_EQ(sum, r0());
}

TEST(SelectMaxCardinality, AdmitsIffGreedyAdmits) {
  util::Rng rng(99);
  for (int round = 0; round < 300; ++round) {
    const std::size_t n = 1 + rng.uniform_below(9);
    std::vector<PeerClass> classes;
    for (std::size_t i = 0; i < n; ++i) {
      classes.push_back(static_cast<PeerClass>(1 + rng.uniform_below(4)));
    }
    const auto greedy = select_exact_cover(classes);
    const auto wide = select_max_cardinality_cover(classes);
    EXPECT_EQ(greedy.success(), wide.success());
    if (wide.success()) {
      EXPECT_GE(wide.chosen.size(), greedy.chosen.size());
      Bandwidth sum = Bandwidth::zero();
      for (std::size_t i : wide.chosen) sum += Bandwidth::class_offer(classes[i]);
      EXPECT_EQ(sum, r0());
    }
  }
}

// ---------- exhaustive helpers guard rails ----------

TEST(ExhaustiveHelpers, RejectOversizedInput) {
  const std::vector<PeerClass> big(25, 4);
  EXPECT_THROW((void)subset_sum_exists(big, r0()), util::ContractViolation);
  EXPECT_THROW((void)min_exact_cover_size(big, r0()), util::ContractViolation);
}

TEST(ExhaustiveHelpers, KnownAnswers) {
  const std::vector<PeerClass> classes{1, 2, 2};
  EXPECT_TRUE(subset_sum_exists(classes, r0()));
  EXPECT_EQ(min_exact_cover_size(classes, r0()), std::size_t{3});
  EXPECT_FALSE(subset_sum_exists(std::vector<PeerClass>{3, 3}, r0()));
  EXPECT_EQ(min_exact_cover_size(std::vector<PeerClass>{3, 3}, r0()), std::nullopt);
}

}  // namespace
}  // namespace p2ps::core
