// Randomized property tests: protocol state-machine invariants under
// arbitrary valid operation sequences, and cross-engine agreement.
#include <gtest/gtest.h>

#include <sstream>

#include "core/admission/supplier.hpp"
#include "engine/async_system.hpp"
#include "engine/streaming_system.hpp"
#include "util/rng.hpp"

namespace p2ps {
namespace {

using core::PeerClass;
using util::SimTime;

// ---------- probability-vector invariants ----------
//
// Invariants that must hold after *any* mix of init/elevate/tighten:
//  (1) P[1] == 1.0 — class 1 is always favored;
//  (2) P[c] >= 2^-(c-1) — a class-c requester is never more improbable
//      than under the strictest possible profile (a class-1 supplier's);
//  (3) exponents are nondecreasing in c — favored classes form a prefix,
//      so lowest_favored_class() fully describes the favored set.

void expect_vector_invariants(const core::AdmissionProbabilityVector& v) {
  EXPECT_TRUE(v.favors(1));
  for (PeerClass c = 1; c <= v.num_classes(); ++c) {
    EXPECT_GE(v.exponent(c), 0);
    EXPECT_LE(v.exponent(c), c - 1);
    if (c > 1) {
      EXPECT_GE(v.exponent(c), v.exponent(c - 1));
    }
  }
  const PeerClass lowest = v.lowest_favored_class();
  for (PeerClass c = 1; c <= v.num_classes(); ++c) {
    EXPECT_EQ(v.favors(c), c <= lowest);
  }
}

class VectorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VectorFuzz, InvariantsSurviveRandomOperations) {
  util::Rng rng(GetParam());
  const PeerClass k = static_cast<PeerClass>(2 + rng.uniform_below(8));
  core::AdmissionProbabilityVector v(
      k, static_cast<PeerClass>(1 + rng.uniform_below(static_cast<std::uint64_t>(k))));
  expect_vector_invariants(v);
  for (int op = 0; op < 500; ++op) {
    if (rng.bernoulli(0.6)) {
      v.elevate();
    } else {
      v.tighten_to(static_cast<PeerClass>(
          1 + rng.uniform_below(static_cast<std::uint64_t>(k))));
    }
    expect_vector_invariants(v);
  }
}

// ---------- supplier state machine fuzz ----------
//
// Drive a SupplierAdmission with random *valid* operations and check that
// it never wedges: grants only while idle, reminder bookkeeping clears at
// session end, vector invariants hold throughout.

class SupplierFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SupplierFuzz, NeverWedgesUnderRandomTraffic) {
  util::Rng rng(GetParam());
  const PeerClass k = 4;
  const auto own = static_cast<PeerClass>(1 + rng.uniform_below(4));
  core::SupplierAdmission supplier(k, own, /*differentiated=*/true);

  std::int64_t sessions = 0;
  std::int64_t grants = 0;
  for (int op = 0; op < 5000; ++op) {
    expect_vector_invariants(supplier.vector());
    const auto requester =
        static_cast<PeerClass>(1 + rng.uniform_below(4));
    switch (rng.uniform_below(5)) {
      case 0: {  // probe
        const auto outcome = supplier.handle_probe(requester, rng);
        if (supplier.busy()) {
          EXPECT_EQ(outcome.reply, core::ProbeReply::kBusy);
        } else {
          EXPECT_NE(outcome.reply, core::ProbeReply::kBusy);
          grants += (outcome.reply == core::ProbeReply::kGranted);
          // Favored classes are always granted deterministically.
          if (outcome.favors_requester) {
            EXPECT_EQ(outcome.reply, core::ProbeReply::kGranted);
          }
        }
        break;
      }
      case 1:
        if (!supplier.busy()) {
          supplier.on_session_start();
          ++sessions;
          EXPECT_TRUE(supplier.busy());
          EXPECT_TRUE(supplier.pending_reminders().empty());
          EXPECT_FALSE(supplier.favored_request_seen());
        }
        break;
      case 2:
        if (supplier.busy()) {
          supplier.on_session_end();
          EXPECT_FALSE(supplier.busy());
          EXPECT_TRUE(supplier.pending_reminders().empty());
        }
        break;
      case 3:
        if (supplier.busy() && rng.bernoulli(0.5)) {
          supplier.leave_reminder(requester);
          EXPECT_FALSE(supplier.pending_reminders().empty());
        }
        break;
      case 4:
        if (!supplier.busy()) supplier.on_idle_timeout();
        break;
    }
  }
  EXPECT_GT(sessions, 0);
  EXPECT_GT(grants, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorFuzz, ::testing::Range<std::uint64_t>(1, 13),
                         [](const auto& info) {
                           std::ostringstream os;
                           os << "seed" << info.param;
                           return os.str();
                         });
INSTANTIATE_TEST_SUITE_P(Seeds, SupplierFuzz, ::testing::Range<std::uint64_t>(1, 13),
                         [](const auto& info) {
                           std::ostringstream os;
                           os << "seed" << info.param;
                           return os.str();
                         });

// ---------- cross-engine agreement ----------
//
// The session-level engine and the message-level engine implement the same
// protocol; with a perfect network (zero latency, zero loss) their outcomes
// on the same workload must agree closely (not exactly: they consume
// randomness in different orders).

TEST(CrossEngine, SyncAndAsyncAgreeOnAPerfectNetwork) {
  engine::SimulationConfig sync_config;
  sync_config.population.seeds = 10;
  sync_config.population.requesters = 300;
  sync_config.pattern = workload::ArrivalPattern::kConstant;
  sync_config.arrival_window = SimTime::hours(6);
  sync_config.horizon = SimTime::hours(24);
  sync_config.seed = 77;

  engine::AsyncSimulationConfig async_config;
  async_config.population = sync_config.population;
  async_config.pattern = sync_config.pattern;
  async_config.arrival_window = sync_config.arrival_window;
  async_config.horizon = sync_config.horizon;
  async_config.seed = 77;
  async_config.transport.latency.min = SimTime::zero();
  async_config.transport.latency.max = SimTime::zero();
  async_config.transport.drop_probability = 0.0;

  const auto sync_result = engine::StreamingSystem(sync_config).run();
  const auto async_result = engine::AsyncStreamingSystem(async_config).run();

  // Both should have served most of the population by the horizon.
  EXPECT_GT(sync_result.overall.admissions, 200);
  EXPECT_GT(async_result.overall.admissions, 200);
  const double ratio = static_cast<double>(async_result.overall.admissions) /
                       static_cast<double>(sync_result.overall.admissions);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
  // Capacity trajectories stay close too (same supply dynamics).
  const double capacity_ratio =
      static_cast<double>(async_result.final_capacity) /
      static_cast<double>(sync_result.final_capacity);
  EXPECT_GT(capacity_ratio, 0.9);
  EXPECT_LT(capacity_ratio, 1.1);
}

}  // namespace
}  // namespace p2ps
