// Tests for the metrics collector: counters, derived rates and sampling.
#include <gtest/gtest.h>

#include "metrics/collector.hpp"
#include "util/assert.hpp"

namespace p2ps::metrics {
namespace {

using util::SimTime;

TEST(ClassCounters, DerivedValuesHandleEmpty) {
  const ClassCounters counters;
  EXPECT_FALSE(counters.admission_rate().has_value());
  EXPECT_FALSE(counters.mean_delay_dt().has_value());
  EXPECT_FALSE(counters.mean_rejections().has_value());
  EXPECT_FALSE(counters.mean_waiting_minutes().has_value());
}

TEST(Collector, CountsFlowThrough) {
  MetricsCollector collector(4);
  collector.on_first_request(1);
  collector.on_first_request(1);
  collector.on_attempt(1);
  collector.on_attempt(1);
  collector.on_attempt(1);
  collector.on_rejection(1);
  collector.on_admission(1, /*rejections_before=*/1, /*delay_dt=*/3,
                         SimTime::minutes(10));

  const auto& counters = collector.totals(1);
  EXPECT_EQ(counters.first_requests, 2);
  EXPECT_EQ(counters.attempts, 3);
  EXPECT_EQ(counters.rejections, 1);
  EXPECT_EQ(counters.admissions, 1);
  EXPECT_DOUBLE_EQ(*counters.admission_rate(), 0.5);
  EXPECT_DOUBLE_EQ(*counters.mean_delay_dt(), 3.0);
  EXPECT_DOUBLE_EQ(*counters.mean_rejections(), 1.0);
  EXPECT_DOUBLE_EQ(*counters.mean_waiting_minutes(), 10.0);
}

TEST(Collector, ClassesAreIndependent) {
  MetricsCollector collector(4);
  collector.on_first_request(2);
  collector.on_admission(3, 0, 2, SimTime::zero());
  EXPECT_EQ(collector.totals(2).first_requests, 1);
  EXPECT_EQ(collector.totals(2).admissions, 0);
  EXPECT_EQ(collector.totals(3).admissions, 1);
  EXPECT_EQ(collector.totals(1).first_requests, 0);
}

TEST(Collector, OverallSumsClasses) {
  MetricsCollector collector(4);
  for (core::PeerClass c = 1; c <= 4; ++c) {
    collector.on_first_request(c);
    collector.on_attempt(c);
    collector.on_admission(c, 1, c, SimTime::minutes(c));
  }
  const auto overall = collector.overall();
  EXPECT_EQ(overall.first_requests, 4);
  EXPECT_EQ(overall.admissions, 4);
  EXPECT_EQ(overall.rejections_before_admission_sum, 4);
  EXPECT_DOUBLE_EQ(overall.buffering_delay_dt_sum, 1 + 2 + 3 + 4);
}

TEST(Collector, HourlySamplesSnapshotCounters) {
  MetricsCollector collector(2);
  collector.on_first_request(1);
  collector.hourly_sample(SimTime::hours(1), /*capacity=*/5, /*active=*/1,
                          /*suppliers=*/10);
  collector.on_first_request(1);
  collector.hourly_sample(SimTime::hours(2), 7, 2, 12);

  const auto& samples = collector.hourly();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].t, SimTime::hours(1));
  EXPECT_EQ(samples[0].capacity, 5);
  EXPECT_EQ(samples[0].per_class[0].first_requests, 1);
  EXPECT_EQ(samples[1].per_class[0].first_requests, 2);
  EXPECT_EQ(samples[1].suppliers, 12);
}

TEST(Collector, SamplesMustBeTimeOrdered) {
  MetricsCollector collector(2);
  collector.hourly_sample(SimTime::hours(2), 0, 0, 0);
  EXPECT_THROW(collector.hourly_sample(SimTime::hours(1), 0, 0, 0),
               util::ContractViolation);
}

TEST(Collector, FavoredSamples) {
  MetricsCollector collector(4);
  FavoredSample sample;
  sample.t = SimTime::hours(3);
  sample.avg_lowest_favored = {1.0, 2.0, 3.5, 4.0};
  collector.favored_sample(sample);
  ASSERT_EQ(collector.favored().size(), 1u);
  EXPECT_DOUBLE_EQ(collector.favored()[0].avg_lowest_favored[2], 3.5);

  FavoredSample wrong;
  wrong.t = SimTime::hours(6);
  wrong.avg_lowest_favored = {1.0};
  EXPECT_THROW(collector.favored_sample(wrong), util::ContractViolation);
}

TEST(Collector, ValidatesClassRange) {
  MetricsCollector collector(2);
  EXPECT_THROW(collector.on_first_request(3), util::ContractViolation);
  EXPECT_THROW(collector.on_admission(0, 0, 0, SimTime::zero()),
               util::ContractViolation);
  EXPECT_THROW(collector.on_admission(1, -1, 0, SimTime::zero()),
               util::ContractViolation);
  EXPECT_THROW((void)collector.totals(5), util::ContractViolation);
}

}  // namespace
}  // namespace p2ps::metrics
