// Integration tests: scaled-down end-to-end runs asserting the paper's
// qualitative findings (Section 5.2) hold in this implementation.
#include <gtest/gtest.h>

#include <cmath>

#include "engine/streaming_system.hpp"

namespace p2ps::engine {
namespace {

using util::SimTime;

/// A 1/25-scale version of the paper's setup (2,000 requesters, same mix,
/// same protocol constants, 24 h arrival window, 48 h horizon).
SimulationConfig scaled_config(workload::ArrivalPattern pattern,
                               std::uint64_t seed = 2002) {
  SimulationConfig config;
  config.population.seeds = 20;
  config.population.requesters = 2000;
  config.pattern = pattern;
  config.arrival_window = SimTime::hours(24);
  config.horizon = SimTime::hours(48);
  config.seed = seed;
  return config;
}

struct DacVsNdac {
  SimulationResult dac;
  SimulationResult ndac;
};

DacVsNdac run_pair(workload::ArrivalPattern pattern) {
  const auto config = scaled_config(pattern);
  return DacVsNdac{StreamingSystem(config).run(),
                   StreamingSystem(as_ndac(config)).run()};
}

// ---- Figure 4: capacity amplification ----

TEST(PaperFindings, DacAmplifiesCapacityFasterThanNdac) {
  const auto [dac, ndac] = run_pair(workload::ArrivalPattern::kRampUpDown);
  // Mid-run (while demand still arrives) DAC must be ahead, and it must
  // stay at least even by the end.
  EXPECT_GT(dac.capacity_at(SimTime::hours(12)), ndac.capacity_at(SimTime::hours(12)));
  EXPECT_GT(dac.capacity_at(SimTime::hours(24)), ndac.capacity_at(SimTime::hours(24)));
  EXPECT_GE(dac.final_capacity, ndac.final_capacity);
}

TEST(PaperFindings, DacReachesMostOfMaximumCapacity) {
  const auto config = scaled_config(workload::ArrivalPattern::kRampUpDown);
  const auto dac = StreamingSystem(config).run();
  // Paper: ≥95% of maximum after 144 h at full scale; at 1/25 scale with a
  // 48 h horizon we still expect the large majority.
  EXPECT_GT(static_cast<double>(dac.final_capacity),
            0.80 * static_cast<double>(dac.max_capacity));
}

// ---- Figure 5: per-class admission rate ----

TEST(PaperFindings, DacDifferentiatesAdmissionByClass) {
  const auto [dac, ndac] = run_pair(workload::ArrivalPattern::kRampUpDown);
  // Mid-run, higher classes enjoy higher cumulative admission rates.
  const auto& sample = dac.sample_at(SimTime::hours(12));
  const auto rate = [&](int cls) {
    return sample.per_class[static_cast<std::size_t>(cls - 1)].admission_rate().value_or(0.0);
  };
  EXPECT_GT(rate(1), rate(3));
  EXPECT_GT(rate(1), rate(4));
  EXPECT_GE(rate(2), rate(4));

  // NDAC does not differentiate: classes end up within a few points.
  const auto& nsample = ndac.sample_at(SimTime::hours(12));
  const auto nrate = [&](int cls) {
    return nsample.per_class[static_cast<std::size_t>(cls - 1)].admission_rate().value_or(0.0);
  };
  EXPECT_LT(std::abs(nrate(1) - nrate(4)), 0.12);
}

// ---- Figure 6: per-class buffering delay ----

TEST(PaperFindings, DacGivesHigherClassesLowerBufferingDelay) {
  const auto [dac, ndac] = run_pair(workload::ArrivalPattern::kRampUpDown);
  const auto delay = [](const SimulationResult& result, int cls) {
    return result.totals[static_cast<std::size_t>(cls - 1)].mean_delay_dt().value_or(99.0);
  };
  EXPECT_LT(delay(dac, 1), delay(dac, 4));
  EXPECT_LE(delay(dac, 1), delay(dac, 3));
  // DAC improves (or at least matches) every class against NDAC.
  for (int cls = 1; cls <= 4; ++cls) {
    EXPECT_LE(delay(dac, cls), delay(ndac, cls) + 0.35) << "class " << cls;
  }
}

// ---- Table 1: rejections before admission ----

TEST(PaperFindings, DacOrdersRejectionsByClass) {
  const auto [dac, ndac] = run_pair(workload::ArrivalPattern::kRampUpDown);
  const auto rejections = [](const SimulationResult& result, int cls) {
    return result.totals[static_cast<std::size_t>(cls - 1)].mean_rejections().value_or(99.0);
  };
  // Class 1 suffers the fewest rejections; class 4 the most (paper Table 1).
  EXPECT_LT(rejections(dac, 1), rejections(dac, 4));
  EXPECT_LE(rejections(dac, 1), rejections(dac, 2) + 0.1);
  EXPECT_LE(rejections(dac, 2), rejections(dac, 4));
  // Every class does better (or no worse) under DAC than under NDAC. The
  // paper itself notes class 4 lags during the first hours (Fig. 5); at
  // this 1/25 scale that early penalty weighs more, so class 4 gets wider
  // slack here — the full-scale comparison is bench/table1_rejections.
  for (int cls = 1; cls <= 4; ++cls) {
    const double slack = cls == 4 ? 0.75 : 0.25;
    EXPECT_LE(rejections(dac, cls), rejections(ndac, cls) + slack) << "class " << cls;
  }
  // NDAC is flat across classes.
  EXPECT_LT(std::abs(rejections(ndac, 1) - rejections(ndac, 4)), 0.8);
}

// ---- Figure 7: adaptivity ----

TEST(PaperFindings, FavoredClassesRelaxOnceDemandStops) {
  const auto config = scaled_config(workload::ArrivalPattern::kPeriodicBursts);
  const auto dac = StreamingSystem(config).run();
  ASSERT_FALSE(dac.favored.empty());
  // By the end (no new arrivals for 24 h, ample capacity) every supplier
  // class favors all requester classes: lowest favored class ≈ 4.
  const auto& last = dac.favored.back();
  for (std::size_t cls = 0; cls < 4; ++cls) {
    ASSERT_FALSE(std::isnan(last.avg_lowest_favored[cls])) << "class " << (cls + 1);
    EXPECT_GT(last.avg_lowest_favored[cls], 3.5) << "class " << (cls + 1);
  }
  // Early in the run, class-1 suppliers are pickier than at the end.
  const auto& early = dac.favored.front();
  EXPECT_LT(early.avg_lowest_favored[0], last.avg_lowest_favored[0]);
}

// ---- Figure 9 mechanism: backoff factor ----

TEST(PaperFindings, AggressiveRetryBeatsHeavyBackoff) {
  auto constant = scaled_config(workload::ArrivalPattern::kRampUpDown, 77);
  constant.protocol.e_bkf = 1;
  auto heavy = constant;
  heavy.protocol.e_bkf = 4;
  const auto fast = StreamingSystem(constant).run();
  const auto slow = StreamingSystem(heavy).run();
  // Paper Figure 9: constant backoff achieves the higher overall admission
  // rate in a self-growing system.
  EXPECT_GT(fast.overall.admissions, slow.overall.admissions);
}

// ---- cross-pattern sanity ----

class AllPatterns : public ::testing::TestWithParam<workload::ArrivalPattern> {};

TEST_P(AllPatterns, DacBeatsOrMatchesNdacOnCapacityGrowth) {
  const auto [dac, ndac] = run_pair(GetParam());
  EXPECT_GE(dac.capacity_at(SimTime::hours(24)), ndac.capacity_at(SimTime::hours(24)));
  EXPECT_GE(dac.final_capacity, ndac.final_capacity);
  // Both must have made substantial progress by the end.
  EXPECT_GT(dac.overall.admissions, 1500);
  EXPECT_GT(ndac.overall.admissions, 1000);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, AllPatterns,
    ::testing::Values(workload::ArrivalPattern::kConstant,
                      workload::ArrivalPattern::kRampUpDown,
                      workload::ArrivalPattern::kBurstThenConstant,
                      workload::ArrivalPattern::kPeriodicBursts),
    [](const ::testing::TestParamInfo<workload::ArrivalPattern>& info) {
      return std::string("pattern") +
             std::to_string(static_cast<int>(info.param));
    });

}  // namespace
}  // namespace p2ps::engine
