// Tests for the protocol trace log and its engine integration.
#include <gtest/gtest.h>

#include <sstream>

#include "engine/streaming_system.hpp"
#include "engine/trace.hpp"
#include "util/assert.hpp"

namespace p2ps::engine {
namespace {

using util::SimTime;

TraceEvent make_event(std::int64_t ms, TraceKind kind, std::uint64_t peer) {
  TraceEvent event;
  event.t = SimTime::millis(ms);
  event.kind = kind;
  event.peer = core::PeerId{peer};
  event.cls = 2;
  return event;
}

TEST(TraceLog, RecordsInOrder) {
  TraceLog log(10);
  log.record(make_event(1, TraceKind::kFirstRequest, 7));
  log.record(make_event(2, TraceKind::kAttempt, 7));
  log.record(make_event(3, TraceKind::kAdmission, 7));
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped(), 0u);
  const auto events = log.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, TraceKind::kFirstRequest);
  EXPECT_EQ(events[2].kind, TraceKind::kAdmission);
}

TEST(TraceLog, RingOverwritesOldest) {
  TraceLog log(4);
  for (std::int64_t i = 0; i < 10; ++i) {
    log.record(make_event(i, TraceKind::kAttempt, static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.recorded(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  const auto events = log.events();
  ASSERT_EQ(events.size(), 4u);
  // The oldest retained is event 6, in chronological order.
  EXPECT_EQ(events[0].t, SimTime::millis(6));
  EXPECT_EQ(events[3].t, SimTime::millis(9));
}

TEST(TraceLog, JourneyFiltersByPeer) {
  TraceLog log(16);
  log.record(make_event(1, TraceKind::kFirstRequest, 1));
  log.record(make_event(2, TraceKind::kFirstRequest, 2));
  log.record(make_event(3, TraceKind::kAdmission, 1));
  const auto journey = log.journey(core::PeerId{1});
  ASSERT_EQ(journey.size(), 2u);
  EXPECT_EQ(journey[0].kind, TraceKind::kFirstRequest);
  EXPECT_EQ(journey[1].kind, TraceKind::kAdmission);
}

TEST(TraceLog, CountsByKind) {
  TraceLog log(16);
  log.record(make_event(1, TraceKind::kAttempt, 1));
  log.record(make_event(2, TraceKind::kAttempt, 2));
  log.record(make_event(3, TraceKind::kRejection, 2));
  EXPECT_EQ(log.count(TraceKind::kAttempt), 2u);
  EXPECT_EQ(log.count(TraceKind::kRejection), 1u);
  EXPECT_EQ(log.count(TraceKind::kDeparture), 0u);
}

TEST(TraceLog, PrintsHumanReadably) {
  std::ostringstream os;
  os << make_event(3'600'000, TraceKind::kAdmission, 42);
  const std::string line = os.str();
  EXPECT_NE(line.find("admission"), std::string::npos);
  EXPECT_NE(line.find("peer=42"), std::string::npos);
  EXPECT_NE(line.find("t=1.000h"), std::string::npos);
}

TEST(TraceLog, ZeroCapacityRejected) {
  EXPECT_THROW(TraceLog{0}, util::ContractViolation);
}

// ---------- engine integration ----------

SimulationConfig traced_config() {
  SimulationConfig config;
  config.population.seeds = 4;
  config.population.requesters = 30;
  config.population.class_fractions = {0.25, 0.25, 0.25, 0.25};
  config.pattern = workload::ArrivalPattern::kConstant;
  config.arrival_window = SimTime::hours(2);
  config.horizon = SimTime::hours(8);
  config.trace_capacity = 100'000;
  config.seed = 33;
  return config;
}

TEST(EngineTrace, DisabledByDefault) {
  SimulationConfig config = traced_config();
  config.trace_capacity = 0;
  StreamingSystem system(config);
  EXPECT_EQ(system.trace(), nullptr);
}

TEST(EngineTrace, CountsMatchMetrics) {
  StreamingSystem system(traced_config());
  const auto result = system.run();
  const TraceLog* trace = system.trace();
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->dropped(), 0u);

  EXPECT_EQ(trace->count(TraceKind::kFirstRequest),
            static_cast<std::size_t>(result.overall.first_requests));
  EXPECT_EQ(trace->count(TraceKind::kAttempt),
            static_cast<std::size_t>(result.overall.attempts));
  EXPECT_EQ(trace->count(TraceKind::kAdmission),
            static_cast<std::size_t>(result.overall.admissions));
  EXPECT_EQ(trace->count(TraceKind::kRejection),
            static_cast<std::size_t>(result.overall.rejections));
  EXPECT_EQ(trace->count(TraceKind::kSessionEnd),
            static_cast<std::size_t>(result.sessions_completed));
  // Seeds + completed requesters became suppliers.
  EXPECT_EQ(trace->count(TraceKind::kBecameSupplier),
            static_cast<std::size_t>(4 + result.sessions_completed));
}

TEST(EngineTrace, JourneysAreWellFormed) {
  StreamingSystem system(traced_config());
  (void)system.run();
  const TraceLog* trace = system.trace();
  ASSERT_NE(trace, nullptr);

  // For every admitted peer: first-request, then >=1 attempts, one
  // admission; rejections == attempts - 1; if its session completed, a
  // session-end followed by became-supplier.
  for (std::uint64_t peer = 4; peer < 34; ++peer) {
    const auto journey = trace->journey(core::PeerId{peer});
    if (journey.empty()) continue;  // never requested within the horizon
    EXPECT_EQ(journey.front().kind, TraceKind::kFirstRequest);
    std::size_t attempts = 0, admissions = 0, rejections = 0;
    for (std::size_t i = 1; i < journey.size(); ++i) {
      EXPECT_GE(journey[i].t, journey[i - 1].t);
      switch (journey[i].kind) {
        case TraceKind::kAttempt: ++attempts; break;
        case TraceKind::kAdmission: ++admissions; break;
        case TraceKind::kRejection: ++rejections; break;
        default: break;
      }
    }
    EXPECT_LE(admissions, 1u);
    EXPECT_EQ(rejections + admissions, attempts);
  }
}

}  // namespace
}  // namespace p2ps::engine
