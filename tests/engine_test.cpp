// Tests for the session-level simulation engine: lifecycle, determinism,
// invariants, and the protocol knobs.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "engine/streaming_system.hpp"
#include "util/assert.hpp"

namespace p2ps::engine {
namespace {

using util::SimTime;

/// A small but non-trivial configuration that runs in milliseconds.
SimulationConfig small_config(std::uint64_t seed = 42) {
  SimulationConfig config;
  config.population.seeds = 6;
  config.population.requesters = 60;
  config.population.class_fractions = {0.25, 0.25, 0.25, 0.25};
  config.pattern = workload::ArrivalPattern::kConstant;
  config.arrival_window = SimTime::hours(4);
  config.horizon = SimTime::hours(12);
  config.seed = seed;
  return config;
}

TEST(Engine, ConservationOfPeers) {
  StreamingSystem system(small_config());
  const auto result = system.run();

  std::int64_t first_requests = 0;
  std::int64_t admissions = 0;
  for (const auto& counters : result.totals) {
    first_requests += counters.first_requests;
    admissions += counters.admissions;
    EXPECT_LE(counters.admissions, counters.first_requests);
  }
  EXPECT_EQ(first_requests, 60);
  // Every admitted peer whose session completed is now a supplier.
  EXPECT_EQ(result.suppliers_at_end,
            6 + result.sessions_completed);
  EXPECT_EQ(admissions, result.sessions_completed + result.sessions_active_at_end);
}

TEST(Engine, CapacityIsMonotoneWithoutChurn) {
  StreamingSystem system(small_config());
  const auto result = system.run();
  ASSERT_GE(result.hourly.size(), 2u);
  for (std::size_t i = 1; i < result.hourly.size(); ++i) {
    EXPECT_GE(result.hourly[i].capacity, result.hourly[i - 1].capacity);
  }
  // Initial capacity: 6 class-1 seeds → floor(3) = 3.
  EXPECT_EQ(result.hourly.front().capacity, 3);
  EXPECT_EQ(result.final_capacity, result.hourly.back().capacity);
  EXPECT_LE(result.final_capacity, result.max_capacity);
}

TEST(Engine, DeterministicReplay) {
  const auto a = StreamingSystem(small_config(7)).run();
  const auto b = StreamingSystem(small_config(7)).run();
  const auto c = StreamingSystem(small_config(8)).run();

  ASSERT_EQ(a.hourly.size(), b.hourly.size());
  for (std::size_t i = 0; i < a.hourly.size(); ++i) {
    EXPECT_EQ(a.hourly[i].capacity, b.hourly[i].capacity);
  }
  for (std::size_t i = 0; i < a.totals.size(); ++i) {
    EXPECT_EQ(a.totals[i].admissions, b.totals[i].admissions);
    EXPECT_EQ(a.totals[i].rejections, b.totals[i].rejections);
  }
  EXPECT_EQ(a.events_executed, b.events_executed);

  // A different seed takes a different trajectory (total events virtually
  // never coincide with rejections in play).
  bool any_difference = c.events_executed != a.events_executed;
  for (std::size_t i = 0; !any_difference && i < a.totals.size(); ++i) {
    any_difference = a.totals[i].rejections != c.totals[i].rejections;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Engine, BufferingDelayIsAtLeastTwoSuppliers) {
  const auto result = StreamingSystem(small_config()).run();
  for (const auto& counters : result.totals) {
    if (counters.admissions > 0) {
      EXPECT_GE(*counters.mean_delay_dt(), 2.0);  // largest offer is R0/2
      EXPECT_LE(*counters.mean_delay_dt(), 16.0);
    }
  }
}

TEST(Engine, RunTwiceThrows) {
  StreamingSystem system(small_config());
  (void)system.run();
  EXPECT_THROW((void)system.run(), util::ContractViolation);
}

TEST(Engine, NdacVectorsStayAllOnes) {
  auto config = as_ndac(small_config());
  StreamingSystem system(config);
  (void)system.run();
  for (std::uint64_t i = 0; i < 6; ++i) {
    const auto* state = system.supplier_state(core::PeerId{i});
    ASSERT_NE(state, nullptr);
    EXPECT_TRUE(state->vector().fully_relaxed());
    EXPECT_FALSE(state->differentiated());
  }
}

TEST(Engine, DacSeedsEventuallyRelax) {
  // With only a trickle of demand and a short T_out, idle elevation should
  // fully relax the class-1 seeds by the end of the run.
  auto config = small_config();
  config.protocol.t_out = SimTime::minutes(5);
  config.population.requesters = 4;
  StreamingSystem system(config);
  (void)system.run();
  for (std::uint64_t i = 0; i < 6; ++i) {
    const auto* state = system.supplier_state(core::PeerId{i});
    ASSERT_NE(state, nullptr);
    EXPECT_TRUE(state->vector().fully_relaxed()) << "seed " << i;
  }
}

TEST(Engine, SupplierStateIsNullForNonSuppliers) {
  auto config = small_config();
  config.population.requesters = 10;
  // Arrival window starts after 0; peer 6 (first requester) is not a
  // supplier before run().
  StreamingSystem system(config);
  EXPECT_EQ(system.supplier_state(core::PeerId{6}), nullptr);
  EXPECT_EQ(system.capacity(), 0);  // seeds register at run() start
  (void)system.run();
  EXPECT_GT(system.capacity(), 0);
}

TEST(Engine, MostPeersAdmittedEventually) {
  // Generous horizon: virtually everyone should get in.
  auto config = small_config();
  config.horizon = SimTime::hours(48);
  const auto result = StreamingSystem(config).run();
  EXPECT_GE(result.overall.admissions, 55);  // of 60
}

TEST(Engine, ChordLookupBackendWorks) {
  auto config = small_config();
  config.lookup = LookupKind::kChord;
  const auto result = StreamingSystem(config).run();
  EXPECT_GT(result.overall.admissions, 0);
  EXPECT_GT(result.final_capacity, 3);
  // Candidate queries were served by routed lookups with sane hop counts.
  EXPECT_GT(result.lookup_routed, 0u);
  EXPECT_GT(result.lookup_mean_hops, 0.0);
  EXPECT_LT(result.lookup_mean_hops, 16.0);  // << log2-ish for ~70 peers
}

TEST(Engine, DirectoryBackendReportsNoRoutingStats) {
  const auto result = StreamingSystem(small_config()).run();
  EXPECT_EQ(result.lookup_routed, 0u);
}

TEST(Engine, PeerDownProbabilitySlowsAdmission) {
  auto healthy_config = small_config(3);
  auto flaky_config = small_config(3);
  flaky_config.peer_down_probability = 0.8;
  const auto healthy = StreamingSystem(healthy_config).run();
  const auto flaky = StreamingSystem(flaky_config).run();
  EXPECT_GT(healthy.overall.admissions, 0);
  EXPECT_GT(flaky.overall.admissions, 0);  // the system still progresses
  // With 80% of probes lost, peers accumulate strictly more rejections.
  EXPECT_GT(flaky.overall.rejections, healthy.overall.rejections);
}

TEST(Engine, MaxCardinalitySelectionInflatesDelay) {
  auto narrow = small_config(5);
  narrow.horizon = SimTime::hours(24);
  auto wide = narrow;
  wide.selection_policy = &core::max_cardinality_policy();
  const auto narrow_result = StreamingSystem(narrow).run();
  const auto wide_result = StreamingSystem(wide).run();
  ASSERT_GT(narrow_result.overall.admissions, 0);
  ASSERT_GT(wide_result.overall.admissions, 0);
  const double narrow_delay = narrow_result.overall.buffering_delay_dt_sum /
                              static_cast<double>(narrow_result.overall.admissions);
  const double wide_delay = wide_result.overall.buffering_delay_dt_sum /
                            static_cast<double>(wide_result.overall.admissions);
  EXPECT_GE(wide_delay, narrow_delay);
}

TEST(Engine, SupplierDeparturesShrinkTheLedger) {
  auto stable = small_config(13);
  auto churny = small_config(13);
  churny.supplier_departure_probability = 0.5;
  churny.horizon = SimTime::hours(24);
  stable.horizon = SimTime::hours(24);

  const auto stable_result = StreamingSystem(stable).run();
  const auto churny_result = StreamingSystem(churny).run();

  EXPECT_EQ(stable_result.suppliers_departed, 0);
  EXPECT_GT(churny_result.suppliers_departed, 0);
  // Conservation with departures: everyone who ever became a supplier is
  // either still registered or departed.
  EXPECT_EQ(churny_result.suppliers_at_end + churny_result.suppliers_departed,
            6 + churny_result.sessions_completed);
  // Churn costs capacity (invariant checker ran throughout the run).
  EXPECT_LT(churny_result.final_capacity, stable_result.final_capacity);
}

TEST(Engine, HeavyChurnDoesNotDeadlock) {
  auto config = small_config(14);
  config.supplier_departure_probability = 0.9;
  config.horizon = SimTime::hours(48);
  const auto result = StreamingSystem(config).run();
  // With 90% of suppliers evaporating after each served session the system
  // barely grows, but it must stay live and consistent.
  EXPECT_GT(result.overall.admissions, 0);
  EXPECT_EQ(result.suppliers_at_end + result.suppliers_departed,
            6 + result.sessions_completed);
}

TEST(Engine, DepartureProbabilityValidation) {
  auto config = small_config();
  config.supplier_departure_probability = 1.0;
  EXPECT_THROW(StreamingSystem{config}, util::ContractViolation);
  config = small_config();
  config.defection_probability = 1.5;
  EXPECT_THROW(StreamingSystem{config}, util::ContractViolation);
}

TEST(Engine, DefectionSlowsAmplification) {
  auto honest = small_config(19);
  honest.horizon = SimTime::hours(24);
  auto defecting = honest;
  defecting.defection_probability = 1.0;  // everyone reneges to class 4
  const auto honest_result = StreamingSystem(honest).run();
  const auto defecting_result = StreamingSystem(defecting).run();
  // Admission still works (pledges are honored *until* the session ends),
  // but the defecting community accumulates far less capacity.
  EXPECT_GT(defecting_result.overall.admissions, 0);
  EXPECT_LT(defecting_result.final_capacity, honest_result.final_capacity);
}

TEST(Engine, RemindersCanBeDisabled) {
  auto config = small_config();
  config.protocol.reminders_enabled = false;
  const auto result = StreamingSystem(config).run();
  EXPECT_GT(result.overall.admissions, 0);
}

TEST(Engine, ResultTimeQueries) {
  const auto result = StreamingSystem(small_config()).run();
  EXPECT_EQ(result.capacity_at(SimTime::zero()), 3);
  EXPECT_EQ(result.capacity_at(result.hourly.back().t), result.final_capacity);
  // Between samples, the prior sample answers.
  EXPECT_EQ(result.sample_at(SimTime::minutes(90)).t, SimTime::hours(1));
}

TEST(Engine, RandomizedArrivalsStillConserve) {
  auto config = small_config(23);
  config.randomize_arrivals = true;
  const auto result = StreamingSystem(config).run();
  EXPECT_EQ(result.overall.first_requests, 60);
  EXPECT_EQ(result.suppliers_at_end, 6 + result.sessions_completed);
  // Reproducible: same seed, same trajectory.
  auto config2 = config;
  const auto result2 = StreamingSystem(config2).run();
  EXPECT_EQ(result.events_executed, result2.events_executed);
}

TEST(Engine, PrintSummaryIsReadable) {
  const auto result = StreamingSystem(small_config()).run();
  std::ostringstream os;
  print_summary(os, result);
  const std::string text = os.str();
  EXPECT_NE(text.find("final capacity"), std::string::npos);
  EXPECT_NE(text.find("suppliers at end"), std::string::npos);
  EXPECT_NE(text.find("adm-rate%"), std::string::npos);
  // One row per class.
  for (const char* cls : {"\n    1", "\n    2", "\n    3", "\n    4"}) {
    EXPECT_NE(text.find(cls), std::string::npos) << "missing row" << cls;
  }
}

TEST(Engine, ConfigValidation) {
  auto config = small_config();
  config.protocol.num_classes = 3;  // mismatch with population (4 fractions)
  EXPECT_THROW(StreamingSystem{config}, util::ContractViolation);

  config = small_config();
  config.protocol.m_candidates = 0;
  EXPECT_THROW(StreamingSystem{config}, util::ContractViolation);

  config = small_config();
  config.horizon = SimTime::hours(1);  // shorter than the arrival window
  EXPECT_THROW(StreamingSystem{config}, util::ContractViolation);

  config = small_config();
  config.peer_down_probability = 1.0;
  EXPECT_THROW(StreamingSystem{config}, util::ContractViolation);
}

TEST(Engine, FavoredSamplesCoverSupplierClasses) {
  auto config = small_config();
  const auto result = StreamingSystem(config).run();
  ASSERT_FALSE(result.favored.empty());
  // Seeds are class 1: the class-1 series must be present from t=0 with a
  // lowest favored class inside [1, 4].
  const auto& first = result.favored.front();
  ASSERT_EQ(first.avg_lowest_favored.size(), 4u);
  EXPECT_GE(first.avg_lowest_favored[0], 1.0);
  EXPECT_LE(first.avg_lowest_favored[0], 4.0);
}

TEST(Engine, SessionsOccupySuppliersForShowTime) {
  // One requester and exactly two seeds: the session must hold both seeds
  // busy for the full hour.
  SimulationConfig config;
  config.population.seeds = 2;
  config.population.requesters = 1;
  config.population.class_fractions = {1.0, 0.0, 0.0, 0.0};
  config.pattern = workload::ArrivalPattern::kConstant;
  config.arrival_window = SimTime::hours(1);
  config.horizon = SimTime::hours(4);
  config.seed = 1;
  const auto result = StreamingSystem(config).run();
  EXPECT_EQ(result.overall.admissions, 1);
  EXPECT_EQ(result.sessions_completed, 1);
  EXPECT_EQ(result.totals[0].buffering_delay_dt_sum, 2.0);  // two suppliers
  // Final capacity: 2 seeds + 1 new class-1 supplier = 1.5 → 1... wait:
  // 3 × R0/2 = 1.5 R0 → capacity 1.
  EXPECT_EQ(result.final_capacity, 1);
}

}  // namespace
}  // namespace p2ps::engine
