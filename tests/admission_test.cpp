// Tests for the DAC_p2p admission machinery (paper Section 4): probability
// vectors, supplier state machine, reminders, requester backoff.
#include <gtest/gtest.h>

#include <vector>

#include "core/admission/probability_vector.hpp"
#include "core/admission/requester.hpp"
#include "core/admission/supplier.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace p2ps::core {
namespace {

using util::SimTime;

// ---------- AdmissionProbabilityVector ----------

TEST(ProbabilityVector, PaperInitializationExample) {
  // Paper 4.1(a): class-2 supplier with K=4 starts at [1.0, 1.0, 0.5, 0.25].
  const AdmissionProbabilityVector v(4, 2);
  EXPECT_DOUBLE_EQ(v.probability(1), 1.0);
  EXPECT_DOUBLE_EQ(v.probability(2), 1.0);
  EXPECT_DOUBLE_EQ(v.probability(3), 0.5);
  EXPECT_DOUBLE_EQ(v.probability(4), 0.25);
  EXPECT_TRUE(v.favors(1));
  EXPECT_TRUE(v.favors(2));
  EXPECT_FALSE(v.favors(3));
  EXPECT_EQ(v.lowest_favored_class(), 2);
}

TEST(ProbabilityVector, HighestClassSupplierFavorsOnlyItself) {
  const AdmissionProbabilityVector v(4, 1);
  EXPECT_DOUBLE_EQ(v.probability(1), 1.0);
  EXPECT_DOUBLE_EQ(v.probability(2), 0.5);
  EXPECT_DOUBLE_EQ(v.probability(4), 0.125);
  EXPECT_EQ(v.lowest_favored_class(), 1);
}

TEST(ProbabilityVector, LowestClassSupplierStartsFullyRelaxed) {
  const AdmissionProbabilityVector v(4, 4);
  EXPECT_TRUE(v.fully_relaxed());
  EXPECT_EQ(v.lowest_favored_class(), 4);
}

TEST(ProbabilityVector, ElevateDoublesAndCaps) {
  AdmissionProbabilityVector v(4, 1);  // [1, .5, .25, .125]
  v.elevate();
  EXPECT_DOUBLE_EQ(v.probability(2), 1.0);
  EXPECT_DOUBLE_EQ(v.probability(3), 0.5);
  EXPECT_DOUBLE_EQ(v.probability(4), 0.25);
  v.elevate();
  v.elevate();
  EXPECT_TRUE(v.fully_relaxed());
  v.elevate();  // idempotent once fully relaxed
  EXPECT_TRUE(v.fully_relaxed());
}

TEST(ProbabilityVector, ElevationTakesExactlyClassDistanceSteps) {
  AdmissionProbabilityVector v(6, 1);
  int steps = 0;
  while (!v.fully_relaxed()) {
    v.elevate();
    ++steps;
  }
  EXPECT_EQ(steps, 5);  // K-1 doublings for a class-1 supplier
}

TEST(ProbabilityVector, TightenAdoptsTargetProfile) {
  AdmissionProbabilityVector v = AdmissionProbabilityVector::all_ones(4);
  v.tighten_to(2);
  EXPECT_EQ(v, AdmissionProbabilityVector(4, 2));
  // Tightening below one's own class is possible (paper 4.1(c)): a class-3
  // supplier reminded by a class-1 peer adopts the class-1 profile.
  AdmissionProbabilityVector w(4, 3);
  w.tighten_to(1);
  EXPECT_EQ(w, AdmissionProbabilityVector(4, 1));
  EXPECT_FALSE(w.favors(3));  // its own class is no longer favored
}

TEST(ProbabilityVector, ElevationRecoversAfterTighten) {
  AdmissionProbabilityVector v(4, 4);
  v.tighten_to(1);
  // All entries below 1.0 must double — including ones at or below the
  // supplier's own class (documented ambiguity resolution #2).
  v.elevate();
  EXPECT_DOUBLE_EQ(v.probability(2), 1.0);
  EXPECT_DOUBLE_EQ(v.probability(3), 0.5);
  v.elevate();
  v.elevate();
  EXPECT_TRUE(v.fully_relaxed());
}

TEST(ProbabilityVector, AllOnesIsNdacVector) {
  const auto v = AdmissionProbabilityVector::all_ones(4);
  for (PeerClass c = 1; c <= 4; ++c) EXPECT_DOUBLE_EQ(v.probability(c), 1.0);
  EXPECT_TRUE(v.fully_relaxed());
  EXPECT_EQ(v.lowest_favored_class(), 4);
}

TEST(ProbabilityVector, InvalidConstructionThrows) {
  EXPECT_THROW(AdmissionProbabilityVector(4, 0), util::ContractViolation);
  EXPECT_THROW(AdmissionProbabilityVector(4, 5), util::ContractViolation);
  const AdmissionProbabilityVector v(4, 2);
  EXPECT_THROW((void)v.probability(0), util::ContractViolation);
  EXPECT_THROW((void)v.probability(5), util::ContractViolation);
}

// ---------- SupplierAdmission ----------

TEST(SupplierAdmission, GrantsFavoredClassesDeterministically) {
  SupplierAdmission s(4, 2, /*differentiated=*/true);
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(s.handle_probe(1, rng).reply, ProbeReply::kGranted);
    EXPECT_EQ(s.handle_probe(2, rng).reply, ProbeReply::kGranted);
  }
}

TEST(SupplierAdmission, LowerClassGrantRateMatchesVector) {
  SupplierAdmission s(4, 1, /*differentiated=*/true);  // P[4] = 0.125
  util::Rng rng(7);
  int granted = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    granted += (s.handle_probe(4, rng).reply == ProbeReply::kGranted);
  }
  EXPECT_NEAR(static_cast<double>(granted) / n, 0.125, 0.01);
}

TEST(SupplierAdmission, BusyRepliesBusyAndTracksFavoredRequests) {
  SupplierAdmission s(4, 2, true);
  util::Rng rng(2);
  s.on_session_start();
  EXPECT_TRUE(s.busy());
  EXPECT_FALSE(s.favored_request_seen());
  const auto outcome = s.handle_probe(3, rng);  // class 3 not favored
  EXPECT_EQ(outcome.reply, ProbeReply::kBusy);
  EXPECT_FALSE(outcome.favors_requester);
  EXPECT_FALSE(s.favored_request_seen());
  const auto favored = s.handle_probe(1, rng);  // class 1 favored
  EXPECT_EQ(favored.reply, ProbeReply::kBusy);
  EXPECT_TRUE(favored.favors_requester);
  EXPECT_TRUE(s.favored_request_seen());
}

TEST(SupplierAdmission, QuietSessionEndElevates) {
  SupplierAdmission s(4, 1, true);
  s.on_session_start();
  s.on_session_end();  // nobody asked: relax
  EXPECT_DOUBLE_EQ(s.vector().probability(2), 1.0);
  EXPECT_DOUBLE_EQ(s.vector().probability(3), 0.5);
}

TEST(SupplierAdmission, UnfavoredRequestsStillElevate) {
  SupplierAdmission s(4, 1, true);
  util::Rng rng(3);
  s.on_session_start();
  (void)s.handle_probe(4, rng);  // class 4 is not favored by a class-1 peer
  s.on_session_end();
  EXPECT_DOUBLE_EQ(s.vector().probability(2), 1.0);  // still relaxed
}

TEST(SupplierAdmission, ReminderTightensToHighestReminderClass) {
  SupplierAdmission s(4, 4, true);  // starts fully relaxed; favors 1..4
  util::Rng rng(4);
  s.on_session_start();
  (void)s.handle_probe(3, rng);  // favored request while busy
  s.leave_reminder(3);
  (void)s.handle_probe(2, rng);
  s.leave_reminder(2);
  s.on_session_end();
  // k̂ = 2 (highest class among reminders): profile of a class-2 peer.
  EXPECT_EQ(s.vector(), AdmissionProbabilityVector(4, 2));
}

TEST(SupplierAdmission, FavoredRequestsWithoutRemindersLeaveVectorUnchanged) {
  SupplierAdmission s(4, 2, true);
  util::Rng rng(5);
  const auto before = s.vector();
  s.on_session_start();
  (void)s.handle_probe(1, rng);  // favored, but no reminder left
  s.on_session_end();
  EXPECT_EQ(s.vector(), before);  // documented ambiguity resolution #1
}

TEST(SupplierAdmission, RemindersClearedBetweenSessions) {
  SupplierAdmission s(4, 4, true);
  util::Rng rng(6);
  s.on_session_start();
  (void)s.handle_probe(1, rng);
  s.leave_reminder(1);
  s.on_session_end();
  EXPECT_TRUE(s.pending_reminders().empty());
  // Next quiet session relaxes from the tightened profile.
  s.on_session_start();
  s.on_session_end();
  EXPECT_DOUBLE_EQ(s.vector().probability(2), 1.0);
}

TEST(SupplierAdmission, IdleTimeoutElevates) {
  SupplierAdmission s(4, 1, true);
  s.on_idle_timeout();
  EXPECT_DOUBLE_EQ(s.vector().probability(2), 1.0);
  EXPECT_DOUBLE_EQ(s.vector().probability(4), 0.25);
}

TEST(SupplierAdmission, NdacModeNeverAdaptsAndAlwaysGrantsWhenIdle) {
  SupplierAdmission s(4, 1, /*differentiated=*/false);
  util::Rng rng(8);
  for (PeerClass c = 1; c <= 4; ++c) {
    EXPECT_EQ(s.handle_probe(c, rng).reply, ProbeReply::kGranted);
  }
  s.on_session_start();
  (void)s.handle_probe(1, rng);
  s.leave_reminder(1);  // ignored in NDAC mode
  s.on_session_end();
  EXPECT_TRUE(s.vector().fully_relaxed());
  s.on_idle_timeout();  // no-op
  EXPECT_TRUE(s.vector().fully_relaxed());
  EXPECT_FALSE(s.favored_request_seen());
}

TEST(SupplierAdmission, LifecycleContractViolations) {
  SupplierAdmission s(4, 2, true);
  EXPECT_THROW(s.on_session_end(), util::ContractViolation);   // not busy
  EXPECT_THROW(s.leave_reminder(1), util::ContractViolation);  // not busy (DAC)
  s.on_session_start();
  EXPECT_THROW(s.on_session_start(), util::ContractViolation);  // double start
  EXPECT_THROW(s.on_idle_timeout(), util::ContractViolation);   // busy
}

// ---------- RequesterBackoff ----------

TEST(RequesterBackoff, PaperExponentialSequence) {
  // T_bkf = 10 min, E_bkf = 2: backoffs 10, 20, 40, 80 minutes.
  RequesterBackoff b(SimTime::minutes(10), 2);
  EXPECT_EQ(b.on_rejected(), SimTime::minutes(10));
  EXPECT_EQ(b.on_rejected(), SimTime::minutes(20));
  EXPECT_EQ(b.on_rejected(), SimTime::minutes(40));
  EXPECT_EQ(b.on_rejected(), SimTime::minutes(80));
  EXPECT_EQ(b.rejections(), 4);
  EXPECT_EQ(b.total_waiting(), SimTime::minutes(150));
}

TEST(RequesterBackoff, ConstantBackoffWhenFactorIsOne) {
  RequesterBackoff b(SimTime::minutes(10), 1);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(b.on_rejected(), SimTime::minutes(10));
  EXPECT_EQ(b.total_waiting(), SimTime::minutes(50));
}

TEST(RequesterBackoff, ClosedFormMatchesAccumulation) {
  for (std::int64_t e_bkf : {1, 2, 3, 4}) {
    RequesterBackoff b(SimTime::minutes(10), e_bkf);
    for (int r = 1; r <= 6; ++r) {
      (void)b.on_rejected();
      EXPECT_EQ(b.total_waiting(),
                RequesterBackoff::waiting_time_for(r, SimTime::minutes(10), e_bkf));
    }
  }
}

TEST(RequesterBackoff, SaturatesInsteadOfOverflowing) {
  RequesterBackoff b(SimTime::minutes(10), 4);
  SimTime last = SimTime::zero();
  for (int i = 0; i < 60; ++i) last = b.on_rejected();
  EXPECT_GT(last, SimTime::zero());  // no wraparound to negative
}

TEST(RequesterBackoff, InvalidParametersThrow) {
  EXPECT_THROW(RequesterBackoff(SimTime::zero(), 2), util::ContractViolation);
  EXPECT_THROW(RequesterBackoff(SimTime::minutes(10), 0), util::ContractViolation);
}

// ---------- reminder_set ----------

TEST(ReminderSet, CoversShortfallHighClassFirst) {
  // Shortfall 1/2; busy favored candidates of classes 2,2,3 → picks the two
  // class-2 peers (1/4 + 1/4).
  const std::vector<BusyCandidate> busy{
      {0, 3, true}, {1, 2, true}, {2, 2, true}};
  const auto omega = reminder_set(busy, Bandwidth::class_offer(1));
  EXPECT_EQ(omega, (std::vector<std::size_t>{1, 2}));
}

TEST(ReminderSet, SkipsNonFavoringCandidates) {
  const std::vector<BusyCandidate> busy{
      {0, 1, false}, {1, 1, true}, {2, 1, false}};
  const auto omega = reminder_set(busy, Bandwidth::class_offer(1));
  EXPECT_EQ(omega, (std::vector<std::size_t>{1}));
}

TEST(ReminderSet, PartialCoverageWhenShortfallNotReachable) {
  // Shortfall R0 but only 1/8 available: the greedy prefix that fits.
  const std::vector<BusyCandidate> busy{{0, 3, true}};
  const auto omega = reminder_set(busy, Bandwidth::playback_rate());
  EXPECT_EQ(omega, (std::vector<std::size_t>{0}));
}

TEST(ReminderSet, ZeroShortfallMeansNoReminders) {
  const std::vector<BusyCandidate> busy{{0, 1, true}};
  EXPECT_TRUE(reminder_set(busy, Bandwidth::zero()).empty());
}

TEST(ReminderSet, StopsOnceCovered) {
  const std::vector<BusyCandidate> busy{
      {0, 1, true}, {1, 1, true}, {2, 2, true}};
  const auto omega = reminder_set(busy, Bandwidth::class_offer(1));
  EXPECT_EQ(omega, (std::vector<std::size_t>{0}));
}

TEST(ReminderSet, SkipsOvershootingOffers) {
  // Shortfall 1/4: a class-1 (1/2) busy candidate overshoots and must be
  // skipped in favor of the exact class-2.
  const std::vector<BusyCandidate> busy{{0, 1, true}, {1, 2, true}};
  const auto omega = reminder_set(busy, Bandwidth::class_offer(2));
  EXPECT_EQ(omega, (std::vector<std::size_t>{1}));
}

}  // namespace
}  // namespace p2ps::core
