// Tests for the Zipf popularity model and the multi-file catalog engine.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "engine/catalog_system.hpp"
#include "util/assert.hpp"
#include "workload/zipf.hpp"

namespace p2ps {
namespace {

using util::SimTime;

// ---------- Zipf ----------

TEST(Zipf, UniformWhenSkewIsZero) {
  const workload::ZipfDistribution zipf(10, 0.0);
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(zipf.pmf(k), 0.1, 1e-12);
  }
}

TEST(Zipf, PmfSumsToOneAndDecreases) {
  const workload::ZipfDistribution zipf(50, 1.0);
  double total = 0.0;
  for (std::size_t k = 0; k < 50; ++k) {
    total += zipf.pmf(k);
    if (k > 0) {
      EXPECT_LT(zipf.pmf(k), zipf.pmf(k - 1));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, PmfRatiosFollowTheLaw) {
  const workload::ZipfDistribution zipf(100, 1.0);
  // P(1)/P(2) = 2 for s=1.
  EXPECT_NEAR(zipf.pmf(0) / zipf.pmf(1), 2.0, 1e-9);
  EXPECT_NEAR(zipf.pmf(0) / zipf.pmf(3), 4.0, 1e-9);
}

TEST(Zipf, SamplingMatchesPmf) {
  const workload::ZipfDistribution zipf(5, 0.8);
  util::Rng rng(4);
  std::vector<int> counts(5, 0);
  const int n = 200'000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.pmf(k), 0.005)
        << "rank " << k;
  }
}

TEST(Zipf, SingleItemCatalog) {
  const workload::ZipfDistribution zipf(1, 2.0);
  util::Rng rng(1);
  EXPECT_EQ(zipf.sample(rng), 0u);
  EXPECT_NEAR(zipf.pmf(0), 1.0, 1e-12);
}

TEST(Zipf, InvalidArgumentsThrow) {
  EXPECT_THROW(workload::ZipfDistribution(0, 1.0), util::ContractViolation);
  EXPECT_THROW(workload::ZipfDistribution(5, -0.1), util::ContractViolation);
  const workload::ZipfDistribution zipf(5, 1.0);
  EXPECT_THROW((void)zipf.pmf(5), util::ContractViolation);
}

// ---------- catalog engine ----------

engine::CatalogConfig small_catalog(std::uint64_t seed = 5) {
  engine::CatalogConfig config;
  config.files = 5;
  config.zipf_skew = 1.0;
  config.population.seeds = 4;  // per file
  config.population.requesters = 200;
  config.population.class_fractions = {0.25, 0.25, 0.25, 0.25};
  config.pattern = workload::ArrivalPattern::kConstant;
  config.arrival_window = SimTime::hours(6);
  config.horizon = SimTime::hours(18);
  config.seed = seed;
  return config;
}

TEST(CatalogEngine, ConservationAcrossFiles) {
  engine::CatalogStreamingSystem system(small_catalog());
  const auto result = system.run();

  std::int64_t requests = 0, admissions = 0, suppliers = 0;
  for (const auto& stats : result.per_file) {
    requests += stats.requests;
    admissions += stats.admissions;
    suppliers += stats.suppliers;
    EXPECT_LE(stats.admissions, stats.requests);
  }
  EXPECT_EQ(requests, 200);
  EXPECT_EQ(admissions, result.overall.overall.admissions);
  EXPECT_EQ(suppliers, result.overall.suppliers_at_end);
  // Every file keeps its seeds; served requesters add on top.
  EXPECT_EQ(result.overall.suppliers_at_end,
            5 * 4 + result.overall.sessions_completed);
}

TEST(CatalogEngine, PopularFilesAmplifyFaster) {
  auto config = small_catalog();
  config.population.requesters = 2000;
  config.arrival_window = SimTime::hours(12);
  config.horizon = SimTime::hours(36);
  const auto result = engine::CatalogStreamingSystem(config).run();

  // Zipf(1.0) over 5 files: rank 0 draws ~44% of requests, rank 4 ~9%.
  EXPECT_GT(result.per_file[0].requests, 2 * result.per_file[4].requests);
  // Self-amplification follows demand: the most popular file ends with the
  // largest supplier population and capacity.
  EXPECT_GT(result.per_file[0].suppliers, result.per_file[4].suppliers);
  EXPECT_GT(result.per_file[0].capacity, result.per_file[4].capacity);
}

TEST(CatalogEngine, DeterministicForSameSeed) {
  const auto a = engine::CatalogStreamingSystem(small_catalog(9)).run();
  const auto b = engine::CatalogStreamingSystem(small_catalog(9)).run();
  EXPECT_EQ(a.overall.events_executed, b.overall.events_executed);
  for (std::size_t f = 0; f < a.per_file.size(); ++f) {
    EXPECT_EQ(a.per_file[f].requests, b.per_file[f].requests);
    EXPECT_EQ(a.per_file[f].capacity, b.per_file[f].capacity);
  }
}

TEST(CatalogEngine, TimerStrategiesAgreeOnEveryProtocolResult) {
  // The catalog engine has no registered scenario, so the registry-wide
  // timer-parity test does not cover it; pin the contract here: every
  // non-mechanics result is identical under all three strategies.
  std::vector<engine::CatalogResult> runs;
  for (const sim::TimerStrategy strategy :
       {sim::TimerStrategy::kEvents, sim::TimerStrategy::kWheel,
        sim::TimerStrategy::kLazy}) {
    auto config = small_catalog(11);
    config.timers.strategy = strategy;
    runs.push_back(engine::CatalogStreamingSystem(config).run());
  }
  const auto& reference = runs.front();
  EXPECT_GT(reference.overall.overall.admissions, 0);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const auto& run = runs[i];
    EXPECT_EQ(run.overall.overall.admissions, reference.overall.overall.admissions);
    EXPECT_EQ(run.overall.overall.rejections, reference.overall.overall.rejections);
    EXPECT_EQ(run.overall.final_capacity, reference.overall.final_capacity);
    EXPECT_EQ(run.overall.suppliers_at_end, reference.overall.suppliers_at_end);
    EXPECT_EQ(run.overall.sessions_completed, reference.overall.sessions_completed);
    ASSERT_EQ(run.per_file.size(), reference.per_file.size());
    for (std::size_t f = 0; f < run.per_file.size(); ++f) {
      EXPECT_EQ(run.per_file[f].requests, reference.per_file[f].requests);
      EXPECT_EQ(run.per_file[f].admissions, reference.per_file[f].admissions);
      EXPECT_EQ(run.per_file[f].suppliers, reference.per_file[f].suppliers);
      EXPECT_EQ(run.per_file[f].capacity, reference.per_file[f].capacity);
    }
    ASSERT_EQ(run.overall.hourly.size(), reference.overall.hourly.size());
    for (std::size_t h = 0; h < run.overall.hourly.size(); ++h) {
      EXPECT_EQ(run.overall.hourly[h].capacity,
                reference.overall.hourly[h].capacity);
    }
  }
  // The strategies differ exactly where they should: the events baseline
  // carries one pending simulator event per armed timer at its peak.
  EXPECT_GT(runs[0].overall.peak_event_list_timers, 1);
  EXPECT_LE(runs[1].overall.peak_event_list_timers, 1);
  EXPECT_LE(runs[2].overall.peak_event_list_timers, 1);
}

TEST(CatalogEngine, SingleFileDegeneratesToBaseSystem) {
  auto config = small_catalog();
  config.files = 1;
  const auto result = engine::CatalogStreamingSystem(config).run();
  ASSERT_EQ(result.per_file.size(), 1u);
  EXPECT_EQ(result.per_file[0].requests, 200);
  EXPECT_EQ(result.per_file[0].capacity, result.overall.final_capacity);
}

TEST(CatalogEngine, NdacModeRuns) {
  auto config = small_catalog();
  config.protocol.differentiated = false;
  const auto result = engine::CatalogStreamingSystem(config).run();
  EXPECT_GT(result.overall.overall.admissions, 0);
}

TEST(CatalogEngine, RunTwiceThrows) {
  engine::CatalogStreamingSystem system(small_catalog());
  (void)system.run();
  EXPECT_THROW((void)system.run(), util::ContractViolation);
}

TEST(CatalogEngine, ConfigValidation) {
  auto config = small_catalog();
  config.files = 0;
  EXPECT_THROW(engine::CatalogStreamingSystem{config}, util::ContractViolation);
  config = small_catalog();
  config.zipf_skew = -1.0;
  EXPECT_THROW(engine::CatalogStreamingSystem{config}, util::ContractViolation);
}

}  // namespace
}  // namespace p2ps
