// Unit tests for the discrete-event simulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace p2ps::sim {
namespace {

using util::SimTime;

TEST(Simulator, StartsAtTimeZeroWithNoEvents) {
  Simulator s;
  EXPECT_EQ(s.now(), SimTime::zero());
  EXPECT_EQ(s.pending_count(), 0u);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(SimTime::seconds(30), [&] { order.push_back(3); });
  s.schedule_at(SimTime::seconds(10), [&] { order.push_back(1); });
  s.schedule_at(SimTime::seconds(20), [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), SimTime::seconds(30));
}

TEST(Simulator, SameTimestampIsFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(SimTime::seconds(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator s;
  SimTime seen = SimTime::zero();
  s.schedule_at(SimTime::minutes(7), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, SimTime::minutes(7));
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator s;
  std::vector<std::int64_t> times;
  s.schedule_at(SimTime::seconds(10), [&] {
    s.schedule_after(SimTime::seconds(5), [&] {
      times.push_back(s.now().as_millis());
    });
  });
  s.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], SimTime::seconds(15).as_millis());
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator s;
  s.schedule_at(SimTime::seconds(10), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(SimTime::seconds(5), [] {}), util::ContractViolation);
  EXPECT_THROW(s.schedule_after(SimTime::millis(-1), [] {}), util::ContractViolation);
}

TEST(Simulator, NullCallbackThrows) {
  Simulator s;
  EXPECT_THROW(s.schedule_at(SimTime::seconds(1), nullptr), util::ContractViolation);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  int fired = 0;
  const EventId id = s.schedule_at(SimTime::seconds(1), [&] { ++fired; });
  EXPECT_TRUE(s.pending(id));
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.pending(id));
  EXPECT_FALSE(s.cancel(id));  // double cancel reports false
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelFromInsideCallback) {
  Simulator s;
  int fired = 0;
  EventId victim = s.schedule_at(SimTime::seconds(2), [&] { ++fired; });
  s.schedule_at(SimTime::seconds(1), [&] { EXPECT_TRUE(s.cancel(victim)); });
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, ScheduleFromInsideCallback) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(SimTime::seconds(1), [&] {
    order.push_back(1);
    s.schedule_after(SimTime::zero(), [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator s;
  EXPECT_EQ(s.run_until(SimTime::hours(3)), 0u);
  EXPECT_EQ(s.now(), SimTime::hours(3));
}

TEST(Simulator, RunUntilExecutesOnlyDueEvents) {
  Simulator s;
  int early = 0, late = 0;
  s.schedule_at(SimTime::hours(1), [&] { ++early; });
  s.schedule_at(SimTime::hours(5), [&] { ++late; });
  EXPECT_EQ(s.run_until(SimTime::hours(2)), 1u);
  EXPECT_EQ(early, 1);
  EXPECT_EQ(late, 0);
  EXPECT_EQ(s.now(), SimTime::hours(2));
  EXPECT_EQ(s.pending_count(), 1u);
  s.run();
  EXPECT_EQ(late, 1);
}

TEST(Simulator, RunUntilIncludesBoundary) {
  Simulator s;
  int fired = 0;
  s.schedule_at(SimTime::hours(2), [&] { ++fired; });
  s.run_until(SimTime::hours(2));
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, MaxEventsLimit) {
  Simulator s;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(SimTime::seconds(i), [&] { ++fired; });
  }
  EXPECT_EQ(s.run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(s.pending_count(), 6u);
}

TEST(Simulator, ClearDropsEverything) {
  Simulator s;
  int fired = 0;
  s.schedule_at(SimTime::seconds(1), [&] { ++fired; });
  s.clear();
  s.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(s.pending_count(), 0u);
}

TEST(Simulator, ExecutedCountAccumulates) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.schedule_at(SimTime::seconds(i), [] {});
  s.run();
  EXPECT_EQ(s.executed_count(), 5u);
}

TEST(Simulator, RandomizedStressKeepsTimeMonotonic) {
  Simulator s;
  util::Rng rng(77);
  std::vector<std::int64_t> fire_times;
  int scheduled = 0;
  // Seed a few initial events; each event may schedule up to two more.
  std::function<void()> make_event = [&] {
    fire_times.push_back(s.now().as_millis());
    if (scheduled < 5000) {
      const int children = static_cast<int>(rng.uniform_below(3));
      for (int c = 0; c < children; ++c) {
        ++scheduled;
        s.schedule_after(SimTime::millis(rng.uniform_int(0, 1000)), make_event);
      }
    }
  };
  for (int i = 0; i < 10; ++i) {
    ++scheduled;
    s.schedule_at(SimTime::millis(rng.uniform_int(0, 1000)), make_event);
  }
  s.run();
  EXPECT_EQ(fire_times.size(), static_cast<std::size_t>(scheduled));
  EXPECT_TRUE(std::is_sorted(fire_times.begin(), fire_times.end()));
}

TEST(Simulator, ManyCancellationsDoNotLeak) {
  Simulator s;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(s.schedule_at(SimTime::seconds(1), [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) s.cancel(ids[i]);
  EXPECT_EQ(s.pending_count(), 500u);
  EXPECT_EQ(s.run(), 500u);
}

// ---------- Periodic ----------

TEST(Periodic, FiresAtFixedCadence) {
  Simulator s;
  std::vector<std::int64_t> ticks;
  Periodic p(s, SimTime::hours(1), SimTime::hours(1),
             [&](SimTime t) { ticks.push_back(t.as_millis() / 3'600'000); });
  s.run_until(SimTime::hours(5));
  p.stop();
  EXPECT_EQ(ticks, (std::vector<std::int64_t>{1, 2, 3, 4, 5}));
}

TEST(Periodic, StopHaltsFutureTicks) {
  Simulator s;
  int ticks = 0;
  Periodic p(s, SimTime::hours(1), SimTime::hours(1), [&](SimTime) { ++ticks; });
  s.run_until(SimTime::hours(2));
  p.stop();
  EXPECT_FALSE(p.running());
  s.run_until(SimTime::hours(10));
  EXPECT_EQ(ticks, 2);
}

TEST(Periodic, DestructorCancels) {
  Simulator s;
  int ticks = 0;
  {
    Periodic p(s, SimTime::hours(1), SimTime::hours(1), [&](SimTime) { ++ticks; });
  }
  s.run_until(SimTime::hours(5));
  EXPECT_EQ(ticks, 0);
}

TEST(Periodic, CanCoexistWithOtherEvents) {
  Simulator s;
  int ticks = 0, others = 0;
  Periodic p(s, SimTime::minutes(30), SimTime::minutes(30), [&](SimTime) { ++ticks; });
  s.schedule_at(SimTime::minutes(45), [&] { ++others; });
  s.run_until(SimTime::hours(2));
  p.stop();
  EXPECT_EQ(ticks, 4);
  EXPECT_EQ(others, 1);
}

}  // namespace
}  // namespace p2ps::sim
