// Unit tests for the discrete-event simulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace p2ps::sim {
namespace {

using util::SimTime;

TEST(Simulator, StartsAtTimeZeroWithNoEvents) {
  Simulator s;
  EXPECT_EQ(s.now(), SimTime::zero());
  EXPECT_EQ(s.pending_count(), 0u);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(SimTime::seconds(30), [&] { order.push_back(3); });
  s.schedule_at(SimTime::seconds(10), [&] { order.push_back(1); });
  s.schedule_at(SimTime::seconds(20), [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), SimTime::seconds(30));
}

TEST(Simulator, SameTimestampIsFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(SimTime::seconds(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator s;
  SimTime seen = SimTime::zero();
  s.schedule_at(SimTime::minutes(7), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, SimTime::minutes(7));
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator s;
  std::vector<std::int64_t> times;
  s.schedule_at(SimTime::seconds(10), [&] {
    s.schedule_after(SimTime::seconds(5), [&] {
      times.push_back(s.now().as_millis());
    });
  });
  s.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], SimTime::seconds(15).as_millis());
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator s;
  s.schedule_at(SimTime::seconds(10), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(SimTime::seconds(5), [] {}), util::ContractViolation);
  EXPECT_THROW(s.schedule_after(SimTime::millis(-1), [] {}), util::ContractViolation);
}

TEST(Simulator, NullCallbackThrows) {
  Simulator s;
  EXPECT_THROW(s.schedule_at(SimTime::seconds(1), nullptr), util::ContractViolation);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  int fired = 0;
  const EventId id = s.schedule_at(SimTime::seconds(1), [&] { ++fired; });
  EXPECT_TRUE(s.pending(id));
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.pending(id));
  EXPECT_FALSE(s.cancel(id));  // double cancel reports false
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelFromInsideCallback) {
  Simulator s;
  int fired = 0;
  EventId victim = s.schedule_at(SimTime::seconds(2), [&] { ++fired; });
  s.schedule_at(SimTime::seconds(1), [&] { EXPECT_TRUE(s.cancel(victim)); });
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, ScheduleFromInsideCallback) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(SimTime::seconds(1), [&] {
    order.push_back(1);
    s.schedule_after(SimTime::zero(), [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator s;
  EXPECT_EQ(s.run_until(SimTime::hours(3)), 0u);
  EXPECT_EQ(s.now(), SimTime::hours(3));
}

TEST(Simulator, RunUntilExecutesOnlyDueEvents) {
  Simulator s;
  int early = 0, late = 0;
  s.schedule_at(SimTime::hours(1), [&] { ++early; });
  s.schedule_at(SimTime::hours(5), [&] { ++late; });
  EXPECT_EQ(s.run_until(SimTime::hours(2)), 1u);
  EXPECT_EQ(early, 1);
  EXPECT_EQ(late, 0);
  EXPECT_EQ(s.now(), SimTime::hours(2));
  EXPECT_EQ(s.pending_count(), 1u);
  s.run();
  EXPECT_EQ(late, 1);
}

TEST(Simulator, RunUntilIncludesBoundary) {
  Simulator s;
  int fired = 0;
  s.schedule_at(SimTime::hours(2), [&] { ++fired; });
  s.run_until(SimTime::hours(2));
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, MaxEventsLimit) {
  Simulator s;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(SimTime::seconds(i), [&] { ++fired; });
  }
  EXPECT_EQ(s.run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(s.pending_count(), 6u);
}

TEST(Simulator, ClearDropsEverything) {
  Simulator s;
  int fired = 0;
  s.schedule_at(SimTime::seconds(1), [&] { ++fired; });
  s.clear();
  s.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(s.pending_count(), 0u);
}

// Regression for the documented clear() contract: pre-clear ids are
// invalidated (cancel/pending return false, never aliasing a post-clear
// event), the event-list skim state is reset, and the simulator schedules
// and fires normally afterwards — on both backends.
TEST(Simulator, ClearInvalidatesOldIdsAndResetsState) {
  for (const auto kind :
       {EventListKind::kBinaryHeap, EventListKind::kCalendarQueue}) {
    Simulator s(kind);
    int old_fired = 0;
    std::vector<EventId> old_ids;
    for (int i = 1; i <= 8; ++i) {
      old_ids.push_back(
          s.schedule_at(SimTime::minutes(i), [&] { ++old_fired; }));
    }
    s.run_until(SimTime::minutes(2));  // leaves popped-cursor/skim state behind
    EXPECT_EQ(old_fired, 2);
    s.clear();
    EXPECT_EQ(s.pending_count(), 0u);

    // Every pre-clear id is dead: not pending, not cancellable.
    for (const EventId id : old_ids) {
      EXPECT_FALSE(s.pending(id));
      EXPECT_FALSE(s.cancel(id));
    }

    // New events reuse the slab slots, yet stale ids still cannot touch
    // them, and execution resumes with full ordering semantics.
    std::vector<int> order;
    for (int i = 0; i < 8; ++i) {
      s.schedule_at(SimTime::minutes(10 + i), [&order, i] { order.push_back(i); });
    }
    for (const EventId id : old_ids) EXPECT_FALSE(s.cancel(id));
    EXPECT_EQ(s.run(), 8u);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
    EXPECT_EQ(old_fired, 2);
    EXPECT_EQ(s.now(), SimTime::minutes(17));
  }
}

TEST(Simulator, PeakPendingTracksTheHighWaterMark) {
  Simulator s;
  EXPECT_EQ(s.peak_pending_count(), 0u);
  const EventId a = s.schedule_at(SimTime::seconds(1), [] {});
  s.schedule_at(SimTime::seconds(2), [] {});
  s.schedule_at(SimTime::seconds(3), [] {});
  EXPECT_EQ(s.peak_pending_count(), 3u);
  // Draining (or cancelling) lowers pending but never the peak.
  s.cancel(a);
  EXPECT_EQ(s.run(), 2u);
  EXPECT_EQ(s.pending_count(), 0u);
  EXPECT_EQ(s.peak_pending_count(), 3u);
  // Re-filling below the old peak leaves it; exceeding it raises it.
  s.schedule_after(SimTime::seconds(1), [] {});
  EXPECT_EQ(s.peak_pending_count(), 3u);
  for (int i = 0; i < 4; ++i) s.schedule_after(SimTime::seconds(2 + i), [] {});
  EXPECT_EQ(s.peak_pending_count(), 5u);
}

TEST(Simulator, ReportsItsEventListKind) {
  EXPECT_EQ(Simulator().event_list_kind(), EventListKind::kBinaryHeap);
  EXPECT_EQ(Simulator(EventListKind::kCalendarQueue).event_list_kind(),
            EventListKind::kCalendarQueue);
}

TEST(Simulator, ExecutedCountAccumulates) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.schedule_at(SimTime::seconds(i), [] {});
  s.run();
  EXPECT_EQ(s.executed_count(), 5u);
}

TEST(Simulator, RandomizedStressKeepsTimeMonotonic) {
  Simulator s;
  util::Rng rng(77);
  std::vector<std::int64_t> fire_times;
  int scheduled = 0;
  // Seed a few initial events; each event may schedule up to two more.
  std::function<void()> make_event = [&] {
    fire_times.push_back(s.now().as_millis());
    if (scheduled < 5000) {
      const int children = static_cast<int>(rng.uniform_below(3));
      for (int c = 0; c < children; ++c) {
        ++scheduled;
        s.schedule_after(SimTime::millis(rng.uniform_int(0, 1000)), make_event);
      }
    }
  };
  for (int i = 0; i < 10; ++i) {
    ++scheduled;
    s.schedule_at(SimTime::millis(rng.uniform_int(0, 1000)), make_event);
  }
  s.run();
  EXPECT_EQ(fire_times.size(), static_cast<std::size_t>(scheduled));
  EXPECT_TRUE(std::is_sorted(fire_times.begin(), fire_times.end()));
}

TEST(Simulator, ManyCancellationsDoNotLeak) {
  Simulator s;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(s.schedule_at(SimTime::seconds(1), [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) s.cancel(ids[i]);
  EXPECT_EQ(s.pending_count(), 500u);
  EXPECT_EQ(s.run(), 500u);
}

// Regression (calendar backend): run_until peeks past its horizon by
// popping and reinserting the earliest future entry; events scheduled
// afterwards at earlier times must still fire first, even when the burst
// of schedules forces calendar resizes in between.
TEST(Simulator, EarlierSchedulesAfterRunUntilStayOrdered) {
  for (const auto kind :
       {EventListKind::kBinaryHeap, EventListKind::kCalendarQueue}) {
    Simulator s(kind);
    std::vector<int> order;
    s.schedule_at(SimTime::seconds(100), [&] { order.push_back(999); });
    EXPECT_EQ(s.run_until(SimTime::seconds(10)), 0u);
    for (int i = 0; i < 128; ++i) {
      s.schedule_at(SimTime::seconds(20) + SimTime::millis(i),
                    [&order, i] { order.push_back(i); });
    }
    EXPECT_EQ(s.run(), 129u);
    ASSERT_EQ(order.size(), 129u);
    for (int i = 0; i < 128; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(order.back(), 999);
  }
}

// A fired event's slab slot may be reused by a later event; the stale id
// must keep reporting dead instead of aliasing the new occupant.
TEST(Simulator, StaleIdsNeverAliasReusedSlots) {
  Simulator s;
  const EventId first = s.schedule_at(SimTime::seconds(1), [] {});
  s.run();
  EXPECT_FALSE(s.pending(first));
  int fired = 0;
  const EventId second = s.schedule_at(SimTime::seconds(2), [&] { ++fired; });
  EXPECT_FALSE(s.pending(first));   // same slot, newer generation
  EXPECT_FALSE(s.cancel(first));    // must not cancel `second`
  EXPECT_TRUE(s.pending(second));
  s.run();
  EXPECT_EQ(fired, 1);
}

// Callbacks bigger than the inline buffer take the heap-box fallback; they
// must still fire, cancel and destruct correctly.
TEST(Simulator, OversizedCallbacksFallBackToTheHeap) {
  Simulator s;
  std::vector<std::int64_t> big(64, 7);
  auto counter = std::make_shared<int>(0);
  s.schedule_at(SimTime::seconds(1), [big, counter] {
    *counter += static_cast<int>(big.size());
  });
  const EventId cancelled = s.schedule_at(
      SimTime::seconds(2), [big, counter] { *counter += 1'000'000; });
  EXPECT_TRUE(s.cancel(cancelled));
  s.run();
  EXPECT_EQ(*counter, 64);
  EXPECT_EQ(counter.use_count(), 1);  // cancelled copy was destroyed
}

// ---------- backend parity ----------

// The randomized property demanded by the pluggable-event-list contract:
// identical schedule/cancel workloads through the heap and calendar
// backends must produce identical firing orders — times, payload identity
// and FIFO tie-breaks included.
class BackendParity : public ::testing::TestWithParam<int> {};

TEST_P(BackendParity, IdenticalFiringOrderUnderRandomWorkload) {
  // Two simulators fed the exact same script from one replayed RNG; each
  // records (time, tag) of every firing. Events may re-schedule children
  // and cancel random victims from inside callbacks.
  struct Run {
    explicit Run(EventListKind kind) : simulator(kind) {}
    Simulator simulator;
    std::vector<std::pair<std::int64_t, int>> fired;
    std::vector<EventId> live_ids;
  };
  const auto drive = [&](EventListKind kind) {
    util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 17);
    Run run(kind);
    int next_tag = 0;
    std::function<void(int)> fire_event = [&](int tag) {
      run.fired.emplace_back(run.simulator.now().as_millis(), tag);
      const int children = static_cast<int>(rng.uniform_below(3));
      for (int c = 0; c < children && next_tag < 4000; ++c) {
        const int tag_for_child = next_tag++;
        // Mix dense, tied and far-future delays.
        const std::int64_t delay_ms =
            rng.bernoulli(0.25) ? 0 : rng.uniform_int(0, 50'000);
        run.live_ids.push_back(run.simulator.schedule_after(
            SimTime::millis(delay_ms), [&, tag_for_child] { fire_event(tag_for_child); }));
      }
      if (!run.live_ids.empty() && rng.bernoulli(0.3)) {
        const auto victim = rng.uniform_below(run.live_ids.size());
        (void)run.simulator.cancel(run.live_ids[victim]);
      }
    };
    for (int i = 0; i < 32; ++i) {
      const int tag = next_tag++;
      run.live_ids.push_back(run.simulator.schedule_at(
          SimTime::millis(rng.uniform_int(0, 10'000)), [&, tag] { fire_event(tag); }));
    }
    run.simulator.run();
    return run.fired;
  };

  const auto heap_fired = drive(EventListKind::kBinaryHeap);
  const auto calendar_fired = drive(EventListKind::kCalendarQueue);
  ASSERT_GT(heap_fired.size(), 32u);
  EXPECT_EQ(heap_fired, calendar_fired);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendParity, ::testing::Range(1, 7));

// ---------- Periodic ----------

TEST(Periodic, FiresAtFixedCadence) {
  Simulator s;
  std::vector<std::int64_t> ticks;
  Periodic p(s, SimTime::hours(1), SimTime::hours(1),
             [&](SimTime t) { ticks.push_back(t.as_millis() / 3'600'000); });
  s.run_until(SimTime::hours(5));
  p.stop();
  EXPECT_EQ(ticks, (std::vector<std::int64_t>{1, 2, 3, 4, 5}));
}

TEST(Periodic, StopHaltsFutureTicks) {
  Simulator s;
  int ticks = 0;
  Periodic p(s, SimTime::hours(1), SimTime::hours(1), [&](SimTime) { ++ticks; });
  s.run_until(SimTime::hours(2));
  p.stop();
  EXPECT_FALSE(p.running());
  s.run_until(SimTime::hours(10));
  EXPECT_EQ(ticks, 2);
}

TEST(Periodic, DestructorCancels) {
  Simulator s;
  int ticks = 0;
  {
    Periodic p(s, SimTime::hours(1), SimTime::hours(1), [&](SimTime) { ++ticks; });
  }
  s.run_until(SimTime::hours(5));
  EXPECT_EQ(ticks, 0);
}

TEST(Periodic, CanCoexistWithOtherEvents) {
  Simulator s;
  int ticks = 0, others = 0;
  Periodic p(s, SimTime::minutes(30), SimTime::minutes(30), [&](SimTime) { ++ticks; });
  s.schedule_at(SimTime::minutes(45), [&] { ++others; });
  s.run_until(SimTime::hours(2));
  p.stop();
  EXPECT_EQ(ticks, 4);
  EXPECT_EQ(others, 1);
}

}  // namespace
}  // namespace p2ps::sim
