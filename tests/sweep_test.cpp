// Tests for the multi-threaded parameter-study driver: spec expansion,
// thread-count-independent byte-identical reports, and failure handling.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/selection_policy.hpp"
#include "scenario/sweep.hpp"
#include "util/assert.hpp"

namespace p2ps::scenario {
namespace {

SweepSpec small_eight_point_spec() {
  // 2 scenarios x 2 seeds x 2 scales = 8 independent points, all tiny.
  SweepSpec spec;
  spec.scenarios = {"flash_crowd", "churn_resilience"};
  spec.seeds = {1, 2};
  spec.scales = {100, 200};
  return spec;
}

TEST(SplitCsv, SplitsAndDropsEmptyFields) {
  EXPECT_EQ(split_csv("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_csv("solo"), (std::vector<std::string>{"solo"}));
  EXPECT_EQ(split_csv(""), (std::vector<std::string>{}));
  EXPECT_EQ(split_csv("a,,b,"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split_csv(",lead"), (std::vector<std::string>{"lead"}));
}

TEST(SweepSpec, ExpandsTheCrossProductInDeterministicOrder) {
  const auto points = small_eight_point_spec().points();
  ASSERT_EQ(points.size(), 8u);
  // Scenario-major, then seed, then scale.
  EXPECT_EQ(points[0].scenario, "flash_crowd");
  EXPECT_EQ(points[0].seed, 1u);
  EXPECT_EQ(points[0].scale, 100);
  EXPECT_EQ(points[1].scale, 200);
  EXPECT_EQ(points[2].seed, 2u);
  EXPECT_EQ(points[4].scenario, "churn_resilience");
  EXPECT_EQ(points[7].seed, 2u);
  EXPECT_EQ(points[7].scale, 200);
}

TEST(SweepSpec, RejectsEmptyAxesAndUnknownScenarios) {
  SweepSpec no_scenarios;
  EXPECT_THROW((void)no_scenarios.points(), util::ContractViolation);

  SweepSpec unknown = small_eight_point_spec();
  unknown.scenarios.push_back("no_such_scenario");
  EXPECT_THROW((void)unknown.points(), util::ContractViolation);

  SweepSpec bad_scale = small_eight_point_spec();
  bad_scale.scales = {0};
  EXPECT_THROW((void)bad_scale.points(), util::ContractViolation);

  SweepSpec no_seeds = small_eight_point_spec();
  no_seeds.seeds.clear();
  EXPECT_THROW((void)no_seeds.points(), util::ContractViolation);
}

TEST(RunSweep, RejectsDegenerateInputs) {
  EXPECT_THROW((void)run_sweep(small_eight_point_spec(), 0),
               util::ContractViolation);
  EXPECT_THROW((void)run_sweep_points({}, 1), util::ContractViolation);
}

// The headline determinism contract: an 8-point sweep run twice produces
// byte-identical merged JSON.
TEST(RunSweep, EightPointSweepIsByteIdenticalAcrossRuns) {
  const auto spec = small_eight_point_spec();
  const std::string first = run_sweep(spec, 2).dump();
  const std::string second = run_sweep(spec, 2).dump();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// ...and across thread counts: the report never encodes completion order
// or the pool size, so --threads 1 vs --threads 8 cannot differ.
TEST(RunSweep, ThreadCountDoesNotChangeTheReport) {
  const auto spec = small_eight_point_spec();
  const std::string serial = run_sweep(spec, 1).dump();
  const std::string parallel = run_sweep(spec, 8).dump();
  EXPECT_EQ(serial, parallel);
}

TEST(RunSweep, ReportMergesEveryPointInSpecOrder) {
  const auto spec = small_eight_point_spec();
  const auto report = run_sweep(spec, 4);
  const std::string text = report.dump();
  EXPECT_NE(text.find("\"sweep\":{\"points\":8}"), std::string::npos);
  // Every (scenario, seed, scale) combination appears, and index 0..7 in
  // order (a proxy for spec-order merging).
  for (int index = 0; index < 8; ++index) {
    EXPECT_NE(text.find("\"index\":" + std::to_string(index)), std::string::npos);
  }
  std::size_t cursor = 0;
  for (int index = 0; index < 8; ++index) {
    const auto at = text.find("\"index\":" + std::to_string(index), cursor);
    ASSERT_NE(at, std::string::npos) << "index " << index << " out of order";
    cursor = at;
  }
  EXPECT_NE(text.find("\"scenario\":\"flash_crowd\""), std::string::npos);
  EXPECT_NE(text.find("\"scenario\":\"churn_resilience\""), std::string::npos);
  EXPECT_NE(text.find("\"seed\":1"), std::string::npos);
  EXPECT_NE(text.find("\"scale\":200"), std::string::npos);
}

TEST(RunSweep, BackendAxisIsTheCrossBackendParityCheck) {
  // Two sweeps over the same points that differ only in the event-list
  // backend: the scenario envelope omits the backend, so after normalising
  // the report's own "event_list" label the documents must match byte for
  // byte — heap/calendar parity at sweep granularity.
  SweepSpec heap_spec = small_eight_point_spec();
  heap_spec.event_lists = {sim::EventListKind::kBinaryHeap};
  SweepSpec calendar_spec = small_eight_point_spec();
  calendar_spec.event_lists = {sim::EventListKind::kCalendarQueue};
  const std::string on_heap = run_sweep(heap_spec, 2).dump();
  std::string on_calendar = run_sweep(calendar_spec, 2).dump();
  const std::string calendar_label = "\"event_list\":\"calendar\"";
  const std::string heap_label = "\"event_list\":\"heap\"";
  for (std::size_t at = on_calendar.find(calendar_label);
       at != std::string::npos; at = on_calendar.find(calendar_label, at)) {
    on_calendar.replace(at, calendar_label.size(), heap_label);
    at += heap_label.size();
  }
  EXPECT_EQ(on_heap, on_calendar);
}

TEST(SweepSpec, LatencyAxisIsTheInnermostDimension) {
  SweepSpec spec;
  spec.scenarios = {"msg_flash_crowd"};
  spec.seeds = {1};
  spec.scales = {400};
  spec.latencies = {net::LatencyModelKind::kFixed,
                    net::LatencyModelKind::kTwoClass};
  const auto points = spec.points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].latency, net::LatencyModelKind::kFixed);
  EXPECT_EQ(points[1].latency, net::LatencyModelKind::kTwoClass);

  SweepSpec empty = spec;
  empty.latencies.clear();
  EXPECT_THROW((void)empty.points(), util::ContractViolation);
}

TEST(RunSweep, LatencyAxisIsEchoedAndChangesMessageLevelRuns) {
  SweepSpec spec;
  spec.scenarios = {"msg_flash_crowd"};
  spec.seeds = {1};
  spec.scales = {400};
  spec.latencies = {net::LatencyModelKind::kFixed,
                    net::LatencyModelKind::kTwoClass};
  const auto report = run_sweep(spec, 2);
  const std::string text = report.dump();
  EXPECT_NE(text.find("\"latency\":\"fixed\""), std::string::npos);
  EXPECT_NE(text.find("\"latency\":\"twoclass\""), std::string::npos);
  // The default axis renders as "default" (the scenario picks its model).
  SweepSpec defaulted = spec;
  defaulted.latencies = {std::nullopt};
  const std::string default_text = run_sweep(defaulted, 1).dump();
  EXPECT_NE(default_text.find("\"latency\":\"default\""), std::string::npos);
}

TEST(SweepSpec, LossAxisIsValidatedAndInnermost) {
  SweepSpec spec;
  spec.scenarios = {"msg_flash_crowd"};
  spec.seeds = {1};
  spec.scales = {400};
  spec.latencies = {net::LatencyModelKind::kFixed};
  spec.losses = {0.0, 0.5};
  const auto points = spec.points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].loss, 0.0);
  EXPECT_EQ(points[1].loss, 0.5);

  SweepSpec empty = spec;
  empty.losses.clear();
  EXPECT_THROW((void)empty.points(), util::ContractViolation);

  SweepSpec out_of_range = spec;
  out_of_range.losses = {1.5};
  EXPECT_THROW((void)out_of_range.points(), util::ContractViolation);

  SweepSpec negative = spec;
  negative.losses = {-0.1};
  EXPECT_THROW((void)negative.points(), util::ContractViolation);
}

TEST(RunSweep, LossAxisIsEchoedAndChangesMessageLevelRuns) {
  SweepSpec spec;
  spec.scenarios = {"msg_flash_crowd"};
  spec.seeds = {1};
  spec.scales = {400};
  spec.losses = {0.0, 0.5};
  const auto report = run_sweep(spec, 2);
  const std::string text = report.dump();
  EXPECT_NE(text.find("\"loss\":0"), std::string::npos);
  EXPECT_NE(text.find("\"loss\":0.5"), std::string::npos);
  // Heavy loss must change the run itself, not just the echo.
  EXPECT_NE(text.find("\"drop_probability\":0.5"), std::string::npos);

  SweepSpec defaulted = spec;
  defaulted.losses = {std::nullopt};
  const std::string default_text = run_sweep(defaulted, 1).dump();
  EXPECT_NE(default_text.find("\"loss\":\"default\""), std::string::npos);
  // msg_flash_crowd's own default loss is 2%.
  EXPECT_NE(default_text.find("\"drop_probability\":0.02"), std::string::npos);
}

TEST(RunSweep, LognormalLatencyRunsAndIsEchoed) {
  SweepSpec spec;
  spec.scenarios = {"msg_flash_crowd"};
  spec.seeds = {1};
  spec.scales = {400};
  spec.latencies = {net::LatencyModelKind::kLogNormal};
  const auto report = run_sweep(spec, 1);
  const std::string text = report.dump();
  EXPECT_NE(text.find("\"latency\":\"lognormal\""), std::string::npos);
  EXPECT_NE(text.find("\"delivered\":"), std::string::npos);
}

TEST(SweepSpec, PolicyAxisIsValidatedAndInnermost) {
  SweepSpec spec;
  spec.scenarios = {"flash_crowd"};
  spec.seeds = {1};
  spec.scales = {200};
  spec.policies = {&core::paper_dac_policy(),
                   core::find_selection_policy("first-fit")};
  const auto points = spec.points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].policy, &core::paper_dac_policy());
  EXPECT_EQ(points[1].policy, core::find_selection_policy("first-fit"));

  SweepSpec empty = spec;
  empty.policies.clear();
  EXPECT_THROW((void)empty.points(), util::ContractViolation);
}

TEST(RunSweep, PolicyAxisIsEchoedAndChangesRuns) {
  SweepSpec spec;
  spec.scenarios = {"flash_crowd"};
  spec.seeds = {1};
  spec.scales = {200};
  spec.policies = {nullptr, core::find_selection_policy("max-cardinality")};
  const auto report = run_sweep(spec, 2);
  const std::string text = report.dump();
  // The default axis renders as "default"; named policies echo their name.
  EXPECT_NE(text.find("\"policy\":\"default\""), std::string::npos);
  EXPECT_NE(text.find("\"policy\":\"max-cardinality\""), std::string::npos);
  // Both points ran the same workload, but the chosen supplier sets (and
  // with them Theorem-1 delay) must differ between the two policies.
  const std::size_t first = text.find("\"mean_delay_dt\":");
  const std::size_t second = text.find("\"policy\":\"max-cardinality\"");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  const std::string default_half = text.substr(0, second);
  const std::string wide_half = text.substr(second);
  const auto delay_of = [](const std::string& part) {
    const std::size_t at = part.find("\"mean_delay_dt\":");
    return part.substr(at, part.find(',', at) - at);
  };
  EXPECT_NE(delay_of(default_half), delay_of(wide_half));
}

// threads==1 must take the serial path: a plain indexed loop with no
// worker pool. SweepStats.pool_threads observes the dispatch mechanics.
TEST(RunSweep, OneThreadConstructsNoWorkerPool) {
  const auto points = small_eight_point_spec().points();
  SweepStats stats;
  stats.pool_threads = 99;  // sentinel: the call must reset it
  const auto serial = run_sweep_points(points, 1, &stats);
  EXPECT_EQ(stats.pool_threads, 0u);
  // ...and the serial report is byte-identical to a pooled one.
  const auto pooled = run_sweep_points(points, 4, &stats);
  EXPECT_EQ(stats.pool_threads, 4u);
  EXPECT_EQ(serial.dump(), pooled.dump());
}

// The clamp makes a single-point sweep serial no matter how many threads
// were requested — one point never justifies a pool.
TEST(RunSweep, SinglePointSweepIsSerialEvenWithManyThreads) {
  SweepSpec spec;
  spec.scenarios = {"flash_crowd"};
  spec.seeds = {5};
  spec.scales = {200};
  SweepStats stats;
  const auto report = run_sweep_points(spec.points(), 16, &stats);
  EXPECT_EQ(stats.pool_threads, 0u);
  EXPECT_NE(report.dump().find("\"points\":1"), std::string::npos);
}

TEST(RunSweep, MoreThreadsThanPointsIsFine) {
  SweepSpec spec;
  spec.scenarios = {"flash_crowd"};
  spec.seeds = {5};
  spec.scales = {200};
  const auto report = run_sweep(spec, 16);
  EXPECT_NE(report.dump().find("\"points\":1"), std::string::npos);
}

}  // namespace
}  // namespace p2ps::scenario
