// Tests for sim::TimerService — handle semantics (generation-tagged ids,
// cancel/rearm), the (deadline, arm-seq) firing order, and the contract
// that all three strategies (events / wheel / lazy) deliver bit-identical
// firing sequences under arbitrary arm/cancel/rearm/poll interleavings.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/timer_service.hpp"
#include "util/rng.hpp"

namespace p2ps::sim {
namespace {

using util::SimTime;

TEST(TimerStrategy, ParsesAndPrints) {
  EXPECT_EQ(to_string(TimerStrategy::kEvents), "events");
  EXPECT_EQ(to_string(TimerStrategy::kWheel), "wheel");
  EXPECT_EQ(to_string(TimerStrategy::kLazy), "lazy");
  EXPECT_EQ(parse_timer_strategy("wheel"), TimerStrategy::kWheel);
  EXPECT_EQ(parse_timer_strategy("lazy"), TimerStrategy::kLazy);
  EXPECT_EQ(parse_timer_strategy("events"), TimerStrategy::kEvents);
  EXPECT_FALSE(parse_timer_strategy("sundial").has_value());
}

TimerConfig config_for(TimerStrategy strategy) {
  TimerConfig config;
  config.strategy = strategy;
  config.lazy_sweep_period = SimTime::seconds(30);
  return config;
}

TEST(TimerService, FiresAtDeadlineInArmOrder) {
  for (const TimerStrategy strategy :
       {TimerStrategy::kEvents, TimerStrategy::kWheel, TimerStrategy::kLazy}) {
    Simulator simulator;
    TimerService timers(simulator, config_for(strategy));
    std::vector<int> fired;
    timers.arm_after(SimTime::millis(50), [&](SimTime at) {
      EXPECT_EQ(at, SimTime::millis(50));
      fired.push_back(1);
    });
    timers.arm_after(SimTime::millis(10), [&](SimTime) { fired.push_back(2); });
    timers.arm_after(SimTime::millis(50), [&](SimTime) { fired.push_back(3); });
    simulator.run();
    EXPECT_EQ(fired, (std::vector<int>{2, 1, 3})) << to_string(strategy);
    EXPECT_EQ(timers.fired(), 3u);
    EXPECT_EQ(timers.armed(), 0u);
  }
}

TEST(TimerService, CancelAndStaleGenerationRejection) {
  for (const TimerStrategy strategy :
       {TimerStrategy::kEvents, TimerStrategy::kWheel, TimerStrategy::kLazy}) {
    Simulator simulator;
    TimerService timers(simulator, config_for(strategy));
    int fired = 0;
    const TimerId a = timers.arm_after(SimTime::millis(5), [&](SimTime) { ++fired; });
    EXPECT_TRUE(timers.pending(a));
    EXPECT_TRUE(timers.cancel(a));
    EXPECT_FALSE(timers.pending(a));
    EXPECT_FALSE(timers.cancel(a));  // already cancelled: stale handle

    // The slot is reused; the old generation-tagged id must stay dead.
    const TimerId b = timers.arm_after(SimTime::millis(5), [&](SimTime) { ++fired; });
    EXPECT_FALSE(timers.pending(a));
    EXPECT_FALSE(timers.cancel(a));
    EXPECT_TRUE(timers.pending(b));
    simulator.run();
    EXPECT_EQ(fired, 1) << to_string(strategy);
    EXPECT_FALSE(timers.pending(b));  // fired: handle is stale now
    EXPECT_FALSE(timers.cancel(b));
  }
}

TEST(TimerService, RearmMovesTheDeadlineAndKeepsTheCallback) {
  for (const TimerStrategy strategy :
       {TimerStrategy::kEvents, TimerStrategy::kWheel, TimerStrategy::kLazy}) {
    Simulator simulator;
    TimerService timers(simulator, config_for(strategy));
    std::vector<std::int64_t> fired_at;
    const TimerId id = timers.arm_after(
        SimTime::millis(10), [&](SimTime at) { fired_at.push_back(at.as_millis()); });
    EXPECT_TRUE(timers.rearm_after(id, SimTime::millis(40)));
    simulator.run();
    EXPECT_EQ(fired_at, (std::vector<std::int64_t>{40})) << to_string(strategy);
    EXPECT_FALSE(timers.rearm_after(id, SimTime::millis(5)));  // stale
  }
}

TEST(TimerService, DeadlineAwarePendingAndLazyDelivery) {
  // Under the lazy strategy a due timer's callback may not have run yet,
  // but pending() must already report it fired and poll() must deliver it
  // with its own deadline before any state is read.
  Simulator simulator;
  TimerService timers(simulator, config_for(TimerStrategy::kLazy));
  std::vector<std::int64_t> fired_at;
  timers.arm_after(SimTime::millis(100),
                   [&](SimTime at) { fired_at.push_back(at.as_millis()); });
  simulator.schedule_at(SimTime::millis(250), [&] {
    // An engine handler: polls on entry, then observes.
    timers.poll();
    EXPECT_EQ(fired_at, (std::vector<std::int64_t>{100}));
  });
  simulator.run_until(SimTime::millis(250));
  EXPECT_EQ(fired_at, (std::vector<std::int64_t>{100}));
}

TEST(TimerService, DeadlineAnchoredChainsCatchUp) {
  // A self-rearming timer (deadline + period each firing) that nobody
  // touches for many periods must catch up step by step, with each firing
  // carrying its logical deadline — under every strategy.
  for (const TimerStrategy strategy :
       {TimerStrategy::kEvents, TimerStrategy::kWheel, TimerStrategy::kLazy}) {
    Simulator simulator;
    TimerConfig config = config_for(strategy);
    config.lazy_sweep_period = SimTime::seconds(3600);  // effectively never
    TimerService timers(simulator, config);
    std::vector<std::int64_t> fired_at;
    std::function<void(SimTime)> chain = [&](SimTime at) {
      fired_at.push_back(at.as_millis());
      if (fired_at.size() < 5) timers.arm_at(at + SimTime::millis(100), chain);
    };
    timers.arm_at(SimTime::millis(100), chain);
    simulator.schedule_at(SimTime::millis(450), [&] { timers.poll(); });
    simulator.run_until(SimTime::millis(1000));
    timers.poll();
    EXPECT_EQ(fired_at, (std::vector<std::int64_t>{100, 200, 300, 400, 500}))
        << to_string(strategy);
  }
}

TEST(TimerService, WheelHandlesCrossLevelAndOverflowDeadlines) {
  Simulator simulator;
  TimerService timers(simulator, config_for(TimerStrategy::kWheel));
  std::vector<std::int64_t> fired_at;
  const auto record = [&](SimTime at) { fired_at.push_back(at.as_millis()); };
  // One deadline per wheel level plus one past the top span (~12.4 days).
  const std::int64_t deadlines[] = {
      7,          1'000,         60'000,        3'600'000,
      86'400'000, 1'000'000'000, 2'000'000'000,
  };
  for (const std::int64_t ms : deadlines) {
    timers.arm_at(SimTime::millis(ms), record);
  }
  simulator.run();
  EXPECT_EQ(fired_at.size(), std::size(deadlines));
  for (std::size_t i = 0; i < std::size(deadlines); ++i) {
    EXPECT_EQ(fired_at[i], deadlines[i]);
  }
  EXPECT_EQ(timers.armed(), 0u);
}

// ---- randomized cross-strategy differential stress ----
//
// One scripted universe: pseudo-random arms, cancels, rearms and probe
// events, driven identically under each strategy. The observable firing
// log (label, deadline, poll-time order) must be byte-identical — the
// TimerService determinism contract that docs/timers.md argues.

std::string run_script(TimerStrategy strategy, std::uint64_t seed,
                       bool with_probes) {
  Simulator simulator;
  TimerConfig config = config_for(strategy);
  config.lazy_sweep_period = SimTime::millis(700);
  TimerService timers(simulator, config);
  util::Rng rng(seed);
  std::ostringstream log;

  std::vector<TimerId> live;
  std::uint64_t next_label = 0;

  const auto arm_one = [&](SimTime base) {
    const std::uint64_t label = next_label++;
    const SimTime deadline = base + SimTime::millis(rng.uniform_int(0, 5'000));
    live.push_back(timers.arm_at(deadline, [&log, label](SimTime at) {
      log << "F" << label << "@" << at.as_millis() << ";";
    }));
  };

  // Scripted "engine events": each polls on entry (the discipline every
  // engine handler follows), then mutates the timer population.
  for (int step = 0; step < 400; ++step) {
    const SimTime at = SimTime::millis(step * 37 + rng.uniform_int(0, 17));
    simulator.schedule_at(at, [&, at] {
      timers.poll();
      switch (rng.uniform_int(0, 5)) {
        case 0:
        case 1:
          arm_one(at);
          break;
        case 2:
          if (!live.empty()) {
            const std::size_t pick = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
            log << (timers.cancel(live[pick]) ? "c" : "x");
          }
          break;
        case 3:
          if (!live.empty()) {
            const std::size_t pick = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
            const SimTime to = at + SimTime::millis(rng.uniform_int(0, 3'000));
            log << (timers.rearm_at(live[pick], to) ? "r" : "x");
          }
          break;
        case 4:
          if (with_probes && !live.empty()) {
            const std::size_t pick = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
            log << (timers.pending(live[pick]) ? "p" : "q");
          }
          break;
        default:
          break;  // idle step: dues fire via the strategy's own machinery
      }
    });
  }
  simulator.run_until(SimTime::millis(40'000));
  timers.poll();
  log << "|armed=" << timers.armed() << "|fired=" << timers.fired();
  return log.str();
}

TEST(TimerService, StrategiesProduceIdenticalFiringLogs) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 2002ull, 31337ull}) {
    const std::string events = run_script(TimerStrategy::kEvents, seed, true);
    const std::string wheel = run_script(TimerStrategy::kWheel, seed, true);
    const std::string lazy = run_script(TimerStrategy::kLazy, seed, true);
    EXPECT_EQ(events, wheel) << "seed " << seed;
    EXPECT_EQ(events, lazy) << "seed " << seed;
    EXPECT_NE(events.find("F"), std::string::npos);  // something fired
  }
}

TEST(TimerService, EventsStrategyKeepsPerTimerEventMass) {
  // events: one simulator event per armed timer; wheel/lazy: O(1).
  for (const TimerStrategy strategy :
       {TimerStrategy::kEvents, TimerStrategy::kWheel, TimerStrategy::kLazy}) {
    Simulator simulator;
    TimerService timers(simulator, config_for(strategy));
    for (int i = 0; i < 1'000; ++i) {
      timers.arm_after(SimTime::millis(100 + i), [](SimTime) {});
    }
    if (strategy == TimerStrategy::kEvents) {
      EXPECT_GE(simulator.pending_count(), 1'000u);
    } else {
      EXPECT_LE(simulator.pending_count(), 2u) << to_string(strategy);
    }
    EXPECT_EQ(timers.armed(), 1'000u);
    simulator.run();
    EXPECT_EQ(timers.fired(), 1'000u);
  }
}

}  // namespace
}  // namespace p2ps::sim
