// Tests for the workload generators: the four arrival patterns and the
// population builder.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "workload/arrival_pattern.hpp"
#include "workload/population.hpp"

namespace p2ps::workload {
namespace {

using util::SimTime;

constexpr std::int64_t kTotal = 50'000;
const SimTime kWindow = SimTime::hours(72);

class EveryPattern : public ::testing::TestWithParam<ArrivalPattern> {};

TEST_P(EveryPattern, ExactTotalSortedAndInWindow) {
  const auto schedule = ArrivalSchedule::make(GetParam(), kTotal, kWindow);
  EXPECT_EQ(schedule.total(), kTotal);
  EXPECT_EQ(schedule.window(), kWindow);
  const auto& times = schedule.times();
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_GE(times.front(), SimTime::zero());
  EXPECT_LT(times.back(), kWindow);
  EXPECT_EQ(schedule.arrivals_between(SimTime::zero(), kWindow), kTotal);
}

TEST_P(EveryPattern, Deterministic) {
  const auto a = ArrivalSchedule::make(GetParam(), 1000, kWindow);
  const auto b = ArrivalSchedule::make(GetParam(), 1000, kWindow);
  EXPECT_EQ(a.times(), b.times());
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, EveryPattern,
    ::testing::Values(ArrivalPattern::kConstant, ArrivalPattern::kRampUpDown,
                      ArrivalPattern::kBurstThenConstant,
                      ArrivalPattern::kPeriodicBursts),
    [](const ::testing::TestParamInfo<ArrivalPattern>& info) {
      return "pattern" + std::to_string(static_cast<int>(info.param));
    });

// ---------- ArrivalCursor (the lazy consumption API) ----------

TEST_P(EveryPattern, CursorWalkMatchesTimesVector) {
  // The equivalence contract behind the lazy arrival source: walking the
  // cursor yields exactly the times() vector, in order, for every paper
  // pattern.
  const auto schedule = ArrivalSchedule::make(GetParam(), 2'000, kWindow);
  auto cursor = schedule.cursor();
  std::vector<SimTime> walked;
  while (auto t = cursor.next_arrival()) walked.push_back(*t);
  EXPECT_EQ(walked, schedule.times());
  EXPECT_TRUE(cursor.exhausted());
}

TEST(ArrivalCursor, ExhaustionIsSticky) {
  const auto schedule = ArrivalSchedule::make(ArrivalPattern::kConstant, 3, kWindow);
  auto cursor = schedule.cursor();
  EXPECT_EQ(cursor.remaining(), 3);
  EXPECT_FALSE(cursor.exhausted());
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(cursor.next_arrival().has_value());
  EXPECT_TRUE(cursor.exhausted());
  EXPECT_EQ(cursor.remaining(), 0);
  EXPECT_EQ(cursor.consumed(), 3);
  // Past the end it keeps returning nullopt — no wraparound, no throw.
  EXPECT_FALSE(cursor.next_arrival().has_value());
  EXPECT_FALSE(cursor.next_arrival().has_value());
  EXPECT_FALSE(cursor.peek().has_value());
  EXPECT_EQ(cursor.consumed(), 3);
}

TEST(ArrivalCursor, PeekDoesNotAdvance) {
  const auto schedule =
      ArrivalSchedule::make(ArrivalPattern::kRampUpDown, 100, kWindow);
  auto cursor = schedule.cursor();
  const auto peeked = cursor.peek();
  ASSERT_TRUE(peeked.has_value());
  EXPECT_EQ(cursor.consumed(), 0);
  EXPECT_EQ(cursor.next_arrival(), peeked);
  EXPECT_EQ(cursor.consumed(), 1);
  EXPECT_EQ(cursor.peek(), schedule.times()[1]);
}

TEST(ArrivalCursor, SampledVariantWalksIdentically) {
  util::Rng rng(7);
  const auto schedule = ArrivalSchedule::make_sampled(
      ArrivalPattern::kPeriodicBursts, 5'000, kWindow, rng);
  auto cursor = schedule.cursor();
  std::vector<SimTime> walked;
  while (auto t = cursor.next_arrival()) walked.push_back(*t);
  EXPECT_EQ(walked, schedule.times());
}

TEST(ArrivalCursor, EmptyScheduleIsBornExhausted) {
  const auto schedule = ArrivalSchedule::make(ArrivalPattern::kConstant, 0, kWindow);
  auto cursor = schedule.cursor();
  EXPECT_TRUE(cursor.exhausted());
  EXPECT_FALSE(cursor.peek().has_value());
  EXPECT_FALSE(cursor.next_arrival().has_value());
}

TEST(ArrivalCursor, IndependentCursorsDoNotInterfere) {
  const auto schedule =
      ArrivalSchedule::make(ArrivalPattern::kBurstThenConstant, 10, kWindow);
  auto a = schedule.cursor();
  auto b = schedule.cursor();
  (void)a.next_arrival();
  (void)a.next_arrival();
  EXPECT_EQ(b.consumed(), 0);
  EXPECT_EQ(b.next_arrival(), schedule.times()[0]);
  EXPECT_EQ(a.next_arrival(), schedule.times()[2]);
}

TEST(ArrivalSchedule, ArrivalAtIndexesTheSortedTimes) {
  const auto schedule =
      ArrivalSchedule::make(ArrivalPattern::kConstant, 50, kWindow);
  for (std::int64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(schedule.arrival_at(i), schedule.times()[static_cast<std::size_t>(i)]);
  }
  EXPECT_THROW((void)schedule.arrival_at(-1), util::ContractViolation);
  EXPECT_THROW((void)schedule.arrival_at(50), util::ContractViolation);
}

// The lazy-schedule contract the sharded engine's 10M-peer runs rest on:
// computing an arrival on demand from the piece table and reading it from
// a materialised vector are the same pure function of the index, so every
// arrival_at (and the derived arrivals_between) agrees bit-for-bit.
TEST(ArrivalSchedule, LazyAgreesWithEagerOnEveryArrival) {
  for (const auto pattern :
       {ArrivalPattern::kConstant, ArrivalPattern::kRampUpDown,
        ArrivalPattern::kBurstThenConstant, ArrivalPattern::kPeriodicBursts}) {
    const auto eager = ArrivalSchedule::make(pattern, 977, kWindow);
    const auto lazy = ArrivalSchedule::make_lazy(pattern, 977, kWindow);
    EXPECT_TRUE(lazy.lazy());
    EXPECT_FALSE(eager.lazy());
    ASSERT_EQ(lazy.total(), eager.total());
    EXPECT_EQ(lazy.window(), eager.window());
    for (std::int64_t i = 0; i < eager.total(); ++i) {
      ASSERT_EQ(lazy.arrival_at(i), eager.arrival_at(i))
          << to_string(pattern) << " index " << i;
    }
    for (int h = 0; h <= 72; h += 7) {
      EXPECT_EQ(lazy.arrivals_between(SimTime::hours(h), SimTime::hours(h + 5)),
                eager.arrivals_between(SimTime::hours(h), SimTime::hours(h + 5)));
    }
    EXPECT_THROW((void)lazy.times(), util::ContractViolation);
  }
}

TEST(Pattern1, ConstantHourlyCounts) {
  const auto schedule =
      ArrivalSchedule::make(ArrivalPattern::kConstant, kTotal, kWindow);
  const std::int64_t per_hour = kTotal / 72;
  for (int h = 0; h < 72; ++h) {
    const auto count =
        schedule.arrivals_between(SimTime::hours(h), SimTime::hours(h + 1));
    EXPECT_NEAR(static_cast<double>(count), static_cast<double>(per_hour), 2.0);
  }
}

TEST(Pattern2, RampRisesThenFalls) {
  const auto schedule =
      ArrivalSchedule::make(ArrivalPattern::kRampUpDown, kTotal, kWindow);
  // 6-hour buckets trace the triangle: increasing to mid-window, then
  // decreasing.
  std::vector<std::int64_t> buckets;
  for (int b = 0; b < 12; ++b) {
    buckets.push_back(
        schedule.arrivals_between(SimTime::hours(6 * b), SimTime::hours(6 * (b + 1))));
  }
  for (int b = 0; b + 1 < 6; ++b) EXPECT_LT(buckets[b], buckets[b + 1]);
  for (int b = 6; b + 1 < 12; ++b) EXPECT_GT(buckets[b], buckets[b + 1]);
  // Peak is at mid-window, roughly 6x the first bucket (triangle 1..6).
  EXPECT_GT(buckets[5], 4 * buckets[0]);
}

TEST(Pattern3, FrontLoadedBurst) {
  const auto schedule =
      ArrivalSchedule::make(ArrivalPattern::kBurstThenConstant, kTotal, kWindow);
  // 40% of arrivals within the first 6 hours (1/12 of the window).
  const auto burst = schedule.arrivals_between(SimTime::zero(), SimTime::hours(6));
  EXPECT_NEAR(static_cast<double>(burst), 0.4 * kTotal, 0.01 * kTotal);
  // Burst rate dwarfs the tail rate.
  EXPECT_GT(schedule.rate_per_hour_at(SimTime::hours(1)),
            5.0 * schedule.rate_per_hour_at(SimTime::hours(40)));
}

TEST(Pattern4, PeriodicBursts) {
  const auto schedule =
      ArrivalSchedule::make(ArrivalPattern::kPeriodicBursts, kTotal, kWindow);
  for (int cycle = 0; cycle < 6; ++cycle) {
    const SimTime start = SimTime::hours(12 * cycle);
    const auto burst = schedule.arrivals_between(start, start + SimTime::hours(2));
    const auto floor_count =
        schedule.arrivals_between(start + SimTime::hours(2), start + SimTime::hours(12));
    EXPECT_NEAR(static_cast<double>(burst), 0.1 * kTotal, 0.01 * kTotal)
        << "cycle " << cycle;
    EXPECT_NEAR(static_cast<double>(floor_count), 0.4 / 6.0 * kTotal, 0.01 * kTotal)
        << "cycle " << cycle;
    // Burst rate is much higher than the floor rate.
    EXPECT_GT(schedule.rate_per_hour_at(start + SimTime::hours(1)),
              5.0 * schedule.rate_per_hour_at(start + SimTime::hours(6)));
  }
}

TEST(SampledArrivals, ExactTotalSortedDeterministicBySeed) {
  util::Rng a(5), b(5), c(6);
  const auto sa =
      ArrivalSchedule::make_sampled(ArrivalPattern::kRampUpDown, 5000, kWindow, a);
  const auto sb =
      ArrivalSchedule::make_sampled(ArrivalPattern::kRampUpDown, 5000, kWindow, b);
  const auto sc =
      ArrivalSchedule::make_sampled(ArrivalPattern::kRampUpDown, 5000, kWindow, c);
  EXPECT_EQ(sa.total(), 5000);
  EXPECT_TRUE(std::is_sorted(sa.times().begin(), sa.times().end()));
  EXPECT_EQ(sa.times(), sb.times());
  EXPECT_NE(sa.times(), sc.times());
  EXPECT_LT(sa.times().back(), kWindow);
}

TEST(SampledArrivals, ShapeMatchesTheDensity) {
  util::Rng rng(9);
  const auto schedule =
      ArrivalSchedule::make_sampled(ArrivalPattern::kBurstThenConstant, 50'000,
                                    kWindow, rng);
  // ~40% of mass in the first twelfth of the window, within sampling noise.
  const auto burst = schedule.arrivals_between(SimTime::zero(), SimTime::hours(6));
  EXPECT_NEAR(static_cast<double>(burst), 0.4 * 50'000, 0.02 * 50'000);
}

TEST(ArrivalSchedule, RateIsZeroOutsideWindow) {
  const auto schedule =
      ArrivalSchedule::make(ArrivalPattern::kConstant, 1000, kWindow);
  EXPECT_EQ(schedule.rate_per_hour_at(SimTime::hours(100)), 0.0);
  EXPECT_EQ(schedule.rate_per_hour_at(SimTime::zero() - SimTime::millis(1)), 0.0);
  EXPECT_GT(schedule.rate_per_hour_at(SimTime::hours(10)), 0.0);
}

TEST(ArrivalSchedule, CustomPiecesAndValidation) {
  const auto schedule = ArrivalSchedule::from_pieces(
      {{SimTime::hours(1), 3.0}, {SimTime::hours(1), 1.0}}, 400);
  EXPECT_EQ(schedule.arrivals_between(SimTime::zero(), SimTime::hours(1)), 300);
  EXPECT_EQ(schedule.arrivals_between(SimTime::hours(1), SimTime::hours(2)), 100);

  EXPECT_THROW((void)ArrivalSchedule::from_pieces({}, 10), util::ContractViolation);
  EXPECT_THROW(
      (void)ArrivalSchedule::from_pieces({{SimTime::zero(), 1.0}}, 10),
      util::ContractViolation);
  EXPECT_THROW(
      (void)ArrivalSchedule::from_pieces({{SimTime::hours(1), 0.0}}, 10),
      util::ContractViolation);
}

TEST(ArrivalSchedule, ZeroArrivalsIsValid) {
  const auto schedule = ArrivalSchedule::make(ArrivalPattern::kConstant, 0, kWindow);
  EXPECT_EQ(schedule.total(), 0);
  EXPECT_TRUE(schedule.times().empty());
}

// ---------- population ----------

TEST(Population, DefaultsMatchPaper) {
  const PopulationConfig config;
  EXPECT_NO_THROW(validate(config));
  util::Rng rng(1);
  const auto classes = build_requester_classes(config, rng);
  ASSERT_EQ(classes.size(), 50'000u);
  std::map<core::PeerClass, std::int64_t> counts;
  for (auto c : classes) ++counts[c];
  EXPECT_EQ(counts[1], 5'000);
  EXPECT_EQ(counts[2], 5'000);
  EXPECT_EQ(counts[3], 20'000);
  EXPECT_EQ(counts[4], 20'000);
}

TEST(Population, ShuffleDependsOnSeedOnly) {
  const PopulationConfig config;
  util::Rng a(9), b(9), c(10);
  const auto ca = build_requester_classes(config, a);
  const auto cb = build_requester_classes(config, b);
  const auto cc = build_requester_classes(config, c);
  EXPECT_EQ(ca, cb);
  EXPECT_NE(ca, cc);
}

TEST(Population, LargestRemainderHandlesRaggedCounts) {
  PopulationConfig config;
  config.requesters = 7;  // 0.7 / 0.7 / 2.8 / 2.8 exact shares
  util::Rng rng(2);
  const auto classes = build_requester_classes(config, rng);
  ASSERT_EQ(classes.size(), 7u);
  std::map<core::PeerClass, std::int64_t> counts;
  for (auto c : classes) ++counts[c];
  std::int64_t total = 0;
  for (auto& [cls, n] : counts) total += n;
  EXPECT_EQ(total, 7);
  // Floors 0/0/2/2 leave three spares; remainders .8/.8/.7/.7 hand them to
  // classes 3, 4 and 1 in that order.
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 0);
  EXPECT_EQ(counts[3], 3);
  EXPECT_EQ(counts[4], 3);
}

TEST(Population, MaxCapacityMatchesPaperYardstick) {
  EXPECT_EQ(max_possible_capacity(PopulationConfig{}), 7550);
}

TEST(Population, ValidationRejectsBadConfigs) {
  PopulationConfig bad_fractions;
  bad_fractions.class_fractions = {0.5, 0.5, 0.5, 0.5};
  EXPECT_THROW(validate(bad_fractions), util::ContractViolation);

  PopulationConfig wrong_arity;
  wrong_arity.class_fractions = {1.0};
  EXPECT_THROW(validate(wrong_arity), util::ContractViolation);

  PopulationConfig bad_seed_class;
  bad_seed_class.seed_class = 9;
  EXPECT_THROW(validate(bad_seed_class), util::ContractViolation);

  PopulationConfig negative;
  negative.requesters = -1;
  EXPECT_THROW(validate(negative), util::ContractViolation);
}

TEST(Population, SmallPopulationCapacity) {
  PopulationConfig config;
  config.seeds = 4;
  config.seed_class = 1;
  config.requesters = 16;
  config.class_fractions = {0.25, 0.25, 0.25, 0.25};
  // Seeds: 4/2 = 2 R0. Requesters: 4·(1/2+1/4+1/8+1/16) = 3.75 R0 → 5.75.
  EXPECT_EQ(max_possible_capacity(config), 5);
}

}  // namespace
}  // namespace p2ps::workload
