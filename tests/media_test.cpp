// Unit tests for the media model: CBR file description and the playback
// continuity checker.
#include <gtest/gtest.h>

#include "media/media_file.hpp"
#include "media/playback_buffer.hpp"
#include "util/assert.hpp"

namespace p2ps::media {
namespace {

using util::SimTime;

TEST(MediaFile, BasicProperties) {
  const MediaFile f(3600, SimTime::seconds(1));
  EXPECT_EQ(f.segments(), 3600);
  EXPECT_EQ(f.segment_duration(), SimTime::seconds(1));
  EXPECT_EQ(f.show_time(), SimTime::hours(1));
}

TEST(MediaFile, FromShowTimeRoundsUp) {
  const MediaFile exact = MediaFile::from_show_time(SimTime::minutes(60), SimTime::seconds(1));
  EXPECT_EQ(exact.segments(), 3600);
  const MediaFile ragged = MediaFile::from_show_time(SimTime::millis(2500), SimTime::seconds(1));
  EXPECT_EQ(ragged.segments(), 3);
}

TEST(MediaFile, DeadlineArithmetic) {
  const MediaFile f(10, SimTime::seconds(2));
  EXPECT_EQ(f.deadline(0, SimTime::seconds(5)), SimTime::seconds(5));
  EXPECT_EQ(f.deadline(3, SimTime::seconds(5)), SimTime::seconds(11));
}

TEST(MediaFile, InvalidArgumentsThrow) {
  EXPECT_THROW(MediaFile(0, SimTime::seconds(1)), util::ContractViolation);
  EXPECT_THROW(MediaFile(10, SimTime::zero()), util::ContractViolation);
  const MediaFile f(10, SimTime::seconds(1));
  EXPECT_THROW((void)f.deadline(10, SimTime::zero()), util::ContractViolation);
  EXPECT_THROW((void)f.deadline(-1, SimTime::zero()), util::ContractViolation);
}

TEST(PlaybackBuffer, FeasibleWhenEverythingArrivesEarly) {
  const MediaFile f(4, SimTime::seconds(1));
  PlaybackBuffer buffer(f, 4);
  for (std::int64_t s = 0; s < 4; ++s) {
    buffer.record_arrival(s, SimTime::zero());
  }
  EXPECT_TRUE(buffer.complete());
  EXPECT_TRUE(buffer.check(SimTime::zero()).feasible);
  EXPECT_EQ(buffer.min_buffering_delay(), SimTime::zero());
}

TEST(PlaybackBuffer, DetectsUnderflowSegmentAndLateness) {
  const MediaFile f(3, SimTime::seconds(1));
  PlaybackBuffer buffer(f, 3);
  buffer.record_arrival(0, SimTime::seconds(1));
  buffer.record_arrival(1, SimTime::seconds(5));  // late under small delays
  buffer.record_arrival(2, SimTime::seconds(2));
  const auto report = buffer.check(SimTime::seconds(1));
  EXPECT_FALSE(report.feasible);
  ASSERT_TRUE(report.first_underflow_segment.has_value());
  EXPECT_EQ(*report.first_underflow_segment, 1);
  EXPECT_EQ(report.lateness, SimTime::seconds(3));  // arrives 5, deadline 2
}

TEST(PlaybackBuffer, MinBufferingDelayIsTightBound) {
  const MediaFile f(3, SimTime::seconds(1));
  PlaybackBuffer buffer(f, 3);
  buffer.record_arrival(0, SimTime::seconds(2));
  buffer.record_arrival(1, SimTime::seconds(4));
  buffer.record_arrival(2, SimTime::seconds(4));
  // slacks: 2-0=2, 4-1=3, 4-2=2 → min delay 3s.
  const SimTime min_delay = buffer.min_buffering_delay();
  EXPECT_EQ(min_delay, SimTime::seconds(3));
  EXPECT_TRUE(buffer.check(min_delay).feasible);
  EXPECT_FALSE(buffer.check(min_delay - SimTime::millis(1)).feasible);
}

TEST(PlaybackBuffer, MissingSegmentIsInfeasibleAtAnyDelay) {
  const MediaFile f(2, SimTime::seconds(1));
  PlaybackBuffer buffer(f, 2);
  buffer.record_arrival(0, SimTime::zero());
  EXPECT_FALSE(buffer.complete());
  const auto report = buffer.check(SimTime::hours(10));
  EXPECT_FALSE(report.feasible);
  EXPECT_EQ(*report.first_underflow_segment, 1);
  EXPECT_THROW((void)buffer.min_buffering_delay(), util::ContractViolation);
}

TEST(PlaybackBuffer, TracksOnlyRequestedPrefix) {
  const MediaFile f(100, SimTime::seconds(1));
  PlaybackBuffer buffer(f, 10);
  EXPECT_EQ(buffer.tracked_segments(), 10);
  EXPECT_THROW(buffer.record_arrival(10, SimTime::zero()), util::ContractViolation);
}

TEST(PlaybackBuffer, DoubleRecordThrows) {
  const MediaFile f(2, SimTime::seconds(1));
  PlaybackBuffer buffer(f, 2);
  buffer.record_arrival(0, SimTime::seconds(1));
  EXPECT_THROW(buffer.record_arrival(0, SimTime::seconds(2)), util::ContractViolation);
  EXPECT_TRUE(buffer.arrived(0));
  EXPECT_EQ(buffer.arrival_time(0), SimTime::seconds(1));
  EXPECT_FALSE(buffer.arrived(1));
  EXPECT_THROW((void)buffer.arrival_time(1), util::ContractViolation);
}

TEST(PlaybackBuffer, PaperFigure1AssignmentIDelays) {
  // Figure 1, Assignment I: suppliers (R0/2, R0/4, R0/8, R0/8) send
  // contiguous runs; minimum start delay is 5Δt.
  const SimTime dt = SimTime::seconds(1);
  const MediaFile f(8, dt);
  PlaybackBuffer buffer(f, 8);
  // Ps1 (class 1, 2Δt per segment): segments 0..3.
  for (std::int64_t j = 0; j < 4; ++j) buffer.record_arrival(j, dt * (2 * (j + 1)));
  // Ps2 (class 2, 4Δt per segment): segments 4,5.
  buffer.record_arrival(4, dt * 4);
  buffer.record_arrival(5, dt * 8);
  // Ps3, Ps4 (class 3, 8Δt per segment): segments 6 and 7.
  buffer.record_arrival(6, dt * 8);
  buffer.record_arrival(7, dt * 8);
  EXPECT_EQ(buffer.min_buffering_delay(), dt * 5);
}

}  // namespace
}  // namespace p2ps::media
