// Tests for the executable streaming session: the Theorem-1 delay plays
// stall-free on a live event loop; anything less stalls.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/session_runtime.hpp"
#include "util/assert.hpp"

namespace p2ps::core {
namespace {

using media::MediaFile;
using util::SimTime;

const SimTime kDt = SimTime::seconds(1);

SessionRuntime make_runtime(sim::Simulator& simulator, std::vector<PeerClass> classes,
                            std::int64_t segments, std::int64_t delay_dt) {
  TransmissionPlan plan(MediaFile(segments, kDt), ots_assignment(classes));
  return SessionRuntime(simulator, std::move(plan), kDt * delay_dt);
}

TEST(SessionRuntime, StallFreeAtTheoremOneDelay) {
  sim::Simulator simulator;
  auto runtime = make_runtime(simulator, {1, 2, 3, 3}, 24, 4);
  runtime.start();
  simulator.run();
  ASSERT_TRUE(runtime.finished());
  const auto& report = runtime.report();
  EXPECT_TRUE(report.stall_free());
  EXPECT_EQ(report.segments_played, 24);
  EXPECT_EQ(report.playback_start, kDt * 4);
  EXPECT_EQ(report.playback_end, kDt * (4 + 24));
}

TEST(SessionRuntime, StallsBelowTheoremOneDelay) {
  sim::Simulator simulator;
  auto runtime = make_runtime(simulator, {1, 2, 3, 3}, 24, 3);  // one Δt short
  runtime.start();
  simulator.run();
  ASSERT_TRUE(runtime.finished());
  EXPECT_GT(runtime.report().stalls, 0);
  EXPECT_EQ(runtime.report().segments_played, 24);
}

TEST(SessionRuntime, EveryValidSessionPlaysCleanAtItsDelay) {
  for (const auto& classes : std::vector<std::vector<PeerClass>>{
           {1, 1}, {1, 2, 2}, {2, 2, 2, 2}, {1, 2, 3, 4, 4}}) {
    sim::Simulator simulator;
    const auto n = static_cast<std::int64_t>(classes.size());
    auto runtime = make_runtime(simulator, classes, 50, n);
    runtime.start();
    simulator.run();
    ASSERT_TRUE(runtime.finished());
    EXPECT_TRUE(runtime.report().stall_free()) << n << " suppliers";
  }
}

TEST(SessionRuntime, ObserverSeesEverySegmentInOrder) {
  sim::Simulator simulator;
  auto runtime = make_runtime(simulator, {1, 1}, 10, 2);
  std::vector<std::int64_t> played;
  int late = 0;
  runtime.set_playback_observer([&](std::int64_t segment, bool on_time) {
    played.push_back(segment);
    late += !on_time;
  });
  runtime.start();
  simulator.run();
  ASSERT_EQ(played.size(), 10u);
  for (std::int64_t s = 0; s < 10; ++s) EXPECT_EQ(played[static_cast<std::size_t>(s)], s);
  EXPECT_EQ(late, 0);
}

TEST(SessionRuntime, WorksFromANonZeroOrigin) {
  sim::Simulator simulator;
  simulator.run_until(SimTime::hours(5));
  auto runtime = make_runtime(simulator, {1, 1}, 8, 2);
  runtime.start();
  simulator.run();
  ASSERT_TRUE(runtime.finished());
  EXPECT_TRUE(runtime.report().stall_free());
  EXPECT_EQ(runtime.report().playback_start, SimTime::hours(5) + kDt * 2);
}

TEST(SessionRuntime, BufferIsInspectable) {
  sim::Simulator simulator;
  auto runtime = make_runtime(simulator, {1, 1}, 8, 2);
  runtime.start();
  simulator.run_until(simulator.now() + kDt * 3);
  // After 3Δt, the class-1 pair has delivered at least the first 2 segments.
  EXPECT_TRUE(runtime.buffer().arrived(0));
  EXPECT_FALSE(runtime.finished());
  simulator.run();
  EXPECT_TRUE(runtime.buffer().complete());
}

TEST(SessionRuntime, DoubleStartThrows) {
  sim::Simulator simulator;
  auto runtime = make_runtime(simulator, {1, 1}, 4, 2);
  runtime.start();
  EXPECT_THROW(runtime.start(), util::ContractViolation);
}

TEST(SessionRuntime, RaggedFileAtTheoremDelay) {
  sim::Simulator simulator;
  auto runtime = make_runtime(simulator, {1, 2, 3, 3}, 29, 4);  // 3.6 windows
  runtime.start();
  simulator.run();
  ASSERT_TRUE(runtime.finished());
  EXPECT_TRUE(runtime.report().stall_free());
  EXPECT_EQ(runtime.report().segments_played, 29);
}

}  // namespace
}  // namespace p2ps::core
