// Tests for OTS_p2p (paper Section 3): the Figure 1/2 walk-throughs, the
// Theorem 1 equality as a property over every valid supplier multiset, and
// brute-force optimality on small windows.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <sstream>
#include <vector>

#include "core/ots.hpp"
#include "util/assert.hpp"

namespace p2ps::core {
namespace {

using util::SimTime;

// ---------- paper-anchored examples ----------

TEST(OtsAssignment, PaperFigure2Walkthrough) {
  // Suppliers (R0/2, R0/4, R0/8, R0/8) = classes (1, 2, 3, 3).
  // Paper: round 1 assigns segments 7,6,5,4 to Ps1..Ps4; round 2 assigns
  // 3,2 to Ps1,Ps2; rounds 3-4 assign 1,0 to Ps1.
  const std::vector<PeerClass> classes{1, 2, 3, 3};
  const SegmentAssignment a = ots_assignment(classes);

  EXPECT_EQ(a.window_size(), 8);
  EXPECT_EQ(a.supplier_count(), 4u);

  EXPECT_EQ(std::vector<std::int64_t>(a.segments_of(0).begin(), a.segments_of(0).end()),
            (std::vector<std::int64_t>{0, 1, 3, 7}));
  EXPECT_EQ(std::vector<std::int64_t>(a.segments_of(1).begin(), a.segments_of(1).end()),
            (std::vector<std::int64_t>{2, 6}));
  EXPECT_EQ(std::vector<std::int64_t>(a.segments_of(2).begin(), a.segments_of(2).end()),
            (std::vector<std::int64_t>{5}));
  EXPECT_EQ(std::vector<std::int64_t>(a.segments_of(3).begin(), a.segments_of(3).end()),
            (std::vector<std::int64_t>{4}));

  EXPECT_EQ(a.owner(7), 0);
  EXPECT_EQ(a.owner(6), 1);
  EXPECT_EQ(a.owner(5), 2);
  EXPECT_EQ(a.owner(4), 3);
}

TEST(OtsAssignment, PaperFigure1DelayComparison) {
  // Assignment II (OTS) starts playback at 4Δt; Assignment I (contiguous)
  // needs 5Δt.
  const std::vector<PeerClass> classes{1, 2, 3, 3};
  EXPECT_EQ(ots_assignment(classes).min_buffering_delay_dt(), 4);
  EXPECT_EQ(contiguous_assignment(classes).min_buffering_delay_dt(), 5);
}

TEST(OtsAssignment, ContiguousLayoutMatchesFigure1AssignmentI) {
  const std::vector<PeerClass> classes{1, 2, 3, 3};
  const SegmentAssignment a = contiguous_assignment(classes);
  EXPECT_EQ(std::vector<std::int64_t>(a.segments_of(0).begin(), a.segments_of(0).end()),
            (std::vector<std::int64_t>{0, 1, 2, 3}));
  EXPECT_EQ(std::vector<std::int64_t>(a.segments_of(1).begin(), a.segments_of(1).end()),
            (std::vector<std::int64_t>{4, 5}));
  EXPECT_EQ(std::vector<std::int64_t>(a.segments_of(2).begin(), a.segments_of(2).end()),
            (std::vector<std::int64_t>{6}));
  EXPECT_EQ(std::vector<std::int64_t>(a.segments_of(3).begin(), a.segments_of(3).end()),
            (std::vector<std::int64_t>{7}));
}

TEST(OtsAssignment, InputOrderDoesNotChangeDelay) {
  const std::vector<PeerClass> sorted{1, 2, 3, 3};
  const std::vector<PeerClass> scrambled{3, 1, 3, 2};
  EXPECT_EQ(ots_assignment(scrambled).min_buffering_delay_dt(),
            ots_assignment(sorted).min_buffering_delay_dt());
}

TEST(OtsAssignment, TwoHalves) {
  // Smallest possible session: two class-1 peers, window 2, delay 2Δt.
  const std::vector<PeerClass> classes{1, 1};
  const SegmentAssignment a = ots_assignment(classes);
  EXPECT_EQ(a.window_size(), 2);
  EXPECT_EQ(a.min_buffering_delay_dt(), 2);
}

TEST(OtsAssignment, SixteenSixteenths) {
  // Sixteen class-4 peers: the widest uniform session, delay 16Δt.
  const std::vector<PeerClass> classes(16, 4);
  const SegmentAssignment a = ots_assignment(classes);
  EXPECT_EQ(a.window_size(), 16);
  EXPECT_EQ(a.min_buffering_delay_dt(), 16);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(a.segments_of(i).size(), 1u);
}

// ---------- preconditions ----------

TEST(OtsAssignment, RejectsOffersNotSummingToR0) {
  EXPECT_THROW((void)ots_assignment(std::vector<PeerClass>{1}), util::ContractViolation);
  EXPECT_THROW((void)ots_assignment(std::vector<PeerClass>{1, 1, 1}),
               util::ContractViolation);
  EXPECT_THROW((void)ots_assignment(std::vector<PeerClass>{}), util::ContractViolation);
  EXPECT_THROW((void)contiguous_assignment(std::vector<PeerClass>{2}),
               util::ContractViolation);
}

TEST(OtsAssignment, RejectsInvalidClasses) {
  EXPECT_THROW((void)ots_assignment(std::vector<PeerClass>{0, 1}),
               util::ContractViolation);
  EXPECT_THROW((void)assignment_window(std::vector<PeerClass>{-1}),
               util::ContractViolation);
}

TEST(AssignmentWindow, FollowsLowestClass) {
  EXPECT_EQ(assignment_window(std::vector<PeerClass>{1, 1}), 2);
  EXPECT_EQ(assignment_window(std::vector<PeerClass>{1, 2, 2}), 4);
  EXPECT_EQ(assignment_window(std::vector<PeerClass>{1, 2, 3, 3}), 8);
  EXPECT_EQ(assignment_window(std::vector<PeerClass>{4}), 16);
}

TEST(OffersSumToR0, DetectsExactCover) {
  EXPECT_TRUE(offers_sum_to_r0(std::vector<PeerClass>{1, 1}));
  EXPECT_TRUE(offers_sum_to_r0(std::vector<PeerClass>{1, 2, 3, 4, 4}));
  EXPECT_FALSE(offers_sum_to_r0(std::vector<PeerClass>{1}));
  EXPECT_FALSE(offers_sum_to_r0(std::vector<PeerClass>{1, 1, 4}));
}

// ---------- Theorem 1 as a property ----------

/// All multisets of classes in [1, max_class] whose offers sum to R0,
/// generated in nondecreasing class order.
std::vector<std::vector<PeerClass>> all_sessions(PeerClass max_class) {
  std::vector<std::vector<PeerClass>> result;
  std::vector<PeerClass> current;
  const std::int64_t full = std::int64_t{1} << max_class;  // R0 in 2^-max units
  std::function<void(std::int64_t, PeerClass)> recurse = [&](std::int64_t remaining,
                                                             PeerClass next) {
    if (remaining == 0) {
      result.push_back(current);
      return;
    }
    for (PeerClass c = next; c <= max_class; ++c) {
      const std::int64_t offer = full >> c;
      if (offer <= remaining) {
        current.push_back(c);
        recurse(remaining - offer, c);
        current.pop_back();
      }
    }
  };
  recurse(full, 1);
  return result;
}

class Theorem1Property : public ::testing::TestWithParam<std::vector<PeerClass>> {};

TEST_P(Theorem1Property, OtsDelayEqualsSupplierCount) {
  const auto& classes = GetParam();
  const SegmentAssignment a = ots_assignment(classes);
  EXPECT_EQ(a.min_buffering_delay_dt(),
            theorem1_min_delay_dt(classes.size()))
      << "classes size " << classes.size();
}

TEST_P(Theorem1Property, ScheduleIsFeasibleAtNAndInfeasibleBelow) {
  const auto& classes = GetParam();
  const SimTime dt = SimTime::seconds(1);
  const SegmentAssignment a = ots_assignment(classes);
  // Three windows: the repetition must not introduce new underflows.
  const auto buffer = a.simulate_arrivals(dt, 3);
  const std::int64_t n = static_cast<std::int64_t>(classes.size());
  EXPECT_TRUE(buffer.check(dt * n).feasible);
  EXPECT_FALSE(buffer.check(dt * n - SimTime::millis(1)).feasible);
  EXPECT_EQ(buffer.min_buffering_delay(), dt * n);
}

TEST_P(Theorem1Property, BaselinesNeverBeatOts) {
  const auto& classes = GetParam();
  const std::int64_t ots = ots_assignment(classes).min_buffering_delay_dt();
  EXPECT_GE(contiguous_assignment(classes).min_buffering_delay_dt(), ots);
  EXPECT_GE(unsorted_round_robin_assignment(classes).min_buffering_delay_dt(), ots);
}

INSTANTIATE_TEST_SUITE_P(
    AllSessionsUpToClass4, Theorem1Property,
    ::testing::ValuesIn(all_sessions(4)),
    [](const ::testing::TestParamInfo<std::vector<PeerClass>>& info) {
      std::ostringstream os;
      os << "classes";
      for (PeerClass c : info.param) os << "_" << c;
      return os.str();
    });

INSTANTIATE_TEST_SUITE_P(
    AllSessionsClass5Exactly, Theorem1Property,
    ::testing::ValuesIn([] {
      // A thinner slice at K=5 (window 32) to keep runtime bounded: every
      // session that actually uses a class-5 peer.
      auto sessions = all_sessions(5);
      std::vector<std::vector<PeerClass>> with5;
      for (auto& s : sessions) {
        if (std::find(s.begin(), s.end(), 5) != s.end()) with5.push_back(std::move(s));
      }
      return with5;
    }()),
    [](const ::testing::TestParamInfo<std::vector<PeerClass>>& info) {
      std::ostringstream os;
      os << "classes";
      for (PeerClass c : info.param) os << "_" << c;
      return os.str();
    });

// ---------- brute-force optimality ----------

/// Enumerates every assignment of `window` segments respecting per-supplier
/// quotas and returns the minimum achievable buffering delay.
std::int64_t brute_force_min_delay(const std::vector<PeerClass>& classes) {
  const std::int64_t window = assignment_window(classes);
  std::vector<std::int64_t> remaining(classes.size());
  for (std::size_t i = 0; i < classes.size(); ++i) {
    remaining[i] = window >> classes[i];
  }
  std::vector<std::int32_t> owner(static_cast<std::size_t>(window));
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  std::function<void(std::int64_t)> recurse = [&](std::int64_t segment) {
    if (segment == window) {
      const SegmentAssignment a(classes, owner);
      best = std::min(best, a.min_buffering_delay_dt());
      return;
    }
    for (std::size_t i = 0; i < classes.size(); ++i) {
      if (remaining[i] > 0) {
        --remaining[i];
        owner[static_cast<std::size_t>(segment)] = static_cast<std::int32_t>(i);
        recurse(segment + 1);
        ++remaining[i];
      }
    }
  };
  recurse(0);
  return best;
}

class BruteForceOptimality : public ::testing::TestWithParam<std::vector<PeerClass>> {};

TEST_P(BruteForceOptimality, NoAssignmentBeatsOts) {
  const auto& classes = GetParam();
  EXPECT_EQ(ots_assignment(classes).min_buffering_delay_dt(),
            brute_force_min_delay(classes));
}

INSTANTIATE_TEST_SUITE_P(
    SmallWindows, BruteForceOptimality,
    ::testing::ValuesIn([] {
      // Every session with window <= 8 (max class 3) is cheap to enumerate,
      // plus the paper's (1,2,3,3) example included above.
      return all_sessions(3);
    }()),
    [](const ::testing::TestParamInfo<std::vector<PeerClass>>& info) {
      std::ostringstream os;
      os << "classes";
      for (PeerClass c : info.param) os << "_" << c;
      return os.str();
    });

TEST(BruteForceSpotCheck, PaperExampleWindow8) {
  // 840 assignments for quotas (4,2,1,1): OTS ties the exhaustive optimum.
  const std::vector<PeerClass> classes{1, 2, 3, 3};
  EXPECT_EQ(brute_force_min_delay(classes), 4);
}

// ---------- assignment structure ----------

TEST(SegmentAssignment, QuotasMatchBandwidth) {
  const std::vector<PeerClass> classes{1, 2, 3, 4, 4};
  const SegmentAssignment a = ots_assignment(classes);
  EXPECT_EQ(a.window_size(), 16);
  EXPECT_EQ(a.segments_of(0).size(), 8u);   // class 1: 16/2
  EXPECT_EQ(a.segments_of(1).size(), 4u);   // class 2: 16/4
  EXPECT_EQ(a.segments_of(2).size(), 2u);   // class 3: 16/8
  EXPECT_EQ(a.segments_of(3).size(), 1u);   // class 4: 16/16
  EXPECT_EQ(a.segments_of(4).size(), 1u);
}

TEST(SegmentAssignment, EverySegmentHasExactlyOneOwner) {
  const std::vector<PeerClass> classes{2, 2, 2, 2};
  const SegmentAssignment a = ots_assignment(classes);
  std::vector<int> covered(static_cast<std::size_t>(a.window_size()), 0);
  for (std::size_t i = 0; i < a.supplier_count(); ++i) {
    for (std::int64_t s : a.segments_of(i)) ++covered[static_cast<std::size_t>(s)];
  }
  for (int c : covered) EXPECT_EQ(c, 1);
}

TEST(SegmentAssignment, FinishTimesFollowTransmissionRate) {
  const std::vector<PeerClass> classes{1, 2, 3, 3};
  const SegmentAssignment a = ots_assignment(classes);
  const SimTime dt = SimTime::seconds(1);
  // Class-1 supplier: one segment every 2Δt.
  EXPECT_EQ(a.finish_time(0, 0, dt), dt * 2);
  EXPECT_EQ(a.finish_time(0, 3, dt), dt * 8);
  // Class-3 supplier: 8Δt for its single segment.
  EXPECT_EQ(a.finish_time(2, 0, dt), dt * 8);
  EXPECT_THROW((void)a.finish_time(2, 1, dt), util::ContractViolation);
}

TEST(SegmentAssignment, RejectsQuotaViolations) {
  // Hand-built owner map that gives the class-1 supplier too few segments.
  const std::vector<PeerClass> classes{1, 1};
  EXPECT_THROW(SegmentAssignment(classes, std::vector<std::int32_t>{0, 0}),
               util::ContractViolation);
  EXPECT_THROW(SegmentAssignment(classes, std::vector<std::int32_t>{0, 7}),
               util::ContractViolation);
}

TEST(Theorem1ClosedForm, MatchesDefinition) {
  EXPECT_EQ(theorem1_min_delay_dt(2), 2);
  EXPECT_EQ(theorem1_min_delay_dt(16), 16);
}

// ---------- the naive round-robin baseline (reconstruction note) ----------

TEST(NaiveRoundRobin, MatchesOtsOnThePaperExample) {
  // On balanced sets (including Figure 1's) the quota-only loop is optimal
  // and produces the very same assignment as the deadline-aware OTS.
  const std::vector<PeerClass> classes{1, 2, 3, 3};
  const SegmentAssignment naive = naive_round_robin_assignment(classes);
  const SegmentAssignment ots = ots_assignment(classes);
  EXPECT_EQ(naive.min_buffering_delay_dt(), 4);
  for (std::int64_t s = 0; s < 8; ++s) {
    EXPECT_EQ(naive.owner(s), ots.owner(s)) << "segment " << s;
  }
}

TEST(NaiveRoundRobin, MissesTheoremOneOnSkewedSets) {
  // The counter-example from DESIGN.md's reconstruction note: the literal
  // pseudo-code reading gives 17*dt where Theorem 1 promises (and OTS
  // achieves) 13*dt.
  std::vector<PeerClass> classes{2, 3};
  classes.insert(classes.end(), 9, 4);
  classes.insert(classes.end(), 2, 5);
  ASSERT_TRUE(offers_sum_to_r0(classes));
  ASSERT_EQ(classes.size(), 13u);

  const SegmentAssignment naive = naive_round_robin_assignment(classes);
  const SegmentAssignment ots = ots_assignment(classes);
  EXPECT_EQ(naive.min_buffering_delay_dt(), 17);
  EXPECT_EQ(ots.min_buffering_delay_dt(), 13);
}

TEST(NaiveRoundRobin, NeverBeatsOts) {
  for (const auto& classes : all_sessions(4)) {
    EXPECT_GE(naive_round_robin_assignment(classes).min_buffering_delay_dt(),
              ots_assignment(classes).min_buffering_delay_dt());
  }
}

}  // namespace
}  // namespace p2ps::core
