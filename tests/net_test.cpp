// Tests for the message-level substrate: transport semantics and the
// asynchronous (distributed) DAC_p2p admission round.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/async_admission.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace p2ps::net {
namespace {

using core::PeerId;
using util::SimTime;

// ---------- Transport ----------

TEST(Transport, DeliversWithinLatencyBounds) {
  sim::Simulator simulator;
  TransportConfig config;
  config.min_latency = SimTime::millis(10);
  config.max_latency = SimTime::millis(50);
  Transport<int> transport(simulator, config, util::Rng(1));

  std::vector<std::int64_t> delivery_times;
  transport.attach(PeerId{2}, [&](const Envelope<int>& envelope) {
    EXPECT_EQ(envelope.from, PeerId{1});
    EXPECT_EQ(envelope.payload, 42);
    delivery_times.push_back(simulator.now().as_millis());
  });
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(transport.send(PeerId{1}, PeerId{2}, 42));
  }
  simulator.run();
  ASSERT_EQ(delivery_times.size(), 100u);
  for (auto t : delivery_times) {
    EXPECT_GE(t, 10);
    EXPECT_LE(t, 50);
  }
  EXPECT_EQ(transport.sent(), 100u);
  EXPECT_EQ(transport.delivered(), 100u);
}

TEST(Transport, DropProbabilityOneLosesEverything) {
  sim::Simulator simulator;
  TransportConfig config;
  config.drop_probability = 1.0;
  Transport<int> transport(simulator, config, util::Rng(2));
  int received = 0;
  transport.attach(PeerId{2}, [&](const Envelope<int>&) { ++received; });
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(transport.send(PeerId{1}, PeerId{2}, i));
  }
  simulator.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(transport.dropped(), 10u);
}

TEST(Transport, PartialLossMatchesProbability) {
  sim::Simulator simulator;
  TransportConfig config;
  config.drop_probability = 0.3;
  Transport<int> transport(simulator, config, util::Rng(3));
  int received = 0;
  transport.attach(PeerId{2}, [&](const Envelope<int>&) { ++received; });
  const int n = 10'000;
  for (int i = 0; i < n; ++i) transport.send(PeerId{1}, PeerId{2}, i);
  simulator.run();
  EXPECT_NEAR(static_cast<double>(received) / n, 0.7, 0.02);
}

TEST(Transport, DetachedReceiverIsUndeliverable) {
  sim::Simulator simulator;
  Transport<std::string> transport(simulator, TransportConfig{}, util::Rng(4));
  int received = 0;
  transport.attach(PeerId{9}, [&](const Envelope<std::string>&) { ++received; });
  transport.send(PeerId{1}, PeerId{9}, "hello");
  transport.detach(PeerId{9});
  simulator.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(transport.undeliverable(), 1u);
  EXPECT_FALSE(transport.attached(PeerId{9}));
}

TEST(Transport, ZeroLatencyDeliversAtSameInstant) {
  sim::Simulator simulator;
  TransportConfig config;
  config.min_latency = SimTime::zero();
  config.max_latency = SimTime::zero();
  Transport<int> transport(simulator, config, util::Rng(5));
  SimTime seen = SimTime::max();
  transport.attach(PeerId{2},
                   [&](const Envelope<int>&) { seen = simulator.now(); });
  simulator.schedule_at(SimTime::seconds(3),
                        [&] { transport.send(PeerId{1}, PeerId{2}, 1); });
  simulator.run();
  EXPECT_EQ(seen, SimTime::seconds(3));
}

// ---------- async admission fixture ----------

struct AsyncWorld {
  sim::Simulator simulator;
  sim::TimerService timers{simulator};
  MessageTransport transport;
  std::vector<std::unique_ptr<SupplierEndpoint>> suppliers;

  explicit AsyncWorld(MailboxConfig config = {})
      : transport(simulator, config, util::Rng(11)) {}

  SupplierEndpoint& add_supplier(std::uint64_t id, core::PeerClass cls,
                                 bool differentiated = true) {
    SupplierEndpoint::Config config;
    config.num_classes = 4;
    config.differentiated = differentiated;
    suppliers.push_back(std::make_unique<SupplierEndpoint>(
        PeerId{id}, cls, config, timers, transport, util::Rng(100 + id)));
    return *suppliers.back();
  }

  [[nodiscard]] std::vector<lookup::CandidateInfo> all_candidates() const {
    std::vector<lookup::CandidateInfo> out;
    for (const auto& supplier : suppliers) {
      out.push_back({supplier->id(), supplier->admission().own_class()});
    }
    return out;
  }
};

TEST(AsyncAdmission, SuccessfulSessionCommitsExactlyR0) {
  AsyncWorld world;
  world.add_supplier(1, 1);
  world.add_supplier(2, 1);
  world.add_supplier(3, 2);

  AsyncAdmissionAttempt::Result result;
  bool done = false;
  AsyncAdmissionAttempt attempt(PeerId{50}, /*own_class=*/1, core::SessionId{7},
                                world.all_candidates(), {}, world.simulator,
                                world.transport, [&](const auto& r) {
                                  result = r;
                                  done = true;
                                });
  attempt.start();
  world.simulator.run();

  ASSERT_TRUE(done);
  EXPECT_TRUE(result.admitted);
  EXPECT_EQ(result.session, core::SessionId{7});
  ASSERT_EQ(result.suppliers.size(), 2u);  // greedy: the two class-1 peers
  EXPECT_EQ(result.buffering_delay_dt, 2);
  EXPECT_EQ(result.responses, 3u);

  // The chosen suppliers are in session; the released one is free again.
  EXPECT_TRUE(world.suppliers[0]->in_session());
  EXPECT_TRUE(world.suppliers[1]->in_session());
  EXPECT_FALSE(world.suppliers[2]->in_session());
  EXPECT_FALSE(world.suppliers[2]->holding());

  // Session teardown restores everyone to idle.
  world.suppliers[0]->end_session();
  world.suppliers[1]->end_session();
  EXPECT_FALSE(world.suppliers[0]->in_session());
}

TEST(AsyncAdmission, InsufficientBandwidthRejects) {
  AsyncWorld world;
  world.add_supplier(1, 3);  // 1/8 R0 alone
  bool admitted = true;
  AsyncAdmissionAttempt attempt(PeerId{50}, 2, core::SessionId{1},
                                world.all_candidates(), {}, world.simulator,
                                world.transport,
                                [&](const auto& r) { admitted = r.admitted; });
  attempt.start();
  world.simulator.run();
  EXPECT_FALSE(admitted);
  EXPECT_FALSE(world.suppliers[0]->in_session());
  EXPECT_FALSE(world.suppliers[0]->holding());  // grant released
}

TEST(AsyncAdmission, BusySuppliersReceiveReminders) {
  AsyncWorld world;
  auto& s1 = world.add_supplier(1, 1);
  auto& s2 = world.add_supplier(2, 1);

  // First requester takes both suppliers.
  bool first_admitted = false;
  AsyncAdmissionAttempt first(PeerId{50}, 1, core::SessionId{1},
                              world.all_candidates(), {}, world.simulator,
                              world.transport,
                              [&](const auto& r) { first_admitted = r.admitted; });
  first.start();
  world.simulator.run();
  ASSERT_TRUE(first_admitted);
  ASSERT_TRUE(s1.in_session() && s2.in_session());

  // Second (favored class 1) requester finds everyone busy: rejected, and
  // reminders land on busy candidates covering the full shortfall R0.
  AsyncAdmissionAttempt::Result second_result;
  AsyncAdmissionAttempt second(PeerId{51}, 1, core::SessionId{2},
                               world.all_candidates(), {}, world.simulator,
                               world.transport,
                               [&](const auto& r) { second_result = r; });
  second.start();
  world.simulator.run();
  EXPECT_FALSE(second_result.admitted);
  EXPECT_EQ(second_result.reminders_left, 2u);
  EXPECT_FALSE(s1.admission().pending_reminders().empty());

  // Ending the session applies the tightening rule.
  s1.end_session();
  EXPECT_EQ(s1.admission().vector(), core::AdmissionProbabilityVector(4, 1));
}

TEST(AsyncAdmission, RemindersCanBeDisabled) {
  AsyncWorld world;
  auto& s1 = world.add_supplier(1, 1);
  world.add_supplier(2, 1);
  bool ok = false;
  AsyncAdmissionAttempt first(PeerId{50}, 1, core::SessionId{1},
                              world.all_candidates(), {}, world.simulator,
                              world.transport, [&](const auto& r) { ok = r.admitted; });
  first.start();
  world.simulator.run();
  ASSERT_TRUE(ok);

  AsyncAdmissionAttempt::Config config;
  config.reminders_enabled = false;
  AsyncAdmissionAttempt::Result result;
  AsyncAdmissionAttempt second(PeerId{51}, 1, core::SessionId{2},
                               world.all_candidates(), config, world.simulator,
                               world.transport, [&](const auto& r) { result = r; });
  second.start();
  world.simulator.run();
  EXPECT_FALSE(result.admitted);
  EXPECT_EQ(result.reminders_left, 0u);
  EXPECT_TRUE(s1.admission().pending_reminders().empty());
}

TEST(AsyncAdmission, TotalMessageLossTimesOutAndRejects) {
  MailboxConfig lossy;
  lossy.drop_probability = 1.0;
  AsyncWorld world(lossy);
  world.add_supplier(1, 1);
  world.add_supplier(2, 1);

  AsyncAdmissionAttempt::Result result;
  bool done = false;
  AsyncAdmissionAttempt attempt(PeerId{50}, 1, core::SessionId{1},
                                world.all_candidates(), {}, world.simulator,
                                world.transport, [&](const auto& r) {
                                  result = r;
                                  done = true;
                                });
  attempt.start();
  world.simulator.run();
  EXPECT_TRUE(done);  // the response timeout concluded the attempt
  EXPECT_FALSE(result.admitted);
  EXPECT_EQ(result.responses, 0u);
  EXPECT_FALSE(world.suppliers[0]->in_session());
}

TEST(AsyncAdmission, HoldExpiresWhenRequesterVanishes) {
  AsyncWorld world;
  auto& supplier = world.add_supplier(1, 1);

  // A bare probe with no follow-up: the hold must expire on its own.
  world.transport.attach(PeerId{99}, [](const Envelope<Message>&) {});
  world.transport.send(PeerId{99}, PeerId{1}, Probe{1});
  world.simulator.run_until(SimTime::seconds(1));
  EXPECT_TRUE(supplier.holding());
  world.simulator.run_until(SimTime::seconds(30));  // > hold_timeout (10 s)
  EXPECT_FALSE(supplier.holding());
  EXPECT_FALSE(supplier.in_session());
}

TEST(AsyncAdmission, HeldSupplierAnswersBusy) {
  AsyncWorld world;
  world.add_supplier(1, 1);
  std::vector<ProbeResponse> responses;
  world.transport.attach(PeerId{99}, [&](const Envelope<Message>& envelope) {
    if (const auto* r = std::get_if<ProbeResponse>(&envelope.payload)) {
      responses.push_back(*r);
    }
  });
  world.transport.send(PeerId{99}, PeerId{1}, Probe{1});
  world.simulator.run_until(SimTime::seconds(1));
  world.transport.send(PeerId{99}, PeerId{1}, Probe{1});  // while held
  world.simulator.run_until(SimTime::seconds(2));
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].reply, core::ProbeReply::kGranted);
  EXPECT_EQ(responses[1].reply, core::ProbeReply::kBusy);
}

TEST(AsyncAdmission, StaleReminderIsIgnored) {
  AsyncWorld world;
  auto& supplier = world.add_supplier(1, 1);
  world.transport.attach(PeerId{99}, [](const Envelope<Message>&) {});
  // Reminder with no running session: dropped.
  world.transport.send(PeerId{99}, PeerId{1}, Reminder{1});
  world.simulator.run();
  EXPECT_TRUE(supplier.admission().pending_reminders().empty());
}

}  // namespace
}  // namespace p2ps::net
