// Tests for the runtime telemetry layer (src/obs/): the metric Registry's
// lanes and aggregation, fixed-bucket histograms, the sharded phase
// profiler, anomaly watchdog rules, the JSONL exporter, and — the layer's
// design bar — strict out-of-band operation: every scenario payload must
// be byte-identical with telemetry enabled or disabled, across shard and
// thread counts (docs/observability.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "engine/sharded_system.hpp"
#include "engine/trace.hpp"
#include "net/latency.hpp"
#include "obs/mechanics_schema.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/telemetry.hpp"
#include "obs/watchdog.hpp"
#include "scenario/scenario.hpp"
#include "util/assert.hpp"
#include "util/sim_time.hpp"
#include "workload/arrival_pattern.hpp"

namespace p2ps {
namespace {

using util::SimTime;

// ---------- Registry ----------

TEST(Registry, CounterLanesSumAcrossShards) {
  obs::Registry registry;
  obs::Counter* lane0 = registry.counter("attempts", 0);
  obs::Counter* lane2 = registry.counter("attempts", 2);
  lane0->add(5);
  lane2->add(7);
  registry.counter("attempts", 1)->add();  // middle lane default-created
  EXPECT_EQ(registry.aggregate("attempts"), 13);
  EXPECT_EQ(registry.size(), 1u);  // one metric, three lanes
}

TEST(Registry, HandlesStayValidAsTheRegistryGrows) {
  obs::Registry registry;
  obs::Counter* first = registry.counter("first");
  // Force plenty of growth in both the metric list and the lane deques.
  for (int i = 0; i < 100; ++i) {
    registry.gauge("gauge_" + std::to_string(i), /*lane=*/i);
  }
  first->add(3);
  EXPECT_EQ(registry.aggregate("first"), 3);
  // Re-looking up yields the same cell, not a fresh one.
  EXPECT_EQ(registry.counter("first"), first);
}

TEST(Registry, GaugeAggregationSumVsMax) {
  obs::Registry registry;
  registry.gauge("pending", 0)->set(10);
  registry.gauge("pending", 1)->set(4);
  registry.gauge("peak", 0, obs::Aggregation::kMax)->set(10);
  registry.gauge("peak", 1, obs::Aggregation::kMax)->set(4);
  EXPECT_EQ(registry.aggregate("pending"), 14);
  EXPECT_EQ(registry.aggregate("peak"), 10);
}

TEST(Registry, KindAndAggregationMismatchesThrow) {
  obs::Registry registry;
  registry.counter("events");
  EXPECT_THROW(registry.gauge("events"), util::ContractViolation);
  registry.gauge("level", 0, obs::Aggregation::kSum);
  EXPECT_THROW(registry.gauge("level", 1, obs::Aggregation::kMax),
               util::ContractViolation);
  registry.histogram("batch", {1, 2});
  EXPECT_THROW(registry.histogram("batch", {1, 3}), util::ContractViolation);
}

TEST(Registry, AggregateOfAbsentNameIsZero) {
  obs::Registry registry;
  EXPECT_EQ(registry.aggregate("never_registered"), 0);
}

TEST(Registry, SnapshotPreservesRegistrationOrder) {
  obs::Registry registry;
  registry.gauge("zebra")->set(1);
  registry.counter("apple")->add(2);
  registry.gauge("mango")->set(3);
  const auto values = registry.snapshot();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0].name, "zebra");
  EXPECT_EQ(values[1].name, "apple");
  EXPECT_EQ(values[2].name, "mango");
  EXPECT_EQ(values[1].kind, obs::MetricKind::kCounter);
  EXPECT_EQ(values[1].value, 2);
}

// ---------- Histogram ----------

TEST(Histogram, BoundsAreInclusiveWithAnOverflowBucket) {
  obs::Histogram hist({10, 100});
  hist.observe(0);    // <= 10
  hist.observe(10);   // <= 10 (inclusive)
  hist.observe(11);   // <= 100
  hist.observe(100);  // <= 100
  hist.observe(101);  // overflow
  ASSERT_EQ(hist.counts().size(), hist.bounds().size() + 1);
  EXPECT_EQ(hist.counts(), (std::vector<std::int64_t>{2, 2, 1}));
  EXPECT_EQ(hist.total_count(), 5);
  EXPECT_EQ(hist.sum(), 0 + 10 + 11 + 100 + 101);
}

TEST(Histogram, RejectsEmptyAndNonIncreasingBounds) {
  EXPECT_THROW(obs::Histogram({}), util::ContractViolation);
  EXPECT_THROW(obs::Histogram({5, 5}), util::ContractViolation);
  EXPECT_THROW(obs::Histogram({5, 3}), util::ContractViolation);
}

TEST(Histogram, RegistryLanesMergeBucketwise) {
  obs::Registry registry;
  registry.histogram("batch", {1, 8}, 0)->observe(1);
  registry.histogram("batch", {1, 8}, 1)->observe(5);
  registry.histogram("batch", {1, 8}, 1)->observe(9);
  const auto values = registry.snapshot();
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0].kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(values[0].value, 3);  // total count across lanes
  EXPECT_EQ(values[0].hist_counts, (std::vector<std::int64_t>{1, 1, 1}));
  EXPECT_EQ(values[0].hist_sum, 15);
}

// ---------- PhaseProfiler ----------

TEST(PhaseProfiler, StepIsTheSumOfPerShardCells) {
  obs::PhaseProfiler profiler(3);
  profiler.add_shard_step(0, 100);
  profiler.add_shard_step(1, 300);
  profiler.add_shard_step(2, 200);
  profiler.add(obs::Phase::kBarrier, 50);
  EXPECT_EQ(profiler.phase_ns(obs::Phase::kStep), 600u);
  EXPECT_EQ(profiler.phase_ns(obs::Phase::kBarrier), 50u);
  EXPECT_EQ(profiler.shard_step_ns(1), 300u);
  // imbalance = max/mean = 300 / 200.
  EXPECT_DOUBLE_EQ(profiler.imbalance(), 1.5);
}

TEST(PhaseProfiler, ImbalanceIsZeroBeforeAnyData) {
  obs::PhaseProfiler profiler(4);
  EXPECT_DOUBLE_EQ(profiler.imbalance(), 0.0);
}

TEST(ScopedPhase, NullProfilerIsANoOpAndLiveProfilerAccumulates) {
  { obs::ScopedPhase noop(nullptr, obs::Phase::kMerge); }  // must not crash
  obs::PhaseProfiler profiler(2);
  { obs::ScopedPhase merge(&profiler, obs::Phase::kMerge); }
  { obs::ScopedPhase step(&profiler, obs::Phase::kStep, /*shard=*/1); }
  // Wall-clock intervals: only sanity-checkable as "time passed".
  EXPECT_GE(profiler.phase_ns(obs::Phase::kMerge), 0u);
  EXPECT_EQ(profiler.shard_step_ns(0), 0u);
  EXPECT_GE(profiler.shard_step_ns(1), 0u);
}

TEST(PhaseProfiler, DispatchCountersSplitUnitFromFusedWindows) {
  obs::PhaseProfiler profiler(2);
  EXPECT_EQ(profiler.unit_dispatches(), 0u);
  EXPECT_EQ(profiler.fused_dispatches(), 0u);
  EXPECT_EQ(profiler.fused_sub_windows(), 0u);
  profiler.record_dispatch(1);  // a unit window
  profiler.record_dispatch(1);
  profiler.record_dispatch(4);  // one fused dispatch absorbing 4 sub-windows
  profiler.record_dispatch(8);
  EXPECT_EQ(profiler.unit_dispatches(), 2u);
  EXPECT_EQ(profiler.fused_dispatches(), 2u);
  EXPECT_EQ(profiler.fused_sub_windows(), 12u);
}

// ---------- Watchdog ----------

obs::WatchdogSample sample(std::int64_t sim_ms, std::int64_t attempts,
                           std::int64_t admissions,
                           std::int64_t pending = 100) {
  obs::WatchdogSample s;
  s.sim_ms = sim_ms;
  s.attempts = attempts;
  s.admissions = admissions;
  s.pending_events = pending;
  return s;
}

TEST(Watchdog, HealthyRunNeverTrips) {
  obs::Watchdog watchdog{obs::WatchdogConfig{}};
  for (int i = 1; i <= 10; ++i) {
    const auto trips =
        watchdog.evaluate(sample(i * 1000, i * 2000, i * 1000));
    EXPECT_TRUE(trips.empty()) << trips.front();
  }
  EXPECT_EQ(watchdog.trips(), 0);
}

TEST(Watchdog, TripsOnAdmissionRateCollapse) {
  obs::WatchdogConfig config;
  config.min_interval_attempts = 100;
  config.min_admission_rate = 0.01;
  obs::Watchdog watchdog{config};
  EXPECT_TRUE(watchdog.evaluate(sample(1000, 1000, 500)).empty());
  // 2000 new attempts, zero new admissions: rate 0 < 0.01.
  const auto trips = watchdog.evaluate(sample(2000, 3000, 500));
  ASSERT_EQ(trips.size(), 1u);
  EXPECT_NE(trips[0].find("admission-rate collapse"), std::string::npos);
  EXPECT_EQ(watchdog.trips(), 1);
}

TEST(Watchdog, CollapseNeedsEnoughIntervalAttempts) {
  obs::WatchdogConfig config;
  config.min_interval_attempts = 100;
  obs::Watchdog watchdog{config};
  EXPECT_TRUE(watchdog.evaluate(sample(1000, 50, 50)).empty());
  // Only 30 attempts this interval — too few to judge a rate.
  EXPECT_TRUE(watchdog.evaluate(sample(2000, 80, 50)).empty());
}

TEST(Watchdog, TripsOnStalledSimTimeAfterConsecutiveSnapshots) {
  obs::WatchdogConfig config;
  config.stall_snapshots = 3;
  obs::Watchdog watchdog{config};
  EXPECT_TRUE(watchdog.evaluate(sample(5000, 10, 10)).empty());
  EXPECT_TRUE(watchdog.evaluate(sample(5000, 10, 10)).empty());  // stalled 1
  EXPECT_TRUE(watchdog.evaluate(sample(5000, 10, 10)).empty());  // stalled 2
  const auto trips = watchdog.evaluate(sample(5000, 10, 10));    // stalled 3
  ASSERT_EQ(trips.size(), 1u);
  EXPECT_NE(trips[0].find("stalled sim-time"), std::string::npos);
  // Progress resets the streak.
  EXPECT_TRUE(watchdog.evaluate(sample(6000, 10, 10)).empty());
}

TEST(Watchdog, TripsOnEventListBlowUpVersusBaseline) {
  obs::WatchdogConfig config;
  config.min_event_list = 1000;
  config.growth_factor = 4.0;
  obs::Watchdog watchdog{config};
  // Baseline pending = 200.
  EXPECT_TRUE(watchdog.evaluate(sample(1000, 10, 10, 200)).empty());
  // 900 > 4x200 but below the absolute floor: no trip.
  EXPECT_TRUE(watchdog.evaluate(sample(2000, 10, 10, 900)).empty());
  const auto trips = watchdog.evaluate(sample(3000, 10, 10, 1200));
  ASSERT_EQ(trips.size(), 1u);
  EXPECT_NE(trips[0].find("event-list blow-up"), std::string::npos);
}

TEST(Watchdog, OffActionDisablesEveryRule) {
  obs::WatchdogConfig config;
  config.action = obs::WatchdogAction::kOff;
  config.min_interval_attempts = 1;
  obs::Watchdog watchdog{config};
  EXPECT_TRUE(watchdog.evaluate(sample(1000, 1000, 0)).empty());
  EXPECT_TRUE(watchdog.evaluate(sample(1000, 9000, 0)).empty());
  EXPECT_EQ(watchdog.trips(), 0);
}

TEST(Watchdog, ParseActionAcceptsExactlyTheCliTokens) {
  EXPECT_EQ(obs::parse_watchdog_action("off"), obs::WatchdogAction::kOff);
  EXPECT_EQ(obs::parse_watchdog_action("warn"), obs::WatchdogAction::kWarn);
  EXPECT_EQ(obs::parse_watchdog_action("abort"), obs::WatchdogAction::kAbort);
  EXPECT_FALSE(obs::parse_watchdog_action("Abort").has_value());
  EXPECT_FALSE(obs::parse_watchdog_action("").has_value());
}

// ---------- Telemetry JSONL exporter ----------

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(Telemetry, EmptyPathMeansDisabled) {
  obs::Telemetry telemetry{obs::TelemetryOptions{}};
  EXPECT_FALSE(telemetry.enabled());
  EXPECT_TRUE(telemetry.ok());  // disabled is a fine state
  EXPECT_FALSE(telemetry.snapshot_due());
}

TEST(Telemetry, UnopenablePathReportsNotOk) {
  obs::TelemetryOptions options;
  options.path = "/nonexistent_dir_for_p2ps_tests/out.jsonl";
  obs::Telemetry telemetry(std::move(options));
  EXPECT_TRUE(telemetry.enabled());
  EXPECT_FALSE(telemetry.ok());
}

TEST(Telemetry, WritesSequencedSnapshotsAndOneSummary) {
  const std::string path = temp_path("obs_basic.jsonl");
  {
    obs::TelemetryOptions options;
    options.path = path;
    options.interval_ms = 0;  // snapshot on every poll
    options.heartbeat = false;
    obs::Telemetry telemetry(std::move(options));
    ASSERT_TRUE(telemetry.ok());
    EXPECT_TRUE(telemetry.snapshot_due());
    telemetry.registry().counter(obs::kMetricAttempts)->add(10);
    telemetry.registry().counter(obs::kMetricAdmissions)->add(4);
    telemetry.snapshot(1000);
    telemetry.registry().counter(obs::kMetricAttempts)->add(10);
    telemetry.snapshot(2000);
    EXPECT_EQ(telemetry.snapshots(), 2);
    telemetry.finish();
    telemetry.finish();  // idempotent
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"type\":\"snapshot\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"seq\":1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"sim_ms\":1000"), std::string::npos);
  EXPECT_NE(lines[0].find("\"attempts\":10"), std::string::npos);
  EXPECT_NE(lines[1].find("\"seq\":2"), std::string::npos);
  EXPECT_NE(lines[1].find("\"attempts\":20"), std::string::npos);
  EXPECT_NE(lines[2].find("\"type\":\"summary\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"snapshots\":2"), std::string::npos);
}

TEST(Telemetry, DestructorEmitsTheSummaryWhenFinishWasNeverCalled) {
  const std::string path = temp_path("obs_dtor.jsonl");
  {
    obs::TelemetryOptions options;
    options.path = path;
    options.interval_ms = 0;
    options.heartbeat = false;
    obs::Telemetry telemetry(std::move(options));
    telemetry.snapshot(500);
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("\"type\":\"summary\""), std::string::npos);
}

TEST(Telemetry, SnapshotCarriesPhaseTimingsWhenAProfilerIsAttached) {
  const std::string path = temp_path("obs_phases.jsonl");
  {
    obs::TelemetryOptions options;
    options.path = path;
    options.interval_ms = 0;
    options.heartbeat = false;
    obs::Telemetry telemetry(std::move(options));
    obs::PhaseProfiler* profiler = telemetry.attach_profiler(2);
    ASSERT_NE(profiler, nullptr);
    profiler->add_shard_step(0, 1'000'000);
    profiler->add_shard_step(1, 3'000'000);
    telemetry.snapshot(1000);
    telemetry.finish();
  }
  const auto lines = read_lines(path);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"phases\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"imbalance\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"phases\""), std::string::npos);
  // The fused-vs-unit dispatch breakdown rides every phases object.
  for (const char* key :
       {"\"unit_windows\"", "\"fused_windows\"", "\"fused_sub_windows\""}) {
    EXPECT_NE(lines[0].find(key), std::string::npos) << key;
    EXPECT_NE(lines[1].find(key), std::string::npos) << key;
  }
}

TEST(Telemetry, WarnActionRecordsTripsInTheSnapshotRecord) {
  const std::string path = temp_path("obs_warn.jsonl");
  {
    obs::TelemetryOptions options;
    options.path = path;
    options.interval_ms = 0;
    options.heartbeat = false;
    options.watchdog.min_interval_attempts = 10;
    obs::Telemetry telemetry(std::move(options));
    telemetry.registry().counter(obs::kMetricAttempts)->add(100);
    telemetry.snapshot(1000);
    telemetry.registry().counter(obs::kMetricAttempts)->add(100);
    telemetry.snapshot(2000);  // 100 attempts, 0 admissions: collapse (warn)
    telemetry.finish();
  }
  const auto lines = read_lines(path);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0].find("\"watchdog\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"watchdog\""), std::string::npos);
  EXPECT_NE(lines[1].find("admission-rate collapse"), std::string::npos);
  EXPECT_NE(lines[2].find("\"watchdog_trips\":1"), std::string::npos);
}

TEST(Telemetry, AbortActionThrowsAfterWritingTheEvidence) {
  const std::string path = temp_path("obs_abort.jsonl");
  {
    obs::TelemetryOptions options;
    options.path = path;
    options.interval_ms = 0;
    options.heartbeat = false;
    options.watchdog.action = obs::WatchdogAction::kAbort;
    options.watchdog.min_interval_attempts = 10;
    obs::Telemetry telemetry(std::move(options));
    telemetry.registry().counter(obs::kMetricAttempts)->add(100);
    telemetry.snapshot(1000);
    telemetry.registry().counter(obs::kMetricAttempts)->add(100);
    EXPECT_THROW(telemetry.snapshot(2000), obs::WatchdogAbort);
  }
  // The tripping snapshot line itself was written before the throw.
  const auto lines = read_lines(path);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(lines[1].find("admission-rate collapse"), std::string::npos);
}

// ---------- mechanics schema ----------

TEST(MechanicsSchema, NoKeyIsAPrefixOfALaterKey) {
  const obs::MechanicsField* schema = obs::mechanics_schema();
  const std::size_t n = obs::mechanics_schema_size();
  ASSERT_GE(n, 8u);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_FALSE(schema[i].key.empty());
    EXPECT_FALSE(schema[i].description.empty());
    for (std::size_t j = i + 1; j < n; ++j) {
      EXPECT_NE(schema[j].key.substr(0, schema[i].key.size()), schema[i].key)
          << schema[i].key << " is a prefix of later " << schema[j].key;
    }
  }
}

TEST(MechanicsSchema, StripZeroesEverySchemaKey) {
  const obs::MechanicsField* schema = obs::mechanics_schema();
  for (std::size_t i = 0; i < obs::mechanics_schema_size(); ++i) {
    const std::string key(schema[i].key);
    const std::string text = "{\"" + key + "\":12345,\"other\":7}";
    EXPECT_EQ(scenario::strip_event_mechanics(text),
              "{\"" + key + "\":0,\"other\":7}")
        << key;
  }
}

// ---------- sharded engine integration ----------

engine::ShardedConfig small_sharded_config(int shards, int threads = 1) {
  engine::ShardedConfig config;
  config.population.seeds = 8;
  config.population.requesters = 400;
  config.pattern = workload::ArrivalPattern::kRampUpDown;
  config.arrival_window = SimTime::minutes(30);
  config.horizon = SimTime::hours(2);
  config.session_duration = SimTime::minutes(10);
  config.latency = net::LatencyModel::of(net::LatencyModelKind::kUniform);
  config.loss = 0.02;
  config.shards = shards;
  config.threads = threads;
  config.seed = 77;
  return config;
}

/// The partition-invariant slice of a ShardedResult (mirrors
/// shard_test.cpp's fingerprint — mechanics excluded by design).
std::string fingerprint(const engine::ShardedResult& result) {
  std::ostringstream os;
  const auto totals = [&os](const engine::ShardedClassTotals& t) {
    os << t.first_requests << ',' << t.attempts << ',' << t.admissions << ','
       << t.rejections << ',' << t.delay_dt_sum << ','
       << t.rejections_at_admission_sum << ',' << t.waiting_ms_sum << ';';
  };
  totals(result.overall);
  for (const auto& t : result.totals) totals(t);
  for (const auto& sample : result.hourly) {
    os << sample.t.as_millis() << ':' << sample.capacity_units << ':'
       << sample.active_sessions << ':' << sample.suppliers << ';';
  }
  os << result.final_capacity << '|' << result.max_capacity << '|'
     << result.suppliers_at_end << '|' << result.sessions_completed << '|'
     << result.sessions_active_at_end << '|' << result.hold_expirations << '|'
     << result.watchdog_recoveries << '|' << result.messages_sent << '|'
     << result.messages_delivered << '|' << result.messages_dropped;
  return os.str();
}

// The tentpole contract, engine level: attaching telemetry must not
// perturb the simulation trajectory in any way — same merged result as a
// bare run, for serial and threaded multi-shard executions alike.
TEST(ShardedTelemetry, ResultIsIdenticalWithTelemetryOnOrOff) {
  engine::ShardedSystem bare(small_sharded_config(1));
  const std::string reference = fingerprint(bare.run());
  for (const auto& [shards, threads] :
       std::vector<std::pair<int, int>>{{1, 1}, {4, 1}, {4, 3}}) {
    obs::TelemetryOptions options;
    options.path = temp_path("obs_sharded_parity.jsonl");
    options.interval_ms = 0;  // snapshot at every window barrier
    options.heartbeat = false;
    obs::Telemetry telemetry(std::move(options));
    ASSERT_TRUE(telemetry.ok());
    auto config = small_sharded_config(shards, threads);
    config.telemetry = &telemetry;
    engine::ShardedSystem system(std::move(config));
    EXPECT_EQ(fingerprint(system.run()), reference)
        << shards << " shards, " << threads << " threads";
    EXPECT_GT(telemetry.snapshots(), 0);
    // The engine published real values into the registry.
    EXPECT_GT(telemetry.registry().aggregate(obs::kMetricAttempts), 0);
    EXPECT_GT(telemetry.registry().aggregate(obs::kMetricAdmissions), 0);
    EXPECT_GT(telemetry.registry().aggregate(obs::kMetricEventsExecuted), 0);
    EXPECT_GT(telemetry.registry().aggregate("messages_sent"), 0);
  }
}

// Acceptance criterion: a seeded admission-rate collapse (every message
// dropped, so nobody is ever admitted) aborts the run under --watchdog
// abort, surfacing as WatchdogAbort from run().
TEST(ShardedTelemetry, WatchdogAbortsOnSeededAdmissionCollapse) {
  obs::TelemetryOptions options;
  options.path = temp_path("obs_sharded_abort.jsonl");
  options.interval_ms = 0;
  options.heartbeat = false;
  options.watchdog.action = obs::WatchdogAction::kAbort;
  options.watchdog.min_interval_attempts = 1;
  obs::Telemetry telemetry(std::move(options));
  ASSERT_TRUE(telemetry.ok());
  auto config = small_sharded_config(2);
  config.loss = 1.0;  // drop everything: attempts happen, admissions never
  config.telemetry = &telemetry;
  engine::ShardedSystem system(std::move(config));
  EXPECT_THROW(system.run(), obs::WatchdogAbort);
  EXPECT_GT(telemetry.watchdog().trips(), 0);
}

// Satellite: the per-shard trace rings merge into one canonical stream —
// identical for every shard count when capacity is ample.
TEST(ShardedTrace, MergedTraceIsIdenticalForAnyShardCount) {
  const auto run_traced = [](int shards) {
    auto config = small_sharded_config(shards);
    config.trace_capacity = 1 << 16;  // ample: nothing may drop
    engine::ShardedSystem system(std::move(config));
    return system.run();
  };
  const auto reference = run_traced(1);
  EXPECT_GT(reference.trace_recorded, 0u);
  EXPECT_EQ(reference.trace_dropped, 0u);
  ASSERT_EQ(reference.trace.size(), reference.trace_recorded);
  for (const int shards : {3, 5}) {
    const auto result = run_traced(shards);
    EXPECT_EQ(result.trace_dropped, 0u);
    ASSERT_EQ(result.trace.size(), reference.trace.size()) << shards;
    for (std::size_t i = 0; i < reference.trace.size(); ++i) {
      const auto& a = reference.trace[i];
      const auto& b = result.trace[i];
      ASSERT_TRUE(a.t == b.t && a.kind == b.kind && a.peer == b.peer &&
                  a.cls == b.cls && a.session == b.session &&
                  a.detail == b.detail)
          << shards << " shards diverge at trace index " << i;
    }
  }
}

TEST(ShardedTrace, JourneysCoverTheProtocolLifecycle) {
  auto config = small_sharded_config(2);
  config.trace_capacity = 1 << 16;
  engine::ShardedSystem system(std::move(config));
  const auto result = system.run();
  std::size_t first_requests = 0, attempts = 0, admissions = 0,
              rejections = 0, session_ends = 0, suppliers = 0;
  for (const auto& event : result.trace) {
    switch (event.kind) {
      case engine::TraceKind::kFirstRequest: ++first_requests; break;
      case engine::TraceKind::kAttempt: ++attempts; break;
      case engine::TraceKind::kAdmission: ++admissions; break;
      case engine::TraceKind::kRejection: ++rejections; break;
      case engine::TraceKind::kSessionEnd: ++session_ends; break;
      case engine::TraceKind::kBecameSupplier: ++suppliers; break;
      default: break;
    }
  }
  EXPECT_GT(first_requests, 0u);
  EXPECT_GE(attempts, first_requests);
  EXPECT_GT(admissions, 0u);
  EXPECT_GT(rejections, 0u);
  EXPECT_GT(session_ends, 0u);
  EXPECT_GT(suppliers, 0u);
  // Admissions carry a valid session id; attempts do not.
  for (const auto& event : result.trace) {
    if (event.kind == engine::TraceKind::kAdmission) {
      EXPECT_TRUE(event.session.valid());
    }
    if (event.kind == engine::TraceKind::kAttempt) {
      EXPECT_FALSE(event.session.valid());
    }
  }
}

// ---------- scenario-level byte parity (the tentpole acceptance bar) ----------

// Every registered scenario must emit byte-identical JSON with telemetry
// attached or not — telemetry is out-of-band by construction, and the
// payload is the proof.
TEST(RunScenario, EveryScenarioIsByteIdenticalWithTelemetryOnOrOff) {
  scenario::register_all_scenarios();
  scenario::ScenarioOptions bare;
  bare.seed = 2002;
  bare.scale = 100;  // keep the populations small and fast
  std::size_t checked = 0;
  for (const auto* sc : scenario::Registry::instance().list()) {
    const std::string reference = scenario::run_scenario(sc->name, bare).dump();
    obs::TelemetryOptions telemetry_options;
    telemetry_options.path = temp_path("obs_scenario_parity.jsonl");
    telemetry_options.interval_ms = 0;
    telemetry_options.heartbeat = false;
    obs::Telemetry telemetry(std::move(telemetry_options));
    ASSERT_TRUE(telemetry.ok());
    scenario::ScenarioOptions instrumented = bare;
    instrumented.telemetry = &telemetry;
    EXPECT_EQ(scenario::run_scenario(sc->name, instrumented).dump(), reference)
        << sc->name;
    ++checked;
  }
  EXPECT_GE(checked, 24u);
}

// And across shard/thread counts WITH telemetry attached: instrumentation
// must not reintroduce partition sensitivity.
TEST(RunScenario, ShardedScenarioStaysPartitionInvariantUnderTelemetry) {
  scenario::register_all_scenarios();
  scenario::ScenarioOptions bare;
  bare.seed = 2002;
  bare.scale = 500;
  const std::string reference =
      scenario::run_scenario("msg_fig5_sharded", bare).dump();
  // The fusion axis rides along: unfused, default, and deep fusion must
  // all match the bare un-instrumented reference byte for byte.
  for (const auto& [shards, threads, fusion] :
       std::vector<std::tuple<int, int, std::optional<int>>>{
           {1, 1, std::nullopt},
           {4, 2, std::nullopt},
           {4, 1, std::optional<int>{1}},
           {4, 2, std::optional<int>{32}}}) {
    obs::TelemetryOptions telemetry_options;
    telemetry_options.path = temp_path("obs_scenario_shards.jsonl");
    telemetry_options.interval_ms = 0;
    telemetry_options.heartbeat = false;
    obs::Telemetry telemetry(std::move(telemetry_options));
    scenario::ScenarioOptions instrumented = bare;
    instrumented.telemetry = &telemetry;
    instrumented.shards = shards;
    instrumented.shard_threads = threads;
    instrumented.fusion = fusion;
    EXPECT_EQ(scenario::run_scenario("msg_fig5_sharded", instrumented).dump(),
              reference)
        << shards << " shards, " << threads << " threads, fusion "
        << (fusion ? *fusion : -1);
  }
}

}  // namespace
}  // namespace p2ps
