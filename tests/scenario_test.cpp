// Tests for the scenario registry, the JSON writer, and the determinism
// contract of the unified runner.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "core/selection_policy.hpp"
#include "scenario/json.hpp"
#include "scenario/scenario.hpp"
#include "sim/event_list.hpp"
#include "util/assert.hpp"

namespace p2ps::scenario {
namespace {

// ---------- Json ----------

TEST(Json, ScalarsSerialise) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, NumbersAreShortestRoundTrip) {
  EXPECT_EQ(json_number(4.0), "4");
  EXPECT_EQ(json_number(0.1), "0.1");
  EXPECT_EQ(json_number(1.0 / 3.0), "0.3333333333333333");
  EXPECT_EQ(json_number(std::nan("")), "null");
}

TEST(Json, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(json_escape("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_escape("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\"\\u0001\"");
}

TEST(Json, ObjectsKeepInsertionOrder) {
  Json object = Json::object();
  object.set("zebra", 1);
  object.set("apple", 2);
  Json array = Json::array();
  array.push_back(3);
  array.push_back("x");
  object.set("items", std::move(array));
  EXPECT_EQ(object.dump(), "{\"zebra\":1,\"apple\":2,\"items\":[3,\"x\"]}");
}

TEST(Json, SetOverwritesExistingKey) {
  Json object = Json::object();
  object.set("k", 1);
  object.set("k", 2);
  EXPECT_EQ(object.dump(), "{\"k\":2}");
}

TEST(Json, MutatorsRejectWrongKinds) {
  Json not_an_array = Json::object();
  EXPECT_THROW(not_an_array.push_back(1), util::ContractViolation);
  Json not_an_object = Json::array();
  EXPECT_THROW(not_an_object.set("k", 1), util::ContractViolation);
}

TEST(Json, PrettyAndCompactAgreeOnContent) {
  Json object = Json::object();
  object.set("a", 1);
  Json inner = Json::array();
  inner.push_back(2.5);
  object.set("b", std::move(inner));
  EXPECT_EQ(object.dump(), "{\"a\":1,\"b\":[2.5]}");
  EXPECT_EQ(object.dump_pretty(), "{\n  \"a\": 1,\n  \"b\": [\n    2.5\n  ]\n}");
}

// ---------- Registry ----------

TEST(Registry, RegistersAtLeastTenUniqueScenarios) {
  register_all_scenarios();
  const auto scenarios = Registry::instance().list();
  EXPECT_GE(scenarios.size(), 10u);
  std::set<std::string> names;
  for (const auto* scenario : scenarios) {
    EXPECT_FALSE(scenario->name.empty());
    EXPECT_FALSE(scenario->description.empty());
    names.insert(scenario->name);
  }
  EXPECT_EQ(names.size(), scenarios.size()) << "duplicate scenario names";
}

TEST(Registry, ListIsSortedByName) {
  register_all_scenarios();
  const auto scenarios = Registry::instance().list();
  for (std::size_t i = 1; i < scenarios.size(); ++i) {
    EXPECT_LT(scenarios[i - 1]->name, scenarios[i]->name);
  }
}

TEST(Registry, FindLocatesEveryFigureAndWorkload) {
  register_all_scenarios();
  const Registry& registry = Registry::instance();
  for (const char* name :
       {"fig1_assignment", "fig3_admission_order", "fig4_capacity",
        "fig5_admission_rate", "fig6_buffering_delay", "fig7_adaptivity",
        "fig8_parameters", "fig9_backoff", "table1_rejections",
        "thm1_delay_sweep", "flash_crowd", "churn_resilience", "incentive",
        "chord_lookup", "ablation_churn", "ablation_reminder",
        "ablation_selection", "fig5_policy_lab", "msg_loss_latency_study"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
}

TEST(Registry, RegisterAllIsIdempotent) {
  register_all_scenarios();
  const auto before = Registry::instance().size();
  register_all_scenarios();
  EXPECT_EQ(Registry::instance().size(), before);
}

TEST(Registry, RejectsDuplicateAndMalformedScenarios) {
  Registry registry;
  registry.add({"s", "d", [](const ScenarioOptions&) { return Json(); }});
  EXPECT_THROW(
      registry.add({"s", "again", [](const ScenarioOptions&) { return Json(); }}),
      util::ContractViolation);
  EXPECT_THROW(
      registry.add({"", "no name", [](const ScenarioOptions&) { return Json(); }}),
      util::ContractViolation);
  EXPECT_THROW(registry.add({"t", "no fn", ScenarioFn{}}), util::ContractViolation);
}

// ---------- run_scenario ----------

TEST(RunScenario, UnknownScenarioThrows) {
  EXPECT_THROW((void)run_scenario("no_such_scenario", {}), util::ContractViolation);
}

TEST(RunScenario, EnvelopeCarriesNameSeedAndScale) {
  ScenarioOptions options;
  options.seed = 7;
  options.scale = 3;
  const auto result = run_scenario("fig1_assignment", options);
  const std::string text = result.dump();
  EXPECT_NE(text.find("\"scenario\":\"fig1_assignment\""), std::string::npos);
  EXPECT_NE(text.find("\"seed\":7"), std::string::npos);
  EXPECT_NE(text.find("\"scale\":3"), std::string::npos);
  EXPECT_NE(text.find("\"results\":"), std::string::npos);
}

TEST(RunScenario, AnalyticScenarioMatchesPaperNumbers) {
  const auto result = run_scenario("fig1_assignment", {});
  const std::string text = result.dump();
  // The worked example: contiguous needs 5dt, OTS achieves the Theorem-1
  // optimum of 4dt.
  EXPECT_NE(text.find("\"ots\":"), std::string::npos);
  EXPECT_NE(text.find("\"theorem1_optimum_dt\":4"), std::string::npos);
}

// The determinism regression test demanded by the runner's contract:
// same scenario + same seed => byte-identical JSON.
TEST(RunScenario, SameSeedYieldsByteIdenticalJson) {
  ScenarioOptions options;
  options.seed = 1234;
  options.scale = 100;  // keep the simulated population small and fast
  for (const char* name : {"fig1_assignment", "thm1_delay_sweep", "flash_crowd",
                           "churn_resilience", "chord_lookup"}) {
    const std::string first = run_scenario(name, options).dump();
    const std::string second = run_scenario(name, options).dump();
    EXPECT_EQ(first, second) << name;
    EXPECT_FALSE(first.empty());
  }
}

// The pluggable-event-list acceptance criterion: every registered scenario
// (the 17 pre-existing ones and the perf family) must emit byte-identical
// JSON whether the simulator runs on the binary heap or the calendar
// queue. The backend is deliberately absent from the envelope, so whole
// documents are comparable.
TEST(RunScenario, EveryScenarioIsByteIdenticalAcrossEventListBackends) {
  register_all_scenarios();
  ScenarioOptions heap;
  heap.seed = 2002;
  heap.scale = 100;  // keep the populations small and fast
  heap.event_list = sim::EventListKind::kBinaryHeap;
  ScenarioOptions calendar = heap;
  calendar.event_list = sim::EventListKind::kCalendarQueue;
  std::size_t checked = 0;
  for (const auto* scenario : Registry::instance().list()) {
    const std::string on_heap = run_scenario(scenario->name, heap).dump();
    const std::string on_calendar = run_scenario(scenario->name, calendar).dump();
    EXPECT_EQ(on_heap, on_calendar) << scenario->name;
    ++checked;
  }
  EXPECT_GE(checked, 24u);  // 22 pre-existing + the policy/study family
}

// The TimerService acceptance criterion: every registered scenario must
// emit byte-identical JSON under all three --timers strategies once the
// event-core mechanics counters (the fields the strategies exist to
// change) are normalized away by strip_event_mechanics. docs/timers.md
// carries the ordering argument for why nothing else can differ.
TEST(RunScenario, EveryScenarioIsByteIdenticalAcrossTimerStrategies) {
  register_all_scenarios();
  ScenarioOptions base;
  base.seed = 2002;
  base.scale = 100;  // keep the populations small and fast
  std::size_t checked = 0;
  for (const auto* scenario : Registry::instance().list()) {
    std::string reference;
    for (const sim::TimerStrategy strategy :
         {sim::TimerStrategy::kEvents, sim::TimerStrategy::kWheel,
          sim::TimerStrategy::kLazy}) {
      ScenarioOptions options = base;
      options.timers = strategy;
      const std::string run =
          strip_event_mechanics(run_scenario(scenario->name, options).dump());
      if (reference.empty()) {
        reference = run;
      } else {
        EXPECT_EQ(reference, run)
            << scenario->name << " under " << to_string(strategy);
      }
    }
    ++checked;
  }
  EXPECT_GE(checked, 24u);
}

// The policy-lab acceptance criterion: a --policy override must preserve
// byte-determinism across event-list backends for every registered policy,
// session-level and message-level engines alike (randomized policies draw
// from their own named substream, so backend choice cannot perturb them).
TEST(RunScenario, EveryPolicyIsByteIdenticalAcrossEventListBackends) {
  for (const core::SelectionPolicy* policy : core::all_selection_policies()) {
    ScenarioOptions heap;
    heap.seed = 2002;
    heap.scale = 100;
    heap.policy = policy;
    heap.event_list = sim::EventListKind::kBinaryHeap;
    ScenarioOptions calendar = heap;
    calendar.event_list = sim::EventListKind::kCalendarQueue;
    for (const char* name : {"flash_crowd", "msg_flash_crowd"}) {
      EXPECT_EQ(run_scenario(name, heap).dump(),
                run_scenario(name, calendar).dump())
          << name << " under " << policy->name();
    }
  }
}

TEST(StripEventMechanics, ZeroesExactlyTheMechanicsCounters) {
  const std::string text =
      "{\"events_executed\":123,\"peak_event_list\":45,"
      "\"peak_event_list_timers\":40,\"peak_event_list_other\":5,"
      "\"timer_events_scheduled\":99,\"peak_rss_bytes\":16777216,"
      "\"bytes_per_peer\":42,\"pool_allocations\":17,\"pool_reuses\":9001,"
      "\"windows_idle_skipped\":33,\"admissions\":7}";
  EXPECT_EQ(strip_event_mechanics(text),
            "{\"events_executed\":0,\"peak_event_list\":0,"
            "\"peak_event_list_timers\":0,\"peak_event_list_other\":0,"
            "\"timer_events_scheduled\":0,\"peak_rss_bytes\":0,"
            "\"bytes_per_peer\":0,\"pool_allocations\":0,\"pool_reuses\":0,"
            "\"windows_idle_skipped\":0,\"admissions\":7}");
}

TEST(RunScenario, DifferentSeedsChangeSimulationOutput) {
  ScenarioOptions a;
  a.seed = 1;
  a.scale = 100;
  ScenarioOptions b = a;
  b.seed = 2;
  // The seed reshuffles the population and arrival draws, so some counter
  // in the flash-crowd run must differ (the envelope differs regardless;
  // compare payloads only).
  const std::string run_a = run_scenario("flash_crowd", a).dump();
  const std::string run_b = run_scenario("flash_crowd", b).dump();
  const auto payload = [](const std::string& text) {
    return text.substr(text.find("\"results\""));
  };
  EXPECT_NE(payload(run_a), payload(run_b));
}

}  // namespace
}  // namespace p2ps::scenario
