// Tests for the conservative-parallel sharding layer: the ShardRunner's
// lockstep windows, the ShardRouter's lookahead contract and canonical
// drain order (randomized differential vs the unsharded baseline), the
// monotone SessionEndCalendar, Simulator::next_event_time on both event
// list backends, and the ShardedSystem / sharded-scenario byte-parity
// contract — merged output identical for any --shards and --shard-threads.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/ids.hpp"
#include "engine/retry_heap.hpp"
#include "engine/retry_source.hpp"
#include "engine/session_end_calendar.hpp"
#include "engine/sharded_system.hpp"
#include "net/latency.hpp"
#include "net/shard_router.hpp"
#include "scenario/scenario.hpp"
#include "sim/event_list.hpp"
#include "sim/shard_runner.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/sim_time.hpp"
#include "workload/arrival_pattern.hpp"

namespace p2ps {
namespace {

using core::PeerId;
using util::SimTime;

// ---------- Simulator::next_event_time (the runner's window probe) ----------

class NextEventTimeTest : public ::testing::TestWithParam<sim::EventListKind> {};

TEST_P(NextEventTimeTest, ReportsEarliestLiveEventAndSkipsCancelledResidue) {
  sim::Simulator simulator(GetParam());
  EXPECT_FALSE(simulator.next_event_time().has_value());
  const sim::EventId early = simulator.schedule_at(SimTime::millis(3), [] {});
  simulator.schedule_at(SimTime::millis(5), [] {});
  EXPECT_EQ(simulator.next_event_time(), SimTime::millis(3));
  simulator.cancel(early);
  // The cancelled head is residue, not the next event.
  EXPECT_EQ(simulator.next_event_time(), SimTime::millis(5));
  simulator.run_until(SimTime::millis(5));
  EXPECT_FALSE(simulator.next_event_time().has_value());
}

TEST_P(NextEventTimeTest, ProbingDoesNotPerturbSameTickFifoOrder) {
  sim::Simulator simulator(GetParam());
  std::vector<int> order;
  simulator.schedule_at(SimTime::millis(7), [&order] { order.push_back(1); });
  simulator.schedule_at(SimTime::millis(7), [&order] { order.push_back(2); });
  EXPECT_EQ(simulator.next_event_time(), SimTime::millis(7));
  EXPECT_EQ(simulator.next_event_time(), SimTime::millis(7));  // idempotent
  simulator.run_until(SimTime::millis(7));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

INSTANTIATE_TEST_SUITE_P(BothBackends, NextEventTimeTest,
                         ::testing::Values(sim::EventListKind::kBinaryHeap,
                                           sim::EventListKind::kCalendarQueue));

// ---------- SessionEndCalendar ----------

TEST(SessionEndCalendar, FiresAtExactTicksInFifoOrderThroughOneEvent) {
  sim::Simulator simulator;
  std::vector<std::pair<std::int64_t, int>> fired;
  engine::SessionEndCalendar<int> calendar(simulator, [&](int&& id) {
    fired.emplace_back(simulator.now().as_millis(), id);
  });
  calendar.schedule(SimTime::millis(5), 1);
  calendar.schedule(SimTime::millis(5), 2);
  calendar.schedule(SimTime::millis(9), 3);
  EXPECT_EQ(calendar.pending(), 3u);
  EXPECT_EQ(simulator.pending_count(), 1u);  // one armed event for all three
  simulator.run_until(SimTime::millis(10));
  const std::vector<std::pair<std::int64_t, int>> expected = {
      {5, 1}, {5, 2}, {9, 3}};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(calendar.pending(), 0u);
  EXPECT_EQ(simulator.pending_count(), 0u);  // disarmed when drained
}

TEST(SessionEndCalendar, RejectsOutOfOrderAndPastScheduling) {
  sim::Simulator simulator;
  engine::SessionEndCalendar<int> calendar(simulator, [](int&&) {});
  calendar.schedule(SimTime::millis(10), 1);
  EXPECT_THROW(calendar.schedule(SimTime::millis(5), 2),
               util::ContractViolation);
}

// The deadline-check-on-drain rule the sharded engine leans on: a reader
// event scheduled BEFORE the calendar entry was armed would win a
// same-tick seq race; poll() at the reader's top makes every due end
// happen deterministically before the read, independent of arming order.
TEST(SessionEndCalendar, PollDrainsDueEntriesBeforeASameTickReader) {
  sim::Simulator simulator;
  std::vector<std::string> order;
  engine::SessionEndCalendar<int> calendar(
      simulator, [&order](int&&) { order.push_back("end"); });
  simulator.schedule_at(SimTime::millis(4), [&] {
    calendar.poll();
    order.push_back("read");
  });
  calendar.schedule(SimTime::millis(4), 1);  // armed after the reader
  simulator.run_until(SimTime::millis(4));
  EXPECT_EQ(order, (std::vector<std::string>{"end", "read"}));
}

TEST(SessionEndCalendar, HandlersMayReentrantlyScheduleLaterEnds) {
  sim::Simulator simulator;
  std::vector<std::int64_t> ticks;
  engine::SessionEndCalendar<int>* self = nullptr;
  engine::SessionEndCalendar<int> calendar(simulator, [&](int&& generation) {
    ticks.push_back(simulator.now().as_millis());
    if (generation < 3) {
      self->schedule(simulator.now() + SimTime::millis(2), generation + 1);
    }
  });
  self = &calendar;
  calendar.schedule(SimTime::millis(2), 1);
  simulator.run_until(SimTime::millis(20));
  EXPECT_EQ(ticks, (std::vector<std::int64_t>{2, 4, 6}));
}

/// splitmix64 finalizer — a deterministic hash, not a shared RNG stream,
/// so every draw is a pure function of its inputs: a property of the
/// traffic itself, never of the partitioning.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// ---------- RetryHeap (the compact RetrySource) ----------

// The compact heap must be a drop-in for RetrySource: identical firing
// times and identical order under same-tick ties, driven by the same
// pseudo-random retry traffic (including reentrant rescheduling from the
// handler, the engine's actual usage pattern).
TEST(RetryHeap, FiringLogMatchesRetrySourceDifferentially) {
  constexpr std::uint32_t kPeers = 19;
  constexpr int kRounds = 5;
  const auto delay_of = [](std::uint32_t peer, int round) {
    return SimTime::millis(static_cast<std::int64_t>(
        mix(peer * 7919u + static_cast<std::uint64_t>(round) * 104729u) % 50));
  };

  std::vector<std::pair<std::int64_t, std::uint32_t>> source_log;
  {
    sim::Simulator simulator;
    std::array<int, kPeers> round{};
    engine::RetrySource* self = nullptr;
    engine::RetrySource source(simulator, [&](PeerId peer) {
      const auto local = static_cast<std::uint32_t>(peer.value());
      source_log.emplace_back(simulator.now().as_millis(), local);
      if (++round[local] < kRounds) {
        self->schedule(delay_of(local, round[local]), peer);
      }
    });
    self = &source;
    for (std::uint32_t peer = 0; peer < kPeers; ++peer) {
      source.schedule(delay_of(peer, 0), PeerId{peer});
    }
    simulator.run_until(SimTime::hours(1));
    EXPECT_EQ(source.waiting(), 0u);
  }

  std::vector<std::pair<std::int64_t, std::uint32_t>> heap_log;
  {
    sim::Simulator simulator;
    std::array<int, kPeers> round{};
    engine::RetryHeap* self = nullptr;
    engine::RetryHeap heap(simulator, SimTime::hours(2),
                           [&](std::uint32_t local) {
                             heap_log.emplace_back(simulator.now().as_millis(),
                                                   local);
                             if (++round[local] < kRounds) {
                               self->schedule(delay_of(local, round[local]),
                                              local);
                             }
                           });
    self = &heap;
    for (std::uint32_t peer = 0; peer < kPeers; ++peer) {
      heap.schedule(delay_of(peer, 0), peer);
    }
    simulator.run_until(SimTime::hours(1));
    EXPECT_EQ(heap.waiting(), 0u);
    EXPECT_EQ(heap.dropped_beyond_horizon(), 0u);
  }

  EXPECT_EQ(heap_log.size(), kPeers * kRounds);
  EXPECT_EQ(heap_log, source_log);
}

// A retry due past the horizon can never fire (the runner stops at the
// horizon), so the heap drops it at schedule() instead of parking a dead
// 12-byte entry for the rest of the run.
TEST(RetryHeap, DropsRetriesDueBeyondTheHorizon) {
  sim::Simulator simulator;
  std::vector<std::uint32_t> fired;
  engine::RetryHeap heap(simulator, SimTime::millis(100),
                         [&](std::uint32_t local) { fired.push_back(local); });
  heap.schedule(SimTime::millis(100), 1);  // exactly at the horizon: kept
  heap.schedule(SimTime::millis(101), 2);  // past it: dropped
  EXPECT_EQ(heap.waiting(), 1u);
  EXPECT_EQ(heap.dropped_beyond_horizon(), 1u);
  simulator.run_until(SimTime::millis(500));
  EXPECT_EQ(fired, (std::vector<std::uint32_t>{1}));
}

// ---------- ShardRouter ----------

using IntRouter = net::ShardRouter<int>;

/// The router's Handler is a raw (context, envelope) function pointer; this
/// adapter lets tests keep using capturing lambdas. The std::function must
/// outlive every delivery.
using TestHandler = std::function<void(const IntRouter::Envelope&)>;
void bind_fn(IntRouter& router, int shard, sim::Simulator& simulator,
             TestHandler* handler) {
  router.bind(shard, simulator, handler,
              [](void* context, const IntRouter::Envelope& envelope) {
                (*static_cast<TestHandler*>(context))(envelope);
              });
}

TEST(ShardRouter, RejectsSendsBelowTheLookaheadWindow) {
  sim::Simulator simulator;
  IntRouter router(2, SimTime::millis(10));
  router.bind(0, simulator, nullptr, [](void*, const IntRouter::Envelope&) {});
  IntRouter::Envelope envelope;
  envelope.from = 0;
  envelope.to = 1;
  envelope.sent_at = 0;
  envelope.deliver_at = 9;  // one tick under the window
  EXPECT_THROW(router.send(0, std::move(envelope)), util::ContractViolation);
}

TEST(ShardRouter, RejectsSendsFromAShardThatDoesNotOwnTheSender) {
  sim::Simulator simulator;
  IntRouter router(2, SimTime::millis(10));
  router.bind(0, simulator, nullptr, [](void*, const IntRouter::Envelope&) {});
  IntRouter::Envelope envelope;
  envelope.from = 1;  // peer 1 lives on shard 1
  envelope.to = 0;
  envelope.sent_at = 0;
  envelope.deliver_at = 10;
  EXPECT_THROW(router.send(0, std::move(envelope)), util::ContractViolation);
}

/// Drives `num_shards` simulators through the ShardRunner with the given
/// router and horizon — the exact coordinator wiring the ShardedSystem
/// uses, minus the engine.
void drive(std::vector<std::unique_ptr<sim::Simulator>>& simulators,
           IntRouter& router, SimTime horizon, int threads = 1) {
  sim::ShardRunner runner(router.num_shards(), router.window(), threads);
  sim::ShardRunner::Callbacks callbacks;
  callbacks.next_event_time = [&](int shard) {
    return simulators[static_cast<std::size_t>(shard)]->next_event_time();
  };
  callbacks.at_window_start = [](SimTime) {};
  callbacks.run_to = [&](int shard, SimTime t) {
    simulators[static_cast<std::size_t>(shard)]->run_until(t);
  };
  callbacks.at_barrier = [&](SimTime) { router.exchange(); };
  runner.run(horizon, callbacks);
}

// The window-boundary tie: a local envelope (enqueued at send time) and a
// cross-shard envelope (enqueued only at the barrier) land on the same
// destination tick. Arrival order into the batch is partition-dependent;
// the drain must follow the canonical (to, sent_at, from, seq) order, so
// the remote sender with the smaller peer id delivers first.
TEST(ShardRouter, SameTickDeliveriesDrainInCanonicalOrderNotArrivalOrder) {
  std::vector<std::unique_ptr<sim::Simulator>> simulators;
  simulators.push_back(std::make_unique<sim::Simulator>());
  simulators.push_back(std::make_unique<sim::Simulator>());
  IntRouter router(2, SimTime::millis(10));
  std::vector<std::pair<std::int64_t, std::uint64_t>> deliveries;  // (tick, from)
  TestHandler log_deliveries = [&](const IntRouter::Envelope& envelope) {
    deliveries.emplace_back(simulators[0]->now().as_millis(), envelope.from);
  };
  bind_fn(router, 0, *simulators[0], &log_deliveries);
  router.bind(1, *simulators[1], nullptr, [](void*, const IntRouter::Envelope&) {});
  const auto send = [&](int shard, std::uint64_t from) {
    IntRouter::Envelope envelope;
    envelope.from = static_cast<std::uint32_t>(from);
    envelope.to = 0;
    envelope.sent_at = static_cast<std::uint32_t>(
        simulators[static_cast<std::size_t>(shard)]->now().as_millis());
    envelope.deliver_at = envelope.sent_at + 10;
    router.send(shard, std::move(envelope));
  };
  // Shard 0's peer 4 sends locally, shard 1's peer 1 cross-shard, both at
  // t=0 with latency 10 — the local one reaches the batch a whole window
  // earlier than the remote one.
  simulators[0]->schedule_at(SimTime::zero(), [&] { send(0, 4); });
  simulators[1]->schedule_at(SimTime::zero(), [&] { send(1, 1); });
  drive(simulators, router, SimTime::millis(15));
  const std::vector<std::pair<std::int64_t, std::uint64_t>> expected = {
      {10, 1}, {10, 4}};
  EXPECT_EQ(deliveries, expected);
  EXPECT_EQ(router.cross_shard_total(), 1u);
}

// ---- randomized differential: cascading traffic, any shard count ----

// (deliver tick, from, sent_at, seq, hops-remaining) — one per delivery.
using Delivery = std::tuple<std::int64_t, std::uint64_t, std::int64_t,
                            std::uint64_t, int>;

constexpr int kCascadePeers = 23;
constexpr std::int64_t kCascadeWindowMs = 5;

/// Runs the cascade on `num_shards` shards: every peer opens with a burst
/// of sends, and each delivery spawns a follow-up from the receiver until
/// its hop budget runs out. Destinations and latencies are hashed from
/// (sender, seq), so the per-destination delivery log is the partition-
/// independent ground truth.
std::array<std::vector<Delivery>, kCascadePeers> run_cascade(int num_shards) {
  std::vector<std::unique_ptr<sim::Simulator>> simulators;
  for (int s = 0; s < num_shards; ++s) {
    simulators.push_back(std::make_unique<sim::Simulator>());
  }
  IntRouter router(num_shards, SimTime::millis(kCascadeWindowMs));
  std::array<std::uint64_t, kCascadePeers> send_seq{};
  std::array<std::vector<Delivery>, kCascadePeers> logs;

  const auto send_from = [&](int shard, std::uint64_t from, int hops) {
    const std::uint64_t seq = send_seq[from]++;
    const std::uint64_t hash = mix(from * 1'000'003 + seq);
    IntRouter::Envelope envelope;
    envelope.from = static_cast<std::uint32_t>(from);
    envelope.to = static_cast<std::uint32_t>(hash % kCascadePeers);
    envelope.sent_at = static_cast<std::uint32_t>(
        simulators[static_cast<std::size_t>(shard)]->now().as_millis());
    envelope.deliver_at =
        envelope.sent_at +
        static_cast<std::uint32_t>(kCascadeWindowMs +
                                   static_cast<std::int64_t>((hash >> 8) % 20));
    envelope.seq = static_cast<std::uint32_t>(seq);
    envelope.payload = hops;
    router.send(shard, std::move(envelope));
  };
  std::vector<TestHandler> handlers(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    handlers[static_cast<std::size_t>(s)] =
        [&, s](const IntRouter::Envelope& envelope) {
          const std::uint64_t to = envelope.to;
          logs[to].emplace_back(
              simulators[static_cast<std::size_t>(s)]->now().as_millis(),
              envelope.from, envelope.sent_at, envelope.seq, envelope.payload);
          if (envelope.payload > 0) send_from(s, to, envelope.payload - 1);
        };
    bind_fn(router, s, *simulators[s], &handlers[static_cast<std::size_t>(s)]);
  }
  // Initial bursts fire at ticks 1..3 — strictly before the earliest
  // possible delivery (1 + window), so pre-scheduled sends never race a
  // drain event on their own tick.
  for (std::uint64_t peer = 0; peer < kCascadePeers; ++peer) {
    const int shard = router.shard_of(PeerId{peer});
    simulators[static_cast<std::size_t>(shard)]->schedule_at(
        SimTime::millis(1 + static_cast<std::int64_t>(peer % 3)),
        [&, shard, peer] { send_from(shard, peer, /*hops=*/3); });
  }
  drive(simulators, router, SimTime::millis(400));
  return logs;
}

TEST(ShardRouter, CascadeDeliveryLogsMatchTheUnshardedBaseline) {
  const auto baseline = run_cascade(1);
  std::size_t total = 0;
  for (const auto& log : baseline) total += log.size();
  EXPECT_GT(total, 50u);  // the cascade actually cascaded
  for (const int num_shards : {2, 4, 7}) {
    const auto sharded = run_cascade(num_shards);
    for (int peer = 0; peer < kCascadePeers; ++peer) {
      EXPECT_EQ(sharded[static_cast<std::size_t>(peer)],
                baseline[static_cast<std::size_t>(peer)])
          << "peer " << peer << " with " << num_shards << " shards";
    }
  }
}

// The tick -> group index is an open-addressed power-of-two ring: it
// doubles until the live tick span fits, then every tick owns its slot
// uniquely, and drained groups recycle through the free list (entry
// capacity kept) — the steady state neither allocates nor rehashes.
TEST(ShardRouter, TickRingGrowsToSpanLiveTicksAndRecyclesGroups) {
  sim::Simulator simulator;
  IntRouter router(1, SimTime::millis(10));
  int delivered = 0;
  router.bind(0, simulator, &delivered,
              [](void* context, const IntRouter::Envelope&) {
                ++*static_cast<int*>(context);
              });
  const auto send_at = [&](std::int64_t deliver_ms) {
    IntRouter::Envelope envelope;
    envelope.from = 0;
    envelope.to = 0;
    envelope.sent_at = static_cast<std::uint32_t>(simulator.now().as_millis());
    envelope.deliver_at = static_cast<std::uint32_t>(deliver_ms);
    router.send(0, std::move(envelope));
  };
  EXPECT_EQ(router.ring_slots(0), 64u);
  // 191 distinct live ticks force two doublings (64 -> 256 > the span).
  for (std::int64_t d = 10; d <= 200; ++d) send_at(d);
  EXPECT_EQ(router.pending_groups(0), 191u);
  EXPECT_EQ(router.ring_slots(0), 256u);
  EXPECT_EQ(router.pool_allocations(), 191u);
  EXPECT_EQ(router.pool_reuses(), 0u);
  simulator.run_until(SimTime::millis(200));
  EXPECT_EQ(delivered, 191);
  EXPECT_EQ(router.pending_groups(0), 0u);
  // A second wave on fresh ticks: every group comes off the free list and
  // the ring never grows again.
  for (std::int64_t d = 210; d <= 300; ++d) send_at(d);
  EXPECT_EQ(router.pool_allocations(), 191u);
  EXPECT_EQ(router.pool_reuses(), 91u);
  EXPECT_EQ(router.ring_slots(0), 256u);
  simulator.run_until(SimTime::millis(300));
  EXPECT_EQ(delivered, 191 + 91);
}

// ---------- ShardRunner ----------

TEST(ShardRunner, SkipsIdleStretchesBetweenEventClusters) {
  sim::Simulator simulator;
  std::vector<std::int64_t> fired;
  simulator.schedule_at(SimTime::millis(100), [&] { fired.push_back(100); });
  simulator.schedule_at(SimTime::millis(2000), [&] { fired.push_back(2000); });
  sim::ShardRunner runner(1, SimTime::millis(10));
  sim::ShardRunner::Callbacks callbacks;
  callbacks.next_event_time = [&](int) { return simulator.next_event_time(); };
  callbacks.at_window_start = [](SimTime) {};
  callbacks.run_to = [&](int, SimTime t) { simulator.run_until(t); };
  callbacks.at_barrier = [](SimTime) {};
  runner.run(SimTime::millis(5000), callbacks);
  EXPECT_EQ(fired, (std::vector<std::int64_t>{100, 2000}));
  // One window per cluster (plus at most a final horizon park) — not one
  // per 10 ms stretch of idle time.
  EXPECT_GE(runner.windows(), 2);
  EXPECT_LE(runner.windows(), 3);
  // Both clusters sat past the previous window's end, and the stat says so.
  EXPECT_EQ(runner.idle_skips(), 2);
}

// ---- window fusion: dispatch accounting and byte-invariance ----

/// Drives one simulator with pre-scheduled events at exact `spacing`
/// intervals through a ShardRunner with the given fusion factor; returns
/// (fired ticks, runner) stats via out-params.
std::vector<std::int64_t> run_fused(int fusion, std::int64_t* windows,
                                    std::int64_t* windows_fused,
                                    std::int64_t* sub_windows,
                                    double* lookahead_avg_ms) {
  sim::Simulator simulator;
  std::vector<std::int64_t> fired;
  // Events at 1, 11, ..., 71 — one per unit sub-window under lookahead 10.
  for (std::int64_t t = 1; t <= 71; t += 10) {
    simulator.schedule_at(SimTime::millis(t),
                          [&fired, t] { fired.push_back(t); });
  }
  sim::ShardRunner runner(1, SimTime::millis(10), /*threads=*/1, fusion);
  sim::ShardRunner::Callbacks callbacks;
  callbacks.next_event_time = [&](int) { return simulator.next_event_time(); };
  callbacks.at_window_start = [](SimTime) {};
  callbacks.run_to = [&](int, SimTime t) { simulator.run_until(t); };
  callbacks.at_barrier = [](SimTime) {};
  runner.run(SimTime::millis(80), callbacks);
  *windows = runner.windows();
  *windows_fused = runner.windows_fused();
  *sub_windows = runner.sub_windows();
  *lookahead_avg_ms = runner.lookahead_avg_ms();
  return fired;
}

TEST(ShardRunner, FusionAbsorbsSubWindowsWithoutChangingTheEventSequence) {
  std::int64_t unit_windows = 0, unit_fused = 0, unit_subs = 0;
  double unit_avg = 0;
  const auto unit_fired =
      run_fused(1, &unit_windows, &unit_fused, &unit_subs, &unit_avg);
  EXPECT_EQ(unit_fired.size(), 8u);
  EXPECT_EQ(unit_windows, 8);   // one dispatch per unit sub-window
  EXPECT_EQ(unit_fused, 0);
  EXPECT_EQ(unit_subs, 8);
  EXPECT_DOUBLE_EQ(unit_avg, 10.0);  // 80 ms of horizon over 8 sub-windows

  std::int64_t fused_windows = 0, fused_fused = 0, fused_subs = 0;
  double fused_avg = 0;
  const auto fused_fired =
      run_fused(4, &fused_windows, &fused_fused, &fused_subs, &fused_avg);
  // Same executed sub-window sequence — fusion only moves the dispatch
  // boundaries, so the fired events are identical...
  EXPECT_EQ(fused_fired, unit_fired);
  // ...but 8 sub-windows now ride 2 dispatches of 4.
  EXPECT_EQ(fused_windows, 2);
  EXPECT_EQ(fused_fused, 6);
  EXPECT_EQ(fused_subs, 8);
  EXPECT_DOUBLE_EQ(fused_avg, unit_avg);
}

TEST(ShardRunner, RejectsANonPositiveFusionFactor) {
  EXPECT_THROW(sim::ShardRunner(1, SimTime::millis(10), 1, 0),
               util::ContractViolation);
  EXPECT_THROW(sim::ShardRunner(1, SimTime::millis(10), 1, -4),
               util::ContractViolation);
}

// The conservative guarantee the fusion layer must never break: if a
// window is stretched past a cross-shard envelope's due tick (the
// destination simulator runs beyond deliver_at before the barrier), the
// exchange detects the violation and aborts instead of delivering late.
TEST(ShardRouter, ExchangeThrowsWhenAWindowStretchedPastADueCrossShardTick) {
  std::vector<std::unique_ptr<sim::Simulator>> simulators;
  simulators.push_back(std::make_unique<sim::Simulator>());
  simulators.push_back(std::make_unique<sim::Simulator>());
  IntRouter router(2, SimTime::millis(10));
  router.bind(0, *simulators[0], nullptr, [](void*, const IntRouter::Envelope&) {});
  router.bind(1, *simulators[1], nullptr, [](void*, const IntRouter::Envelope&) {});
  IntRouter::Envelope envelope;
  envelope.from = 1;  // shard 1 -> shard 0, due at tick 10
  envelope.to = 0;
  envelope.sent_at = 0;
  envelope.deliver_at = 10;
  router.send(1, std::move(envelope));
  // A correct runner would barrier at tick <= 9. Stretch the destination
  // past the due tick instead — an over-wide fused window.
  simulators[0]->run_until(SimTime::millis(10));
  simulators[1]->run_until(SimTime::millis(10));
  EXPECT_THROW(router.exchange(), util::ContractViolation);
}

// ---------- ShardedSystem: the any-shard-count parity contract ----------

engine::ShardedConfig small_sharded_config(int shards, int threads = 1) {
  engine::ShardedConfig config;
  config.population.seeds = 8;
  config.population.requesters = 400;
  config.pattern = workload::ArrivalPattern::kRampUpDown;
  config.arrival_window = SimTime::minutes(30);
  config.horizon = SimTime::hours(2);
  config.session_duration = SimTime::minutes(10);
  config.latency = net::LatencyModel::of(net::LatencyModelKind::kUniform);
  config.loss = 0.02;
  config.shards = shards;
  config.threads = threads;
  config.seed = 77;
  return config;
}

/// Every partition-invariant field of a ShardedResult, flattened — two
/// runs agree iff their fingerprints are string-equal (mechanics fields
/// are deliberately excluded; they are allowed to vary with partitioning).
std::string fingerprint(const engine::ShardedResult& result) {
  std::ostringstream os;
  const auto totals = [&os](const engine::ShardedClassTotals& t) {
    os << t.first_requests << ',' << t.attempts << ',' << t.admissions << ','
       << t.rejections << ',' << t.delay_dt_sum << ','
       << t.rejections_at_admission_sum << ',' << t.waiting_ms_sum << ';';
  };
  totals(result.overall);
  for (const auto& t : result.totals) totals(t);
  for (const auto& sample : result.hourly) {
    os << sample.t.as_millis() << ':' << sample.capacity_units << ':'
       << sample.active_sessions << ':' << sample.suppliers << ';';
  }
  os << result.final_capacity << '|' << result.max_capacity << '|'
     << result.suppliers_at_end << '|' << result.sessions_completed << '|'
     << result.sessions_active_at_end << '|' << result.hold_expirations << '|'
     << result.watchdog_recoveries << '|' << result.messages_sent << '|'
     << result.messages_delivered << '|' << result.messages_dropped;
  return os.str();
}

TEST(ShardedSystem, SmallLossyRunExercisesTheWholeProtocol) {
  engine::ShardedSystem system(small_sharded_config(4));
  const auto result = system.run();
  EXPECT_GT(result.overall.first_requests, 0);
  EXPECT_GT(result.overall.admissions, 0);
  EXPECT_GT(result.sessions_completed, 0);
  EXPECT_GT(result.messages_sent, 0u);
  EXPECT_GT(result.messages_dropped, 0u);  // loss = 0.02
  EXPECT_LE(result.messages_delivered + result.messages_dropped,
            result.messages_sent);
  EXPECT_GT(result.final_capacity, 0);
  EXPECT_LE(result.final_capacity, result.max_capacity);
  ASSERT_FALSE(result.hourly.empty());
  EXPECT_EQ(result.hourly.front().t, SimTime::zero());
  EXPECT_EQ(result.per_shard.size(), 4u);
  EXPECT_GT(result.windows, 0);
  EXPECT_GT(result.cross_shard_messages, 0u);
  EXPECT_GT(result.peak_rss_bytes, 0);
}

// The cold-state pools must actually pool: in a draw-free send regime
// (zero loss, deterministic latency) admitted peers release their RNG
// slots, finished attempts release their reply buffers, and drained
// delivery groups recycle — so steady-state reuses dominate allocations,
// which stay proportional to *concurrent* activity, not population.
TEST(ShardedSystem, ColdStatePoolsRecycleInSteadyState) {
  auto config = small_sharded_config(3);
  config.loss = 0.0;
  config.latency = net::LatencyModel::of(net::LatencyModelKind::kFixed);
  const std::int64_t requesters = config.population.requesters;
  engine::ShardedSystem system(std::move(config));
  const auto result = system.run();
  EXPECT_GT(result.overall.admissions, 0);
  EXPECT_GT(result.pool_allocations, 0u);
  EXPECT_GT(result.pool_reuses, result.pool_allocations);
  // Draw-free sends demote rejected requesters' streams to a draw count
  // between attempts, so live pool slots track concurrent activity, not
  // the population: allocations must stay well below one per requester.
  EXPECT_LT(result.pool_allocations,
            static_cast<std::uint64_t>(requesters) / 2);
}

TEST(ShardedSystem, ResultIsIdenticalForAnyShardCount) {
  engine::ShardedSystem baseline(small_sharded_config(1));
  const std::string reference = fingerprint(baseline.run());
  for (const int shards : {2, 4, 7}) {
    engine::ShardedSystem system(small_sharded_config(shards));
    EXPECT_EQ(fingerprint(system.run()), reference) << shards << " shards";
  }
}

TEST(ShardedSystem, ResultIsIdenticalForAnyThreadCount) {
  engine::ShardedSystem serial(small_sharded_config(4, /*threads=*/1));
  engine::ShardedSystem pooled(small_sharded_config(4, /*threads=*/3));
  EXPECT_EQ(fingerprint(serial.run()), fingerprint(pooled.run()));
}

TEST(ShardedSystem, ResultIsIdenticalAcrossEventListBackends) {
  auto on_heap = small_sharded_config(3);
  on_heap.event_list = sim::EventListKind::kBinaryHeap;
  auto on_calendar = small_sharded_config(3);
  on_calendar.event_list = sim::EventListKind::kCalendarQueue;
  engine::ShardedSystem heap_system(std::move(on_heap));
  engine::ShardedSystem calendar_system(std::move(on_calendar));
  EXPECT_EQ(fingerprint(heap_system.run()), fingerprint(calendar_system.run()));
}

TEST(ShardedSystem, ConfigValidationCatchesUnsafeParameters) {
  {
    auto config = small_sharded_config(2);
    config.response_timeout = SimTime::millis(100);  // < 2 * max_latency
    EXPECT_THROW(engine::ShardedSystem{std::move(config)},
                 util::ContractViolation);
  }
  {
    auto config = small_sharded_config(2);
    config.hold_timeout = config.response_timeout;  // no commit headroom
    EXPECT_THROW(engine::ShardedSystem{std::move(config)},
                 util::ContractViolation);
  }
  {
    auto config = small_sharded_config(0);  // at least one shard
    EXPECT_THROW(engine::ShardedSystem{std::move(config)},
                 util::ContractViolation);
  }
}

// ---------- sharded scenarios: whole-payload byte parity ----------

TEST(ShardedScenarios, PayloadIsByteIdenticalForAnyShardsAndThreads) {
  scenario::ScenarioOptions base;
  base.seed = 2002;
  base.scale = 500;  // keep the populations small and fast
  for (const char* name :
       {"msg_fig5_sharded", "perf_sharded_scale", "perf_sharded_10m"}) {
    std::string reference;
    for (const int shards : {1, 2, 5}) {
      scenario::ScenarioOptions options = base;
      options.shards = shards;
      options.shard_threads = shards == 5 ? 2 : 1;
      const std::string run = scenario::run_scenario(name, options).dump();
      if (reference.empty()) {
        reference = run;
      } else {
        EXPECT_EQ(reference, run) << name << " with " << shards << " shards";
      }
    }
    EXPECT_FALSE(reference.empty());
  }
}

// The adaptive-lookahead contract (docs/sharding.md): the fusion factor
// is byte-invisible across every shard count and both event-list
// backends — randomized-ish differential over the fig5 workload.
TEST(ShardedScenarios, PayloadIsByteIdenticalForAnyFusionShardsAndBackend) {
  scenario::ScenarioOptions base;
  base.seed = 2002;
  base.scale = 500;
  std::string reference;
  for (const int shards : {1, 4, 8}) {
    for (const auto backend : {sim::EventListKind::kBinaryHeap,
                               sim::EventListKind::kCalendarQueue}) {
      for (const std::optional<int> fusion : {std::optional<int>{1},
                                              std::optional<int>{},
                                              std::optional<int>{32}}) {
        scenario::ScenarioOptions options = base;
        options.shards = shards;
        options.event_list = backend;
        options.fusion = fusion;  // 1 = unfused reference, unset = default
        const std::string run =
            scenario::run_scenario("msg_fig5_sharded", options).dump();
        if (reference.empty()) {
          reference = run;
        } else {
          EXPECT_EQ(reference, run)
              << shards << " shards, backend "
              << static_cast<int>(backend) << ", fusion "
              << (fusion ? *fusion : -1);
        }
      }
    }
  }
  EXPECT_FALSE(reference.empty());
}

TEST(ShardedScenarios, MechanicsBlockAppearsOnlyBehindTheFlag) {
  scenario::ScenarioOptions options;
  options.seed = 3;
  options.scale = 2000;
  options.shards = 3;
  const std::string plain =
      scenario::run_scenario("msg_fig5_sharded", options).dump();
  EXPECT_EQ(plain.find("\"mechanics\""), std::string::npos);
  EXPECT_EQ(plain.find("\"peak_rss_bytes\""), std::string::npos);
  options.mechanics = true;
  const std::string with_mechanics =
      scenario::run_scenario("msg_fig5_sharded", options).dump();
  EXPECT_NE(with_mechanics.find("\"mechanics\""), std::string::npos);
  EXPECT_NE(with_mechanics.find("\"shards\":3"), std::string::npos);
  EXPECT_NE(with_mechanics.find("\"peak_rss_bytes\""), std::string::npos);
  EXPECT_NE(with_mechanics.find("\"per_shard\""), std::string::npos);
  // The memory-campaign counters ride the same gate.
  for (const char* key : {"\"bytes_per_peer\"", "\"pool_allocations\"",
                          "\"pool_reuses\"", "\"windows_idle_skipped\""}) {
    EXPECT_EQ(plain.find(key), std::string::npos) << key;
    EXPECT_NE(with_mechanics.find(key), std::string::npos) << key;
  }
}

// ---------- golden output pins ----------

/// FNV-1a over the full scenario payload dump — one 64-bit fingerprint
/// per pinned workload.
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// Full-payload hashes captured from the engine BEFORE the compact
// peer-state rewrite (hot/cold SoA split, lazy RNG hydration, RetryHeap,
// tick-ring router, dense Chord ring). Any drift here means one of those
// memory optimizations changed simulated behaviour — which the whole
// campaign promises never to do. The third pin exercises the loss path
// (per-message bernoulli draws) and a non-default shard count.
TEST(ShardedScenarios, GoldenOutputHashesMatchThePreCompactionEngine) {
  {
    scenario::ScenarioOptions options;
    options.seed = 2002;
    options.scale = 10;
    EXPECT_EQ(fnv1a(scenario::run_scenario("msg_fig5_sharded", options).dump()),
              0xc124306815bb08dbull);
  }
  {
    scenario::ScenarioOptions options;
    options.seed = 2002;
    options.scale = 500;
    EXPECT_EQ(
        fnv1a(scenario::run_scenario("perf_sharded_scale", options).dump()),
        0x4bf13ca4a549b0fbull);
  }
  {
    scenario::ScenarioOptions options;
    options.seed = 7;
    options.scale = 25;
    options.shards = 3;
    options.loss = 0.05;
    EXPECT_EQ(fnv1a(scenario::run_scenario("msg_fig5_sharded", options).dump()),
              0x6bfe660c7d8b970aull);
  }
  // The unfused reference mode hits the very same pre-fusion hash — window
  // fusion is byte-invisible even against the golden pins.
  {
    scenario::ScenarioOptions options;
    options.seed = 2002;
    options.scale = 10;
    options.fusion = 1;
    EXPECT_EQ(fnv1a(scenario::run_scenario("msg_fig5_sharded", options).dump()),
              0xc124306815bb08dbull);
  }
}

}  // namespace
}  // namespace p2ps
