// Unit tests for the exact bandwidth algebra and the capacity definition,
// anchored on the paper's worked examples.
#include <gtest/gtest.h>

#include <vector>

#include "core/bandwidth.hpp"
#include "core/peer_class.hpp"
#include "util/assert.hpp"

namespace p2ps::core {
namespace {

TEST(Bandwidth, ClassOffersAreDyadic) {
  EXPECT_EQ(Bandwidth::class_offer(1).units(), Bandwidth::kUnitsPerR0 / 2);
  EXPECT_EQ(Bandwidth::class_offer(2).units(), Bandwidth::kUnitsPerR0 / 4);
  EXPECT_EQ(Bandwidth::class_offer(3).units(), Bandwidth::kUnitsPerR0 / 8);
  EXPECT_EQ(Bandwidth::class_offer(4).units(), Bandwidth::kUnitsPerR0 / 16);
  EXPECT_DOUBLE_EQ(Bandwidth::class_offer(1).as_fraction_of_r0(), 0.5);
  EXPECT_DOUBLE_EQ(Bandwidth::class_offer(4).as_fraction_of_r0(), 0.0625);
}

TEST(Bandwidth, HigherClassMeansLargerOffer) {
  for (PeerClass c = 1; c < 10; ++c) {
    EXPECT_GT(Bandwidth::class_offer(c), Bandwidth::class_offer(c + 1));
  }
  EXPECT_TRUE(higher_class(1, 2));
  EXPECT_FALSE(higher_class(3, 2));
}

TEST(Bandwidth, SmallestRepresentableClassIsExact) {
  EXPECT_EQ(Bandwidth::class_offer(kMaxSupportedClasses).units(), 1);
  EXPECT_THROW((void)Bandwidth::class_offer(kMaxSupportedClasses + 1),
               util::ContractViolation);
  EXPECT_THROW((void)Bandwidth::class_offer(0), util::ContractViolation);
}

TEST(Bandwidth, ExactArithmetic) {
  const Bandwidth half = Bandwidth::class_offer(1);
  const Bandwidth quarter = Bandwidth::class_offer(2);
  EXPECT_EQ(half + quarter + quarter, Bandwidth::playback_rate());
  EXPECT_EQ(half - quarter, quarter);
  EXPECT_EQ(2 * half, Bandwidth::playback_rate());
  Bandwidth acc = Bandwidth::zero();
  for (int i = 0; i < 16; ++i) acc += Bandwidth::class_offer(4);
  EXPECT_EQ(acc, Bandwidth::playback_rate());
}

TEST(Bandwidth, TotalOffer) {
  const std::vector<PeerClass> classes{1, 2, 3, 3};
  EXPECT_EQ(total_offer(classes), Bandwidth::playback_rate());
  EXPECT_EQ(total_offer(std::vector<PeerClass>{}), Bandwidth::zero());
}

TEST(Capacity, FloorsPartialSessions) {
  // 3 × R0/2 = 1.5 R0 → capacity 1.
  const std::vector<PeerClass> classes{1, 1, 1};
  EXPECT_EQ(capacity(classes), 1);
}

TEST(Capacity, PaperFigure3Example) {
  // Two class-2 peers and two class-1 peers: 2·R0/4 + 2·R0/2 = 1.5 R0 → 1.
  std::vector<PeerClass> suppliers{2, 2, 1, 1};
  EXPECT_EQ(capacity(suppliers), 1);

  // Admitting the class-1 requester first grows capacity to 2 after its
  // session; admitting a class-2 requester leaves it at 1.
  std::vector<PeerClass> with_class1 = suppliers;
  with_class1.push_back(1);
  EXPECT_EQ(capacity(with_class1), 2);

  std::vector<PeerClass> with_class2 = suppliers;
  with_class2.push_back(2);
  EXPECT_EQ(capacity(with_class2), 1);
}

TEST(Capacity, PaperPopulationMaximum) {
  // 100 class-1 seeds + 50,000 requesters at 10/10/40/40% over classes 1-4:
  // 100/2 + 50000·(0.1/2 + 0.1/4 + 0.4/8 + 0.4/16) = 50 + 7500 = 7550.
  std::vector<PeerClass> all;
  all.insert(all.end(), 100, 1);
  all.insert(all.end(), 5000, 1);
  all.insert(all.end(), 5000, 2);
  all.insert(all.end(), 20000, 3);
  all.insert(all.end(), 20000, 4);
  EXPECT_EQ(capacity(all), 7550);
}

TEST(Capacity, ZeroAndExactBoundaries) {
  EXPECT_EQ(capacity(Bandwidth::zero()), 0);
  EXPECT_EQ(capacity(Bandwidth::playback_rate()), 1);
  EXPECT_EQ(capacity(Bandwidth::playback_rate() - Bandwidth::from_units(1)), 0);
  EXPECT_THROW((void)capacity(Bandwidth::zero() - Bandwidth::from_units(1)),
               util::ContractViolation);
}

TEST(Capacity, PaperFigure3AdmissionOrderArithmetic) {
  // Full Figure-3 narrative. Suppliers {2,2,1,1} (capacity 1), requesters
  // Pr1/Pr2 (class 2) and Pr3 (class 1), sessions of length T.
  std::vector<PeerClass> suppliers{2, 2, 1, 1};

  // (a) Admit Pr1 at t0: capacity is still 1 at t0+T, so Pr2 and Pr3 are
  // admitted one after another — waits 0, T, 2T → average T.
  {
    auto s = suppliers;
    EXPECT_EQ(capacity(s), 1);   // t0: only Pr1 fits
    s.push_back(2);              // Pr1 became a supplier at t0+T
    EXPECT_EQ(capacity(s), 1);   // still 1: only Pr2 fits
    s.push_back(2);              // Pr2 supplies at t0+2T
    EXPECT_EQ(capacity(s), 2);   // Pr3 admitted at t0+2T
    const double avg_wait = (0.0 + 1.0 + 2.0) / 3.0;
    EXPECT_DOUBLE_EQ(avg_wait, 1.0);
  }

  // (b) Admit class-1 Pr3 at t0: capacity doubles at t0+T and both class-2
  // requesters enter together — waits T, T, 0 → average 2T/3.
  {
    auto s = suppliers;
    EXPECT_EQ(capacity(s), 1);   // t0: only Pr3 fits
    s.push_back(1);              // Pr3 supplies at t0+T
    EXPECT_EQ(capacity(s), 2);   // Pr1 and Pr2 both admitted at t0+T
    const double avg_wait = (1.0 + 1.0 + 0.0) / 3.0;
    EXPECT_NEAR(avg_wait, 2.0 / 3.0, 1e-12);
  }
}

TEST(PeerClassValidation, RangeChecks) {
  EXPECT_NO_THROW(require_valid_class(1, 4));
  EXPECT_NO_THROW(require_valid_class(4, 4));
  EXPECT_THROW(require_valid_class(0, 4), util::ContractViolation);
  EXPECT_THROW(require_valid_class(5, 4), util::ContractViolation);
  EXPECT_THROW(require_valid_class(1, kMaxSupportedClasses + 1),
               util::ContractViolation);
}

}  // namespace
}  // namespace p2ps::core
