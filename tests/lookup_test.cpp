// Tests for the lookup substrates: the Napster-style directory and the
// Chord-style ring.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "lookup/chord.hpp"
#include "lookup/directory.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace p2ps::lookup {
namespace {

using core::PeerId;

// ---------- DirectoryService ----------

TEST(Directory, RegisterAndQuery) {
  DirectoryService d;
  EXPECT_EQ(d.supplier_count(), 0u);
  d.register_supplier(PeerId{1}, 2);
  d.register_supplier(PeerId{2}, 3);
  EXPECT_EQ(d.supplier_count(), 2u);
  EXPECT_TRUE(d.contains(PeerId{1}));
  EXPECT_FALSE(d.contains(PeerId{3}));
  EXPECT_EQ(d.class_of(PeerId{1}), 2);
  EXPECT_EQ(d.class_of(PeerId{2}), 3);
}

TEST(Directory, DuplicateRegistrationThrows) {
  DirectoryService d;
  d.register_supplier(PeerId{1}, 1);
  EXPECT_THROW(d.register_supplier(PeerId{1}, 2), util::ContractViolation);
  EXPECT_THROW(d.register_supplier(PeerId::invalid(), 1), util::ContractViolation);
}

TEST(Directory, DeregisterSwapRemoveKeepsOthersIntact) {
  DirectoryService d;
  for (std::uint64_t i = 0; i < 10; ++i) {
    d.register_supplier(PeerId{i}, static_cast<core::PeerClass>(1 + i % 4));
  }
  d.deregister_supplier(PeerId{3});
  EXPECT_EQ(d.supplier_count(), 9u);
  EXPECT_FALSE(d.contains(PeerId{3}));
  for (std::uint64_t i = 0; i < 10; ++i) {
    if (i == 3) continue;
    EXPECT_TRUE(d.contains(PeerId{i}));
    EXPECT_EQ(d.class_of(PeerId{i}), static_cast<core::PeerClass>(1 + i % 4));
  }
  EXPECT_THROW(d.deregister_supplier(PeerId{3}), util::ContractViolation);
}

TEST(Directory, CandidatesAreDistinctAndExcludeRequester) {
  DirectoryService d;
  for (std::uint64_t i = 0; i < 30; ++i) d.register_supplier(PeerId{i}, 1);
  util::Rng rng(5);
  for (int round = 0; round < 200; ++round) {
    const auto picks = d.candidates(8, rng, PeerId{7});
    EXPECT_EQ(picks.size(), 8u);
    std::set<PeerId> distinct;
    for (const auto& candidate : picks) {
      distinct.insert(candidate.id);
      EXPECT_NE(candidate.id, PeerId{7});
    }
    EXPECT_EQ(distinct.size(), 8u);
  }
}

TEST(Directory, CandidatesClampWhenPopulationIsSmall) {
  DirectoryService d;
  d.register_supplier(PeerId{1}, 1);
  d.register_supplier(PeerId{2}, 2);
  util::Rng rng(6);
  const auto picks = d.candidates(8, rng, PeerId::invalid());
  EXPECT_EQ(picks.size(), 2u);
  const auto excluding = d.candidates(8, rng, PeerId{1});
  ASSERT_EQ(excluding.size(), 1u);
  EXPECT_EQ(excluding[0].id, PeerId{2});
  EXPECT_TRUE(d.candidates(0, rng, PeerId::invalid()).empty());
}

TEST(Directory, SamplingIsApproximatelyUniform) {
  DirectoryService d;
  const std::size_t population = 50;
  for (std::uint64_t i = 0; i < population; ++i) d.register_supplier(PeerId{i}, 1);
  util::Rng rng(7);
  std::vector<int> counts(population, 0);
  const int rounds = 20'000;
  for (int round = 0; round < rounds; ++round) {
    for (const auto& candidate : d.candidates(5, rng, PeerId::invalid())) {
      ++counts[static_cast<std::size_t>(candidate.id.value())];
    }
  }
  const double expected = rounds * 5.0 / static_cast<double>(population);
  for (int count : counts) {
    EXPECT_NEAR(count, expected, expected * 0.15);
  }
}

// ---------- ChordLookup ----------

TEST(Chord, OwnershipIsSuccessorOnRing) {
  ChordLookup chord;
  for (std::uint64_t i = 0; i < 16; ++i) {
    chord.register_supplier(PeerId{i}, static_cast<core::PeerClass>(1 + i % 4));
  }
  // Brute-force the successor for random keys.
  std::vector<std::pair<std::uint64_t, PeerId>> ring;
  for (std::uint64_t i = 0; i < 16; ++i) {
    ring.emplace_back(ChordLookup::ring_position(PeerId{i}), PeerId{i});
  }
  std::sort(ring.begin(), ring.end());
  util::Rng rng(8);
  for (int round = 0; round < 500; ++round) {
    const std::uint64_t key = rng();
    PeerId expected = ring.front().second;
    for (const auto& [pos, id] : ring) {
      if (pos >= key) {
        expected = id;
        break;
      }
    }
    EXPECT_EQ(chord.owner_of(key).id, expected);
  }
}

TEST(Chord, RoutedLookupFindsOwner) {
  ChordLookup chord;
  for (std::uint64_t i = 0; i < 64; ++i) chord.register_supplier(PeerId{i}, 1);
  util::Rng rng(9);
  for (int round = 0; round < 500; ++round) {
    const std::uint64_t key = rng();
    EXPECT_EQ(chord.route(rng(), key).id, chord.owner_of(key).id);
  }
}

TEST(Chord, HopCountIsLogarithmic) {
  ChordLookup chord;
  const std::uint64_t n = 1024;
  for (std::uint64_t i = 0; i < n; ++i) chord.register_supplier(PeerId{i}, 1);
  chord.reset_stats();
  util::Rng rng(10);
  for (int round = 0; round < 2000; ++round) {
    (void)chord.route(rng(), rng());
  }
  const auto& stats = chord.stats();
  EXPECT_EQ(stats.lookups, 2000u);
  // Theoretical mean ~ (1/2) log2 n = 5; allow generous slack.
  EXPECT_LT(stats.mean_hops(), 1.5 * std::log2(static_cast<double>(n)));
  EXPECT_LE(stats.max_hops, 2 * 64u + n);
  EXPECT_GT(stats.mean_hops(), 1.0);
}

TEST(Chord, CandidatesDistinctAndExclude) {
  ChordLookup chord;
  for (std::uint64_t i = 0; i < 40; ++i) chord.register_supplier(PeerId{i}, 2);
  util::Rng rng(11);
  for (int round = 0; round < 50; ++round) {
    const auto picks = chord.candidates(8, rng, PeerId{5});
    EXPECT_EQ(picks.size(), 8u);
    std::set<PeerId> distinct;
    for (const auto& candidate : picks) {
      EXPECT_NE(candidate.id, PeerId{5});
      distinct.insert(candidate.id);
    }
    EXPECT_EQ(distinct.size(), 8u);
  }
}

TEST(Chord, CandidatesOnTinyRing) {
  ChordLookup chord;
  chord.register_supplier(PeerId{1}, 1);
  chord.register_supplier(PeerId{2}, 2);
  chord.register_supplier(PeerId{3}, 3);
  util::Rng rng(12);
  const auto picks = chord.candidates(8, rng, PeerId{2});
  EXPECT_EQ(picks.size(), 2u);  // everyone except the excluded peer
  std::set<PeerId> ids;
  for (const auto& candidate : picks) ids.insert(candidate.id);
  EXPECT_TRUE(ids.contains(PeerId{1}));
  EXPECT_TRUE(ids.contains(PeerId{3}));
}

TEST(Chord, JoinLeaveUpdatesOwnership) {
  ChordLookup chord;
  chord.register_supplier(PeerId{1}, 1);
  chord.register_supplier(PeerId{2}, 1);
  const std::uint64_t pos2 = ChordLookup::ring_position(PeerId{2});
  EXPECT_EQ(chord.owner_of(pos2).id, PeerId{2});
  chord.deregister_supplier(PeerId{2});
  EXPECT_EQ(chord.supplier_count(), 1u);
  EXPECT_EQ(chord.owner_of(pos2).id, PeerId{1});  // successor takes over
  EXPECT_FALSE(chord.contains(PeerId{2}));
  EXPECT_THROW(chord.deregister_supplier(PeerId{2}), util::ContractViolation);
}

TEST(Chord, EmptyRingLookupsThrow) {
  ChordLookup chord;
  EXPECT_THROW((void)chord.owner_of(42), util::ContractViolation);
  util::Rng rng(1);
  EXPECT_TRUE(chord.candidates(4, rng, PeerId::invalid()).empty());
}

TEST(Chord, ClassesSurviveTheRing) {
  ChordLookup chord;
  for (std::uint64_t i = 0; i < 20; ++i) {
    chord.register_supplier(PeerId{i}, static_cast<core::PeerClass>(1 + i % 4));
  }
  util::Rng rng(13);
  for (const auto& candidate : chord.candidates(10, rng, PeerId::invalid())) {
    EXPECT_EQ(candidate.cls, static_cast<core::PeerClass>(1 + candidate.id.value() % 4));
  }
}

}  // namespace
}  // namespace p2ps::lookup
