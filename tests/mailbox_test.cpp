// Tests for the batched mailbox delivery subsystem: the per-(peer, tick)
// ordering rule, batched/unbatched byte-parity, latency models, envelope
// pooling, and the peak-event-list contract at message-level scale.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "engine/async_system.hpp"
#include "net/mailbox.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace p2ps::net {
namespace {

using core::PeerId;
using util::SimTime;

MailboxConfig fixed_config(std::int64_t millis,
                           TransportMode mode = TransportMode::kBatched) {
  MailboxConfig config;
  config.latency.kind = LatencyModelKind::kFixed;
  config.latency.fixed = SimTime::millis(millis);
  config.mode = mode;
  return config;
}

TEST(MailboxRouter, DeliversWithinUniformLatencyBounds) {
  sim::Simulator simulator;
  MailboxConfig config;
  config.latency.min = SimTime::millis(10);
  config.latency.max = SimTime::millis(50);
  MailboxRouter<int> router(simulator, config, util::Rng(1));

  std::vector<std::int64_t> delivery_times;
  router.attach(PeerId{2}, [&](const Envelope<int>& envelope) {
    EXPECT_EQ(envelope.from, PeerId{1});
    EXPECT_EQ(envelope.payload, 42);
    delivery_times.push_back(simulator.now().as_millis());
  });
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(router.send(PeerId{1}, PeerId{2}, 42));
  }
  simulator.run();
  ASSERT_EQ(delivery_times.size(), 100u);
  for (auto t : delivery_times) {
    EXPECT_GE(t, 10);
    EXPECT_LE(t, 50);
  }
  EXPECT_EQ(router.sent(), 100u);
  EXPECT_EQ(router.delivered(), 100u);
}

TEST(MailboxRouter, FixedLatencyBatchesAFanoutIntoOneDrain) {
  sim::Simulator simulator;
  MailboxRouter<int> router(simulator, fixed_config(40), util::Rng(2));

  std::vector<int> received;
  router.attach(PeerId{9}, [&](const Envelope<int>& envelope) {
    EXPECT_EQ(simulator.now(), SimTime::millis(40));
    received.push_back(envelope.payload);
  });
  // Eight same-tick sends to one peer — a probe fan-out's worth.
  for (int i = 0; i < 8; ++i) router.send(PeerId{1}, PeerId{9}, i);
  simulator.run();
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));  // FIFO
  EXPECT_EQ(router.events_scheduled(), 1u);  // one event for the whole group
  EXPECT_EQ(router.drains(), 1u);
  EXPECT_EQ(router.max_batch(), 8u);
}

TEST(MailboxRouter, FifoWithinTickFollowsEnqueueOrderAcrossSenders) {
  sim::Simulator simulator;
  MailboxRouter<int> router(simulator, fixed_config(20), util::Rng(3));
  std::vector<std::pair<std::uint64_t, int>> received;
  router.attach(PeerId{5}, [&](const Envelope<int>& envelope) {
    received.emplace_back(envelope.from.value(), envelope.payload);
  });
  // Interleaved senders, all landing on the same (peer, tick) group.
  router.send(PeerId{1}, PeerId{5}, 10);
  router.send(PeerId{2}, PeerId{5}, 20);
  router.send(PeerId{1}, PeerId{5}, 11);
  router.send(PeerId{3}, PeerId{5}, 30);
  simulator.run();
  const std::vector<std::pair<std::uint64_t, int>> expected{
      {1, 10}, {2, 20}, {1, 11}, {3, 30}};
  EXPECT_EQ(received, expected);
}

TEST(MailboxRouter, TwoClassLatencyIsDeterministicPerEndpointPair) {
  sim::Simulator simulator;
  MailboxConfig config;
  config.latency.kind = LatencyModelKind::kTwoClass;  // defaults: 10/80 halves
  MailboxRouter<int> router(simulator, config, util::Rng(4));
  router.set_peer_class(PeerId{1}, 1);  // ethernet
  router.set_peer_class(PeerId{2}, 2);  // ethernet (class <= 2)
  router.set_peer_class(PeerId{3}, 4);  // modem

  std::vector<std::int64_t> times;
  const auto record = [&](const Envelope<int>&) {
    times.push_back(simulator.now().as_millis());
  };
  for (std::uint64_t id : {1u, 2u, 3u}) router.attach(PeerId{id}, record);
  router.send(PeerId{1}, PeerId{2}, 0);  // eth -> eth: 10 + 10
  router.send(PeerId{1}, PeerId{3}, 0);  // eth -> modem: 10 + 80
  router.send(PeerId{3}, PeerId{3}, 0);  // modem -> modem: 80 + 80
  simulator.run();
  EXPECT_EQ(times, (std::vector<std::int64_t>{20, 90, 160}));
}

TEST(LatencyModel, LognormalIsHeavyTailedDeterministicAndBounded) {
  LatencyModel model = LatencyModel::of(LatencyModelKind::kLogNormal);
  model.validate();
  util::Rng rng(7);
  std::vector<std::int64_t> draws;
  for (int i = 0; i < 20'000; ++i) {
    const auto latency = model.sample(1, 1, rng);
    EXPECT_GE(latency.as_millis(), 1);
    EXPECT_LE(latency, model.tail_cap);
    draws.push_back(latency.as_millis());
  }
  // Same seed, same stream: byte-reproducible.
  util::Rng rng_again(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model.sample(1, 1, rng_again).as_millis(), draws[static_cast<std::size_t>(i)]);
  }
  std::sort(draws.begin(), draws.end());
  const std::int64_t p50 = draws[draws.size() / 2];
  const std::int64_t p99 = draws[draws.size() * 99 / 100];
  // Median lands near the configured 40 ms; the tail is heavy (p99 is
  // several times the median — lognormal sigma 0.8 puts it at ~6.4x).
  EXPECT_NEAR(static_cast<double>(p50), 40.0, 4.0);
  EXPECT_GE(p99, 4 * p50);
}

TEST(LatencyModel, LognormalParsesAndValidates) {
  EXPECT_EQ(parse_latency_model_kind("lognormal"), LatencyModelKind::kLogNormal);
  EXPECT_EQ(to_string(LatencyModelKind::kLogNormal), "lognormal");
  LatencyModel bad = LatencyModel::of(LatencyModelKind::kLogNormal);
  bad.tail_cap = util::SimTime::millis(1);  // cap below the median
  EXPECT_THROW(bad.validate(), util::ContractViolation);
}

TEST(MailboxRouter, DropProbabilityOneLosesEverything) {
  sim::Simulator simulator;
  MailboxConfig config;
  config.drop_probability = 1.0;
  MailboxRouter<int> router(simulator, config, util::Rng(5));
  int received = 0;
  router.attach(PeerId{2}, [&](const Envelope<int>&) { ++received; });
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(router.send(PeerId{1}, PeerId{2}, i));
  }
  simulator.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(router.dropped(), 10u);
}

TEST(MailboxRouter, DetachedReceiverIsUndeliverable) {
  sim::Simulator simulator;
  MailboxRouter<std::string> router(simulator, MailboxConfig{}, util::Rng(6));
  int received = 0;
  router.attach(PeerId{9}, [&](const Envelope<std::string>&) { ++received; });
  router.send(PeerId{1}, PeerId{9}, "hello");
  router.detach(PeerId{9});
  simulator.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(router.undeliverable(), 1u);
  EXPECT_FALSE(router.attached(PeerId{9}));
}

TEST(MailboxRouter, SameTickDetachFromAnotherHandlerDropsPendingDeliveries) {
  sim::Simulator simulator;
  MailboxRouter<int> router(simulator, fixed_config(10), util::Rng(7));
  int got_on_2 = 0;
  // Peer 1's group fires first (created first at the same tick) and
  // detaches peer 2, whose own group has not drained yet: attachment is
  // re-checked per delivery, so peer 2's message must become
  // undeliverable, not crash or deliver to a dead handler.
  router.attach(PeerId{1}, [&](const Envelope<int>&) { router.detach(PeerId{2}); });
  router.attach(PeerId{2}, [&](const Envelope<int>&) { ++got_on_2; });
  router.send(PeerId{9}, PeerId{1}, 0);
  router.send(PeerId{9}, PeerId{2}, 0);
  simulator.run();
  EXPECT_EQ(got_on_2, 0);
  EXPECT_EQ(router.undeliverable(), 1u);
}

TEST(MailboxRouter, ZeroLatencyRegroupIsNotDrainedByAStaleEvent) {
  // Unbatched mode, zero latency: two messages to P at tick 0 create two
  // events e1, e2 for group A. e1 drains both; the handler of the second
  // message schedules a probe event, then sends a new zero-latency message
  // (group B, event e3) — so the queue holds e2 (stale), probe, e3. The
  // stale e2 must NOT drain group B early: the probe, firing between e2
  // and e3, must observe the regrouped message as still undelivered
  // (groups are matched by id, not by tick).
  sim::Simulator simulator;
  MailboxRouter<int> router(simulator, fixed_config(0, TransportMode::kUnbatched),
                            util::Rng(8));
  int delivered_to_p = 0;
  bool regroup_seen_by_probe = false;
  router.attach(PeerId{1}, [&](const Envelope<int>& envelope) {
    ++delivered_to_p;
    if (envelope.payload == 2) {
      simulator.schedule_after(SimTime::zero(), [&] {
        regroup_seen_by_probe = delivered_to_p >= 3;
      });
      router.send(PeerId{1}, PeerId{1}, 3);  // group B, event e3
    }
  });
  router.send(PeerId{9}, PeerId{1}, 1);
  router.send(PeerId{9}, PeerId{1}, 2);
  simulator.run();
  EXPECT_EQ(delivered_to_p, 3);  // everything delivered exactly once
  EXPECT_FALSE(regroup_seen_by_probe)
      << "a stale per-message event drained a re-created group early";
}

TEST(MailboxRouter, UnbatchedModeSchedulesPerMessageButDeliversIdentically) {
  using Record = std::tuple<std::int64_t, std::uint64_t, int>;
  const auto run = [](TransportMode mode) {
    sim::Simulator simulator;
    MailboxConfig config = fixed_config(25, mode);
    MailboxRouter<int> router(simulator, config, util::Rng(9));
    std::vector<Record> log;
    const auto record = [&](const Envelope<int>& envelope) {
      log.emplace_back(simulator.now().as_millis(), envelope.from.value(),
                       envelope.payload);
    };
    router.attach(PeerId{1}, record);
    router.attach(PeerId{2}, record);
    // A scripted burst across two receivers and two ticks.
    for (int i = 0; i < 6; ++i) {
      router.send(PeerId{7}, PeerId{static_cast<std::uint64_t>(1 + (i % 2))}, i);
    }
    simulator.schedule_at(SimTime::millis(5), [&] {
      for (int i = 6; i < 10; ++i) router.send(PeerId{8}, PeerId{1}, i);
    });
    simulator.run();
    return std::pair(log, router.events_scheduled());
  };
  const auto [batched_log, batched_events] = run(TransportMode::kBatched);
  const auto [unbatched_log, unbatched_events] = run(TransportMode::kUnbatched);
  EXPECT_EQ(batched_log, unbatched_log);  // the shared delivery ordering rule
  EXPECT_EQ(unbatched_events, 10u);       // one event per message
  EXPECT_EQ(batched_events, 3u);          // one per (peer, tick) group
}

TEST(EnvelopePool, SteadyStateReusesInboxesInsteadOfAllocating) {
  sim::Simulator simulator;
  MailboxRouter<int> router(simulator, fixed_config(10), util::Rng(10));
  router.attach(PeerId{1}, [](const Envelope<int>&) {});
  // 200 sequential one-group ticks: after the first group warms the pool,
  // every acquire must be served from the free list.
  for (int round = 0; round < 200; ++round) {
    simulator.schedule_at(SimTime::millis(100 * round), [&] {
      for (int i = 0; i < 4; ++i) router.send(PeerId{2}, PeerId{1}, i);
    });
  }
  simulator.run();
  EXPECT_EQ(router.drains(), 200u);
  EXPECT_EQ(router.pool().created(), 1u);
  EXPECT_EQ(router.pool().reused(), 199u);
  EXPECT_EQ(router.pool().idle(), 1u);
}

TEST(MailboxRouter, AttachReplacesTheHandler) {
  sim::Simulator simulator;
  MailboxRouter<int> router(simulator, fixed_config(10), util::Rng(11));
  int first = 0;
  int second = 0;
  router.attach(PeerId{1}, [&](const Envelope<int>&) { ++first; });
  router.attach(PeerId{1}, [&](const Envelope<int>&) { ++second; });
  router.send(PeerId{2}, PeerId{1}, 0);
  simulator.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

// ---------- the engine-level contracts ----------

/// Every registered message-level (msg_*) scenario must emit byte-identical
/// JSON whether delivery is batched or per-message — the payloads carry
/// protocol results only, and a transport-mode flip is pure mechanics.
TEST(MessageScenarios, BatchedAndUnbatchedTransportsAreByteIdentical) {
  scenario::register_all_scenarios();
  scenario::ScenarioOptions batched;
  batched.seed = 2002;
  batched.scale = 200;  // keep the populations small and fast
  batched.transport = TransportMode::kBatched;
  scenario::ScenarioOptions unbatched = batched;
  unbatched.transport = TransportMode::kUnbatched;
  std::size_t checked = 0;
  for (const auto* scenario : scenario::Registry::instance().list()) {
    if (scenario->name.rfind("msg_", 0) != 0) continue;
    const std::string on_batched =
        scenario::run_scenario(scenario->name, batched).dump();
    const std::string on_unbatched =
        scenario::run_scenario(scenario->name, unbatched).dump();
    EXPECT_EQ(on_batched, on_unbatched) << scenario->name;
    ++checked;
  }
  EXPECT_GE(checked, 2u);  // msg_fig5_scale + msg_flash_crowd at least
}

/// The latency axis is a real workload parameter: flipping it must change
/// the payload (unlike the transport mode, which must not).
TEST(MessageScenarios, LatencyModelChangesThePayload) {
  scenario::register_all_scenarios();
  scenario::ScenarioOptions twoclass;
  twoclass.scale = 200;
  twoclass.latency = LatencyModelKind::kTwoClass;
  scenario::ScenarioOptions fixed = twoclass;
  fixed.latency = LatencyModelKind::kFixed;
  const std::string a = scenario::run_scenario("msg_flash_crowd", twoclass).dump();
  const std::string b = scenario::run_scenario("msg_flash_crowd", fixed).dump();
  EXPECT_NE(a, b);
}

std::int64_t config_population(const engine::AsyncSimulationConfig& config) {
  return config.population.seeds + config.population.requesters;
}

engine::AsyncSimulationConfig fig5_shaped_config(TransportMode mode) {
  engine::AsyncSimulationConfig config;
  config.population.seeds = 20;
  config.population.requesters = 2000;
  config.pattern = workload::ArrivalPattern::kRampUpDown;
  config.arrival_window = util::SimTime::hours(24);
  config.horizon = util::SimTime::hours(48);
  config.transport.latency = LatencyModel::of(LatencyModelKind::kTwoClass);
  config.transport.mode = mode;
  config.seed = 7;
  return config;
}

/// The msg_fig5_scale acceptance contract in miniature: batching must not
/// change any protocol counter, must execute strictly fewer events, and
/// must keep the peak event list bounded by the unbatched run's (the
/// message-event share is what shrinks; timers are common to both).
TEST(MessageScenarios, BatchingShrinksEventTrafficAtFig5Shape) {
  engine::AsyncStreamingSystem batched(
      fig5_shaped_config(TransportMode::kBatched));
  const auto batched_result = batched.run();
  engine::AsyncStreamingSystem unbatched(
      fig5_shaped_config(TransportMode::kUnbatched));
  const auto unbatched_result = unbatched.run();

  EXPECT_EQ(batched_result.overall.admissions, unbatched_result.overall.admissions);
  EXPECT_EQ(batched_result.overall.rejections, unbatched_result.overall.rejections);
  EXPECT_EQ(batched_result.final_capacity, unbatched_result.final_capacity);
  EXPECT_EQ(batched.transport().sent(), unbatched.transport().sent());
  EXPECT_EQ(batched.transport().delivered(), unbatched.transport().delivered());

  EXPECT_LT(batched_result.events_executed, unbatched_result.events_executed);
  EXPECT_LT(batched.transport().events_scheduled(),
            unbatched.transport().events_scheduled());
  EXPECT_LE(batched_result.peak_event_list, unbatched_result.peak_event_list);
  // Lazy arrivals + RetrySource + pooled teardown: the queue never holds
  // anything close to one event per peer.
  EXPECT_LT(batched_result.peak_event_list,
            config_population(batched.config()));
  EXPECT_GT(batched.transport().max_batch(), 1u);
}

}  // namespace
}  // namespace p2ps::net
