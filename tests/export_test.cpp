// Tests for the CSV / gnuplot export of metric series.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "metrics/export.hpp"
#include "util/assert.hpp"

namespace p2ps::metrics {
namespace {

using util::SimTime;

std::vector<HourlySample> two_samples() {
  std::vector<HourlySample> samples;
  HourlySample s0;
  s0.t = SimTime::hours(0);
  s0.capacity = 50;
  s0.active_sessions = 0;
  s0.suppliers = 100;
  s0.per_class.resize(2);
  samples.push_back(s0);

  HourlySample s1;
  s1.t = SimTime::hours(1);
  s1.capacity = 60;
  s1.active_sessions = 3;
  s1.suppliers = 120;
  s1.per_class.resize(2);
  s1.per_class[0].first_requests = 10;
  s1.per_class[0].admissions = 5;
  s1.per_class[0].buffering_delay_dt_sum = 15.0;
  s1.per_class[0].rejections_before_admission_sum = 10;
  samples.push_back(s1);
  return samples;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

std::size_t count_commas(const std::string& line) {
  return static_cast<std::size_t>(std::count(line.begin(), line.end(), ','));
}

TEST(ExportCsv, HourlyHeaderAndRows) {
  std::ostringstream os;
  write_hourly_csv(os, two_samples(), 2);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].substr(0, 4), "hour");
  // header and rows have the same column count: 4 + 2 classes * 5.
  for (const auto& line : lines) {
    EXPECT_EQ(count_commas(line), 3u + 2u * 5u);
  }
  // Derived fields are empty before any request, filled afterwards.
  EXPECT_NE(lines[1].find(",,"), std::string::npos);
  EXPECT_NE(lines[2].find("50.0000"), std::string::npos);   // admission rate %
  EXPECT_NE(lines[2].find("3.0000"), std::string::npos);    // mean delay
  EXPECT_NE(lines[2].find("2.0000"), std::string::npos);    // mean rejections
}

TEST(ExportCsv, FavoredSeries) {
  std::vector<FavoredSample> samples;
  FavoredSample sample;
  sample.t = SimTime::hours(3);
  sample.avg_lowest_favored = {1.5, std::nan(""), 4.0, 4.0};
  samples.push_back(sample);
  std::ostringstream os;
  write_favored_csv(os, samples, 4);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "3,1.5000,,4.0000,4.0000");  // NaN -> empty cell
}

TEST(ExportGnuplot, ScriptReferencesAllSeries) {
  std::ostringstream os;
  write_gnuplot_script(os, "Figure 4", "Total system capacity", "fig4.png",
                       {{"dac.csv", "DAC_p2p", 2}, {"ndac.csv", "NDAC_p2p", 2}});
  const std::string script = os.str();
  EXPECT_NE(script.find("set output 'fig4.png'"), std::string::npos);
  EXPECT_NE(script.find("'dac.csv' using 1:2"), std::string::npos);
  EXPECT_NE(script.find("title 'NDAC_p2p'"), std::string::npos);
  EXPECT_NE(script.find("separator ','"), std::string::npos);
}

TEST(ExportGnuplot, EmptySeriesRejected) {
  std::ostringstream os;
  EXPECT_THROW(write_gnuplot_script(os, "t", "y", "o.png", {}),
               util::ContractViolation);
}

}  // namespace
}  // namespace p2ps::metrics
