// Tests for the command-line flag parser.
#include <gtest/gtest.h>

#include <vector>

#include "util/assert.hpp"
#include "util/flags.hpp"

namespace p2ps::util {
namespace {

Flags parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  const Flags flags = parse({"--seed=42", "--skew=1.5", "--name=abc"});
  EXPECT_EQ(flags.get_int("seed", 0), 42);
  EXPECT_DOUBLE_EQ(flags.get_double("skew", 0.0), 1.5);
  EXPECT_EQ(flags.get_string("name", ""), "abc");
}

TEST(Flags, SpaceSyntax) {
  const Flags flags = parse({"--seed", "7", "--name", "xyz"});
  EXPECT_EQ(flags.get_int("seed", 0), 7);
  EXPECT_EQ(flags.get_string("name", ""), "xyz");
}

TEST(Flags, DefaultsWhenAbsent) {
  const Flags flags = parse({});
  EXPECT_EQ(flags.get_int("seed", 99), 99);
  EXPECT_DOUBLE_EQ(flags.get_double("skew", 0.5), 0.5);
  EXPECT_EQ(flags.get_string("name", "dflt"), "dflt");
  EXPECT_FALSE(flags.get_bool("verbose", false));
  EXPECT_FALSE(flags.has("seed"));
}

TEST(Flags, BooleanForms) {
  EXPECT_TRUE(parse({"--verbose"}).get_bool("verbose", false));
  EXPECT_TRUE(parse({"--verbose=true"}).get_bool("verbose", false));
  EXPECT_TRUE(parse({"--verbose=1"}).get_bool("verbose", false));
  EXPECT_FALSE(parse({"--verbose=false"}).get_bool("verbose", true));
  EXPECT_FALSE(parse({"--verbose=no"}).get_bool("verbose", true));
  EXPECT_THROW((void)parse({"--verbose=maybe"}).get_bool("verbose", true),
               ContractViolation);
}

TEST(Flags, Positional) {
  const Flags flags = parse({"1", "--seed=3", "2", "3"});
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(flags.program(), "prog");
}

TEST(Flags, LastOccurrenceWins) {
  const Flags flags = parse({"--seed=1", "--seed=2"});
  EXPECT_EQ(flags.get_int("seed", 0), 2);
}

TEST(Flags, MalformedValuesThrow) {
  EXPECT_THROW((void)parse({"--seed=abc"}).get_int("seed", 0), ContractViolation);
  EXPECT_THROW((void)parse({"--seed=12x"}).get_int("seed", 0), ContractViolation);
  EXPECT_THROW((void)parse({"--skew=abc"}).get_double("skew", 0), ContractViolation);
  EXPECT_THROW((void)parse({"--seed"}).get_int("seed", 0), ContractViolation);
  EXPECT_THROW(parse({"--=x"}), ContractViolation);
  EXPECT_THROW(parse({"--"}), ContractViolation);
}

TEST(Flags, NegativeNumbersAsValues) {
  // "--delta -5" — the following token starts with '-' but not "--", so it
  // is consumed as the value.
  const Flags flags = parse({"--delta", "-5"});
  EXPECT_EQ(flags.get_int("delta", 0), -5);
}

TEST(Flags, UnusedTracking) {
  const Flags flags = parse({"--seed=1", "--typo=2"});
  (void)flags.get_int("seed", 0);
  const auto unused = flags.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

}  // namespace
}  // namespace p2ps::util
