// Tests for the lazy, self-rescheduling arrival source and the
// peak-event-list contraction it exists to deliver.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "engine/arrival_source.hpp"
#include "engine/config.hpp"
#include "engine/retry_source.hpp"
#include "engine/streaming_system.hpp"
#include "sim/simulator.hpp"
#include "util/sim_time.hpp"
#include "workload/arrival_pattern.hpp"

namespace p2ps::engine {
namespace {

using util::SimTime;

workload::ArrivalSchedule constant_schedule(std::int64_t total) {
  return workload::ArrivalSchedule::make(workload::ArrivalPattern::kConstant,
                                         total, SimTime::hours(72));
}

TEST(ArrivalSource, FiresEveryArrivalAtItsScheduledTimeInOrder) {
  sim::Simulator simulator;
  auto schedule = constant_schedule(500);
  const std::vector<SimTime> expected = schedule.times();

  std::vector<std::int64_t> indices;
  std::vector<SimTime> fire_times;
  ArrivalSource source(simulator, std::move(schedule),
                       [&](std::int64_t index) {
                         indices.push_back(index);
                         fire_times.push_back(simulator.now());
                       });
  EXPECT_EQ(source.emitted(), 0);
  source.start();
  simulator.run();

  ASSERT_EQ(indices.size(), 500u);
  EXPECT_TRUE(source.done());
  EXPECT_EQ(source.emitted(), 500);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(indices[i], static_cast<std::int64_t>(i));
    EXPECT_EQ(fire_times[i], expected[i]);
  }
}

TEST(ArrivalSource, KeepsExactlyOneEventInFlight) {
  sim::Simulator simulator;
  ArrivalSource source(simulator, constant_schedule(200), [&](std::int64_t) {
    // At handler time the successor is already queued (reschedule-first),
    // so the source accounts for exactly one pending event.
    EXPECT_LE(simulator.pending_count(), 1u);
  });
  source.start();
  EXPECT_EQ(simulator.pending_count(), 1u);
  simulator.run();
  EXPECT_EQ(simulator.peak_pending_count(), 1u);  // never the full 200
  EXPECT_TRUE(source.done());
}

TEST(ArrivalSource, EmptyScheduleIsDoneWithoutEvents) {
  sim::Simulator simulator;
  ArrivalSource source(simulator, constant_schedule(0),
                       [](std::int64_t) { FAIL() << "no arrivals expected"; });
  source.start();
  EXPECT_TRUE(source.done());
  EXPECT_EQ(simulator.pending_count(), 0u);
  EXPECT_EQ(simulator.run(), 0u);
}

TEST(ArrivalSource, DestructorCancelsTheInFlightEvent) {
  sim::Simulator simulator;
  int fired = 0;
  {
    ArrivalSource source(simulator, constant_schedule(10),
                         [&](std::int64_t) { ++fired; });
    source.start();
    // Run half the window, then drop the source mid-stream.
    simulator.run_until(SimTime::hours(36));
    EXPECT_GT(fired, 0);
    EXPECT_LT(fired, 10);
    EXPECT_FALSE(source.done());
  }
  // The orphaned arrival event was cancelled: draining the simulator fires
  // nothing further and never touches the destroyed source.
  const int fired_before_drain = fired;
  simulator.run();
  EXPECT_EQ(fired, fired_before_drain);
}

TEST(ArrivalSource, SameTimestampArrivalsFireBackToBack) {
  // Two arrivals at one instant: the successor is scheduled before the
  // current handler runs, so any same-time event the handler schedules
  // fires only after the whole arrival run (the eager-ordering property
  // the lazy refactor preserves — see docs/lazy_arrivals.md).
  sim::Simulator simulator;
  auto schedule = workload::ArrivalSchedule::from_pieces(
      {{SimTime::millis(1), 1.0}}, 2);  // both arrivals land at t=0
  std::vector<std::string> order;
  ArrivalSource source(simulator, std::move(schedule), [&](std::int64_t index) {
    order.push_back("arrival" + std::to_string(index));
    simulator.schedule_after(SimTime::zero(),
                             [&] { order.push_back("handler-continuation"); });
  });
  source.start();
  simulator.run();
  EXPECT_EQ(order,
            (std::vector<std::string>{"arrival0", "arrival1",
                                      "handler-continuation",
                                      "handler-continuation"}));
}

// ---------- RetrySource (the backoff stream's single in-flight event) ----

TEST(RetrySource, FiresInDueOrderWithFifoTies) {
  sim::Simulator simulator;
  std::vector<std::uint64_t> order;
  RetrySource retries(simulator,
                      [&](core::PeerId id) { order.push_back(id.value()); });
  retries.schedule(SimTime::seconds(30), core::PeerId{3});
  retries.schedule(SimTime::seconds(10), core::PeerId{1});
  retries.schedule(SimTime::seconds(10), core::PeerId{2});  // FIFO on tie
  retries.schedule(SimTime::seconds(20), core::PeerId{0});
  EXPECT_EQ(retries.waiting(), 4u);
  // The whole waiting population costs one pending simulator event.
  EXPECT_EQ(simulator.pending_count(), 1u);
  simulator.run();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 0, 3}));
  EXPECT_EQ(retries.waiting(), 0u);
  EXPECT_EQ(simulator.peak_pending_count(), 1u);
}

TEST(RetrySource, EarlierInsertionPreemptsTheInFlightEvent) {
  sim::Simulator simulator;
  std::vector<std::uint64_t> order;
  RetrySource retries(simulator,
                      [&](core::PeerId id) { order.push_back(id.value()); });
  retries.schedule(SimTime::seconds(100), core::PeerId{9});
  retries.schedule(SimTime::seconds(5), core::PeerId{1});  // preempts
  simulator.run();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 9}));
}

TEST(RetrySource, HandlerMayScheduleFurtherRetries) {
  // The engine's actual shape: a due retry that fails re-enters the queue
  // with a longer backoff.
  sim::Simulator simulator;
  int fires = 0;
  RetrySource* source = nullptr;
  RetrySource retries(simulator, [&](core::PeerId id) {
    if (++fires < 4) source->schedule(SimTime::minutes(10 * fires), id);
  });
  source = &retries;
  retries.schedule(SimTime::minutes(1), core::PeerId{7});
  simulator.run();
  EXPECT_EQ(fires, 4);
  EXPECT_EQ(retries.waiting(), 0u);
  EXPECT_EQ(simulator.peak_pending_count(), 1u);
}

// ---------- the engine-level contraction ----------

TEST(LazyArrivals, PeakEventListIsFarBelowPopulation) {
  // A paper-shaped population (enough seeds that admission keeps up, the
  // regime of Section 5's self-amplification result). Eager pre-scheduling
  // put every first request in the queue at t=0, so its peak was
  // >= requesters; lazy arrivals keep the queue at O(active sessions +
  // timers + waiting peers): at least 10x smaller here.
  SimulationConfig config;
  config.population.seeds = 20;
  config.population.requesters = 2'000;
  config.validate_invariants = false;
  config.seed = 77;
  const auto result = StreamingSystem(config).run();
  EXPECT_GT(result.peak_event_list, 0);
  EXPECT_LT(result.peak_event_list, config.population.requesters / 10);
  EXPECT_EQ(result.overall.first_requests, 2'000);
}

TEST(LazyArrivals, ResultsIdenticalAcrossEventListBackends) {
  SimulationConfig heap_config;
  heap_config.population.seeds = 4;
  heap_config.population.requesters = 600;
  heap_config.validate_invariants = false;
  heap_config.seed = 11;
  heap_config.event_list = sim::EventListKind::kBinaryHeap;
  SimulationConfig calendar_config = heap_config;
  calendar_config.event_list = sim::EventListKind::kCalendarQueue;

  const auto on_heap = StreamingSystem(heap_config).run();
  const auto on_calendar = StreamingSystem(calendar_config).run();
  EXPECT_EQ(on_heap.events_executed, on_calendar.events_executed);
  EXPECT_EQ(on_heap.peak_event_list, on_calendar.peak_event_list);
  EXPECT_EQ(on_heap.final_capacity, on_calendar.final_capacity);
  EXPECT_EQ(on_heap.sessions_completed, on_calendar.sessions_completed);
  EXPECT_EQ(on_heap.overall.admissions, on_calendar.overall.admissions);
}

}  // namespace
}  // namespace p2ps::engine
