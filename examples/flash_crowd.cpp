// Flash crowd — how the two admission protocols cope with a burst of
// demand hitting a young system (arrival pattern 3: 40% of all requests in
// the first twelfth of the window).
//
//   ./examples/flash_crowd
#include <iostream>

#include "engine/streaming_system.hpp"
#include "util/table.hpp"

int main() {
  using p2ps::util::SimTime;

  p2ps::engine::SimulationConfig config;
  config.population.seeds = 20;
  config.population.requesters = 5000;
  config.pattern = p2ps::workload::ArrivalPattern::kBurstThenConstant;
  config.arrival_window = SimTime::hours(36);
  config.horizon = SimTime::hours(72);
  config.seed = 7;

  std::cout << "Flash crowd: 40% of 5,000 requests arrive in the first 3 hours;\n"
               "only 20 seed suppliers exist. Comparing DAC_p2p vs NDAC_p2p.\n\n";

  const auto dac = p2ps::engine::StreamingSystem(config).run();
  const auto ndac = p2ps::engine::StreamingSystem(p2ps::engine::as_ndac(config)).run();

  p2ps::util::TextTable table({"hour", "DAC capacity", "NDAC capacity",
                               "DAC admitted", "NDAC admitted"});
  for (int h = 0; h <= 72; h += 6) {
    const auto& ds = dac.sample_at(SimTime::hours(h));
    const auto& ns = ndac.sample_at(SimTime::hours(h));
    std::int64_t dac_admitted = 0, ndac_admitted = 0;
    for (const auto& counters : ds.per_class) dac_admitted += counters.admissions;
    for (const auto& counters : ns.per_class) ndac_admitted += counters.admissions;
    table.new_row()
        .add_cell(static_cast<long long>(h))
        .add_cell(static_cast<long long>(ds.capacity))
        .add_cell(static_cast<long long>(ns.capacity))
        .add_cell(static_cast<long long>(dac_admitted))
        .add_cell(static_cast<long long>(ndac_admitted));
  }
  table.print(std::cout);

  std::cout << "\nDuring the crowd, DAC_p2p admits bandwidth-rich peers first; "
               "each admitted\nclass-1/2 peer multiplies future capacity, so the "
               "backlog drains faster.\n";
  std::cout << "DAC final capacity " << dac.final_capacity << " vs NDAC "
            << ndac.final_capacity << " (max " << dac.max_capacity << ").\n";
  return 0;
}
