// Incentive demo — why peers should pledge their *true* out-bound
// bandwidth under DAC_p2p (the paper's third headline claim).
//
// Runs the same community under DAC_p2p and NDAC_p2p and contrasts what a
// bandwidth-rich peer experiences depending on its pledge: under DAC_p2p,
// pledging high buys fewer rejections, shorter waits and lower buffering
// delay; under NDAC_p2p the pledge buys nothing — so a selfish peer would
// understate it.
//
//   ./examples/incentive_demo [--seed N]
#include <iostream>

#include "engine/streaming_system.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using p2ps::util::SimTime;
  const p2ps::util::Flags flags(argc, argv);

  p2ps::engine::SimulationConfig config;
  config.population.seeds = 20;
  config.population.requesters = 4000;
  config.pattern = p2ps::workload::ArrivalPattern::kRampUpDown;
  config.arrival_window = SimTime::hours(24);
  config.horizon = SimTime::hours(48);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 12));

  std::cout << "4,000 requesting peers; classes pledge R0/2, R0/4, R0/8, R0/16.\n"
               "What does a peer's pledge buy it?\n\n";

  const auto dac = p2ps::engine::StreamingSystem(config).run();
  const auto ndac = p2ps::engine::StreamingSystem(p2ps::engine::as_ndac(config)).run();

  const auto row = [](const p2ps::engine::SimulationResult& result, int cls) {
    const auto& counters = result.totals[static_cast<std::size_t>(cls - 1)];
    return std::tuple(counters.mean_rejections().value_or(0.0),
                      counters.mean_waiting_minutes().value_or(0.0),
                      counters.mean_delay_dt().value_or(0.0));
  };

  p2ps::util::TextTable table({"pledge (class)", "protocol", "avg rejections",
                               "avg wait (min)", "avg delay (dt)"});
  for (int cls = 1; cls <= 4; ++cls) {
    const auto [dr, dw, dd] = row(dac, cls);
    table.new_row()
        .add_cell("R0/" + std::to_string(1 << cls) + " (c" + std::to_string(cls) + ")")
        .add_cell("DAC_p2p")
        .add_cell(dr, 2)
        .add_cell(dw, 1)
        .add_cell(dd, 2);
  }
  for (int cls = 1; cls <= 4; ++cls) {
    const auto [nr, nw, nd] = row(ndac, cls);
    table.new_row()
        .add_cell("R0/" + std::to_string(1 << cls) + " (c" + std::to_string(cls) + ")")
        .add_cell("NDAC_p2p")
        .add_cell(nr, 2)
        .add_cell(nw, 1)
        .add_cell(nd, 2);
  }
  table.print(std::cout);

  const auto [r1, w1, d1] = row(dac, 1);
  const auto [r4, w4, d4] = row(dac, 4);
  std::cout << "\nUnder DAC_p2p, pledging R0/2 instead of R0/16 cuts average "
               "waiting from "
            << p2ps::util::format_double(w4, 0) << " to "
            << p2ps::util::format_double(w1, 0) << " minutes ("
            << p2ps::util::format_double(w4 > 0 ? w4 / std::max(w1, 1e-9) : 0, 1)
            << "x) and rejections from " << p2ps::util::format_double(r4, 2)
            << " to " << p2ps::util::format_double(r1, 2)
            << ".\nUnder NDAC_p2p the columns are flat — no reason to pledge "
               "truthfully.\nDifferentiation is the incentive.\n";
  return 0;
}
