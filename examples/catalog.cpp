// Catalog — a media *library* served peer-to-peer (extension of the
// paper's single popular video): 12 files with Zipf-distributed demand,
// per-file supplier swarms, one DAC_p2p admission machinery per peer.
//
//   ./examples/catalog [--files N] [--skew S] [--requesters N] [--seed N]
#include <iostream>
#include <string>

#include "engine/catalog_system.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using p2ps::util::SimTime;
  const p2ps::util::Flags flags(argc, argv);

  p2ps::engine::CatalogConfig config;
  config.files = flags.get_int("files", 12);
  config.zipf_skew = flags.get_double("skew", 1.0);
  config.population.seeds = 3;  // seeds per file
  config.population.requesters = flags.get_int("requesters", 4000);
  config.pattern = p2ps::workload::ArrivalPattern::kRampUpDown;
  config.arrival_window = SimTime::hours(24);
  config.horizon = SimTime::hours(48);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 17));

  std::cout << "A " << config.files << "-file library, "
            << config.population.requesters << " requesting peers, demand ~ Zipf("
            << config.zipf_skew << ").\n"
            << "Each served requester becomes a supplier of the file it "
               "watched.\n\n";

  p2ps::engine::CatalogStreamingSystem system(config);
  const auto result = system.run();

  p2ps::util::TextTable table({"file (rank)", "requests", "admitted", "suppliers",
                               "capacity", "demand share"});
  for (const auto& stats : result.per_file) {
    table.new_row()
        .add_cell(static_cast<long long>(stats.file))
        .add_cell(static_cast<long long>(stats.requests))
        .add_cell(static_cast<long long>(stats.admissions))
        .add_cell(static_cast<long long>(stats.suppliers))
        .add_cell(static_cast<long long>(stats.capacity))
        .add_cell(p2ps::util::format_double(
                      100.0 * static_cast<double>(stats.requests) /
                          static_cast<double>(config.population.requesters),
                      1) +
                  "%");
  }
  table.print(std::cout);

  std::cout << "\nSupply follows demand: the popular head of the catalog "
               "amplifies its own\nswarm while the tail keeps only its seeds — "
               "no central provisioning anywhere.\n"
            << "Total capacity " << result.overall.final_capacity << " (max "
            << result.overall.max_capacity << "), sessions completed "
            << result.overall.sessions_completed << ".\n";
  return 0;
}
