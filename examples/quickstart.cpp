// Quickstart — simulate a small peer-to-peer streaming community.
//
// Builds a 1,000-peer system (10 class-1 seeds owning a 60-minute video,
// 990 requesters with the paper's 10/10/40/40 class mix), runs 48 simulated
// hours under the DAC_p2p protocol, and prints how the community's
// streaming capacity amplified itself.
//
//   ./examples/quickstart [--seed N] [--requesters N] [--hours N] [--ndac]
#include <cstdlib>
#include <iostream>

#include "engine/streaming_system.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using p2ps::util::SimTime;
  const p2ps::util::Flags flags(argc, argv);

  p2ps::engine::SimulationConfig config;
  config.population.seeds = 10;
  config.population.requesters = flags.get_int("requesters", 990);
  config.pattern = p2ps::workload::ArrivalPattern::kRampUpDown;
  const std::int64_t hours = std::max<std::int64_t>(24, flags.get_int("hours", 48));
  config.arrival_window = SimTime::hours(std::min<std::int64_t>(24, hours / 2));
  config.horizon = SimTime::hours(hours);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  config.protocol.differentiated = !flags.get_bool("ndac", false);

  std::cout << "Simulating " << (config.population.seeds + config.population.requesters)
            << " peers for " << config.horizon.as_hours() << " simulated hours...\n\n";

  p2ps::engine::StreamingSystem system(config);
  const auto result = system.run();

  std::cout << "Capacity amplification (sessions the community can serve "
               "simultaneously):\n";
  const std::int64_t step = std::max<std::int64_t>(1, hours / 8);
  for (std::int64_t h = 0; h <= hours; h += step) {
    const auto capacity = result.capacity_at(SimTime::hours(h));
    std::cout << "  t=" << h << "h  capacity=" << capacity << "  ";
    for (std::int64_t i = 0; i < capacity / 2; ++i) std::cout << '#';
    std::cout << '\n';
  }
  std::cout << '\n';
  p2ps::engine::print_summary(std::cout, result);

  std::cout << "\nInterpretation: requesting peers that finished streaming "
               "became suppliers,\ngrowing capacity from "
            << result.hourly.front().capacity << " to " << result.final_capacity
            << " (max possible " << result.max_capacity
            << "). Higher classes were\nadmitted faster and with lower "
               "buffering delay — the DAC_p2p incentive.\n";
  return 0;
}
