// Churn resilience — what happens when probed candidates are often
// unreachable (paper Section 4.2 admission condition 1: candidates must be
// "neither down nor busy").
//
//   ./examples/churn_resilience
#include <iostream>

#include "engine/streaming_system.hpp"
#include "util/table.hpp"

int main() {
  using p2ps::util::SimTime;

  std::cout << "Sweeping the probability that a probed candidate is down.\n"
               "1,000 requesters, 20 seeds, 24 h of arrivals, 48 h horizon.\n\n";

  p2ps::util::TextTable table({"down prob", "admitted", "avg rejections",
                               "avg wait (min)", "final capacity"});
  for (double down : {0.0, 0.2, 0.4, 0.6}) {
    p2ps::engine::SimulationConfig config;
    config.population.seeds = 20;
    config.population.requesters = 1000;
    config.pattern = p2ps::workload::ArrivalPattern::kConstant;
    config.arrival_window = SimTime::hours(24);
    config.horizon = SimTime::hours(48);
    config.peer_down_probability = down;
    config.seed = 99;

    const auto result = p2ps::engine::StreamingSystem(config).run();
    const auto& overall = result.overall;
    table.new_row()
        .add_cell(down, 1)
        .add_cell(static_cast<long long>(overall.admissions))
        .add_cell(overall.admissions > 0
                      ? p2ps::util::format_double(
                            static_cast<double>(overall.rejections_before_admission_sum) /
                                static_cast<double>(overall.admissions),
                            2)
                      : "-")
        .add_cell(overall.mean_waiting_minutes()
                      ? p2ps::util::format_double(*overall.mean_waiting_minutes(), 1)
                      : "-")
        .add_cell(static_cast<long long>(result.final_capacity));
  }
  table.print(std::cout);

  std::cout << "\nThe protocol degrades gracefully: rejections and waiting "
               "grow with the\nfailure rate, but the self-growing capacity "
               "still amplifies — retries find\nfresh candidates each time.\n";
  return 0;
}
