// Chord lookup — run the same simulation on the two lookup substrates the
// paper's footnote 4 mentions (a Napster-style directory and a Chord ring)
// and inspect the Chord ring's routing cost directly.
//
//   ./examples/chord_lookup
#include <iostream>

#include "engine/streaming_system.hpp"
#include "lookup/chord.hpp"
#include "util/table.hpp"

int main() {
  using p2ps::util::SimTime;

  // 1) The protocol is lookup-agnostic: same workload, both backends.
  p2ps::engine::SimulationConfig config;
  config.population.seeds = 10;
  config.population.requesters = 500;
  config.pattern = p2ps::workload::ArrivalPattern::kConstant;
  config.arrival_window = SimTime::hours(12);
  config.horizon = SimTime::hours(24);
  config.seed = 5;

  auto chord_config = config;
  chord_config.lookup = p2ps::engine::LookupKind::kChord;

  const auto with_directory = p2ps::engine::StreamingSystem(config).run();
  const auto with_chord = p2ps::engine::StreamingSystem(chord_config).run();

  std::cout << "Same community, two lookup services:\n";
  p2ps::util::TextTable table({"lookup", "admitted", "final capacity"});
  table.new_row()
      .add_cell("directory")
      .add_cell(static_cast<long long>(with_directory.overall.admissions))
      .add_cell(static_cast<long long>(with_directory.final_capacity));
  table.new_row()
      .add_cell("chord")
      .add_cell(static_cast<long long>(with_chord.overall.admissions))
      .add_cell(static_cast<long long>(with_chord.final_capacity));
  table.print(std::cout);

  // 2) Chord routing cost scales logarithmically with the ring size.
  std::cout << "\nChord routed-lookup cost (greedy finger routing):\n";
  p2ps::util::TextTable hops({"ring size", "mean hops", "max hops"});
  for (std::uint64_t n : {64u, 512u, 4096u}) {
    p2ps::lookup::ChordLookup ring;
    for (std::uint64_t i = 0; i < n; ++i) {
      ring.register_supplier(p2ps::core::PeerId{i}, 1);
    }
    p2ps::util::Rng rng(n);
    for (int i = 0; i < 2000; ++i) (void)ring.route(rng(), rng());
    hops.new_row()
        .add_cell(static_cast<long long>(n))
        .add_cell(ring.stats().mean_hops(), 2)
        .add_cell(static_cast<long long>(ring.stats().max_hops));
  }
  hops.print(std::cout);

  std::cout << "\nDAC_p2p only needs \"M random suppliers with class labels\" "
               "from the lookup\nlayer, so either substrate works unchanged.\n";
  return 0;
}
