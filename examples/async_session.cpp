// Async session — the distributed form of DAC_p2p over a lossy,
// latency-bearing message transport: probes, grants with holds, commit,
// releases and reminders, followed by the OTS_p2p-planned session.
//
//   ./examples/async_session
#include <iostream>
#include <memory>
#include <vector>

#include "net/async_admission.hpp"
#include "sim/simulator.hpp"
#include "sim/timer_service.hpp"

int main() {
  using p2ps::core::PeerId;
  using p2ps::util::SimTime;

  p2ps::sim::Simulator simulator;
  p2ps::sim::TimerService timers(simulator);
  p2ps::net::MailboxConfig net;
  net.latency.min = SimTime::millis(20);
  net.latency.max = SimTime::millis(120);
  net.drop_probability = 0.05;  // 5% message loss
  p2ps::net::MessageTransport transport(simulator, net, p2ps::util::Rng(1));

  // Five supplying peers of mixed classes come online.
  const p2ps::core::PeerClass classes[] = {1, 2, 2, 3, 3};
  std::vector<std::unique_ptr<p2ps::net::SupplierEndpoint>> suppliers;
  std::vector<p2ps::lookup::CandidateInfo> candidates;
  for (std::uint64_t i = 0; i < std::size(classes); ++i) {
    p2ps::net::SupplierEndpoint::Config config;
    config.num_classes = 4;
    suppliers.push_back(std::make_unique<p2ps::net::SupplierEndpoint>(
        PeerId{i}, classes[i], config, timers, transport,
        p2ps::util::Rng(100 + i)));
    candidates.push_back({PeerId{i}, classes[i]});
    std::cout << "supplier Ps" << i << " online (class " << classes[i]
              << ", offers R0/" << (1 << classes[i]) << ")\n";
  }

  std::cout << "\nrequester Pr (class 2) probes all " << candidates.size()
            << " candidates over the network (20-120 ms latency, 5% loss)...\n";

  p2ps::net::AsyncAdmissionAttempt::Result outcome;
  p2ps::net::AsyncAdmissionAttempt attempt(
      PeerId{50}, /*own_class=*/2, p2ps::core::SessionId{1}, candidates, {},
      simulator, transport, [&](const auto& result) { outcome = result; });
  attempt.start();
  simulator.run();

  std::cout << "responses received: " << outcome.responses << " of "
            << candidates.size() << '\n';
  if (!outcome.admitted) {
    std::cout << "rejected this round (reminders left: " << outcome.reminders_left
              << ") — a real requester would back off "
              << "T_bkf and retry.\n";
    return 0;
  }

  std::cout << "admitted! session suppliers:";
  for (const auto& supplier : outcome.suppliers) {
    std::cout << " Ps" << supplier.id.value() << "(c" << supplier.cls << ")";
  }
  std::cout << "\nOTS_p2p buffering delay: " << outcome.buffering_delay_dt
            << " x dt (= number of suppliers, Theorem 1)\n";

  // Stream for the show time, then tear down: suppliers update their
  // admission-probability vectors per the session-end rules.
  simulator.run_until(simulator.now() + SimTime::minutes(60));
  for (const auto& supplier : outcome.suppliers) {
    suppliers[supplier.id.value()]->end_session();
  }
  std::cout << "session complete after 60 simulated minutes; suppliers idle "
               "again.\n";
  std::cout << "transport stats: sent=" << transport.sent()
            << " delivered=" << transport.delivered()
            << " dropped=" << transport.dropped() << '\n';
  return 0;
}
