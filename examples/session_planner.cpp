// Session planner — use OTS_p2p directly to plan one streaming session.
//
// Pass the supplier classes on the command line (offers are R0/2^class and
// must sum to exactly R0); prints the optimal segment assignment, an ASCII
// transmission/playback timeline like the paper's Figure 1, and compares
// with the naive contiguous assignment.
//
//   ./examples/session_planner 1 2 3 3
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/ots.hpp"
#include "core/session_runtime.hpp"
#include "util/assert.hpp"

namespace {

using p2ps::core::PeerClass;
using p2ps::core::SegmentAssignment;
using p2ps::util::SimTime;

void print_timeline(const SegmentAssignment& assignment) {
  const std::int64_t window = assignment.window_size();
  // One row per supplier: when each assigned segment finishes transmitting.
  for (std::size_t i = 0; i < assignment.supplier_count(); ++i) {
    const auto segments = assignment.segments_of(i);
    std::string row(static_cast<std::size_t>(window) * 3, ' ');
    for (std::size_t j = 0; j < segments.size(); ++j) {
      const auto finish =
          assignment.finish_time(i, j, SimTime::seconds(1)).as_millis() / 1000;
      const auto column = static_cast<std::size_t>(finish - 1) * 3;
      const std::string label = std::to_string(segments[j]);
      for (std::size_t k = 0; k < label.size() && column + k < row.size(); ++k) {
        row[column + k] = label[k];
      }
    }
    std::cout << "  Ps" << (i + 1) << " |" << row << "|\n";
  }
  std::cout << "       ";
  for (std::int64_t t = 1; t <= window; ++t) {
    std::string tick = std::to_string(t);
    tick.resize(3, ' ');
    std::cout << tick;
  }
  std::cout << " (time, x dt; numbers show segment completion)\n";
}

void describe(const std::string& name, const SegmentAssignment& assignment) {
  std::cout << '\n' << name << ":\n";
  for (std::size_t i = 0; i < assignment.supplier_count(); ++i) {
    std::cout << "  Ps" << (i + 1) << " (class " << assignment.supplier_class(i)
              << ", offer R0/" << (1 << assignment.supplier_class(i)) << "): segments";
    for (std::int64_t s : assignment.segments_of(i)) std::cout << ' ' << s;
    std::cout << '\n';
  }
  print_timeline(assignment);
  std::cout << "  buffering delay: " << assignment.min_buffering_delay_dt()
            << " x dt\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<PeerClass> classes;
  for (int i = 1; i < argc; ++i) {
    classes.push_back(static_cast<PeerClass>(std::atoi(argv[i])));
  }
  if (classes.empty()) classes = {1, 2, 3, 3};  // the paper's Figure 1 set

  std::cout << "Planning a session with " << classes.size() << " suppliers (classes:";
  for (PeerClass c : classes) std::cout << ' ' << c;
  std::cout << ")\n";

  if (!p2ps::core::offers_sum_to_r0(classes)) {
    const auto total = p2ps::core::total_offer(classes);
    std::cerr << "error: offers sum to " << total.as_fraction_of_r0()
              << " x R0 — OTS_p2p requires exactly 1 x R0.\n"
              << "hint: class c contributes R0/2^c; e.g. \"1 2 3 3\" or \"1 1\".\n";
    return 1;
  }

  describe("OTS_p2p (optimal)", p2ps::core::ots_assignment(classes));
  describe("Contiguous baseline", p2ps::core::contiguous_assignment(classes));

  std::cout << "\nTheorem 1: minimum possible delay = N x dt = " << classes.size()
            << " x dt. OTS_p2p achieves it.\n";

  // Prove it live: execute a 3-window session on the event loop at exactly
  // the Theorem-1 delay and report playback health.
  const auto n = static_cast<std::int64_t>(classes.size());
  p2ps::sim::Simulator simulator;
  p2ps::core::TransmissionPlan plan(
      p2ps::media::MediaFile(
          3 * p2ps::core::assignment_window(classes), SimTime::seconds(1)),
      p2ps::core::ots_assignment(classes));
  p2ps::core::SessionRuntime runtime(simulator, std::move(plan),
                                     SimTime::seconds(1) * n);
  runtime.start();
  simulator.run();
  const auto& report = runtime.report();
  std::cout << "\nExecuted a 3-window session at delay " << n << " x dt: "
            << report.segments_played << " segments played, " << report.stalls
            << " stalls" << (report.stall_free() ? " — continuous playback." : "!")
            << '\n';
  return 0;
}
