// Trace explorer — follow individual peers through the protocol.
//
// Runs a small community with tracing enabled and prints (a) the complete
// journey of one late-arriving low-class peer (the interesting case: it
// gets rejected a few times, leaves reminders, backs off, and finally turns
// supplier) and (b) a histogram of all protocol events.
//
//   ./examples/trace_explorer [peer-id]
#include <cstdlib>
#include <iostream>

#include "engine/streaming_system.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using p2ps::util::SimTime;

  p2ps::engine::SimulationConfig config;
  config.population.seeds = 5;
  config.population.requesters = 300;
  config.pattern = p2ps::workload::ArrivalPattern::kBurstThenConstant;
  config.arrival_window = SimTime::hours(12);
  config.horizon = SimTime::hours(24);
  config.trace_capacity = 1'000'000;
  config.seed = 3;

  p2ps::engine::StreamingSystem system(config);
  const auto result = system.run();
  const auto* trace = system.trace();

  std::cout << "Ran " << result.events_executed << " events; trace retained "
            << trace->size() << " protocol records.\n\n";

  // Pick a peer that was rejected at least twice (or honor argv[1]).
  p2ps::core::PeerId chosen = p2ps::core::PeerId::invalid();
  if (argc > 1) {
    chosen = p2ps::core::PeerId{static_cast<std::uint64_t>(std::atoll(argv[1]))};
  } else {
    for (std::uint64_t id = 5; id < 305; ++id) {
      std::size_t rejections = 0;
      for (const auto& event : trace->journey(p2ps::core::PeerId{id})) {
        rejections += (event.kind == p2ps::engine::TraceKind::kRejection);
      }
      if (rejections >= 2) {
        chosen = p2ps::core::PeerId{id};
        break;
      }
    }
  }

  if (chosen.valid()) {
    std::cout << "Journey of peer " << chosen.value() << ":\n";
    for (const auto& event : trace->journey(chosen)) {
      std::cout << "  " << event << '\n';
    }
  } else {
    std::cout << "(no peer with >=2 rejections in this run)\n";
  }

  std::cout << "\nProtocol event histogram:\n";
  p2ps::util::TextTable table({"event", "count"});
  using K = p2ps::engine::TraceKind;
  for (K kind : {K::kFirstRequest, K::kAttempt, K::kRejection, K::kAdmission,
                 K::kSessionEnd, K::kBecameSupplier, K::kIdleElevation}) {
    table.new_row()
        .add_cell(std::string(p2ps::engine::to_string(kind)))
        .add_cell(static_cast<long long>(trace->count(kind)));
  }
  table.print(std::cout);

  std::cout << "\nEvery journey reads: first-request, (attempt/rejection)*, "
               "attempt+admission,\nsession-end, became-supplier — the "
               "paper's peer life cycle, observable.\n";
  return 0;
}
