#!/usr/bin/env python3
"""Validate a p2ps_run --telemetry JSONL stream.

Schema (docs/observability.md): every line is one JSON object. All but the
last are {"type":"snapshot"} records with strictly increasing "seq"
starting at 1 and nondecreasing "sim_ms"/"wall_ms"; the last line is the
single {"type":"summary"} record whose "snapshots" count matches the
number of snapshot lines. Metric values are integers or histogram objects
{count,sum,bounds,counts} with len(counts) == len(bounds) + 1.

Usage: check_telemetry.py FILE.jsonl [--min-snapshots N]
Exit 0 when valid, 1 with a diagnostic on the first violation.

Stdlib only — the repo bakes in no third-party Python.
"""
import argparse
import json
import sys


def fail(line_no: int, message: str) -> None:
    print(f"check_telemetry: line {line_no}: {message}", file=sys.stderr)
    sys.exit(1)


def check_metrics(line_no: int, record: dict) -> None:
    metrics = record.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        fail(line_no, "missing or empty 'metrics' object")
    for name, value in metrics.items():
        if isinstance(value, int):
            continue
        if isinstance(value, dict):
            for key in ("count", "sum", "bounds", "counts"):
                if key not in value:
                    fail(line_no, f"histogram '{name}' missing '{key}'")
            if len(value["counts"]) != len(value["bounds"]) + 1:
                fail(line_no, f"histogram '{name}' bucket/bound size mismatch")
            if sum(value["counts"]) != value["count"]:
                fail(line_no, f"histogram '{name}' counts do not sum to count")
            continue
        fail(line_no, f"metric '{name}' is neither integer nor histogram")


def check_phases(line_no: int, record: dict) -> None:
    phases = record.get("phases")
    if phases is None:
        return  # session engines have no profiler
    if not isinstance(phases, dict):
        fail(line_no, "'phases' is not an object")
    for key in ("step_ms_per_shard", "step_ms", "route_drain_ms",
                "barrier_ms", "merge_ms", "imbalance",
                "unit_windows", "fused_windows", "fused_sub_windows"):
        if key not in phases:
            fail(line_no, f"'phases' missing '{key}'")
        if key == "step_ms_per_shard":
            if not isinstance(phases[key], list) or not phases[key]:
                fail(line_no, "'step_ms_per_shard' is not a non-empty array")
        elif not isinstance(phases[key], (int, float)):
            fail(line_no, f"'phases.{key}' is not a number")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", help="telemetry JSONL file")
    parser.add_argument("--min-snapshots", type=int, default=1,
                        help="require at least N snapshot records")
    args = parser.parse_args()

    snapshots = 0
    summary = None
    prev_seq = 0
    prev_sim_ms = -1
    prev_wall_ms = -1
    with open(args.file, encoding="utf-8") as stream:
        for line_no, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                fail(line_no, "blank line inside the stream")
            if summary is not None:
                fail(line_no, "record after the summary")
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                fail(line_no, f"invalid JSON: {error}")
            kind = record.get("type")
            if kind == "snapshot":
                snapshots += 1
                for key in ("seq", "sim_ms", "wall_ms", "rss_bytes"):
                    if not isinstance(record.get(key), int):
                        fail(line_no, f"snapshot missing integer '{key}'")
                if record["seq"] != prev_seq + 1:
                    fail(line_no, f"seq {record['seq']} after {prev_seq}")
                if record["sim_ms"] < prev_sim_ms:
                    fail(line_no, "sim_ms went backwards")
                if record["wall_ms"] < prev_wall_ms:
                    fail(line_no, "wall_ms went backwards")
                prev_seq = record["seq"]
                prev_sim_ms = record["sim_ms"]
                prev_wall_ms = record["wall_ms"]
                check_metrics(line_no, record)
                check_phases(line_no, record)
                watchdog = record.get("watchdog")
                if watchdog is not None and (
                        not isinstance(watchdog, list) or not watchdog):
                    fail(line_no, "'watchdog' present but not a non-empty array")
            elif kind == "summary":
                for key in ("snapshots", "watchdog_trips", "sim_ms",
                            "wall_ms", "rss_bytes"):
                    if not isinstance(record.get(key), int):
                        fail(line_no, f"summary missing integer '{key}'")
                check_metrics(line_no, record)
                check_phases(line_no, record)
                summary = record
            else:
                fail(line_no, f"unknown record type {kind!r}")

    if summary is None:
        fail(0, "no summary record (stream truncated?)")
    if summary["snapshots"] != snapshots:
        fail(0, f"summary claims {summary['snapshots']} snapshots, "
                f"stream has {snapshots}")
    if snapshots < args.min_snapshots:
        fail(0, f"only {snapshots} snapshots, need >= {args.min_snapshots}")
    print(f"check_telemetry: OK — {snapshots} snapshots + summary")


if __name__ == "__main__":
    main()
