#!/usr/bin/env bash
# CI entry point: tier-1 verify (configure + build + ctest) followed by a
# deterministic smoke pass of `p2ps_run` over every registered scenario.
#
# Usage: scripts/ci.sh [build-dir]
#   P2PS_CI_SEED   seed for the scenario smoke pass (default 2002)
#   P2PS_CI_SCALE  population divisor for the smoke pass (default 10)
#   P2PS_SANITIZE  opt-in sanitizer pass: 'address' or 'undefined'. The
#                  whole tier-1 + smoke run repeats under the instrumented
#                  build; use a dedicated build dir (sanitizer flags are
#                  cached). RSS-budget checks are skipped — sanitized RSS
#                  is not comparable to production RSS.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
seed="${P2PS_CI_SEED:-2002}"
scale="${P2PS_CI_SCALE:-10}"
sanitize="${P2PS_SANITIZE:-}"

if [ -n "${sanitize}" ]; then
  echo "==> tier-1: configure (warnings are errors, -fsanitize=${sanitize})"
else
  echo "==> tier-1: configure (warnings are errors)"
fi
cmake -B "${build_dir}" -S "${repo_root}" -DP2PS_WERROR=ON \
    -DP2PS_SANITIZE="${sanitize}"

echo "==> tier-1: build"
cmake --build "${build_dir}" -j "$(nproc)"

echo "==> tier-1: ctest"
# (cd …) rather than ctest --test-dir: the latter needs CTest >= 3.17 and
# the project supports CMake 3.16.
(cd "${build_dir}" && ctest --output-on-failure -j "$(nproc)")

runner="${build_dir}/src/p2ps_run"
echo "==> scenario smoke pass (seed=${seed}, scale=${scale})"
"${runner}" --list

smoke_dir="$(mktemp -d)"
trap 'rm -rf "${smoke_dir}"' EXIT

# Every registered scenario must run cleanly and be byte-deterministic.
scenarios="$("${runner}" --list | awk '/^[a-z]/ {print $1}')"
count=0
for scenario in ${scenarios}; do
  echo "--- ${scenario}"
  "${runner}" "${scenario}" --seed "${seed}" --scale "${scale}" --compact \
      > "${smoke_dir}/${scenario}.1.json"
  "${runner}" "${scenario}" --seed "${seed}" --scale "${scale}" --compact \
      > "${smoke_dir}/${scenario}.2.json"
  cmp "${smoke_dir}/${scenario}.1.json" "${smoke_dir}/${scenario}.2.json" || {
    echo "FAIL: ${scenario} is not deterministic for seed ${seed}" >&2
    exit 1
  }
  count=$((count + 1))
done

# Guard against the list-scrape silently matching nothing: the registry is
# contractually >= 10 scenarios (see ISSUE/README acceptance).
if [ "${count}" -lt 10 ]; then
  echo "FAIL: smoke pass covered only ${count} scenarios (expected >= 10);" \
       "--list output format may have drifted from the awk scrape" >&2
  exit 1
fi

# Perf smoke: the bench path (perf scenarios + --event-list) must not rot.
# A small-scale fixed-seed perf run has to be byte-identical across both
# event-list backends — the same check bench.sh performs before it trusts
# a timing at full scale. The heap-backend output was already produced
# (and determinism-checked) by the smoke loop above, so only the calendar
# run is new work.
echo "==> perf smoke: event-list backend parity (seed=${seed}, scale=${scale})"
for perf_scenario in perf_steady perf_flash_crowd; do
  "${runner}" "${perf_scenario}" --seed "${seed}" --scale "${scale}" --compact \
      --event-list calendar > "${smoke_dir}/${perf_scenario}.calendar.json"
  cmp "${smoke_dir}/${perf_scenario}.1.json" \
      "${smoke_dir}/${perf_scenario}.calendar.json" || {
    echo "FAIL: ${perf_scenario} differs between event-list backends" >&2
    exit 1
  }
  grep -q '"events_executed":[1-9]' "${smoke_dir}/${perf_scenario}.1.json" || {
    echo "FAIL: ${perf_scenario} executed no events" >&2
    exit 1
  }
done

# Message smoke: the batched mailbox transport's parity contracts on the
# message-level paper-scale scenario. msg_fig5_scale must be byte-identical
# across both event-list backends AND across batched/unbatched delivery —
# the transport mode is pure mechanics (docs/message_batching.md). The
# heap/batched output was already produced by the smoke loop above.
echo "==> message smoke: msg_fig5_scale backend + transport parity (seed=${seed}, scale=${scale})"
"${runner}" msg_fig5_scale --seed "${seed}" --scale "${scale}" --compact \
    --event-list calendar > "${smoke_dir}/msg_fig5_scale.calendar.json"
cmp "${smoke_dir}/msg_fig5_scale.1.json" \
    "${smoke_dir}/msg_fig5_scale.calendar.json" || {
  echo "FAIL: msg_fig5_scale differs between event-list backends" >&2
  exit 1
}
"${runner}" msg_fig5_scale --seed "${seed}" --scale "${scale}" --compact \
    --transport unbatched > "${smoke_dir}/msg_fig5_scale.unbatched.json"
cmp "${smoke_dir}/msg_fig5_scale.1.json" \
    "${smoke_dir}/msg_fig5_scale.unbatched.json" || {
  echo "FAIL: msg_fig5_scale differs between batched and unbatched transport" >&2
  exit 1
}

# Sweep smoke: a small multi-threaded parameter study (4 points, 2 threads)
# must produce byte-identical reports run-to-run and across thread counts —
# the determinism contract of `p2ps_run --sweep`.
echo "==> sweep smoke: 4 points, --threads 2 vs --threads 1 (seed axis 1,2)"
"${runner}" --sweep flash_crowd,churn_resilience --seeds 1,2 \
    --scales "${scale}" --threads 2 --compact > "${smoke_dir}/sweep.2t.json"
"${runner}" --sweep flash_crowd,churn_resilience --seeds 1,2 \
    --scales "${scale}" --threads 1 --compact > "${smoke_dir}/sweep.1t.json"
cmp "${smoke_dir}/sweep.2t.json" "${smoke_dir}/sweep.1t.json" || {
  echo "FAIL: sweep report differs between --threads 2 and --threads 1" >&2
  exit 1
}
grep -q '"points":4' "${smoke_dir}/sweep.2t.json" || {
  echo "FAIL: sweep smoke did not cover 4 points" >&2
  exit 1
}

# Latency-axis smoke: the sweep's message-level axis must expand the cross
# product deterministically and reject junk tokens with a CLI error (the
# same fail-fast validation the integer axes got in PR 3).
echo "==> latency-axis smoke: msg_flash_crowd x {fixed,twoclass}"
"${runner}" --sweep msg_flash_crowd --latencies fixed,twoclass \
    --scales "${scale}" --threads 2 --compact > "${smoke_dir}/latency.2t.json"
"${runner}" --sweep msg_flash_crowd --latencies fixed,twoclass \
    --scales "${scale}" --threads 1 --compact > "${smoke_dir}/latency.1t.json"
cmp "${smoke_dir}/latency.2t.json" "${smoke_dir}/latency.1t.json" || {
  echo "FAIL: latency sweep differs between --threads 2 and --threads 1" >&2
  exit 1
}
grep -q '"points":2' "${smoke_dir}/latency.2t.json" || {
  echo "FAIL: latency sweep did not cover 2 points" >&2
  exit 1
}
grep -q '"latency":"twoclass"' "${smoke_dir}/latency.2t.json" || {
  echo "FAIL: latency sweep report does not echo the latency axis" >&2
  exit 1
}
if "${runner}" --sweep msg_flash_crowd --latencies warp --scales "${scale}" \
    --compact > /dev/null 2>&1; then
  echo "FAIL: --latencies accepted an invalid model token" >&2
  exit 1
fi

# Timer smoke: the TimerService strategy is pure event-core mechanics, so
# one session-level and one message-level scenario must emit identical
# payloads under all three --timers strategies once the mechanics counters
# are normalized away. The normalizer is the binary's own --strip-mechanics
# filter (scenario::strip_event_mechanics over the shared
# obs::mechanics_schema table), so CI and the parity tests zero exactly the
# same key set by construction — a new mechanics counter added to the
# schema is stripped here automatically (docs/observability.md).
echo "==> timer smoke: fig5_admission_rate + msg_flash_crowd x {wheel,lazy,events}"
strip_mechanics() {
  "${runner}" --strip-mechanics
}
for timer_scenario in fig5_admission_rate msg_flash_crowd; do
  for strategy in wheel lazy events; do
    "${runner}" "${timer_scenario}" --seed "${seed}" --scale "${scale}" \
        --compact --timers "${strategy}" | strip_mechanics \
        > "${smoke_dir}/${timer_scenario}.${strategy}.json"
  done
  for strategy in lazy events; do
    cmp "${smoke_dir}/${timer_scenario}.wheel.json" \
        "${smoke_dir}/${timer_scenario}.${strategy}.json" || {
      echo "FAIL: ${timer_scenario} differs between --timers wheel and" \
           "--timers ${strategy}" >&2
      exit 1
    }
  done
done
if "${runner}" fig5_admission_rate --timers sundial --scale "${scale}" \
    --compact > /dev/null 2>&1; then
  echo "FAIL: --timers accepted an invalid strategy token" >&2
  exit 1
fi

# Loss-axis smoke: the sweep's --losses axis must expand deterministically,
# change the run (not just the echo), and reject junk or out-of-range
# tokens with a CLI error, like the other axes.
echo "==> loss-axis smoke: msg_flash_crowd x {0,0.5}"
"${runner}" --sweep msg_flash_crowd --losses 0,0.5 --scales "${scale}" \
    --threads 2 --compact > "${smoke_dir}/loss.2t.json"
"${runner}" --sweep msg_flash_crowd --losses 0,0.5 --scales "${scale}" \
    --threads 1 --compact > "${smoke_dir}/loss.1t.json"
cmp "${smoke_dir}/loss.2t.json" "${smoke_dir}/loss.1t.json" || {
  echo "FAIL: loss sweep differs between --threads 2 and --threads 1" >&2
  exit 1
}
grep -q '"loss":0.5' "${smoke_dir}/loss.2t.json" || {
  echo "FAIL: loss sweep report does not echo the loss axis" >&2
  exit 1
}
grep -q '"drop_probability":0.5' "${smoke_dir}/loss.2t.json" || {
  echo "FAIL: loss axis did not reach the transport config" >&2
  exit 1
}
for bad_loss in warp 1.5 0.5x; do
  if "${runner}" --sweep msg_flash_crowd --losses "${bad_loss}" \
      --scales "${scale}" --compact > /dev/null 2>&1; then
    echo "FAIL: --losses accepted invalid token '${bad_loss}'" >&2
    exit 1
  fi
done

# Policy smoke: the supplier-selection strategy layer. --policy/--policies
# must reject junk tokens with a CLI error, a non-default policy must run
# cleanly, and a --policies sweep must keep the thread-count byte-parity
# contract (randomized policies draw from their own named substream, so the
# pool cannot perturb them).
echo "==> policy smoke: --policy validation + {paper-dac,first-fit} sweep"
if "${runner}" flash_crowd --policy bogus --scale "${scale}" \
    --compact > /dev/null 2>&1; then
  echo "FAIL: --policy accepted an unknown policy token" >&2
  exit 1
fi
if "${runner}" --sweep flash_crowd --policies bogus --scales "${scale}" \
    --compact > /dev/null 2>&1; then
  echo "FAIL: --policies accepted an unknown policy token" >&2
  exit 1
fi
"${runner}" flash_crowd --seed "${seed}" --scale "${scale}" --compact \
    --policy reciprocity > "${smoke_dir}/policy.reciprocity.json"
grep -q '"scenario":"flash_crowd"' "${smoke_dir}/policy.reciprocity.json" || {
  echo "FAIL: --policy reciprocity run produced no envelope" >&2
  exit 1
}
"${runner}" --sweep flash_crowd --policies paper-dac,first-fit \
    --scales "${scale}" --threads 2 --compact > "${smoke_dir}/policy.2t.json"
"${runner}" --sweep flash_crowd --policies paper-dac,first-fit \
    --scales "${scale}" --threads 1 --compact > "${smoke_dir}/policy.1t.json"
cmp "${smoke_dir}/policy.2t.json" "${smoke_dir}/policy.1t.json" || {
  echo "FAIL: policy sweep differs between --threads 2 and --threads 1" >&2
  exit 1
}
grep -q '"policy":"first-fit"' "${smoke_dir}/policy.2t.json" || {
  echo "FAIL: policy sweep report does not echo the policy axis" >&2
  exit 1
}

# Shard smoke: the conservative-parallel engine's headline contract — a
# sharded scenario's payload is byte-identical for EVERY --shards and
# --shard-threads value (docs/sharding.md), and junk --shards tokens are
# rejected with the CLI usage error (exit 2) before any simulation runs.
# The default-shards output (.1.json, 4 shards) was already produced and
# determinism-checked by the smoke loop above.
echo "==> shard smoke: msg_fig5_sharded x {--shards 1, --shards 7 + threads}"
for bad_shards in banana 0 -3 2.5; do
  status=0
  "${runner}" msg_fig5_sharded --shards "${bad_shards}" --scale "${scale}" \
      --compact > /dev/null 2>&1 || status=$?
  if [ "${status}" -ne 2 ]; then
    echo "FAIL: --shards '${bad_shards}' exited ${status} (expected usage" \
         "error 2)" >&2
    exit 1
  fi
done
"${runner}" msg_fig5_sharded --seed "${seed}" --scale "${scale}" --compact \
    --shards 1 > "${smoke_dir}/msg_fig5_sharded.s1.json"
cmp "${smoke_dir}/msg_fig5_sharded.1.json" \
    "${smoke_dir}/msg_fig5_sharded.s1.json" || {
  echo "FAIL: msg_fig5_sharded differs between --shards 1 and the default" \
       "4 shards" >&2
  exit 1
}
"${runner}" msg_fig5_sharded --seed "${seed}" --scale "${scale}" --compact \
    --shards 7 --shard-threads 2 > "${smoke_dir}/msg_fig5_sharded.s7.json"
cmp "${smoke_dir}/msg_fig5_sharded.1.json" \
    "${smoke_dir}/msg_fig5_sharded.s7.json" || {
  echo "FAIL: msg_fig5_sharded differs between --shards 7 --shard-threads 2" \
       "and the default 4 shards" >&2
  exit 1
}
grep -q '"mechanics"' "${smoke_dir}/msg_fig5_sharded.1.json" && {
  echo "FAIL: sharded payload leaked mechanics without --mechanics" >&2
  exit 1
}

# Fusion smoke: adaptive-lookahead window fusion is byte-invisible
# (docs/sharding.md, "Adaptive lookahead") — the unfused reference mode
# --fusion 1 must match the fused default byte-for-byte, a fused
# --mechanics run must actually fuse (windows_fused > 0), and junk
# --fusion tokens are rejected with the usage error before any run.
echo "==> fusion smoke: msg_fig5_sharded --fusion 1 vs fused default"
for bad_fusion in banana 0 -3 2.5; do
  status=0
  "${runner}" msg_fig5_sharded --fusion "${bad_fusion}" --scale "${scale}" \
      --compact > /dev/null 2>&1 || status=$?
  if [ "${status}" -ne 2 ]; then
    echo "FAIL: --fusion '${bad_fusion}' exited ${status} (expected usage" \
         "error 2)" >&2
    exit 1
  fi
done
"${runner}" msg_fig5_sharded --seed "${seed}" --scale "${scale}" --compact \
    --fusion 1 > "${smoke_dir}/msg_fig5_sharded.f1.json"
cmp "${smoke_dir}/msg_fig5_sharded.1.json" \
    "${smoke_dir}/msg_fig5_sharded.f1.json" || {
  echo "FAIL: msg_fig5_sharded differs between --fusion 1 and the fused" \
       "default" >&2
  exit 1
}
"${runner}" msg_fig5_sharded --seed "${seed}" --scale "${scale}" --compact \
    --mechanics > "${smoke_dir}/msg_fig5_sharded.fused_mechanics.json"
grep -q '"windows_fused":[1-9]' \
    "${smoke_dir}/msg_fig5_sharded.fused_mechanics.json" || {
  echo "FAIL: the fused default reported no fused windows (windows_fused)" >&2
  exit 1
}

# Memory smoke: the compact-peer-state budget (docs/memory.md). A 1/10th
# perf_sharded_10m run (1,002,000 peers — the PR-7 headline population)
# must stay under a peak RSS only the hot/cold split can meet: the AoS
# LocalPeer engine measured 165 MB here (BENCH_7), the compact layout
# ~48 MB, so a 128 MB ceiling fails any regression back to fat per-peer
# records long before the 10M bench would. Skipped under sanitizers:
# shadow memory and redzones inflate RSS by design.
if [ -z "${sanitize}" ]; then
  rss_budget_bytes=$(( 128 * 1024 * 1024 ))
  echo "==> memory smoke: perf_sharded_10m --scale 10 peak RSS <= ${rss_budget_bytes}"
  "${runner}" perf_sharded_10m --seed "${seed}" --scale 10 --compact \
      --mechanics > "${smoke_dir}/memory.json"
  rss="$(grep -o '"peak_rss_bytes":[0-9]*' "${smoke_dir}/memory.json" \
      | head -1 | cut -d: -f2)"
  if [ -z "${rss}" ] || [ "${rss}" -eq 0 ]; then
    echo "FAIL: memory smoke reported no peak_rss_bytes" >&2
    exit 1
  fi
  if [ "${rss}" -gt "${rss_budget_bytes}" ]; then
    echo "FAIL: perf_sharded_10m --scale 10 peak RSS ${rss} exceeds the" \
         "${rss_budget_bytes}-byte budget; the compact peer-state layout" \
         "has regressed (docs/memory.md)" >&2
    exit 1
  fi
  echo "    peak RSS ${rss} bytes (budget ${rss_budget_bytes})"
else
  echo "==> memory smoke: skipped under -fsanitize=${sanitize}"
fi

# Telemetry smoke: the runtime observability layer (docs/observability.md).
# A --telemetry run must (a) emit a schema-valid JSONL stream (validated by
# scripts/check_telemetry.py), (b) leave the scenario payload byte-identical
# to an uninstrumented run — telemetry is out-of-band by contract — and
# (c) reject junk flag spellings with the usage error (exit 2) like every
# other axis. The uninstrumented output (.1.json) was already produced and
# determinism-checked by the smoke loop above.
echo "==> telemetry smoke: msg_fig5_sharded --telemetry + schema check"
# 50 ms wall interval: a ~1 s smoke run yields a dozen-odd snapshots
# without the every-barrier flood interval 0 would produce.
"${runner}" msg_fig5_sharded --seed "${seed}" --scale "${scale}" --compact \
    --telemetry "${smoke_dir}/telemetry.jsonl" --telemetry-interval 50 \
    > "${smoke_dir}/msg_fig5_sharded.telemetry.json" \
    2> "${smoke_dir}/telemetry.stderr"
cmp "${smoke_dir}/msg_fig5_sharded.1.json" \
    "${smoke_dir}/msg_fig5_sharded.telemetry.json" || {
  echo "FAIL: msg_fig5_sharded payload differs with --telemetry attached" >&2
  exit 1
}
python3 "${repo_root}/scripts/check_telemetry.py" \
    "${smoke_dir}/telemetry.jsonl" --min-snapshots 1 || {
  echo "FAIL: telemetry stream failed the schema check" >&2
  exit 1
}
grep -q '\[telemetry\] snapshot' "${smoke_dir}/telemetry.stderr" || {
  echo "FAIL: --telemetry emitted no heartbeat lines" >&2
  exit 1
}
status=0
"${runner}" msg_fig5_sharded --scale "${scale}" --compact \
    --telemetri "${smoke_dir}/typo.jsonl" > /dev/null 2>&1 || status=$?
if [ "${status}" -ne 2 ]; then
  echo "FAIL: misspelled --telemetri exited ${status} (expected usage" \
       "error 2)" >&2
  exit 1
fi
status=0
"${runner}" msg_fig5_sharded --scale "${scale}" --compact \
    --telemetry-interval 100 > /dev/null 2>&1 || status=$?
if [ "${status}" -ne 2 ]; then
  echo "FAIL: --telemetry-interval without --telemetry exited ${status}" \
       "(expected usage error 2)" >&2
  exit 1
fi
status=0
"${runner}" msg_fig5_sharded --scale "${scale}" --compact \
    --telemetry "${smoke_dir}/wd.jsonl" --watchdog loud > /dev/null 2>&1 \
    || status=$?
if [ "${status}" -ne 2 ]; then
  echo "FAIL: --watchdog loud exited ${status} (expected usage error 2)" >&2
  exit 1
fi

echo "==> OK: build, tests, ${count}-scenario smoke pass, perf smoke," \
     "message smoke, sweep smoke, latency-axis smoke, timer smoke," \
     "loss-axis smoke, policy smoke, shard smoke, fusion smoke," \
     "memory smoke and telemetry smoke all green"
