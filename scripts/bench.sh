#!/usr/bin/env bash
# Throughput benchmark: runs the `perf` scenario family in a Release build
# and writes BENCH_<n>.json — one point on the repo's perf trajectory.
#
# Usage: scripts/bench.sh [build-dir] [out-file]
#   P2PS_BENCH_SEED    seed for the perf runs          (default 2002)
#   P2PS_BENCH_SCALE   population divisor              (default 1 = full)
#   P2PS_BENCH_REPS    timed repetitions per backend   (default 3, best-of)
#
# Output schema (BENCH_*.json):
#   scenario / seed / scale    the measured workload
#   events_executed            simulated events in one run (deterministic)
#   peak_peers                 population size of the workload
#   backends.{heap,calendar}   wall_ms (best-of-reps) and events_per_sec
#   events_per_sec             the headline number (best backend)
#
# Timing lives out here, not in the scenario JSON: scenario output must stay
# byte-deterministic so the two pre-timing runs below can verify the build
# (determinism + backend parity) before a number enters the trajectory.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_file="${2:-${repo_root}/BENCH_2.json}"
seed="${P2PS_BENCH_SEED:-2002}"
scale="${P2PS_BENCH_SCALE:-1}"
reps="${P2PS_BENCH_REPS:-3}"
scenario="perf_steady"

echo "==> configure + build (Release)"
cmake -B "${build_dir}" -S "${repo_root}" > /dev/null
build_type="$(grep -E '^CMAKE_BUILD_TYPE' "${build_dir}/CMakeCache.txt" | cut -d= -f2)"
if [ "${build_type}" != "Release" ] && [ "${build_type}" != "RelWithDebInfo" ]; then
  echo "FAIL: build dir '${build_dir}' is configured as '${build_type:-<empty>}';" \
       "benchmarks need an optimized build (delete the dir or pass another)" >&2
  exit 1
fi
cmake --build "${build_dir}" -j "$(nproc)" > /dev/null
runner="${build_dir}/src/p2ps_run"

tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

now_ms() { date +%s%N | sed 's/......$//'; }

echo "==> verify: determinism + backend parity (untimed)"
"${runner}" "${scenario}" --seed "${seed}" --scale "${scale}" --compact \
    --event-list heap > "${tmp_dir}/heap.json"
"${runner}" "${scenario}" --seed "${seed}" --scale "${scale}" --compact \
    --event-list calendar > "${tmp_dir}/calendar.json"
cmp "${tmp_dir}/heap.json" "${tmp_dir}/calendar.json" || {
  echo "FAIL: ${scenario} differs between event-list backends" >&2
  exit 1
}

events="$(grep -o '"events_executed":[0-9]*' "${tmp_dir}/heap.json" | head -1 | cut -d: -f2)"
peak_peers="$(grep -o '"population":[0-9]*' "${tmp_dir}/heap.json" | head -1 | cut -d: -f2)"

best_ms_heap=0
best_ms_calendar=0
for backend in heap calendar; do
  best=""
  for rep in $(seq "${reps}"); do
    start="$(now_ms)"
    "${runner}" "${scenario}" --seed "${seed}" --scale "${scale}" --compact \
        --event-list "${backend}" > /dev/null
    elapsed=$(( $(now_ms) - start ))
    echo "    ${scenario} ${backend} rep ${rep}: ${elapsed} ms"
    if [ -z "${best}" ] || [ "${elapsed}" -lt "${best}" ]; then best="${elapsed}"; fi
  done
  eval "best_ms_${backend}=${best}"
done

eps() { echo $(( $1 * 1000 / ($2 > 0 ? $2 : 1) )); }
eps_heap="$(eps "${events}" "${best_ms_heap}")"
eps_calendar="$(eps "${events}" "${best_ms_calendar}")"
headline=$(( eps_heap > eps_calendar ? eps_heap : eps_calendar ))

cat > "${out_file}" <<EOF
{
  "bench": "event-core throughput",
  "scenario": "${scenario}",
  "seed": ${seed},
  "scale": ${scale},
  "events_executed": ${events},
  "peak_peers": ${peak_peers},
  "backends": {
    "heap": {"wall_ms": ${best_ms_heap}, "events_per_sec": ${eps_heap}},
    "calendar": {"wall_ms": ${best_ms_calendar}, "events_per_sec": ${eps_calendar}}
  },
  "events_per_sec": ${headline}
}
EOF
echo "==> wrote ${out_file}: ${events} events, best ${headline} events/sec" \
     "(heap ${eps_heap}, calendar ${eps_calendar})"
