#!/usr/bin/env bash
# Throughput + event-list benchmark: runs the `perf` scenario family — now
# including the message-level `perf_messages` workload under all three
# TimerService strategies — plus a fig5-scale parameter study in a Release
# build and writes BENCH_<n>.json, one point on the repo's perf trajectory.
#
# Usage: scripts/bench.sh [build-dir] [out-file]
#   P2PS_BENCH_SEED    seed for the perf runs          (default 2002)
#   P2PS_BENCH_SCALE   population divisor              (default 1 = full)
#   P2PS_BENCH_REPS    timed repetitions per backend   (default 3, best-of)
#
# Output schema (BENCH_10.json):
#   host                       detected cores + CPU model: the context every
#                              wall-clock number below is meaningless without
#   sharded.thread_scaling     perf_sharded_scale --shards 8 timed at
#                              --shard-threads 1/2/4/8 (best-of-reps each):
#                              the wall-clock-only knob's scaling matrix —
#                              expect ~1x on a single-core container
#   sharded.windows_fused      the adaptive-lookahead dispatch split
#   sharded.directory_flushes  (docs/sharding.md, PR 10): dispatches vs
#                              absorbed sub-windows, mean sub-window span,
#                              and O(due-joins) directory publications —
#                              after a fusion-axis parity verify (fusion
#                              on/off x --shards 1/4/8, byte-identical)
#   telemetry                  perf_sharded_scale timed with --telemetry
#                              attached vs without: the observability
#                              layer's overhead gate (<= 3% wall clock,
#                              docs/observability.md), snapshot count
#                              (>= 10) and a schema check of the stream
#                              via scripts/check_telemetry.py — the PR-9
#                              headline
#   sharded_10m                perf_sharded_10m (10,020,000 peers, 8
#                              shards) after a full-scale --shards 1/4/8
#                              + --shard-threads byte-parity verify: wall
#                              clock, events/sec, peak RSS and bytes/peer
#                              (must be <= 48 — the compact peer-state
#                              acceptance gate, docs/memory.md) — the
#                              PR-8 headline
#   sharded                    perf_sharded_scale (1,002,000 peers, 8
#                              shards) after a full-scale --shards 1/4/8
#                              byte-parity verify: wall clock, total and
#                              per-shard events/sec, the largest per-shard
#                              peak event list, peak RSS and the window /
#                              cross-shard exchange counts — the PR-7
#                              headline (docs/sharding.md)
#   single_run                 perf_steady wall/events-per-sec per backend
#                              (best-of-reps; the PR-2 headline comparison)
#   peak_event_list            fig5-scale run: lazy peak vs the eager
#                              baseline, now with the timer/non-timer split
#   timers                     perf_messages under --timers events (the
#                              PR-4 event-per-timer baseline) vs wheel vs
#                              lazy: wall clock, events executed and the
#                              peak event list each strategy leaves — what
#                              the TimerService buys (docs/timers.md)
#   sweep                      8-point parameter study: serial vs
#                              multi-threaded wall clock on this host
#   cores                      detected cores (the >=3x sweep speedup
#                              acceptance applies on >=4-core hosts; on a
#                              single-core container expect ~1x and read
#                              only the best-of single-run numbers)
#
# Timing lives out here, not in the scenario JSON: scenario output must stay
# byte-deterministic so the pre-timing runs below can verify the build
# (determinism + backend parity + transport parity + thread-count parity)
# before a number enters the trajectory.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_file="${2:-${repo_root}/BENCH_10.json}"
seed="${P2PS_BENCH_SEED:-2002}"
scale="${P2PS_BENCH_SCALE:-1}"
reps="${P2PS_BENCH_REPS:-3}"
scenario="perf_steady"
cores="$(nproc)"
# Host context: every wall-clock number below is a property of this
# machine; record what it was. The model-name scrape tolerates absence
# (non-x86 /proc/cpuinfo layouts) rather than failing the bench.
cpu_model="$(awk -F': *' '/^model name/ {print $2; exit}' /proc/cpuinfo \
    2> /dev/null || true)"
cpu_model="${cpu_model:-unknown}"

echo "==> configure + build (Release)"
cmake -B "${build_dir}" -S "${repo_root}" > /dev/null
build_type="$(grep -E '^CMAKE_BUILD_TYPE' "${build_dir}/CMakeCache.txt" | cut -d= -f2)"
if [ "${build_type}" != "Release" ] && [ "${build_type}" != "RelWithDebInfo" ]; then
  echo "FAIL: build dir '${build_dir}' is configured as '${build_type:-<empty>}';" \
       "benchmarks need an optimized build (delete the dir or pass another)" >&2
  exit 1
fi
cmake --build "${build_dir}" -j "${cores}" > /dev/null
runner="${build_dir}/src/p2ps_run"

tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

now_ms() { date +%s%N | sed 's/......$//'; }

echo "==> verify: determinism + backend parity (untimed)"
"${runner}" "${scenario}" --seed "${seed}" --scale "${scale}" --compact \
    --event-list heap > "${tmp_dir}/heap.json"
"${runner}" "${scenario}" --seed "${seed}" --scale "${scale}" --compact \
    --event-list calendar > "${tmp_dir}/calendar.json"
cmp "${tmp_dir}/heap.json" "${tmp_dir}/calendar.json" || {
  echo "FAIL: ${scenario} differs between event-list backends" >&2
  exit 1
}

events="$(grep -o '"events_executed":[0-9]*' "${tmp_dir}/heap.json" | head -1 | cut -d: -f2)"
peak_peers="$(grep -o '"population":[0-9]*' "${tmp_dir}/heap.json" | head -1 | cut -d: -f2)"
steady_peak="$(grep -o '"peak_event_list":[0-9]*' "${tmp_dir}/heap.json" | head -1 | cut -d: -f2)"

echo "==> single-run timing (${reps} reps per backend, best-of)"
best_ms_heap=0
best_ms_calendar=0
for backend in heap calendar; do
  best=""
  for rep in $(seq "${reps}"); do
    start="$(now_ms)"
    "${runner}" "${scenario}" --seed "${seed}" --scale "${scale}" --compact \
        --event-list "${backend}" > /dev/null
    elapsed=$(( $(now_ms) - start ))
    echo "    ${scenario} ${backend} rep ${rep}: ${elapsed} ms"
    if [ -z "${best}" ] || [ "${elapsed}" -lt "${best}" ]; then best="${elapsed}"; fi
  done
  eval "best_ms_${backend}=${best}"
done

eps() { echo $(( $1 * 1000 / ($2 > 0 ? $2 : 1) )); }
eps_heap="$(eps "${events}" "${best_ms_heap}")"
eps_calendar="$(eps "${events}" "${best_ms_calendar}")"
headline=$(( eps_heap > eps_calendar ? eps_heap : eps_calendar ))

echo "==> peak event list on the fig5-scale run (lazy vs eager baseline)"
"${runner}" fig5_admission_rate --seed "${seed}" --scale "${scale}" --compact \
    > "${tmp_dir}/fig5.json"
# The payload emits the peak and its timer share adjacently; take both
# from the run (DAC or NDAC) whose peak is largest, so the reported pair
# is internally consistent.
read -r fig5_peak fig5_peak_timers <<< "$(grep -oE \
    '"peak_event_list":[0-9]+,"peak_event_list_timers":[0-9]+' \
    "${tmp_dir}/fig5.json" \
    | awk -F'[:,]' '$2 + 0 >= m { m = $2 + 0; t = $4 + 0 } END { print m, t }')"
# The eager baseline scheduled one event per requester at t=0: its peak was
# >= the requester population, read from the run's own counters (overall
# first_requests) so it tracks the scenario and the divisor's rounding.
eager_peak="$(grep -o '"first_requests":[0-9]*' "${tmp_dir}/fig5.json" \
    | cut -d: -f2 | sort -n | tail -1)"
peak_reduction=$(( fig5_peak > 0 ? eager_peak / fig5_peak : 0 ))

echo "==> message-level verify: msg_fig5_scale backend + transport + timer parity"
"${runner}" msg_fig5_scale --seed "${seed}" --scale "${scale}" --compact \
    > "${tmp_dir}/msg.batched.json"
"${runner}" msg_fig5_scale --seed "${seed}" --scale "${scale}" --compact \
    --event-list calendar > "${tmp_dir}/msg.calendar.json"
cmp "${tmp_dir}/msg.batched.json" "${tmp_dir}/msg.calendar.json" || {
  echo "FAIL: msg_fig5_scale differs between event-list backends" >&2
  exit 1
}
"${runner}" msg_fig5_scale --seed "${seed}" --scale "${scale}" --compact \
    --transport unbatched > "${tmp_dir}/msg.unbatched.json"
cmp "${tmp_dir}/msg.batched.json" "${tmp_dir}/msg.unbatched.json" || {
  echo "FAIL: msg_fig5_scale differs between batched and unbatched transport" >&2
  exit 1
}
# Timer strategies may only change the event-core mechanics counters
# (docs/timers.md); msg_* payloads carry none, so they compare whole.
for strategy in lazy events; do
  "${runner}" msg_fig5_scale --seed "${seed}" --scale "${scale}" --compact \
      --timers "${strategy}" > "${tmp_dir}/msg.${strategy}.json"
  cmp "${tmp_dir}/msg.batched.json" "${tmp_dir}/msg.${strategy}.json" || {
    echo "FAIL: msg_fig5_scale differs under --timers ${strategy}" >&2
    exit 1
  }
done

echo "==> timer-strategy timing: perf_messages x {events,wheel,lazy} (${reps} reps, best-of)"
for strategy in events wheel lazy; do
  "${runner}" perf_messages --seed "${seed}" --scale "${scale}" --compact \
      --timers "${strategy}" > "${tmp_dir}/perf_msg.${strategy}.json"
  best=""
  for rep in $(seq "${reps}"); do
    start="$(now_ms)"
    "${runner}" perf_messages --seed "${seed}" --scale "${scale}" --compact \
        --timers "${strategy}" > /dev/null
    elapsed=$(( $(now_ms) - start ))
    echo "    perf_messages ${strategy} rep ${rep}: ${elapsed} ms"
    if [ -z "${best}" ] || [ "${elapsed}" -lt "${best}" ]; then best="${elapsed}"; fi
  done
  eval "msg_best_ms_${strategy}=${best}"
  eval "msg_events_${strategy}=$(grep -o '"events_executed":[0-9]*' \
      "${tmp_dir}/perf_msg.${strategy}.json" | head -1 | cut -d: -f2)"
  eval "msg_peak_${strategy}=$(grep -o '"peak_event_list":[0-9]*' \
      "${tmp_dir}/perf_msg.${strategy}.json" | head -1 | cut -d: -f2)"
  eval "msg_peak_timers_${strategy}=$(grep -o '"peak_event_list_timers":[0-9]*' \
      "${tmp_dir}/perf_msg.${strategy}.json" | head -1 | cut -d: -f2)"
done
msg_sent="$(grep -o '"sent":[0-9]*' "${tmp_dir}/perf_msg.wheel.json" | head -1 | cut -d: -f2)"
timers_fired="$(grep -o '"timers_fired":[0-9]*' "${tmp_dir}/perf_msg.wheel.json" | head -1 | cut -d: -f2)"
msg_eps_events="$(eps "${msg_events_events}" "${msg_best_ms_events}")"
msg_eps_wheel="$(eps "${msg_events_wheel}" "${msg_best_ms_wheel}")"
msg_eps_lazy="$(eps "${msg_events_lazy}" "${msg_best_ms_lazy}")"
timer_peak_reduction=$(( msg_peak_wheel > 0 ? msg_peak_events / msg_peak_wheel : 0 ))
timer_speedup_x100=$(( msg_best_ms_wheel > 0 \
    ? msg_best_ms_events * 100 / msg_best_ms_wheel : 0 ))

# The sharded engine's full-scale acceptance gate: the merged
# perf_sharded_scale payload (1,002,000 peers at scale 1) must be
# byte-identical across the whole (fusion on/off) x (--shards 1/4/8)
# matrix before any sharded number enters the trajectory — window fusion
# is byte-invisible by construction (docs/sharding.md, "Adaptive
# lookahead"), and this is where that claim meets full scale. Mechanics
# stay off here so whole documents compare.
echo "==> sharded verify: perf_sharded_scale full-scale parity (fusion on/off x --shards 1/4/8)"
"${runner}" perf_sharded_scale --seed "${seed}" --scale "${scale}" --compact \
    --shards 8 > "${tmp_dir}/sharded.s8.json"
for shards in 1 4 8; do
  for fusion_args in "" "--fusion 1"; do
    # shards 8 + fused default is the reference itself; skip re-running it.
    if [ "${shards}" -eq 8 ] && [ -z "${fusion_args}" ]; then continue; fi
    # shellcheck disable=SC2086 — fusion_args is deliberately word-split
    "${runner}" perf_sharded_scale --seed "${seed}" --scale "${scale}" \
        --compact --shards "${shards}" ${fusion_args} \
        > "${tmp_dir}/sharded.variant.json"
    cmp "${tmp_dir}/sharded.s8.json" "${tmp_dir}/sharded.variant.json" || {
      echo "FAIL: perf_sharded_scale differs between the fused --shards 8" \
           "reference and --shards ${shards} ${fusion_args:-<fused default>}" >&2
      exit 1
    }
  done
done

echo "==> sharded timing: perf_sharded_scale --shards 8 (${reps} reps, best-of)"
"${runner}" perf_sharded_scale --seed "${seed}" --scale "${scale}" --compact \
    --shards 8 --mechanics > "${tmp_dir}/sharded.mech.json"
best=""
for rep in $(seq "${reps}"); do
  start="$(now_ms)"
  "${runner}" perf_sharded_scale --seed "${seed}" --scale "${scale}" \
      --compact --shards 8 > /dev/null
  elapsed=$(( $(now_ms) - start ))
  echo "    perf_sharded_scale rep ${rep}: ${elapsed} ms"
  if [ -z "${best}" ] || [ "${elapsed}" -lt "${best}" ]; then best="${elapsed}"; fi
done
sharded_best_ms="${best}"
sharded_population="$(grep -o '"population":[0-9]*' \
    "${tmp_dir}/sharded.mech.json" | head -1 | cut -d: -f2)"
# events_executed appears once per shard (the mechanics per_shard array).
sharded_events_list="$(grep -o '"events_executed":[0-9]*' \
    "${tmp_dir}/sharded.mech.json" | cut -d: -f2)"
sharded_events_total=0
for n in ${sharded_events_list}; do
  sharded_events_total=$(( sharded_events_total + n ))
done
sharded_peak_max="$(grep -o '"peak_event_list":[0-9]*' \
    "${tmp_dir}/sharded.mech.json" | cut -d: -f2 | sort -n | tail -1)"
sharded_rss="$(grep -o '"peak_rss_bytes":[0-9]*' \
    "${tmp_dir}/sharded.mech.json" | head -1 | cut -d: -f2)"
sharded_windows="$(grep -o '"windows":[0-9]*' \
    "${tmp_dir}/sharded.mech.json" | head -1 | cut -d: -f2)"
# The PR-10 mechanics: dispatches absorbed by window fusion, the mean
# sub-window span they covered, and how many times the membership
# directory actually published (O(due joins) epochs, not O(population)).
sharded_windows_fused="$(grep -o '"windows_fused":[0-9]*' \
    "${tmp_dir}/sharded.mech.json" | head -1 | cut -d: -f2)"
sharded_lookahead_avg_ms="$(grep -o '"lookahead_avg_ms":[0-9.]*' \
    "${tmp_dir}/sharded.mech.json" | head -1 | cut -d: -f2)"
sharded_directory_flushes="$(grep -o '"directory_flushes":[0-9]*' \
    "${tmp_dir}/sharded.mech.json" | head -1 | cut -d: -f2)"
sharded_cross="$(grep -o '"cross_shard_messages":[0-9]*' \
    "${tmp_dir}/sharded.mech.json" | head -1 | cut -d: -f2)"
sharded_eps_total="$(eps "${sharded_events_total}" "${sharded_best_ms}")"
sharded_per_shard_eps="$(for n in ${sharded_events_list}; do
  eps "${n}" "${sharded_best_ms}"
done | paste -sd, -)"

# The --shard-threads scaling matrix: the wall-clock-only knob timed at
# 1/2/4/8 workers (best-of-reps each). Threads never change bytes — the
# parity gates above hold for any count — so this is pure host context:
# on a single-core container expect ~1x and read it as such.
echo "==> sharded thread scaling: --shard-threads 1/2/4/8 (${reps} reps each, best-of)"
sharded_thread_scaling=""
for threads in 1 2 4 8; do
  best=""
  for rep in $(seq "${reps}"); do
    start="$(now_ms)"
    "${runner}" perf_sharded_scale --seed "${seed}" --scale "${scale}" \
        --compact --shards 8 --shard-threads "${threads}" > /dev/null
    elapsed=$(( $(now_ms) - start ))
    echo "    perf_sharded_scale --shard-threads ${threads} rep ${rep}: ${elapsed} ms"
    if [ -z "${best}" ] || [ "${elapsed}" -lt "${best}" ]; then best="${elapsed}"; fi
  done
  entry="{\"threads\": ${threads}, \"wall_ms\": ${best}}"
  sharded_thread_scaling="${sharded_thread_scaling:+${sharded_thread_scaling}, }${entry}"
done

# The PR-9 headline: telemetry must be out-of-band in wall clock too, not
# just in bytes. Re-time perf_sharded_scale with a live --telemetry stream
# (500 ms snapshots, so even a fast full-scale run delivers >= 10) and gate
# the overhead at 3% (docs/observability.md). Reps run as interleaved
# off/on pairs — best-of-off vs best-of-on from the same machine state —
# because a sequential layout lets cache/frequency warm-up masquerade as
# telemetry overhead. The payload must stay byte-identical with the sink
# attached and the stream must pass scripts/check_telemetry.py.
echo "==> telemetry overhead: perf_sharded_scale off/on interleaved (${reps} pairs, best-of)"
telemetry_file="${tmp_dir}/telemetry.jsonl"
telemetry_base_ms=""
telemetry_best_ms=""
for rep in $(seq "${reps}"); do
  start="$(now_ms)"
  "${runner}" perf_sharded_scale --seed "${seed}" --scale "${scale}" \
      --compact --shards 8 > /dev/null
  elapsed=$(( $(now_ms) - start ))
  echo "    perf_sharded_scale  -telemetry rep ${rep}: ${elapsed} ms"
  if [ -z "${telemetry_base_ms}" ] || [ "${elapsed}" -lt "${telemetry_base_ms}" ]; then
    telemetry_base_ms="${elapsed}"
  fi
  start="$(now_ms)"
  "${runner}" perf_sharded_scale --seed "${seed}" --scale "${scale}" \
      --compact --shards 8 --telemetry "${telemetry_file}" \
      --telemetry-interval 500 \
      > "${tmp_dir}/sharded.telemetry.json" 2> /dev/null
  elapsed=$(( $(now_ms) - start ))
  echo "    perf_sharded_scale  +telemetry rep ${rep}: ${elapsed} ms"
  if [ -z "${telemetry_best_ms}" ] || [ "${elapsed}" -lt "${telemetry_best_ms}" ]; then
    telemetry_best_ms="${elapsed}"
  fi
done
cmp "${tmp_dir}/sharded.s8.json" "${tmp_dir}/sharded.telemetry.json" || {
  echo "FAIL: perf_sharded_scale payload differs with --telemetry attached" >&2
  exit 1
}
telemetry_snapshots="$(grep -c '"type":"snapshot"' "${telemetry_file}")"
python3 "${repo_root}/scripts/check_telemetry.py" "${telemetry_file}" \
    --min-snapshots 1 || {
  echo "FAIL: telemetry stream failed the schema check" >&2
  exit 1
}
if [ "${scale}" -eq 1 ] && [ "${telemetry_snapshots}" -lt 10 ]; then
  echo "FAIL: full-scale perf_sharded_scale emitted only" \
       "${telemetry_snapshots} snapshots (expected >= 10 at the 500 ms" \
       "interval)" >&2
  exit 1
fi
telemetry_overhead_x100=$(( telemetry_base_ms > 0 \
    ? (telemetry_best_ms - telemetry_base_ms) * 10000 / telemetry_base_ms : 0 ))
if [ "${telemetry_best_ms}" -gt $(( telemetry_base_ms * 103 / 100 )) ]; then
  echo "FAIL: telemetry overhead $(( telemetry_overhead_x100 / 100 )).$((
      telemetry_overhead_x100 % 100 ))% exceeds the 3% gate" \
       "(${telemetry_base_ms} ms off -> ${telemetry_best_ms} ms on)" >&2
  exit 1
fi
echo "    off ${telemetry_base_ms} ms, on ${telemetry_best_ms} ms," \
     "${telemetry_snapshots} snapshots"

# The PR-8 headline: the ten-million-peer point. Full-scale byte-parity
# across --shards 1/4/8 plus a --shard-threads variant, then the memory
# numbers the compact peer-state campaign exists for — peak RSS and
# bytes/peer, gated at 48 when running at full scale (docs/memory.md).
# One timed rep by default (P2PS_BENCH_10M_REPS): a 10M run is minutes,
# and the byte-determinism verified above makes reps near-identical.
reps_10m="${P2PS_BENCH_10M_REPS:-1}"
echo "==> 10M verify: perf_sharded_10m full-scale parity (--shards 1/4/8 + threads)"
"${runner}" perf_sharded_10m --seed "${seed}" --scale "${scale}" --compact \
    --shards 8 > "${tmp_dir}/10m.s8.json"
for shards in 1 4; do
  "${runner}" perf_sharded_10m --seed "${seed}" --scale "${scale}" --compact \
      --shards "${shards}" > "${tmp_dir}/10m.s${shards}.json"
  cmp "${tmp_dir}/10m.s8.json" "${tmp_dir}/10m.s${shards}.json" || {
    echo "FAIL: perf_sharded_10m differs between --shards 8 and" \
         "--shards ${shards}" >&2
    exit 1
  }
done
"${runner}" perf_sharded_10m --seed "${seed}" --scale "${scale}" --compact \
    --shards 8 --shard-threads 4 > "${tmp_dir}/10m.s8t4.json"
cmp "${tmp_dir}/10m.s8.json" "${tmp_dir}/10m.s8t4.json" || {
  echo "FAIL: perf_sharded_10m differs between --shard-threads 1 and 4" >&2
  exit 1
}

echo "==> 10M timing: perf_sharded_10m --shards 8 (${reps_10m} reps, best-of)"
"${runner}" perf_sharded_10m --seed "${seed}" --scale "${scale}" --compact \
    --shards 8 --mechanics > "${tmp_dir}/10m.mech.json"
best=""
for rep in $(seq "${reps_10m}"); do
  start="$(now_ms)"
  "${runner}" perf_sharded_10m --seed "${seed}" --scale "${scale}" \
      --compact --shards 8 > /dev/null
  elapsed=$(( $(now_ms) - start ))
  echo "    perf_sharded_10m rep ${rep}: ${elapsed} ms"
  if [ -z "${best}" ] || [ "${elapsed}" -lt "${best}" ]; then best="${elapsed}"; fi
done
m10_best_ms="${best}"
m10_population="$(grep -o '"population":[0-9]*' \
    "${tmp_dir}/10m.mech.json" | head -1 | cut -d: -f2)"
m10_events_total=0
for n in $(grep -o '"events_executed":[0-9]*' "${tmp_dir}/10m.mech.json" \
    | cut -d: -f2); do
  m10_events_total=$(( m10_events_total + n ))
done
m10_rss="$(grep -o '"peak_rss_bytes":[0-9]*' \
    "${tmp_dir}/10m.mech.json" | head -1 | cut -d: -f2)"
m10_bytes_per_peer="$(grep -o '"bytes_per_peer":[0-9]*' \
    "${tmp_dir}/10m.mech.json" | head -1 | cut -d: -f2)"
m10_pool_allocs="$(grep -o '"pool_allocations":[0-9]*' \
    "${tmp_dir}/10m.mech.json" | head -1 | cut -d: -f2)"
m10_pool_reuses="$(grep -o '"pool_reuses":[0-9]*' \
    "${tmp_dir}/10m.mech.json" | head -1 | cut -d: -f2)"
m10_windows="$(grep -o '"windows":[0-9]*' \
    "${tmp_dir}/10m.mech.json" | head -1 | cut -d: -f2)"
m10_windows_fused="$(grep -o '"windows_fused":[0-9]*' \
    "${tmp_dir}/10m.mech.json" | head -1 | cut -d: -f2)"
m10_directory_flushes="$(grep -o '"directory_flushes":[0-9]*' \
    "${tmp_dir}/10m.mech.json" | head -1 | cut -d: -f2)"
m10_eps="$(eps "${m10_events_total}" "${m10_best_ms}")"
if [ "${scale}" -eq 1 ] && [ "${m10_bytes_per_peer}" -gt 48 ]; then
  echo "FAIL: perf_sharded_10m bytes/peer ${m10_bytes_per_peer} exceeds the" \
       "48-byte compact peer-state acceptance gate (docs/memory.md)" >&2
  exit 1
fi

# Interleaved serial/parallel pairs, best-of each, for the same reason the
# telemetry section interleaves: a sequential layout lets warm-up drift
# masquerade as a threading effect. --threads 1 takes the pool-free serial
# path (PR 10), so this also times that path against the worker pool.
echo "==> sweep: 8 points (perf_steady x 8 seeds, scale $((scale * 4))), serial vs ${cores} threads (${reps} pairs, best-of)"
sweep_args=(--sweep perf_steady --seeds 1,2,3,4,5,6,7,8
            --scales $(( scale * 4 )) --compact)
serial_ms=""
parallel_ms=""
for rep in $(seq "${reps}"); do
  start="$(now_ms)"
  "${runner}" "${sweep_args[@]}" --threads 1 > "${tmp_dir}/sweep.serial.json"
  elapsed=$(( $(now_ms) - start ))
  echo "    sweep serial   rep ${rep}: ${elapsed} ms"
  if [ -z "${serial_ms}" ] || [ "${elapsed}" -lt "${serial_ms}" ]; then
    serial_ms="${elapsed}"
  fi
  start="$(now_ms)"
  "${runner}" "${sweep_args[@]}" --threads "${cores}" > "${tmp_dir}/sweep.parallel.json"
  elapsed=$(( $(now_ms) - start ))
  echo "    sweep parallel rep ${rep}: ${elapsed} ms"
  if [ -z "${parallel_ms}" ] || [ "${elapsed}" -lt "${parallel_ms}" ]; then
    parallel_ms="${elapsed}"
  fi
done
cmp "${tmp_dir}/sweep.serial.json" "${tmp_dir}/sweep.parallel.json" || {
  echo "FAIL: sweep report differs between --threads 1 and --threads ${cores}" >&2
  exit 1
}
echo "    serial ${serial_ms} ms, ${cores}-thread ${parallel_ms} ms (best of ${reps})"
speedup_x100=$(( parallel_ms > 0 ? serial_ms * 100 / parallel_ms : 0 ))

cat > "${out_file}" <<EOF
{
  "bench": "adaptive-lookahead window fusion + O(due-joins) directory epochs",
  "scenario": "${scenario}",
  "seed": ${seed},
  "scale": ${scale},
  "cores": ${cores},
  "host": {"cores": ${cores}, "cpu_model": "${cpu_model}"},
  "events_executed": ${events},
  "peak_peers": ${peak_peers},
  "single_run": {
    "heap": {"wall_ms": ${best_ms_heap}, "events_per_sec": ${eps_heap}},
    "calendar": {"wall_ms": ${best_ms_calendar}, "events_per_sec": ${eps_calendar}},
    "peak_event_list": ${steady_peak}
  },
  "peak_event_list": {
    "scenario": "fig5_admission_rate",
    "eager_baseline": ${eager_peak},
    "lazy_peak": ${fig5_peak},
    "lazy_peak_timer_share": ${fig5_peak_timers},
    "reduction_factor": ${peak_reduction}
  },
  "timers": {
    "scenario": "perf_messages",
    "messages_sent": ${msg_sent},
    "timers_fired": ${timers_fired},
    "events": {
      "wall_ms": ${msg_best_ms_events},
      "events_executed": ${msg_events_events},
      "events_per_sec": ${msg_eps_events},
      "peak_event_list": ${msg_peak_events},
      "peak_event_list_timers": ${msg_peak_timers_events}
    },
    "wheel": {
      "wall_ms": ${msg_best_ms_wheel},
      "events_executed": ${msg_events_wheel},
      "events_per_sec": ${msg_eps_wheel},
      "peak_event_list": ${msg_peak_wheel},
      "peak_event_list_timers": ${msg_peak_timers_wheel}
    },
    "lazy": {
      "wall_ms": ${msg_best_ms_lazy},
      "events_executed": ${msg_events_lazy},
      "events_per_sec": ${msg_eps_lazy},
      "peak_event_list": ${msg_peak_lazy},
      "peak_event_list_timers": ${msg_peak_timers_lazy}
    },
    "peak_reduction_factor": ${timer_peak_reduction},
    "speedup_x100_events_to_wheel": ${timer_speedup_x100}
  },
  "telemetry": {
    "scenario": "perf_sharded_scale",
    "interval_ms": 500,
    "wall_ms_off": ${telemetry_base_ms},
    "wall_ms_on": ${telemetry_best_ms},
    "overhead_pct_x100": ${telemetry_overhead_x100},
    "overhead_gate_pct": 3,
    "snapshots": ${telemetry_snapshots},
    "payload_byte_identical": true,
    "stream_schema_checked": true
  },
  "sharded_10m": {
    "scenario": "perf_sharded_10m",
    "population": ${m10_population},
    "shards": 8,
    "parity_verified_shards": [1, 4, 8],
    "parity_verified_shard_threads": 4,
    "wall_ms": ${m10_best_ms},
    "events_executed_total": ${m10_events_total},
    "events_per_sec_total": ${m10_eps},
    "windows": ${m10_windows},
    "windows_fused": ${m10_windows_fused},
    "directory_flushes": ${m10_directory_flushes},
    "peak_rss_bytes": ${m10_rss},
    "bytes_per_peer": ${m10_bytes_per_peer},
    "bytes_per_peer_budget": 48,
    "pool_allocations": ${m10_pool_allocs},
    "pool_reuses": ${m10_pool_reuses}
  },
  "sharded": {
    "scenario": "perf_sharded_scale",
    "population": ${sharded_population},
    "shards": 8,
    "parity_verified_shards": [1, 4, 8],
    "parity_verified_fusion": [1, "default"],
    "wall_ms": ${sharded_best_ms},
    "events_executed_total": ${sharded_events_total},
    "events_per_sec_total": ${sharded_eps_total},
    "per_shard_events_per_sec": [${sharded_per_shard_eps}],
    "peak_event_list_max": ${sharded_peak_max},
    "peak_rss_bytes": ${sharded_rss},
    "windows": ${sharded_windows},
    "windows_fused": ${sharded_windows_fused},
    "lookahead_avg_ms": ${sharded_lookahead_avg_ms},
    "directory_flushes": ${sharded_directory_flushes},
    "cross_shard_messages": ${sharded_cross},
    "thread_scaling": [${sharded_thread_scaling}]
  },
  "sweep": {
    "points": 8,
    "reps": ${reps},
    "serial_wall_ms": ${serial_ms},
    "parallel_wall_ms": ${parallel_ms},
    "parallel_threads": ${cores},
    "speedup_x100": ${speedup_x100}
  },
  "events_per_sec": ${headline}
}
EOF
echo "==> wrote ${out_file}: ${events} events, best ${headline} events/sec" \
     "(heap ${eps_heap}, calendar ${eps_calendar});" \
     "fig5 peak ${fig5_peak} (${fig5_peak_timers} timers) vs eager" \
     "${eager_peak} (${peak_reduction}x);" \
     "timers: perf_messages peak ${msg_peak_events} (events) ->" \
     "${msg_peak_wheel} (wheel, ${timer_peak_reduction}x)," \
     "wall ${msg_best_ms_events}ms -> ${msg_best_ms_wheel}ms wheel /" \
     "${msg_best_ms_lazy}ms lazy;" \
     "sharded: ${sharded_population} peers / 8 shards, parity" \
     "fusion x 1/4/8 OK, ${sharded_events_total} events in" \
     "${sharded_best_ms}ms (${sharded_eps_total}/s)," \
     "${sharded_windows} dispatches + ${sharded_windows_fused} fused" \
     "(avg span ${sharded_lookahead_avg_ms}ms)," \
     "${sharded_directory_flushes} directory flushes," \
     "peak list ${sharded_peak_max}, RSS ${sharded_rss}B;" \
     "telemetry: ${telemetry_best_ms}ms on vs ${telemetry_base_ms}ms off" \
     "(overhead x100 = ${telemetry_overhead_x100}, gate 3%)," \
     "${telemetry_snapshots} snapshots;" \
     "10M: ${m10_population} peers / 8 shards, parity 1/4/8 + threads OK," \
     "${m10_events_total} events in ${m10_best_ms}ms (${m10_eps}/s)," \
     "${m10_directory_flushes} directory flushes," \
     "RSS ${m10_rss}B = ${m10_bytes_per_peer}B/peer (gate 48);" \
     "sweep ${serial_ms}ms serial -> ${parallel_ms}ms on ${cores} threads" \
     "(best of ${reps})"
