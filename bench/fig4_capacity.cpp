// Figure 4 — system capacity amplification: DAC_p2p vs NDAC_p2p over
// 144 hours, arrival patterns 2 and 4 (all four patterns printed).
#include <iostream>

#include "bench_util.hpp"

int main() {
  using p2ps::bench::paper_config;
  using p2ps::workload::ArrivalPattern;

  p2ps::bench::print_title(
      "Figure 4 — system capacity amplification (DAC_p2p vs NDAC_p2p)",
      "DAC_p2p grows capacity significantly faster, especially in the first "
      "72 h; by 144 h it reaches >= 95% of the all-suppliers maximum (7550)",
      "DAC column dominates NDAC at every hour during the arrival window; "
      "both flatten after 72 h when only retries remain");

  for (ArrivalPattern pattern :
       {ArrivalPattern::kRampUpDown, ArrivalPattern::kPeriodicBursts,
        ArrivalPattern::kConstant, ArrivalPattern::kBurstThenConstant}) {
    std::cout << "\n--- " << p2ps::workload::to_string(pattern) << " ---\n";
    const auto dac =
        p2ps::engine::StreamingSystem(paper_config(pattern, true)).run();
    const auto ndac =
        p2ps::engine::StreamingSystem(paper_config(pattern, false)).run();
    p2ps::bench::print_capacity_series(
        {{"DAC_p2p", &dac}, {"NDAC_p2p", &ndac}});

    const std::string figure =
        std::string("fig4_") + std::string(p2ps::workload::to_string(pattern));
    const auto dac_csv = p2ps::bench::maybe_export_csv(figure, "dac", dac);
    const auto ndac_csv = p2ps::bench::maybe_export_csv(figure, "ndac", ndac);
    if (!dac_csv.empty()) {
      p2ps::bench::maybe_export_capacity_plot(
          figure, {{"DAC_p2p", dac_csv}, {"NDAC_p2p", ndac_csv}});
    }
  }
  return 0;
}
