// Micro-benchmarks (google-benchmark) for the hot paths of the library:
// OTS assignment construction, event-queue throughput, lookup sampling and
// Chord routing, and a full small-scale simulation.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/ots.hpp"
#include "core/plan.hpp"
#include "core/selection.hpp"
#include "engine/streaming_system.hpp"
#include "lookup/chord.hpp"
#include "lookup/directory.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workload/zipf.hpp"

namespace {

using p2ps::core::PeerClass;

/// Supplier multiset with 2^(k-1) peers of class k... i.e. the widest
/// session for a given lowest class: one class-1 peer plus (2^(c-1))
/// class-c peers is awkward; instead use the uniform set: 2^c class-c
/// peers, which sums to R0 exactly.
std::vector<PeerClass> uniform_session(PeerClass c) {
  return std::vector<PeerClass>(static_cast<std::size_t>(1) << c, c);
}

void BM_OtsAssignment(benchmark::State& state) {
  const auto classes = uniform_session(static_cast<PeerClass>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(p2ps::core::ots_assignment(classes));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(classes.size()));
}
BENCHMARK(BM_OtsAssignment)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_OtsDelayComputation(benchmark::State& state) {
  const auto classes = uniform_session(static_cast<PeerClass>(state.range(0)));
  const auto assignment = p2ps::core::ots_assignment(classes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(assignment.min_buffering_delay_dt());
  }
}
BENCHMARK(BM_OtsDelayComputation)->Arg(2)->Arg(4)->Arg(8);

void BM_GreedySelection(benchmark::State& state) {
  p2ps::util::Rng rng(1);
  std::vector<PeerClass> classes;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    classes.push_back(static_cast<PeerClass>(1 + rng.uniform_below(4)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(p2ps::core::select_exact_cover(classes));
  }
}
BENCHMARK(BM_GreedySelection)->Arg(8)->Arg(32);

void BM_EventQueueScheduleExecute(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    p2ps::sim::Simulator simulator;
    p2ps::util::Rng rng(7);
    state.ResumeTiming();
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      simulator.schedule_at(
          p2ps::util::SimTime::millis(static_cast<std::int64_t>(rng.uniform_below(1'000'000))),
          [] {});
    }
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleExecute)->Arg(1'000)->Arg(100'000);

void BM_DirectorySampling(benchmark::State& state) {
  p2ps::lookup::DirectoryService directory;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    directory.register_supplier(p2ps::core::PeerId{static_cast<std::uint64_t>(i)},
                                static_cast<PeerClass>(1 + i % 4));
  }
  p2ps::util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        directory.candidates(8, rng, p2ps::core::PeerId::invalid()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_DirectorySampling)->Arg(1'000)->Arg(50'000);

void BM_ChordRoutedLookup(benchmark::State& state) {
  p2ps::lookup::ChordLookup chord;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    chord.register_supplier(p2ps::core::PeerId{static_cast<std::uint64_t>(i)}, 1);
  }
  p2ps::util::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chord.route(rng(), rng()));
  }
  state.counters["mean_hops"] = chord.stats().mean_hops();
}
BENCHMARK(BM_ChordRoutedLookup)->Arg(1'000)->Arg(10'000);

void BM_ChordCandidateQuery(benchmark::State& state) {
  p2ps::lookup::ChordLookup chord;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    chord.register_supplier(p2ps::core::PeerId{static_cast<std::uint64_t>(i)},
                            static_cast<PeerClass>(1 + i % 4));
  }
  p2ps::util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chord.candidates(8, rng, p2ps::core::PeerId::invalid()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_ChordCandidateQuery)->Arg(1'000)->Arg(10'000);

void BM_ZipfSampling(benchmark::State& state) {
  const p2ps::workload::ZipfDistribution zipf(
      static_cast<std::size_t>(state.range(0)), 1.0);
  p2ps::util::Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSampling)->Arg(100)->Arg(10'000);

void BM_TransmissionPlanBuild(benchmark::State& state) {
  const auto classes = uniform_session(4);  // 16 suppliers, window 16
  const p2ps::media::MediaFile file(state.range(0), p2ps::util::SimTime::seconds(1));
  const auto assignment = p2ps::core::ots_assignment(classes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p2ps::core::TransmissionPlan(file, assignment));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TransmissionPlanBuild)->Arg(3600);

void BM_FullSimulationSmall(benchmark::State& state) {
  for (auto _ : state) {
    p2ps::engine::SimulationConfig config;
    config.population.seeds = 10;
    config.population.requesters = static_cast<std::int64_t>(state.range(0));
    config.pattern = p2ps::workload::ArrivalPattern::kRampUpDown;
    config.arrival_window = p2ps::util::SimTime::hours(12);
    config.horizon = p2ps::util::SimTime::hours(24);
    config.validate_invariants = false;
    benchmark::DoNotOptimize(p2ps::engine::StreamingSystem(config).run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_FullSimulationSmall)->Arg(500)->Arg(2'000)->Unit(benchmark::kMillisecond);

}  // namespace
