// Theorem 1 — minimum buffering delay is N·Δt, swept over every valid
// supplier multiset up to class 5 and verified three ways: the OTS delay
// formula, the media-level playback-buffer check, and the naive baselines.
#include <functional>
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "core/ots.hpp"

namespace {

using p2ps::core::PeerClass;

std::vector<std::vector<PeerClass>> all_sessions(PeerClass max_class) {
  std::vector<std::vector<PeerClass>> result;
  std::vector<PeerClass> current;
  const std::int64_t full = std::int64_t{1} << max_class;
  std::function<void(std::int64_t, PeerClass)> recurse = [&](std::int64_t remaining,
                                                             PeerClass next) {
    if (remaining == 0) {
      result.push_back(current);
      return;
    }
    for (PeerClass c = next; c <= max_class; ++c) {
      if ((full >> c) <= remaining) {
        current.push_back(c);
        recurse(remaining - (full >> c), c);
        current.pop_back();
      }
    }
  };
  recurse(full, 1);
  return result;
}

}  // namespace

int main() {
  p2ps::bench::print_title(
      "Theorem 1 — minimum buffering delay sweep",
      "minimum buffering delay of an N-supplier session is N*dt",
      "OTS delay == N for every supplier multiset; baselines never beat it");

  const auto sessions = all_sessions(5);
  std::size_t checked = 0;
  std::size_t theorem_violations = 0;
  std::size_t feasibility_violations = 0;
  std::size_t baseline_wins = 0;

  // Aggregate by supplier count for the summary table.
  struct Aggregate {
    double contiguous_sum = 0.0;
    double naive_sum = 0.0;
    std::size_t naive_suboptimal = 0;  // sessions where naive RR misses N·Δt
    std::size_t count = 0;
  };
  std::map<std::size_t, Aggregate> by_n;
  for (const auto& classes : sessions) {
    const auto ots = p2ps::core::ots_assignment(classes);
    const auto contiguous = p2ps::core::contiguous_assignment(classes);
    const auto naive = p2ps::core::naive_round_robin_assignment(classes);
    const std::int64_t n = static_cast<std::int64_t>(classes.size());

    if (ots.min_buffering_delay_dt() != n) ++theorem_violations;
    if (contiguous.min_buffering_delay_dt() < ots.min_buffering_delay_dt() ||
        naive.min_buffering_delay_dt() < ots.min_buffering_delay_dt()) {
      ++baseline_wins;
    }
    const auto buffer = ots.simulate_arrivals(p2ps::util::SimTime::seconds(1), 2);
    const bool feasible_at_n =
        buffer.check(p2ps::util::SimTime::seconds(1) * n).feasible;
    const bool infeasible_below =
        !buffer.check(p2ps::util::SimTime::seconds(1) * n - p2ps::util::SimTime::millis(1))
             .feasible;
    if (!feasible_at_n || !infeasible_below) ++feasibility_violations;

    auto& agg = by_n[classes.size()];
    agg.contiguous_sum += static_cast<double>(contiguous.min_buffering_delay_dt());
    agg.naive_sum += static_cast<double>(naive.min_buffering_delay_dt());
    agg.naive_suboptimal += naive.min_buffering_delay_dt() != n;
    ++agg.count;
    ++checked;
  }

  p2ps::util::TextTable table({"N suppliers", "sessions", "OTS delay (dt)",
                               "avg contiguous (dt)", "avg naive-RR (dt)",
                               "naive-RR suboptimal"});
  for (const auto& [n, agg] : by_n) {
    table.new_row()
        .add_cell(static_cast<long long>(n))
        .add_cell(static_cast<long long>(agg.count))
        .add_cell(static_cast<long long>(n))
        .add_cell(agg.contiguous_sum / static_cast<double>(agg.count), 2)
        .add_cell(agg.naive_sum / static_cast<double>(agg.count), 2)
        .add_cell(static_cast<long long>(agg.naive_suboptimal));
  }
  table.print(std::cout);

  std::cout << "\nsessions checked: " << checked
            << "\nTheorem-1 equality violations: " << theorem_violations
            << "\nplayback feasibility violations: " << feasibility_violations
            << "\nbaseline assignments beating OTS: " << baseline_wins
            << "\n(naive-RR = the literal quota-only reading of the paper's "
               "Figure 2 pseudo-code;\n see DESIGN.md reconstruction note)\n";
  return (theorem_violations || feasibility_violations || baseline_wins) ? 1 : 0;
}
