// Table 1 — per-class average number of rejections before admission
// (DAC_p2p / NDAC_p2p), arrival patterns 2 and 4, plus the waiting time
// implied by the backoff series.
#include <iostream>

#include "bench_util.hpp"
#include "core/admission/requester.hpp"

int main() {
  using p2ps::bench::paper_config;
  using p2ps::workload::ArrivalPattern;

  p2ps::bench::print_title(
      "Table 1 — per-class average rejections before admission",
      "pattern 2: DAC 1.77/1.93/2.40/3.15 vs NDAC ~3.7 for all classes; "
      "pattern 4: DAC 1.93/2.19/2.59/3.16 vs NDAC ~3.45",
      "under DAC rejections grow with class index; NDAC is flat; every "
      "class suffers fewer rejections under DAC than under NDAC");

  for (ArrivalPattern pattern :
       {ArrivalPattern::kRampUpDown, ArrivalPattern::kPeriodicBursts}) {
    std::cout << "\n--- " << p2ps::workload::to_string(pattern) << " ---\n";
    const auto dac = p2ps::engine::StreamingSystem(paper_config(pattern, true)).run();
    const auto ndac = p2ps::engine::StreamingSystem(paper_config(pattern, false)).run();

    p2ps::util::TextTable table({"class", "DAC rejections", "NDAC rejections",
                                 "DAC wait (min)", "NDAC wait (min)"});
    for (p2ps::core::PeerClass c = 1; c <= 4; ++c) {
      const auto& d = dac.totals[static_cast<std::size_t>(c - 1)];
      const auto& n = ndac.totals[static_cast<std::size_t>(c - 1)];
      table.new_row().add_cell(static_cast<long long>(c));
      table.add_cell(d.mean_rejections() ? p2ps::util::format_double(*d.mean_rejections(), 2) : "-");
      table.add_cell(n.mean_rejections() ? p2ps::util::format_double(*n.mean_rejections(), 2) : "-");
      table.add_cell(d.mean_waiting_minutes() ? p2ps::util::format_double(*d.mean_waiting_minutes(), 1) : "-");
      table.add_cell(n.mean_waiting_minutes() ? p2ps::util::format_double(*n.mean_waiting_minutes(), 1) : "-");
    }
    table.print(std::cout);
  }

  std::cout << "\nwaiting time implied by rho rejections (T_bkf=10min, E_bkf=2):\n";
  p2ps::util::TextTable implied({"rejections", "waiting (min)"});
  for (int rho = 0; rho <= 5; ++rho) {
    implied.new_row()
        .add_cell(static_cast<long long>(rho))
        .add_cell(p2ps::core::RequesterBackoff::waiting_time_for(
                      rho, p2ps::util::SimTime::minutes(10), 2)
                      .as_minutes(),
                  1);
  }
  implied.print(std::cout);
  return 0;
}
