// Figure 7 — adaptivity of differentiation: the lowest requesting-peer
// class favored by each class of supplying peers, sampled every 3 hours
// (non-accumulative), under arrival pattern 4 (periodic bursts).
#include <cmath>
#include <iostream>

#include "bench_util.hpp"

int main() {
  using p2ps::bench::paper_config;
  using p2ps::workload::ArrivalPattern;

  p2ps::bench::print_title(
      "Figure 7 — lowest favored class per supplier class (pattern 4)",
      "the degree of differentiation tracks the periodic request bursts; "
      "higher-class suppliers react more sharply; once arrivals stop and "
      "capacity is ample, every supplier class favors all classes (y = 4)",
      "dips (tightening) aligned with the 12-hour bursts during the first "
      "72 h; all series converge to 4 afterwards");

  const auto dac = p2ps::engine::StreamingSystem(
                       paper_config(ArrivalPattern::kPeriodicBursts, true))
                       .run();

  p2ps::util::TextTable table(
      {"hour", "suppliers-c1", "suppliers-c2", "suppliers-c3", "suppliers-c4"});
  for (const auto& sample : dac.favored) {
    const auto hour = static_cast<long long>(sample.t.as_hours());
    // Full 3-hour resolution during the arrival window (bursts every 12 h),
    // sparser afterwards once the series has converged.
    if (hour > 72 && hour % 12 != 0) continue;
    table.new_row().add_cell(hour);
    for (std::size_t cls = 0; cls < 4; ++cls) {
      const double value = sample.avg_lowest_favored[cls];
      table.add_cell(std::isnan(value) ? "-" : p2ps::util::format_double(value, 2));
    }
  }
  table.print(std::cout);
  p2ps::bench::maybe_export_csv("fig7", "dac_pattern4", dac);
  return 0;
}
