// Figure 9 — impact of the backoff exponential factor E_bkf on the overall
// accumulative admission rate (pattern 2, DAC_p2p).
//
// The paper's counter-intuitive finding: in a *self-growing* system,
// aggressive (constant) retry beats exponential backoff, because admitted
// peers enlarge the capacity that serves everyone else.
#include <iostream>
#include <vector>

#include "bench_util.hpp"

int main() {
  using p2ps::bench::paper_config;
  using p2ps::workload::ArrivalPattern;

  p2ps::bench::print_title(
      "Figure 9 — impact of E_bkf on overall admission rate (pattern 2)",
      "the higher E_bkf, the lower the overall admission rate; constant "
      "backoff (E_bkf=1) is significantly better",
      "rate(E_bkf=1) > rate(E_bkf=2) > rate(E_bkf=3) > rate(E_bkf=4) over "
      "most of the run");

  std::vector<p2ps::engine::SimulationResult> results;
  const std::int64_t factors[] = {1, 2, 3, 4};
  results.reserve(std::size(factors));
  for (std::int64_t e_bkf : factors) {
    auto config = paper_config(ArrivalPattern::kRampUpDown, true);
    config.protocol.e_bkf = e_bkf;
    results.push_back(p2ps::engine::StreamingSystem(config).run());
  }

  p2ps::util::TextTable table(
      {"hour", "E_bkf=1 rate%", "E_bkf=2 rate%", "E_bkf=3 rate%", "E_bkf=4 rate%"});
  for (int h = 0; h <= 144; h += 8) {
    table.new_row().add_cell(static_cast<long long>(h));
    for (const auto& result : results) {
      const auto& sample = result.sample_at(p2ps::util::SimTime::hours(h));
      p2ps::metrics::ClassCounters overall;
      for (const auto& counters : sample.per_class) {
        overall.first_requests += counters.first_requests;
        overall.admissions += counters.admissions;
      }
      const auto rate = overall.admission_rate();
      table.add_cell(rate ? p2ps::util::format_double(*rate * 100.0, 2) : "-");
    }
  }
  table.print(std::cout);

  std::cout << '\n';
  for (std::size_t i = 0; i < std::size(factors); ++i) {
    std::cout << "E_bkf=" << factors[i]
              << ": admissions=" << results[i].overall.admissions
              << ", rejections=" << results[i].overall.rejections
              << ", final capacity=" << results[i].final_capacity << '\n';
  }
  return 0;
}
