// Ablation — event-list data structure for the simulation substrate.
//
// Compares the binary heap the Simulator uses against a classic calendar
// queue (Brown 1988) on workloads shaped like this reproduction's event
// mix: dense request bursts, uniform retries, and sparse far-future
// timeouts. Throughput is hold-model operations per second.
#include <chrono>
#include <iostream>
#include <queue>

#include "bench_util.hpp"
#include "sim/calendar_queue.hpp"
#include "util/rng.hpp"

namespace {

using p2ps::sim::CalendarEntry;
using p2ps::util::SimTime;

enum class Shape { kUniform, kBursty, kBimodal };

std::int64_t next_gap_ms(Shape shape, p2ps::util::Rng& rng) {
  switch (shape) {
    case Shape::kUniform:
      return rng.uniform_int(0, 2000);
    case Shape::kBursty:
      // 90% of events land within 10ms, the rest within 10s.
      return rng.bernoulli(0.9) ? rng.uniform_int(0, 10) : rng.uniform_int(0, 10'000);
    case Shape::kBimodal:
      // Retry-style near events vs T_out-style far timers.
      return rng.bernoulli(0.5) ? rng.uniform_int(0, 100)
                                : rng.uniform_int(600'000, 1'200'000);
  }
  return 0;
}

const char* name(Shape shape) {
  switch (shape) {
    case Shape::kUniform: return "uniform";
    case Shape::kBursty: return "bursty";
    case Shape::kBimodal: return "bimodal";
  }
  return "?";
}

/// Classic hold model: prime with `population` events, then `ops` rounds of
/// pop-one/push-one. Returns wall-clock microseconds.
template <typename PushFn, typename PopFn>
double hold_model(Shape shape, std::size_t population, std::size_t ops,
                  PushFn push, PopFn pop) {
  p2ps::util::Rng rng(42);
  std::uint64_t seq = 0;
  std::int64_t clock_ms = 0;
  for (std::size_t i = 0; i < population; ++i) {
    push(CalendarEntry{SimTime::millis(next_gap_ms(shape, rng)), seq, seq});
    ++seq;
  }
  const auto begin = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ops; ++i) {
    const CalendarEntry entry = pop();
    clock_ms = entry.time.as_millis();
    push(CalendarEntry{SimTime::millis(clock_ms + next_gap_ms(shape, rng)), seq, seq});
    ++seq;
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - begin).count();
}

}  // namespace

int main() {
  p2ps::bench::print_title(
      "Ablation — event-queue structure (binary heap vs calendar queue)",
      "(substrate ablation; not in the paper)",
      "calendar queue approaches O(1) per op on dense stationary workloads; "
      "the heap's O(log n) is competitive at simulator-typical sizes, which "
      "is why the Simulator defaults to it");

  constexpr std::size_t kOps = 200'000;
  p2ps::util::TextTable table({"workload", "population", "heap Mops/s",
                               "calendar Mops/s", "calendar resizes"});
  for (Shape shape : {Shape::kUniform, Shape::kBursty, Shape::kBimodal}) {
    for (std::size_t population : {1'000ul, 10'000ul, 100'000ul}) {
      auto compare = [](const CalendarEntry& a, const CalendarEntry& b) {
        return b < a;
      };
      std::priority_queue<CalendarEntry, std::vector<CalendarEntry>,
                          decltype(compare)>
          heap(compare);
      const double heap_us = hold_model(
          shape, population, kOps,
          [&](const CalendarEntry& entry) { heap.push(entry); },
          [&] {
            CalendarEntry entry = heap.top();
            heap.pop();
            return entry;
          });

      p2ps::sim::CalendarQueue calendar;
      const double calendar_us = hold_model(
          shape, population, kOps,
          [&](const CalendarEntry& entry) { calendar.push(entry); },
          [&] { return *calendar.pop(); });

      table.new_row()
          .add_cell(name(shape))
          .add_cell(static_cast<long long>(population))
          .add_cell(static_cast<double>(kOps) / heap_us, 2)
          .add_cell(static_cast<double>(kOps) / calendar_us, 2)
          .add_cell(static_cast<long long>(calendar.resizes()));
    }
  }
  table.print(std::cout);
  return 0;
}
