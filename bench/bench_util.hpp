// Shared helpers for the figure/table reproduction harnesses.
//
// Every binary prints (a) what the paper reports, (b) the series/rows this
// run produced, and (c) the qualitative expectation to check against the
// paper — since our substrate parameters (arrival-pattern constants) are
// reconstructions, shapes are comparable, absolute values only roughly.
//
// Environment: set P2PS_BENCH_SCALE=<divisor> (e.g. 10) to shrink the
// population for quick runs; default is the paper's full 50,100 peers.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "engine/streaming_system.hpp"
#include "metrics/export.hpp"
#include "util/table.hpp"

namespace p2ps::bench {

/// Population divisor from P2PS_BENCH_SCALE (default 1 = paper scale).
inline std::int64_t scale_divisor() {
  if (const char* env = std::getenv("P2PS_BENCH_SCALE")) {
    const long long v = std::atoll(env);
    if (v > 1) return v;
  }
  return 1;
}

/// The paper's Section 5.1 configuration, optionally scaled down.
inline engine::SimulationConfig paper_config(workload::ArrivalPattern pattern,
                                             bool differentiated,
                                             std::uint64_t seed = 2002) {
  return engine::section51_config(pattern, differentiated, seed, scale_divisor());
}

/// Directory for CSV/gnuplot exports, or empty when not requested.
inline std::string csv_dir() {
  if (const char* env = std::getenv("P2PS_BENCH_CSV")) return env;
  return {};
}

/// When P2PS_BENCH_CSV is set, writes `<dir>/<figure>_<label>.csv` with the
/// run's hourly series (plus `_favored.csv` when the run collected them).
/// Returns the csv filename (relative to the dir) or empty.
inline std::string maybe_export_csv(const std::string& figure, const std::string& label,
                                    const engine::SimulationResult& result) {
  const std::string dir = csv_dir();
  if (dir.empty()) return {};
  const std::string name = figure + "_" + label + ".csv";
  std::ofstream hourly(dir + "/" + name);
  metrics::write_hourly_csv(hourly, result.hourly, result.num_classes);
  if (!result.favored.empty()) {
    std::ofstream favored(dir + "/" + figure + "_" + label + "_favored.csv");
    metrics::write_favored_csv(favored, result.favored, result.num_classes);
  }
  std::cout << "[csv] wrote " << dir << '/' << name << '\n';
  return name;
}

/// When P2PS_BENCH_CSV is set, writes a gnuplot script plotting capacity
/// (CSV column 2) for the given already-exported runs.
inline void maybe_export_capacity_plot(const std::string& figure,
                                       const std::vector<std::pair<std::string, std::string>>&
                                           label_and_csv) {
  const std::string dir = csv_dir();
  if (dir.empty() || label_and_csv.empty()) return;
  std::vector<metrics::PlotSeries> series;
  for (const auto& [label, csv] : label_and_csv) {
    series.push_back(metrics::PlotSeries{csv, label, 2});
  }
  std::ofstream script(dir + "/" + figure + ".gp");
  metrics::write_gnuplot_script(script, figure, "Total system capacity",
                                figure + ".png", series);
  std::cout << "[csv] wrote " << dir << '/' << figure << ".gp\n";
}

inline void print_title(const std::string& title, const std::string& paper,
                        const std::string& expectation) {
  std::cout << "==================================================================\n"
            << title << '\n'
            << "------------------------------------------------------------------\n"
            << "paper reports : " << paper << '\n'
            << "expected shape: " << expectation << '\n';
  if (scale_divisor() > 1) {
    std::cout << "NOTE: running at 1/" << scale_divisor()
              << " population scale (P2PS_BENCH_SCALE)\n";
  }
  std::cout << "==================================================================\n";
}

/// Prints one column per labelled run: capacity over time, every
/// `step_hours`.
inline void print_capacity_series(
    const std::vector<std::pair<std::string, const engine::SimulationResult*>>& runs,
    int step_hours = 8, int end_hour = 144) {
  std::vector<std::string> headers{"hour"};
  for (const auto& [label, result] : runs) headers.push_back(label);
  util::TextTable table(headers);
  for (int h = 0; h <= end_hour; h += step_hours) {
    table.new_row().add_cell(static_cast<long long>(h));
    for (const auto& [label, result] : runs) {
      table.add_cell(static_cast<long long>(
          result->capacity_at(util::SimTime::hours(h))));
    }
  }
  table.print(std::cout);
  for (const auto& [label, result] : runs) {
    std::cout << label << ": final capacity " << result->final_capacity << " / max "
              << result->max_capacity << " ("
              << util::format_double(100.0 * static_cast<double>(result->final_capacity) /
                                         static_cast<double>(result->max_capacity),
                                     1)
              << "% of all-suppliers maximum)\n";
  }
}

/// Prints a per-class time series extracted from the hourly samples.
template <typename Extractor>
void print_per_class_series(const engine::SimulationResult& result,
                            const std::string& value_name, Extractor extract,
                            int step_hours = 8, int end_hour = 144) {
  util::TextTable table({"hour", value_name + "-c1", value_name + "-c2",
                         value_name + "-c3", value_name + "-c4"});
  for (int h = 0; h <= end_hour; h += step_hours) {
    const auto& sample = result.sample_at(util::SimTime::hours(h));
    table.new_row().add_cell(static_cast<long long>(h));
    for (core::PeerClass c = 1; c <= 4; ++c) {
      const auto value = extract(sample.per_class[static_cast<std::size_t>(c - 1)]);
      table.add_cell(value.has_value() ? util::format_double(*value, 2) : "-");
    }
  }
  table.print(std::cout);
}

}  // namespace p2ps::bench
