// Figure 6 — per-class accumulative average buffering delay (in units of
// Δt) under arrival pattern 2, DAC_p2p vs NDAC_p2p.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using p2ps::bench::paper_config;
  using p2ps::workload::ArrivalPattern;

  p2ps::bench::print_title(
      "Figure 6 — per-class accumulative average buffering delay (pattern 2)",
      "delays between ~2.5*dt and ~5.5*dt; under DAC_p2p the higher the "
      "class the lower the delay, and every class beats its NDAC_p2p value",
      "delay(c1) < delay(c2) < delay(c3) < delay(c4) under DAC; DAC below "
      "NDAC per class (Theorem 1: delay == number of session suppliers)");

  const auto dac = p2ps::engine::StreamingSystem(
                       paper_config(ArrivalPattern::kRampUpDown, true))
                       .run();
  const auto ndac = p2ps::engine::StreamingSystem(
                        paper_config(ArrivalPattern::kRampUpDown, false))
                        .run();

  const auto mean_delay = [](const p2ps::metrics::ClassCounters& counters) {
    return counters.mean_delay_dt();
  };

  std::cout << "\n(a) DAC_p2p — cumulative average buffering delay (x dt)\n";
  p2ps::bench::print_per_class_series(dac, "delay", mean_delay);
  std::cout << "\n(b) NDAC_p2p — cumulative average buffering delay (x dt)\n";
  p2ps::bench::print_per_class_series(ndac, "delay", mean_delay);
  p2ps::bench::maybe_export_csv("fig6", "dac", dac);
  p2ps::bench::maybe_export_csv("fig6", "ndac", ndac);
  return 0;
}
