// Ablation — supplier selection policy.
//
// The paper implies largest-offer-first selection among granted candidates
// (fewest suppliers => lowest Theorem-1 delay). This harness compares it
// with a max-cardinality policy (smallest offers first) that admits in the
// same cases but spreads sessions across more suppliers.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using p2ps::bench::paper_config;
  using p2ps::workload::ArrivalPattern;

  p2ps::bench::print_title(
      "Ablation — supplier selection policy (greedy vs max-cardinality)",
      "(not in the paper; isolates the implied largest-offer-first choice)",
      "max-cardinality inflates buffering delay for every class while "
      "admission rates stay comparable; it also occupies more suppliers "
      "per session, slowing concurrent admissions");

  auto greedy_config = paper_config(ArrivalPattern::kRampUpDown, true);
  auto wide_config = greedy_config;
  wide_config.selection_policy = &p2ps::core::max_cardinality_policy();

  const auto greedy = p2ps::engine::StreamingSystem(greedy_config).run();
  const auto wide = p2ps::engine::StreamingSystem(wide_config).run();

  p2ps::util::TextTable table({"class", "delay dt (greedy)", "delay dt (max-card)",
                               "rate% (greedy)", "rate% (max-card)"});
  for (p2ps::core::PeerClass c = 1; c <= 4; ++c) {
    const auto& g = greedy.totals[static_cast<std::size_t>(c - 1)];
    const auto& w = wide.totals[static_cast<std::size_t>(c - 1)];
    table.new_row().add_cell(static_cast<long long>(c));
    table.add_cell(g.mean_delay_dt() ? p2ps::util::format_double(*g.mean_delay_dt(), 2) : "-");
    table.add_cell(w.mean_delay_dt() ? p2ps::util::format_double(*w.mean_delay_dt(), 2) : "-");
    table.add_cell(g.admission_rate() ? p2ps::util::format_double(*g.admission_rate() * 100, 1) : "-");
    table.add_cell(w.admission_rate() ? p2ps::util::format_double(*w.admission_rate() * 100, 1) : "-");
  }
  table.print(std::cout);

  std::cout << "overall mean delay: greedy="
            << p2ps::util::format_double(
                   greedy.overall.buffering_delay_dt_sum /
                       static_cast<double>(greedy.overall.admissions),
                   2)
            << "dt  max-cardinality="
            << p2ps::util::format_double(
                   wide.overall.buffering_delay_dt_sum /
                       static_cast<double>(wide.overall.admissions),
                   2)
            << "dt\n";
  std::cout << "final capacity: greedy=" << greedy.final_capacity
            << " max-cardinality=" << wide.final_capacity << '\n';
  return 0;
}
