// Figure 1 + Figure 2 — media-data assignments and their buffering delays.
//
// Reproduces the paper's worked example: suppliers offering
// (R0/2, R0/4, R0/8, R0/8). The naive contiguous Assignment I needs a 5Δt
// buffering delay; OTS_p2p's Assignment II achieves the Theorem-1 optimum
// of 4Δt = N·Δt.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/ots.hpp"

namespace {

using p2ps::core::PeerClass;
using p2ps::core::SegmentAssignment;

void print_assignment_chart(const std::string& name, const SegmentAssignment& a) {
  std::cout << '\n' << name << " (window " << a.window_size() << " segments):\n";
  for (std::size_t i = 0; i < a.supplier_count(); ++i) {
    std::cout << "  Ps" << (i + 1) << " (R0/" << (1 << a.supplier_class(i))
              << ") sends segments: ";
    const auto segments = a.segments_of(i);
    for (std::size_t j = 0; j < segments.size(); ++j) {
      if (j) std::cout << ", ";
      std::cout << segments[j];
      const auto finish = a.finish_time(i, j, p2ps::util::SimTime::seconds(1));
      std::cout << " (done " << finish.as_seconds() << "dt)";
    }
    std::cout << '\n';
  }
  std::cout << "  minimum buffering delay: " << a.min_buffering_delay_dt() << " * dt\n";
}

}  // namespace

int main() {
  p2ps::bench::print_title(
      "Figure 1/2 — media data assignment and buffering delay",
      "Assignment I starts playback at 5*dt; Assignment II (OTS_p2p) at 4*dt",
      "OTS_p2p achieves N*dt (Theorem 1); contiguous assignment is worse");

  const std::vector<PeerClass> classes{1, 2, 3, 3};

  const auto contiguous = p2ps::core::contiguous_assignment(classes);
  print_assignment_chart("Assignment I (contiguous, Figure 1a)", contiguous);

  const auto ots = p2ps::core::ots_assignment(classes);
  print_assignment_chart("Assignment II (OTS_p2p, Figure 1b)", ots);

  const auto round_robin = p2ps::core::unsorted_round_robin_assignment(
      std::vector<PeerClass>{3, 1, 3, 2});
  print_assignment_chart("Unsorted round-robin (ablation: no descending sort)",
                         round_robin);

  std::cout << "\nSummary\n";
  p2ps::util::TextTable table({"assignment", "buffering delay (dt)", "optimal?"});
  table.new_row().add_cell("contiguous (I)")
      .add_cell(static_cast<long long>(contiguous.min_buffering_delay_dt()))
      .add_cell(contiguous.min_buffering_delay_dt() == 4 ? "yes" : "no");
  table.new_row().add_cell("OTS_p2p (II)")
      .add_cell(static_cast<long long>(ots.min_buffering_delay_dt()))
      .add_cell(ots.min_buffering_delay_dt() == 4 ? "yes" : "no");
  table.new_row().add_cell("unsorted round-robin")
      .add_cell(static_cast<long long>(round_robin.min_buffering_delay_dt()))
      .add_cell(round_robin.min_buffering_delay_dt() == 4 ? "yes" : "no");
  table.print(std::cout);
  return 0;
}
