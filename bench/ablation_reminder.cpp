// Ablation — the reminder technique (paper Section 4.1/4.2).
//
// DAC_p2p with reminders disabled still differentiates via the initial
// vectors and idle elevation, but suppliers can only ever *relax*: after a
// busy stretch nothing re-tightens their preferences. This isolates how
// much of the differentiation (admission-rate ordering, Figure 7
// tightening) the reminder mechanism carries.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using p2ps::bench::paper_config;
  using p2ps::workload::ArrivalPattern;

  p2ps::bench::print_title(
      "Ablation — DAC_p2p with and without the reminder technique",
      "(not in the paper; isolates a design choice the paper motivates)",
      "without reminders, per-class differentiation decays after load "
      "bursts: class-1 advantage in rejections shrinks");

  for (ArrivalPattern pattern :
       {ArrivalPattern::kRampUpDown, ArrivalPattern::kPeriodicBursts}) {
    std::cout << "\n--- " << p2ps::workload::to_string(pattern) << " ---\n";
    auto with_config = paper_config(pattern, true);
    auto without_config = with_config;
    without_config.protocol.reminders_enabled = false;
    const auto with_reminders = p2ps::engine::StreamingSystem(with_config).run();
    const auto without_reminders =
        p2ps::engine::StreamingSystem(without_config).run();

    p2ps::util::TextTable table({"class", "rejections (reminders)",
                                 "rejections (no reminders)",
                                 "delay dt (reminders)", "delay dt (no reminders)"});
    for (p2ps::core::PeerClass c = 1; c <= 4; ++c) {
      const auto& w = with_reminders.totals[static_cast<std::size_t>(c - 1)];
      const auto& wo = without_reminders.totals[static_cast<std::size_t>(c - 1)];
      table.new_row().add_cell(static_cast<long long>(c));
      table.add_cell(w.mean_rejections() ? p2ps::util::format_double(*w.mean_rejections(), 2) : "-");
      table.add_cell(wo.mean_rejections() ? p2ps::util::format_double(*wo.mean_rejections(), 2) : "-");
      table.add_cell(w.mean_delay_dt() ? p2ps::util::format_double(*w.mean_delay_dt(), 2) : "-");
      table.add_cell(wo.mean_delay_dt() ? p2ps::util::format_double(*wo.mean_delay_dt(), 2) : "-");
    }
    table.print(std::cout);
    std::cout << "final capacity: with=" << with_reminders.final_capacity
              << " without=" << without_reminders.final_capacity << '\n';

    // Differentiation spread: class-4 minus class-1 average rejections.
    const auto spread = [](const p2ps::engine::SimulationResult& result) {
      return result.totals[3].mean_rejections().value_or(0.0) -
             result.totals[0].mean_rejections().value_or(0.0);
    };
    std::cout << "class-4 vs class-1 rejection spread: with="
              << p2ps::util::format_double(spread(with_reminders), 2)
              << " without=" << p2ps::util::format_double(spread(without_reminders), 2)
              << '\n';
  }
  return 0;
}
