// Figure 8 — impact of the protocol parameters M (candidates probed per
// attempt) and T_out (idle elevation timeout) on capacity amplification,
// arrival pattern 2, DAC_p2p.
#include <iostream>
#include <vector>

#include "bench_util.hpp"

int main() {
  using p2ps::bench::paper_config;
  using p2ps::workload::ArrivalPattern;

  p2ps::bench::print_title(
      "Figure 8 — impact of M and T_out on capacity amplification",
      "(a) M=4 grows much slower; raising M beyond 8 adds little. "
      "(b) very short T_out (1-2 min) hurts: idle suppliers relax too soon "
      "and miss higher-class requesters",
      "capacity(M=4) << capacity(M=8) ~ capacity(M=16) ~ capacity(M=32); "
      "capacity(T_out=1min) < capacity(T_out=20min)");

  std::cout << "\n(a) impact of M\n";
  {
    std::vector<p2ps::engine::SimulationResult> results;
    std::vector<std::pair<std::string, const p2ps::engine::SimulationResult*>> runs;
    const std::size_t ms[] = {4, 8, 16, 32};
    results.reserve(std::size(ms));
    for (std::size_t m : ms) {
      auto config = paper_config(ArrivalPattern::kRampUpDown, true);
      config.protocol.m_candidates = m;
      results.push_back(p2ps::engine::StreamingSystem(config).run());
    }
    for (std::size_t i = 0; i < std::size(ms); ++i) {
      runs.emplace_back("M=" + std::to_string(ms[i]), &results[i]);
    }
    p2ps::bench::print_capacity_series(runs, 12);
  }

  std::cout << "\n(b) impact of T_out\n";
  {
    std::vector<p2ps::engine::SimulationResult> results;
    std::vector<std::pair<std::string, const p2ps::engine::SimulationResult*>> runs;
    const int t_outs[] = {1, 2, 20, 60, 120};
    results.reserve(std::size(t_outs));
    for (int minutes : t_outs) {
      auto config = paper_config(ArrivalPattern::kRampUpDown, true);
      config.protocol.t_out = p2ps::util::SimTime::minutes(minutes);
      results.push_back(p2ps::engine::StreamingSystem(config).run());
    }
    for (std::size_t i = 0; i < std::size(t_outs); ++i) {
      runs.emplace_back("T_out=" + std::to_string(t_outs[i]) + "min", &results[i]);
    }
    p2ps::bench::print_capacity_series(runs, 12);
  }
  return 0;
}
