// Figure 3 — different admission decisions lead to different capacity
// growth.
//
// The paper's scenario: suppliers {class-2, class-2, class-1, class-1}
// (capacity 1), requesters {class-2 Pr1, class-2 Pr2, class-1 Pr3}.
// Admitting the class-2 peers first keeps capacity at 1 for two more
// rounds (average waiting (0+T+2T)/3 = T); admitting the class-1 peer
// first doubles capacity after one session (average waiting (T+T+0)/3 =
// 2T/3).
#include <iostream>
#include <numeric>
#include <vector>

#include "bench_util.hpp"
#include "core/bandwidth.hpp"

namespace {

using p2ps::core::Bandwidth;
using p2ps::core::PeerClass;

struct Round {
  int t_over_T;                     // time in units of the session length T
  std::int64_t capacity;            // system capacity entering this round
  std::vector<int> admitted_now;    // requester indices admitted this round
};

/// Plays the scenario with a fixed admission priority order; returns the
/// capacity trace and each requester's waiting time (in units of T).
std::pair<std::vector<Round>, std::vector<int>> play(
    std::vector<PeerClass> suppliers, const std::vector<PeerClass>& requesters,
    const std::vector<int>& priority) {
  std::vector<Round> rounds;
  std::vector<int> waiting(requesters.size(), -1);
  std::vector<bool> admitted(requesters.size(), false);
  int t = 0;
  while (std::find(admitted.begin(), admitted.end(), false) != admitted.end()) {
    Round round;
    round.t_over_T = t;
    round.capacity = p2ps::core::capacity(suppliers);
    std::int64_t slots = round.capacity;
    for (int index : priority) {
      const auto i = static_cast<std::size_t>(index);
      if (!admitted[i] && slots > 0) {
        admitted[i] = true;
        waiting[i] = t;
        round.admitted_now.push_back(index);
        --slots;
      }
    }
    // Sessions run for T; the admitted requesters then join the suppliers.
    for (int index : round.admitted_now) {
      suppliers.push_back(requesters[static_cast<std::size_t>(index)]);
    }
    rounds.push_back(round);
    ++t;
  }
  Round final_round;
  final_round.t_over_T = t;
  final_round.capacity = p2ps::core::capacity(suppliers);
  rounds.push_back(final_round);
  return {rounds, waiting};
}

void report(const std::string& name,
            const std::pair<std::vector<Round>, std::vector<int>>& outcome) {
  std::cout << '\n' << name << '\n';
  p2ps::util::TextTable table({"time", "capacity", "admitted"});
  for (const auto& round : outcome.first) {
    std::string admitted;
    for (int index : round.admitted_now) {
      if (!admitted.empty()) admitted += ", ";
      admitted += "Pr" + std::to_string(index + 1);
    }
    table.new_row()
        .add_cell("t0+" + std::to_string(round.t_over_T) + "T")
        .add_cell(static_cast<long long>(round.capacity))
        .add_cell(admitted.empty() ? "-" : admitted);
  }
  table.print(std::cout);
  const auto& waiting = outcome.second;
  const double avg = std::accumulate(waiting.begin(), waiting.end(), 0.0) /
                     static_cast<double>(waiting.size());
  std::cout << "average waiting time: " << p2ps::util::format_double(avg, 2)
            << " * T\n";
}

}  // namespace

int main() {
  p2ps::bench::print_title(
      "Figure 3 — admission order vs capacity growth",
      "admitting class-2 first: capacity stays 1, avg wait T; admitting the "
      "class-1 requester first: capacity 2 after T, avg wait 2T/3",
      "favoring the higher-class requester amplifies capacity faster and "
      "lowers everyone's average waiting time");

  const std::vector<PeerClass> suppliers{2, 2, 1, 1};
  const std::vector<PeerClass> requesters{2, 2, 1};  // Pr1, Pr2, Pr3

  report("(a) Non-differentiated order: Pr1, Pr2, Pr3",
         play(suppliers, requesters, {0, 1, 2}));
  report("(b) Differentiated order: Pr3 (class 1) first",
         play(suppliers, requesters, {2, 0, 1}));
  return 0;
}
