// Ablation — transient peer failures (paper Section 4.2 admits candidates
// may be "down"; the evaluation assumes none are).
//
// Sweeps the probability that a probed candidate is unreachable and shows
// the protocol degrades gracefully: admission needs more retries but the
// system still converges toward its maximum capacity.
#include <iostream>
#include <vector>

#include "bench_util.hpp"

int main() {
  using p2ps::bench::paper_config;
  using p2ps::workload::ArrivalPattern;

  p2ps::bench::print_title(
      "Ablation — candidate peers transiently down",
      "(not in the paper; exercises admission condition 1: candidates may "
      "be neither down nor busy)",
      "higher down-probability => more rejections and longer waits, but "
      "capacity still amplifies (graceful degradation, no collapse)");

  const double down_probabilities[] = {0.0, 0.1, 0.3, 0.5};
  std::vector<p2ps::engine::SimulationResult> results;
  results.reserve(std::size(down_probabilities));
  for (double p : down_probabilities) {
    auto config = paper_config(ArrivalPattern::kRampUpDown, true, /*seed=*/404);
    config.peer_down_probability = p;
    results.push_back(p2ps::engine::StreamingSystem(config).run());
  }

  p2ps::util::TextTable table({"down prob", "admissions", "avg rejections",
                               "avg wait (min)", "final capacity", "% of max"});
  for (std::size_t i = 0; i < std::size(down_probabilities); ++i) {
    const auto& result = results[i];
    const auto overall = result.overall;
    table.new_row()
        .add_cell(down_probabilities[i], 1)
        .add_cell(static_cast<long long>(overall.admissions))
        .add_cell(overall.admissions
                      ? p2ps::util::format_double(
                            static_cast<double>(overall.rejections_before_admission_sum) /
                                static_cast<double>(overall.admissions),
                            2)
                      : "-")
        .add_cell(overall.mean_waiting_minutes()
                      ? p2ps::util::format_double(*overall.mean_waiting_minutes(), 1)
                      : "-")
        .add_cell(static_cast<long long>(result.final_capacity))
        .add_cell(100.0 * static_cast<double>(result.final_capacity) /
                      static_cast<double>(result.max_capacity),
                  1);
  }
  table.print(std::cout);

  std::cout << "\nPermanent departures (suppliers leave for good after a "
               "served session):\n";
  const double departure_probabilities[] = {0.0, 0.02, 0.05, 0.10};
  p2ps::util::TextTable departures({"departure prob", "admissions", "departed",
                                    "final capacity", "% of max"});
  for (double p : departure_probabilities) {
    auto config = paper_config(ArrivalPattern::kRampUpDown, true, /*seed=*/404);
    config.supplier_departure_probability = p;
    const auto result = p2ps::engine::StreamingSystem(config).run();
    departures.new_row()
        .add_cell(p, 2)
        .add_cell(static_cast<long long>(result.overall.admissions))
        .add_cell(static_cast<long long>(result.suppliers_departed))
        .add_cell(static_cast<long long>(result.final_capacity))
        .add_cell(100.0 * static_cast<double>(result.final_capacity) /
                      static_cast<double>(result.max_capacity),
                  1);
  }
  departures.print(std::cout);
  std::cout << "\nSelf-amplification survives moderate permanent churn: each "
               "departed supplier\nis eventually replaced by a newly served "
               "requester, but the equilibrium\ncapacity drops with the "
               "departure rate.\n";

  std::cout << "\nBandwidth-commitment defection (paper footnote 3 assumes "
               "enforcement exists;\nhere admitted peers renege and supply "
               "only class-4 bandwidth):\n";
  const double defection_probabilities[] = {0.0, 0.25, 0.5, 1.0};
  p2ps::util::TextTable defection({"defection prob", "admissions",
                                   "capacity @72h", "final capacity", "% of max"});
  for (double p : defection_probabilities) {
    auto config = paper_config(ArrivalPattern::kRampUpDown, true, /*seed=*/404);
    config.defection_probability = p;
    const auto result = p2ps::engine::StreamingSystem(config).run();
    defection.new_row()
        .add_cell(p, 2)
        .add_cell(static_cast<long long>(result.overall.admissions))
        .add_cell(static_cast<long long>(
            result.capacity_at(p2ps::util::SimTime::hours(72))))
        .add_cell(static_cast<long long>(result.final_capacity))
        .add_cell(100.0 * static_cast<double>(result.final_capacity) /
                      static_cast<double>(result.max_capacity),
                  1);
  }
  defection.print(std::cout);
  std::cout << "\nWithout commitment enforcement the amplification collapses "
               "toward the\nlowest class's supply — quantifying why the paper "
               "needs footnote 3's\nmechanism and DAC_p2p's truthful-pledging "
               "incentive.\n";
  return 0;
}
