// Figure 5 — per-class accumulative request admission rate under arrival
// pattern 2, for DAC_p2p (differentiated) and NDAC_p2p (flat).
#include <iostream>

#include "bench_util.hpp"

int main() {
  using p2ps::bench::paper_config;
  using p2ps::workload::ArrivalPattern;

  p2ps::bench::print_title(
      "Figure 5 — per-class accumulative admission rate (pattern 2)",
      "DAC_p2p: class 1 > class 2 > class 3 > class 4 throughout; classes "
      "1-3 always above their NDAC_p2p rates, class 4 above except the "
      "first hours. NDAC_p2p: all classes overlap",
      "higher class => higher cumulative admission rate under DAC; flat "
      "under NDAC");

  const auto dac = p2ps::engine::StreamingSystem(
                       paper_config(ArrivalPattern::kRampUpDown, true))
                       .run();
  const auto ndac = p2ps::engine::StreamingSystem(
                        paper_config(ArrivalPattern::kRampUpDown, false))
                        .run();

  const auto rate_percent = [](const p2ps::metrics::ClassCounters& counters) {
    auto rate = counters.admission_rate();
    if (rate) *rate *= 100.0;
    return rate;
  };

  std::cout << "\n(a) DAC_p2p — cumulative admission rate (%) per class\n";
  p2ps::bench::print_per_class_series(dac, "rate%", rate_percent);
  std::cout << "\n(b) NDAC_p2p — cumulative admission rate (%) per class\n";
  p2ps::bench::print_per_class_series(ndac, "rate%", rate_percent);
  p2ps::bench::maybe_export_csv("fig5", "dac", dac);
  p2ps::bench::maybe_export_csv("fig5", "ndac", ndac);
  return 0;
}
