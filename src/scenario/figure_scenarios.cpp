// Paper figure/table reproductions as registered scenarios (Fig 1, 3–9,
// Table 1, Theorem 1). Each mirrors the corresponding bench/ harness but
// returns deterministic JSON instead of printing tables, so `p2ps_run`
// (and CI) can track every figure from one binary.
#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/admission/requester.hpp"
#include "core/bandwidth.hpp"
#include "core/ots.hpp"
#include "engine/streaming_system.hpp"
#include "scenario/scenario.hpp"
#include "util/sim_time.hpp"

namespace p2ps::scenario {
namespace {

using core::PeerClass;
using core::SegmentAssignment;
using util::SimTime;

Json assignment_to_json(const SegmentAssignment& assignment) {
  Json out = Json::object();
  out.set("window_size", assignment.window_size());
  out.set("supplier_count", assignment.supplier_count());
  Json suppliers = Json::array();
  for (std::size_t i = 0; i < assignment.supplier_count(); ++i) {
    Json supplier = Json::object();
    supplier.set("class", static_cast<std::int64_t>(assignment.supplier_class(i)));
    Json segments = Json::array();
    for (const std::int64_t segment : assignment.segments_of(i)) {
      segments.push_back(segment);
    }
    supplier.set("segments", std::move(segments));
    suppliers.push_back(std::move(supplier));
  }
  out.set("suppliers", std::move(suppliers));
  out.set("min_buffering_delay_dt", assignment.min_buffering_delay_dt());
  return out;
}

// ---- Figure 1/2: the worked media-data assignment example ----

Json fig1_assignment(const ScenarioOptions&) {
  const std::vector<PeerClass> classes{1, 2, 3, 3};
  Json out = Json::object();
  out.set("contiguous", assignment_to_json(core::contiguous_assignment(classes)));
  out.set("ots", assignment_to_json(core::ots_assignment(classes)));
  out.set("unsorted_round_robin",
          assignment_to_json(core::unsorted_round_robin_assignment(
              std::vector<PeerClass>{3, 1, 3, 2})));
  out.set("theorem1_optimum_dt", static_cast<std::int64_t>(classes.size()));
  return out;
}

// ---- Figure 3: admission order vs capacity growth (analytic rounds) ----

struct Fig3Outcome {
  Json rounds = Json::array();
  double avg_waiting_over_t = 0.0;
};

Fig3Outcome play_admission_order(std::vector<PeerClass> suppliers,
                                 const std::vector<PeerClass>& requesters,
                                 const std::vector<int>& priority) {
  Fig3Outcome outcome;
  std::vector<int> waiting(requesters.size(), -1);
  std::vector<bool> admitted(requesters.size(), false);
  int t = 0;
  while (std::find(admitted.begin(), admitted.end(), false) != admitted.end()) {
    Json round = Json::object();
    round.set("t_over_T", t);
    round.set("capacity", core::capacity(suppliers));
    std::int64_t slots = core::capacity(suppliers);
    Json admitted_now = Json::array();
    std::vector<int> joined;
    for (const int index : priority) {
      const auto i = static_cast<std::size_t>(index);
      if (!admitted[i] && slots > 0) {
        admitted[i] = true;
        waiting[i] = t;
        admitted_now.push_back(index + 1);  // 1-based Pr indices, as the paper
        joined.push_back(index);
        --slots;
      }
    }
    for (const int index : joined) {
      suppliers.push_back(requesters[static_cast<std::size_t>(index)]);
    }
    round.set("admitted", std::move(admitted_now));
    outcome.rounds.push_back(std::move(round));
    ++t;
  }
  Json final_round = Json::object();
  final_round.set("t_over_T", t);
  final_round.set("capacity", core::capacity(suppliers));
  final_round.set("admitted", Json::array());
  outcome.rounds.push_back(std::move(final_round));
  double sum = 0.0;
  for (const int w : waiting) sum += w;
  outcome.avg_waiting_over_t = sum / static_cast<double>(waiting.size());
  return outcome;
}

Json fig3_admission_order(const ScenarioOptions&) {
  const std::vector<PeerClass> suppliers{2, 2, 1, 1};
  const std::vector<PeerClass> requesters{2, 2, 1};
  Json out = Json::object();
  auto non_diff = play_admission_order(suppliers, requesters, {0, 1, 2});
  auto diff = play_admission_order(suppliers, requesters, {2, 0, 1});
  Json a = Json::object();
  a.set("rounds", std::move(non_diff.rounds));
  a.set("avg_waiting_over_T", non_diff.avg_waiting_over_t);
  Json b = Json::object();
  b.set("rounds", std::move(diff.rounds));
  b.set("avg_waiting_over_T", diff.avg_waiting_over_t);
  out.set("non_differentiated", std::move(a));
  out.set("differentiated", std::move(b));
  return out;
}

// ---- Figures 4–9 / Table 1: full simulation reproductions ----

Json fig4_capacity(const ScenarioOptions& options) {
  Json out = Json::object();
  for (const auto pattern :
       {workload::ArrivalPattern::kRampUpDown, workload::ArrivalPattern::kPeriodicBursts,
        workload::ArrivalPattern::kConstant,
        workload::ArrivalPattern::kBurstThenConstant}) {
    const auto dac =
        engine::StreamingSystem(paper_config(options, pattern, true)).run();
    const auto ndac =
        engine::StreamingSystem(paper_config(options, pattern, false)).run();
    Json entry = Json::object();
    entry.set("dac", result_to_json(dac));
    entry.set("ndac", result_to_json(ndac));
    out.set(std::string(workload::to_string(pattern)), std::move(entry));
  }
  return out;
}

Json per_class_rates(const engine::SimulationResult& result) {
  Json rates = Json::array();
  for (const auto& counters : result.totals) {
    const auto rate = counters.admission_rate();
    rates.push_back(opt_json(rate));
  }
  return rates;
}

Json fig5_admission_rate(const ScenarioOptions& options) {
  const auto dac =
      engine::StreamingSystem(
          paper_config(options, workload::ArrivalPattern::kRampUpDown, true))
          .run();
  const auto ndac =
      engine::StreamingSystem(
          paper_config(options, workload::ArrivalPattern::kRampUpDown, false))
          .run();
  Json out = Json::object();
  Json dac_json = result_to_json(dac);
  dac_json.set("admission_rate_per_class", per_class_rates(dac));
  Json ndac_json = result_to_json(ndac);
  ndac_json.set("admission_rate_per_class", per_class_rates(ndac));
  out.set("dac", std::move(dac_json));
  out.set("ndac", std::move(ndac_json));
  return out;
}

Json fig6_buffering_delay(const ScenarioOptions& options) {
  const auto dac =
      engine::StreamingSystem(
          paper_config(options, workload::ArrivalPattern::kRampUpDown, true))
          .run();
  const auto ndac =
      engine::StreamingSystem(
          paper_config(options, workload::ArrivalPattern::kRampUpDown, false))
          .run();
  const auto delays = [](const engine::SimulationResult& result) {
    Json out = Json::array();
    for (const auto& counters : result.totals) {
      const auto delay = counters.mean_delay_dt();
      out.push_back(opt_json(delay));
    }
    return out;
  };
  Json out = Json::object();
  out.set("dac_mean_delay_dt_per_class", delays(dac));
  out.set("ndac_mean_delay_dt_per_class", delays(ndac));
  out.set("dac_final_capacity", dac.final_capacity);
  out.set("ndac_final_capacity", ndac.final_capacity);
  return out;
}

Json fig7_adaptivity(const ScenarioOptions& options) {
  const auto dac =
      engine::StreamingSystem(
          paper_config(options, workload::ArrivalPattern::kPeriodicBursts, true))
          .run();
  Json series = Json::array();
  for (const auto& sample : dac.favored) {
    Json point = Json::object();
    point.set("hour", sample.t.as_hours());
    Json favored = Json::array();
    for (const double value : sample.avg_lowest_favored) {
      favored.push_back(std::isnan(value) ? Json() : Json(value));
    }
    point.set("avg_lowest_favored_by_supplier_class", std::move(favored));
    series.push_back(std::move(point));
  }
  Json out = Json::object();
  out.set("favored_series", std::move(series));
  out.set("summary", result_to_json(dac));
  return out;
}

Json fig8_parameters(const ScenarioOptions& options) {
  Json out = Json::object();
  Json m_sweep = Json::array();
  for (const std::size_t m : {std::size_t{4}, std::size_t{8}, std::size_t{16},
                              std::size_t{32}}) {
    auto config = paper_config(options, workload::ArrivalPattern::kRampUpDown, true);
    config.protocol.m_candidates = m;
    const auto result = engine::StreamingSystem(config).run();
    Json entry = Json::object();
    entry.set("m_candidates", m);
    entry.set("final_capacity", result.final_capacity);
    entry.set("admissions", result.overall.admissions);
    m_sweep.push_back(std::move(entry));
  }
  out.set("m_sweep", std::move(m_sweep));
  Json t_out_sweep = Json::array();
  for (const int minutes : {1, 2, 20, 60, 120}) {
    auto config = paper_config(options, workload::ArrivalPattern::kRampUpDown, true);
    config.protocol.t_out = SimTime::minutes(minutes);
    const auto result = engine::StreamingSystem(config).run();
    Json entry = Json::object();
    entry.set("t_out_minutes", minutes);
    entry.set("final_capacity", result.final_capacity);
    entry.set("admissions", result.overall.admissions);
    t_out_sweep.push_back(std::move(entry));
  }
  out.set("t_out_sweep", std::move(t_out_sweep));
  return out;
}

Json fig9_backoff(const ScenarioOptions& options) {
  Json sweep = Json::array();
  for (const std::int64_t e_bkf : {1, 2, 3, 4}) {
    auto config = paper_config(options, workload::ArrivalPattern::kRampUpDown, true);
    config.protocol.e_bkf = e_bkf;
    const auto result = engine::StreamingSystem(config).run();
    Json entry = Json::object();
    entry.set("e_bkf", e_bkf);
    const auto rate = result.overall.admission_rate();
    entry.set("overall_admission_rate", opt_json(rate));
    entry.set("admissions", result.overall.admissions);
    entry.set("rejections", result.overall.rejections);
    entry.set("final_capacity", result.final_capacity);
    sweep.push_back(std::move(entry));
  }
  Json out = Json::object();
  out.set("e_bkf_sweep", std::move(sweep));
  return out;
}

Json table1_rejections(const ScenarioOptions& options) {
  Json out = Json::object();
  for (const auto pattern : {workload::ArrivalPattern::kRampUpDown,
                             workload::ArrivalPattern::kPeriodicBursts}) {
    const auto dac =
        engine::StreamingSystem(paper_config(options, pattern, true)).run();
    const auto ndac =
        engine::StreamingSystem(paper_config(options, pattern, false)).run();
    Json rows = Json::array();
    for (std::size_t c = 0; c < dac.totals.size(); ++c) {
      const auto& d = dac.totals[c];
      const auto& n = ndac.totals[c];
      Json row = Json::object();
      row.set("class", static_cast<std::int64_t>(c + 1));
      const auto dr = d.mean_rejections();
      row.set("dac_mean_rejections", opt_json(dr));
      const auto nr = n.mean_rejections();
      row.set("ndac_mean_rejections", opt_json(nr));
      const auto dw = d.mean_waiting_minutes();
      row.set("dac_mean_waiting_minutes", opt_json(dw));
      const auto nw = n.mean_waiting_minutes();
      row.set("ndac_mean_waiting_minutes", opt_json(nw));
      rows.push_back(std::move(row));
    }
    out.set(std::string(workload::to_string(pattern)), std::move(rows));
  }
  Json implied = Json::array();
  for (int rho = 0; rho <= 5; ++rho) {
    Json row = Json::object();
    row.set("rejections", rho);
    row.set("waiting_minutes",
            core::RequesterBackoff::waiting_time_for(rho, SimTime::minutes(10), 2)
                .as_minutes());
    implied.push_back(std::move(row));
  }
  out.set("implied_waiting", std::move(implied));
  return out;
}

// ---- Theorem 1: exhaustive buffering-delay sweep ----

std::vector<std::vector<PeerClass>> all_sessions(PeerClass max_class) {
  std::vector<std::vector<PeerClass>> result;
  std::vector<PeerClass> current;
  const std::int64_t full = std::int64_t{1} << max_class;
  std::function<void(std::int64_t, PeerClass)> recurse =
      [&](std::int64_t remaining, PeerClass next) {
        if (remaining == 0) {
          result.push_back(current);
          return;
        }
        for (PeerClass c = next; c <= max_class; ++c) {
          if ((full >> c) <= remaining) {
            current.push_back(c);
            recurse(remaining - (full >> c), c);
            current.pop_back();
          }
        }
      };
  recurse(full, 1);
  return result;
}

Json thm1_delay_sweep(const ScenarioOptions&) {
  const auto sessions = all_sessions(5);
  std::size_t theorem_violations = 0;
  std::size_t feasibility_violations = 0;
  std::size_t baseline_wins = 0;
  struct Aggregate {
    double contiguous_sum = 0.0;
    double naive_sum = 0.0;
    std::size_t naive_suboptimal = 0;
    std::size_t count = 0;
  };
  std::map<std::size_t, Aggregate> by_n;
  for (const auto& classes : sessions) {
    const auto ots = core::ots_assignment(classes);
    const auto contiguous = core::contiguous_assignment(classes);
    const auto naive = core::naive_round_robin_assignment(classes);
    const auto n = static_cast<std::int64_t>(classes.size());
    if (ots.min_buffering_delay_dt() != n) ++theorem_violations;
    if (contiguous.min_buffering_delay_dt() < ots.min_buffering_delay_dt() ||
        naive.min_buffering_delay_dt() < ots.min_buffering_delay_dt()) {
      ++baseline_wins;
    }
    const auto buffer = ots.simulate_arrivals(SimTime::seconds(1), 2);
    const bool feasible_at_n = buffer.check(SimTime::seconds(1) * n).feasible;
    const bool infeasible_below =
        !buffer.check(SimTime::seconds(1) * n - SimTime::millis(1)).feasible;
    if (!feasible_at_n || !infeasible_below) ++feasibility_violations;
    auto& agg = by_n[classes.size()];
    agg.contiguous_sum += static_cast<double>(contiguous.min_buffering_delay_dt());
    agg.naive_sum += static_cast<double>(naive.min_buffering_delay_dt());
    agg.naive_suboptimal += naive.min_buffering_delay_dt() != n ? 1 : 0;
    ++agg.count;
  }
  Json rows = Json::array();
  for (const auto& [n, agg] : by_n) {
    Json row = Json::object();
    row.set("suppliers", n);
    row.set("sessions", agg.count);
    row.set("ots_delay_dt", n);
    row.set("avg_contiguous_dt", agg.contiguous_sum / static_cast<double>(agg.count));
    row.set("avg_naive_rr_dt", agg.naive_sum / static_cast<double>(agg.count));
    row.set("naive_rr_suboptimal", agg.naive_suboptimal);
    rows.push_back(std::move(row));
  }
  Json out = Json::object();
  out.set("sessions_checked", sessions.size());
  out.set("theorem_violations", theorem_violations);
  out.set("feasibility_violations", feasibility_violations);
  out.set("baseline_wins", baseline_wins);
  out.set("by_supplier_count", std::move(rows));
  return out;
}

}  // namespace

void register_figure_scenarios(Registry& registry) {
  registry.add({"fig1_assignment",
                "Figure 1/2 — media-data assignment and buffering delay of the "
                "paper's worked example (contiguous vs OTS_p2p vs unsorted RR)",
                fig1_assignment});
  registry.add({"fig3_admission_order",
                "Figure 3 — admission order vs capacity growth: differentiated "
                "admission doubles capacity sooner and lowers average waiting",
                fig3_admission_order});
  registry.add({"fig4_capacity",
                "Figure 4 — capacity amplification, DAC_p2p vs NDAC_p2p over "
                "all four arrival patterns",
                fig4_capacity});
  registry.add({"fig5_admission_rate",
                "Figure 5 — per-class cumulative admission rate (pattern 2), "
                "DAC_p2p vs NDAC_p2p",
                fig5_admission_rate});
  registry.add({"fig6_buffering_delay",
                "Figure 6 — per-class cumulative average buffering delay "
                "(pattern 2), DAC_p2p vs NDAC_p2p",
                fig6_buffering_delay});
  registry.add({"fig7_adaptivity",
                "Figure 7 — lowest favored class per supplier class over time "
                "(pattern 4), the adaptivity of differentiation",
                fig7_adaptivity});
  registry.add({"fig8_parameters",
                "Figure 8 — impact of M (candidates probed) and T_out (idle "
                "elevation timeout) on capacity amplification",
                fig8_parameters});
  registry.add({"fig9_backoff",
                "Figure 9 — impact of the backoff factor E_bkf on the overall "
                "admission rate; constant retry beats exponential backoff",
                fig9_backoff});
  registry.add({"table1_rejections",
                "Table 1 — per-class average rejections before admission and "
                "implied waiting times, DAC_p2p vs NDAC_p2p",
                table1_rejections});
  registry.add({"thm1_delay_sweep",
                "Theorem 1 — minimum buffering delay is N*dt for every valid "
                "supplier multiset up to class 5, verified three ways",
                thm1_delay_sweep});
}

}  // namespace p2ps::scenario
