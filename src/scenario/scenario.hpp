// The scenario registry behind the unified `p2ps_run` CLI.
//
// A scenario is a named, seeded, deterministic workload: every paper
// figure/table reproduction and every example workload registers here so
// one binary can enumerate and run them all with uniform flags and JSON
// output. Determinism contract: for fixed (seed, scale, flags) a scenario
// must return an identical Json on every run — no wall clocks, no global
// RNG, no pointer values.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/config.hpp"
#include "engine/result.hpp"
#include "net/latency.hpp"
#include "net/mailbox.hpp"
#include "scenario/json.hpp"

namespace p2ps::scenario {

/// Per-run knobs shared by every scenario.
struct ScenarioOptions {
  std::uint64_t seed = 2002;
  /// Population divisor: 1 = the paper's full scale; N shrinks requester
  /// counts by N (seeds are floored so tiny runs stay feasible).
  std::int64_t scale = 1;
  /// Simulator event-list backend. Deliberately absent from the output
  /// envelope: both backends must produce byte-identical JSON, and keeping
  /// the field out lets tests/ci assert that by comparing whole documents.
  sim::EventListKind event_list = sim::EventListKind::kBinaryHeap;
  /// Timer-subsystem strategy for every engine's TimerService. Also absent
  /// from the envelope: the strategies must produce byte-identical
  /// payloads up to the event-core mechanics counters (events_executed and
  /// the peak_event_list* split — the counters the strategies exist to
  /// change; see docs/timers.md and strip_event_mechanics()).
  sim::TimerStrategy timers = sim::TimerConfig{}.strategy;
  /// Latency model for message-level (msg_* / perf_messages) scenarios;
  /// unset = each scenario's own default. Echoed inside those scenarios'
  /// payloads (it is a real workload parameter), ignored by session-level
  /// scenarios.
  std::optional<net::LatencyModelKind> latency;
  /// Message drop probability for message-level scenarios; unset = each
  /// scenario's own default (msg_flash_crowd injects 2%). Echoed in those
  /// payloads as drop_probability, ignored by session-level scenarios.
  std::optional<double> loss;
  /// Mailbox delivery mode for message-level scenarios. Like the event
  /// list, deliberately byte-invisible: batched and unbatched runs must
  /// emit identical JSON (docs/message_batching.md), and keeping the field
  /// out of every payload lets tests compare whole documents.
  net::TransportMode transport = net::TransportMode::kBatched;
  /// Supplier-selection policy override (--policy); null = every scenario's
  /// own default (the paper-dac baseline except where a scenario pins its
  /// own, e.g. ablation_selection). Deliberately absent from the envelope:
  /// the default must stay byte-identical to pre-policy-layer output, and
  /// policy-lab scenarios echo the policy name inside their payloads where
  /// it is a real workload parameter.
  const core::SelectionPolicy* policy = nullptr;
  /// Shard count for sharded_* scenarios (--shards); unset = each
  /// scenario's own default. Byte-invisible by contract: a sharded
  /// scenario's payload must be identical for EVERY shard count
  /// (docs/sharding.md), so the value never appears outside --mechanics.
  std::optional<int> shards;
  /// Worker threads for sharded scenarios (--shard-threads); wall-clock
  /// only, byte-invisible like the shard count.
  int shard_threads = 1;
  /// Window-fusion factor for sharded scenarios (--fusion); unset = the
  /// engine default (ShardedConfig::fusion). 1 is the unfused unit-
  /// lookahead reference mode. Byte-invisible like the shard count: the
  /// executed sub-window sequence is identical for every value
  /// (docs/sharding.md, Adaptive lookahead), so the value never appears
  /// outside --mechanics.
  std::optional<int> fusion;
  /// Emit run-mechanics diagnostics (--mechanics): per-shard event counts,
  /// peak event lists, window/exchange counters, peak RSS. Off by default
  /// because these are partition- and machine-dependent — with the flag
  /// off, payloads stay byte-comparable across shard/thread counts.
  bool mechanics = false;
  /// Borrowed telemetry sink (--telemetry); null = off. Byte-invisible by
  /// contract: payloads must be identical with telemetry on or off
  /// (docs/observability.md; enforced by tests/obs_test.cpp), so nothing
  /// of it ever appears in the envelope.
  obs::Telemetry* telemetry = nullptr;
};

using ScenarioFn = std::function<Json(const ScenarioOptions&)>;

struct Scenario {
  std::string name;
  std::string description;
  ScenarioFn run;
};

/// Global scenario registry. Registration happens once, explicitly, via
/// register_all_scenarios() — no static-initialisation-order tricks, so the
/// set and order of scenarios is identical in every binary that asks.
class Registry {
 public:
  static Registry& instance();

  /// Registers a scenario; throws ContractViolation on duplicate names.
  void add(Scenario scenario);

  /// All scenarios, sorted by name.
  [[nodiscard]] std::vector<const Scenario*> list() const;

  /// Lookup by exact name; nullptr when unknown.
  [[nodiscard]] const Scenario* find(std::string_view name) const;

  [[nodiscard]] std::size_t size() const { return scenarios_.size(); }

 private:
  std::vector<Scenario> scenarios_;
};

/// Idempotently registers every built-in scenario (figures + workloads).
void register_all_scenarios();

/// Runs a registered scenario and wraps its payload in the standard
/// envelope {scenario, seed, scale, results}. Throws ContractViolation for
/// unknown names.
[[nodiscard]] Json run_scenario(std::string_view name, const ScenarioOptions& options);

// ---- helpers shared by scenario implementations ----

/// The paper's Section 5.1 simulation config at `options.scale` — a thin
/// wrapper over engine::section51_config, the single definition shared
/// with bench_util so figures and scenarios agree by construction.
[[nodiscard]] engine::SimulationConfig paper_config(const ScenarioOptions& options,
                                                    workload::ArrivalPattern pattern,
                                                    bool differentiated);

/// Applies `options.scale` to an example-sized population in place.
void scale_population(const ScenarioOptions& options, engine::SimulationConfig& config);

/// Summary of one simulation run: capacity, admissions, per-class totals
/// and an hourly capacity series subsampled at `series_step_hours`.
[[nodiscard]] Json result_to_json(const engine::SimulationResult& result,
                                  int series_step_hours = 8);

/// The single policy for missing statistics: nullopt renders as JSON null
/// (never 0.0, which would be indistinguishable from a genuine zero).
[[nodiscard]] inline Json opt_json(const std::optional<double>& value) {
  return value ? Json(*value) : Json();
}

/// Zeroes the event-core mechanics counters in a serialized payload —
/// events_executed and the peak_event_list/timer split. These are the only
/// fields the `--timers` strategies may change (the non-timer event
/// trajectory is strategy-invariant by construction, docs/timers.md), so
/// two runs differing only in timer strategy must compare equal after this
/// normalization. Shared by the parity test and scripts/ci.sh's sed.
[[nodiscard]] std::string strip_event_mechanics(std::string json_text);

// Registration entry points, one per implementation file.
void register_figure_scenarios(Registry& registry);
void register_workload_scenarios(Registry& registry);
void register_ablation_scenarios(Registry& registry);
void register_perf_scenarios(Registry& registry);
void register_message_scenarios(Registry& registry);
void register_study_scenarios(Registry& registry);
void register_sharded_scenarios(Registry& registry);

}  // namespace p2ps::scenario
