#include "scenario/sweep.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "scenario/scenario.hpp"
#include "util/assert.hpp"

namespace p2ps::scenario {

std::vector<std::string> split_csv(std::string_view text) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string_view::npos ? text.size() : comma;
    if (end > start) fields.emplace_back(text.substr(start, end - start));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return fields;
}

std::vector<SweepPoint> SweepSpec::points() const {
  P2PS_REQUIRE_MSG(!scenarios.empty(), "sweep needs at least one scenario");
  P2PS_REQUIRE_MSG(!seeds.empty(), "sweep needs at least one seed");
  P2PS_REQUIRE_MSG(!scales.empty(), "sweep needs at least one scale");
  P2PS_REQUIRE_MSG(!event_lists.empty(), "sweep needs at least one event list");
  P2PS_REQUIRE_MSG(!latencies.empty(), "sweep needs at least one latency model");
  P2PS_REQUIRE_MSG(!losses.empty(), "sweep needs at least one loss value");
  P2PS_REQUIRE_MSG(!policies.empty(), "sweep needs at least one policy");
  for (const auto& loss : losses) {
    P2PS_REQUIRE_MSG(!loss || (*loss >= 0.0 && *loss <= 1.0),
                     "sweep losses must be probabilities in [0, 1]");
  }
  register_all_scenarios();
  for (const auto& name : scenarios) {
    P2PS_REQUIRE_MSG(Registry::instance().find(name) != nullptr,
                     "unknown scenario in sweep: " + name +
                         " (run with --list to enumerate)");
  }
  for (const std::int64_t scale : scales) {
    P2PS_REQUIRE_MSG(scale >= 1, "sweep scales must be >= 1");
  }
  std::vector<SweepPoint> out;
  out.reserve(scenarios.size() * seeds.size() * scales.size() *
              event_lists.size() * latencies.size() * losses.size() *
              policies.size());
  for (const auto& name : scenarios) {
    for (const std::uint64_t seed : seeds) {
      for (const std::int64_t scale : scales) {
        for (const sim::EventListKind kind : event_lists) {
          for (const auto& latency : latencies) {
            for (const auto& loss : losses) {
              for (const core::SelectionPolicy* policy : policies) {
                out.push_back(SweepPoint{name, seed, scale, kind, latency,
                                         loss, policy, timers});
              }
            }
          }
        }
      }
    }
  }
  return out;
}

namespace {

Json run_one_point(const SweepPoint& point) {
  ScenarioOptions options;
  options.seed = point.seed;
  options.scale = point.scale;
  options.event_list = point.event_list;
  options.latency = point.latency;
  options.loss = point.loss;
  options.policy = point.policy;
  options.timers = point.timers;
  return run_scenario(point.scenario, options);
}

}  // namespace

Json run_sweep_points(const std::vector<SweepPoint>& points, int threads,
                      SweepStats* stats) {
  P2PS_REQUIRE_MSG(threads >= 1, "sweep needs at least one thread");
  P2PS_REQUIRE_MSG(!points.empty(), "sweep has no points");
  register_all_scenarios();  // once, before any worker touches the registry
  if (stats != nullptr) *stats = SweepStats{};

  std::vector<Json> runs(points.size());
  std::exception_ptr first_failure;

  const auto pool_size = static_cast<std::size_t>(threads) < points.size()
                             ? static_cast<std::size_t>(threads)
                             : points.size();
  if (pool_size == 1) {
    // Serial path: a plain indexed loop on the calling thread — no pool,
    // no atomic work queue, no mutex. The first failure ends the loop
    // (which is the lowest failing index by construction), matching the
    // parallel path's lowest-index-wins semantics.
    for (std::size_t index = 0; index < points.size(); ++index) {
      try {
        runs[index] = run_one_point(points[index]);
      } catch (...) {
        first_failure = std::current_exception();
        break;
      }
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex failure_mutex;
    std::size_t first_failure_index = points.size();

    const auto worker = [&] {
      for (;;) {
        const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
        // Fail fast: points already in flight finish, queued ones are
        // skipped — an early failure doesn't cost the rest of the study.
        if (index >= points.size() || failed.load(std::memory_order_relaxed)) {
          return;
        }
        try {
          runs[index] = run_one_point(points[index]);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(failure_mutex);
          // Lowest point index wins, so the surfaced error is deterministic
          // even when several points fail concurrently.
          if (index < first_failure_index) {
            first_failure_index = index;
            first_failure = std::current_exception();
          }
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(pool_size);
    for (std::size_t i = 0; i < pool_size; ++i) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
    if (stats != nullptr) stats->pool_threads = pool_size;
  }
  if (first_failure) std::rethrow_exception(first_failure);

  // Merge in point order — and without echoing the thread count — so the
  // report is byte-identical for any --threads value.
  Json report = Json::object();
  Json header = Json::object();
  header.set("points", static_cast<std::int64_t>(points.size()));
  report.set("sweep", std::move(header));
  Json merged = Json::array();
  for (std::size_t index = 0; index < points.size(); ++index) {
    Json entry = Json::object();
    entry.set("index", static_cast<std::int64_t>(index));
    entry.set("event_list", std::string(to_string(points[index].event_list)));
    entry.set("latency",
              points[index].latency
                  ? std::string(net::to_string(*points[index].latency))
                  : std::string("default"));
    entry.set("loss", points[index].loss ? Json(*points[index].loss)
                                         : Json("default"));
    entry.set("policy", points[index].policy
                            ? std::string(points[index].policy->name())
                            : std::string("default"));
    entry.set("run", std::move(runs[index]));
    merged.push_back(std::move(entry));
  }
  report.set("runs", std::move(merged));
  return report;
}

Json run_sweep(const SweepSpec& spec, int threads) {
  return run_sweep_points(spec.points(), threads);
}

}  // namespace p2ps::scenario
