// Sharded scenario family — the conservative-parallel engine
// (engine::ShardedSystem over ShardRunner + ShardRouter) at and beyond
// paper scale.
//
// Parity contract (the family's reason to exist): a sharded scenario's
// payload is byte-identical for EVERY --shards and --shard-threads value,
// including --shards 1 — partitioning is an execution detail, never a
// workload parameter (docs/sharding.md). Everything partition- or
// machine-dependent (per-shard event counts, window/exchange counters,
// peak RSS) is emitted only behind --mechanics, the same gate the
// perf_messages mechanics use, so default payloads stay whole-document
// comparable in tests/shard_test.cpp and scripts/ci.sh.
#include <string>
#include <utility>

#include "core/bandwidth.hpp"
#include "engine/sharded_system.hpp"
#include "scenario/scenario.hpp"
#include "util/assert.hpp"
#include "util/sim_time.hpp"

namespace p2ps::scenario {
namespace {

using util::SimTime;

/// Shared base: seed/backend/shard plumbing plus the latency model (each
/// scenario picks its default) and the loss axis. --timers and --transport
/// are deliberately ignored — the sharded engine has no timer population
/// and its own transport — which makes parity across those axes exact.
engine::ShardedConfig sharded_config(const ScenarioOptions& options,
                                     int default_shards,
                                     net::LatencyModelKind default_latency) {
  engine::ShardedConfig config;
  config.seed = options.seed;
  config.event_list = options.event_list;
  config.shards = options.shards.value_or(default_shards);
  config.threads = options.shard_threads;
  config.fusion = options.fusion.value_or(config.fusion);
  config.latency = net::LatencyModel::of(options.latency.value_or(default_latency));
  config.loss = options.loss.value_or(0.0);
  if (options.policy != nullptr) config.selection_policy = options.policy;
  config.telemetry = options.telemetry;
  return config;
}

Json sharded_class_json(const engine::ShardedClassTotals& totals) {
  Json out = Json::object();
  out.set("first_requests", totals.first_requests);
  out.set("attempts", totals.attempts);
  out.set("admissions", totals.admissions);
  out.set("rejections", totals.rejections);
  // Derived once from the merged integer sums (mirroring
  // metrics::ClassCounters) — no floating-point accumulation anywhere, so
  // shard structure cannot leak through non-associativity.
  out.set("admission_rate",
          totals.first_requests > 0
              ? Json(static_cast<double>(totals.admissions) /
                     static_cast<double>(totals.first_requests))
              : Json());
  out.set("mean_delay_dt",
          totals.admissions > 0
              ? Json(static_cast<double>(totals.delay_dt_sum) /
                     static_cast<double>(totals.admissions))
              : Json());
  out.set("mean_rejections",
          totals.admissions > 0
              ? Json(static_cast<double>(totals.rejections_at_admission_sum) /
                     static_cast<double>(totals.admissions))
              : Json());
  out.set("mean_waiting_minutes",
          totals.admissions > 0
              ? Json(static_cast<double>(totals.waiting_ms_sum) / 60'000.0 /
                     static_cast<double>(totals.admissions))
              : Json());
  return out;
}

/// Partition-invariant payload, plus the --mechanics block when asked.
Json sharded_result_to_json(const ScenarioOptions& options,
                            const engine::ShardedConfig& config,
                            const engine::ShardedResult& result,
                            int series_step_hours) {
  Json out = Json::object();
  out.set("final_capacity", result.final_capacity);
  out.set("max_capacity", result.max_capacity);
  out.set("suppliers_at_end", result.suppliers_at_end);
  out.set("sessions_completed", result.sessions_completed);
  out.set("sessions_active_at_end", result.sessions_active_at_end);
  out.set("hold_expirations", result.hold_expirations);
  out.set("watchdog_recoveries", result.watchdog_recoveries);
  out.set("overall", sharded_class_json(result.overall));
  Json per_class = Json::array();
  for (const auto& totals : result.totals) {
    per_class.push_back(sharded_class_json(totals));
  }
  out.set("per_class", std::move(per_class));
  Json messages = Json::object();
  messages.set("sent", result.messages_sent);
  messages.set("delivered", result.messages_delivered);
  messages.set("dropped", result.messages_dropped);
  out.set("messages", std::move(messages));
  if (!result.hourly.empty() && series_step_hours > 0) {
    Json series = Json::array();
    const int end_hour = static_cast<int>(result.hourly.back().t.as_hours());
    for (int h = 0; h <= end_hour; h += series_step_hours) {
      const auto& sample = result.hourly[static_cast<std::size_t>(h)];
      P2PS_CHECK(sample.t == SimTime::hours(h));
      Json point = Json::object();
      point.set("hour", h);
      // Whole-stream capacity floored once from the merged exact units.
      point.set("capacity", core::capacity(core::Bandwidth::from_units(
                                sample.capacity_units)));
      point.set("active_sessions", sample.active_sessions);
      point.set("suppliers", sample.suppliers);
      series.push_back(std::move(point));
    }
    out.set("capacity_series", std::move(series));
  }
  if (options.mechanics) {
    Json mechanics = Json::object();
    mechanics.set("shards", config.shards);
    mechanics.set("threads", config.threads);
    mechanics.set("fusion", config.fusion);
    mechanics.set("windows", result.windows);
    mechanics.set("windows_fused", result.windows_fused);
    mechanics.set("windows_idle_skipped", result.windows_idle_skipped);
    mechanics.set("lookahead_avg_ms", result.lookahead_avg_ms);
    mechanics.set("directory_flushes", result.directory_flushes);
    mechanics.set("cross_shard_messages", result.cross_shard_messages);
    mechanics.set("peak_rss_bytes", result.peak_rss_bytes);
    // The memory campaign's headline number: whole-process peak RSS over
    // the whole population (docs/memory.md). Includes every fixed cost
    // (binary, directory, arrival schedule), so it upper-bounds the
    // per-peer footprint honestly.
    const std::int64_t total_peers =
        config.population.seeds + config.population.requesters;
    mechanics.set("bytes_per_peer",
                  total_peers > 0 ? result.peak_rss_bytes / total_peers : 0);
    mechanics.set("pool_allocations", result.pool_allocations);
    mechanics.set("pool_reuses", result.pool_reuses);
    Json per_shard = Json::array();
    for (const auto& shard : result.per_shard) {
      Json one = Json::object();
      one.set("events_executed", shard.events_executed);
      one.set("peak_event_list", shard.peak_event_list);
      one.set("messages_sent", shard.messages_sent);
      per_shard.push_back(std::move(one));
    }
    mechanics.set("per_shard", std::move(per_shard));
    out.set("mechanics", std::move(mechanics));
  }
  return out;
}

// ---- msg_fig5_sharded: the paper's fig5 population on the sharded
// engine — the byte-parity reference workload for any --shards ----

Json msg_fig5_sharded(const ScenarioOptions& options) {
  auto config = sharded_config(options, /*default_shards=*/4,
                               net::LatencyModelKind::kTwoClass);
  config.pattern = workload::ArrivalPattern::kRampUpDown;
  config.arrival_window = SimTime::hours(72);
  config.horizon = SimTime::hours(144);
  workload::apply_population_divisor(config.population, options.scale);

  engine::ShardedSystem system(std::move(config));
  const auto result = system.run();
  Json out = Json::object();
  out.set("latency", std::string(net::to_string(system.config().latency.kind)));
  out.set("drop_probability", system.config().loss);
  out.set("run", sharded_result_to_json(options, system.config(), result, 12));
  return out;
}

// ---- perf_sharded_scale: the million-peer point — 1,000,000 requesters
// against 2,000 seeds under fixed 40 ms latency (maximal delivery
// batching), 10 shards by default. The BENCH_7 workload ----

Json perf_sharded_scale(const ScenarioOptions& options) {
  auto config = sharded_config(options, /*default_shards=*/10,
                               net::LatencyModelKind::kFixed);
  config.population.seeds = 2'000;
  config.population.requesters = 1'000'000;
  config.pattern = workload::ArrivalPattern::kConstant;
  config.arrival_window = SimTime::hours(2);
  config.horizon = SimTime::hours(4);
  workload::apply_population_divisor(config.population, options.scale);

  engine::ShardedSystem system(std::move(config));
  const auto result = system.run();
  Json out = Json::object();
  out.set("population", system.config().population.seeds +
                            system.config().population.requesters);
  out.set("latency", std::string(net::to_string(system.config().latency.kind)));
  out.set("drop_probability", system.config().loss);
  out.set("run", sharded_result_to_json(options, system.config(), result, 1));
  return out;
}

// ---- perf_sharded_10m: the ten-million-peer point — 10,000,000
// requesters against 20,000 seeds, same shape as perf_sharded_scale ×10.
// Only viable because per-peer state is the compact hot/cold split
// (docs/memory.md): ~21 hot bytes/peer plus activity-sized pools, so the
// whole 10,020,000-peer run fits a few hundred MB of RSS. The BENCH_8
// workload ----

Json perf_sharded_10m(const ScenarioOptions& options) {
  auto config = sharded_config(options, /*default_shards=*/10,
                               net::LatencyModelKind::kFixed);
  config.population.seeds = 20'000;
  config.population.requesters = 10'000'000;
  config.pattern = workload::ArrivalPattern::kConstant;
  config.arrival_window = SimTime::hours(2);
  config.horizon = SimTime::hours(4);
  workload::apply_population_divisor(config.population, options.scale);

  engine::ShardedSystem system(std::move(config));
  const auto result = system.run();
  Json out = Json::object();
  out.set("population", system.config().population.seeds +
                            system.config().population.requesters);
  out.set("latency", std::string(net::to_string(system.config().latency.kind)));
  out.set("drop_probability", system.config().loss);
  out.set("run", sharded_result_to_json(options, system.config(), result, 1));
  return out;
}

}  // namespace

void register_sharded_scenarios(Registry& registry) {
  registry.add({"msg_fig5_sharded",
                "Sharded fig5 — the 50,100-peer ramp-up-down population on "
                "the conservative-parallel engine; payload is byte-identical "
                "for every --shards/--shard-threads value",
                msg_fig5_sharded});
  registry.add({"perf_sharded_scale",
                "Perf — 1,002,000 peers across N shards (default 10) under "
                "fixed latency; per-shard throughput and memory mechanics "
                "behind --mechanics (BENCH_7)",
                perf_sharded_scale});
  registry.add({"perf_sharded_10m",
                "Perf — 10,020,000 peers across N shards (default 10) under "
                "fixed latency; the compact-peer-state memory campaign's "
                "headline run, bytes/peer behind --mechanics (BENCH_8)",
                perf_sharded_10m});
}

}  // namespace p2ps::scenario
