// Protocol ablations as registered scenarios: transient/permanent churn
// and defection, the reminder technique, and the supplier selection
// policy. Each mirrors the corresponding bench/ablation_* harness. The
// event-queue ablation is deliberately NOT a scenario — it measures
// wall-clock throughput, which would violate the determinism contract; it
// remains a bench binary.
#include <string>
#include <utility>
#include <vector>

#include "engine/streaming_system.hpp"
#include "scenario/scenario.hpp"
#include "util/sim_time.hpp"

namespace p2ps::scenario {
namespace {

Json churn_row(const engine::SimulationResult& result) {
  Json row = Json::object();
  row.set("admissions", result.overall.admissions);
  const auto rejections = result.overall.mean_rejections();
  row.set("mean_rejections", opt_json(rejections));
  const auto waiting = result.overall.mean_waiting_minutes();
  row.set("mean_waiting_minutes", opt_json(waiting));
  row.set("suppliers_departed", result.suppliers_departed);
  row.set("final_capacity", result.final_capacity);
  row.set("max_capacity", result.max_capacity);
  return row;
}

// ---- Churn/defection: the paper's zero-churn assumptions removed ----

Json ablation_churn(const ScenarioOptions& options) {
  const auto base = [&] {
    return paper_config(options, workload::ArrivalPattern::kRampUpDown, true);
  };
  Json out = Json::object();

  Json down_sweep = Json::array();
  for (const double p : {0.0, 0.1, 0.3, 0.5}) {
    auto config = base();
    config.peer_down_probability = p;
    Json row = churn_row(engine::StreamingSystem(config).run());
    row.set("peer_down_probability", p);
    down_sweep.push_back(std::move(row));
  }
  out.set("transient_down_sweep", std::move(down_sweep));

  Json departure_sweep = Json::array();
  for (const double p : {0.0, 0.02, 0.05, 0.10}) {
    auto config = base();
    config.supplier_departure_probability = p;
    Json row = churn_row(engine::StreamingSystem(config).run());
    row.set("supplier_departure_probability", p);
    departure_sweep.push_back(std::move(row));
  }
  out.set("permanent_departure_sweep", std::move(departure_sweep));

  Json defection_sweep = Json::array();
  for (const double p : {0.0, 0.25, 0.5, 1.0}) {
    auto config = base();
    config.defection_probability = p;
    const auto result = engine::StreamingSystem(config).run();
    Json row = churn_row(result);
    row.set("defection_probability", p);
    row.set("capacity_at_72h", result.capacity_at(util::SimTime::hours(72)));
    defection_sweep.push_back(std::move(row));
  }
  out.set("defection_sweep", std::move(defection_sweep));
  return out;
}

// ---- Reminders: how much differentiation the reminder technique carries ----

Json per_class_rejections_and_delays(const engine::SimulationResult& result) {
  Json rows = Json::array();
  for (std::size_t c = 0; c < result.totals.size(); ++c) {
    const auto& counters = result.totals[c];
    Json row = Json::object();
    row.set("class", static_cast<std::int64_t>(c + 1));
    const auto rejections = counters.mean_rejections();
    row.set("mean_rejections", opt_json(rejections));
    const auto delay = counters.mean_delay_dt();
    row.set("mean_delay_dt", opt_json(delay));
    rows.push_back(std::move(row));
  }
  return rows;
}

Json ablation_reminder(const ScenarioOptions& options) {
  Json out = Json::object();
  for (const auto pattern : {workload::ArrivalPattern::kRampUpDown,
                             workload::ArrivalPattern::kPeriodicBursts}) {
    auto with_config = paper_config(options, pattern, true);
    auto without_config = with_config;
    without_config.protocol.reminders_enabled = false;
    const auto with_reminders = engine::StreamingSystem(with_config).run();
    const auto without_reminders = engine::StreamingSystem(without_config).run();

    const auto spread = [](const engine::SimulationResult& result) {
      return result.totals.back().mean_rejections().value_or(0.0) -
             result.totals.front().mean_rejections().value_or(0.0);
    };
    Json entry = Json::object();
    entry.set("with_reminders", per_class_rejections_and_delays(with_reminders));
    entry.set("without_reminders", per_class_rejections_and_delays(without_reminders));
    entry.set("final_capacity_with", with_reminders.final_capacity);
    entry.set("final_capacity_without", without_reminders.final_capacity);
    entry.set("rejection_spread_with", spread(with_reminders));
    entry.set("rejection_spread_without", spread(without_reminders));
    out.set(std::string(workload::to_string(pattern)), std::move(entry));
  }
  return out;
}

// ---- Selection policy: greedy largest-offer-first vs max-cardinality ----

Json ablation_selection(const ScenarioOptions& options) {
  auto greedy_config =
      paper_config(options, workload::ArrivalPattern::kRampUpDown, true);
  auto wide_config = greedy_config;
  wide_config.selection_policy = &core::max_cardinality_policy();
  const auto greedy = engine::StreamingSystem(greedy_config).run();
  const auto wide = engine::StreamingSystem(wide_config).run();

  const auto per_class = [](const engine::SimulationResult& result) {
    Json rows = Json::array();
    for (std::size_t c = 0; c < result.totals.size(); ++c) {
      const auto& counters = result.totals[c];
      Json row = Json::object();
      row.set("class", static_cast<std::int64_t>(c + 1));
      const auto delay = counters.mean_delay_dt();
      row.set("mean_delay_dt", opt_json(delay));
      const auto rate = counters.admission_rate();
      row.set("admission_rate", opt_json(rate));
      rows.push_back(std::move(row));
    }
    return rows;
  };
  Json out = Json::object();
  out.set("greedy_per_class", per_class(greedy));
  out.set("max_cardinality_per_class", per_class(wide));
  out.set("greedy_overall_delay_dt", opt_json(greedy.overall.mean_delay_dt()));
  out.set("max_cardinality_overall_delay_dt",
          opt_json(wide.overall.mean_delay_dt()));
  out.set("greedy_final_capacity", greedy.final_capacity);
  out.set("max_cardinality_final_capacity", wide.final_capacity);
  return out;
}

}  // namespace

void register_ablation_scenarios(Registry& registry) {
  registry.add({"ablation_churn",
                "Ablation — transient down-probability, permanent supplier "
                "departure and commitment defection sweeps; graceful "
                "degradation vs collapse of self-amplification",
                ablation_churn});
  registry.add({"ablation_reminder",
                "Ablation — DAC_p2p with and without the reminder technique; "
                "without it, differentiation decays after load bursts",
                ablation_reminder});
  registry.add({"ablation_selection",
                "Ablation — greedy largest-offer-first vs max-cardinality "
                "supplier selection; cardinality inflates Theorem-1 delay",
                ablation_selection});
}

}  // namespace p2ps::scenario
