// Message-level scenario family — the distributed DAC_p2p engine
// (AsyncStreamingSystem over the batched MailboxRouter) at paper scale.
//
// Two contracts split the family:
//   * msg_* scenarios are parity-locked: their payloads carry protocol
//     results only (admissions, capacity growth, message totals), never
//     event-core mechanics, so a run must be byte-identical across both
//     event-list backends AND across batched/unbatched transport modes
//     (tests/mailbox_test.cpp, scripts/ci.sh, scripts/bench.sh).
//   * perf_messages deliberately exposes the mechanics (events executed,
//     peak event list, drains, batch sizes, pool reuse) — it is the
//     workload scripts/bench.sh times batched vs unbatched for
//     BENCH_4.json, and is therefore exempt from the cross-mode parity
//     contract (cross-backend parity still holds).
#include <string>
#include <utility>

#include "engine/async_system.hpp"
#include "metrics/collector.hpp"
#include "scenario/scenario.hpp"
#include "util/sim_time.hpp"

namespace p2ps::scenario {
namespace {

using util::SimTime;

/// Shared base: seed/backend/transport-mode/timer plumbing plus the
/// latency model (defaulting to the paper-mirroring two-class split) and
/// the loss axis (defaulting to each scenario's own drop probability).
engine::AsyncSimulationConfig message_config(
    const ScenarioOptions& options,
    net::LatencyModelKind default_latency = net::LatencyModelKind::kTwoClass,
    double default_loss = 0.0) {
  engine::AsyncSimulationConfig config;
  config.seed = options.seed;
  config.event_list = options.event_list;
  config.timers.strategy = options.timers;
  config.transport.mode = options.transport;
  config.transport.latency =
      net::LatencyModel::of(options.latency.value_or(default_latency));
  config.transport.drop_probability = options.loss.value_or(default_loss);
  if (options.policy != nullptr) config.selection_policy = options.policy;
  config.telemetry = options.telemetry;
  return config;
}

[[nodiscard]] std::string latency_label(
    const engine::AsyncSimulationConfig& config) {
  return std::string(net::to_string(config.transport.latency.kind));
}

Json class_counters_to_json(const metrics::ClassCounters& counters) {
  Json out = Json::object();
  out.set("first_requests", counters.first_requests);
  out.set("attempts", counters.attempts);
  out.set("admissions", counters.admissions);
  out.set("rejections", counters.rejections);
  out.set("admission_rate", opt_json(counters.admission_rate()));
  out.set("mean_delay_dt", opt_json(counters.mean_delay_dt()));
  out.set("mean_rejections", opt_json(counters.mean_rejections()));
  out.set("mean_waiting_minutes", opt_json(counters.mean_waiting_minutes()));
  return out;
}

/// Protocol-level summary of one message-level run. Unlike result_to_json
/// this deliberately omits events_executed and peak_event_list: those are
/// transport-mode mechanics, and msg_* payloads must be byte-identical
/// across batched/unbatched delivery.
Json msg_result_to_json(const engine::SimulationResult& result,
                        const net::MessageTransport& transport,
                        int series_step_hours) {
  Json out = Json::object();
  out.set("final_capacity", result.final_capacity);
  out.set("max_capacity", result.max_capacity);
  out.set("suppliers_at_end", result.suppliers_at_end);
  out.set("sessions_completed", result.sessions_completed);
  out.set("sessions_active_at_end", result.sessions_active_at_end);
  out.set("overall", class_counters_to_json(result.overall));
  Json per_class = Json::array();
  for (const auto& counters : result.totals) {
    per_class.push_back(class_counters_to_json(counters));
  }
  out.set("per_class", std::move(per_class));
  Json messages = Json::object();
  messages.set("sent", transport.sent());
  messages.set("delivered", transport.delivered());
  messages.set("dropped", transport.dropped());
  messages.set("undeliverable", transport.undeliverable());
  out.set("messages", std::move(messages));
  if (!result.hourly.empty() && series_step_hours > 0) {
    const int end_hour = static_cast<int>(result.hourly.back().t.as_hours());
    Json series = Json::array();
    for (int h = 0; h <= end_hour; h += series_step_hours) {
      const auto& sample = result.sample_at(util::SimTime::hours(h));
      Json point = Json::object();
      point.set("hour", h);
      point.set("capacity", sample.capacity);
      point.set("active_sessions", sample.active_sessions);
      point.set("suppliers", sample.suppliers);
      series.push_back(std::move(point));
    }
    out.set("capacity_series", std::move(series));
  }
  return out;
}

// ---- msg_fig5_scale: the paper's fig5 population (100 seeds + 50,000
// requesters, ramp-up-down arrivals) run message-by-message — the scale
// the batched mailbox transport exists to open ----

Json msg_fig5_scale(const ScenarioOptions& options) {
  auto config = message_config(options);
  config.pattern = workload::ArrivalPattern::kRampUpDown;
  config.arrival_window = SimTime::hours(72);
  config.horizon = SimTime::hours(144);
  workload::apply_population_divisor(config.population, options.scale);

  Json out = Json::object();
  out.set("latency", latency_label(config));
  out.set("drop_probability", config.transport.drop_probability);
  {
    engine::AsyncStreamingSystem dac(config);
    const auto result = dac.run();
    out.set("dac", msg_result_to_json(result, dac.transport(), 12));
  }
  {
    auto ndac_config = config;
    ndac_config.protocol.differentiated = false;
    engine::AsyncStreamingSystem ndac(ndac_config);
    const auto result = ndac.run();
    out.set("ndac", msg_result_to_json(result, ndac.transport(), 12));
  }
  return out;
}

// ---- msg_flash_crowd: a demand burst against 20 seeds with 2% message
// loss — retries, holds and watchdogs all under latency and loss ----

Json msg_flash_crowd(const ScenarioOptions& options) {
  auto config = message_config(options, net::LatencyModelKind::kTwoClass,
                               /*default_loss=*/0.02);
  config.population.seeds = 20;
  config.population.requesters = 20'000;
  config.pattern = workload::ArrivalPattern::kBurstThenConstant;
  config.arrival_window = SimTime::hours(24);
  config.horizon = SimTime::hours(48);
  workload::apply_population_divisor(config.population, options.scale);

  engine::AsyncStreamingSystem system(config);
  const auto result = system.run();
  Json out = Json::object();
  out.set("latency", latency_label(config));
  out.set("drop_probability", config.transport.drop_probability);
  out.set("run", msg_result_to_json(result, system.transport(), 6));
  return out;
}

// ---- perf_messages: the bench workload — a steady message-level load
// whose mechanics counters quantify what batching buys ----

Json perf_messages(const ScenarioOptions& options) {
  auto config = message_config(options);
  config.pattern = workload::ArrivalPattern::kConstant;
  config.arrival_window = SimTime::hours(24);
  config.horizon = SimTime::hours(48);
  workload::apply_population_divisor(config.population, options.scale);

  engine::AsyncStreamingSystem system(config);
  const auto result = system.run();
  const auto& transport = system.transport();

  Json out = Json::object();
  out.set("population",
          config.population.seeds + config.population.requesters);
  out.set("latency", latency_label(config));
  out.set("drop_probability", config.transport.drop_probability);
  out.set("transport", std::string(net::to_string(config.transport.mode)));
  out.set("events_executed", result.events_executed);
  out.set("peak_event_list", result.peak_event_list);
  out.set("peak_event_list_timers", result.peak_event_list_timers);
  out.set("peak_event_list_other",
          result.peak_event_list - result.peak_event_list_timers);
  // Machine-dependent, so only behind --mechanics.
  if (options.mechanics) {
    out.set("peak_rss_bytes", engine::process_peak_rss_bytes());
  }
  out.set("admissions", result.overall.admissions);
  out.set("rejections", result.overall.rejections);
  out.set("sessions_completed", result.sessions_completed);
  out.set("final_capacity", result.final_capacity);
  out.set("suppliers_at_end", result.suppliers_at_end);
  Json messages = Json::object();
  messages.set("sent", transport.sent());
  messages.set("delivered", transport.delivered());
  messages.set("undeliverable", transport.undeliverable());
  messages.set("delivery_events_scheduled", transport.events_scheduled());
  messages.set("drains", transport.drains());
  messages.set("max_batch", static_cast<std::int64_t>(transport.max_batch()));
  messages.set("inboxes_allocated", transport.pool().created());
  messages.set("inboxes_reused", transport.pool().reused());
  out.set("messages", std::move(messages));
  Json timers = Json::object();
  // timers_fired is strategy-invariant (same protocol evolution fires the
  // same timers); timer_events_scheduled is the event traffic the wheel
  // and lazy strategies exist to remove (stripped by the parity check).
  timers.set("timers_fired", system.timer_service().fired());
  timers.set("timer_events_scheduled", system.timer_service().events_scheduled());
  out.set("timers", std::move(timers));
  return out;
}

}  // namespace

void register_message_scenarios(Registry& registry) {
  registry.add({"msg_fig5_scale",
                "Message-level fig5 — the full 50,100-peer population with "
                "every control exchange as a routed message, DAC_p2p vs "
                "NDAC_p2p (payload is transport-mode parity-locked)",
                msg_fig5_scale});
  registry.add({"msg_flash_crowd",
                "Message-level flash crowd — 20,000 requesters burst onto 20 "
                "seeds with 2% message loss; holds, reminders and watchdogs "
                "under latency (payload is transport-mode parity-locked)",
                msg_flash_crowd});
  registry.add({"perf_messages",
                "Perf — steady 50,100-peer message-level load; reports event "
                "and batching mechanics for scripts/bench.sh (batched vs "
                "unbatched BENCH_4 comparison)",
                perf_messages});
}

}  // namespace p2ps::scenario
