// Parameter-study scenarios that cut across engine and policy axes:
//   * fig5_policy_lab — the fig5 workload re-run once per registered
//     supplier-selection policy (the strategy layer's headline study);
//   * msg_loss_latency_study — the message-level engine over the full
//     --losses x --latencies grid, recording admission rate and watchdog
//     self-recoveries per cell (the ROADMAP's loss x latency residual).
//
// msg_loss_latency_study carries the msg_ prefix on purpose: its payload is
// protocol results only (no event-core mechanics), so the mailbox parity
// tests and ci.sh automatically hold it byte-identical across batched and
// unbatched transport, both event-list backends, and all timer strategies.
#include <string>
#include <utility>

#include "core/selection_policy.hpp"
#include "engine/async_system.hpp"
#include "engine/streaming_system.hpp"
#include "metrics/collector.hpp"
#include "scenario/scenario.hpp"
#include "util/sim_time.hpp"

namespace p2ps::scenario {
namespace {

using util::SimTime;

// ---- fig5_policy_lab: admission rate and startup/buffering delay of the
// fig5 workload under every registered selection policy ----
//
// Every policy admits exactly when an exact cover exists (the registry's
// completeness contract), so admission *counts* coincide across policies on
// identical candidate sets; what a policy changes is the chosen supplier
// set — and with it Theorem-1 buffering delay — plus, through supplier
// busy-time knock-on effects, the waiting-time trajectory.

Json fig5_policy_lab(const ScenarioOptions& options) {
  Json out = Json::object();
  Json policies = Json::array();
  for (const core::SelectionPolicy* policy : core::all_selection_policies()) {
    auto config =
        paper_config(options, workload::ArrivalPattern::kRampUpDown, true);
    config.selection_policy = policy;
    const auto result = engine::StreamingSystem(config).run();

    Json entry = Json::object();
    entry.set("policy", std::string(policy->name()));
    entry.set("randomized", policy->randomized());
    entry.set("admission_rate", opt_json(result.overall.admission_rate()));
    entry.set("mean_delay_dt", opt_json(result.overall.mean_delay_dt()));
    entry.set("mean_waiting_minutes",
              opt_json(result.overall.mean_waiting_minutes()));
    entry.set("mean_rejections", opt_json(result.overall.mean_rejections()));
    entry.set("final_capacity", result.final_capacity);
    Json per_class = Json::array();
    for (const auto& counters : result.totals) {
      Json row = Json::object();
      row.set("admission_rate", opt_json(counters.admission_rate()));
      row.set("mean_delay_dt", opt_json(counters.mean_delay_dt()));
      row.set("mean_waiting_minutes", opt_json(counters.mean_waiting_minutes()));
      per_class.push_back(std::move(row));
    }
    entry.set("per_class", std::move(per_class));
    policies.push_back(std::move(entry));
  }
  out.set("policies", std::move(policies));
  return out;
}

// ---- msg_loss_latency_study: admission rate and watchdog recoveries over
// the loss x latency grid ----

Json msg_loss_latency_study(const ScenarioOptions& options) {
  Json grid = Json::array();
  for (const double loss : {0.0, 0.02, 0.05}) {
    for (const net::LatencyModelKind latency :
         {net::LatencyModelKind::kFixed, net::LatencyModelKind::kTwoClass,
          net::LatencyModelKind::kLogNormal}) {
      engine::AsyncSimulationConfig config;
      config.seed = options.seed;
      config.event_list = options.event_list;
      config.timers.strategy = options.timers;
      config.transport.mode = options.transport;
      // The grid axes themselves: --losses / --latencies sweep overrides
      // still apply per point, but inside one scenario run the study walks
      // its own fixed grid (that IS the recorded result).
      config.transport.latency = net::LatencyModel::of(latency);
      config.transport.drop_probability = loss;
      if (options.policy != nullptr) config.selection_policy = options.policy;
      config.population.seeds = 20;
      config.population.requesters = 10'000;
      config.pattern = workload::ArrivalPattern::kBurstThenConstant;
      config.arrival_window = SimTime::hours(24);
      config.horizon = SimTime::hours(48);
      workload::apply_population_divisor(config.population, options.scale);

      engine::AsyncStreamingSystem system(config);
      const auto result = system.run();
      Json cell = Json::object();
      cell.set("drop_probability", loss);
      cell.set("latency", std::string(net::to_string(latency)));
      cell.set("admissions", result.overall.admissions);
      cell.set("admission_rate", opt_json(result.overall.admission_rate()));
      cell.set("mean_waiting_minutes",
               opt_json(result.overall.mean_waiting_minutes()));
      // The lost-EndSession self-recovery count: zero on the lossless row,
      // growing with the drop probability — the watchdog at work.
      cell.set("watchdog_recoveries", result.watchdog_recoveries);
      cell.set("final_capacity", result.final_capacity);
      Json messages = Json::object();
      messages.set("sent", system.transport().sent());
      messages.set("dropped", system.transport().dropped());
      cell.set("messages", std::move(messages));
      grid.push_back(std::move(cell));
    }
  }
  Json out = Json::object();
  out.set("grid", std::move(grid));
  return out;
}

}  // namespace

void register_study_scenarios(Registry& registry) {
  registry.add({"fig5_policy_lab",
                "Policy lab — the fig5 workload under every registered "
                "supplier-selection policy (paper-dac baseline, ablation and "
                "BitTorrent-inspired rivals): admission rate, buffering "
                "delay, waiting time",
                fig5_policy_lab});
  registry.add({"msg_loss_latency_study",
                "Loss x latency study — the message-level engine over the "
                "{0, 2, 5}% loss x {fixed, twoclass, lognormal} latency "
                "grid: admission rate and watchdog self-recoveries per cell "
                "(payload is transport-mode parity-locked)",
                msg_loss_latency_study});
}

}  // namespace p2ps::scenario
