// Minimal deterministic JSON document builder for scenario results.
//
// Scenario runs must be byte-reproducible for a fixed seed, so this writer
// guarantees: insertion-ordered object keys, locale-independent number
// formatting (shortest round-trip form for doubles), and no whitespace
// variation. It builds values in memory and serialises on demand; there is
// deliberately no parser — the runner only emits results.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace p2ps::scenario {

/// A JSON value: null, bool, integer, double, string, array or object.
/// Object keys keep insertion order so serialisation is deterministic.
class Json {
 public:
  Json() = default;  // null

  static Json boolean(bool value);
  static Json integer(std::int64_t value);
  static Json number(double value);
  static Json string(std::string value);
  static Json array();
  static Json object();

  // Implicit conversions for the common leaf types keep call sites terse.
  // A single constrained template covers every integer width/signedness,
  // so size_t stays unambiguous on platforms where it aliases neither
  // int64_t nor uint64_t exactly.
  Json(bool value) : Json(boolean(value)) {}
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, bool>>>
  Json(T value) : Json(integer(static_cast<std::int64_t>(value))) {}
  Json(double value) : Json(number(value)) {}
  Json(const char* value) : Json(string(value)) {}
  Json(std::string value) : Json(string(std::move(value))) {}

  /// Appends to an array value; dies on non-arrays.
  Json& push_back(Json value);
  /// Sets (or overwrites) a key on an object value; dies on non-objects.
  Json& set(std::string key, Json value);

  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Compact serialisation (no whitespace); deterministic byte-for-byte.
  [[nodiscard]] std::string dump() const;
  /// Pretty serialisation (2-space indent); also deterministic.
  [[nodiscard]] std::string dump_pretty() const;
  void write(std::ostream& os, int indent = -1) const;

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  void write_indented(std::ostream& os, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// JSON string escaping (quotes included) — exposed for tests.
[[nodiscard]] std::string json_escape(std::string_view text);

/// Locale-independent double rendering: integers render without a mantissa
/// ("4" not "4.0"), NaN/inf render as null per JSON. Exposed for tests.
[[nodiscard]] std::string json_number(double value);

}  // namespace p2ps::scenario
