#include "scenario/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <system_error>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace p2ps::scenario {

Json Json::boolean(bool value) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = value;
  return j;
}

Json Json::integer(std::int64_t value) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = value;
  return j;
}

Json Json::number(double value) {
  Json j;
  j.kind_ = Kind::kDouble;
  j.double_ = value;
  return j;
}

Json Json::string(std::string value) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(value);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json& Json::push_back(Json value) {
  P2PS_CHECK_MSG(kind_ == Kind::kArray, "push_back on a non-array JSON value");
  items_.push_back(std::move(value));
  return *this;
}

Json& Json::set(std::string key, Json value) {
  P2PS_CHECK_MSG(kind_ == Kind::kObject, "set on a non-object JSON value");
  for (auto& [existing, member] : members_) {
    if (existing == key) {
      member = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  // std::to_chars emits the shortest round-trip form and is locale
  // independent — printf %g would honor LC_NUMERIC's decimal separator.
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  P2PS_CHECK(ec == std::errc{});
  return std::string(buf, ptr);
}

void Json::write_indented(std::ostream& os, int indent, int depth) const {
  const std::string pad = indent >= 0 ? std::string(static_cast<std::size_t>(indent) *
                                                        (static_cast<std::size_t>(depth) + 1),
                                                    ' ')
                                      : std::string();
  const std::string close_pad =
      indent >= 0 ? std::string(static_cast<std::size_t>(indent) *
                                    static_cast<std::size_t>(depth),
                                ' ')
                  : std::string();
  const char* nl = indent >= 0 ? "\n" : "";
  const char* colon = indent >= 0 ? ": " : ":";
  switch (kind_) {
    case Kind::kNull: os << "null"; break;
    case Kind::kBool: os << (bool_ ? "true" : "false"); break;
    case Kind::kInt: {
      // to_chars, not operator<<: ostream num_put honors the stream's
      // locale (digit grouping), which would break the determinism and
      // validity guarantees for embedders that set a global locale.
      char buf[24];
      const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), int_);
      P2PS_CHECK(ec == std::errc{});
      os.write(buf, ptr - buf);
      break;
    }
    case Kind::kDouble: os << json_number(double_); break;
    case Kind::kString: os << json_escape(string_); break;
    case Kind::kArray: {
      if (items_.empty()) {
        os << "[]";
        break;
      }
      os << '[' << nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        os << pad;
        items_[i].write_indented(os, indent, depth + 1);
        if (i + 1 < items_.size()) os << ',';
        os << nl;
      }
      os << close_pad << ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        os << "{}";
        break;
      }
      os << '{' << nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        os << pad << json_escape(members_[i].first) << colon;
        members_[i].second.write_indented(os, indent, depth + 1);
        if (i + 1 < members_.size()) os << ',';
        os << nl;
      }
      os << close_pad << '}';
      break;
    }
  }
}

void Json::write(std::ostream& os, int indent) const {
  write_indented(os, indent, 0);
}

std::string Json::dump() const {
  std::ostringstream os;
  write(os, -1);
  return os.str();
}

std::string Json::dump_pretty() const {
  std::ostringstream os;
  write(os, 2);
  return os.str();
}

}  // namespace p2ps::scenario
