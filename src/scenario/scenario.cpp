#include "scenario/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <string_view>
#include <vector>

#include "metrics/collector.hpp"
#include "obs/mechanics_schema.hpp"
#include "util/assert.hpp"
#include "util/sim_time.hpp"

namespace p2ps::scenario {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(Scenario scenario) {
  P2PS_REQUIRE_MSG(!scenario.name.empty(), "scenario name must not be empty");
  P2PS_REQUIRE_MSG(find(scenario.name) == nullptr,
                   "duplicate scenario name: " + scenario.name);
  P2PS_REQUIRE_MSG(static_cast<bool>(scenario.run),
                   "scenario '" + scenario.name + "' has no run function");
  scenarios_.push_back(std::move(scenario));
}

std::vector<const Scenario*> Registry::list() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& scenario : scenarios_) out.push_back(&scenario);
  std::sort(out.begin(), out.end(), [](const Scenario* a, const Scenario* b) {
    return a->name < b->name;
  });
  return out;
}

const Scenario* Registry::find(std::string_view name) const {
  for (const auto& scenario : scenarios_) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

void register_all_scenarios() {
  Registry& registry = Registry::instance();
  if (registry.size() > 0) return;  // idempotent
  register_figure_scenarios(registry);
  register_workload_scenarios(registry);
  register_ablation_scenarios(registry);
  register_perf_scenarios(registry);
  register_message_scenarios(registry);
  register_study_scenarios(registry);
  register_sharded_scenarios(registry);
}

Json run_scenario(std::string_view name, const ScenarioOptions& options) {
  register_all_scenarios();
  const Scenario* scenario = Registry::instance().find(name);
  P2PS_REQUIRE_MSG(scenario != nullptr,
                   "unknown scenario: " + std::string(name) +
                       " (run with --list to enumerate)");
  Json envelope = Json::object();
  envelope.set("scenario", scenario->name);
  envelope.set("description", scenario->description);
  envelope.set("seed", static_cast<std::int64_t>(options.seed));
  envelope.set("scale", options.scale);
  envelope.set("results", scenario->run(options));
  return envelope;
}

engine::SimulationConfig paper_config(const ScenarioOptions& options,
                                      workload::ArrivalPattern pattern,
                                      bool differentiated) {
  auto config = engine::section51_config(pattern, differentiated, options.seed,
                                         options.scale);
  config.event_list = options.event_list;
  config.timers.strategy = options.timers;
  if (options.policy != nullptr) config.selection_policy = options.policy;
  config.telemetry = options.telemetry;
  return config;
}

void scale_population(const ScenarioOptions& options, engine::SimulationConfig& config) {
  config.seed = options.seed;
  config.validate_invariants = false;
  config.event_list = options.event_list;
  config.timers.strategy = options.timers;
  if (options.policy != nullptr) config.selection_policy = options.policy;
  config.telemetry = options.telemetry;
  workload::apply_population_divisor(config.population, options.scale);
}

namespace {

Json class_counters_to_json(const metrics::ClassCounters& counters) {
  Json out = Json::object();
  out.set("first_requests", counters.first_requests);
  out.set("attempts", counters.attempts);
  out.set("admissions", counters.admissions);
  out.set("rejections", counters.rejections);
  const auto rate = counters.admission_rate();
  out.set("admission_rate", opt_json(rate));
  const auto delay = counters.mean_delay_dt();
  out.set("mean_delay_dt", opt_json(delay));
  const auto rejections = counters.mean_rejections();
  out.set("mean_rejections", opt_json(rejections));
  const auto waiting = counters.mean_waiting_minutes();
  out.set("mean_waiting_minutes", opt_json(waiting));
  return out;
}

}  // namespace

std::string strip_event_mechanics(std::string json_text) {
  // Zero the integer value after every `"<key>":` occurrence of the
  // event-core mechanics counters. The key set is the one shared
  // mechanics schema (obs/mechanics_schema.hpp) — a counter added there
  // is stripped here automatically. The schema orders longer keys before
  // their prefixes (compile-time checked), so the first match at the
  // earliest position is the longest one: "peak_event_list" never matches
  // inside its suffixed variants.
  static const std::vector<std::string> kKeys = [] {
    std::vector<std::string> keys;
    const obs::MechanicsField* schema = obs::mechanics_schema();
    keys.reserve(obs::mechanics_schema_size());
    for (std::size_t i = 0; i < obs::mechanics_schema_size(); ++i) {
      keys.push_back('"' + std::string(schema[i].key) + "\":");
    }
    return keys;
  }();
  std::string out;
  out.reserve(json_text.size());
  std::size_t pos = 0;
  while (pos < json_text.size()) {
    std::size_t best = std::string::npos;
    std::size_t best_len = 0;
    for (const std::string_view key : kKeys) {
      const std::size_t at = json_text.find(key, pos);
      if (at < best) {
        best = at;
        best_len = key.size();
      }
    }
    if (best == std::string::npos) {
      out.append(json_text, pos, std::string::npos);
      break;
    }
    out.append(json_text, pos, best + best_len - pos);
    pos = best + best_len;
    // Tolerate pretty-printed input: swallow any whitespace between the
    // colon and the value along with the digits, normalizing to ":0".
    while (pos < json_text.size() &&
           (json_text[pos] == ' ' || json_text[pos] == '\t' ||
            json_text[pos] == '\n')) {
      ++pos;
    }
    std::size_t digits = 0;
    while (pos < json_text.size() &&
           std::isdigit(static_cast<unsigned char>(json_text[pos]))) {
      ++pos;
      ++digits;
    }
    // A fractional part marks a floating-point counter (lookahead_avg_ms):
    // swallow it with the integer part so the whole number normalizes.
    if (digits > 0 && pos + 1 < json_text.size() && json_text[pos] == '.' &&
        std::isdigit(static_cast<unsigned char>(json_text[pos + 1]))) {
      ++pos;
      while (pos < json_text.size() &&
             std::isdigit(static_cast<unsigned char>(json_text[pos]))) {
        ++pos;
      }
    }
    // Only replace an actual numeric value; anything else passes through.
    out.append(digits > 0 ? "0" : "");
  }
  return out;
}

Json result_to_json(const engine::SimulationResult& result, int series_step_hours) {
  Json out = Json::object();
  out.set("final_capacity", result.final_capacity);
  out.set("max_capacity", result.max_capacity);
  out.set("suppliers_at_end", result.suppliers_at_end);
  out.set("sessions_completed", result.sessions_completed);
  out.set("suppliers_departed", result.suppliers_departed);
  out.set("events_executed", result.events_executed);
  out.set("peak_event_list", result.peak_event_list);
  // The timer vs non-timer split of the pending population at the peak
  // instant (they sum to peak_event_list): the timer share is what the
  // wheel/lazy strategies collapse.
  out.set("peak_event_list_timers", result.peak_event_list_timers);
  out.set("peak_event_list_other",
          result.peak_event_list - result.peak_event_list_timers);
  // Machine-dependent, populated only behind --mechanics (and stripped by
  // strip_event_mechanics like the other event-core counters).
  if (result.peak_rss_bytes > 0) {
    out.set("peak_rss_bytes", result.peak_rss_bytes);
  }
  out.set("overall", class_counters_to_json(result.overall));
  Json per_class = Json::array();
  for (const auto& counters : result.totals) {
    per_class.push_back(class_counters_to_json(counters));
  }
  out.set("per_class", std::move(per_class));
  if (!result.hourly.empty() && series_step_hours > 0) {
    const int end_hour =
        static_cast<int>(result.hourly.back().t.as_hours());
    Json series = Json::array();
    for (int h = 0; h <= end_hour; h += series_step_hours) {
      const auto& sample = result.sample_at(util::SimTime::hours(h));
      Json point = Json::object();
      point.set("hour", h);
      point.set("capacity", sample.capacity);
      point.set("active_sessions", sample.active_sessions);
      point.set("suppliers", sample.suppliers);
      series.push_back(std::move(point));
    }
    out.set("capacity_series", std::move(series));
  }
  if (result.lookup_routed > 0) {
    out.set("lookup_routed", result.lookup_routed);
    out.set("lookup_mean_hops", result.lookup_mean_hops);
  }
  return out;
}

}  // namespace p2ps::scenario
