#include "scenario/scenario.hpp"

#include <algorithm>

#include "metrics/collector.hpp"
#include "util/assert.hpp"
#include "util/sim_time.hpp"

namespace p2ps::scenario {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(Scenario scenario) {
  P2PS_REQUIRE_MSG(!scenario.name.empty(), "scenario name must not be empty");
  P2PS_REQUIRE_MSG(find(scenario.name) == nullptr,
                   "duplicate scenario name: " + scenario.name);
  P2PS_REQUIRE_MSG(static_cast<bool>(scenario.run),
                   "scenario '" + scenario.name + "' has no run function");
  scenarios_.push_back(std::move(scenario));
}

std::vector<const Scenario*> Registry::list() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& scenario : scenarios_) out.push_back(&scenario);
  std::sort(out.begin(), out.end(), [](const Scenario* a, const Scenario* b) {
    return a->name < b->name;
  });
  return out;
}

const Scenario* Registry::find(std::string_view name) const {
  for (const auto& scenario : scenarios_) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

void register_all_scenarios() {
  Registry& registry = Registry::instance();
  if (registry.size() > 0) return;  // idempotent
  register_figure_scenarios(registry);
  register_workload_scenarios(registry);
  register_ablation_scenarios(registry);
  register_perf_scenarios(registry);
  register_message_scenarios(registry);
}

Json run_scenario(std::string_view name, const ScenarioOptions& options) {
  register_all_scenarios();
  const Scenario* scenario = Registry::instance().find(name);
  P2PS_REQUIRE_MSG(scenario != nullptr,
                   "unknown scenario: " + std::string(name) +
                       " (run with --list to enumerate)");
  Json envelope = Json::object();
  envelope.set("scenario", scenario->name);
  envelope.set("description", scenario->description);
  envelope.set("seed", static_cast<std::int64_t>(options.seed));
  envelope.set("scale", options.scale);
  envelope.set("results", scenario->run(options));
  return envelope;
}

engine::SimulationConfig paper_config(const ScenarioOptions& options,
                                      workload::ArrivalPattern pattern,
                                      bool differentiated) {
  auto config = engine::section51_config(pattern, differentiated, options.seed,
                                         options.scale);
  config.event_list = options.event_list;
  return config;
}

void scale_population(const ScenarioOptions& options, engine::SimulationConfig& config) {
  config.seed = options.seed;
  config.validate_invariants = false;
  config.event_list = options.event_list;
  workload::apply_population_divisor(config.population, options.scale);
}

namespace {

Json class_counters_to_json(const metrics::ClassCounters& counters) {
  Json out = Json::object();
  out.set("first_requests", counters.first_requests);
  out.set("attempts", counters.attempts);
  out.set("admissions", counters.admissions);
  out.set("rejections", counters.rejections);
  const auto rate = counters.admission_rate();
  out.set("admission_rate", opt_json(rate));
  const auto delay = counters.mean_delay_dt();
  out.set("mean_delay_dt", opt_json(delay));
  const auto rejections = counters.mean_rejections();
  out.set("mean_rejections", opt_json(rejections));
  const auto waiting = counters.mean_waiting_minutes();
  out.set("mean_waiting_minutes", opt_json(waiting));
  return out;
}

}  // namespace

Json result_to_json(const engine::SimulationResult& result, int series_step_hours) {
  Json out = Json::object();
  out.set("final_capacity", result.final_capacity);
  out.set("max_capacity", result.max_capacity);
  out.set("suppliers_at_end", result.suppliers_at_end);
  out.set("sessions_completed", result.sessions_completed);
  out.set("suppliers_departed", result.suppliers_departed);
  out.set("events_executed", result.events_executed);
  out.set("peak_event_list", result.peak_event_list);
  out.set("overall", class_counters_to_json(result.overall));
  Json per_class = Json::array();
  for (const auto& counters : result.totals) {
    per_class.push_back(class_counters_to_json(counters));
  }
  out.set("per_class", std::move(per_class));
  if (!result.hourly.empty() && series_step_hours > 0) {
    const int end_hour =
        static_cast<int>(result.hourly.back().t.as_hours());
    Json series = Json::array();
    for (int h = 0; h <= end_hour; h += series_step_hours) {
      const auto& sample = result.sample_at(util::SimTime::hours(h));
      Json point = Json::object();
      point.set("hour", h);
      point.set("capacity", sample.capacity);
      point.set("active_sessions", sample.active_sessions);
      point.set("suppliers", sample.suppliers);
      series.push_back(std::move(point));
    }
    out.set("capacity_series", std::move(series));
  }
  if (result.lookup_routed > 0) {
    out.set("lookup_routed", result.lookup_routed);
    out.set("lookup_mean_hops", result.lookup_mean_hops);
  }
  return out;
}

}  // namespace p2ps::scenario
