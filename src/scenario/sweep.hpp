// Multi-threaded parameter-study driver ("p2ps_run --sweep").
//
// A sweep is the cross product of scenario names × seeds × scales ×
// event-list backends — the shape of the paper's Section 5 parameter
// studies (four arrival patterns swept over m, T_out and capacity mixes).
// Each point is an independent run with its own Simulator and RNGs, so
// determinism is per-run and the points can execute on a thread pool.
//
// Determinism contract: the merged report is assembled in point order
// (never completion order) and deliberately does not echo the thread
// count, so for a fixed spec the report is byte-identical whether it ran
// on 1 thread or N (enforced by tests/sweep_test.cpp and scripts/ci.sh).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/selection_policy.hpp"
#include "net/latency.hpp"
#include "scenario/json.hpp"
#include "sim/event_list.hpp"
#include "sim/timer_service.hpp"

namespace p2ps::scenario {

/// One independent (scenario, seed, scale, config-override) run.
struct SweepPoint {
  std::string scenario;
  std::uint64_t seed = 2002;
  std::int64_t scale = 1;
  sim::EventListKind event_list = sim::EventListKind::kBinaryHeap;
  /// Latency model for message-level scenarios; nullopt = the scenario's
  /// own default (session-level scenarios ignore the axis entirely).
  std::optional<net::LatencyModelKind> latency;
  /// Message drop probability for message-level scenarios; nullopt = the
  /// scenario's own default. The loss x latency studies of the ROADMAP's
  /// "loss × reordering" item sweep this axis against `latencies`.
  std::optional<double> loss;
  /// Supplier-selection policy; nullptr = every scenario's own default
  /// (the paper-dac baseline). The "--policies" axis of the policy lab.
  const core::SelectionPolicy* policy = nullptr;
  /// Timer-subsystem strategy. Not an axis (it is byte-invisible
  /// mechanics, docs/timers.md) — a single shared setting for every point.
  sim::TimerStrategy timers = sim::TimerConfig{}.strategy;
};

/// A sweep specification: the cross product of its axes, in deterministic
/// order (scenario-major, then seed, scale, backend, latency, loss,
/// policy).
struct SweepSpec {
  std::vector<std::string> scenarios;
  std::vector<std::uint64_t> seeds = {2002};
  std::vector<std::int64_t> scales = {1};
  std::vector<sim::EventListKind> event_lists = {sim::EventListKind::kBinaryHeap};
  std::vector<std::optional<net::LatencyModelKind>> latencies = {std::nullopt};
  std::vector<std::optional<double>> losses = {std::nullopt};
  /// Selection-policy axis; nullptr entries mean "scenario default".
  std::vector<const core::SelectionPolicy*> policies = {nullptr};
  /// Shared (non-axis) timer strategy applied to every point.
  sim::TimerStrategy timers = sim::TimerConfig{}.strategy;

  /// Expands the cross product; throws ContractViolation when any axis is
  /// empty, a scenario name is unknown, or a loss value is outside [0, 1]
  /// (fail fast, before any run).
  [[nodiscard]] std::vector<SweepPoint> points() const;
};

/// Execution mechanics of one run_sweep_points call — never part of the
/// report (the report deliberately omits anything thread-shaped). Exists
/// so tests can pin the dispatch strategy: an effective thread count of 1
/// must take the serial path — a plain indexed loop with no worker pool
/// and no atomic work queue (tests/sweep_test.cpp).
struct SweepStats {
  /// Worker threads constructed; 0 on the serial path (the caller's
  /// thread is not a pool).
  std::size_t pool_threads = 0;
};

/// Runs every point on a pool of `threads` worker threads (clamped to the
/// point count; an effective count of 1 runs serially on the calling
/// thread, constructing no pool and no work queue) and merges the
/// per-point envelopes into one report in point order. Throws
/// ContractViolation for invalid specs and rethrows the first per-point
/// failure — lowest point index wins — after the pool has drained.
/// `stats`, when non-null, receives the dispatch mechanics.
[[nodiscard]] Json run_sweep(const SweepSpec& spec, int threads);
[[nodiscard]] Json run_sweep_points(const std::vector<SweepPoint>& points,
                                    int threads,
                                    SweepStats* stats = nullptr);

/// Splits "a,b,c" into its non-empty fields; used by the CLI axis flags.
[[nodiscard]] std::vector<std::string> split_csv(std::string_view text);

}  // namespace p2ps::scenario
