// Perf scenario family — the workloads behind scripts/bench.sh and the
// BENCH_*.json throughput trajectory.
//
// Unlike the figure scenarios these do not reproduce a paper panel; they
// exist to put a large, engine-shaped load on the event core (hundreds of
// thousands of peers, millions of events) and report deterministic
// counters. Wall-clock timing deliberately stays *outside* the JSON — the
// determinism contract (byte-identical output for fixed seed/scale) is what
// lets scripts/bench.sh verify a perf run before trusting its timing.
#include "engine/streaming_system.hpp"
#include "scenario/scenario.hpp"
#include "util/sim_time.hpp"

namespace p2ps::scenario {
namespace {

using util::SimTime;

Json perf_payload(const ScenarioOptions& options,
                  const engine::SimulationConfig& config,
                  const engine::SimulationResult& result) {
  Json out = Json::object();
  out.set("population",
          config.population.seeds + config.population.requesters);
  out.set("events_executed", result.events_executed);
  out.set("peak_event_list", result.peak_event_list);
  out.set("peak_event_list_timers", result.peak_event_list_timers);
  out.set("peak_event_list_other",
          result.peak_event_list - result.peak_event_list_timers);
  // Machine-dependent, so only behind --mechanics (keeps default payloads
  // byte-comparable across runs, backends and machines).
  if (options.mechanics) {
    out.set("peak_rss_bytes", engine::process_peak_rss_bytes());
  }
  out.set("sessions_completed", result.sessions_completed);
  out.set("admissions", result.overall.admissions);
  out.set("rejections", result.overall.rejections);
  out.set("final_capacity", result.final_capacity);
  out.set("suppliers_at_end", result.suppliers_at_end);
  return out;
}

// ---- Steady state: a long constant-rate run, the event core's bread and
// butter (dense timer/backoff/session traffic at a stable population) ----

Json perf_steady(const ScenarioOptions& options) {
  engine::SimulationConfig config;
  config.population.seeds = 100;
  config.population.requesters = 150'000;
  config.pattern = workload::ArrivalPattern::kConstant;
  config.arrival_window = SimTime::hours(48);
  config.horizon = SimTime::hours(96);
  scale_population(options, config);

  const auto result = engine::StreamingSystem(config).run();
  return perf_payload(options, config, result);
}

// ---- Flash crowd: a demand spike against few seeds — maximal rejection/
// backoff pressure, the worst case for schedule/cancel churn ----

Json perf_flash_crowd(const ScenarioOptions& options) {
  engine::SimulationConfig config;
  config.population.seeds = 50;
  config.population.requesters = 100'000;
  config.pattern = workload::ArrivalPattern::kBurstThenConstant;
  config.arrival_window = SimTime::hours(24);
  config.horizon = SimTime::hours(48);
  scale_population(options, config);

  const auto result = engine::StreamingSystem(config).run();
  return perf_payload(options, config, result);
}

}  // namespace

void register_perf_scenarios(Registry& registry) {
  registry.add({"perf_steady",
                "Perf — 150k requesters at a constant arrival rate; the "
                "events/sec workload behind scripts/bench.sh",
                perf_steady});
  registry.add({"perf_flash_crowd",
                "Perf — 100k-requester flash crowd against 50 seeds; "
                "maximal rejection/backoff churn on the event queue",
                perf_flash_crowd});
}

}  // namespace p2ps::scenario
