// p2ps_run — the unified scenario runner.
//
//   p2ps_run --list                      enumerate registered scenarios
//   p2ps_run <scenario> [--seed N]       run one scenario, JSON to stdout
//            [--scale D]                 population divisor (1 = paper scale)
//            [--event-list heap|calendar] simulator event-list backend
//            [--out FILE]                also write the JSON to FILE
//            [--compact]                 single-line JSON (default: pretty)
//
// Determinism contract: the same (scenario, seed, scale) always emits
// byte-identical JSON, so diffs against a stored BENCH_*.json are
// meaningful.
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/scenario.hpp"
#include "sim/event_list.hpp"
#include "util/assert.hpp"
#include "util/flags.hpp"

namespace {

int list_scenarios() {
  p2ps::scenario::register_all_scenarios();
  for (const auto* scenario : p2ps::scenario::Registry::instance().list()) {
    std::cout << scenario->name << "\n    " << scenario->description << '\n';
  }
  return 0;
}

int usage(const std::string& program) {
  std::cerr << "usage: " << program
            << " <scenario> [--seed N] [--scale D] [--event-list heap|calendar]"
               " [--out FILE] [--compact]\n"
            << "       " << program << " --list\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const p2ps::util::Flags flags(argc, argv);

    // --list/--help/--compact are boolean, but Flags parses `--flag token`
    // as token being the flag's value — so a flag placed before the
    // scenario name would swallow it ("p2ps_run --compact fig1"). Reclaim
    // such tokens as positionals; flag order then doesn't matter.
    std::vector<std::string> positionals = flags.positional();
    const auto bool_flag = [&](std::string_view flag_name) {
      const auto value = flags.value(flag_name);
      if (!value) return false;
      if (value->empty() || *value == "true" || *value == "1" ||
          *value == "yes") {
        return true;
      }
      if (*value == "false" || *value == "0" || *value == "no") return false;
      positionals.push_back(*value);
      return true;
    };
    const bool list = bool_flag("list");
    const bool help = bool_flag("help");
    const bool compact = bool_flag("compact");
    if (list) return list_scenarios();
    if (positionals.size() != 1 || help) {
      return usage(flags.program());
    }
    const std::string name = positionals.front();

    p2ps::scenario::ScenarioOptions options;
    options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2002));
    options.scale = flags.get_int("scale", 1);
    if (options.scale < 1) {
      std::cerr << "error: --scale must be >= 1\n";
      return 2;
    }
    const std::string backend = flags.get_string("event-list", "heap");
    const auto kind = p2ps::sim::parse_event_list_kind(backend);
    if (!kind) {
      std::cerr << "error: --event-list must be 'heap' or 'calendar', got '"
                << backend << "'\n";
      return 2;
    }
    options.event_list = *kind;
    const std::string out_file = flags.get_string("out", "");

    // Reject typos and unwritable --out paths before the run — a
    // paper-scale simulation is too expensive to discard on either.
    for (const auto& unknown : flags.unused()) {
      std::cerr << "error: unknown flag --" << unknown << '\n';
      return 2;
    }
    std::ofstream out_stream;
    if (!out_file.empty()) {
      out_stream.open(out_file);
      if (!out_stream) {
        std::cerr << "error: cannot open --out file: " << out_file << '\n';
        return 1;
      }
    }

    const auto result = p2ps::scenario::run_scenario(name, options);
    const std::string text = compact ? result.dump() : result.dump_pretty();
    std::cout << text << '\n';
    if (out_stream.is_open()) out_stream << text << '\n';
    return 0;
  } catch (const p2ps::util::ContractViolation& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "fatal: " << e.what() << '\n';
    return 1;
  }
}
