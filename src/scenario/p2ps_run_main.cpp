// p2ps_run — the unified scenario runner.
//
//   p2ps_run --list                      enumerate registered scenarios
//   p2ps_run <scenario> [--seed N]       run one scenario, JSON to stdout
//            [--scale D]                 population divisor (1 = paper scale)
//            [--event-list heap|calendar] simulator event-list backend
//            [--timers wheel|lazy|events] timer-subsystem strategy
//            [--latency fixed|uniform|twoclass|lognormal] latency model
//            [--loss P]                  message drop probability [0, 1]
//            [--transport batched|unbatched]    mailbox delivery mode
//            [--policy NAME]             supplier-selection policy
//            [--shards N]                shard count for sharded_* scenarios
//            [--shard-threads N]         sharded worker threads (wall-clock only)
//            [--fusion N]                sharded window-fusion factor
//                                        (1 = unfused unit-lookahead mode)
//            [--mechanics]               emit run mechanics (per-shard event
//                                        counts, windows, peak RSS)
//            [--telemetry FILE]          periodic JSONL runtime snapshots
//            [--telemetry-interval MS]   wall-clock ms between snapshots
//                                        (default 1000; 0 = every poll)
//            [--watchdog warn|abort|off] anomaly watchdog action (abort
//                                        maps a tripped rule to exit 3)
//            [--out FILE]                also write the JSON to FILE
//            [--compact]                 single-line JSON (default: pretty)
//   p2ps_run --strip-mechanics           filter: zero the event-core
//                                        mechanics counters in JSON read
//                                        from stdin (scripts/ci.sh parity)
//   p2ps_run --sweep <scenario...>       parameter study: run the cross
//            [--scenarios a,b]           product of scenarios × seeds ×
//            [--seeds 1,2] [--scales D,E] scales × backends × latencies ×
//            [--event-lists heap,calendar] losses on a thread pool, merged
//            [--latencies fixed,twoclass] into one JSON report in
//            [--losses 0,0.02] [--threads N] deterministic point order
//            [--policies a,b]            selection policies as a sweep axis
//            [--timers wheel|lazy|events] timer strategy for every point
//
// Determinism contract: the same (scenario, seed, scale) always emits
// byte-identical JSON, so diffs against a stored BENCH_*.json are
// meaningful. A sweep report is additionally byte-identical for any
// --threads value: points merge in spec order, never completion order.
#include <algorithm>
#include <charconv>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/selection_policy.hpp"
#include "net/latency.hpp"
#include "net/mailbox.hpp"
#include "obs/telemetry.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sweep.hpp"
#include "sim/event_list.hpp"
#include "sim/timer_service.hpp"
#include "util/assert.hpp"
#include "util/flags.hpp"

namespace {

int list_scenarios() {
  p2ps::scenario::register_all_scenarios();
  const auto scenarios = p2ps::scenario::Registry::instance().list();
  // One scenario per line (name column padded, description alongside), in
  // sorted order: the discoverable inventory for composing --sweep specs.
  std::size_t width = 0;
  for (const auto* scenario : scenarios) {
    width = std::max(width, scenario->name.size());
  }
  for (const auto* scenario : scenarios) {
    std::cout << std::left << std::setw(static_cast<int>(width + 2))
              << scenario->name << scenario->description << '\n';
  }
  return 0;
}

int usage(const std::string& program) {
  std::cerr << "usage: " << program
            << " <scenario> [--seed N] [--scale D] [--event-list heap|calendar]"
               " [--timers wheel|lazy|events]"
               " [--latency fixed|uniform|twoclass|lognormal] [--loss P]"
               " [--transport batched|unbatched] [--policy NAME]"
               " [--shards N] [--shard-threads N] [--fusion N] [--mechanics]"
               " [--telemetry FILE] [--telemetry-interval MS]"
               " [--watchdog warn|abort|off]"
               " [--out FILE] [--compact]\n"
            << "       " << program
            << " --sweep <scenario...> [--scenarios a,b] [--seeds N,M]"
               " [--scales D,E] [--event-lists heap,calendar]"
               " [--latencies fixed,twoclass] [--losses 0,0.02]"
               " [--policies a,b] [--timers wheel|lazy|events] [--threads N]"
               " [--out FILE] [--compact]\n"
            << "       " << program << " --strip-mechanics < payload.json\n"
            << "       " << program << " --list\n"
            << "policies: " << p2ps::core::selection_policy_names() << '\n';
  return 2;
}

/// Parses one event-list token or dies with a CLI error message.
std::optional<p2ps::sim::EventListKind> parse_backend(const std::string& token) {
  const auto kind = p2ps::sim::parse_event_list_kind(token);
  if (!kind) {
    std::cerr << "error: event-list backend must be 'heap' or 'calendar', got '"
              << token << "'\n";
  }
  return kind;
}

/// Parses one latency-model token or dies with a CLI error message.
std::optional<p2ps::net::LatencyModelKind> parse_latency(const std::string& token) {
  const auto kind = p2ps::net::parse_latency_model_kind(token);
  if (!kind) {
    std::cerr << "error: latency model must be 'fixed', 'uniform',"
                 " 'twoclass' or 'lognormal', got '"
              << token << "'\n";
  }
  return kind;
}

/// Parses one selection-policy token of --policy/--policies against the
/// policy registry or dies with a CLI error listing the valid names.
const p2ps::core::SelectionPolicy* parse_policy(const std::string& token) {
  const auto* policy = p2ps::core::find_selection_policy(token);
  if (policy == nullptr) {
    std::cerr << "error: selection policy must be one of "
              << p2ps::core::selection_policy_names() << ", got '" << token
              << "'\n";
  }
  return policy;
}

/// Parses one timer-strategy token or dies with a CLI error message.
std::optional<p2ps::sim::TimerStrategy> parse_timers(const std::string& token) {
  const auto strategy = p2ps::sim::parse_timer_strategy(token);
  if (!strategy) {
    std::cerr << "error: timer strategy must be 'wheel', 'lazy' or"
                 " 'events', got '"
              << token << "'\n";
  }
  return strategy;
}

/// Parses one probability token of --loss/--losses; reports a descriptive
/// CLI error on junk or out-of-range input.
std::optional<double> parse_loss(std::string_view flag, const std::string& token) {
  std::size_t consumed = 0;
  double out = 0.0;
  bool ok = !token.empty();
  if (ok) {
    try {
      out = std::stod(token, &consumed);
    } catch (const std::exception&) {
      ok = false;
    }
  }
  if (!ok || consumed != token.size() || !(out >= 0.0 && out <= 1.0)) {
    std::cerr << "error: --" << flag
              << " needs probabilities in [0, 1], got '" << token << "'\n";
    return std::nullopt;
  }
  return out;
}

/// Parses one positive integer token of --shards/--shard-threads; reports
/// a descriptive CLI error on junk, zero or negative input.
std::optional<int> parse_positive_int(std::string_view flag,
                                      const std::string& token) {
  std::int64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  if (ec != std::errc{} || ptr != token.data() + token.size() || out < 1 ||
      out > 1'000'000) {
    std::cerr << "error: --" << flag << " needs a positive integer, got '"
              << token << "'\n";
    return std::nullopt;
  }
  return static_cast<int>(out);
}

/// Parses one non-negative integer token of a CSV axis flag; reports a
/// descriptive CLI error (matching the binary's other flag diagnostics)
/// on junk or negative input instead of dying on a raw stoll.
std::optional<std::int64_t> parse_axis_int(std::string_view axis,
                                           const std::string& token) {
  std::int64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  if (ec != std::errc{} || ptr != token.data() + token.size() || out < 0) {
    std::cerr << "error: --" << axis
              << " needs comma-separated non-negative integers, got '"
              << token << "'\n";
    return std::nullopt;
  }
  return out;
}

/// The flags this binary treats as boolean. util::Flags itself parses
/// `--flag token` as token being the flag's value, so a boolean flag
/// placed before a scenario name would swallow it ("p2ps_run --compact
/// fig1", "p2ps_run --sweep fig5 fig8").
constexpr std::string_view kBooleanFlags[] = {
    "list", "help", "compact", "sweep", "mechanics", "strip-mechanics"};

bool is_boolean_flag(std::string_view name) {
  for (const std::string_view flag : kBooleanFlags) {
    if (name == flag) return true;
  }
  return false;
}

bool is_boolean_token(std::string_view token) {
  return token == "true" || token == "1" || token == "yes" ||
         token == "false" || token == "0" || token == "no";
}

/// Positionals in their command-line order, reclaiming tokens that a
/// boolean flag swallowed as its "value" (unless the token really is a
/// boolean literal). Mirrors util::Flags' consumption rules exactly, so
/// `--sweep fig5 fig8` keeps fig5 before fig8 — point order in a sweep
/// report follows the command line.
std::vector<std::string> ordered_positionals(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    const std::string_view token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string_view body = token.substr(2);
      if (body.find('=') != std::string_view::npos) continue;  // --k=v
      const bool next_is_value =
          i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0;
      if (!next_is_value) continue;
      if (!is_boolean_flag(body) || is_boolean_token(argv[i + 1])) {
        ++i;  // genuinely this flag's value: skip it
      }
      continue;
    }
    out.emplace_back(token);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const p2ps::util::Flags flags(argc, argv);

    // Swallowed-token reclamation happens in ordered_positionals (which
    // preserves command-line order); bool_flag only interprets the value.
    const std::vector<std::string> positionals = ordered_positionals(argc, argv);
    const auto bool_flag = [&](std::string_view flag_name) {
      const auto value = flags.value(flag_name);
      if (!value) return false;
      return !(*value == "false" || *value == "0" || *value == "no");
    };
    const bool list = bool_flag("list");
    const bool help = bool_flag("help");
    const bool compact = bool_flag("compact");
    const bool sweep = bool_flag("sweep");
    const bool strip_mechanics = bool_flag("strip-mechanics");
    if (list) return list_scenarios();
    if (help) return usage(flags.program());

    if (strip_mechanics) {
      // Filter mode: normalize stdin's payload by zeroing the event-core
      // mechanics counters (the shared obs/mechanics_schema.hpp key set)
      // and echo it — the parity normalizer scripts/ci.sh pipes through.
      for (const auto& unknown : flags.unused()) {
        std::cerr << "error: unknown flag --" << unknown << '\n';
        return 2;
      }
      std::ostringstream buffer;
      buffer << std::cin.rdbuf();
      std::cout << p2ps::scenario::strip_event_mechanics(buffer.str());
      return 0;
    }

    // Reject unwritable --out paths before the run — a paper-scale run (or
    // an 8-point sweep) is too expensive to discard on a typoed path — but
    // only after flag validation, so a typoed flag never truncates an
    // existing output file.
    const std::string out_file = flags.get_string("out", "");
    std::ofstream out_stream;
    const auto open_out = [&] {
      if (out_file.empty()) return true;
      out_stream.open(out_file);
      if (!out_stream) {
        std::cerr << "error: cannot open --out file: " << out_file << '\n';
        return false;
      }
      return true;
    };
    p2ps::scenario::Json result;

    if (sweep) {
      // ---- sweep mode: cross product of the axis flags + positionals ----
      p2ps::scenario::SweepSpec spec;
      spec.scenarios =
          p2ps::scenario::split_csv(flags.get_string("scenarios", ""));
      for (const auto& positional : positionals) {
        for (auto& name : p2ps::scenario::split_csv(positional)) {
          spec.scenarios.push_back(std::move(name));
        }
      }
      if (spec.scenarios.empty()) {
        std::cerr << "error: --sweep needs scenario names (positional or"
                     " --scenarios a,b)\n";
        return 2;
      }
      if (const auto seeds = flags.value("seeds")) {
        spec.seeds.clear();
        for (const auto& token : p2ps::scenario::split_csv(*seeds)) {
          const auto seed = parse_axis_int("seeds", token);
          if (!seed) return 2;
          spec.seeds.push_back(static_cast<std::uint64_t>(*seed));
        }
      }
      if (const auto scales = flags.value("scales")) {
        spec.scales.clear();
        for (const auto& token : p2ps::scenario::split_csv(*scales)) {
          const auto scale = parse_axis_int("scales", token);
          if (!scale) return 2;
          spec.scales.push_back(*scale);
        }
      }
      if (const auto backends = flags.value("event-lists")) {
        spec.event_lists.clear();
        for (const auto& token : p2ps::scenario::split_csv(*backends)) {
          const auto kind = parse_backend(token);
          if (!kind) return 2;
          spec.event_lists.push_back(*kind);
        }
      }
      if (const auto latencies = flags.value("latencies")) {
        spec.latencies.clear();
        for (const auto& token : p2ps::scenario::split_csv(*latencies)) {
          const auto kind = parse_latency(token);
          if (!kind) return 2;
          spec.latencies.push_back(*kind);
        }
      }
      if (const auto losses = flags.value("losses")) {
        spec.losses.clear();
        for (const auto& token : p2ps::scenario::split_csv(*losses)) {
          const auto loss = parse_loss("losses", token);
          if (!loss) return 2;
          spec.losses.push_back(*loss);
        }
      }
      if (const auto policies = flags.value("policies")) {
        spec.policies.clear();
        for (const auto& token : p2ps::scenario::split_csv(*policies)) {
          const auto* policy = parse_policy(token);
          if (policy == nullptr) return 2;
          spec.policies.push_back(policy);
        }
      }
      // The timer strategy is event-core mechanics (byte-identical output),
      // so it is a shared setting rather than a sweep axis.
      const std::string sweep_timers = flags.get_string("timers", "");
      if (!sweep_timers.empty()) {
        const auto strategy = parse_timers(sweep_timers);
        if (!strategy) return 2;
        spec.timers = *strategy;
      }
      const auto hardware =
          static_cast<std::int64_t>(std::thread::hardware_concurrency());
      const std::int64_t threads =
          flags.get_int("threads", hardware > 0 ? hardware : 1);
      if (threads < 1) {
        std::cerr << "error: --threads must be >= 1\n";
        return 2;
      }
      for (const auto& unknown : flags.unused()) {
        std::cerr << "error: unknown flag --" << unknown << '\n';
        return 2;
      }
      if (!open_out()) return 1;
      result = p2ps::scenario::run_sweep(spec, static_cast<int>(threads));
    } else {
      // ---- single-run mode ----
      if (positionals.size() != 1) return usage(flags.program());
      const std::string name = positionals.front();

      p2ps::scenario::ScenarioOptions options;
      options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2002));
      options.scale = flags.get_int("scale", 1);
      if (options.scale < 1) {
        std::cerr << "error: --scale must be >= 1\n";
        return 2;
      }
      const std::string backend = flags.get_string("event-list", "heap");
      const auto kind = parse_backend(backend);
      if (!kind) return 2;
      options.event_list = *kind;

      const std::string timers = flags.get_string("timers", "");
      if (!timers.empty()) {
        const auto strategy = parse_timers(timers);
        if (!strategy) return 2;
        options.timers = *strategy;
      }

      // Message-level knobs; session-level scenarios simply ignore them.
      const std::string latency = flags.get_string("latency", "");
      if (!latency.empty()) {
        const auto model = parse_latency(latency);
        if (!model) return 2;
        options.latency = *model;
      }
      const std::string loss = flags.get_string("loss", "");
      if (!loss.empty()) {
        const auto value = parse_loss("loss", loss);
        if (!value) return 2;
        options.loss = *value;
      }
      const std::string transport = flags.get_string("transport", "batched");
      const auto mode = p2ps::net::parse_transport_mode(transport);
      if (!mode) {
        std::cerr << "error: transport mode must be 'batched' or 'unbatched',"
                     " got '"
                  << transport << "'\n";
        return 2;
      }
      options.transport = *mode;

      const std::string policy_name = flags.get_string("policy", "");
      if (!policy_name.empty()) {
        const auto* policy = parse_policy(policy_name);
        if (policy == nullptr) return 2;
        options.policy = policy;
      }

      // Sharded-engine knobs; non-sharded scenarios simply ignore them.
      const std::string shards = flags.get_string("shards", "");
      if (!shards.empty()) {
        const auto value = parse_positive_int("shards", shards);
        if (!value) return 2;
        options.shards = *value;
      }
      const std::string shard_threads = flags.get_string("shard-threads", "");
      if (!shard_threads.empty()) {
        const auto value = parse_positive_int("shard-threads", shard_threads);
        if (!value) return 2;
        options.shard_threads = *value;
      }
      const std::string fusion = flags.get_string("fusion", "");
      if (!fusion.empty()) {
        const auto value = parse_positive_int("fusion", fusion);
        if (!value) return 2;
        options.fusion = *value;
      }
      options.mechanics = bool_flag("mechanics");

      // Telemetry export (docs/observability.md). Out-of-band by contract:
      // the scenario payload is byte-identical with or without it.
      p2ps::obs::TelemetryOptions telemetry_options;
      telemetry_options.path = flags.get_string("telemetry", "");
      const std::string interval = flags.get_string("telemetry-interval", "");
      if (!interval.empty()) {
        if (telemetry_options.path.empty()) {
          std::cerr << "error: --telemetry-interval needs --telemetry FILE\n";
          return 2;
        }
        std::int64_t ms = 0;
        const auto [ptr, ec] = std::from_chars(
            interval.data(), interval.data() + interval.size(), ms);
        if (ec != std::errc{} || ptr != interval.data() + interval.size() ||
            ms < 0) {
          std::cerr << "error: --telemetry-interval needs a non-negative"
                       " integer (milliseconds), got '"
                    << interval << "'\n";
          return 2;
        }
        telemetry_options.interval_ms = ms;
      }
      const std::string watchdog = flags.get_string("watchdog", "");
      if (!watchdog.empty()) {
        if (telemetry_options.path.empty()) {
          std::cerr << "error: --watchdog needs --telemetry FILE (watchdogs"
                       " evaluate on telemetry snapshots)\n";
          return 2;
        }
        const auto action = p2ps::obs::parse_watchdog_action(watchdog);
        if (!action) {
          std::cerr << "error: --watchdog must be 'warn', 'abort' or 'off',"
                       " got '"
                    << watchdog << "'\n";
          return 2;
        }
        telemetry_options.watchdog.action = *action;
      }

      // Reject typos before the run — a paper-scale simulation is too
      // expensive to discard on one.
      for (const auto& unknown : flags.unused()) {
        std::cerr << "error: unknown flag --" << unknown << '\n';
        return 2;
      }
      if (!open_out()) return 1;

      p2ps::obs::Telemetry telemetry(std::move(telemetry_options));
      if (!telemetry.ok()) {
        std::cerr << "error: cannot open --telemetry file\n";
        return 1;
      }
      if (telemetry.enabled()) options.telemetry = &telemetry;
      result = p2ps::scenario::run_scenario(name, options);
      telemetry.finish();
    }

    const std::string text = compact ? result.dump() : result.dump_pretty();
    std::cout << text << '\n';
    if (out_stream.is_open()) out_stream << text << '\n';
    return 0;
  } catch (const p2ps::obs::WatchdogAbort& e) {
    // The tripped rule already wrote its snapshot line (evidence outlives
    // the abort) and the Telemetry destructor emitted the summary during
    // unwinding; exit 3 distinguishes "the run went bad" from flag/contract
    // errors for soak harnesses.
    std::cerr << "watchdog abort: " << e.what() << '\n';
    return 3;
  } catch (const p2ps::util::ContractViolation& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "fatal: " << e.what() << '\n';
    return 1;
  }
}
