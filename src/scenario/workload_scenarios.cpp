// Example workloads as registered scenarios: flash crowd, churn,
// incentive, and Chord lookup. Each mirrors the corresponding examples/
// demo but is seeded from ScenarioOptions and returns deterministic JSON.
#include <string>
#include <utility>
#include <vector>

#include "engine/streaming_system.hpp"
#include "lookup/chord.hpp"
#include "scenario/scenario.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace p2ps::scenario {
namespace {

using util::SimTime;

// ---- Flash crowd: a demand burst hitting a young system ----

Json flash_crowd(const ScenarioOptions& options) {
  engine::SimulationConfig config;
  config.population.seeds = 20;
  config.population.requesters = 5000;
  config.pattern = workload::ArrivalPattern::kBurstThenConstant;
  config.arrival_window = SimTime::hours(36);
  config.horizon = SimTime::hours(72);
  scale_population(options, config);

  const auto dac = engine::StreamingSystem(config).run();
  const auto ndac = engine::StreamingSystem(engine::as_ndac(config)).run();
  Json out = Json::object();
  out.set("dac", result_to_json(dac, 6));
  out.set("ndac", result_to_json(ndac, 6));
  return out;
}

// ---- Churn: unreachable candidates and permanent supplier departure ----

Json churn_resilience(const ScenarioOptions& options) {
  Json sweep = Json::array();
  for (const double down : {0.0, 0.2, 0.4, 0.6}) {
    engine::SimulationConfig config;
    config.population.seeds = 20;
    config.population.requesters = 1000;
    config.pattern = workload::ArrivalPattern::kConstant;
    config.arrival_window = SimTime::hours(24);
    config.horizon = SimTime::hours(48);
    config.peer_down_probability = down;
    scale_population(options, config);

    const auto result = engine::StreamingSystem(config).run();
    Json entry = Json::object();
    entry.set("peer_down_probability", down);
    entry.set("admissions", result.overall.admissions);
    const auto rejections = result.overall.mean_rejections();
    entry.set("mean_rejections", opt_json(rejections));
    const auto waiting = result.overall.mean_waiting_minutes();
    entry.set("mean_waiting_minutes", opt_json(waiting));
    entry.set("final_capacity", result.final_capacity);
    sweep.push_back(std::move(entry));
  }
  Json out = Json::object();
  out.set("down_probability_sweep", std::move(sweep));
  return out;
}

// ---- Incentive: what a truthful bandwidth pledge buys under DAC_p2p ----

Json incentive(const ScenarioOptions& options) {
  engine::SimulationConfig config;
  config.population.seeds = 20;
  config.population.requesters = 4000;
  config.pattern = workload::ArrivalPattern::kRampUpDown;
  config.arrival_window = SimTime::hours(24);
  config.horizon = SimTime::hours(48);
  scale_population(options, config);

  const auto dac = engine::StreamingSystem(config).run();
  const auto ndac = engine::StreamingSystem(engine::as_ndac(config)).run();
  const auto rows = [](const engine::SimulationResult& result) {
    Json out = Json::array();
    for (std::size_t c = 0; c < result.totals.size(); ++c) {
      const auto& counters = result.totals[c];
      Json row = Json::object();
      row.set("class", static_cast<std::int64_t>(c + 1));
      row.set("mean_rejections", opt_json(counters.mean_rejections()));
      row.set("mean_waiting_minutes", opt_json(counters.mean_waiting_minutes()));
      row.set("mean_delay_dt", opt_json(counters.mean_delay_dt()));
      out.push_back(std::move(row));
    }
    return out;
  };
  Json out = Json::object();
  out.set("dac_per_class", rows(dac));
  out.set("ndac_per_class", rows(ndac));
  return out;
}

// ---- Chord lookup: substrate-agnostic protocol + routing cost ----

Json chord_lookup(const ScenarioOptions& options) {
  engine::SimulationConfig config;
  config.population.seeds = 10;
  config.population.requesters = 500;
  config.pattern = workload::ArrivalPattern::kConstant;
  config.arrival_window = SimTime::hours(12);
  config.horizon = SimTime::hours(24);
  scale_population(options, config);

  auto chord_config = config;
  chord_config.lookup = engine::LookupKind::kChord;

  const auto with_directory = engine::StreamingSystem(config).run();
  const auto with_chord = engine::StreamingSystem(chord_config).run();

  Json out = Json::object();
  Json comparison = Json::object();
  comparison.set("directory_admissions", with_directory.overall.admissions);
  comparison.set("directory_final_capacity", with_directory.final_capacity);
  comparison.set("chord_admissions", with_chord.overall.admissions);
  comparison.set("chord_final_capacity", with_chord.final_capacity);
  comparison.set("chord_lookup_routed", with_chord.lookup_routed);
  comparison.set("chord_lookup_mean_hops", with_chord.lookup_mean_hops);
  out.set("substrate_comparison", std::move(comparison));

  Json hops = Json::array();
  for (const std::uint64_t n : {64u, 512u, 4096u}) {
    lookup::ChordLookup ring;
    for (std::uint64_t i = 0; i < n; ++i) {
      ring.register_supplier(core::PeerId{i}, 1);
    }
    util::Rng rng(options.seed + n);
    for (int i = 0; i < 2000; ++i) {
      // Sequence the two draws explicitly: argument evaluation order is
      // unspecified, and the determinism contract must hold across
      // compilers, not just per-binary.
      const std::uint64_t from = rng();
      const std::uint64_t key = rng();
      (void)ring.route(from, key);
    }
    Json entry = Json::object();
    entry.set("ring_size", n);
    entry.set("mean_hops", ring.stats().mean_hops());
    entry.set("max_hops", ring.stats().max_hops);
    hops.push_back(std::move(entry));
  }
  out.set("routing_cost", std::move(hops));
  return out;
}

}  // namespace

void register_workload_scenarios(Registry& registry) {
  registry.add({"flash_crowd",
                "Flash crowd — 40% of requests arrive in the first twelfth of "
                "the window against 20 seed suppliers, DAC_p2p vs NDAC_p2p",
                flash_crowd});
  registry.add({"churn_resilience",
                "Churn — sweep the probability that a probed candidate is "
                "down; the self-growing capacity degrades gracefully",
                churn_resilience});
  registry.add({"incentive",
                "Incentive — truthful bandwidth pledges buy fewer rejections, "
                "shorter waits and lower delay under DAC_p2p, nothing under "
                "NDAC_p2p",
                incentive});
  registry.add({"chord_lookup",
                "Chord lookup — the protocol is lookup-agnostic (directory vs "
                "Chord) and Chord routing cost grows logarithmically",
                chord_lookup});
}

}  // namespace p2ps::scenario
