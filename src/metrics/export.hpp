// CSV / gnuplot export of collected series.
//
// The bench harnesses print aligned tables; for plotting, set
// `P2PS_BENCH_CSV=<dir>` and each harness also drops one CSV per run plus a
// ready-to-run gnuplot script per figure, so the paper's plots can be
// regenerated with `gnuplot <dir>/fig4_capacity.gp`.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/peer_class.hpp"
#include "metrics/collector.hpp"

namespace p2ps::metrics {

/// Hourly series as CSV. Columns: hour, capacity, active_sessions,
/// suppliers, then per class c: first_requests_c, admissions_c,
/// admission_rate_c (percent, empty until defined), mean_delay_dt_c,
/// mean_rejections_c.
void write_hourly_csv(std::ostream& os, const std::vector<HourlySample>& samples,
                      core::PeerClass num_classes);

/// Favored-class series as CSV: hour, then avg lowest favored class per
/// supplier class (empty cells where no suppliers of that class exist).
void write_favored_csv(std::ostream& os, const std::vector<FavoredSample>& samples,
                       core::PeerClass num_classes);

/// One labelled data series inside a gnuplot figure.
struct PlotSeries {
  std::string csv_file;   ///< path as the script should reference it
  std::string label;
  int column = 2;         ///< 1-based CSV column to plot against hour
};

/// Emits a self-contained gnuplot script (PNG terminal) plotting the given
/// series over time.
void write_gnuplot_script(std::ostream& os, const std::string& title,
                          const std::string& ylabel, const std::string& output_png,
                          const std::vector<PlotSeries>& series);

}  // namespace p2ps::metrics
