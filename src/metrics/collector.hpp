// Metrics collection for the paper's evaluation (Section 5.2).
//
// The engine reports protocol events (first requests, admissions,
// rejections, capacity changes) and takes periodic samples; this module
// turns them into the series behind Figures 4–9 and Table 1:
//   * hourly snapshots of cumulative per-class counters + capacity;
//   * 3-hour samples of the average lowest favored class per supplier
//     class (Figure 7's adaptivity view);
//   * end-of-run aggregates (Table 1).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/peer_class.hpp"
#include "obs/metrics.hpp"
#include "util/sim_time.hpp"

namespace p2ps::metrics {

/// Cumulative per-class counters (all "since the start of the run").
struct ClassCounters {
  std::int64_t first_requests = 0;   ///< peers that made their 1st request
  std::int64_t attempts = 0;         ///< admission attempts incl. retries
  std::int64_t admissions = 0;
  std::int64_t rejections = 0;       ///< rejection events (one per failed attempt)
  std::int64_t rejections_before_admission_sum = 0;  ///< over admitted peers
  double buffering_delay_dt_sum = 0.0;  ///< Σ session delays, units of Δt
  double waiting_ms_sum = 0.0;          ///< Σ waiting times of admitted peers

  /// admitted / first-requesters so far; nullopt before any first request.
  [[nodiscard]] std::optional<double> admission_rate() const;
  /// Average buffering delay (·Δt) over admitted sessions; nullopt if none.
  [[nodiscard]] std::optional<double> mean_delay_dt() const;
  /// Average rejections experienced by admitted peers; nullopt if none.
  [[nodiscard]] std::optional<double> mean_rejections() const;
  /// Average waiting time of admitted peers; nullopt if none.
  [[nodiscard]] std::optional<double> mean_waiting_minutes() const;
};

/// One hourly snapshot of the whole system.
struct HourlySample {
  util::SimTime t;
  std::int64_t capacity = 0;
  std::int64_t active_sessions = 0;
  std::int64_t suppliers = 0;
  std::vector<ClassCounters> per_class;  // index = class - 1
};

/// One Figure-7 sample: per *supplier* class, the average over supplying
/// peers of that class of their lowest favored requesting-peer class.
struct FavoredSample {
  util::SimTime t;
  /// index = supplier class - 1; NaN when no suppliers of that class exist.
  std::vector<double> avg_lowest_favored;
};

class MetricsCollector {
 public:
  explicit MetricsCollector(core::PeerClass num_classes);

  /// Mirrors the protocol counters into a telemetry registry (the
  /// pointer-handle hot path: each on_* adds one null-checked increment).
  /// No-op telemetry-off; handles outlive the collector by the registry's
  /// contract.
  void bind_telemetry(obs::Registry& registry, int lane = 0);

  // ---- protocol events (engine-driven) ----
  void on_first_request(core::PeerClass c);
  void on_attempt(core::PeerClass c);
  void on_rejection(core::PeerClass c);
  void on_admission(core::PeerClass c, std::int64_t rejections_before,
                    std::int64_t delay_dt, util::SimTime waiting);

  // ---- periodic samples (engine-driven) ----
  void hourly_sample(util::SimTime t, std::int64_t capacity,
                     std::int64_t active_sessions, std::int64_t suppliers);
  void favored_sample(FavoredSample sample);

  // ---- queries ----
  [[nodiscard]] core::PeerClass num_classes() const {
    return static_cast<core::PeerClass>(totals_.size());
  }
  [[nodiscard]] const ClassCounters& totals(core::PeerClass c) const;
  /// Sum of counters over all classes.
  [[nodiscard]] ClassCounters overall() const;
  [[nodiscard]] const std::vector<HourlySample>& hourly() const { return hourly_; }
  [[nodiscard]] const std::vector<FavoredSample>& favored() const { return favored_; }

 private:
  std::vector<ClassCounters> totals_;
  std::vector<HourlySample> hourly_;
  std::vector<FavoredSample> favored_;

  // Telemetry counter handles (null = telemetry off).
  obs::Counter* obs_first_requests_ = nullptr;
  obs::Counter* obs_attempts_ = nullptr;
  obs::Counter* obs_admissions_ = nullptr;
  obs::Counter* obs_rejections_ = nullptr;
};

}  // namespace p2ps::metrics
