#include "metrics/collector.hpp"

#include "util/assert.hpp"

namespace p2ps::metrics {

std::optional<double> ClassCounters::admission_rate() const {
  if (first_requests == 0) return std::nullopt;
  return static_cast<double>(admissions) / static_cast<double>(first_requests);
}

std::optional<double> ClassCounters::mean_delay_dt() const {
  if (admissions == 0) return std::nullopt;
  return buffering_delay_dt_sum / static_cast<double>(admissions);
}

std::optional<double> ClassCounters::mean_rejections() const {
  if (admissions == 0) return std::nullopt;
  return static_cast<double>(rejections_before_admission_sum) /
         static_cast<double>(admissions);
}

std::optional<double> ClassCounters::mean_waiting_minutes() const {
  if (admissions == 0) return std::nullopt;
  return waiting_ms_sum / 60'000.0 / static_cast<double>(admissions);
}

MetricsCollector::MetricsCollector(core::PeerClass num_classes) {
  P2PS_REQUIRE(num_classes >= 1 && num_classes <= core::kMaxSupportedClasses);
  totals_.resize(static_cast<std::size_t>(num_classes));
}

void MetricsCollector::bind_telemetry(obs::Registry& registry, int lane) {
  obs_first_requests_ = registry.counter(obs::kMetricFirstRequests, lane);
  obs_attempts_ = registry.counter(obs::kMetricAttempts, lane);
  obs_admissions_ = registry.counter(obs::kMetricAdmissions, lane);
  obs_rejections_ = registry.counter(obs::kMetricRejections, lane);
}

void MetricsCollector::on_first_request(core::PeerClass c) {
  core::require_valid_class(c, num_classes());
  ++totals_[static_cast<std::size_t>(c - 1)].first_requests;
  if (obs_first_requests_ != nullptr) obs_first_requests_->add();
}

void MetricsCollector::on_attempt(core::PeerClass c) {
  core::require_valid_class(c, num_classes());
  ++totals_[static_cast<std::size_t>(c - 1)].attempts;
  if (obs_attempts_ != nullptr) obs_attempts_->add();
}

void MetricsCollector::on_rejection(core::PeerClass c) {
  core::require_valid_class(c, num_classes());
  ++totals_[static_cast<std::size_t>(c - 1)].rejections;
  if (obs_rejections_ != nullptr) obs_rejections_->add();
}

void MetricsCollector::on_admission(core::PeerClass c, std::int64_t rejections_before,
                                    std::int64_t delay_dt, util::SimTime waiting) {
  core::require_valid_class(c, num_classes());
  P2PS_REQUIRE(rejections_before >= 0);
  P2PS_REQUIRE(delay_dt >= 0);
  P2PS_REQUIRE(waiting >= util::SimTime::zero());
  auto& counters = totals_[static_cast<std::size_t>(c - 1)];
  ++counters.admissions;
  counters.rejections_before_admission_sum += rejections_before;
  counters.buffering_delay_dt_sum += static_cast<double>(delay_dt);
  counters.waiting_ms_sum += static_cast<double>(waiting.as_millis());
  if (obs_admissions_ != nullptr) obs_admissions_->add();
}

void MetricsCollector::hourly_sample(util::SimTime t, std::int64_t capacity,
                                     std::int64_t active_sessions,
                                     std::int64_t suppliers) {
  P2PS_REQUIRE(hourly_.empty() || hourly_.back().t <= t);
  hourly_.push_back(HourlySample{t, capacity, active_sessions, suppliers, totals_});
}

void MetricsCollector::favored_sample(FavoredSample sample) {
  P2PS_REQUIRE(static_cast<core::PeerClass>(sample.avg_lowest_favored.size()) ==
               num_classes());
  P2PS_REQUIRE(favored_.empty() || favored_.back().t <= sample.t);
  favored_.push_back(std::move(sample));
}

const ClassCounters& MetricsCollector::totals(core::PeerClass c) const {
  core::require_valid_class(c, num_classes());
  return totals_[static_cast<std::size_t>(c - 1)];
}

ClassCounters MetricsCollector::overall() const {
  ClassCounters sum;
  for (const auto& counters : totals_) {
    sum.first_requests += counters.first_requests;
    sum.attempts += counters.attempts;
    sum.admissions += counters.admissions;
    sum.rejections += counters.rejections;
    sum.rejections_before_admission_sum += counters.rejections_before_admission_sum;
    sum.buffering_delay_dt_sum += counters.buffering_delay_dt_sum;
    sum.waiting_ms_sum += counters.waiting_ms_sum;
  }
  return sum;
}

}  // namespace p2ps::metrics
