#include "metrics/export.hpp"

#include <ostream>

#include "util/assert.hpp"
#include "util/table.hpp"

namespace p2ps::metrics {

void write_hourly_csv(std::ostream& os, const std::vector<HourlySample>& samples,
                      core::PeerClass num_classes) {
  os << "hour,capacity,active_sessions,suppliers";
  for (core::PeerClass c = 1; c <= num_classes; ++c) {
    os << ",first_requests_c" << c << ",admissions_c" << c << ",admission_rate_c"
       << c << ",mean_delay_dt_c" << c << ",mean_rejections_c" << c;
  }
  os << '\n';
  for (const auto& sample : samples) {
    os << sample.t.as_hours() << ',' << sample.capacity << ','
       << sample.active_sessions << ',' << sample.suppliers;
    P2PS_REQUIRE(static_cast<core::PeerClass>(sample.per_class.size()) >= num_classes);
    for (core::PeerClass c = 1; c <= num_classes; ++c) {
      const auto& counters = sample.per_class[static_cast<std::size_t>(c - 1)];
      os << ',' << counters.first_requests << ',' << counters.admissions << ',';
      if (const auto rate = counters.admission_rate()) {
        os << util::format_double(*rate * 100.0, 4);
      }
      os << ',';
      if (const auto delay = counters.mean_delay_dt()) {
        os << util::format_double(*delay, 4);
      }
      os << ',';
      if (const auto rejections = counters.mean_rejections()) {
        os << util::format_double(*rejections, 4);
      }
    }
    os << '\n';
  }
}

void write_favored_csv(std::ostream& os, const std::vector<FavoredSample>& samples,
                       core::PeerClass num_classes) {
  os << "hour";
  for (core::PeerClass c = 1; c <= num_classes; ++c) {
    os << ",lowest_favored_suppliers_c" << c;
  }
  os << '\n';
  for (const auto& sample : samples) {
    os << sample.t.as_hours();
    for (core::PeerClass c = 1; c <= num_classes; ++c) {
      os << ',';
      const double value = sample.avg_lowest_favored[static_cast<std::size_t>(c - 1)];
      if (value == value) {  // not NaN
        os << util::format_double(value, 4);
      }
    }
    os << '\n';
  }
}

void write_gnuplot_script(std::ostream& os, const std::string& title,
                          const std::string& ylabel, const std::string& output_png,
                          const std::vector<PlotSeries>& series) {
  P2PS_REQUIRE(!series.empty());
  os << "set terminal pngcairo size 900,600\n"
     << "set output '" << output_png << "'\n"
     << "set datafile separator ','\n"
     << "set key left top\n"
     << "set title '" << title << "'\n"
     << "set xlabel 'Time (hour)'\n"
     << "set ylabel '" << ylabel << "'\n"
     << "plot ";
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i) os << ", \\\n     ";
    os << "'" << series[i].csv_file << "' using 1:" << series[i].column
       << " with lines title '" << series[i].label << "'";
  }
  os << '\n';
}

}  // namespace p2ps::metrics
