#include "core/selection.hpp"

#include <utility>

#include "core/stable_order.hpp"
#include "util/assert.hpp"

namespace p2ps::core {

namespace {

/// Greedy walk shared by both policies: take candidates in `order` while
/// their offer fits in the remaining need.
void greedy_take(SelectionResult& result, std::span<const PeerClass> classes,
                 std::span<const std::size_t> order, Bandwidth target) {
  result.chosen.clear();
  Bandwidth need = target;
  for (std::size_t i : order) {
    if (need == Bandwidth::zero()) break;
    const Bandwidth offer = Bandwidth::class_offer(classes[i]);
    if (offer <= need) {
      result.chosen.push_back(i);
      need -= offer;
    }
  }
  result.shortfall = need;
}

/// Stable class-order permutation of the candidate list (ascending class
/// index = largest offer first; see core/stable_order.hpp for why this is
/// allocation-free and exactly matches std::stable_sort).
template <bool kAscending, typename Fn>
void with_sorted_order(std::span<const PeerClass> classes, Fn&& fn) {
  with_stable_order(
      classes.size(),
      [&](std::size_t prior, std::size_t i) {
        return kAscending ? classes[prior] > classes[i]
                          : classes[prior] < classes[i];
      },
      std::forward<Fn>(fn));
}

}  // namespace

void select_exact_cover_into(SelectionResult& result,
                             std::span<const PeerClass> classes, Bandwidth target) {
  P2PS_REQUIRE(target >= Bandwidth::zero());
  with_sorted_order<true>(classes, [&](std::span<const std::size_t> order) {
    greedy_take(result, classes, order, target);
  });
}

SelectionResult select_exact_cover(std::span<const PeerClass> classes, Bandwidth target) {
  SelectionResult result;
  select_exact_cover_into(result, classes, target);
  return result;
}

void select_max_cardinality_cover_into(SelectionResult& result,
                                       std::span<const PeerClass> classes,
                                       Bandwidth target) {
  P2PS_REQUIRE(target >= Bandwidth::zero());
  with_sorted_order<false>(classes, [&](std::span<const std::size_t> order) {
    greedy_take(result, classes, order, target);
  });
  if (result.shortfall != Bandwidth::zero()) {
    // Ascending greedy is not exact (e.g. offers {1/4, 1/2, 1/2} for target
    // 1): fall back to the exact policy so admission never regresses.
    select_exact_cover_into(result, classes, target);
  }
}

SelectionResult select_max_cardinality_cover(std::span<const PeerClass> classes,
                                             Bandwidth target) {
  SelectionResult result;
  select_max_cardinality_cover_into(result, classes, target);
  return result;
}

bool subset_sum_exists(std::span<const PeerClass> classes, Bandwidth target) {
  P2PS_REQUIRE_MSG(classes.size() <= 24, "exhaustive check limited to small inputs");
  const std::size_t n = classes.size();
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    Bandwidth sum = Bandwidth::zero();
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) sum += Bandwidth::class_offer(classes[i]);
    }
    if (sum == target) return true;
  }
  return false;
}

std::optional<std::size_t> min_exact_cover_size(std::span<const PeerClass> classes,
                                                Bandwidth target) {
  P2PS_REQUIRE_MSG(classes.size() <= 24, "exhaustive check limited to small inputs");
  const std::size_t n = classes.size();
  std::optional<std::size_t> best;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    Bandwidth sum = Bandwidth::zero();
    std::size_t bits = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) {
        sum += Bandwidth::class_offer(classes[i]);
        ++bits;
      }
    }
    if (sum == target && (!best || bits < *best)) best = bits;
  }
  return best;
}

}  // namespace p2ps::core
