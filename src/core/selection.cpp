#include "core/selection.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace p2ps::core {

SelectionResult select_exact_cover(std::span<const PeerClass> classes, Bandwidth target) {
  P2PS_REQUIRE(target >= Bandwidth::zero());
  std::vector<std::size_t> order(classes.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return classes[a] < classes[b]; });

  SelectionResult result;
  Bandwidth need = target;
  for (std::size_t i : order) {
    if (need == Bandwidth::zero()) break;
    const Bandwidth offer = Bandwidth::class_offer(classes[i]);
    if (offer <= need) {
      result.chosen.push_back(i);
      need -= offer;
    }
  }
  result.shortfall = need;
  return result;
}

SelectionResult select_max_cardinality_cover(std::span<const PeerClass> classes,
                                             Bandwidth target) {
  P2PS_REQUIRE(target >= Bandwidth::zero());
  std::vector<std::size_t> order(classes.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return classes[a] > classes[b]; });

  SelectionResult result;
  Bandwidth need = target;
  for (std::size_t i : order) {
    if (need == Bandwidth::zero()) break;
    const Bandwidth offer = Bandwidth::class_offer(classes[i]);
    if (offer <= need) {
      result.chosen.push_back(i);
      need -= offer;
    }
  }
  if (need != Bandwidth::zero()) {
    // Ascending greedy is not exact (e.g. offers {1/4, 1/2, 1/2} for target
    // 1): fall back to the exact policy so admission never regresses.
    return select_exact_cover(classes, target);
  }
  result.shortfall = need;
  return result;
}

bool subset_sum_exists(std::span<const PeerClass> classes, Bandwidth target) {
  P2PS_REQUIRE_MSG(classes.size() <= 24, "exhaustive check limited to small inputs");
  const std::size_t n = classes.size();
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    Bandwidth sum = Bandwidth::zero();
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) sum += Bandwidth::class_offer(classes[i]);
    }
    if (sum == target) return true;
  }
  return false;
}

std::optional<std::size_t> min_exact_cover_size(std::span<const PeerClass> classes,
                                                Bandwidth target) {
  P2PS_REQUIRE_MSG(classes.size() <= 24, "exhaustive check limited to small inputs");
  const std::size_t n = classes.size();
  std::optional<std::size_t> best;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    Bandwidth sum = Bandwidth::zero();
    std::size_t bits = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) {
        sum += Bandwidth::class_offer(classes[i]);
        ++bits;
      }
    }
    if (sum == target && (!best || bits < *best)) best = bits;
  }
  return best;
}

}  // namespace p2ps::core
