// Pluggable supplier-selection policies (strategy layer over core/selection).
//
// The paper hardwires DAC_p2p's largest-offer-first exact cover into the
// admission path; follow-up work on BitTorrent-style on-demand streaming is
// entirely about rival peer-selection policies. This registry turns "which
// policy" into engine configuration: each policy is one object behind a
// stable interface, so adding a policy never touches engine internals.
//
// Contract shared by every policy:
//  * `select_into` overwrites `result`, reusing the capacity of
//    `result.chosen` (the `_into` discipline) — no steady-state allocation
//    on the admission hot path.
//  * Completeness: a policy reports success if and only if some subset of
//    the offers sums to `target` exactly. Heuristics whose walk strands
//    short of the target fall back to the exact greedy, so the admission
//    *decision* is policy-invariant; only the chosen supplier set (and with
//    it Theorem-1 buffering delay) varies.
//  * Determinism: randomized policies draw exclusively from `context.rng`,
//    a dedicated named substream owned by the calling engine — never from
//    global state — so runs stay byte-reproducible for a fixed seed across
//    event-list backends, transports, and timer strategies.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "core/bandwidth.hpp"
#include "core/peer_class.hpp"
#include "core/selection.hpp"

namespace p2ps::util {
class Rng;
}  // namespace p2ps::util

namespace p2ps::core {

/// Per-attempt inputs beyond the candidate offers themselves.
struct SelectionContext {
  /// Class of the requesting peer (used by reciprocity-style scorers).
  PeerClass requester_class = kHighestClass;
  /// Engine-owned RNG substream for randomized policies; may be null for
  /// deterministic policies (randomized ones require it).
  util::Rng* rng = nullptr;
};

/// Strategy interface for picking a supplier subset whose offers sum to
/// exactly `target`. Implementations are stateless singletons; all mutable
/// state lives in the caller-provided result buffer and RNG.
class SelectionPolicy {
 public:
  SelectionPolicy() = default;
  SelectionPolicy(const SelectionPolicy&) = delete;
  SelectionPolicy& operator=(const SelectionPolicy&) = delete;
  virtual ~SelectionPolicy() = default;

  /// Stable CLI-facing identifier (e.g. "paper-dac").
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// One-line human description for --list-style output and docs.
  [[nodiscard]] virtual std::string_view description() const = 0;
  /// True when the policy consumes draws from `context.rng`.
  [[nodiscard]] virtual bool randomized() const { return false; }

  /// Overwrites `result` with this policy's pick over `classes`.
  /// Post: result.success() iff subset_sum_exists(classes, target).
  virtual void select_into(SelectionResult& result, std::span<const PeerClass> classes,
                           Bandwidth target, const SelectionContext& context) const = 0;
};

/// The paper's DAC_p2p baseline (largest-offer-first exact cover); the
/// default policy everywhere, byte-identical to the historical behavior.
[[nodiscard]] const SelectionPolicy& paper_dac_policy();

/// The smallest-offer-first ablation (maximum supplier count).
[[nodiscard]] const SelectionPolicy& max_cardinality_policy();

/// Registry lookup by CLI name; nullptr when unknown.
[[nodiscard]] const SelectionPolicy* find_selection_policy(std::string_view name);

/// All registered policies, paper baseline first; order is stable and is
/// the order studies iterate.
[[nodiscard]] std::span<const SelectionPolicy* const> all_selection_policies();

/// Comma-joined policy names for CLI error messages and usage text.
[[nodiscard]] std::string selection_policy_names();

}  // namespace p2ps::core
