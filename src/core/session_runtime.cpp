#include "core/session_runtime.hpp"

#include <utility>

#include "util/assert.hpp"

namespace p2ps::core {

SessionRuntime::SessionRuntime(sim::Simulator& simulator, TransmissionPlan plan,
                               util::SimTime buffering_delay)
    : simulator_(simulator),
      plan_(std::move(plan)),
      buffering_delay_(buffering_delay),
      buffer_(plan_.file(), plan_.file().segments()) {
  P2PS_REQUIRE(buffering_delay >= util::SimTime::zero());
}

void SessionRuntime::start() {
  P2PS_REQUIRE_MSG(!started_, "session already started");
  started_ = true;
  origin_ = simulator_.now();

  // Segment arrivals, straight from the plan's timetable.
  for (const PlannedTransmission& transmission : plan_.transmissions()) {
    simulator_.schedule_at(origin_ + transmission.finish,
                           [this, segment = transmission.segment,
                            finish = transmission.finish] {
                             buffer_.record_arrival(segment, finish);
                           });
  }

  // Playback ticks: segment s is consumed at delay + s·Δt. The consumption
  // event is scheduled for all segments up front; a missing segment at its
  // deadline is a stall (the player would freeze; we keep counting misses,
  // which upper-bounds user-visible stalls).
  report_.playback_start = origin_ + buffering_delay_;
  const util::SimTime dt = plan_.file().segment_duration();
  for (std::int64_t s = 0; s < plan_.file().segments(); ++s) {
    // Consume at the *end* of the segment's playback slot so an arrival at
    // exactly the deadline still plays (closed deadline, matching
    // PlaybackBuffer::check).
    simulator_.schedule_at(report_.playback_start + dt * s,
                           [this, s] { play_segment(s); });
  }
}

void SessionRuntime::play_segment(std::int64_t segment) {
  const util::SimTime deadline = buffering_delay_ + plan_.file().segment_duration() * segment;
  const bool on_time = buffer_.arrived(segment) && buffer_.arrival_time(segment) <= deadline;
  ++report_.segments_played;
  if (!on_time) ++report_.stalls;
  if (observer_) observer_(segment, on_time);
  if (segment + 1 == plan_.file().segments()) {
    report_.playback_end = simulator_.now() + plan_.file().segment_duration();
    finished_ = true;
  }
}

}  // namespace p2ps::core
