// Shared strongly-typed identifiers for peers and sessions.
#pragma once

#include "util/strong_id.hpp"

namespace p2ps::core {

struct PeerIdTag {};
/// Identifies one peer for the lifetime of a simulation.
using PeerId = util::StrongId<PeerIdTag>;

struct SessionIdTag {};
/// Identifies one peer-to-peer streaming session.
using SessionId = util::StrongId<SessionIdTag>;

}  // namespace p2ps::core
