// Peer classes (paper Section 2, assumption 3).
//
// Peers are partitioned into classes 1..K by the out-bound bandwidth they
// pledge: a class-i peer offers R0 / 2^i, where R0 is the media playback
// rate. Class 1 is the *highest* class (largest offer); class K the lowest.
#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace p2ps::core {

/// A peer class index in [1, K]. Smaller value = higher class.
using PeerClass = std::int32_t;

/// Highest possible class (offers R0/2).
inline constexpr PeerClass kHighestClass = 1;

/// Upper bound on K supported by the exact bandwidth representation.
inline constexpr PeerClass kMaxSupportedClasses = 30;

/// Validates a class index against a system with `num_classes` classes.
inline void require_valid_class(PeerClass c, PeerClass num_classes) {
  P2PS_REQUIRE_MSG(num_classes >= 1 && num_classes <= kMaxSupportedClasses,
                   "number of classes out of supported range");
  P2PS_REQUIRE_MSG(c >= kHighestClass && c <= num_classes, "peer class out of range");
}

/// True when `a` is a strictly higher class (larger offer) than `b`.
[[nodiscard]] inline constexpr bool higher_class(PeerClass a, PeerClass b) { return a < b; }

}  // namespace p2ps::core
