// Whole-file transmission planning on top of OTS_p2p.
//
// The assignment of Section 3 covers one window of W = 2^k segments and
// "repeats itself every W segments for the rest of the media file". A real
// media file need not be a multiple of W segments long; this module expands
// the per-window assignment into the complete, per-supplier transmission
// timetable including the final partial window, and exposes the exact
// buffering delay of the whole file. Truncating the last window only makes
// arrivals earlier, so Theorem 1's N·Δt remains an upper bound — and the
// exact delay equals N·Δt whenever the file spans at least one full window.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/ots.hpp"
#include "media/media_file.hpp"
#include "media/playback_buffer.hpp"

namespace p2ps::core {

/// One segment's transmission: by whom and when (relative to session start).
struct PlannedTransmission {
  std::int64_t segment = 0;
  std::int32_t supplier = 0;
  util::SimTime start;
  util::SimTime finish;
};

class TransmissionPlan {
 public:
  /// Expands `assignment` over all of `file`. The file's segment duration
  /// is the Δt used for transmission times.
  TransmissionPlan(const media::MediaFile& file, SegmentAssignment assignment);

  [[nodiscard]] const media::MediaFile& file() const { return file_; }
  [[nodiscard]] const SegmentAssignment& assignment() const { return assignment_; }

  /// All transmissions, sorted by segment index. Covers every segment of
  /// the file exactly once.
  [[nodiscard]] std::span<const PlannedTransmission> transmissions() const {
    return transmissions_;
  }

  /// When the last byte of the file finishes transmitting.
  [[nodiscard]] util::SimTime completion_time() const;

  /// Exact minimum buffering delay for stall-free playback of the whole
  /// file (≤ Theorem 1's N·Δt; equal once the file spans a full window).
  [[nodiscard]] util::SimTime buffering_delay() const;

  /// Total playback span: buffering delay + show time.
  [[nodiscard]] util::SimTime total_viewing_time() const {
    return buffering_delay() + file_.show_time();
  }

  /// Segments carried by supplier `i` across the whole file.
  [[nodiscard]] std::int64_t segments_of_supplier(std::size_t i) const;

  /// Materializes the arrival times into a playback buffer (tests/tools).
  [[nodiscard]] media::PlaybackBuffer to_buffer() const;

 private:
  media::MediaFile file_;
  SegmentAssignment assignment_;
  std::vector<PlannedTransmission> transmissions_;  // sorted by segment
};

}  // namespace p2ps::core
