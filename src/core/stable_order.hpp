// Stable index ordering for small hot-path inputs.
//
// Several per-attempt protocol steps (supplier selection, the reminder set
// Ω) need candidate indices stably sorted by class. The inputs are bounded
// by the probe fan-out M (single digits), so a stack buffer plus insertion
// sort replaces iota + std::stable_sort without allocating. Stability is
// load-bearing: the engine's byte-identical-output contract depends on
// equal keys keeping their index order exactly as std::stable_sort would,
// which the strict "strictly after" test guarantees — keeping that argument
// in one place is why this helper exists.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace p2ps::core {

/// Builds the permutation of [0, n) sorted by `strictly_after` and passes
/// it to `fn` as a span (valid only for the duration of the call).
/// `strictly_after(prior, i)` must return true iff the already-placed index
/// `prior` sorts strictly after `i` — a strict ordering, so ties stay in
/// index order (stable).
template <typename StrictlyAfter, typename Fn>
void with_stable_order(std::size_t n, StrictlyAfter&& strictly_after, Fn&& fn) {
  constexpr std::size_t kInlineOrder = 32;
  std::size_t inline_buffer[kInlineOrder];
  std::vector<std::size_t> heap_buffer;
  std::size_t* order = inline_buffer;
  if (n > kInlineOrder) {
    heap_buffer.resize(n);
    order = heap_buffer.data();
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t j = i;
    while (j > 0 && strictly_after(order[j - 1], i)) {
      order[j] = order[j - 1];
      --j;
    }
    order[j] = i;
  }
  fn(std::span<const std::size_t>(order, n));
}

}  // namespace p2ps::core
