// Supplier-subset selection for a streaming session.
//
// A requesting peer that collected grants from several candidates must pick
// a subset whose offers aggregate to *exactly* R0 (paper Section 4.2,
// admission condition 3). Because offers are the dyadic values R0/2^i
// (paper footnote 2), greedy largest-offer-first is exact: it finds a
// subset summing to R0 whenever one exists, and among all exact covers it
// uses the fewest suppliers — which by Theorem 1 also minimizes the
// session's buffering delay.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/bandwidth.hpp"
#include "core/peer_class.hpp"

namespace p2ps::core {

/// Result of a selection attempt.
struct SelectionResult {
  /// Indices into the candidate list, in pick order (descending offer).
  std::vector<std::size_t> chosen;
  /// Bandwidth still missing when selection failed (zero on success).
  Bandwidth shortfall = Bandwidth::zero();
  [[nodiscard]] bool success() const { return shortfall == Bandwidth::zero(); }
};

/// Greedy exact cover: walk candidates from largest offer to smallest
/// (stable on ties), take a candidate whenever its offer fits in the
/// remaining need, stop at zero. `target` defaults to R0.
///
/// Post: result.success() iff some subset of `classes` sums to `target`
/// exactly (see property test vs. brute force); on success `chosen` has
/// minimum possible cardinality.
[[nodiscard]] SelectionResult select_exact_cover(
    std::span<const PeerClass> classes,
    Bandwidth target = Bandwidth::playback_rate());

/// In-place variant of select_exact_cover for hot paths: overwrites
/// `result`, reusing the capacity of `result.chosen`. Identical output.
void select_exact_cover_into(SelectionResult& result,
                             std::span<const PeerClass> classes,
                             Bandwidth target = Bandwidth::playback_rate());

/// Ablation policy: prefer *small* offers first (maximizing the supplier
/// count), falling back to the exact greedy when the ascending walk cannot
/// reach the target. Admits whenever select_exact_cover would, but picks
/// more suppliers — isolating how much of DAC_p2p's buffering-delay benefit
/// comes from the largest-offer-first choice.
[[nodiscard]] SelectionResult select_max_cardinality_cover(
    std::span<const PeerClass> classes,
    Bandwidth target = Bandwidth::playback_rate());

/// In-place variant of select_max_cardinality_cover. Identical output.
void select_max_cardinality_cover_into(SelectionResult& result,
                                       std::span<const PeerClass> classes,
                                       Bandwidth target = Bandwidth::playback_rate());

/// Exhaustive reference for testing: does any subset of `classes` sum to
/// exactly `target`? Exponential — intended for candidate lists <= ~20.
[[nodiscard]] bool subset_sum_exists(std::span<const PeerClass> classes, Bandwidth target);

/// Exhaustive reference for testing: the minimum subset size achieving the
/// target exactly, or nullopt if impossible. Exponential, small inputs only.
[[nodiscard]] std::optional<std::size_t> min_exact_cover_size(
    std::span<const PeerClass> classes, Bandwidth target);

}  // namespace p2ps::core
