#include "core/ots.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace p2ps::core {

namespace {

/// Segments a class-c supplier carries per window of size `window`.
std::int64_t quota_for(PeerClass c, std::int64_t window) { return window >> c; }

/// Indices of `classes` sorted by descending offer (ascending class index),
/// stable so equal-offer suppliers keep their caller-given order — matching
/// the paper's walk-through where Ps3 precedes Ps4.
std::vector<std::size_t> descending_offer_order(std::span<const PeerClass> classes) {
  std::vector<std::size_t> order(classes.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return classes[a] < classes[b]; });
  return order;
}

void require_valid_session(std::span<const PeerClass> classes) {
  P2PS_REQUIRE_MSG(!classes.empty(), "a session needs at least one supplier");
  for (PeerClass c : classes) {
    P2PS_REQUIRE_MSG(c >= kHighestClass && c <= kMaxSupportedClasses,
                     "supplier class out of range");
  }
  P2PS_REQUIRE_MSG(offers_sum_to_r0(classes),
                   "OTS_p2p requires offers summing to exactly R0");
}

}  // namespace

SegmentAssignment::SegmentAssignment(std::vector<PeerClass> supplier_classes,
                                     std::vector<std::int32_t> segment_owner)
    : supplier_classes_(std::move(supplier_classes)),
      segment_owner_(std::move(segment_owner)) {
  P2PS_REQUIRE(!supplier_classes_.empty());
  P2PS_REQUIRE(!segment_owner_.empty());
  per_supplier_.resize(supplier_classes_.size());
  for (std::size_t s = 0; s < segment_owner_.size(); ++s) {
    const std::int32_t owner_index = segment_owner_[s];
    P2PS_REQUIRE(owner_index >= 0 &&
                 static_cast<std::size_t>(owner_index) < supplier_classes_.size());
    per_supplier_[static_cast<std::size_t>(owner_index)].push_back(
        static_cast<std::int64_t>(s));
  }
  // Quota invariant: supplier i carries exactly window / 2^class segments.
  const std::int64_t window = window_size();
  for (std::size_t i = 0; i < supplier_classes_.size(); ++i) {
    P2PS_CHECK_MSG(static_cast<std::int64_t>(per_supplier_[i].size()) ==
                       quota_for(supplier_classes_[i], window),
                   "assignment quota does not match supplier bandwidth");
  }
}

PeerClass SegmentAssignment::supplier_class(std::size_t i) const {
  P2PS_REQUIRE(i < supplier_classes_.size());
  return supplier_classes_[i];
}

std::int32_t SegmentAssignment::owner(std::int64_t s) const {
  P2PS_REQUIRE(s >= 0 && s < window_size());
  return segment_owner_[static_cast<std::size_t>(s)];
}

std::span<const std::int64_t> SegmentAssignment::segments_of(std::size_t i) const {
  P2PS_REQUIRE(i < per_supplier_.size());
  return per_supplier_[i];
}

util::SimTime SegmentAssignment::finish_time(std::size_t i, std::size_t j,
                                             util::SimTime dt) const {
  P2PS_REQUIRE(i < per_supplier_.size());
  P2PS_REQUIRE(j < per_supplier_[i].size());
  const std::int64_t per_segment = std::int64_t{1} << supplier_classes_[i];
  return dt * (static_cast<std::int64_t>(j + 1) * per_segment);
}

std::int64_t SegmentAssignment::min_buffering_delay_dt() const {
  std::int64_t delay = 0;
  for (std::size_t i = 0; i < per_supplier_.size(); ++i) {
    const std::int64_t per_segment = std::int64_t{1} << supplier_classes_[i];
    for (std::size_t j = 0; j < per_supplier_[i].size(); ++j) {
      const std::int64_t finish = static_cast<std::int64_t>(j + 1) * per_segment;
      delay = std::max(delay, finish - per_supplier_[i][j]);
    }
  }
  return delay;
}

media::PlaybackBuffer SegmentAssignment::simulate_arrivals(util::SimTime dt,
                                                           std::int64_t windows) const {
  P2PS_REQUIRE(windows > 0);
  const std::int64_t window = window_size();
  const media::MediaFile file(window * windows, dt);
  media::PlaybackBuffer buffer(file, window * windows);
  for (std::int64_t w = 0; w < windows; ++w) {
    const util::SimTime window_start = dt * (w * window);
    for (std::size_t i = 0; i < per_supplier_.size(); ++i) {
      for (std::size_t j = 0; j < per_supplier_[i].size(); ++j) {
        buffer.record_arrival(w * window + per_supplier_[i][j],
                              window_start + finish_time(i, j, dt));
      }
    }
  }
  return buffer;
}

std::int64_t assignment_window(std::span<const PeerClass> supplier_classes) {
  P2PS_REQUIRE(!supplier_classes.empty());
  PeerClass lowest = kHighestClass;
  for (PeerClass c : supplier_classes) {
    P2PS_REQUIRE_MSG(c >= kHighestClass && c <= kMaxSupportedClasses,
                     "supplier class out of range");
    lowest = std::max(lowest, c);
  }
  return std::int64_t{1} << lowest;
}

bool offers_sum_to_r0(std::span<const PeerClass> supplier_classes) {
  return total_offer(supplier_classes) == Bandwidth::playback_rate();
}

SegmentAssignment ots_assignment(std::span<const PeerClass> supplier_classes) {
  require_valid_session(supplier_classes);
  const std::int64_t window = assignment_window(supplier_classes);
  const auto n = static_cast<std::int64_t>(supplier_classes.size());

  // Paper Figure 2, deadline-aware form. Walk the window from its END
  // (segment W-1 down to 0), each round handing one segment to each
  // supplier whose assignment "is not complete". Completeness is governed
  // by the delay-N playback deadlines: writing r for the number of segments
  // already handed out (so the current segment is W-1-r), supplier i's
  // k-th from-the-end segment must satisfy r <= (k-1)*2^c_i + N - 1, or the
  // segment cannot be transmitted before its deadline. Picking, at every
  // step, the eligible supplier with the earliest such deadline (ties:
  // fewer segments so far, then larger offer, then input order) is
  // earliest-deadline-first on unit jobs, which meets every deadline
  // whenever any assignment does; a Hall-condition count shows delay N*dt
  // is always satisfiable (Theorem 1). On the paper's worked example this
  // reproduces the Figure 2 walk-through segment for segment.
  //
  // Note (documented in DESIGN.md): the *literal* quota-based round-robin
  // reading of the pseudo-code is not optimal for strongly skewed supplier
  // sets — see naive_round_robin_assignment, kept as a baseline.
  std::vector<std::int64_t> period(supplier_classes.size());
  std::vector<std::int64_t> quota(supplier_classes.size());
  std::vector<std::int64_t> taken(supplier_classes.size(), 0);
  for (std::size_t i = 0; i < supplier_classes.size(); ++i) {
    period[i] = std::int64_t{1} << supplier_classes[i];
    quota[i] = quota_for(supplier_classes[i], window);
  }

  std::vector<std::int32_t> owner(static_cast<std::size_t>(window), -1);
  for (std::int64_t r = 0; r < window; ++r) {
    std::size_t best = supplier_classes.size();
    std::int64_t best_deadline = 0;
    for (std::size_t i = 0; i < supplier_classes.size(); ++i) {
      if (taken[i] == quota[i]) continue;
      const std::int64_t deadline = taken[i] * period[i] + n - 1;
      const bool wins =
          best == supplier_classes.size() || deadline < best_deadline ||
          (deadline == best_deadline &&
           (taken[i] < taken[best] ||
            (taken[i] == taken[best] && supplier_classes[i] < supplier_classes[best])));
      if (wins) {
        best = i;
        best_deadline = deadline;
      }
    }
    P2PS_CHECK(best < supplier_classes.size());
    P2PS_CHECK_MSG(r <= best_deadline, "EDF deadline missed — Theorem 1 violated");
    owner[static_cast<std::size_t>(window - 1 - r)] = static_cast<std::int32_t>(best);
    ++taken[best];
  }

  return SegmentAssignment(
      std::vector<PeerClass>(supplier_classes.begin(), supplier_classes.end()),
      std::move(owner));
}

SegmentAssignment naive_round_robin_assignment(
    std::span<const PeerClass> supplier_classes) {
  require_valid_session(supplier_classes);
  const std::int64_t window = assignment_window(supplier_classes);
  const auto order = descending_offer_order(supplier_classes);

  std::vector<std::int64_t> remaining(supplier_classes.size());
  for (std::size_t i = 0; i < supplier_classes.size(); ++i) {
    remaining[i] = quota_for(supplier_classes[i], window);
  }

  // The literal quota-only reading of the paper's pseudo-code: hand
  // segments out from the window's end, one per still-under-quota supplier
  // per round, in descending-offer order. Optimal for balanced supplier
  // sets (including the paper's Figure 1 example) but suboptimal for
  // strongly skewed ones — kept as a baseline/ablation.
  std::vector<std::int32_t> owner(static_cast<std::size_t>(window), -1);
  std::int64_t s = window - 1;
  while (s >= 0) {
    for (std::size_t rank = 0; rank < order.size() && s >= 0; ++rank) {
      const std::size_t i = order[rank];
      if (remaining[i] > 0) {
        owner[static_cast<std::size_t>(s)] = static_cast<std::int32_t>(i);
        --remaining[i];
        --s;
      }
    }
  }

  return SegmentAssignment(
      std::vector<PeerClass>(supplier_classes.begin(), supplier_classes.end()),
      std::move(owner));
}

SegmentAssignment contiguous_assignment(std::span<const PeerClass> supplier_classes) {
  require_valid_session(supplier_classes);
  const std::int64_t window = assignment_window(supplier_classes);
  const auto order = descending_offer_order(supplier_classes);

  std::vector<std::int32_t> owner(static_cast<std::size_t>(window), -1);
  std::int64_t s = 0;
  for (std::size_t i : order) {
    const std::int64_t quota = quota_for(supplier_classes[i], window);
    for (std::int64_t q = 0; q < quota; ++q) {
      owner[static_cast<std::size_t>(s++)] = static_cast<std::int32_t>(i);
    }
  }
  P2PS_CHECK(s == window);

  return SegmentAssignment(
      std::vector<PeerClass>(supplier_classes.begin(), supplier_classes.end()),
      std::move(owner));
}

SegmentAssignment unsorted_round_robin_assignment(
    std::span<const PeerClass> supplier_classes) {
  require_valid_session(supplier_classes);
  const std::int64_t window = assignment_window(supplier_classes);

  std::vector<std::int64_t> remaining(supplier_classes.size());
  for (std::size_t i = 0; i < supplier_classes.size(); ++i) {
    remaining[i] = quota_for(supplier_classes[i], window);
  }

  std::vector<std::int32_t> owner(static_cast<std::size_t>(window), -1);
  std::int64_t s = window - 1;
  while (s >= 0) {
    for (std::size_t i = 0; i < supplier_classes.size() && s >= 0; ++i) {
      if (remaining[i] > 0) {
        owner[static_cast<std::size_t>(s)] = static_cast<std::int32_t>(i);
        --remaining[i];
        --s;
      }
    }
  }

  return SegmentAssignment(
      std::vector<PeerClass>(supplier_classes.begin(), supplier_classes.end()),
      std::move(owner));
}

}  // namespace p2ps::core
