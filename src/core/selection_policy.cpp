#include "core/selection_policy.hpp"

#include <array>
#include <cstdint>

#include "core/stable_order.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace p2ps::core {

namespace {

/// Greedy walk over a precomputed candidate order: take an offer whenever
/// it fits the remaining need, stop at zero.
void take_in_order(SelectionResult& result, std::span<const PeerClass> classes,
                   std::span<const std::size_t> order, Bandwidth target) {
  result.chosen.clear();
  Bandwidth need = target;
  for (std::size_t i : order) {
    if (need == Bandwidth::zero()) break;
    const Bandwidth offer = Bandwidth::class_offer(classes[i]);
    if (offer <= need) {
      result.chosen.push_back(i);
      need -= offer;
    }
  }
  result.shortfall = need;
}

/// Completeness fallback: a heuristic whose walk strands short of the
/// target re-runs the exact greedy, so every policy admits exactly when an
/// exact cover exists and the admission decision is policy-invariant.
void fall_back_if_stranded(SelectionResult& result, std::span<const PeerClass> classes,
                           Bandwidth target) {
  if (result.shortfall != Bandwidth::zero()) {
    select_exact_cover_into(result, classes, target);
  }
}

[[nodiscard]] bool already_chosen(const SelectionResult& result, std::size_t i) {
  for (std::size_t c : result.chosen) {
    if (c == i) return true;
  }
  return false;
}

/// The paper's DAC_p2p selection verbatim: largest offer first, exact on
/// dyadic offers, minimum supplier count (= minimum Theorem-1 delay).
class PaperDacPolicy final : public SelectionPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "paper-dac"; }
  [[nodiscard]] std::string_view description() const override {
    return "paper baseline: largest-offer-first exact cover (Section 4.2, "
           "minimum supplier count)";
  }
  void select_into(SelectionResult& result, std::span<const PeerClass> classes,
                   Bandwidth target, const SelectionContext&) const override {
    select_exact_cover_into(result, classes, target);
  }
};

/// The smallest-offer-first ablation: maximizes supplier count, isolating
/// how much of DAC_p2p's delay benefit comes from preferring large offers.
class MaxCardinalityPolicy final : public SelectionPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "max-cardinality"; }
  [[nodiscard]] std::string_view description() const override {
    return "ablation: smallest-offer-first exact cover (maximum supplier "
           "count, worst Theorem-1 delay)";
  }
  void select_into(SelectionResult& result, std::span<const PeerClass> classes,
                   Bandwidth target, const SelectionContext&) const override {
    select_max_cardinality_cover_into(result, classes, target);
  }
};

/// BitTorrent-flavored arrival order: take grants in the order the lookup
/// returned them (first to respond wins), ignoring offer size entirely.
class FirstFitPolicy final : public SelectionPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "first-fit"; }
  [[nodiscard]] std::string_view description() const override {
    return "first-fit arrival order: take granting candidates in lookup "
           "order, offer size ignored";
  }
  void select_into(SelectionResult& result, std::span<const PeerClass> classes,
                   Bandwidth target, const SelectionContext&) const override {
    result.chosen.clear();
    Bandwidth need = target;
    for (std::size_t i = 0; i < classes.size(); ++i) {
      if (need == Bandwidth::zero()) break;
      const Bandwidth offer = Bandwidth::class_offer(classes[i]);
      if (offer <= need) {
        result.chosen.push_back(i);
        need -= offer;
      }
    }
    result.shortfall = need;
    fall_back_if_stranded(result, classes, target);
  }
};

/// Randomized pick weighted by pledged bandwidth: each round draws one of
/// the still-fitting candidates with probability proportional to its offer.
/// Models BitTorrent's bias toward fast peers without the strict ordering.
class BandwidthProportionalPolicy final : public SelectionPolicy {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "bandwidth-proportional";
  }
  [[nodiscard]] std::string_view description() const override {
    return "randomized: repeatedly pick a fitting candidate with probability "
           "proportional to its pledged bandwidth";
  }
  [[nodiscard]] bool randomized() const override { return true; }
  void select_into(SelectionResult& result, std::span<const PeerClass> classes,
                   Bandwidth target, const SelectionContext& context) const override {
    P2PS_REQUIRE_MSG(context.rng != nullptr,
                     "bandwidth-proportional policy needs a selection RNG");
    result.chosen.clear();
    Bandwidth need = target;
    while (need != Bandwidth::zero()) {
      // Total weight of candidates that still fit; offers are positive, so
      // weight zero means no candidate fits and the walk is stranded.
      std::uint64_t total = 0;
      for (std::size_t i = 0; i < classes.size(); ++i) {
        if (already_chosen(result, i)) continue;
        const Bandwidth offer = Bandwidth::class_offer(classes[i]);
        if (offer <= need) total += static_cast<std::uint64_t>(offer.units());
      }
      if (total == 0) break;
      std::uint64_t ticket = context.rng->uniform_below(total);
      for (std::size_t i = 0; i < classes.size(); ++i) {
        if (already_chosen(result, i)) continue;
        const Bandwidth offer = Bandwidth::class_offer(classes[i]);
        if (offer > need) continue;
        const auto weight = static_cast<std::uint64_t>(offer.units());
        if (ticket < weight) {
          result.chosen.push_back(i);
          need -= offer;
          break;
        }
        ticket -= weight;
      }
    }
    result.shortfall = need;
    fall_back_if_stranded(result, classes, target);
  }
};

/// Tit-for-tat flavored scorer: prefer suppliers whose pledged class is
/// closest to the requester's own (peers trade with peers like themselves),
/// breaking ties toward the larger offer, then arrival order.
class ReciprocityPolicy final : public SelectionPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "reciprocity"; }
  [[nodiscard]] std::string_view description() const override {
    return "tit-for-tat flavored: prefer candidates in classes closest to "
           "the requester's own class";
  }
  void select_into(SelectionResult& result, std::span<const PeerClass> classes,
                   Bandwidth target, const SelectionContext& context) const override {
    const auto distance = [&](std::size_t i) {
      const PeerClass d = classes[i] - context.requester_class;
      return d < 0 ? -d : d;
    };
    with_stable_order(
        classes.size(),
        [&](std::size_t prior, std::size_t i) {
          const PeerClass dp = distance(prior);
          const PeerClass di = distance(i);
          if (dp != di) return dp > di;
          return classes[prior] > classes[i];
        },
        [&](std::span<const std::size_t> order) {
          take_in_order(result, classes, order, target);
        });
    fall_back_if_stranded(result, classes, target);
  }
};

/// Singleton instances plus the iteration order exposed to studies and the
/// CLI: paper baseline first, ablation second, rivals after.
[[nodiscard]] std::span<const SelectionPolicy* const> registry() {
  static const PaperDacPolicy paper_dac;
  static const MaxCardinalityPolicy max_cardinality;
  static const FirstFitPolicy first_fit;
  static const BandwidthProportionalPolicy bandwidth_proportional;
  static const ReciprocityPolicy reciprocity;
  static const std::array<const SelectionPolicy*, 5> all = {
      &paper_dac, &max_cardinality, &first_fit, &bandwidth_proportional,
      &reciprocity};
  return all;
}

}  // namespace

const SelectionPolicy& paper_dac_policy() { return *registry()[0]; }

const SelectionPolicy& max_cardinality_policy() { return *registry()[1]; }

const SelectionPolicy* find_selection_policy(std::string_view name) {
  for (const SelectionPolicy* policy : registry()) {
    if (policy->name() == name) return policy;
  }
  return nullptr;
}

std::span<const SelectionPolicy* const> all_selection_policies() { return registry(); }

std::string selection_policy_names() {
  std::string names;
  for (const SelectionPolicy* policy : registry()) {
    if (!names.empty()) names += ", ";
    names += policy->name();
  }
  return names;
}

}  // namespace p2ps::core
