// Per-class admission-probability vector (paper Section 4.1).
//
// A class-κ supplying peer grants a class-j request with probability P[j]:
//   init:     P[j] = 1.0 for j ≤ κ,  P[j] = 2^-(j-κ) for j > κ
//   elevate:  every entry < 1 doubles (idle timeout / quiet session end)
//   tighten:  reset to the class-k̂ profile after favored-class reminders
//
// All probabilities are exact powers of two; we store the negated exponent
// (P[j] = 2^-exp[j]) so the dynamics are integer arithmetic with no float
// drift, and "favored" (P == 1.0) is an exact test.
#pragma once

#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/peer_class.hpp"

namespace p2ps::core {

class AdmissionProbabilityVector {
 public:
  /// Initial profile of a class-`own_class` supplier in a K-class system.
  AdmissionProbabilityVector(PeerClass num_classes, PeerClass own_class);

  /// The NDAC_p2p vector: every class admitted with probability 1.0.
  [[nodiscard]] static AdmissionProbabilityVector all_ones(PeerClass num_classes);

  [[nodiscard]] PeerClass num_classes() const {
    return static_cast<PeerClass>(exponents_.size());
  }

  // The three probe-path accessors are defined inline: a supplier consults
  // them once per received probe (millions of times per paper-scale run).

  /// P[c] as a double (exactly representable: a power of two).
  [[nodiscard]] double probability(PeerClass c) const {
    return std::ldexp(1.0, -exponent(c));
  }

  /// The stored exponent e with P[c] = 2^-e.
  [[nodiscard]] std::int32_t exponent(PeerClass c) const {
    require_valid_class(c, num_classes());
    return exponents_[static_cast<std::size_t>(c - 1)];
  }

  /// Class c is *favored* iff P[c] == 1.0.
  [[nodiscard]] bool favors(PeerClass c) const { return exponent(c) == 0; }

  /// The lowest favored class (largest class index with P == 1.0). At least
  /// one class is always favored (class 1 by construction).
  [[nodiscard]] PeerClass lowest_favored_class() const {
    PeerClass lowest = kHighestClass;
    for (PeerClass c = 1; c <= num_classes(); ++c) {
      if (favors(c)) lowest = c;
    }
    return lowest;
  }

  /// Doubles every probability below 1.0 (capped at 1.0) — the relaxation
  /// applied after an idle timeout or a session with no favored-class
  /// requests.
  void elevate();

  /// Resets to the profile of a class-`k_hat` peer — the tightening applied
  /// when favored-class requesters left reminders; k̂ is the highest such
  /// class.
  void tighten_to(PeerClass k_hat);

  /// True when every class is favored (vector fully relaxed to all ones).
  [[nodiscard]] bool fully_relaxed() const;

  friend bool operator==(const AdmissionProbabilityVector&,
                         const AdmissionProbabilityVector&) = default;

 private:
  explicit AdmissionProbabilityVector(std::vector<std::int32_t> exponents)
      : exponents_(std::move(exponents)) {}
  std::vector<std::int32_t> exponents_;  // P[c] = 2^-exponents_[c-1]
};

std::ostream& operator<<(std::ostream& os, const AdmissionProbabilityVector& v);

}  // namespace p2ps::core
