#include "core/admission/requester.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace p2ps::core {

namespace {
/// Saturating power: t_bkf * e_bkf^exp without overflow (caps at ~292 years
/// of simulated time, far beyond any run length).
util::SimTime scaled_backoff(util::SimTime t_bkf, std::int64_t e_bkf, std::int64_t exp) {
  constexpr std::int64_t kCapMs = std::int64_t{1} << 53;
  std::int64_t ms = t_bkf.as_millis();
  for (std::int64_t i = 0; i < exp; ++i) {
    if (ms > kCapMs / e_bkf) return util::SimTime::millis(kCapMs);
    ms *= e_bkf;
  }
  return util::SimTime::millis(ms);
}
}  // namespace

RequesterBackoff::RequesterBackoff(util::SimTime t_bkf, std::int64_t e_bkf)
    : t_bkf_(t_bkf), e_bkf_(e_bkf) {
  P2PS_REQUIRE(t_bkf > util::SimTime::zero());
  P2PS_REQUIRE(e_bkf >= 1);
}

util::SimTime RequesterBackoff::on_rejected() {
  ++rejections_;
  const util::SimTime backoff = scaled_backoff(t_bkf_, e_bkf_, rejections_ - 1);
  total_waiting_ += backoff;
  return backoff;
}

util::SimTime RequesterBackoff::waiting_time_for(std::int64_t rejections,
                                                 util::SimTime t_bkf, std::int64_t e_bkf) {
  P2PS_REQUIRE(rejections >= 0);
  util::SimTime total = util::SimTime::zero();
  for (std::int64_t r = 1; r <= rejections; ++r) {
    total += scaled_backoff(t_bkf, e_bkf, r - 1);
  }
  return total;
}

std::vector<std::size_t> reminder_set(std::span<const BusyCandidate> busy_candidates,
                                      Bandwidth shortfall) {
  P2PS_REQUIRE(shortfall >= Bandwidth::zero());
  std::vector<std::size_t> order(busy_candidates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return busy_candidates[a].cls < busy_candidates[b].cls;
  });

  std::vector<std::size_t> omega;
  Bandwidth need = shortfall;
  for (std::size_t i : order) {
    if (need == Bandwidth::zero()) break;
    const BusyCandidate& candidate = busy_candidates[i];
    if (!candidate.favors_requester) continue;
    const Bandwidth offer = Bandwidth::class_offer(candidate.cls);
    if (offer <= need) {
      omega.push_back(candidate.index);
      need -= offer;
    }
  }
  return omega;
}

}  // namespace p2ps::core
