#include "core/admission/requester.hpp"

#include "core/stable_order.hpp"
#include "util/assert.hpp"

namespace p2ps::core {

/// Saturating power: t_bkf * e_bkf^exp without overflow (caps at ~292 years
/// of simulated time, far beyond any run length).
util::SimTime scaled_backoff(util::SimTime t_bkf, std::int64_t e_bkf, std::int64_t exp) {
  constexpr std::int64_t kCapMs = std::int64_t{1} << 53;
  std::int64_t ms = t_bkf.as_millis();
  for (std::int64_t i = 0; i < exp; ++i) {
    if (ms > kCapMs / e_bkf) return util::SimTime::millis(kCapMs);
    ms *= e_bkf;
  }
  return util::SimTime::millis(ms);
}

RequesterBackoff::RequesterBackoff(util::SimTime t_bkf, std::int64_t e_bkf)
    : t_bkf_(t_bkf), e_bkf_(e_bkf) {
  P2PS_REQUIRE(t_bkf > util::SimTime::zero());
  P2PS_REQUIRE(e_bkf >= 1);
}

util::SimTime RequesterBackoff::on_rejected() {
  ++rejections_;
  const util::SimTime backoff = scaled_backoff(t_bkf_, e_bkf_, rejections_ - 1);
  total_waiting_ += backoff;
  return backoff;
}

util::SimTime RequesterBackoff::waiting_time_for(std::int64_t rejections,
                                                 util::SimTime t_bkf, std::int64_t e_bkf) {
  P2PS_REQUIRE(rejections >= 0);
  util::SimTime total = util::SimTime::zero();
  for (std::int64_t r = 1; r <= rejections; ++r) {
    total += scaled_backoff(t_bkf, e_bkf, r - 1);
  }
  return total;
}

void reminder_set_into(std::vector<std::size_t>& omega,
                       std::span<const BusyCandidate> busy_candidates,
                       Bandwidth shortfall) {
  P2PS_REQUIRE(shortfall >= Bandwidth::zero());
  omega.clear();

  // Walk the busy candidates stably sorted by class, highest (class 1)
  // first, keeping favoring candidates until the shortfall is covered.
  with_stable_order(
      busy_candidates.size(),
      [&](std::size_t prior, std::size_t i) {
        return busy_candidates[prior].cls > busy_candidates[i].cls;
      },
      [&](std::span<const std::size_t> order) {
        Bandwidth need = shortfall;
        for (std::size_t i : order) {
          if (need == Bandwidth::zero()) break;
          const BusyCandidate& candidate = busy_candidates[i];
          if (!candidate.favors_requester) continue;
          const Bandwidth offer = Bandwidth::class_offer(candidate.cls);
          if (offer <= need) {
            omega.push_back(candidate.index);
            need -= offer;
          }
        }
      });
}

std::vector<std::size_t> reminder_set(std::span<const BusyCandidate> busy_candidates,
                                      Bandwidth shortfall) {
  std::vector<std::size_t> omega;
  reminder_set_into(omega, busy_candidates, shortfall);
  return omega;
}

}  // namespace p2ps::core
