#include "core/admission/supplier.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace p2ps::core {

SupplierAdmission::SupplierAdmission(PeerClass num_classes, PeerClass own_class,
                                     bool differentiated)
    : own_class_(own_class),
      differentiated_(differentiated),
      vector_(differentiated
                  ? AdmissionProbabilityVector(num_classes, own_class)
                  : AdmissionProbabilityVector::all_ones(num_classes)) {
  require_valid_class(own_class, num_classes);
}

ProbeOutcome SupplierAdmission::handle_probe(PeerClass requester_class, util::Rng& rng) {
  require_valid_class(requester_class, vector_.num_classes());
  ProbeOutcome outcome;
  outcome.favors_requester = vector_.favors(requester_class);
  if (busy_) {
    outcome.reply = ProbeReply::kBusy;
    if (differentiated_ && outcome.favors_requester) favored_request_seen_ = true;
    return outcome;
  }
  const bool granted = rng.bernoulli(vector_.probability(requester_class));
  outcome.reply = granted ? ProbeReply::kGranted : ProbeReply::kDenied;
  return outcome;
}

void SupplierAdmission::leave_reminder(PeerClass requester_class) {
  require_valid_class(requester_class, vector_.num_classes());
  if (!differentiated_) return;
  P2PS_REQUIRE_MSG(busy_, "reminders are only left with busy suppliers");
  reminders_.push_back(requester_class);
}

void SupplierAdmission::on_session_start() {
  P2PS_REQUIRE_MSG(!busy_, "supplier already serving a session");
  busy_ = true;
  favored_request_seen_ = false;
  reminders_.clear();
}

void SupplierAdmission::on_session_end() {
  P2PS_REQUIRE_MSG(busy_, "no session in progress");
  busy_ = false;
  if (!differentiated_) return;

  if (!favored_request_seen_) {
    // Quiet session: nobody we favor asked — relax toward lower classes.
    vector_.elevate();
  } else if (!reminders_.empty()) {
    // Favored-class demand we had to turn away: adopt the profile of the
    // highest reminding class (smallest index).
    const PeerClass k_hat = *std::min_element(reminders_.begin(), reminders_.end());
    vector_.tighten_to(k_hat);
  }
  // Favored-class requests without reminders: leave the vector as is.
  favored_request_seen_ = false;
  reminders_.clear();
}

void SupplierAdmission::on_idle_timeout() {
  P2PS_REQUIRE_MSG(!busy_, "idle timeout cannot fire while busy");
  if (!differentiated_) return;
  vector_.elevate();
}

}  // namespace p2ps::core
