// Supplying-peer side of DAC_p2p (paper Section 4.1).
//
// Pure protocol state machine — no clock, no networking. The hosting engine
// drives it: forwards probes, schedules the idle-elevation timeout, and
// signals session start/end. The same class runs NDAC_p2p when constructed
// in non-differentiated mode (vector pinned to all ones, reminders and
// elevation disabled).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/admission/probability_vector.hpp"
#include "core/peer_class.hpp"
#include "util/rng.hpp"

namespace p2ps::core {

/// Reply a supplier gives to a streaming-service probe.
enum class ProbeReply : std::uint8_t {
  kGranted,        ///< idle, passed the probabilistic admission test
  kDenied,         ///< idle, failed the probabilistic admission test
  kBusy,           ///< serving another session (reminder may be left)
};

/// Everything a requester learns from probing one candidate.
struct ProbeOutcome {
  ProbeReply reply = ProbeReply::kDenied;
  /// Whether the candidate currently favors the requester's class —
  /// the requester needs this to build the reminder set Ω when busy.
  bool favors_requester = false;
};

class SupplierAdmission {
 public:
  /// `differentiated` false yields the NDAC_p2p baseline.
  SupplierAdmission(PeerClass num_classes, PeerClass own_class, bool differentiated);

  [[nodiscard]] PeerClass own_class() const { return own_class_; }
  [[nodiscard]] bool differentiated() const { return differentiated_; }
  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] const AdmissionProbabilityVector& vector() const { return vector_; }

  /// Handles a probe from a class-`requester_class` peer. While idle this
  /// applies the probabilistic admission test; while busy it records the
  /// request (for the favored-class session-end rule) and reports busy.
  [[nodiscard]] ProbeOutcome handle_probe(PeerClass requester_class, util::Rng& rng);

  /// Stores a reminder left by a rejected class-`requester_class` peer.
  /// Only meaningful while busy; ignored entirely in NDAC mode.
  void leave_reminder(PeerClass requester_class);

  /// Marks the supplier busy with a session. Requires !busy().
  void on_session_start();

  /// Marks the session over and applies the paper's update rules:
  ///  * no favored-class request arrived while busy → elevate;
  ///  * favored-class requests arrived and ≥1 reminder was left → tighten
  ///    to k̂ = highest reminder class;
  ///  * favored-class requests but no reminders → vector unchanged
  ///    (documented resolution of a paper ambiguity).
  /// Requires busy().
  void on_session_end();

  /// Applies the idle-timeout elevation. The engine calls this every T_out
  /// of continuous idleness; it is a no-op once fully relaxed and always a
  /// no-op in NDAC mode. Requires !busy().
  void on_idle_timeout();

  /// Reminders collected during the current session (visible for tests and
  /// the adaptivity metrics).
  [[nodiscard]] const std::vector<PeerClass>& pending_reminders() const {
    return reminders_;
  }

  /// True if a favored-class request arrived during the current session.
  [[nodiscard]] bool favored_request_seen() const { return favored_request_seen_; }

 private:
  PeerClass own_class_;
  bool differentiated_;
  bool busy_ = false;
  bool favored_request_seen_ = false;
  std::vector<PeerClass> reminders_;
  AdmissionProbabilityVector vector_;
};

}  // namespace p2ps::core
