#include "core/admission/probability_vector.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/assert.hpp"

namespace p2ps::core {

AdmissionProbabilityVector::AdmissionProbabilityVector(PeerClass num_classes,
                                                       PeerClass own_class) {
  require_valid_class(own_class, num_classes);
  exponents_.resize(static_cast<std::size_t>(num_classes));
  for (PeerClass c = 1; c <= num_classes; ++c) {
    exponents_[static_cast<std::size_t>(c - 1)] = std::max(0, c - own_class);
  }
}

AdmissionProbabilityVector AdmissionProbabilityVector::all_ones(PeerClass num_classes) {
  P2PS_REQUIRE(num_classes >= 1 && num_classes <= kMaxSupportedClasses);
  return AdmissionProbabilityVector(
      std::vector<std::int32_t>(static_cast<std::size_t>(num_classes), 0));
}

void AdmissionProbabilityVector::elevate() {
  for (auto& e : exponents_) e = std::max(0, e - 1);
}

void AdmissionProbabilityVector::tighten_to(PeerClass k_hat) {
  require_valid_class(k_hat, num_classes());
  for (PeerClass c = 1; c <= num_classes(); ++c) {
    exponents_[static_cast<std::size_t>(c - 1)] = std::max(0, c - k_hat);
  }
}

bool AdmissionProbabilityVector::fully_relaxed() const {
  return std::all_of(exponents_.begin(), exponents_.end(),
                     [](std::int32_t e) { return e == 0; });
}

std::ostream& operator<<(std::ostream& os, const AdmissionProbabilityVector& v) {
  os << '[';
  for (PeerClass c = 1; c <= v.num_classes(); ++c) {
    if (c > 1) os << ", ";
    os << v.probability(c);
  }
  return os << ']';
}

}  // namespace p2ps::core
