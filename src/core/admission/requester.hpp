// Requesting-peer side of DAC_p2p (paper Section 4.2).
//
// Tracks rejection count and computes the retry backoff
// T_bkf · E_bkf^(ρ-1) after the ρ-th rejection, plus the derived waiting
// time Σ backoffs used by the paper's Table 1 analysis. The probe/selection
// logic itself lives in the engine (it needs the lookup service and the
// candidates); the reminder-set computation is here because it is pure.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/bandwidth.hpp"
#include "core/peer_class.hpp"
#include "util/sim_time.hpp"

namespace p2ps::core {

/// The backoff after the (exp+1)-th rejection: t_bkf · e_bkf^exp, saturating
/// at ~292 simulated years instead of overflowing. Exposed so engines that
/// pack the rejection count into per-peer bit fields (the sharded engine's
/// compact state) can reproduce RequesterBackoff's delays from the count
/// alone — the backoff is a pure function of (t_bkf, e_bkf, rejections).
[[nodiscard]] util::SimTime scaled_backoff(util::SimTime t_bkf,
                                           std::int64_t e_bkf,
                                           std::int64_t exp);

/// Backoff/retry bookkeeping for one requesting peer.
class RequesterBackoff {
 public:
  /// `t_bkf` — base backoff; `e_bkf` — exponential factor (1 = constant).
  RequesterBackoff(util::SimTime t_bkf, std::int64_t e_bkf);

  /// Records the ρ-th rejection and returns the backoff to wait before the
  /// next attempt: T_bkf · E_bkf^(ρ-1), saturating instead of overflowing.
  util::SimTime on_rejected();

  [[nodiscard]] std::int64_t rejections() const { return rejections_; }

  /// Total waiting time accumulated so far (sum of returned backoffs) —
  /// the paper's "waiting time" for an admitted peer.
  [[nodiscard]] util::SimTime total_waiting() const { return total_waiting_; }

  /// Closed form the paper states under Table 1: the waiting time implied
  /// by `rejections` rejections.
  [[nodiscard]] static util::SimTime waiting_time_for(std::int64_t rejections,
                                                      util::SimTime t_bkf,
                                                      std::int64_t e_bkf);

 private:
  util::SimTime t_bkf_;
  std::int64_t e_bkf_;
  std::int64_t rejections_ = 0;
  util::SimTime total_waiting_ = util::SimTime::zero();
};

/// One busy candidate as seen by a rejected requester.
struct BusyCandidate {
  std::size_t index;        ///< caller-side identifier (position in probe list)
  PeerClass cls;            ///< the candidate's own class (its offer)
  bool favors_requester;    ///< did it favor the requester's class when probed
};

/// Computes the reminder set Ω (paper Section 4.2): walk the busy
/// candidates from high to low class, keep those that favor the requester,
/// and stop once their aggregated offer covers `shortfall`
/// (= R0 − Σ granted offers). If the shortfall cannot be covered exactly,
/// the greedy prefix that fits is returned (documented resolution).
[[nodiscard]] std::vector<std::size_t> reminder_set(
    std::span<const BusyCandidate> busy_candidates, Bandwidth shortfall);

/// In-place variant of reminder_set for hot paths: clears `omega` and
/// fills it, reusing its capacity. Identical output.
void reminder_set_into(std::vector<std::size_t>& omega,
                       std::span<const BusyCandidate> busy_candidates,
                       Bandwidth shortfall);

}  // namespace p2ps::core
