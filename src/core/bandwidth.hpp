// Exact bandwidth algebra.
//
// Every bandwidth quantity in the paper is R0 times a dyadic rational
// (offers are R0/2^i), so we represent bandwidth as an integer count of
// "units", where one unit is R0 / 2^30. All sums, comparisons and the
// capacity floor are exact — no floating point anywhere in the protocol.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <span>

#include "core/peer_class.hpp"
#include "util/assert.hpp"

namespace p2ps::core {

class Bandwidth {
 public:
  /// log2 of units per R0. Supports offers down to R0/2^30.
  static constexpr int kScaleLog2 = 30;
  static constexpr std::int64_t kUnitsPerR0 = std::int64_t{1} << kScaleLog2;

  constexpr Bandwidth() = default;

  [[nodiscard]] static constexpr Bandwidth zero() { return Bandwidth{0}; }

  /// The media playback rate R0.
  [[nodiscard]] static constexpr Bandwidth playback_rate() { return Bandwidth{kUnitsPerR0}; }

  /// Out-bound offer of a class-`c` peer: R0 / 2^c.
  [[nodiscard]] static Bandwidth class_offer(PeerClass c) {
    P2PS_REQUIRE_MSG(c >= kHighestClass && c <= kMaxSupportedClasses,
                     "class outside representable range");
    return Bandwidth{kUnitsPerR0 >> c};
  }

  [[nodiscard]] static constexpr Bandwidth from_units(std::int64_t units) {
    return Bandwidth{units};
  }

  [[nodiscard]] constexpr std::int64_t units() const { return units_; }
  [[nodiscard]] constexpr double as_fraction_of_r0() const {
    return static_cast<double>(units_) / static_cast<double>(kUnitsPerR0);
  }

  constexpr auto operator<=>(const Bandwidth&) const = default;

  constexpr Bandwidth& operator+=(Bandwidth rhs) { units_ += rhs.units_; return *this; }
  constexpr Bandwidth& operator-=(Bandwidth rhs) { units_ -= rhs.units_; return *this; }
  friend constexpr Bandwidth operator+(Bandwidth a, Bandwidth b) { return Bandwidth{a.units_ + b.units_}; }
  friend constexpr Bandwidth operator-(Bandwidth a, Bandwidth b) { return Bandwidth{a.units_ - b.units_}; }
  friend constexpr Bandwidth operator*(std::int64_t k, Bandwidth a) { return Bandwidth{k * a.units_}; }

 private:
  explicit constexpr Bandwidth(std::int64_t units) : units_(units) {}
  std::int64_t units_ = 0;
};

std::ostream& operator<<(std::ostream& os, Bandwidth b);

/// Aggregated out-bound offer of a set of peer classes.
[[nodiscard]] Bandwidth total_offer(std::span<const PeerClass> classes);

/// System streaming capacity (paper Section 2, assumption 4):
/// C = floor( Σ offers / R0 ) — the number of full-rate sessions the current
/// supplier population could serve simultaneously.
[[nodiscard]] std::int64_t capacity(Bandwidth total);

/// Capacity of a supplier population given directly by classes.
[[nodiscard]] std::int64_t capacity(std::span<const PeerClass> supplier_classes);

}  // namespace p2ps::core
