#include "core/plan.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace p2ps::core {

TransmissionPlan::TransmissionPlan(const media::MediaFile& file,
                                   SegmentAssignment assignment)
    : file_(file), assignment_(std::move(assignment)) {
  const std::int64_t window = assignment_.window_size();
  const std::int64_t total = file_.segments();
  const util::SimTime dt = file_.segment_duration();
  const std::int64_t windows = (total + window - 1) / window;

  transmissions_.reserve(static_cast<std::size_t>(total));
  for (std::int64_t w = 0; w < windows; ++w) {
    // Every supplier is fully busy for exactly window·Δt per full window,
    // so each window's transmissions start at w·window·Δt.
    const util::SimTime window_start = dt * (w * window);
    for (std::size_t i = 0; i < assignment_.supplier_count(); ++i) {
      const std::int64_t per_segment =
          std::int64_t{1} << assignment_.supplier_class(i);
      // In the final (possibly partial) window the supplier sends only its
      // surviving segments, back to back — never later than the full-window
      // schedule, so feasibility is preserved.
      std::int64_t sent_in_window = 0;
      for (std::int64_t local : assignment_.segments_of(i)) {
        const std::int64_t segment = w * window + local;
        if (segment >= total) break;
        const util::SimTime start =
            window_start + dt * (sent_in_window * per_segment);
        transmissions_.push_back(PlannedTransmission{
            segment, static_cast<std::int32_t>(i), start, start + dt * per_segment});
        ++sent_in_window;
      }
    }
  }
  std::sort(transmissions_.begin(), transmissions_.end(),
            [](const PlannedTransmission& a, const PlannedTransmission& b) {
              return a.segment < b.segment;
            });
  P2PS_ENSURE(static_cast<std::int64_t>(transmissions_.size()) == total);
}

util::SimTime TransmissionPlan::completion_time() const {
  util::SimTime latest = util::SimTime::zero();
  for (const auto& transmission : transmissions_) {
    latest = std::max(latest, transmission.finish);
  }
  return latest;
}

media::PlaybackBuffer TransmissionPlan::to_buffer() const {
  media::PlaybackBuffer buffer(file_, file_.segments());
  for (const auto& transmission : transmissions_) {
    buffer.record_arrival(transmission.segment, transmission.finish);
  }
  return buffer;
}

util::SimTime TransmissionPlan::buffering_delay() const {
  return to_buffer().min_buffering_delay();
}

std::int64_t TransmissionPlan::segments_of_supplier(std::size_t i) const {
  P2PS_REQUIRE(i < assignment_.supplier_count());
  std::int64_t count = 0;
  for (const auto& transmission : transmissions_) {
    if (static_cast<std::size_t>(transmission.supplier) == i) ++count;
  }
  return count;
}

}  // namespace p2ps::core
