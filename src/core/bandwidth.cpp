#include "core/bandwidth.hpp"

#include <ostream>

namespace p2ps::core {

std::ostream& operator<<(std::ostream& os, Bandwidth b) {
  return os << b.as_fraction_of_r0() << "*R0";
}

Bandwidth total_offer(std::span<const PeerClass> classes) {
  Bandwidth total = Bandwidth::zero();
  for (PeerClass c : classes) total += Bandwidth::class_offer(c);
  return total;
}

std::int64_t capacity(Bandwidth total) {
  P2PS_REQUIRE(total >= Bandwidth::zero());
  return total.units() / Bandwidth::kUnitsPerR0;
}

std::int64_t capacity(std::span<const PeerClass> supplier_classes) {
  return capacity(total_offer(supplier_classes));
}

}  // namespace p2ps::core
