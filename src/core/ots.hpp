// OTS_p2p — optimal media-data assignment (paper Section 3).
//
// Given N supplying peers whose out-bound offers sum to exactly R0, assign
// each segment of a repeating window to one supplier so that continuous
// playback is possible with minimum buffering delay. Theorem 1: the minimum
// is N·Δt, and the schedule below achieves it.
//
// Window structure: with k = lowest class (largest index) among the session
// suppliers, the window spans W = 2^k segments and the assignment repeats
// every W segments; a class-c supplier carries W / 2^c segments per window
// and transmits them in increasing playback order, one segment every
// 2^c · Δt.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/bandwidth.hpp"
#include "core/peer_class.hpp"
#include "media/media_file.hpp"
#include "media/playback_buffer.hpp"
#include "util/sim_time.hpp"

namespace p2ps::core {

/// A per-window mapping of segments to suppliers.
///
/// Suppliers are referred to by index into the class list the assignment was
/// built from. `segment_owner[s]` gives the supplier of window segment `s`;
/// `segments_of(i)` lists supplier i's window segments in transmission
/// (= playback) order.
class SegmentAssignment {
 public:
  SegmentAssignment(std::vector<PeerClass> supplier_classes,
                    std::vector<std::int32_t> segment_owner);

  [[nodiscard]] std::int64_t window_size() const {
    return static_cast<std::int64_t>(segment_owner_.size());
  }
  [[nodiscard]] std::size_t supplier_count() const { return supplier_classes_.size(); }
  [[nodiscard]] PeerClass supplier_class(std::size_t i) const;
  [[nodiscard]] std::span<const PeerClass> supplier_classes() const {
    return supplier_classes_;
  }

  /// Supplier index owning window segment `s`.
  [[nodiscard]] std::int32_t owner(std::int64_t s) const;

  /// Window segments assigned to supplier `i`, ascending.
  [[nodiscard]] std::span<const std::int64_t> segments_of(std::size_t i) const;

  /// Time (relative to transmission start of a window) at which supplier `i`
  /// finishes sending its j-th assigned segment (0-based), given Δt:
  /// (j + 1) · 2^class · Δt.
  [[nodiscard]] util::SimTime finish_time(std::size_t i, std::size_t j,
                                          util::SimTime dt) const;

  /// Minimum feasible buffering delay of *this* assignment, in units of Δt:
  /// max over suppliers i and their j-th segment s of
  /// ((j+1)·2^class(i) − s). Suppliers transmit in playback order, which is
  /// optimal for a fixed assignment (exchange argument).
  [[nodiscard]] std::int64_t min_buffering_delay_dt() const;

  /// Records arrival times of the first `windows` windows into a playback
  /// buffer — lets tests validate delays against the media-level checker.
  [[nodiscard]] media::PlaybackBuffer simulate_arrivals(util::SimTime dt,
                                                        std::int64_t windows) const;

 private:
  std::vector<PeerClass> supplier_classes_;
  std::vector<std::int32_t> segment_owner_;          // size == window
  std::vector<std::vector<std::int64_t>> per_supplier_;  // ascending segment ids
};

/// Window size for a supplier set: 2^(lowest class). Requires a non-empty
/// class list with every class in [1, kMaxSupportedClasses].
[[nodiscard]] std::int64_t assignment_window(std::span<const PeerClass> supplier_classes);

/// Returns true when the offers sum to exactly R0 — the precondition of
/// OTS_p2p and Theorem 1.
[[nodiscard]] bool offers_sum_to_r0(std::span<const PeerClass> supplier_classes);

/// Algorithm OTS_p2p (paper Figure 2). Suppliers are sorted by descending
/// offer internally; the returned assignment's supplier indices refer to
/// positions in `supplier_classes` as passed in. Requires
/// offers_sum_to_r0(supplier_classes). Achieves delay N·Δt (Theorem 1).
[[nodiscard]] SegmentAssignment ots_assignment(std::span<const PeerClass> supplier_classes);

/// Naive baseline (paper Figure 1, Assignment I): sort by descending offer
/// and hand out *contiguous* runs of segments — supplier 1 gets the first
/// quota, supplier 2 the next, and so on. Suboptimal in general.
[[nodiscard]] SegmentAssignment contiguous_assignment(
    std::span<const PeerClass> supplier_classes);

/// Baseline: the literal quota-only round-robin reading of the paper's
/// pseudo-code (no deadline awareness). Matches OTS on balanced supplier
/// sets such as the paper's Figure 1 example, but misses the Theorem-1
/// bound on strongly skewed sets — see DESIGN.md, "reconstruction notes".
[[nodiscard]] SegmentAssignment naive_round_robin_assignment(
    std::span<const PeerClass> supplier_classes);

/// OTS loop executed *without* sorting the suppliers first — isolates the
/// contribution of the descending-offer order to optimality (ablation).
[[nodiscard]] SegmentAssignment unsorted_round_robin_assignment(
    std::span<const PeerClass> supplier_classes);

/// Theorem 1's closed form: the minimum achievable buffering delay for a
/// session with `n` suppliers, in units of Δt.
[[nodiscard]] constexpr std::int64_t theorem1_min_delay_dt(std::size_t n) {
  return static_cast<std::int64_t>(n);
}

}  // namespace p2ps::core
