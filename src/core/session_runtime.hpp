// Executable streaming session.
//
// TransmissionPlan is a timetable; SessionRuntime *runs* it on the
// discrete-event simulator: one completion event per segment feeds the
// receiver's playback buffer, playback starts after the configured
// buffering delay, and every segment consumption either succeeds or counts
// a stall. This closes the loop between the paper's scheduling theory and
// an actually-executing session — used by tests to show that sessions play
// stall-free at the Theorem-1 delay and stall below it.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/plan.hpp"
#include "media/playback_buffer.hpp"
#include "sim/simulator.hpp"
#include "util/sim_time.hpp"

namespace p2ps::core {

/// Outcome of an executed session.
struct SessionReport {
  std::int64_t segments_played = 0;
  std::int64_t stalls = 0;           ///< deadline misses during playback
  util::SimTime playback_start;      ///< transmission start + buffering delay
  util::SimTime playback_end;        ///< when the last segment finished playing
  [[nodiscard]] bool stall_free() const { return stalls == 0; }
};

class SessionRuntime {
 public:
  /// Will execute `plan` with playback starting `buffering_delay` after the
  /// transmission start. The plan is copied; the simulator must outlive the
  /// runtime.
  SessionRuntime(sim::Simulator& simulator, TransmissionPlan plan,
                 util::SimTime buffering_delay);

  /// Schedules all arrival and playback events starting at the simulator's
  /// current time. Call once, then run the simulator.
  void start();

  /// Optional observer invoked at each playback tick (segment, on_time).
  void set_playback_observer(std::function<void(std::int64_t, bool)> observer) {
    observer_ = std::move(observer);
  }

  [[nodiscard]] bool finished() const { return finished_; }
  /// The report; only meaningful once finished().
  [[nodiscard]] const SessionReport& report() const { return report_; }
  /// Receiver-side buffer state (inspectable mid-run).
  [[nodiscard]] const media::PlaybackBuffer& buffer() const { return buffer_; }

 private:
  void play_segment(std::int64_t segment);

  sim::Simulator& simulator_;
  TransmissionPlan plan_;
  util::SimTime buffering_delay_;
  media::PlaybackBuffer buffer_;
  std::function<void(std::int64_t, bool)> observer_;
  util::SimTime origin_;  ///< simulator time when start() ran
  SessionReport report_;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace p2ps::core
