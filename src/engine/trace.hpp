// Structured protocol trace.
//
// When enabled (SimulationConfig::trace_capacity > 0), the session-level
// engine records one compact event per protocol action into a bounded ring
// buffer. Traces make individual peer journeys inspectable — first request,
// rejections and their reminder counts, admission with its session and
// buffering delay, the supplier hand-over — without grepping logs, and are
// the basis of the `trace_explorer` example.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "core/ids.hpp"
#include "core/peer_class.hpp"
#include "util/sim_time.hpp"

namespace p2ps::engine {

enum class TraceKind : std::uint8_t {
  kFirstRequest,
  kAttempt,        ///< detail = candidates probed
  kRejection,      ///< detail = reminders left
  kAdmission,      ///< detail = buffering delay (Δt units)
  kSessionEnd,     ///< detail = number of suppliers released
  kBecameSupplier, ///< detail = capacity after registration
  kDeparture,      ///< detail = capacity after leaving
  kIdleElevation,
};

[[nodiscard]] std::string_view to_string(TraceKind kind);

struct TraceEvent {
  util::SimTime t;
  TraceKind kind = TraceKind::kFirstRequest;
  core::PeerId peer;
  core::PeerClass cls = core::kHighestClass;
  core::SessionId session;  ///< valid for admission/session-end events
  std::int64_t detail = 0;
};

std::ostream& operator<<(std::ostream& os, const TraceEvent& event);

/// Bounded ring buffer of trace events. When full, the oldest events are
/// overwritten; `dropped()` reports how many.
class TraceLog {
 public:
  explicit TraceLog(std::size_t capacity);

  void record(TraceEvent event);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const;

  /// Events in chronological order (oldest retained first).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Chronological journey of a single peer.
  [[nodiscard]] std::vector<TraceEvent> journey(core::PeerId peer) const;

  /// Count of retained events of a given kind.
  [[nodiscard]] std::size_t count(TraceKind kind) const;

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;
  bool wrapped_ = false;
  std::uint64_t recorded_ = 0;
};

}  // namespace p2ps::engine
