// Results of one simulation run: the series and aggregates behind every
// figure/table in the paper's Section 5.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/peer_class.hpp"
#include "metrics/collector.hpp"

namespace p2ps::engine {

struct SimulationResult {
  core::PeerClass num_classes = 4;

  /// Hourly snapshots (capacity amplification, admission rate, delays…).
  std::vector<metrics::HourlySample> hourly;
  /// Figure-7 samples (every 3 h by default).
  std::vector<metrics::FavoredSample> favored;

  /// End-of-run cumulative counters, per class (index = class - 1).
  std::vector<metrics::ClassCounters> totals;
  /// End-of-run cumulative counters summed over classes.
  metrics::ClassCounters overall;

  std::int64_t final_capacity = 0;
  /// Capacity if every peer became a supplier (the paper's 95% yardstick).
  std::int64_t max_capacity = 0;
  std::int64_t suppliers_at_end = 0;
  std::int64_t sessions_completed = 0;
  std::int64_t sessions_active_at_end = 0;
  /// Suppliers that permanently left (only nonzero under departure churn).
  std::int64_t suppliers_departed = 0;
  /// Supplier-side watchdog self-recoveries after a lost EndSession (only
  /// nonzero in the message-level engine under loss).
  std::int64_t watchdog_recoveries = 0;
  std::uint64_t events_executed = 0;
  /// Largest simultaneous pending-event count (sim::Simulator
  /// peak_pending_count()). With lazy arrival sources this is
  /// O(active sessions + timers), not O(population).
  std::int64_t peak_event_list = 0;
  /// Timer-tagged share of the pending population at the peak instant
  /// (TimerService events) — what the wheel/lazy timer strategies
  /// collapse. The remainder is the protocol's own event traffic.
  std::int64_t peak_event_list_timers = 0;
  /// Process-wide peak resident set (getrusage ru_maxrss) read when the
  /// run finished; 0 when not captured. A process-level, run-varying
  /// measurement — scenarios emit it only behind --mechanics, and
  /// strip_event_mechanics() zeroes it for parity comparisons.
  std::int64_t peak_rss_bytes = 0;

  /// Chord routing statistics (populated when lookup == kChord).
  std::uint64_t lookup_routed = 0;
  double lookup_mean_hops = 0.0;

  /// Capacity at (or just before) simulated time `t`, from the hourly
  /// samples. Requires at least one sample at or before `t`.
  [[nodiscard]] std::int64_t capacity_at(util::SimTime t) const;

  /// The hourly sample taken at (or latest before) `t`.
  [[nodiscard]] const metrics::HourlySample& sample_at(util::SimTime t) const;
};

/// Human-readable one-run summary (used by examples and smoke benches).
void print_summary(std::ostream& os, const SimulationResult& result);

/// Process-wide peak resident set size in bytes (getrusage ru_maxrss),
/// or 0 where the platform does not report it. Monotone over the process
/// lifetime — a memory high-water mark, not an instantaneous reading.
[[nodiscard]] std::int64_t process_peak_rss_bytes();

}  // namespace p2ps::engine
