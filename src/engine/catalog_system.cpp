#include "engine/catalog_system.hpp"

#include <algorithm>

#include "core/ots.hpp"
#include "core/selection.hpp"
#include "core/selection_policy.hpp"
#include "engine/arrival_source.hpp"
#include "engine/telemetry_probe.hpp"
#include "util/assert.hpp"
#include "workload/arrival_pattern.hpp"

namespace p2ps::engine {

CatalogStreamingSystem::CatalogStreamingSystem(CatalogConfig config)
    : config_(std::move(config)),
      timers_(simulator_, config_.timers),
      metrics_(config_.protocol.num_classes),
      popularity_(static_cast<std::size_t>(std::max<std::int64_t>(1, config_.files)),
                  config_.zipf_skew) {
  workload::validate(config_.population);
  P2PS_REQUIRE(config_.population.num_classes == config_.protocol.num_classes);
  P2PS_REQUIRE(config_.files >= 1);
  P2PS_REQUIRE(config_.zipf_skew >= 0.0);
  P2PS_REQUIRE(config_.protocol.m_candidates > 0);
  P2PS_REQUIRE(config_.arrival_window > util::SimTime::zero());
  P2PS_REQUIRE(config_.horizon >= config_.arrival_window);
  P2PS_REQUIRE(config_.session_duration > util::SimTime::zero());
  P2PS_REQUIRE_MSG(config_.selection_policy != nullptr,
                   "CatalogConfig.selection_policy must not be null");
  if (config_.telemetry != nullptr) {
    metrics_.bind_telemetry(config_.telemetry->registry());
  }

  directories_.resize(static_cast<std::size_t>(config_.files));
  file_bandwidth_.assign(static_cast<std::size_t>(config_.files),
                         core::Bandwidth::zero());
  file_requests_.assign(static_cast<std::size_t>(config_.files), 0);
  file_admissions_.assign(static_cast<std::size_t>(config_.files), 0);
  file_suppliers_.assign(static_cast<std::size_t>(config_.files), 0);

  util::Rng master(config_.seed);
  lookup_rng_ = master.substream("lookup");
  selection_rng_ = master.substream("selection");
  util::Rng population_rng = master.substream("population");
  util::Rng file_rng = master.substream("files");

  const auto requester_classes =
      workload::build_requester_classes(config_.population, population_rng);
  const std::int64_t total_seeds = config_.population.seeds * config_.files;
  peers_.resize(static_cast<std::size_t>(total_seeds) + requester_classes.size());
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    Peer& p = peers_[i];
    p.id = core::PeerId{i};
    p.grant_rng = master.substream("grant", i);
    if (i < static_cast<std::size_t>(total_seeds)) {
      p.cls = config_.population.seed_class;
      p.file = static_cast<std::int64_t>(i) % config_.files;  // spread seeds
    } else {
      p.cls = requester_classes[i - static_cast<std::size_t>(total_seeds)];
      p.file = static_cast<std::int64_t>(popularity_.sample(file_rng));
      p.backoff.emplace(config_.protocol.t_bkf, config_.protocol.e_bkf);
    }
  }
}

CatalogStreamingSystem::Peer& CatalogStreamingSystem::peer(core::PeerId id) {
  P2PS_REQUIRE(id.valid() && id.value() < peers_.size());
  return peers_[static_cast<std::size_t>(id.value())];
}

const CatalogStreamingSystem::Peer& CatalogStreamingSystem::peer(
    core::PeerId id) const {
  P2PS_REQUIRE(id.valid() && id.value() < peers_.size());
  return peers_[static_cast<std::size_t>(id.value())];
}

std::int64_t CatalogStreamingSystem::capacity_of_file(std::int64_t file) const {
  P2PS_REQUIRE(file >= 0 && file < config_.files);
  return core::capacity(file_bandwidth_[static_cast<std::size_t>(file)]);
}

void CatalogStreamingSystem::make_supplier(Peer& p) {
  P2PS_CHECK(!p.is_supplier);
  P2PS_CHECK(p.file >= 0 && p.file < config_.files);
  p.is_supplier = true;
  p.supplier.emplace(config_.protocol.num_classes, p.cls,
                     config_.protocol.differentiated);
  const auto file = static_cast<std::size_t>(p.file);
  directories_[file].register_supplier(p.id, p.cls);
  file_bandwidth_[file] += core::Bandwidth::class_offer(p.cls);
  ++file_suppliers_[file];
  ++suppliers_;
  arm_idle_timer(p);
}

void CatalogStreamingSystem::arm_idle_timer(Peer& p) {
  arm_idle_timer_at(p, simulator_.now() + config_.protocol.t_out);
}

void CatalogStreamingSystem::arm_idle_timer_at(Peer& p, util::SimTime deadline) {
  if (!config_.protocol.differentiated || p.supplier->vector().fully_relaxed()) {
    disarm_idle_timer(p);
    return;
  }
  if (timers_.rearm_at(p.idle_timer, deadline)) return;
  const core::PeerId id = p.id;
  p.idle_timer = timers_.arm_at(
      deadline, [this, id](util::SimTime at) { on_idle_timeout(id, at); });
}

void CatalogStreamingSystem::disarm_idle_timer(Peer& p) {
  if (p.idle_timer.valid()) {
    timers_.cancel(p.idle_timer);
    p.idle_timer = sim::TimerId::invalid();
  }
}

void CatalogStreamingSystem::on_idle_timeout(core::PeerId id, util::SimTime at) {
  Peer& p = peer(id);
  p.idle_timer = sim::TimerId::invalid();
  p.supplier->on_idle_timeout();
  arm_idle_timer_at(p, at + config_.protocol.t_out);  // deadline-anchored chain
}

void CatalogStreamingSystem::first_request(core::PeerId id) {
  timers_.poll();  // deadline-check-on-entry: see docs/timers.md
  Peer& p = peer(id);
  p.first_request_time = simulator_.now();
  metrics_.on_first_request(p.cls);
  ++file_requests_[static_cast<std::size_t>(p.file)];
  attempt_admission(id);
}

void CatalogStreamingSystem::attempt_admission(core::PeerId id) {
  timers_.poll();  // fire due elevations before probing supplier vectors
  Peer& p = peer(id);
  metrics_.on_attempt(p.cls);
  auto& directory = directories_[static_cast<std::size_t>(p.file)];
  std::vector<lookup::CandidateInfo>& candidates = scratch_candidates_;
  directory.candidates_into(candidates, config_.protocol.m_candidates, lookup_rng_,
                            p.id);

  std::vector<lookup::CandidateInfo>& granted = scratch_granted_;
  std::vector<core::PeerClass>& granted_classes = scratch_granted_classes_;
  std::vector<core::BusyCandidate>& busy = scratch_busy_;
  std::vector<core::PeerId>& busy_ids = scratch_busy_ids_;
  granted.clear();
  granted_classes.clear();
  busy.clear();
  busy_ids.clear();
  for (const auto& candidate : candidates) {
    Peer& s = peer(candidate.id);
    const core::ProbeOutcome outcome = s.supplier->handle_probe(p.cls, s.grant_rng);
    switch (outcome.reply) {
      case core::ProbeReply::kGranted:
        granted.push_back(candidate);
        granted_classes.push_back(candidate.cls);
        break;
      case core::ProbeReply::kBusy:
        busy.push_back(core::BusyCandidate{busy_ids.size(), candidate.cls,
                                           outcome.favors_requester});
        busy_ids.push_back(candidate.id);
        break;
      case core::ProbeReply::kDenied:
        break;
    }
  }

  core::SelectionResult& selection = scratch_selection_;
  core::SelectionContext selection_context;
  selection_context.requester_class = p.cls;
  selection_context.rng = &selection_rng_;
  config_.selection_policy->select_into(selection, granted_classes,
                                        core::Bandwidth::playback_rate(),
                                        selection_context);
  if (selection.success()) {
    ActiveSession session;
    session.id = core::SessionId{next_session_++};
    session.requester = p.id;
    std::vector<core::PeerClass>& session_classes = scratch_session_classes_;
    session_classes.clear();
    session.suppliers.reserve(selection.chosen.size());
    for (std::size_t pick : selection.chosen) {
      Peer& s = peer(granted[pick].id);
      disarm_idle_timer(s);
      s.supplier->on_session_start();
      session.suppliers.push_back(s.id);
      session_classes.push_back(s.cls);
    }
    const std::int64_t delay_dt =
        core::ots_assignment(session_classes).min_buffering_delay_dt();
    p.admitted = true;
    p.in_service = true;
    metrics_.on_admission(p.cls, p.backoff->rejections(), delay_dt,
                          simulator_.now() - p.first_request_time);
    ++file_admissions_[static_cast<std::size_t>(p.file)];
    const core::SessionId session_id = session.id;
    sessions_.emplace(session_id, std::move(session));
    simulator_.schedule_after(config_.session_duration,
                              [this, session_id] { end_session(session_id); });
    return;
  }

  metrics_.on_rejection(p.cls);
  if (config_.protocol.differentiated && config_.protocol.reminders_enabled) {
    for (std::size_t index : core::reminder_set(busy, selection.shortfall)) {
      peer(busy_ids[index]).supplier->leave_reminder(p.cls);
    }
  }
  const util::SimTime backoff = p.backoff->on_rejected();
  const core::PeerId peer_id = p.id;
  simulator_.schedule_after(backoff, [this, peer_id] { attempt_admission(peer_id); });
}

void CatalogStreamingSystem::end_session(core::SessionId id) {
  timers_.poll();
  const auto it = sessions_.find(id);
  P2PS_CHECK(it != sessions_.end());
  const ActiveSession session = std::move(it->second);
  sessions_.erase(it);
  for (core::PeerId supplier_id : session.suppliers) {
    Peer& s = peer(supplier_id);
    s.supplier->on_session_end();
    arm_idle_timer(s);
  }
  Peer& requester = peer(session.requester);
  requester.in_service = false;
  make_supplier(requester);
  ++sessions_completed_;
}

void CatalogStreamingSystem::take_sample(util::SimTime t) {
  timers_.poll();
  core::Bandwidth total = core::Bandwidth::zero();
  for (core::Bandwidth bandwidth : file_bandwidth_) total += bandwidth;
  metrics_.hourly_sample(t, core::capacity(total),
                         static_cast<std::int64_t>(sessions_.size()), suppliers_);
  if (config_.validate_invariants) check_invariants();
  if (config_.telemetry != nullptr && config_.telemetry->snapshot_due()) {
    obs::Registry& registry = config_.telemetry->registry();
    publish_event_core(registry, simulator_);
    publish_timer_service(registry, timers_);
    registry.gauge("suppliers")->set(suppliers_);
    registry.gauge("sessions_active")
        ->set(static_cast<std::int64_t>(sessions_.size()));
    registry.gauge("capacity_units")->set(core::capacity(total));
    config_.telemetry->snapshot(t.as_millis());
  }
}

void CatalogStreamingSystem::check_invariants() const {
  std::vector<core::Bandwidth> recount(file_bandwidth_.size(), core::Bandwidth::zero());
  std::int64_t supplier_recount = 0;
  for (const Peer& p : peers_) {
    if (!p.is_supplier) continue;
    recount[static_cast<std::size_t>(p.file)] += core::Bandwidth::class_offer(p.cls);
    ++supplier_recount;
  }
  P2PS_CHECK_MSG(supplier_recount == suppliers_, "supplier count drifted");
  for (std::size_t f = 0; f < recount.size(); ++f) {
    P2PS_CHECK_MSG(recount[f] == file_bandwidth_[f], "per-file ledger drifted");
    P2PS_CHECK_MSG(static_cast<std::size_t>(file_suppliers_[f]) ==
                       directories_[f].supplier_count(),
                   "per-file directory out of sync");
  }
  for (const auto& [sid, session] : sessions_) {
    const std::int64_t file = peer(session.requester).file;
    core::Bandwidth sum = core::Bandwidth::zero();
    for (core::PeerId supplier_id : session.suppliers) {
      const Peer& s = peer(supplier_id);
      P2PS_CHECK_MSG(s.file == file, "session crosses files");
      P2PS_CHECK_MSG(s.supplier->busy(), "session supplier not busy");
      sum += core::Bandwidth::class_offer(s.cls);
    }
    P2PS_CHECK_MSG(sum == core::Bandwidth::playback_rate(), "session != R0");
  }
}

CatalogResult CatalogStreamingSystem::run() {
  P2PS_REQUIRE_MSG(!ran_, "run() may be called only once");
  ran_ = true;

  const std::int64_t total_seeds = config_.population.seeds * config_.files;
  for (std::int64_t i = 0; i < total_seeds; ++i) {
    make_supplier(peers_[static_cast<std::size_t>(i)]);
  }

  // Lazy arrivals: one in-flight event walks the schedule (see
  // engine/arrival_source.hpp for the ordering argument).
  auto schedule = workload::ArrivalSchedule::make(
      config_.pattern, config_.population.requesters, config_.arrival_window);
  ArrivalSource arrivals(simulator_, std::move(schedule),
                         [this, total_seeds](std::int64_t index) {
                           first_request(core::PeerId{static_cast<std::uint64_t>(
                               total_seeds + index)});
                         });
  arrivals.start();

  take_sample(util::SimTime::zero());
  sim::Periodic sampler(simulator_, config_.sample_interval, config_.sample_interval,
                        [this](util::SimTime t) { take_sample(t); });
  simulator_.run_until(config_.horizon);
  sampler.stop();
  timers_.poll();  // fire stragglers due by the horizon (lazy strategies)
  if (config_.validate_invariants) check_invariants();

  CatalogResult result;
  result.overall.num_classes = config_.protocol.num_classes;
  result.overall.hourly = metrics_.hourly();
  for (core::PeerClass c = 1; c <= config_.protocol.num_classes; ++c) {
    result.overall.totals.push_back(metrics_.totals(c));
  }
  result.overall.overall = metrics_.overall();
  core::Bandwidth total = core::Bandwidth::zero();
  for (core::Bandwidth bandwidth : file_bandwidth_) total += bandwidth;
  result.overall.final_capacity = core::capacity(total);
  core::Bandwidth everyone = core::Bandwidth::zero();
  for (const Peer& p : peers_) everyone += core::Bandwidth::class_offer(p.cls);
  result.overall.max_capacity = core::capacity(everyone);
  result.overall.suppliers_at_end = suppliers_;
  result.overall.sessions_completed = sessions_completed_;
  result.overall.sessions_active_at_end = static_cast<std::int64_t>(sessions_.size());
  result.overall.events_executed = simulator_.executed_count();
  result.overall.peak_event_list =
      static_cast<std::int64_t>(simulator_.peak_pending_count());
  result.overall.peak_event_list_timers =
      static_cast<std::int64_t>(simulator_.peak_pending_timers());

  result.per_file.reserve(static_cast<std::size_t>(config_.files));
  for (std::int64_t f = 0; f < config_.files; ++f) {
    const auto index = static_cast<std::size_t>(f);
    result.per_file.push_back(FileStats{f, file_requests_[index],
                                        file_admissions_[index],
                                        file_suppliers_[index],
                                        capacity_of_file(f)});
  }
  return result;
}

}  // namespace p2ps::engine
