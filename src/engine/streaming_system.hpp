// The peer-to-peer media streaming system simulator (paper Section 5).
//
// Session-level engine with the exact event semantics of the paper's
// evaluation: first-time request arrivals, instantaneous probe exchanges,
// streaming sessions that occupy their suppliers for the show time T,
// requesters turning into suppliers when their session completes, idle
// elevation timers and reminders. The protocol state machines themselves
// live in src/core; this class wires them to the event queue, the lookup
// service, the workload and the metrics.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/admission/requester.hpp"
#include "core/admission/supplier.hpp"
#include "core/bandwidth.hpp"
#include "core/ids.hpp"
#include "core/selection.hpp"
#include "engine/config.hpp"
#include "engine/result.hpp"
#include "engine/retry_source.hpp"
#include "engine/trace.hpp"
#include "lookup/lookup_service.hpp"
#include "metrics/collector.hpp"
#include "sim/simulator.hpp"
#include "sim/timer_service.hpp"
#include "util/rng.hpp"

namespace p2ps::engine {

class StreamingSystem {
 public:
  explicit StreamingSystem(SimulationConfig config);

  /// Runs the full simulation to the horizon and returns the collected
  /// series and aggregates. May be called once.
  SimulationResult run();

  // ---- inspection (tests, examples) ----
  [[nodiscard]] const SimulationConfig& config() const { return config_; }
  [[nodiscard]] std::int64_t capacity() const;
  [[nodiscard]] std::int64_t supplier_count() const;
  [[nodiscard]] std::int64_t active_sessions() const {
    return static_cast<std::int64_t>(sessions_.size());
  }
  [[nodiscard]] const lookup::LookupService& lookup_service() const { return *lookup_; }
  [[nodiscard]] const metrics::MetricsCollector& metrics() const { return metrics_; }

  /// Supplier-side protocol state of a peer (nullopt when not a supplier).
  [[nodiscard]] const core::SupplierAdmission* supplier_state(core::PeerId id) const;

  /// Protocol trace (nullptr unless config.trace_capacity > 0).
  [[nodiscard]] const TraceLog* trace() const { return trace_.get(); }

 private:
  struct Peer {
    core::PeerId id;
    core::PeerClass cls = core::kHighestClass;
    bool is_supplier = false;
    bool admitted = false;
    bool in_service = false;  ///< currently being streamed to
    bool departed = false;    ///< left the system permanently (churn)
    util::SimTime first_request_time = util::SimTime::zero();
    std::optional<core::SupplierAdmission> supplier;
    std::optional<core::RequesterBackoff> backoff;
    sim::TimerId idle_timer = sim::TimerId::invalid();
    util::Rng grant_rng{0};  ///< supplier-side probabilistic admission tests
  };

  struct ActiveSession {
    core::SessionId id;
    core::PeerId requester;
    std::vector<core::PeerId> suppliers;
  };

  [[nodiscard]] Peer& peer(core::PeerId id);
  [[nodiscard]] const Peer& peer(core::PeerId id) const;

  /// Turns `p` into a registered supplying peer (seed start-up or session
  /// completion) and updates the capacity ledger.
  void make_supplier(Peer& p);

  /// Permanent departure (churn): deregisters `p` and returns its pledged
  /// bandwidth to nowhere — the capacity ledger shrinks.
  void depart_supplier(Peer& p);

  /// (Re)arms the idle elevation timer when the protocol needs one.
  /// The _at form anchors the deadline explicitly — timer callbacks use it
  /// to chain from their own deadline rather than the clock.
  void arm_idle_timer(Peer& p);
  void arm_idle_timer_at(Peer& p, util::SimTime deadline);
  void disarm_idle_timer(Peer& p);
  /// `at` is the timer's deadline — the logical firing time, which the lazy
  /// timer strategies may deliver after the clock has moved on.
  void on_idle_timeout(core::PeerId id, util::SimTime at);

  void first_request(core::PeerId id);
  void attempt_admission(core::PeerId id);
  void end_session(core::SessionId id);

  /// Applies a supplier-state mutation on `p` while keeping the incremental
  /// Figure-7 aggregates (favored_sum_) in sync with the vector change.
  template <typename Mutation>
  void mutate_supplier(Peer& p, Mutation&& mutation);

  void take_sample(util::SimTime t);
  void take_favored_sample(util::SimTime t);
  void check_invariants() const;

  /// Records a trace event when tracing is enabled, at the current clock
  /// or (for timer firings) at an explicit timestamp — a lazily delivered
  /// firing must leave the same record as an on-time one.
  void trace_event(TraceKind kind, const Peer& p,
                   core::SessionId session = core::SessionId::invalid(),
                   std::int64_t detail = 0);
  void trace_event_at(util::SimTime t, TraceKind kind, const Peer& p,
                      core::SessionId session = core::SessionId::invalid(),
                      std::int64_t detail = 0);

  SimulationConfig config_;
  sim::Simulator simulator_;
  /// Idle elevation timers for every registered supplier, behind the
  /// strategy picked by config.timers (event-per-timer, wheel, or lazy
  /// deadline checks). Every event handler polls it on entry, which is
  /// what keeps the strategies byte-interchangeable (docs/timers.md).
  sim::TimerService timers_;
  /// Backoff retries of waiting peers, exposed to the simulator as one
  /// in-flight event (keeps the event list O(active sessions + timers)
  /// instead of O(waiting population); see engine/retry_source.hpp).
  RetrySource retries_;
  std::unique_ptr<lookup::LookupService> lookup_;
  std::unique_ptr<TraceLog> trace_;
  metrics::MetricsCollector metrics_;

  util::Rng lookup_rng_{0};
  util::Rng down_rng_{0};
  util::Rng departure_rng_{0};
  /// Dedicated substream for randomized selection policies. Derived like
  /// every other substream (derivation is const on the master), so wiring
  /// it in cannot perturb the existing streams; deterministic policies
  /// never draw from it.
  util::Rng selection_rng_{0};

  std::vector<Peer> peers_;
  std::unordered_map<core::SessionId, ActiveSession> sessions_;
  std::uint64_t next_session_ = 0;

  core::Bandwidth supplier_bandwidth_ = core::Bandwidth::zero();
  std::int64_t suppliers_ = 0;
  std::int64_t sessions_completed_ = 0;
  std::int64_t departures_ = 0;
  bool ran_ = false;

  // Incremental Figure-7 aggregates, indexed by class - 1:
  // favored_sum_[c] = Σ lowest_favored_class() over class-(c+1) suppliers,
  // class_suppliers_[c] = their count. Updated at every registration,
  // departure and vector mutation, so take_favored_sample is
  // O(num_classes) instead of a scan over every peer. Integer sums keep
  // the derived averages bit-identical to the scan they replaced.
  std::vector<std::int64_t> favored_sum_;
  std::vector<std::int64_t> class_suppliers_;

  // Reused hot-path scratch for attempt_admission (one admission attempt
  // per rejection backoff at paper scale — millions per run). Safe because
  // attempt_admission never re-enters: callbacks are scheduled, not
  // invoked inline.
  std::vector<lookup::CandidateInfo> scratch_candidates_;
  std::vector<lookup::CandidateInfo> scratch_granted_;
  std::vector<core::PeerClass> scratch_granted_classes_;
  std::vector<core::BusyCandidate> scratch_busy_;
  std::vector<core::PeerId> scratch_busy_ids_;
  std::vector<core::PeerClass> scratch_session_classes_;
  std::vector<std::size_t> scratch_omega_;
  core::SelectionResult scratch_selection_;
};

}  // namespace p2ps::engine
