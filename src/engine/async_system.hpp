// Message-level (asynchronous) streaming-system simulator.
//
// The same peer-to-peer community as engine::StreamingSystem, but every
// control exchange travels over net::Transport with latency and optional
// loss: probes, grants (with timeout-guarded holds), commits, releases,
// reminders and session teardowns are all messages, and every peer decision
// is taken locally on message receipt. This is the existence proof that
// DAC_p2p is a *distributed* protocol — no step consults global state.
//
// Fault tolerance under message loss:
//   * unresponsive candidates are written off by the requester's response
//     timeout;
//   * un-committed grants expire via the supplier-side hold timeout;
//   * a lost EndSession is recovered by the supplier's session watchdog.
// Known simplification (documented): StartSession commits are not
// acknowledged, so under loss a requester may count a supplier that never
// committed; the watchdog still frees all state. The session-level engine
// (paper fidelity) has no such races.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/admission/requester.hpp"
#include "core/bandwidth.hpp"
#include "core/ids.hpp"
#include "engine/config.hpp"
#include "engine/result.hpp"
#include "engine/retry_source.hpp"
#include "engine/session_end_calendar.hpp"
#include "lookup/directory.hpp"
#include "metrics/collector.hpp"
#include "net/async_admission.hpp"
#include "net/mailbox.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace p2ps::engine {

struct AsyncSimulationConfig {
  ProtocolParams protocol;
  workload::PopulationConfig population;

  workload::ArrivalPattern pattern = workload::ArrivalPattern::kRampUpDown;
  util::SimTime arrival_window = util::SimTime::hours(12);
  util::SimTime horizon = util::SimTime::hours(24);
  util::SimTime session_duration = util::SimTime::minutes(60);

  /// Mailbox-router delivery: latency model, loss injection and the
  /// batched/unbatched mode (a pure mechanics switch — cannot change
  /// simulation output, see docs/message_batching.md).
  net::MailboxConfig transport;
  /// Requester-side probe-response timeout.
  util::SimTime response_timeout = util::SimTime::seconds(5);
  /// Supplier-side grant-hold timeout (must exceed response_timeout).
  util::SimTime hold_timeout = util::SimTime::seconds(15);

  /// Simulator event-list backend (byte-identical output either way).
  sim::EventListKind event_list = sim::EventListKind::kBinaryHeap;

  /// Timer strategy for the endpoint timeouts (grant holds, idle
  /// elevation, session watchdogs) — the population that dominated the
  /// peak event list before the TimerService. Byte-identical output
  /// across strategies (docs/timers.md).
  sim::TimerConfig timers;

  std::uint64_t seed = 42;
  util::SimTime sample_interval = util::SimTime::hours(1);

  /// Supplier-selection policy (core registry pointer; never null).
  const core::SelectionPolicy* selection_policy = &core::paper_dac_policy();

  /// Borrowed runtime telemetry sink (null = off); out-of-band by the
  /// same contract as SimulationConfig::telemetry.
  obs::Telemetry* telemetry = nullptr;
};

class AsyncStreamingSystem {
 public:
  explicit AsyncStreamingSystem(AsyncSimulationConfig config);

  /// Runs to the horizon; may be called once.
  SimulationResult run();

  [[nodiscard]] const AsyncSimulationConfig& config() const { return config_; }
  [[nodiscard]] std::int64_t capacity() const;
  [[nodiscard]] std::int64_t supplier_count() const { return suppliers_; }
  [[nodiscard]] const net::MessageTransport& transport() const { return transport_; }
  [[nodiscard]] const sim::TimerService& timer_service() const { return timers_; }
  [[nodiscard]] const metrics::MetricsCollector& metrics() const { return metrics_; }
  /// Suppliers currently serving a session (from endpoint state).
  [[nodiscard]] std::int64_t busy_suppliers() const;

 private:
  struct Peer {
    core::PeerId id;
    core::PeerClass cls = core::kHighestClass;
    std::unique_ptr<net::SupplierEndpoint> endpoint;  ///< set once a supplier
    std::optional<core::RequesterBackoff> backoff;
    bool admitted = false;
    util::SimTime first_request_time = util::SimTime::zero();
  };

  [[nodiscard]] Peer& peer(core::PeerId id);

  void make_supplier(Peer& p);
  void first_request(core::PeerId id);
  void start_attempt(core::PeerId id);
  void on_attempt_done(core::PeerId id, const net::AsyncAdmissionAttempt::Result& r);
  void retire_attempt(core::PeerId id);
  void finish_session(core::PeerId requester_id,
                      std::vector<lookup::CandidateInfo> suppliers,
                      core::SessionId session);
  void take_sample(util::SimTime t);

  AsyncSimulationConfig config_;
  sim::Simulator simulator_;
  /// Endpoint timeout population. Declared before the peers (and their
  /// endpoints) so it outlives every handle cancelled in their
  /// destructors.
  sim::TimerService timers_;
  net::MessageTransport transport_;
  lookup::DirectoryService directory_;
  metrics::MetricsCollector metrics_;

  util::Rng lookup_rng_{0};
  util::Rng endpoint_seed_rng_{0};
  /// Substream for randomized selection policies (unused by paper-dac).
  util::Rng selection_rng_{0};

  std::vector<Peer> peers_;
  /// In-flight admission attempts, dense by peer index (one per requester
  /// at most — no hashing on the conclusion path).
  std::vector<std::unique_ptr<net::AsyncAdmissionAttempt>> attempts_;
  /// Pooled retirement list: an attempt's completion callback runs with
  /// the attempt still on the call stack, so concluded attempts are parked
  /// here and destroyed by ONE drain event per tick — replacing the old
  /// one-zero-delay-event-per-attempt teardown (ROADMAP open item).
  std::vector<core::PeerId> retired_;
  sim::EventId retire_event_ = sim::EventId::invalid();
  /// Lazy backoff retries: one in-flight event for the whole waiting
  /// population (the session-level engine's RetrySource trick).
  RetrySource retries_;
  /// One pending finish for every admitted session (constant duration =>
  /// monotone end ticks => FIFO calendar): the session-end population that
  /// used to cost one event per active session costs one event total
  /// (engine/session_end_calendar.hpp).
  struct SessionEnd {
    core::PeerId requester;
    core::SessionId session;
    std::vector<lookup::CandidateInfo> suppliers;
  };
  SessionEndCalendar<SessionEnd> session_ends_;
  std::uint64_t next_session_ = 0;
  /// Shared selection buffer handed to every attempt (conclude() never
  /// re-enters, so one buffer serves all in-flight attempts).
  core::SelectionResult scratch_selection_;
  core::Bandwidth supplier_bandwidth_ = core::Bandwidth::zero();
  std::int64_t suppliers_ = 0;
  std::int64_t sessions_completed_ = 0;
  std::int64_t sessions_active_ = 0;
  bool ran_ = false;
};

}  // namespace p2ps::engine
