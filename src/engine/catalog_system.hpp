// Multi-file catalog extension of the streaming system.
//
// The paper's evaluation serves a single popular video; this engine serves
// a library of F media files with Zipf-distributed request popularity — the
// natural generalization the introduction's "media streaming system"
// implies. Every DAC_p2p mechanism is unchanged and *per peer* (one
// admission-probability vector, one busy slot), while supply is per file:
// a peer can only serve files it owns, and a served requester becomes a
// supplier of the file it just watched. The lookup layer keeps one
// directory per file (exactly how per-file swarms work in deployed P2P
// systems).
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/admission/requester.hpp"
#include "core/admission/supplier.hpp"
#include "core/bandwidth.hpp"
#include "core/ids.hpp"
#include "core/selection.hpp"
#include "engine/config.hpp"
#include "engine/result.hpp"
#include "lookup/directory.hpp"
#include "metrics/collector.hpp"
#include "sim/simulator.hpp"
#include "sim/timer_service.hpp"
#include "util/rng.hpp"
#include "workload/zipf.hpp"

namespace p2ps::engine {

struct CatalogConfig {
  ProtocolParams protocol;
  workload::PopulationConfig population;  ///< seeds = seeds *per file*

  /// Catalog size and popularity skew (Zipf exponent; 0 = uniform).
  std::int64_t files = 10;
  double zipf_skew = 0.8;

  workload::ArrivalPattern pattern = workload::ArrivalPattern::kRampUpDown;
  util::SimTime arrival_window = util::SimTime::hours(24);
  util::SimTime horizon = util::SimTime::hours(48);
  util::SimTime session_duration = util::SimTime::minutes(60);

  std::uint64_t seed = 42;
  util::SimTime sample_interval = util::SimTime::hours(1);
  bool validate_invariants = true;

  /// Supplier-selection policy (core registry pointer; never null).
  const core::SelectionPolicy* selection_policy = &core::paper_dac_policy();

  /// Timer strategy for the per-peer idle elevation timers (pure
  /// mechanics; byte-identical output across strategies, docs/timers.md).
  sim::TimerConfig timers;

  /// Borrowed runtime telemetry sink (null = off); out-of-band by the
  /// same contract as SimulationConfig::telemetry.
  obs::Telemetry* telemetry = nullptr;
};

/// Per-file end-of-run summary.
struct FileStats {
  std::int64_t file = 0;
  std::int64_t requests = 0;     ///< first-time requests targeting this file
  std::int64_t admissions = 0;
  std::int64_t suppliers = 0;    ///< owners registered at the end
  std::int64_t capacity = 0;     ///< per-file streaming capacity at the end
};

struct CatalogResult {
  SimulationResult overall;
  std::vector<FileStats> per_file;  ///< indexed by file id (popularity rank)
};

class CatalogStreamingSystem {
 public:
  explicit CatalogStreamingSystem(CatalogConfig config);

  /// Runs to the horizon; may be called once.
  CatalogResult run();

  [[nodiscard]] const CatalogConfig& config() const { return config_; }
  [[nodiscard]] std::int64_t capacity_of_file(std::int64_t file) const;
  [[nodiscard]] std::int64_t total_suppliers() const { return suppliers_; }

 private:
  struct Peer {
    core::PeerId id;
    core::PeerClass cls = core::kHighestClass;
    std::int64_t file = -1;  ///< owned (supplier) or requested (requester)
    bool is_supplier = false;
    bool admitted = false;
    bool in_service = false;
    util::SimTime first_request_time = util::SimTime::zero();
    std::optional<core::SupplierAdmission> supplier;
    std::optional<core::RequesterBackoff> backoff;
    sim::TimerId idle_timer = sim::TimerId::invalid();
    util::Rng grant_rng{0};
  };

  struct ActiveSession {
    core::SessionId id;
    core::PeerId requester;
    std::vector<core::PeerId> suppliers;
  };

  [[nodiscard]] Peer& peer(core::PeerId id);
  [[nodiscard]] const Peer& peer(core::PeerId id) const;
  void make_supplier(Peer& p);
  void arm_idle_timer(Peer& p);
  void arm_idle_timer_at(Peer& p, util::SimTime deadline);
  void disarm_idle_timer(Peer& p);
  void on_idle_timeout(core::PeerId id, util::SimTime at);
  void first_request(core::PeerId id);
  void attempt_admission(core::PeerId id);
  void end_session(core::SessionId id);
  void take_sample(util::SimTime t);
  void check_invariants() const;

  CatalogConfig config_;
  sim::Simulator simulator_;
  sim::TimerService timers_;
  std::vector<lookup::DirectoryService> directories_;  // one per file
  metrics::MetricsCollector metrics_;
  workload::ZipfDistribution popularity_;

  util::Rng lookup_rng_{0};
  /// Substream for randomized selection policies (unused by paper-dac).
  util::Rng selection_rng_{0};

  std::vector<Peer> peers_;
  std::unordered_map<core::SessionId, ActiveSession> sessions_;
  std::uint64_t next_session_ = 0;

  std::vector<core::Bandwidth> file_bandwidth_;  // per-file supply
  std::vector<std::int64_t> file_requests_;
  std::vector<std::int64_t> file_admissions_;
  std::vector<std::int64_t> file_suppliers_;
  std::int64_t suppliers_ = 0;
  std::int64_t sessions_completed_ = 0;
  bool ran_ = false;

  // Reused attempt_admission scratch (the _into discipline the other
  // engines follow): admission attempts repeat per backoff retry, so the
  // steady state must not allocate. Safe because attempt_admission never
  // re-enters — retries and sessions are scheduled events.
  std::vector<lookup::CandidateInfo> scratch_candidates_;
  std::vector<lookup::CandidateInfo> scratch_granted_;
  std::vector<core::PeerClass> scratch_granted_classes_;
  std::vector<core::BusyCandidate> scratch_busy_;
  std::vector<core::PeerId> scratch_busy_ids_;
  std::vector<core::PeerClass> scratch_session_classes_;
  core::SelectionResult scratch_selection_;
};

}  // namespace p2ps::engine
