// Lazy backoff-retry source — the ArrivalSource trick applied to the
// rejection/backoff stream.
//
// After lazy arrivals, the simulator's event list was still O(waiting
// peers): every rejected requester parked one pending retry event for the
// whole backoff (the dominant term at paper scale — tens of thousands of
// waiting peers mid-ramp). This source keeps the due retries in an
// engine-local min-heap ordered by (due time, insertion seq) and exposes
// them to the simulator through a single in-flight event, so the event
// list carries O(1) entries for the entire waiting population.
//
// Ordering: among retries, (due, seq) reproduces the simulator's own
// (time, FIFO) semantics exactly — seq is assigned at schedule() time just
// as the simulator assigned event seqs at schedule_after() time. Relative
// to *other* same-millisecond events the in-flight event's seq differs
// from the old per-retry seqs (same one-time perturbation as lazy
// arrivals, see docs/lazy_arrivals.md); it is backend-independent, so
// heap/calendar byte-parity is preserved.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "core/ids.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/sim_time.hpp"

namespace p2ps::engine {

class RetrySource {
 public:
  using OnDue = std::function<void(core::PeerId)>;

  /// `on_due(peer)` fires at the peer's retry time. The simulator must
  /// outlive this object.
  RetrySource(sim::Simulator& simulator, OnDue on_due)
      : simulator_(simulator), on_due_(std::move(on_due)) {}

  ~RetrySource() {
    if (in_flight_.valid()) simulator_.cancel(in_flight_);
  }
  RetrySource(const RetrySource&) = delete;
  RetrySource& operator=(const RetrySource&) = delete;

  /// Schedules `peer`'s retry after `delay` (non-negative, from now).
  void schedule(util::SimTime delay, core::PeerId peer) {
    P2PS_REQUIRE(delay >= util::SimTime::zero());
    const Entry entry{simulator_.now() + delay, next_seq_++, peer};
    heap_.push(entry);
    // Only a new earliest entry preempts the in-flight event; otherwise
    // the armed event still fires first and re-arms from the heap.
    if (heap_.top().seq == entry.seq) arm();
  }

  /// Peers currently waiting on a retry.
  [[nodiscard]] std::size_t waiting() const { return heap_.size(); }

 private:
  struct Entry {
    util::SimTime due;
    std::uint64_t seq = 0;  // FIFO tie-break, mirroring simulator seqs
    core::PeerId peer;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  void arm() {
    if (in_flight_.valid()) simulator_.cancel(in_flight_);
    in_flight_ =
        simulator_.schedule_at(heap_.top().due, [this] { fire(); });
  }

  void fire() {
    in_flight_ = sim::EventId::invalid();
    P2PS_CHECK(!heap_.empty());
    const Entry entry = heap_.top();
    heap_.pop();
    // Re-arm before invoking — same-due retries fire back-to-back ahead of
    // whatever the handler schedules at this instant (the ArrivalSource
    // ordering argument).
    if (!heap_.empty()) arm();
    on_due_(entry.peer);
  }

  sim::Simulator& simulator_;
  OnDue on_due_;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  sim::EventId in_flight_ = sim::EventId::invalid();
};

}  // namespace p2ps::engine
