// Sharded conservative-parallel message-level engine.
//
// The road to the ROADMAP's millions-of-peers north star: the peer space
// is partitioned round-robin across N shards, each owning a whole
// sim::Simulator (event list, per-shard lazy sources, per-shard metric
// sums), stepping in lockstep lookahead windows under sim::ShardRunner
// with cross-shard control messages batched through net::ShardRouter.
//
// Determinism bar (the repo's standing invariant, one level up): merged
// output is byte-identical for ANY shard count — including shards=1 — and
// any thread count. docs/sharding.md carries the full argument; the load-
// bearing rules are:
//   * every random draw comes from a per-peer substream
//     (master.substream("peer", id)), never from an execution-order-shared
//     stream;
//   * same-tick deliveries drain in the canonical (to, sent_at, from, seq)
//     order; requester deadlines fire before same-tick deliveries
//     (deadline-check-on-drain), so a grant arriving exactly at the
//     deadline tick is deterministically late;
//   * supplier joins become probe-visible exactly one lookahead window
//     after they happen, through a globally-ordered (visible tick, peer)
//     directory flushed at barriers — so visibility never depends on which
//     shard ran first;
//   * merged statistics are integer sums only (bandwidth units, millisecond
//     sums, counts); every mean/rate is derived once after the merge, so
//     floating-point non-associativity cannot leak shard structure.
//
// Memory layout (the 10M-peer campaign, docs/memory.md): per-peer state is
// a hot/cold structure-of-arrays split. The hot side is five dense
// per-shard arrays — a 64-bit phase word (requester: packed first-request
// tick / attempt epoch / backoff rejections; supplier: held session id), a
// 32-bit aux word (requester: attempt pool slot; supplier: hold-expiry
// tick), a 32-bit send seq, a 32-bit RNG pool slot, and a flags byte —
// 21 bytes/peer. Everything cold (RNG state, attempt replies, chosen
// supplier lists) lives in free-list pools sized by *concurrent activity*,
// not population: per-peer Rng substreams are hydrated lazily on first
// draw (bit-identical by Rng::substream purity) and released once a peer
// can never draw again; chosen-supplier lists ride a FIFO ring because
// session ends complete in admission order. All engine times fit 32-bit
// milliseconds (validate() bounds every schedulable tick below 2^32 ms).
//
// Protocol: a documented message-level subset of DAC_p2p ("DAC-lite") —
// Probe / Grant / Commit / Release / EndSession with silent-busy
// suppliers, single-session holds, lazy hold expiry and lazy session
// watchdogs (deadline-check-on-probe; no TimerService — the sharded engine
// has no timer population at all). Deliberate deviations from the
// AsyncStreamingSystem (class differentiation state machines, reminders,
// idle elevation) are listed in docs/sharding.md; the paper's economics —
// classed offers, exact-cover admission at R0, Theorem-1 buffering delay,
// exponential backoff, capacity self-amplification — are all retained.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/bandwidth.hpp"
#include "core/ids.hpp"
#include "core/selection.hpp"
#include "core/selection_policy.hpp"
#include "engine/config.hpp"
#include "engine/retry_heap.hpp"
#include "engine/session_end_calendar.hpp"
#include "engine/trace.hpp"
#include "net/latency.hpp"
#include "net/shard_router.hpp"
#include "sim/event_list.hpp"
#include "sim/shard_runner.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"
#include "workload/arrival_pattern.hpp"
#include "workload/population.hpp"

namespace p2ps::engine {

struct ShardedConfig {
  ProtocolParams protocol;
  workload::PopulationConfig population;

  workload::ArrivalPattern pattern = workload::ArrivalPattern::kConstant;
  util::SimTime arrival_window = util::SimTime::hours(12);
  util::SimTime horizon = util::SimTime::hours(24);
  util::SimTime session_duration = util::SimTime::minutes(60);

  /// Latency model; its min_latency() is the conservative lookahead (the
  /// shard window width), its max_latency() bounds the timeouts below.
  net::LatencyModel latency;
  /// Per-message drop probability (sender-side draw).
  double loss = 0.0;

  /// Requester-side probe-response timeout. Must exceed max_latency() so a
  /// deadline can never fire while an on-time reply is still in flight.
  util::SimTime response_timeout = util::SimTime::seconds(5);
  /// Supplier-side grant-hold timeout. Must cover response_timeout plus a
  /// grant+commit round trip, so an accepted commit can never race its own
  /// grant's expiry.
  util::SimTime hold_timeout = util::SimTime::seconds(15);

  /// Peer shards (>= 1). Output is byte-identical for every value.
  int shards = 1;
  /// Worker threads (clamped to [1, shards]); wall-clock only.
  int threads = 1;
  /// Window-fusion factor (>= 1): up to this many unit lookahead windows
  /// execute per runner dispatch (sim/shard_runner.hpp). Byte-invisible
  /// like shards/threads — the executed sub-window sequence is identical
  /// for every value; only mechanics counters and wall-clock change. 32
  /// is the measured sweet spot on perf_sharded_scale: higher factors
  /// accumulate enough undelivered cross-shard traffic between exchanges
  /// to spill the cache and give the barrier savings back.
  int fusion = 32;

  sim::EventListKind event_list = sim::EventListKind::kBinaryHeap;
  std::uint64_t seed = 2002;
  util::SimTime sample_interval = util::SimTime::hours(1);
  const core::SelectionPolicy* selection_policy = &core::paper_dac_policy();

  /// Retain the last N protocol trace events PER SHARD (0 disables). The
  /// per-shard rings merge into ShardedResult::trace in the canonical
  /// (time, peer) order on finish. Never part of scenario payloads.
  std::size_t trace_capacity = 0;

  /// Borrowed runtime telemetry sink (null = off). Out-of-band: the
  /// engine publishes per-shard registry lanes and polls for snapshots
  /// only at window barriers (coordinator-side), so the merged payload is
  /// byte-identical with or without it (docs/observability.md).
  obs::Telemetry* telemetry = nullptr;

  void validate() const;
};

/// Per-class end-of-run sums. Integer-only by design: shard totals merge
/// by field-wise addition, and every derived mean/rate is computed once
/// from the merged sums (see file header).
struct ShardedClassTotals {
  std::int64_t first_requests = 0;
  std::int64_t attempts = 0;
  std::int64_t admissions = 0;
  std::int64_t rejections = 0;
  /// Over admissions: Theorem-1 buffering delay, total backoff rejections
  /// endured, and arrival->admission waiting time.
  std::int64_t delay_dt_sum = 0;
  std::int64_t rejections_at_admission_sum = 0;
  std::int64_t waiting_ms_sum = 0;

  ShardedClassTotals& operator+=(const ShardedClassTotals& other);
};

/// One merged hourly snapshot. Capacity is carried as exact bandwidth
/// units and floored to whole-stream capacity only in the report.
struct ShardedSample {
  util::SimTime t;
  std::int64_t capacity_units = 0;
  std::int64_t active_sessions = 0;
  std::int64_t suppliers = 0;
};

/// Per-shard event-core mechanics (run-shape diagnostics, not workload
/// results — scenario payloads emit these only behind --mechanics).
struct ShardMechanics {
  std::uint64_t events_executed = 0;
  std::int64_t peak_event_list = 0;
  std::uint64_t messages_sent = 0;
};

struct ShardedResult {
  core::PeerClass num_classes = 4;
  std::vector<ShardedClassTotals> totals;  ///< per class (index = class-1)
  ShardedClassTotals overall;
  std::vector<ShardedSample> hourly;

  std::int64_t final_capacity = 0;
  std::int64_t max_capacity = 0;
  std::int64_t suppliers_at_end = 0;
  std::int64_t sessions_completed = 0;
  std::int64_t sessions_active_at_end = 0;
  std::int64_t hold_expirations = 0;
  std::int64_t watchdog_recoveries = 0;

  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;

  /// Partition-dependent diagnostics (mechanics-only in payloads).
  std::uint64_t cross_shard_messages = 0;
  std::int64_t windows = 0;               ///< runner dispatches
  std::int64_t windows_fused = 0;         ///< sub-windows absorbed by fusion
  std::int64_t windows_idle_skipped = 0;
  /// Mean simulated span per unit sub-window, ms (idle skips included).
  double lookahead_avg_ms = 0.0;
  /// Directory slow-path publications (the O(1) nothing-due fast path
  /// covers every other window — see Directory::flushes()).
  std::uint64_t directory_flushes = 0;
  std::vector<ShardMechanics> per_shard;
  std::int64_t peak_rss_bytes = 0;
  /// Cold-state pool traffic (engine RNG/attempt pools + router batch
  /// pool): slots constructed fresh vs recycled off a free list. A healthy
  /// steady state reuses far more than it allocates.
  std::uint64_t pool_allocations = 0;
  std::uint64_t pool_reuses = 0;

  /// Merged per-shard trace rings in canonical (time, peer) order; empty
  /// unless ShardedConfig::trace_capacity > 0 (engine/trace.hpp). With
  /// ample capacity the merged journey set is identical for every shard
  /// count; when rings overflow, retention is per-shard (docs note).
  std::vector<TraceEvent> trace;
  std::uint64_t trace_recorded = 0;
  std::uint64_t trace_dropped = 0;
};

class ShardedSystem {
 public:
  explicit ShardedSystem(ShardedConfig config);
  ~ShardedSystem();
  ShardedSystem(const ShardedSystem&) = delete;
  ShardedSystem& operator=(const ShardedSystem&) = delete;

  /// Runs to the horizon; may be called once.
  ShardedResult run();

  [[nodiscard]] const ShardedConfig& config() const { return config_; }

 private:
  /// Cross-shard control message. One byte of kind, the sender's class
  /// where the receiver needs it (Probe: requester class for the latency
  /// model; Grant: supplier class for selection), and the session id.
  enum class MsgKind : std::uint8_t { kProbe, kGrant, kCommit, kRelease, kEnd };
  struct Msg {
    MsgKind kind = MsgKind::kProbe;
    core::PeerClass cls = 0;
    std::uint64_t session = 0;
  };
  using Router = net::ShardRouter<Msg>;
  using Envelope = Router::Envelope;

  enum class SupplierStatus : std::uint8_t { kNone, kFree, kHeld, kCommitted };

  // ---- hot per-peer state: five parallel arrays inside each Shard ----
  //
  // word (u64) — phase-dependent union:
  //   requester phase:  [31:0]  first-request tick (ms)
  //                     [51:32] attempt epoch (the session-id low bits and
  //                             the staleness check for parked deadlines)
  //                     [63:52] backoff rejection count (the whole
  //                             RequesterBackoff: delays are re-derived
  //                             from the count via core::scaled_backoff)
  //   supplier phase:   the held session id (peer id << 20 | epoch)
  // aux (u32) — requester: attempt pool slot or kNoAttempt;
  //             supplier: hold/watchdog expiry tick (ms).
  // send_seq (u32) — per-sender envelope counter (always live).
  // rng_slot (u32) — tagged: bit 31 clear = live RNG pool slot index;
  //             bit 31 set = demoted, low 31 bits hold the stream's raw
  //             draw count so far (kRngNever = demoted with 0 draws is
  //             the initial state). Demotion replaces 32 resident bytes
  //             of xoshiro state with a number: rehydration re-derives
  //             the substream and fast-forwards by the count, which is
  //             bit-identical replay (util::Rng::draws, docs/memory.md).
  // flags (u8) — [1:0] SupplierStatus, [2] admitted.
  //
  // Phase ownership: word/aux belong to the requester machinery until
  // make_supplier() (the peer's requester life is over — every stat that
  // reads the packed fields was taken at admission), then to the supplier
  // machinery. Handlers for late/stale messages check the phase (flags)
  // before touching either field, so a stale grant can never misread a
  // hold expiry as an attempt slot.
  static constexpr std::size_t kHotBytesPerPeer =
      sizeof(std::uint64_t) +      // word
      3 * sizeof(std::uint32_t) +  // aux, send_seq, rng_slot
      sizeof(std::uint8_t);        // flags
  static_assert(kHotBytesPerPeer <= 24,
                "hot per-peer state must stay within the memory-campaign "
                "budget (docs/memory.md)");

  /// One granted reply as recorded by the probing requester.
  struct Reply {
    std::uint32_t from = 0;  ///< global peer id (total_peers_ < 2^32)
    core::PeerClass cls = 0;
  };
  static_assert(sizeof(Reply) == 8, "replies must stay 8 bytes");

  /// One in-flight admission attempt (pooled per shard). Pool size tracks
  /// concurrent attempts (hundreds), not population (millions).
  struct Attempt {
    std::uint64_t session = 0;
    std::uint32_t peer_local = 0;  ///< owner's local index
    std::uint32_t probed = 0;      ///< probes sent (incl. dropped)
    std::vector<Reply> replies;    ///< grants, in canonical arrival order
    std::uint32_t next_free = kNoAttempt;
  };

  /// Requester deadline parked on the per-shard monotone calendar.
  struct Deadline {
    std::uint32_t peer_local = 0;
    std::uint32_t epoch = 0;  ///< stale when != peer's attempt epoch
  };
  static_assert(sizeof(Deadline) == 8, "deadlines must stay 8 bytes");

  /// One finished session pending teardown on the end calendar. The chosen
  /// suppliers are NOT stored inline: admissions schedule their ends in
  /// nondecreasing time and the calendar fires FIFO, so the supplier lists
  /// live concatenated on one per-shard ring (Shard::chosen_fifo) — each
  /// finish pops exactly its own `supplier_count` ids off the front.
  struct SessionEnd {
    std::uint64_t session = 0;
    std::uint32_t peer_local = 0;
    std::uint32_t supplier_count = 0;
  };
  static_assert(sizeof(SessionEnd) == 16, "session ends must stay 16 bytes");

  /// Globally-shared supplier directory with barrier-published joins.
  /// Entries are totally ordered by (visible tick, peer); each shard walks
  /// its own monotone cursor over the flushed prefix during a window, so
  /// reads are lock-free and identical for every partitioning. Stored as
  /// a structure of u32 arrays — 8 bytes per (eventually) supplying peer.
  class Directory {
   public:
    struct Join {
      std::uint32_t visible_ms = 0;
      std::uint32_t peer = 0;
    };
    static_assert(sizeof(Join) == 8, "directory joins must stay 8 bytes");

    explicit Directory(int num_shards)
        : cursors_(static_cast<std::size_t>(num_shards), 0) {}

    /// Coordinator-only: parks a join that becomes visible at `visible_ms`.
    void enqueue(std::uint32_t visible_ms, std::uint32_t peer);
    /// Coordinator-only, at window start: publishes every parked join
    /// visible at or before `through` into the flushed prefix. O(1) when
    /// nothing is due — the cached minimum visibility tick short-circuits
    /// the call — and O(joins due) otherwise, never O(population).
    void flush_due(util::SimTime through);
    /// Shard-local: entries visible at or before `at` (monotone per shard).
    std::size_t visible_count(int shard, util::SimTime at);
    [[nodiscard]] core::PeerId peer_at(std::size_t index) const {
      return core::PeerId{peers_[index]};
    }
    /// Number of non-trivial flushes (slow-path publications). The gap
    /// between this and the window count is the O(1) fast path's win —
    /// the `directory_flushes` mechanics counter.
    [[nodiscard]] std::uint64_t flushes() const { return flushes_; }

   private:
    static constexpr std::uint32_t kNeverVisible = 0xFFFFFFFFu;
    // Flushed prefix, sorted by (visible, peer), append-only, SoA.
    std::vector<std::uint32_t> peers_;
    std::vector<std::uint32_t> visible_ms_;
    /// Parked joins, unsorted — sorted wholesale on the flush slow path
    /// (conservative lookahead means the whole set is due by then anyway).
    std::vector<Join> pending_;
    /// Minimum visibility tick over `pending_` (kNeverVisible when empty):
    /// the flush fast path is one compare against this.
    std::uint32_t next_visible_ = kNeverVisible;
    std::uint64_t flushes_ = 0;
    std::vector<std::size_t> cursors_;
  };

  struct Shard;  // defined in the .cpp (holds Simulator + lazy sources)

  [[nodiscard]] int shard_of(core::PeerId peer) const;
  [[nodiscard]] core::PeerClass class_of(core::PeerId peer) const;
  [[nodiscard]] core::PeerId global_id(int shard, std::uint32_t local) const;
  [[nodiscard]] std::uint32_t local_index(core::PeerId peer) const;

  void send(Shard& shard, std::uint32_t from_local, core::PeerId to, Msg msg);
  void first_request(Shard& shard, std::uint32_t local);
  void start_attempt(Shard& shard, std::uint32_t local);
  void conclude_attempt(Shard& shard, std::uint32_t local);
  void on_deliver(Shard& shard, const Envelope& envelope);
  void on_probe(Shard& shard, std::uint32_t local, const Envelope& envelope);
  void on_grant(Shard& shard, std::uint32_t local, const Envelope& envelope);
  void finish_session(Shard& shard, const SessionEnd& end);
  void make_supplier(Shard& shard, std::uint32_t local);
  void take_sample(Shard& shard, util::SimTime t);
  /// Coordinator-only, at a window barrier when a snapshot is due: writes
  /// every per-shard registry lane from the shard fields the engine
  /// already maintains (zero hot-path cost; docs/observability.md).
  void publish_telemetry(util::SimTime now);
  /// Lazily expires an overdue hold/watchdog before reading supplier state.
  void purge_supplier(Shard& shard, std::uint32_t local, util::SimTime now);

  /// The peer's private random universe, hydrated on first draw: by
  /// Rng::substream purity, master.substream("peer", id) derived now is
  /// bit-identical to the stream an eager layout would have stored at
  /// construction (docs/memory.md carries the ordering argument).
  util::Rng& rng_of(Shard& shard, std::uint32_t local);
  /// Returns the slot to the free list once the peer can never draw again
  /// (admitted, and the send path is draw-free for this config).
  void release_rng(Shard& shard, std::uint32_t local);
  /// Returns the slot to the free list keeping only the draw count in
  /// rng_slot — for a peer that will draw again (a rejected requester in
  /// backoff) but not until its next attempt. Only valid when sends are
  /// draw-free: then a requester's stream is touched exclusively inside
  /// its own attempt lifecycle, so between attempts the count alone pins
  /// the stream position and rng_of can rehydrate bit-identically.
  void demote_rng(Shard& shard, std::uint32_t local);

  std::uint32_t acquire_attempt(Shard& shard);
  void release_attempt(Shard& shard, std::uint32_t index);

  static constexpr std::uint32_t kNoAttempt = 0xFFFFFFFFu;
  /// rng_slot tagging: bit 31 set = demoted (low 31 bits = draw count).
  static constexpr std::uint32_t kRngDemotedBit = 0x80000000u;
  static constexpr std::uint32_t kRngCountMask = 0x7FFFFFFFu;
  /// Initial rng_slot value: demoted with zero draws — "never hydrated"
  /// and "demoted after n=0 draws" are the same state by construction.
  static constexpr std::uint32_t kRngNever = kRngDemotedBit;

  ShardedConfig config_;
  util::SimTime lookahead_;
  /// The master generator (state never advanced after seeding) — the pure
  /// root every lazily-hydrated per-peer substream derives from.
  util::Rng master_;
  /// Scratch sink for deterministic latency models: sample() never draws
  /// from it (LatencyModel::deterministic() is the guarantee), so the
  /// send path can skip hydrating the sender's stream entirely.
  util::Rng null_rng_;
  /// True when no send can ever draw (zero loss + deterministic latency):
  /// admitted peers' streams are released back to the pool, so live RNG
  /// state tracks in-flight attempts instead of population.
  bool sends_draw_free_ = false;
  /// Global immutable class map: classes are drawn once from the master
  /// seed's "population" substream, before sharding — identical for every
  /// shard count. Stored as one byte per requester (classes are 1..4).
  std::vector<std::uint8_t> requester_classes_;
  workload::ArrivalSchedule arrivals_;
  Router router_;
  Directory directory_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Joins produced during the current window, one row per shard, moved
  /// into the directory at the barrier by the coordinator. (All selection
  /// and sampling scratch lives inside each Shard — shards are
  /// thread-confined during windows.)
  std::vector<std::vector<Directory::Join>> join_buffers_;
  std::int64_t total_peers_ = 0;
  bool ran_ = false;
  /// Telemetry wiring (registry handles + profiler), allocated in run()
  /// only when config_.telemetry is set; see the .cpp.
  struct TelemetryState;
  std::unique_ptr<TelemetryState> telem_;
};

}  // namespace p2ps::engine
