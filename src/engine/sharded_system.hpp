// Sharded conservative-parallel message-level engine.
//
// The road to the ROADMAP's millions-of-peers north star: the peer space
// is partitioned round-robin across N shards, each owning a whole
// sim::Simulator (event list, per-shard lazy sources, per-shard metric
// sums), stepping in lockstep lookahead windows under sim::ShardRunner
// with cross-shard control messages batched through net::ShardRouter.
//
// Determinism bar (the repo's standing invariant, one level up): merged
// output is byte-identical for ANY shard count — including shards=1 — and
// any thread count. docs/sharding.md carries the full argument; the load-
// bearing rules are:
//   * every random draw comes from a per-peer substream
//     (master.substream("peer", id)), never from an execution-order-shared
//     stream;
//   * same-tick deliveries drain in the canonical (to, sent_at, from, seq)
//     order; requester deadlines fire before same-tick deliveries
//     (deadline-check-on-drain), so a grant arriving exactly at the
//     deadline tick is deterministically late;
//   * supplier joins become probe-visible exactly one lookahead window
//     after they happen, through a globally-ordered (visible tick, peer)
//     directory flushed at barriers — so visibility never depends on which
//     shard ran first;
//   * merged statistics are integer sums only (bandwidth units, millisecond
//     sums, counts); every mean/rate is derived once after the merge, so
//     floating-point non-associativity cannot leak shard structure.
//
// Protocol: a documented message-level subset of DAC_p2p ("DAC-lite") —
// Probe / Grant / Commit / Release / EndSession with silent-busy
// suppliers, single-session holds, lazy hold expiry and lazy session
// watchdogs (deadline-check-on-probe; no TimerService — the sharded engine
// has no timer population at all). Deliberate deviations from the
// AsyncStreamingSystem (class differentiation state machines, reminders,
// idle elevation) are listed in docs/sharding.md; the paper's economics —
// classed offers, exact-cover admission at R0, Theorem-1 buffering delay,
// exponential backoff, capacity self-amplification — are all retained.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/admission/requester.hpp"
#include "core/bandwidth.hpp"
#include "core/ids.hpp"
#include "core/selection.hpp"
#include "core/selection_policy.hpp"
#include "engine/config.hpp"
#include "engine/retry_source.hpp"
#include "engine/session_end_calendar.hpp"
#include "net/latency.hpp"
#include "net/shard_router.hpp"
#include "sim/event_list.hpp"
#include "sim/shard_runner.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"
#include "workload/arrival_pattern.hpp"
#include "workload/population.hpp"

namespace p2ps::engine {

struct ShardedConfig {
  ProtocolParams protocol;
  workload::PopulationConfig population;

  workload::ArrivalPattern pattern = workload::ArrivalPattern::kConstant;
  util::SimTime arrival_window = util::SimTime::hours(12);
  util::SimTime horizon = util::SimTime::hours(24);
  util::SimTime session_duration = util::SimTime::minutes(60);

  /// Latency model; its min_latency() is the conservative lookahead (the
  /// shard window width), its max_latency() bounds the timeouts below.
  net::LatencyModel latency;
  /// Per-message drop probability (sender-side draw).
  double loss = 0.0;

  /// Requester-side probe-response timeout. Must exceed max_latency() so a
  /// deadline can never fire while an on-time reply is still in flight.
  util::SimTime response_timeout = util::SimTime::seconds(5);
  /// Supplier-side grant-hold timeout. Must cover response_timeout plus a
  /// grant+commit round trip, so an accepted commit can never race its own
  /// grant's expiry.
  util::SimTime hold_timeout = util::SimTime::seconds(15);

  /// Peer shards (>= 1). Output is byte-identical for every value.
  int shards = 1;
  /// Worker threads (clamped to [1, shards]); wall-clock only.
  int threads = 1;

  sim::EventListKind event_list = sim::EventListKind::kBinaryHeap;
  std::uint64_t seed = 2002;
  util::SimTime sample_interval = util::SimTime::hours(1);
  const core::SelectionPolicy* selection_policy = &core::paper_dac_policy();

  void validate() const;
};

/// Per-class end-of-run sums. Integer-only by design: shard totals merge
/// by field-wise addition, and every derived mean/rate is computed once
/// from the merged sums (see file header).
struct ShardedClassTotals {
  std::int64_t first_requests = 0;
  std::int64_t attempts = 0;
  std::int64_t admissions = 0;
  std::int64_t rejections = 0;
  /// Over admissions: Theorem-1 buffering delay, total backoff rejections
  /// endured, and arrival->admission waiting time.
  std::int64_t delay_dt_sum = 0;
  std::int64_t rejections_at_admission_sum = 0;
  std::int64_t waiting_ms_sum = 0;

  ShardedClassTotals& operator+=(const ShardedClassTotals& other);
};

/// One merged hourly snapshot. Capacity is carried as exact bandwidth
/// units and floored to whole-stream capacity only in the report.
struct ShardedSample {
  util::SimTime t;
  std::int64_t capacity_units = 0;
  std::int64_t active_sessions = 0;
  std::int64_t suppliers = 0;
};

/// Per-shard event-core mechanics (run-shape diagnostics, not workload
/// results — scenario payloads emit these only behind --mechanics).
struct ShardMechanics {
  std::uint64_t events_executed = 0;
  std::int64_t peak_event_list = 0;
  std::uint64_t messages_sent = 0;
};

struct ShardedResult {
  core::PeerClass num_classes = 4;
  std::vector<ShardedClassTotals> totals;  ///< per class (index = class-1)
  ShardedClassTotals overall;
  std::vector<ShardedSample> hourly;

  std::int64_t final_capacity = 0;
  std::int64_t max_capacity = 0;
  std::int64_t suppliers_at_end = 0;
  std::int64_t sessions_completed = 0;
  std::int64_t sessions_active_at_end = 0;
  std::int64_t hold_expirations = 0;
  std::int64_t watchdog_recoveries = 0;

  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;

  /// Partition-dependent diagnostics (mechanics-only in payloads).
  std::uint64_t cross_shard_messages = 0;
  std::int64_t windows = 0;
  std::vector<ShardMechanics> per_shard;
  std::int64_t peak_rss_bytes = 0;
};

class ShardedSystem {
 public:
  explicit ShardedSystem(ShardedConfig config);
  ~ShardedSystem();
  ShardedSystem(const ShardedSystem&) = delete;
  ShardedSystem& operator=(const ShardedSystem&) = delete;

  /// Runs to the horizon; may be called once.
  ShardedResult run();

  [[nodiscard]] const ShardedConfig& config() const { return config_; }

 private:
  /// Cross-shard control message. One byte of kind, the sender's class
  /// where the receiver needs it (Probe: requester class for the latency
  /// model; Grant: supplier class for selection), and the session id.
  enum class MsgKind : std::uint8_t { kProbe, kGrant, kCommit, kRelease, kEnd };
  struct Msg {
    MsgKind kind = MsgKind::kProbe;
    core::PeerClass cls = 0;
    std::uint64_t session = 0;
  };
  using Router = net::ShardRouter<Msg>;
  using Envelope = Router::Envelope;

  enum class SupplierStatus : std::uint8_t { kNone, kFree, kHeld, kCommitted };

  struct LocalPeer {
    explicit LocalPeer(const ShardedConfig& config, util::Rng rng,
                       core::PeerClass cls)
        : rng(std::move(rng)),
          backoff(config.protocol.t_bkf, config.protocol.e_bkf),
          cls(cls) {}

    util::Rng rng;  ///< the peer's whole random universe (partition-free)
    core::RequesterBackoff backoff;
    core::PeerClass cls;
    std::uint64_t send_seq = 0;  ///< per-sender envelope counter
    /// In-flight attempt slot in the shard pool, or kNoAttempt.
    std::uint32_t attempt = kNoAttempt;
    /// Bumped at every attempt start and conclusion; the low bits of the
    /// session id and the staleness check for parked deadlines.
    std::uint32_t attempt_epoch = 0;
    util::SimTime first_request_time = util::SimTime::zero();
    bool admitted = false;
    // Supplier side (single-session hold, lazily expired).
    SupplierStatus status = SupplierStatus::kNone;
    std::uint64_t held_session = 0;
    util::SimTime hold_expiry = util::SimTime::zero();
  };

  struct Reply {
    core::PeerId from;
    core::PeerClass cls;
  };

  /// One in-flight admission attempt (pooled per shard).
  struct Attempt {
    std::uint64_t session = 0;
    std::uint32_t peer_local = 0;  ///< owner's local index
    std::uint32_t probed = 0;      ///< probes sent (incl. dropped)
    std::vector<Reply> replies;    ///< grants, in canonical arrival order
    std::uint32_t next_free = kNoAttempt;
  };

  /// Requester deadline parked on the per-shard monotone calendar.
  struct Deadline {
    std::uint32_t peer_local = 0;
    std::uint32_t epoch = 0;  ///< stale when != peer's attempt_epoch
  };

  /// One finished session pending teardown on the end calendar.
  struct SessionEnd {
    std::uint32_t peer_local = 0;
    std::uint64_t session = 0;
    std::vector<core::PeerId> suppliers;
  };

  /// Globally-shared supplier directory with barrier-published joins.
  /// Entries are totally ordered by (visible tick, peer); each shard walks
  /// its own monotone cursor over the flushed prefix during a window, so
  /// reads are lock-free and identical for every partitioning.
  class Directory {
   public:
    struct Entry {
      util::SimTime visible;
      core::PeerId peer;
      core::PeerClass cls;
    };

    explicit Directory(int num_shards)
        : cursors_(static_cast<std::size_t>(num_shards), 0) {}

    /// Coordinator-only: parks a join that becomes visible at `visible`.
    void enqueue(util::SimTime visible, core::PeerId peer, core::PeerClass cls);
    /// Coordinator-only, at window start: publishes every parked join
    /// visible at or before `through` into the flushed prefix.
    void flush_due(util::SimTime through);
    /// Shard-local: entries visible at or before `at` (monotone per shard).
    std::size_t visible_count(int shard, util::SimTime at);
    [[nodiscard]] const Entry& at(std::size_t index) const {
      return flushed_[index];
    }

   private:
    struct Later {
      bool operator()(const Entry& a, const Entry& b) const {
        if (a.visible != b.visible) return a.visible > b.visible;
        return a.peer.value() > b.peer.value();
      }
    };
    std::vector<Entry> flushed_;  ///< sorted by (visible, peer), append-only
    std::vector<Entry> pending_heap_;  ///< std::push_heap with Later
    std::vector<std::size_t> cursors_;
  };

  struct Shard;  // defined in the .cpp (holds Simulator + lazy sources)

  [[nodiscard]] int shard_of(core::PeerId peer) const;
  [[nodiscard]] core::PeerClass class_of(core::PeerId peer) const;
  [[nodiscard]] core::PeerId global_id(int shard, std::uint32_t local) const;
  [[nodiscard]] std::uint32_t local_index(core::PeerId peer) const;

  void send(Shard& shard, LocalPeer& from, core::PeerId to, Msg msg);
  void first_request(Shard& shard, std::uint32_t local);
  void start_attempt(Shard& shard, std::uint32_t local);
  void conclude_attempt(Shard& shard, std::uint32_t local);
  void on_deliver(Shard& shard, const Envelope& envelope);
  void on_probe(Shard& shard, LocalPeer& to, const Envelope& envelope);
  void on_grant(Shard& shard, LocalPeer& to, const Envelope& envelope);
  void finish_session(Shard& shard, SessionEnd&& end);
  void make_supplier(Shard& shard, std::uint32_t local);
  void take_sample(Shard& shard, util::SimTime t);
  /// Lazily expires an overdue hold/watchdog before reading supplier state.
  void purge_supplier(Shard& shard, LocalPeer& peer, util::SimTime now);

  std::uint32_t acquire_attempt(Shard& shard);
  void release_attempt(Shard& shard, std::uint32_t index);

  static constexpr std::uint32_t kNoAttempt = 0xFFFFFFFFu;

  ShardedConfig config_;
  util::SimTime lookahead_;
  /// Global immutable class map: classes are drawn once from the master
  /// seed's "population" substream, before sharding — identical for every
  /// shard count.
  std::vector<core::PeerClass> requester_classes_;
  workload::ArrivalSchedule arrivals_;
  Router router_;
  Directory directory_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Joins produced during the current window, one row per shard, moved
  /// into the directory at the barrier by the coordinator. (All selection
  /// and sampling scratch lives inside each Shard — shards are
  /// thread-confined during windows.)
  std::vector<std::vector<Directory::Entry>> join_buffers_;
  std::int64_t total_peers_ = 0;
  bool ran_ = false;
};

}  // namespace p2ps::engine
