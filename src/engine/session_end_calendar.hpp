// One pending event for the whole population of session finishes.
//
// Every admitted session ends exactly `session_duration` after it starts,
// and admissions fire in nondecreasing simulated time — so session end
// ticks are *monotone* and the right data structure is a FIFO, not a heap:
// a deque of (end tick, payload) with ONE simulator event armed at the
// front tick. However many sessions are active, the event list carries one
// entry for all of them (the ROADMAP session-end-calendar residual; the
// same shape as engine/retry_source.hpp and engine/arrival_source.hpp).
//
// Ordering semantics (the part that keeps byte-determinism):
//   * the in-flight event is always armed at the earliest pending end tick,
//     so ends fire at exactly their tick, never late;
//   * poll() lets deadline-check-on-entry sites (metric samplers, barrier
//     reads) force "every end due at or before now happens before this
//     read" — a deterministic rule that does not depend on same-tick event
//     seq races between the calendar's event and the caller's;
//   * within one tick, ends fire in schedule order (FIFO), which is
//     admission order — the same order the per-session schedule_after
//     events used to fire in.
#pragma once

#include <deque>
#include <functional>
#include <utility>

#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/sim_time.hpp"

namespace p2ps::engine {

/// Calendar of monotone session-end deadlines carrying an `Entry` payload
/// (requester id, supplier set, session id — whatever the engine needs to
/// tear the session down).
template <typename Entry>
class SessionEndCalendar {
 public:
  using Handler = std::function<void(Entry&&)>;

  /// Ties the calendar to `simulator` (must outlive this object). `on_end`
  /// runs once per finished session, at exactly its end tick (or at the
  /// first poll() at/after it).
  SessionEndCalendar(sim::Simulator& simulator, Handler on_end)
      : simulator_(simulator), on_end_(std::move(on_end)) {
    P2PS_REQUIRE(on_end_ != nullptr);
  }
  ~SessionEndCalendar() {
    if (event_.valid()) simulator_.cancel(event_);
  }
  SessionEndCalendar(const SessionEndCalendar&) = delete;
  SessionEndCalendar& operator=(const SessionEndCalendar&) = delete;

  /// Schedules one session end. `at` must be in the present-or-future and
  /// (constant session duration) nondecreasing across calls.
  void schedule(util::SimTime at, Entry entry) {
    P2PS_REQUIRE_MSG(at >= simulator_.now(),
                     "session end must not be in the past");
    P2PS_REQUIRE_MSG(queue_.empty() || at >= queue_.back().at,
                     "session ends must be scheduled in nondecreasing order");
    queue_.push_back(Slot{at, std::move(entry)});
    sync_arm();
  }

  /// Fires every end due at or before now(), in FIFO (admission) order.
  /// Handlers may reentrantly schedule() new ends.
  void poll() {
    const util::SimTime now = simulator_.now();
    // Fast path: nothing due. The armed-event invariant already holds (the
    // queue and the in-flight event are untouched), and this runs once per
    // delivered message in the sharded engine — tens of millions per run.
    if (queue_.empty() || queue_.front().at > now) return;
    do {
      Slot slot = std::move(queue_.front());
      queue_.pop_front();
      on_end_(std::move(slot.entry));
    } while (!queue_.empty() && queue_.front().at <= now);
    sync_arm();
  }

  /// Sessions scheduled but not yet finished.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Slot {
    util::SimTime at;
    Entry entry;
  };

  /// Restores the invariant: the one event is armed at the front tick iff
  /// the queue is nonempty. Cheap no-op when already true.
  void sync_arm() {
    if (queue_.empty()) {
      if (event_.valid()) {
        simulator_.cancel(event_);
        event_ = sim::EventId::invalid();
      }
      return;
    }
    const util::SimTime due = queue_.front().at;
    if (event_.valid() && armed_at_ == due) return;
    if (event_.valid()) simulator_.cancel(event_);
    armed_at_ = due;
    event_ = simulator_.schedule_at(due, [this] {
      event_ = sim::EventId::invalid();
      poll();
    });
  }

  sim::Simulator& simulator_;
  Handler on_end_;
  std::deque<Slot> queue_;
  sim::EventId event_ = sim::EventId::invalid();
  util::SimTime armed_at_ = util::SimTime::zero();
};

}  // namespace p2ps::engine
