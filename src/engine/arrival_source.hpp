// Lazy, self-rescheduling arrival source.
//
// The engines used to materialise one simulator event per first-time
// request at t = 0 — an O(population) event-list build whose peak queue
// size equalled the requester count before a single event had fired. This
// walker keeps exactly ONE arrival event in flight: when arrival i fires it
// schedules arrival i+1 (same timestamp semantics, see below) and only then
// invokes the engine's handler, so the peak event list shrinks to
// O(active sessions + timers).
//
// Ordering argument (docs/lazy_arrivals.md has the full version):
//   * Arrival i still fires at exactly schedule.arrival_at(i), and arrivals
//     fire in index order — times are sorted and the next event is pushed
//     before the current handler runs, so a same-timestamp successor gets a
//     simulator seq *smaller* than anything the handler schedules at that
//     instant. Runs of equal-time arrivals therefore fire back-to-back,
//     exactly as under eager pre-scheduling.
//   * What can change is only the FIFO seq interleaving between an arrival
//     and an *unrelated* event at the same millisecond (e.g. a periodic
//     sampler tick): eager arrivals carried t=0 seqs that beat everything;
//     lazy arrivals carry seqs assigned at their predecessor's fire time.
//     This is a one-time output perturbation, covered by the PR-3
//     expected-output regeneration; it is backend-independent (seqs are
//     assigned by the Simulator, not the event list), so heap/calendar
//     byte-parity is preserved by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/simulator.hpp"
#include "workload/arrival_pattern.hpp"

namespace p2ps::engine {

class ArrivalSource {
 public:
  /// `on_arrival(index)` is invoked at arrival index's scheduled time,
  /// indices 0..total-1 in order. The source owns the schedule; the
  /// simulator must outlive the source.
  using OnArrival = std::function<void(std::int64_t index)>;

  ArrivalSource(sim::Simulator& simulator, workload::ArrivalSchedule schedule,
                OnArrival on_arrival)
      : simulator_(simulator),
        schedule_(std::move(schedule)),
        cursor_(schedule_.cursor()),
        on_arrival_(std::move(on_arrival)) {}

  /// If the source dies with an arrival still in flight (a run cut short of
  /// the arrival window), the event must not outlive the callback target.
  ~ArrivalSource() {
    if (in_flight_.valid()) simulator_.cancel(in_flight_);
  }
  ArrivalSource(const ArrivalSource&) = delete;
  ArrivalSource& operator=(const ArrivalSource&) = delete;

  /// Schedules the first arrival (no-op on an empty schedule).
  void start() { schedule_next(); }

  /// Arrivals whose handler has been invoked so far.
  [[nodiscard]] std::int64_t emitted() const { return emitted_; }

  /// True once every arrival has fired.
  [[nodiscard]] bool done() const {
    return emitted_ == schedule_.total() && !in_flight_.valid();
  }

  [[nodiscard]] const workload::ArrivalSchedule& schedule() const {
    return schedule_;
  }

 private:
  void schedule_next() {
    const auto t = cursor_.next_arrival();
    if (!t) return;
    in_flight_ = simulator_.schedule_at(*t, [this] { fire(); });
  }

  void fire() {
    in_flight_ = sim::EventId::invalid();
    const std::int64_t index = emitted_++;
    // Reschedule before invoking the handler — load-bearing for the
    // same-timestamp ordering argument above.
    schedule_next();
    on_arrival_(index);
  }

  sim::Simulator& simulator_;
  workload::ArrivalSchedule schedule_;
  workload::ArrivalCursor cursor_;
  OnArrival on_arrival_;
  sim::EventId in_flight_ = sim::EventId::invalid();
  std::int64_t emitted_ = 0;
};

}  // namespace p2ps::engine
