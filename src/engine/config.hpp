// Configuration of a full peer-to-peer streaming simulation
// (paper Section 5.1, with every protocol and workload knob exposed).
#pragma once

#include <cstdint>

#include "core/peer_class.hpp"
#include "core/selection_policy.hpp"
#include "sim/event_list.hpp"
#include "sim/timer_service.hpp"
#include "util/sim_time.hpp"
#include "workload/arrival_pattern.hpp"
#include "workload/population.hpp"

namespace p2ps::obs {
class Telemetry;
}

namespace p2ps::engine {

/// Which lookup substrate serves candidate queries (paper footnote 4).
enum class LookupKind { kDirectory, kChord };

/// DAC_p2p / NDAC_p2p protocol parameters (paper Section 5.1 defaults).
struct ProtocolParams {
  core::PeerClass num_classes = 4;
  /// M — candidates probed per admission attempt.
  std::size_t m_candidates = 8;
  /// T_out — idle period after which a supplier elevates lower classes.
  util::SimTime t_out = util::SimTime::minutes(20);
  /// T_bkf — base backoff after a rejection.
  util::SimTime t_bkf = util::SimTime::minutes(10);
  /// E_bkf — backoff exponential factor (1 = constant backoff).
  std::int64_t e_bkf = 2;
  /// true = DAC_p2p, false = NDAC_p2p (all-ones vectors, no adaptation).
  bool differentiated = true;
  /// Ablation: disable the reminder technique while keeping differentiation.
  bool reminders_enabled = true;
};

struct SimulationConfig {
  ProtocolParams protocol;
  workload::PopulationConfig population;

  workload::ArrivalPattern pattern = workload::ArrivalPattern::kRampUpDown;
  /// First-time requests arrive within [0, arrival_window).
  util::SimTime arrival_window = util::SimTime::hours(72);
  /// Sample arrival times stochastically from the pattern's density instead
  /// of the deterministic quantile placement (seeded; still reproducible).
  bool randomize_arrivals = false;
  /// Total simulated period.
  util::SimTime horizon = util::SimTime::hours(144);

  /// T — the media show time; suppliers are busy for this long per session.
  util::SimTime session_duration = util::SimTime::minutes(60);
  /// Δt — playback time of one segment (only scales reported delays).
  util::SimTime segment_duration = util::SimTime::seconds(1);

  /// Probability that a probed candidate is unreachable (transient churn).
  double peer_down_probability = 0.0;

  /// Permanent churn: probability that a supplier leaves the system for
  /// good right after finishing a served session (it deregisters and stops
  /// contributing bandwidth). The paper assumes zero; this knob studies how
  /// the self-amplification result degrades when it is not.
  double supplier_departure_probability = 0.0;

  /// Bandwidth-commitment defection (paper footnote 3 assumes an
  /// enforcement mechanism exists; this knob removes it): probability that
  /// an admitted requester reneges and supplies only the *lowest* class's
  /// bandwidth after its session, instead of what it pledged to gain
  /// admission priority.
  double defection_probability = 0.0;

  /// How a requester picks session suppliers among its granted candidates.
  /// Points into the core::SelectionPolicy registry; never null. The
  /// default is the paper's DAC_p2p largest-offer-first exact cover.
  const core::SelectionPolicy* selection_policy = &core::paper_dac_policy();
  LookupKind lookup = LookupKind::kDirectory;

  /// Event-list backend for the simulator's queue. Both backends produce
  /// byte-identical results (same ordering semantics); the calendar queue
  /// is the O(1) choice for very large event populations.
  sim::EventListKind event_list = sim::EventListKind::kBinaryHeap;

  /// Timer subsystem strategy for the per-supplier idle elevation timers.
  /// Pure event-core mechanics: all strategies produce byte-identical
  /// simulation output (docs/timers.md); they differ in how many simulator
  /// events the armed-timer population costs.
  sim::TimerConfig timers;

  std::uint64_t seed = 42;

  /// Cadence of cumulative metric snapshots (the figures use 1 hour).
  util::SimTime sample_interval = util::SimTime::hours(1);
  /// Cadence of Figure 7's favored-class samples.
  util::SimTime favored_sample_interval = util::SimTime::hours(3);

  /// Run the cross-checking invariant validator at each sample (O(peers)).
  bool validate_invariants = true;

  /// Retain the last N protocol trace events (0 disables tracing). See
  /// engine/trace.hpp.
  std::size_t trace_capacity = 0;

  /// Borrowed runtime telemetry sink (null = off). Strictly out-of-band:
  /// the engine publishes registry values and polls for snapshots only
  /// inside its existing periodic sampler, so the simulation trajectory —
  /// and the scenario payload — is byte-identical with or without it
  /// (docs/observability.md).
  obs::Telemetry* telemetry = nullptr;
};

/// The paper's baseline configuration: same parameters, no differentiation.
[[nodiscard]] inline SimulationConfig as_ndac(SimulationConfig config) {
  config.protocol.differentiated = false;
  return config;
}

/// The paper's Section 5.1 evaluation configuration — the single source of
/// truth shared by the bench harnesses and the scenario runner, so both
/// reproduce every figure from identical parameters. `population_divisor`
/// shrinks the 100-seed / 50,000-requester population for quick runs
/// (seeds are floored at 4 so tiny runs stay feasible). Invariant
/// validation is off: these are throughput-oriented reproductions; the
/// test suite exercises the validator separately.
[[nodiscard]] inline SimulationConfig section51_config(
    workload::ArrivalPattern pattern, bool differentiated,
    std::uint64_t seed = 2002, std::int64_t population_divisor = 1) {
  SimulationConfig config;
  config.pattern = pattern;
  config.protocol.differentiated = differentiated;
  config.seed = seed;
  config.validate_invariants = false;
  workload::apply_population_divisor(config.population, population_divisor);
  return config;
}

}  // namespace p2ps::engine
