#include "engine/async_system.hpp"

#include <utility>

#include "engine/arrival_source.hpp"
#include "engine/telemetry_probe.hpp"
#include "util/assert.hpp"
#include "workload/arrival_pattern.hpp"

namespace p2ps::engine {

AsyncStreamingSystem::AsyncStreamingSystem(AsyncSimulationConfig config)
    : config_(std::move(config)),
      simulator_(config_.event_list),
      timers_(simulator_, config_.timers),
      transport_(simulator_, config_.transport,
                 util::Rng(config_.seed).substream("transport")),
      metrics_(config_.protocol.num_classes),
      retries_(simulator_, [this](core::PeerId id) { start_attempt(id); }),
      session_ends_(simulator_, [this](SessionEnd&& end) {
        finish_session(end.requester, std::move(end.suppliers), end.session);
      }) {
  workload::validate(config_.population);
  P2PS_REQUIRE(config_.population.num_classes == config_.protocol.num_classes);
  P2PS_REQUIRE(config_.protocol.m_candidates > 0);
  P2PS_REQUIRE(config_.arrival_window > util::SimTime::zero());
  P2PS_REQUIRE(config_.horizon >= config_.arrival_window);
  P2PS_REQUIRE(config_.session_duration > util::SimTime::zero());
  P2PS_REQUIRE_MSG(config_.hold_timeout > config_.response_timeout,
                   "holds must outlive the requester's response timeout, or "
                   "commits would race their own expiry");
  P2PS_REQUIRE_MSG(config_.selection_policy != nullptr,
                   "AsyncSimulationConfig.selection_policy must not be null");
  if (config_.telemetry != nullptr) {
    metrics_.bind_telemetry(config_.telemetry->registry());
  }

  util::Rng master(config_.seed);
  lookup_rng_ = master.substream("lookup");
  endpoint_seed_rng_ = master.substream("endpoint-seeds");
  selection_rng_ = master.substream("selection");
  util::Rng population_rng = master.substream("population");

  const auto requester_classes =
      workload::build_requester_classes(config_.population, population_rng);
  peers_.resize(static_cast<std::size_t>(config_.population.seeds) +
                requester_classes.size());
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    Peer& p = peers_[i];
    p.id = core::PeerId{i};
    if (i < static_cast<std::size_t>(config_.population.seeds)) {
      p.cls = config_.population.seed_class;
    } else {
      p.cls = requester_classes[i - static_cast<std::size_t>(config_.population.seeds)];
      p.backoff.emplace(config_.protocol.t_bkf, config_.protocol.e_bkf);
    }
    // The two-class latency model keys on bandwidth class; classes persist
    // across the per-attempt attach/detach churn, so register them once.
    transport_.set_peer_class(p.id, p.cls);
  }
  attempts_.resize(peers_.size());
}

AsyncStreamingSystem::Peer& AsyncStreamingSystem::peer(core::PeerId id) {
  P2PS_REQUIRE(id.valid() && id.value() < peers_.size());
  return peers_[static_cast<std::size_t>(id.value())];
}

std::int64_t AsyncStreamingSystem::capacity() const {
  return core::capacity(supplier_bandwidth_);
}

std::int64_t AsyncStreamingSystem::busy_suppliers() const {
  std::int64_t busy = 0;
  for (const Peer& p : peers_) {
    if (p.endpoint && p.endpoint->in_session()) ++busy;
  }
  return busy;
}

void AsyncStreamingSystem::make_supplier(Peer& p) {
  P2PS_CHECK(!p.endpoint);
  net::SupplierEndpoint::Config endpoint_config;
  endpoint_config.num_classes = config_.protocol.num_classes;
  endpoint_config.differentiated = config_.protocol.differentiated;
  endpoint_config.hold_timeout = config_.hold_timeout;
  endpoint_config.t_out = config_.protocol.t_out;
  // Self-recovery if a teardown message is lost: a session cannot engage a
  // supplier for much longer than the show time plus control slack.
  endpoint_config.session_watchdog =
      config_.session_duration + 4 * config_.hold_timeout;
  p.endpoint = std::make_unique<net::SupplierEndpoint>(
      p.id, p.cls, endpoint_config, timers_, transport_,
      util::Rng(endpoint_seed_rng_()));
  directory_.register_supplier(p.id, p.cls);
  supplier_bandwidth_ += core::Bandwidth::class_offer(p.cls);
  ++suppliers_;
}

void AsyncStreamingSystem::first_request(core::PeerId id) {
  timers_.poll();  // deadline-check-on-entry: see docs/timers.md
  Peer& p = peer(id);
  p.first_request_time = simulator_.now();
  metrics_.on_first_request(p.cls);
  start_attempt(id);
}

void AsyncStreamingSystem::start_attempt(core::PeerId id) {
  timers_.poll();
  Peer& p = peer(id);
  P2PS_CHECK(!p.admitted && !p.endpoint);
  const auto index = static_cast<std::size_t>(id.value());
  P2PS_CHECK_MSG(!attempts_[index], "overlapping attempts for one peer");
  metrics_.on_attempt(p.cls);

  auto candidates =
      directory_.candidates(config_.protocol.m_candidates, lookup_rng_, p.id);

  net::AsyncAdmissionAttempt::Config attempt_config;
  attempt_config.response_timeout = config_.response_timeout;
  attempt_config.reminders_enabled =
      config_.protocol.differentiated && config_.protocol.reminders_enabled;
  attempt_config.policy = config_.selection_policy;
  attempt_config.selection_rng = &selection_rng_;
  attempt_config.selection_scratch = &scratch_selection_;

  const core::SessionId session{next_session_++};
  auto attempt = std::make_unique<net::AsyncAdmissionAttempt>(
      p.id, p.cls, session, std::move(candidates), attempt_config, simulator_,
      transport_,
      [this, id](const net::AsyncAdmissionAttempt::Result& result) {
        on_attempt_done(id, result);
      });
  net::AsyncAdmissionAttempt* raw = attempt.get();
  attempts_[index] = std::move(attempt);
  raw->start();
}

void AsyncStreamingSystem::retire_attempt(core::PeerId id) {
  // The attempt object is still on the call stack (we are inside its
  // completion callback); park it on the retirement list, drained by a
  // single event per tick — however many attempts conclude at this tick,
  // teardown costs one event, not one per attempt.
  retired_.push_back(id);
  if (!retire_event_.valid()) {
    retire_event_ = simulator_.schedule_after(util::SimTime::zero(), [this] {
      retire_event_ = sim::EventId::invalid();
      for (const core::PeerId retired : retired_) {
        attempts_[static_cast<std::size_t>(retired.value())].reset();
      }
      retired_.clear();  // capacity kept — the list itself is pooled
    });
  }
}

void AsyncStreamingSystem::on_attempt_done(
    core::PeerId id, const net::AsyncAdmissionAttempt::Result& result) {
  Peer& p = peer(id);
  retire_attempt(id);

  if (result.admitted) {
    p.admitted = true;
    ++sessions_active_;
    metrics_.on_admission(p.cls, p.backoff->rejections(), result.buffering_delay_dt,
                          simulator_.now() - p.first_request_time);
    session_ends_.schedule(
        simulator_.now() + config_.session_duration,
        SessionEnd{id, result.session, result.suppliers});
    return;
  }

  metrics_.on_rejection(p.cls);
  retries_.schedule(p.backoff->on_rejected(), id);
}

void AsyncStreamingSystem::finish_session(core::PeerId requester_id,
                                          std::vector<lookup::CandidateInfo> suppliers,
                                          core::SessionId session) {
  timers_.poll();
  // Tear down: one EndSession per supplier (loss is survivable — each
  // endpoint also runs a session watchdog).
  for (const auto& supplier : suppliers) {
    transport_.send(requester_id, supplier.id, net::EndSession{session});
  }
  --sessions_active_;
  ++sessions_completed_;
  // Play-while-downloading: the requester now owns the file and supplies.
  make_supplier(peer(requester_id));
}

void AsyncStreamingSystem::take_sample(util::SimTime t) {
  // Deterministic tie rule: every session end due at or before the sample
  // tick happens before the sample reads capacity/active counts — the
  // calendar's own event and the sampler's could otherwise race on seq.
  session_ends_.poll();
  timers_.poll();
  metrics_.hourly_sample(t, capacity(), sessions_active_, suppliers_);
  if (config_.telemetry != nullptr && config_.telemetry->snapshot_due()) {
    obs::Registry& registry = config_.telemetry->registry();
    publish_event_core(registry, simulator_);
    publish_timer_service(registry, timers_);
    publish_mailbox(registry, transport_);
    registry.gauge("suppliers")->set(suppliers_);
    registry.gauge("sessions_active")->set(sessions_active_);
    registry.gauge("capacity_units")->set(capacity());
    config_.telemetry->snapshot(t.as_millis());
  }
}

SimulationResult AsyncStreamingSystem::run() {
  P2PS_REQUIRE_MSG(!ran_, "run() may be called only once");
  ran_ = true;

  for (std::int64_t i = 0; i < config_.population.seeds; ++i) {
    make_supplier(peers_[static_cast<std::size_t>(i)]);
  }

  // Lazy arrivals: one in-flight event walks the schedule (see
  // engine/arrival_source.hpp for the ordering argument).
  auto schedule = workload::ArrivalSchedule::make(
      config_.pattern, config_.population.requesters, config_.arrival_window);
  const std::int64_t first_requester = config_.population.seeds;
  ArrivalSource arrivals(simulator_, std::move(schedule),
                         [this, first_requester](std::int64_t index) {
                           first_request(core::PeerId{static_cast<std::uint64_t>(
                               first_requester + index)});
                         });
  arrivals.start();

  take_sample(util::SimTime::zero());
  sim::Periodic sampler(simulator_, config_.sample_interval, config_.sample_interval,
                        [this](util::SimTime t) { take_sample(t); });
  simulator_.run_until(config_.horizon);
  sampler.stop();
  // Expire timers due by the horizon that no message touched, so the
  // endpoint states read below agree across timer strategies.
  timers_.poll();

  SimulationResult result;
  result.num_classes = config_.protocol.num_classes;
  result.hourly = metrics_.hourly();
  result.favored = metrics_.favored();
  for (core::PeerClass c = 1; c <= config_.protocol.num_classes; ++c) {
    result.totals.push_back(metrics_.totals(c));
  }
  result.overall = metrics_.overall();
  result.final_capacity = capacity();
  result.max_capacity = workload::max_possible_capacity(config_.population);
  result.suppliers_at_end = suppliers_;
  result.sessions_completed = sessions_completed_;
  result.sessions_active_at_end = sessions_active_;
  for (const Peer& p : peers_) {
    if (p.endpoint) result.watchdog_recoveries += p.endpoint->watchdog_recoveries();
  }
  result.events_executed = simulator_.executed_count();
  result.peak_event_list =
      static_cast<std::int64_t>(simulator_.peak_pending_count());
  result.peak_event_list_timers =
      static_cast<std::int64_t>(simulator_.peak_pending_timers());
  return result;
}

}  // namespace p2ps::engine
