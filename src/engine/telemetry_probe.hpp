// Shared telemetry publishing helpers for the engines.
//
// Engines publish into the registry only when a snapshot is due (the
// telemetry->snapshot_due() gate), from sites the simulation already
// visits — the hourly Periodic sampler for session engines, window
// barriers for the sharded engine — so publishing costs nothing per event
// and cannot perturb the run (docs/observability.md).
//
// Naming/kind conventions (shared across engines so a comparison scenario
// running several engines against one registry never hits a kind clash):
// the four protocol counters (first_requests/attempts/admissions/
// rejections) are COUNTERS fed by MetricsCollector handles or per-shard
// lanes; everything read back from engine state at publish time is a
// GAUGE (sum-aggregated, except high-water marks which aggregate by max).
#pragma once

#include <cstdint>

#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"
#include "sim/timer_service.hpp"

namespace p2ps::engine {

/// Event-core gauges of one simulator, published into registry lane
/// `lane` (lane = shard for the sharded engine, 0 for session engines).
inline void publish_event_core(obs::Registry& registry,
                               const sim::Simulator& simulator, int lane = 0) {
  registry.gauge(obs::kMetricPendingEvents, lane)
      ->set(static_cast<std::int64_t>(simulator.pending_count()));
  registry.gauge(obs::kMetricEventsExecuted, lane)
      ->set(static_cast<std::int64_t>(simulator.executed_count()));
  registry.gauge("peak_event_list", lane, obs::Aggregation::kMax)
      ->set(static_cast<std::int64_t>(simulator.peak_pending_count()));
}

inline void publish_timer_service(obs::Registry& registry,
                                  const sim::TimerService& timers) {
  registry.gauge("timers_armed")
      ->set(static_cast<std::int64_t>(timers.armed()));
  registry.gauge("timers_fired")
      ->set(static_cast<std::int64_t>(timers.fired()));
  registry.gauge("timer_events_scheduled")
      ->set(static_cast<std::int64_t>(timers.events_scheduled()));
}

/// MailboxRouter<T> stats (the async engine's transport).
template <typename Router>
inline void publish_mailbox(obs::Registry& registry, const Router& router) {
  registry.gauge("messages_sent")
      ->set(static_cast<std::int64_t>(router.sent()));
  registry.gauge("messages_delivered")
      ->set(static_cast<std::int64_t>(router.delivered()));
  registry.gauge("messages_dropped")
      ->set(static_cast<std::int64_t>(router.dropped()));
  registry.gauge("mailbox_drains")
      ->set(static_cast<std::int64_t>(router.drains()));
  registry.gauge("mailbox_max_batch", 0, obs::Aggregation::kMax)
      ->set(static_cast<std::int64_t>(router.max_batch()));
}

}  // namespace p2ps::engine
