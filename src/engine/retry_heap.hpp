// Compact per-shard backoff-retry heap — RetrySource shrunk for the
// 10M-peer memory campaign.
//
// engine/retry_source.hpp keeps {SimTime due, u64 seq, PeerId} entries —
// 24 bytes per waiting peer, plus entries for retries whose exponential
// backoff saturated past the horizon and which therefore can never fire.
// At 10M peers the waiting population is the dominant cold-state term, so
// this variant stores {u32 due_ms, u32 seq, u32 local} — 12 bytes — and
// drops beyond-horizon retries at schedule() time instead of parking them
// forever. Both compactions are byte-invisible:
//   * u32 millisecond deadlines are validated by the engine config
//     (ShardedConfig::validate bounds every schedulable tick below 2^32 ms
//     ≈ 49.7 days);
//   * a beyond-horizon retry's armed event would never execute, and
//     skipping its schedule_at only skips simulator event seqs — the
//     relative order of all surviving events is unchanged, which is the
//     only thing (time, FIFO-by-seq) draining depends on.
//
// The simulator interaction protocol is a field-for-field mirror of
// RetrySource (one in-flight event, arm-only-on-new-top, re-arm before
// invoke); tests/shard_test.cpp runs the two differentially.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/sim_time.hpp"

namespace p2ps::engine {

class RetryHeap {
 public:
  using OnDue = std::function<void(std::uint32_t)>;

  /// One pending entry: 12 bytes vs RetrySource's 24 (the static_assert
  /// below is part of the memory-campaign contract).
  struct Entry {
    std::uint32_t due_ms = 0;
    std::uint32_t seq = 0;  // FIFO tie-break, mirroring simulator seqs
    std::uint32_t local = 0;
  };
  static_assert(sizeof(Entry) == 12, "retry entries must stay 12 bytes");

  /// `on_due(local)` fires at the peer's retry time; retries due strictly
  /// after `horizon` are dropped (they could never fire — the runner stops
  /// at the horizon). The simulator must outlive this object.
  RetryHeap(sim::Simulator& simulator, util::SimTime horizon, OnDue on_due)
      : simulator_(simulator),
        horizon_ms_(horizon.as_millis()),
        on_due_(std::move(on_due)) {
    P2PS_REQUIRE(on_due_ != nullptr);
    P2PS_REQUIRE(horizon_ms_ >= 0);
  }

  ~RetryHeap() {
    if (in_flight_.valid()) simulator_.cancel(in_flight_);
  }
  RetryHeap(const RetryHeap&) = delete;
  RetryHeap& operator=(const RetryHeap&) = delete;

  /// Schedules `local`'s retry after `delay` (non-negative, from now).
  void schedule(util::SimTime delay, std::uint32_t local) {
    P2PS_REQUIRE(delay >= util::SimTime::zero());
    const std::int64_t due_ms = simulator_.now().as_millis() + delay.as_millis();
    if (due_ms > horizon_ms_) {
      ++dropped_beyond_horizon_;
      return;
    }
    P2PS_CHECK_MSG(next_seq_ != 0xFFFFFFFFu, "retry seq overflow");
    const Entry entry{static_cast<std::uint32_t>(due_ms), next_seq_++, local};
    heap_push(entry);
    // Only a new earliest entry preempts the in-flight event; otherwise
    // the armed event still fires first and re-arms from the heap.
    if (heap_.front().seq == entry.seq) arm();
  }

  /// Peers currently waiting on an in-horizon retry.
  [[nodiscard]] std::size_t waiting() const { return heap_.size(); }
  /// Retries dropped because their backoff reached past the horizon.
  [[nodiscard]] std::uint64_t dropped_beyond_horizon() const {
    return dropped_beyond_horizon_;
  }

 private:
  // Flat 8-ary min-heap on (due_ms, seq), replacing std::priority_queue's
  // binary layout. Under admission collapse the waiting population — and
  // so this heap — reaches hundreds of thousands of entries per shard, and
  // every retry pays one sift-down; a binary sift touches ~log2(N) ≈ 17
  // scattered cache lines where the 8-ary tree touches ~6 levels whose 8
  // children (96 bytes) sit in two adjacent lines. Pop order is the exact
  // (due, seq) order the binary heap produced, so the change is
  // byte-invisible (seq is unique — the order is total).
  [[nodiscard]] static std::uint64_t key(const Entry& e) {
    return (static_cast<std::uint64_t>(e.due_ms) << 32) | e.seq;
  }

  void heap_push(const Entry& entry) {
    std::size_t hole = heap_.size();
    heap_.push_back(entry);
    const std::uint64_t k = key(entry);
    while (hole != 0) {
      const std::size_t parent = (hole - 1) / 8;
      if (k >= key(heap_[parent])) break;
      heap_[hole] = heap_[parent];
      hole = parent;
    }
    heap_[hole] = entry;
  }

  void heap_pop() {
    const Entry last = heap_.back();
    heap_.pop_back();
    if (heap_.empty()) return;
    const std::uint64_t k = key(last);
    const std::size_t n = heap_.size();
    std::size_t hole = 0;
    for (;;) {
      const std::size_t first = hole * 8 + 1;
      if (first >= n) break;
      const std::size_t end = std::min(first + 8, n);
      std::size_t best = first;
      std::uint64_t best_key = key(heap_[first]);
      for (std::size_t child = first + 1; child < end; ++child) {
        const std::uint64_t child_key = key(heap_[child]);
        if (child_key < best_key) {
          best = child;
          best_key = child_key;
        }
      }
      if (best_key >= k) break;
      heap_[hole] = heap_[best];
      hole = best;
    }
    heap_[hole] = last;
  }

  void arm() {
    if (in_flight_.valid()) simulator_.cancel(in_flight_);
    in_flight_ = simulator_.schedule_at(
        util::SimTime::millis(heap_.front().due_ms), [this] { fire(); });
  }

  void fire() {
    in_flight_ = sim::EventId::invalid();
    P2PS_CHECK(!heap_.empty());
    const Entry entry = heap_.front();
    heap_pop();
    // Re-arm before invoking — same-due retries fire back-to-back ahead of
    // whatever the handler schedules at this instant (the ArrivalSource
    // ordering argument).
    if (!heap_.empty()) arm();
    on_due_(entry.local);
  }

  sim::Simulator& simulator_;
  std::int64_t horizon_ms_;
  OnDue on_due_;
  std::vector<Entry> heap_;
  std::uint32_t next_seq_ = 0;
  std::uint64_t dropped_beyond_horizon_ = 0;
  sim::EventId in_flight_ = sim::EventId::invalid();
};

}  // namespace p2ps::engine
