#include "engine/streaming_system.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/ots.hpp"
#include "core/selection.hpp"
#include "core/selection_policy.hpp"
#include "engine/arrival_source.hpp"
#include "engine/telemetry_probe.hpp"
#include "lookup/chord.hpp"
#include "lookup/directory.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace p2ps::engine {

namespace {
std::unique_ptr<lookup::LookupService> make_lookup(LookupKind kind) {
  switch (kind) {
    case LookupKind::kDirectory: return std::make_unique<lookup::DirectoryService>();
    case LookupKind::kChord: return std::make_unique<lookup::ChordLookup>();
  }
  P2PS_CHECK_MSG(false, "unknown lookup kind");
  return nullptr;
}
}  // namespace

StreamingSystem::StreamingSystem(SimulationConfig config)
    : config_(std::move(config)),
      simulator_(config_.event_list),
      timers_(simulator_, config_.timers),
      retries_(simulator_, [this](core::PeerId id) { attempt_admission(id); }),
      lookup_(make_lookup(config_.lookup)),
      metrics_(config_.protocol.num_classes) {
  workload::validate(config_.population);
  P2PS_REQUIRE(config_.population.num_classes == config_.protocol.num_classes);
  P2PS_REQUIRE(config_.protocol.m_candidates > 0);
  P2PS_REQUIRE(config_.protocol.t_out > util::SimTime::zero());
  P2PS_REQUIRE(config_.protocol.e_bkf >= 1);
  P2PS_REQUIRE(config_.arrival_window > util::SimTime::zero());
  P2PS_REQUIRE(config_.horizon >= config_.arrival_window);
  P2PS_REQUIRE(config_.session_duration > util::SimTime::zero());
  P2PS_REQUIRE(config_.peer_down_probability >= 0.0 &&
               config_.peer_down_probability < 1.0);
  P2PS_REQUIRE(config_.supplier_departure_probability >= 0.0 &&
               config_.supplier_departure_probability < 1.0);
  P2PS_REQUIRE(config_.defection_probability >= 0.0 &&
               config_.defection_probability <= 1.0);
  P2PS_REQUIRE(config_.sample_interval > util::SimTime::zero());
  P2PS_REQUIRE(config_.favored_sample_interval > util::SimTime::zero());
  P2PS_REQUIRE_MSG(config_.selection_policy != nullptr,
                   "SimulationConfig.selection_policy must not be null");

  if (config_.trace_capacity > 0) {
    trace_ = std::make_unique<TraceLog>(config_.trace_capacity);
  }
  if (config_.telemetry != nullptr) {
    metrics_.bind_telemetry(config_.telemetry->registry());
  }

  favored_sum_.assign(static_cast<std::size_t>(config_.protocol.num_classes), 0);
  class_suppliers_.assign(static_cast<std::size_t>(config_.protocol.num_classes), 0);

  util::Rng master(config_.seed);
  lookup_rng_ = master.substream("lookup");
  down_rng_ = master.substream("down");
  departure_rng_ = master.substream("departure");
  selection_rng_ = master.substream("selection");
  util::Rng population_rng = master.substream("population");

  // Build the population: seeds first, then requesters with the paper's
  // exact class mix.
  const auto requester_classes =
      workload::build_requester_classes(config_.population, population_rng);
  peers_.resize(static_cast<std::size_t>(config_.population.seeds) +
                requester_classes.size());
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    Peer& p = peers_[i];
    p.id = core::PeerId{i};
    p.grant_rng = master.substream("grant", i);
    if (i < static_cast<std::size_t>(config_.population.seeds)) {
      p.cls = config_.population.seed_class;
    } else {
      p.cls = requester_classes[i - static_cast<std::size_t>(config_.population.seeds)];
      p.backoff.emplace(config_.protocol.t_bkf, config_.protocol.e_bkf);
    }
  }
}

StreamingSystem::Peer& StreamingSystem::peer(core::PeerId id) {
  P2PS_REQUIRE(id.valid() && id.value() < peers_.size());
  return peers_[static_cast<std::size_t>(id.value())];
}

const StreamingSystem::Peer& StreamingSystem::peer(core::PeerId id) const {
  P2PS_REQUIRE(id.valid() && id.value() < peers_.size());
  return peers_[static_cast<std::size_t>(id.value())];
}

std::int64_t StreamingSystem::capacity() const {
  return core::capacity(supplier_bandwidth_);
}

std::int64_t StreamingSystem::supplier_count() const { return suppliers_; }

const core::SupplierAdmission* StreamingSystem::supplier_state(core::PeerId id) const {
  const Peer& p = peer(id);
  return p.supplier.has_value() ? &*p.supplier : nullptr;
}

void StreamingSystem::trace_event(TraceKind kind, const Peer& p,
                                  core::SessionId session, std::int64_t detail) {
  trace_event_at(simulator_.now(), kind, p, session, detail);
}

void StreamingSystem::trace_event_at(util::SimTime t, TraceKind kind,
                                     const Peer& p, core::SessionId session,
                                     std::int64_t detail) {
  if (trace_) {
    trace_->record(TraceEvent{t, kind, p.id, p.cls, session, detail});
  }
}

template <typename Mutation>
void StreamingSystem::mutate_supplier(Peer& p, Mutation&& mutation) {
  const auto idx = static_cast<std::size_t>(p.cls - 1);
  const auto before = p.supplier->vector().lowest_favored_class();
  mutation();
  favored_sum_[idx] += p.supplier->vector().lowest_favored_class() - before;
}

void StreamingSystem::depart_supplier(Peer& p) {
  P2PS_CHECK(p.is_supplier && p.supplier.has_value() && !p.supplier->busy());
  disarm_idle_timer(p);
  lookup_->deregister_supplier(p.id);
  supplier_bandwidth_ -= core::Bandwidth::class_offer(p.cls);
  --suppliers_;
  ++departures_;
  const auto idx = static_cast<std::size_t>(p.cls - 1);
  favored_sum_[idx] -= p.supplier->vector().lowest_favored_class();
  --class_suppliers_[idx];
  p.is_supplier = false;
  p.departed = true;
  p.supplier.reset();
  trace_event(TraceKind::kDeparture, p, core::SessionId::invalid(), capacity());
}

void StreamingSystem::make_supplier(Peer& p) {
  P2PS_CHECK(!p.is_supplier && !p.departed);
  p.is_supplier = true;
  p.supplier.emplace(config_.protocol.num_classes, p.cls,
                     config_.protocol.differentiated);
  lookup_->register_supplier(p.id, p.cls);
  supplier_bandwidth_ += core::Bandwidth::class_offer(p.cls);
  ++suppliers_;
  const auto idx = static_cast<std::size_t>(p.cls - 1);
  favored_sum_[idx] += p.supplier->vector().lowest_favored_class();
  ++class_suppliers_[idx];
  arm_idle_timer(p);
  trace_event(TraceKind::kBecameSupplier, p, core::SessionId::invalid(), capacity());
}

void StreamingSystem::arm_idle_timer(Peer& p) {
  arm_idle_timer_at(p, simulator_.now() + config_.protocol.t_out);
}

void StreamingSystem::arm_idle_timer_at(Peer& p, util::SimTime deadline) {
  // Timers only exist where the protocol can still change: DAC mode with a
  // not-yet-fully-relaxed vector.
  if (!config_.protocol.differentiated ||
      (p.supplier.has_value() && p.supplier->vector().fully_relaxed())) {
    disarm_idle_timer(p);
    return;
  }
  P2PS_CHECK(p.supplier.has_value());
  // Rearm keeps the handle and callback — the hot path (one per released
  // supplier per session) is a deadline update, which under the lazy
  // strategy costs no event-list traffic at all.
  if (timers_.rearm_at(p.idle_timer, deadline)) return;
  const core::PeerId id = p.id;
  p.idle_timer = timers_.arm_at(
      deadline, [this, id](util::SimTime at) { on_idle_timeout(id, at); });
}

void StreamingSystem::disarm_idle_timer(Peer& p) {
  if (p.idle_timer.valid()) {
    timers_.cancel(p.idle_timer);
    p.idle_timer = sim::TimerId::invalid();
  }
}

void StreamingSystem::on_idle_timeout(core::PeerId id, util::SimTime at) {
  Peer& p = peer(id);
  p.idle_timer = sim::TimerId::invalid();
  P2PS_CHECK(p.supplier.has_value() && !p.supplier->busy());
  mutate_supplier(p, [&] { p.supplier->on_idle_timeout(); });
  trace_event_at(at, TraceKind::kIdleElevation, p);
  // The chain anchors at the deadline, NOT the clock: a lazily delivered
  // elevation must schedule the next one exactly where the event-per-timer
  // baseline would have (and if that instant has already passed, the timer
  // fires during this same poll, catching the chain up step by step).
  arm_idle_timer_at(p, at + config_.protocol.t_out);
}

void StreamingSystem::first_request(core::PeerId id) {
  timers_.poll();  // deadline-check-on-entry: see docs/timers.md
  Peer& p = peer(id);
  p.first_request_time = simulator_.now();
  metrics_.on_first_request(p.cls);
  trace_event(TraceKind::kFirstRequest, p);
  attempt_admission(id);
}

void StreamingSystem::attempt_admission(core::PeerId id) {
  // Every handler fires due idle timers before reading supplier state, so
  // the probes below always see vectors as of this instant — regardless of
  // which timer strategy delivers the elevations (docs/timers.md).
  timers_.poll();
  Peer& p = peer(id);
  P2PS_CHECK(!p.admitted && !p.is_supplier);
  metrics_.on_attempt(p.cls);

  // All per-attempt buffers are members, reused across calls: at paper
  // scale this path runs millions of times and dominates the run, so the
  // steady state must not allocate.
  std::vector<lookup::CandidateInfo>& candidates = scratch_candidates_;
  lookup_->candidates_into(candidates, config_.protocol.m_candidates, lookup_rng_,
                           p.id);
  trace_event(TraceKind::kAttempt, p, core::SessionId::invalid(),
              static_cast<std::int64_t>(candidates.size()));

  std::vector<lookup::CandidateInfo>& granted = scratch_granted_;
  std::vector<core::PeerClass>& granted_classes = scratch_granted_classes_;
  std::vector<core::BusyCandidate>& busy = scratch_busy_;
  std::vector<core::PeerId>& busy_ids = scratch_busy_ids_;
  granted.clear();
  granted_classes.clear();
  busy.clear();
  busy_ids.clear();
  for (const auto& candidate : candidates) {
    if (config_.peer_down_probability > 0.0 &&
        down_rng_.bernoulli(config_.peer_down_probability)) {
      continue;  // transiently unreachable: neither grants nor reminders
    }
    Peer& s = peer(candidate.id);
    P2PS_CHECK(s.supplier.has_value());
    const core::ProbeOutcome outcome = s.supplier->handle_probe(p.cls, s.grant_rng);
    switch (outcome.reply) {
      case core::ProbeReply::kGranted:
        granted.push_back(candidate);
        granted_classes.push_back(candidate.cls);
        break;
      case core::ProbeReply::kBusy:
        busy.push_back(core::BusyCandidate{busy_ids.size(), candidate.cls,
                                           outcome.favors_requester});
        busy_ids.push_back(candidate.id);
        break;
      case core::ProbeReply::kDenied:
        break;
    }
  }

  core::SelectionResult& selection = scratch_selection_;
  core::SelectionContext selection_context;
  selection_context.requester_class = p.cls;
  selection_context.rng = &selection_rng_;
  config_.selection_policy->select_into(selection, granted_classes,
                                        core::Bandwidth::playback_rate(),
                                        selection_context);

  if (selection.success()) {
    // ---- admitted: start the streaming session ----
    ActiveSession session;
    session.id = core::SessionId{next_session_++};
    session.requester = p.id;
    std::vector<core::PeerClass>& session_classes = scratch_session_classes_;
    session_classes.clear();
    session.suppliers.reserve(selection.chosen.size());
    for (std::size_t pick : selection.chosen) {
      Peer& s = peer(granted[pick].id);
      disarm_idle_timer(s);
      s.supplier->on_session_start();
      session.suppliers.push_back(s.id);
      session_classes.push_back(s.cls);
    }
    // Granted-but-unchosen candidates were never committed; in the
    // session-level model their grant expires instantly.

    // The paper's media-data assignment for this supplier set; its delay is
    // the session's buffering delay (Theorem 1: == supplier count).
    const auto assignment = core::ots_assignment(session_classes);
    const std::int64_t delay_dt = assignment.min_buffering_delay_dt();
    P2PS_CHECK(delay_dt == core::theorem1_min_delay_dt(session_classes.size()));
    if (config_.validate_invariants) {
      // Media-level cross-check: replay the schedule's segment arrivals for
      // two windows and confirm continuous playback at exactly this delay.
      const auto buffer =
          assignment.simulate_arrivals(config_.segment_duration, 2);
      P2PS_CHECK_MSG(
          buffer.check(config_.segment_duration * delay_dt).feasible,
          "session schedule underflows at its Theorem-1 delay");
    }

    p.admitted = true;
    p.in_service = true;
    metrics_.on_admission(p.cls, p.backoff->rejections(), delay_dt,
                          simulator_.now() - p.first_request_time);
    trace_event(TraceKind::kAdmission, p, session.id, delay_dt);

    const core::SessionId session_id = session.id;
    sessions_.emplace(session_id, std::move(session));
    simulator_.schedule_after(config_.session_duration,
                              [this, session_id] { end_session(session_id); });
    return;
  }

  // ---- rejected ----
  metrics_.on_rejection(p.cls);
  std::int64_t reminders_left = 0;
  if (config_.protocol.differentiated && config_.protocol.reminders_enabled) {
    std::vector<std::size_t>& omega = scratch_omega_;
    core::reminder_set_into(omega, busy, selection.shortfall);
    for (std::size_t index : omega) {
      peer(busy_ids[index]).supplier->leave_reminder(p.cls);
    }
    reminders_left = static_cast<std::int64_t>(omega.size());
  }
  trace_event(TraceKind::kRejection, p, core::SessionId::invalid(), reminders_left);
  retries_.schedule(p.backoff->on_rejected(), p.id);
}

void StreamingSystem::end_session(core::SessionId id) {
  timers_.poll();
  const auto it = sessions_.find(id);
  P2PS_CHECK(it != sessions_.end());
  const ActiveSession session = std::move(it->second);
  sessions_.erase(it);

  for (core::PeerId supplier_id : session.suppliers) {
    Peer& s = peer(supplier_id);
    mutate_supplier(s, [&] { s.supplier->on_session_end(); });
    if (config_.supplier_departure_probability > 0.0 &&
        departure_rng_.bernoulli(config_.supplier_departure_probability)) {
      depart_supplier(s);
    } else {
      arm_idle_timer(s);
    }
  }

  Peer& requester = peer(session.requester);
  P2PS_CHECK(requester.in_service);
  requester.in_service = false;
  trace_event(TraceKind::kSessionEnd, requester, session.id,
              static_cast<std::int64_t>(session.suppliers.size()));
  if (config_.defection_probability > 0.0 &&
      departure_rng_.bernoulli(config_.defection_probability)) {
    // Broken commitment: it gained admission with its pledged class but
    // will supply only the minimum from now on.
    requester.cls = config_.protocol.num_classes;
  }
  make_supplier(requester);  // play-while-downloading: it now owns the file
  ++sessions_completed_;
}

void StreamingSystem::take_sample(util::SimTime t) {
  timers_.poll();
  metrics_.hourly_sample(t, capacity(), active_sessions(), suppliers_);
  if (config_.validate_invariants) check_invariants();
  if (config_.telemetry != nullptr && config_.telemetry->snapshot_due()) {
    obs::Registry& registry = config_.telemetry->registry();
    publish_event_core(registry, simulator_);
    publish_timer_service(registry, timers_);
    registry.gauge("suppliers")->set(suppliers_);
    registry.gauge("sessions_active")->set(active_sessions());
    registry.gauge("capacity_units")->set(capacity());
    config_.telemetry->snapshot(t.as_millis());
  }
}

void StreamingSystem::take_favored_sample(util::SimTime t) {
  // The favored sums are mutated by idle elevations; fire every elevation
  // due by `t` before reading them, or the lazy strategies would sample
  // stale aggregates.
  timers_.poll();
  // O(num_classes): the per-class sums are maintained incrementally at
  // every vector mutation (make/depart/mutate_supplier). The sums are
  // integers, so the averages are bit-identical to the full-population
  // scan this replaced (see check_invariants for the recount cross-check).
  const auto k = static_cast<std::size_t>(config_.protocol.num_classes);
  metrics::FavoredSample sample;
  sample.t = t;
  sample.avg_lowest_favored.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    sample.avg_lowest_favored[i] =
        class_suppliers_[i] > 0
            ? static_cast<double>(favored_sum_[i]) /
                  static_cast<double>(class_suppliers_[i])
            : std::nan("");
  }
  metrics_.favored_sample(std::move(sample));
}

void StreamingSystem::check_invariants() const {
  // Capacity ledger and the incremental Figure-7 aggregates both match a
  // from-scratch recount.
  core::Bandwidth recount = core::Bandwidth::zero();
  std::int64_t supplier_recount = 0;
  std::int64_t busy_recount = 0;
  const auto k = static_cast<std::size_t>(config_.protocol.num_classes);
  std::vector<std::int64_t> favored_recount(k, 0);
  std::vector<std::int64_t> class_recount(k, 0);
  for (const Peer& p : peers_) {
    if (p.is_supplier) {
      recount += core::Bandwidth::class_offer(p.cls);
      ++supplier_recount;
      if (p.supplier->busy()) ++busy_recount;
      const auto idx = static_cast<std::size_t>(p.cls - 1);
      favored_recount[idx] += p.supplier->vector().lowest_favored_class();
      ++class_recount[idx];
    } else {
      P2PS_CHECK_MSG(!p.supplier.has_value(), "non-supplier carrying supplier state");
    }
  }
  P2PS_CHECK_MSG(recount == supplier_bandwidth_, "capacity ledger drifted");
  P2PS_CHECK_MSG(supplier_recount == suppliers_, "supplier count drifted");
  P2PS_CHECK_MSG(favored_recount == favored_sum_,
                 "incremental favored-class sums drifted");
  P2PS_CHECK_MSG(class_recount == class_suppliers_,
                 "incremental per-class supplier counts drifted");
  P2PS_CHECK_MSG(static_cast<std::size_t>(supplier_recount) ==
                     lookup_->supplier_count(),
                 "lookup registry out of sync");

  // Every active session holds distinct, busy suppliers whose offers sum to
  // exactly R0; every busy supplier belongs to exactly one session.
  std::int64_t session_supplier_total = 0;
  for (const auto& [sid, session] : sessions_) {
    core::Bandwidth sum = core::Bandwidth::zero();
    for (core::PeerId supplier_id : session.suppliers) {
      const Peer& s = peer(supplier_id);
      P2PS_CHECK_MSG(s.supplier->busy(), "session supplier not busy");
      sum += core::Bandwidth::class_offer(s.cls);
    }
    P2PS_CHECK_MSG(sum == core::Bandwidth::playback_rate(),
                   "session bandwidth != R0");
    session_supplier_total += static_cast<std::int64_t>(session.suppliers.size());
    P2PS_CHECK_MSG(peer(session.requester).in_service, "requester not in service");
  }
  P2PS_CHECK_MSG(busy_recount == session_supplier_total,
                 "busy suppliers do not match active sessions");
}

SimulationResult StreamingSystem::run() {
  P2PS_REQUIRE_MSG(!ran_, "run() may be called only once");
  ran_ = true;

  // Seeds come online at t = 0.
  for (std::int64_t i = 0; i < config_.population.seeds; ++i) {
    make_supplier(peers_[static_cast<std::size_t>(i)]);
  }

  // First-time requests arrive through a lazy, self-rescheduling source:
  // one in-flight event instead of an O(population) t=0 event-list build
  // (see engine/arrival_source.hpp for the ordering argument).
  util::Rng arrival_rng = util::Rng(config_.seed).substream("arrivals");
  auto schedule =
      config_.randomize_arrivals
          ? workload::ArrivalSchedule::make_sampled(config_.pattern,
                                                    config_.population.requesters,
                                                    config_.arrival_window, arrival_rng)
          : workload::ArrivalSchedule::make(config_.pattern,
                                            config_.population.requesters,
                                            config_.arrival_window);
  const std::int64_t first_requester = config_.population.seeds;
  ArrivalSource arrivals(simulator_, std::move(schedule),
                         [this, first_requester](std::int64_t index) {
                           first_request(core::PeerId{static_cast<std::uint64_t>(
                               first_requester + index)});
                         });
  arrivals.start();

  // Metric sampling: a snapshot at t=0, then periodically to the horizon.
  take_sample(util::SimTime::zero());
  take_favored_sample(util::SimTime::zero());
  sim::Periodic sampler(simulator_, config_.sample_interval, config_.sample_interval,
                        [this](util::SimTime t) { take_sample(t); });
  sim::Periodic favored_sampler(
      simulator_, config_.favored_sample_interval, config_.favored_sample_interval,
      [this](util::SimTime t) { take_favored_sample(t); });

  simulator_.run_until(config_.horizon);
  sampler.stop();
  favored_sampler.stop();
  // Fire any timers due by the horizon that no handler touched (the lazy
  // sweep may still be a fraction of a period away), so the end-of-run
  // state below is identical across timer strategies.
  timers_.poll();

  P2PS_CHECK_MSG(arrivals.done(), "horizon covers the arrival window, so "
                                  "every first request must have fired");
  if (config_.validate_invariants) check_invariants();

  SimulationResult result;
  result.num_classes = config_.protocol.num_classes;
  result.hourly = metrics_.hourly();
  result.favored = metrics_.favored();
  result.totals.reserve(static_cast<std::size_t>(config_.protocol.num_classes));
  for (core::PeerClass c = 1; c <= config_.protocol.num_classes; ++c) {
    result.totals.push_back(metrics_.totals(c));
  }
  result.overall = metrics_.overall();
  result.final_capacity = capacity();
  result.max_capacity = workload::max_possible_capacity(config_.population);
  result.suppliers_at_end = suppliers_;
  result.sessions_completed = sessions_completed_;
  result.sessions_active_at_end = active_sessions();
  result.suppliers_departed = departures_;
  result.events_executed = simulator_.executed_count();
  result.peak_event_list =
      static_cast<std::int64_t>(simulator_.peak_pending_count());
  result.peak_event_list_timers =
      static_cast<std::int64_t>(simulator_.peak_pending_timers());
  if (const auto* chord = dynamic_cast<const lookup::ChordLookup*>(lookup_.get())) {
    result.lookup_routed = chord->stats().lookups;
    result.lookup_mean_hops = chord->stats().mean_hops();
  }
  return result;
}

}  // namespace p2ps::engine
