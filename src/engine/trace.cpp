#include "engine/trace.hpp"

#include <algorithm>
#include <ostream>

#include "util/assert.hpp"
#include "util/table.hpp"

namespace p2ps::engine {

std::string_view to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kFirstRequest: return "first-request";
    case TraceKind::kAttempt: return "attempt";
    case TraceKind::kRejection: return "rejection";
    case TraceKind::kAdmission: return "admission";
    case TraceKind::kSessionEnd: return "session-end";
    case TraceKind::kBecameSupplier: return "became-supplier";
    case TraceKind::kDeparture: return "departure";
    case TraceKind::kIdleElevation: return "idle-elevation";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const TraceEvent& event) {
  os << "t=" << util::format_double(event.t.as_hours(), 3) << "h "
     << to_string(event.kind) << " peer=" << event.peer.value() << " class="
     << event.cls;
  if (event.session.valid()) os << " session=" << event.session.value();
  os << " detail=" << event.detail;
  return os;
}

TraceLog::TraceLog(std::size_t capacity) : capacity_(capacity) {
  P2PS_REQUIRE(capacity > 0);
  ring_.reserve(capacity);
}

void TraceLog::record(TraceEvent event) {
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  ring_[next_] = event;
  next_ = (next_ + 1) % capacity_;
  wrapped_ = true;
}

std::size_t TraceLog::size() const { return ring_.size(); }

std::uint64_t TraceLog::dropped() const {
  return recorded_ - static_cast<std::uint64_t>(ring_.size());
}

std::vector<TraceEvent> TraceLog::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (!wrapped_) {
    out = ring_;
  } else {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  }
  return out;
}

std::vector<TraceEvent> TraceLog::journey(core::PeerId peer) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : events()) {
    if (event.peer == peer) out.push_back(event);
  }
  return out;
}

std::size_t TraceLog::count(TraceKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(ring_.begin(), ring_.end(),
                    [kind](const TraceEvent& e) { return e.kind == kind; }));
}

}  // namespace p2ps::engine
