#include "engine/sharded_system.hpp"

#include <algorithm>
#include <utility>

#include "core/ots.hpp"
#include "engine/result.hpp"
#include "util/assert.hpp"

namespace p2ps::engine {

namespace {

/// Validation must precede member construction (the router and the
/// lookahead both consume latency bounds in the initializer list).
ShardedConfig validated(ShardedConfig config) {
  config.validate();
  return config;
}

}  // namespace

// ---------------------------------------------------------------------------
// Config / totals
// ---------------------------------------------------------------------------

void ShardedConfig::validate() const {
  workload::validate(population);
  P2PS_REQUIRE(population.num_classes == protocol.num_classes);
  P2PS_REQUIRE(protocol.m_candidates > 0);
  P2PS_REQUIRE(arrival_window > util::SimTime::zero());
  P2PS_REQUIRE(horizon >= arrival_window);
  P2PS_REQUIRE(session_duration > util::SimTime::zero());
  latency.validate();
  P2PS_REQUIRE_MSG(latency.min_latency() >= util::SimTime::millis(1),
                   "sharded runs need a nonzero minimum latency — it is the "
                   "conservative lookahead");
  P2PS_REQUIRE(loss >= 0.0 && loss <= 1.0);
  P2PS_REQUIRE_MSG(response_timeout > 2 * latency.max_latency(),
                   "a probe->grant round trip must fit inside the response "
                   "window, so silent-busy is the only cause of missing "
                   "replies under zero loss");
  P2PS_REQUIRE_MSG(hold_timeout > response_timeout + 2 * latency.max_latency(),
                   "holds must outlive the requester's response window plus "
                   "a commit flight, or commits would race their own expiry");
  P2PS_REQUIRE(shards >= 1);
  P2PS_REQUIRE(threads >= 1);
  P2PS_REQUIRE_MSG(sample_interval > response_timeout &&
                       sample_interval > latency.max_latency(),
                   "samplers are armed one full interval ahead; the interval "
                   "must dominate every message/deadline horizon so the "
                   "sampler always wins same-tick seq races (docs/sharding.md)");
  P2PS_REQUIRE_MSG(selection_policy != nullptr,
                   "ShardedConfig.selection_policy must not be null");
}

ShardedClassTotals& ShardedClassTotals::operator+=(const ShardedClassTotals& other) {
  first_requests += other.first_requests;
  attempts += other.attempts;
  admissions += other.admissions;
  rejections += other.rejections;
  delay_dt_sum += other.delay_dt_sum;
  rejections_at_admission_sum += other.rejections_at_admission_sum;
  waiting_ms_sum += other.waiting_ms_sum;
  return *this;
}

// ---------------------------------------------------------------------------
// Directory
// ---------------------------------------------------------------------------

void ShardedSystem::Directory::enqueue(util::SimTime visible, core::PeerId peer,
                                       core::PeerClass cls) {
  pending_heap_.push_back(Entry{visible, peer, cls});
  std::push_heap(pending_heap_.begin(), pending_heap_.end(), Later{});
}

void ShardedSystem::Directory::flush_due(util::SimTime through) {
  while (!pending_heap_.empty() && pending_heap_.front().visible <= through) {
    std::pop_heap(pending_heap_.begin(), pending_heap_.end(), Later{});
    const Entry entry = pending_heap_.back();
    pending_heap_.pop_back();
    // The flushed prefix must stay totally ordered by (visible, peer):
    // within one flush the heap pops in order, and across flushes every
    // later join is visible strictly after the previous flush bound
    // (conservative lookahead — see docs/sharding.md).
    P2PS_CHECK_MSG(
        flushed_.empty() || flushed_.back().visible < entry.visible ||
            (flushed_.back().visible == entry.visible &&
             flushed_.back().peer.value() < entry.peer.value()),
        "directory join published out of canonical (visible, peer) order");
    flushed_.push_back(entry);
  }
}

std::size_t ShardedSystem::Directory::visible_count(int shard, util::SimTime at) {
  std::size_t& cursor = cursors_[static_cast<std::size_t>(shard)];
  while (cursor < flushed_.size() && flushed_[cursor].visible <= at) ++cursor;
  return cursor;
}

// ---------------------------------------------------------------------------
// Shard
// ---------------------------------------------------------------------------

struct ShardedSystem::Shard {
  int index;
  sim::Simulator sim;
  /// Lazy sources — one pending event each for the whole population
  /// (declared after `sim`, destroyed before it).
  RetrySource retries;
  SessionEndCalendar<Deadline> deadlines;
  SessionEndCalendar<SessionEnd> ends;
  std::unique_ptr<sim::Periodic> sampler;

  std::vector<LocalPeer> peers;
  /// In-flight attempt pool (slab + free list; replies keep capacity).
  std::vector<Attempt> attempts;
  std::uint32_t attempt_free = kNoAttempt;
  /// Next global arrival index owned by this shard (stride = shard count).
  std::int64_t next_arrival = 0;

  // Thread-confined scratch (one shard = one worker during a window).
  core::SelectionResult selection;
  std::vector<core::PeerClass> classes_scratch;
  std::vector<std::size_t> indices_scratch;

  // Per-shard integer sums, merged at the end of the run.
  std::vector<ShardedClassTotals> totals;
  std::vector<ShardedSample> samples;
  std::int64_t capacity_units = 0;
  std::int64_t suppliers = 0;
  std::int64_t sessions_active = 0;
  std::int64_t sessions_completed = 0;
  std::int64_t hold_expirations = 0;
  std::int64_t watchdog_recoveries = 0;
  std::uint64_t sent = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delivered = 0;

  Shard(ShardedSystem& system, int index)
      : index(index),
        sim(system.config_.event_list),
        retries(sim,
                [&system, this](core::PeerId peer) {
                  system.start_attempt(*this, system.local_index(peer));
                }),
        deadlines(sim,
                  [&system, this](Deadline&& deadline) {
                    LocalPeer& p = peers[deadline.peer_local];
                    if (p.attempt == kNoAttempt ||
                        p.attempt_epoch != deadline.epoch) {
                      return;  // the attempt concluded first — stale
                    }
                    system.conclude_attempt(*this, deadline.peer_local);
                  }),
        ends(sim, [&system, this](SessionEnd&& end) {
          system.finish_session(*this, std::move(end));
        }) {
    totals.resize(static_cast<std::size_t>(system.config_.protocol.num_classes));
  }
};

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

ShardedSystem::ShardedSystem(ShardedConfig config)
    : config_(validated(std::move(config))),
      lookahead_(config_.latency.min_latency()),
      arrivals_(workload::ArrivalSchedule::make(config_.pattern,
                                                config_.population.requesters,
                                                config_.arrival_window)),
      router_(config_.shards, lookahead_),
      directory_(config_.shards),
      join_buffers_(static_cast<std::size_t>(config_.shards)) {
  total_peers_ = config_.population.seeds + config_.population.requesters;

  // Everything global is derived before sharding, so it is identical for
  // every shard count: the class mix (one "population" substream draw
  // sequence), the arrival schedule, and each peer's private random
  // universe (a named per-peer substream of the master seed).
  util::Rng master(config_.seed);
  util::Rng population_rng = master.substream("population");
  requester_classes_ =
      workload::build_requester_classes(config_.population, population_rng);

  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(*this, s));
    Shard& shard = *shards_.back();
    const auto owned =
        (total_peers_ - s + config_.shards - 1) / config_.shards;
    shard.peers.reserve(static_cast<std::size_t>(std::max<std::int64_t>(owned, 0)));
    shard.next_arrival = ((s - config_.population.seeds) % config_.shards +
                          config_.shards) %
                         config_.shards;
  }
  for (std::int64_t p = 0; p < total_peers_; ++p) {
    const core::PeerId peer{static_cast<std::uint64_t>(p)};
    Shard& shard = *shards_[static_cast<std::size_t>(shard_of(peer))];
    shard.peers.emplace_back(config_, master.substream("peer", peer.value()),
                             class_of(peer));
  }
  for (int s = 0; s < config_.shards; ++s) {
    Shard& shard = *shards_[static_cast<std::size_t>(s)];
    router_.bind(s, shard.sim, [this, &shard](const Envelope& envelope) {
      on_deliver(shard, envelope);
    });
  }
}

ShardedSystem::~ShardedSystem() = default;

// ---------------------------------------------------------------------------
// Id plumbing
// ---------------------------------------------------------------------------

int ShardedSystem::shard_of(core::PeerId peer) const {
  return static_cast<int>(peer.value() %
                          static_cast<std::uint64_t>(config_.shards));
}

core::PeerClass ShardedSystem::class_of(core::PeerId peer) const {
  const auto p = static_cast<std::int64_t>(peer.value());
  if (p < config_.population.seeds) return config_.population.seed_class;
  return requester_classes_[static_cast<std::size_t>(p - config_.population.seeds)];
}

core::PeerId ShardedSystem::global_id(int shard, std::uint32_t local) const {
  return core::PeerId{static_cast<std::uint64_t>(local) *
                          static_cast<std::uint64_t>(config_.shards) +
                      static_cast<std::uint64_t>(shard)};
}

std::uint32_t ShardedSystem::local_index(core::PeerId peer) const {
  return static_cast<std::uint32_t>(peer.value() /
                                    static_cast<std::uint64_t>(config_.shards));
}

// ---------------------------------------------------------------------------
// Attempt pool
// ---------------------------------------------------------------------------

std::uint32_t ShardedSystem::acquire_attempt(Shard& shard) {
  if (shard.attempt_free != kNoAttempt) {
    const std::uint32_t index = shard.attempt_free;
    shard.attempt_free = shard.attempts[index].next_free;
    shard.attempts[index].replies.clear();  // capacity kept
    return index;
  }
  shard.attempts.emplace_back();
  return static_cast<std::uint32_t>(shard.attempts.size() - 1);
}

void ShardedSystem::release_attempt(Shard& shard, std::uint32_t index) {
  shard.attempts[index].next_free = shard.attempt_free;
  shard.attempt_free = index;
}

// ---------------------------------------------------------------------------
// Messaging
// ---------------------------------------------------------------------------

void ShardedSystem::send(Shard& shard, LocalPeer& from, core::PeerId to, Msg msg) {
  ++shard.sent;
  // Sender-side draws, in a fixed order: drop first, latency only if kept —
  // all on the sender's private stream, so the draw sequence is a property
  // of the peer's own trajectory, never of shard layout.
  if (config_.loss > 0.0 && from.rng.bernoulli(config_.loss)) {
    ++shard.dropped;
    return;
  }
  const util::SimTime now = shard.sim.now();
  const util::SimTime latency =
      config_.latency.sample(from.cls, class_of(to), from.rng);
  Envelope envelope;
  envelope.from = global_id(shard.index, static_cast<std::uint32_t>(&from - shard.peers.data()));
  envelope.to = to;
  envelope.sent_at = now;
  envelope.deliver_at = now + latency;
  envelope.seq = from.send_seq++;
  envelope.payload = msg;
  router_.send(shard.index, std::move(envelope));
}

void ShardedSystem::on_deliver(Shard& shard, const Envelope& envelope) {
  // Deadline-check-on-drain: every requester deadline due at or before
  // this tick fires before any same-tick delivery, so a grant arriving
  // exactly at its deadline tick is deterministically late for every
  // partitioning (docs/sharding.md).
  shard.deadlines.poll();
  ++shard.delivered;
  LocalPeer& to = shard.peers[local_index(envelope.to)];
  const Msg& msg = envelope.payload;
  switch (msg.kind) {
    case MsgKind::kProbe:
      on_probe(shard, to, envelope);
      return;
    case MsgKind::kGrant:
      on_grant(shard, to, envelope);
      return;
    case MsgKind::kCommit:
      purge_supplier(shard, to, shard.sim.now());
      if (to.status == SupplierStatus::kHeld && to.held_session == msg.session) {
        to.status = SupplierStatus::kCommitted;
        // Self-recovery if the teardown is lost: a session cannot engage a
        // supplier for much longer than the show time plus control slack.
        to.hold_expiry = shard.sim.now() + config_.session_duration +
                         4 * config_.hold_timeout;
      }
      // Else: the hold expired (or was re-granted) before the commit
      // landed — the requester counts a supplier it does not have, the
      // same documented race as the async engine's, only under loss.
      return;
    case MsgKind::kRelease:
      purge_supplier(shard, to, shard.sim.now());
      if (to.status == SupplierStatus::kHeld && to.held_session == msg.session) {
        to.status = SupplierStatus::kFree;
      }
      return;
    case MsgKind::kEnd:
      purge_supplier(shard, to, shard.sim.now());
      if (to.status == SupplierStatus::kCommitted &&
          to.held_session == msg.session) {
        to.status = SupplierStatus::kFree;
      }
      return;
  }
  P2PS_CHECK_MSG(false, "unreachable message kind");
}

void ShardedSystem::purge_supplier(Shard& shard, LocalPeer& peer, util::SimTime now) {
  if (peer.status == SupplierStatus::kHeld && peer.hold_expiry <= now) {
    peer.status = SupplierStatus::kFree;
    ++shard.hold_expirations;
  } else if (peer.status == SupplierStatus::kCommitted && peer.hold_expiry <= now) {
    peer.status = SupplierStatus::kFree;
    ++shard.watchdog_recoveries;
  }
}

void ShardedSystem::on_probe(Shard& shard, LocalPeer& to, const Envelope& envelope) {
  P2PS_CHECK_MSG(to.status != SupplierStatus::kNone,
                 "probe delivered to a peer the directory never listed");
  purge_supplier(shard, to, shard.sim.now());
  if (to.status != SupplierStatus::kFree) return;  // silent busy
  to.status = SupplierStatus::kHeld;
  to.held_session = envelope.payload.session;
  to.hold_expiry = shard.sim.now() + config_.hold_timeout;
  send(shard, to, envelope.from,
       Msg{MsgKind::kGrant, to.cls, envelope.payload.session});
}

void ShardedSystem::on_grant(Shard& shard, LocalPeer& to, const Envelope& envelope) {
  if (to.attempt == kNoAttempt) return;  // concluded — deterministically late
  Attempt& attempt = shard.attempts[to.attempt];
  if (attempt.session != envelope.payload.session) return;  // stale attempt
  attempt.replies.push_back(Reply{envelope.from, envelope.payload.cls});
  if (attempt.replies.size() == attempt.probed) {
    conclude_attempt(shard, attempt.peer_local);
  }
}

// ---------------------------------------------------------------------------
// Requester lifecycle
// ---------------------------------------------------------------------------

void ShardedSystem::first_request(Shard& shard, std::uint32_t local) {
  LocalPeer& p = shard.peers[local];
  p.first_request_time = shard.sim.now();
  ++shard.totals[static_cast<std::size_t>(p.cls - 1)].first_requests;
  start_attempt(shard, local);
}

void ShardedSystem::start_attempt(Shard& shard, std::uint32_t local) {
  LocalPeer& p = shard.peers[local];
  P2PS_CHECK(!p.admitted && p.attempt == kNoAttempt &&
             p.status == SupplierStatus::kNone);
  ++p.attempt_epoch;
  P2PS_CHECK_MSG(p.attempt_epoch < (1u << 20), "attempt epoch overflow");
  ++shard.totals[static_cast<std::size_t>(p.cls - 1)].attempts;

  const util::SimTime now = shard.sim.now();
  const core::PeerId self = global_id(shard.index, local);
  const std::uint64_t session =
      (self.value() << 20) | static_cast<std::uint64_t>(p.attempt_epoch);

  // Candidate lookup against the visible prefix of the global directory
  // (joins become visible one lookahead window after they happen), sampled
  // with the requester's own stream.
  const std::size_t visible = directory_.visible_count(shard.index, now);
  const std::size_t m = std::min(config_.protocol.m_candidates, visible);
  if (m == 0) {
    // No supplier is visible yet (cannot happen once seeds are registered,
    // but stay total): an immediate rejection with normal backoff.
    ++shard.totals[static_cast<std::size_t>(p.cls - 1)].rejections;
    ++p.attempt_epoch;
    shard.retries.schedule(p.backoff.on_rejected(), self);
    return;
  }
  p.rng.sample_indices_into(shard.indices_scratch, visible, m);

  const std::uint32_t index = acquire_attempt(shard);
  Attempt& attempt = shard.attempts[index];
  attempt.session = session;
  attempt.peer_local = local;
  attempt.probed = static_cast<std::uint32_t>(m);
  p.attempt = index;
  for (const std::size_t candidate : shard.indices_scratch) {
    send(shard, p, directory_.at(candidate).peer,
         Msg{MsgKind::kProbe, p.cls, session});
  }
  shard.deadlines.schedule(now + config_.response_timeout,
                           Deadline{local, p.attempt_epoch});
}

void ShardedSystem::conclude_attempt(Shard& shard, std::uint32_t local) {
  LocalPeer& p = shard.peers[local];
  const std::uint32_t index = p.attempt;
  Attempt& attempt = shard.attempts[index];
  const util::SimTime now = shard.sim.now();
  const core::PeerId self = global_id(shard.index, local);
  auto& totals = shard.totals[static_cast<std::size_t>(p.cls - 1)];

  shard.classes_scratch.clear();
  for (const Reply& reply : attempt.replies) {
    shard.classes_scratch.push_back(reply.cls);
  }
  const core::SelectionContext context{p.cls, &p.rng};
  config_.selection_policy->select_into(shard.selection, shard.classes_scratch,
                                        core::Bandwidth::playback_rate(), context);

  if (shard.selection.success()) {
    p.admitted = true;
    ++shard.sessions_active;
    ++totals.admissions;
    totals.rejections_at_admission_sum += p.backoff.rejections();
    totals.waiting_ms_sum += (now - p.first_request_time).as_millis();

    SessionEnd end;
    end.peer_local = local;
    end.session = attempt.session;
    end.suppliers.reserve(shard.selection.chosen.size());
    // Commit the chosen suppliers and release the rest, in reply order —
    // the canonical delivery order, identical for every partitioning.
    for (std::size_t r = 0; r < attempt.replies.size(); ++r) {
      const bool chosen = std::find(shard.selection.chosen.begin(),
                                    shard.selection.chosen.end(),
                                    r) != shard.selection.chosen.end();
      send(shard, p, attempt.replies[r].from,
           Msg{chosen ? MsgKind::kCommit : MsgKind::kRelease, p.cls,
               attempt.session});
      if (chosen) end.suppliers.push_back(attempt.replies[r].from);
    }
    // Theorem-1 buffering delay of the chosen classes (OTS assignment).
    shard.classes_scratch.clear();
    for (const std::size_t r : shard.selection.chosen) {
      shard.classes_scratch.push_back(attempt.replies[r].cls);
    }
    totals.delay_dt_sum +=
        core::ots_assignment(shard.classes_scratch).min_buffering_delay_dt();
    shard.ends.schedule(now + config_.session_duration, std::move(end));
  } else {
    ++totals.rejections;
    for (const Reply& reply : attempt.replies) {
      send(shard, p, reply.from,
           Msg{MsgKind::kRelease, p.cls, attempt.session});
    }
    shard.retries.schedule(p.backoff.on_rejected(), self);
  }

  p.attempt = kNoAttempt;
  ++p.attempt_epoch;  // parks any pending deadline as stale
  release_attempt(shard, index);
}

void ShardedSystem::finish_session(Shard& shard, SessionEnd&& end) {
  LocalPeer& p = shard.peers[end.peer_local];
  // Teardown: one EndSession per supplier (loss is survivable — every
  // committed supplier also runs a lazy session watchdog).
  for (const core::PeerId supplier : end.suppliers) {
    send(shard, p, supplier, Msg{MsgKind::kEnd, p.cls, end.session});
  }
  --shard.sessions_active;
  ++shard.sessions_completed;
  make_supplier(shard, end.peer_local);
}

void ShardedSystem::make_supplier(Shard& shard, std::uint32_t local) {
  LocalPeer& p = shard.peers[local];
  P2PS_CHECK(p.status == SupplierStatus::kNone);
  p.status = SupplierStatus::kFree;
  shard.capacity_units += core::Bandwidth::class_offer(p.cls).units();
  ++shard.suppliers;
  // Probe-visible exactly one lookahead window from now: late enough that
  // no query in the current window can see it (partition-independence),
  // as tight as the conservative protocol allows.
  join_buffers_[static_cast<std::size_t>(shard.index)].push_back(
      Directory::Entry{shard.sim.now() + lookahead_,
                       global_id(shard.index, local), p.cls});
}

void ShardedSystem::take_sample(Shard& shard, util::SimTime t) {
  // Deterministic tie rule: session ends due at or before the sample tick
  // finish before the sample reads capacity/active counts.
  shard.ends.poll();
  shard.samples.push_back(ShardedSample{t, shard.capacity_units,
                                        shard.sessions_active, shard.suppliers});
}

// ---------------------------------------------------------------------------
// Run
// ---------------------------------------------------------------------------

namespace {

/// Arms shard-strided lazy arrivals: one in-flight event per shard walks
/// the global schedule with stride = shard count (re-arm before invoke,
/// the ArrivalSource ordering argument).
void arm_arrival(const workload::ArrivalSchedule& schedule, sim::Simulator& sim,
                 std::int64_t& next, int stride,
                 const std::function<void(std::int64_t)>& on_arrival) {
  if (next >= schedule.total()) return;
  sim.schedule_at(schedule.arrival_at(next),
                  [&schedule, &sim, &next, stride, &on_arrival] {
                    const std::int64_t index = next;
                    next += stride;
                    arm_arrival(schedule, sim, next, stride, on_arrival);
                    on_arrival(index);
                  });
}

}  // namespace

ShardedResult ShardedSystem::run() {
  P2PS_REQUIRE_MSG(!ran_, "run() may be called only once");
  ran_ = true;

  // Seeds supply from t = 0 and are immediately probe-visible.
  for (std::int64_t s = 0; s < config_.population.seeds; ++s) {
    const core::PeerId peer{static_cast<std::uint64_t>(s)};
    Shard& shard = *shards_[static_cast<std::size_t>(shard_of(peer))];
    LocalPeer& p = shard.peers[local_index(peer)];
    p.status = SupplierStatus::kFree;
    shard.capacity_units += core::Bandwidth::class_offer(p.cls).units();
    ++shard.suppliers;
    directory_.enqueue(util::SimTime::zero(), peer, p.cls);
  }

  // Per-shard lazy arrival walkers and hourly samplers.
  std::vector<std::function<void(std::int64_t)>> on_arrivals;
  on_arrivals.reserve(shards_.size());
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    on_arrivals.push_back([this, &shard](std::int64_t index) {
      const core::PeerId peer{
          static_cast<std::uint64_t>(config_.population.seeds + index)};
      first_request(shard, local_index(peer));
    });
    arm_arrival(arrivals_, shard.sim, shard.next_arrival, config_.shards,
                on_arrivals.back());
    take_sample(shard, util::SimTime::zero());
    shard.sampler = std::make_unique<sim::Periodic>(
        shard.sim, config_.sample_interval, config_.sample_interval,
        [this, &shard](util::SimTime t) { take_sample(shard, t); });
  }

  sim::ShardRunner runner(config_.shards, lookahead_, config_.threads);
  sim::ShardRunner::Callbacks callbacks;
  callbacks.next_event_time = [this](int shard) {
    return shards_[static_cast<std::size_t>(shard)]->sim.next_event_time();
  };
  callbacks.at_window_start = [this](util::SimTime window_end) {
    directory_.flush_due(window_end);
  };
  callbacks.run_to = [this](int shard, util::SimTime t) {
    shards_[static_cast<std::size_t>(shard)]->sim.run_until(t);
  };
  callbacks.at_barrier = [this](util::SimTime) {
    router_.exchange();
    for (auto& joins : join_buffers_) {
      for (const Directory::Entry& join : joins) {
        directory_.enqueue(join.visible, join.peer, join.cls);
      }
      joins.clear();  // capacity kept
    }
  };
  runner.run(config_.horizon, callbacks);

  for (auto& shard_ptr : shards_) shard_ptr->sampler->stop();

  // Merge: integer sums only; every mean/rate is derived (once) by the
  // report layer from the merged sums.
  ShardedResult result;
  result.num_classes = config_.protocol.num_classes;
  result.totals.resize(static_cast<std::size_t>(config_.protocol.num_classes));
  const std::size_t sample_count = shards_.front()->samples.size();
  result.hourly.resize(sample_count);
  std::int64_t capacity_units = 0;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    for (std::size_t c = 0; c < result.totals.size(); ++c) {
      result.totals[c] += shard.totals[c];
    }
    P2PS_CHECK_MSG(shard.samples.size() == sample_count,
                   "shards disagree on the sample grid");
    for (std::size_t i = 0; i < sample_count; ++i) {
      P2PS_CHECK(result.hourly[i].t == util::SimTime::zero() ||
                 result.hourly[i].t == shard.samples[i].t);
      result.hourly[i].t = shard.samples[i].t;
      result.hourly[i].capacity_units += shard.samples[i].capacity_units;
      result.hourly[i].active_sessions += shard.samples[i].active_sessions;
      result.hourly[i].suppliers += shard.samples[i].suppliers;
    }
    capacity_units += shard.capacity_units;
    result.suppliers_at_end += shard.suppliers;
    result.sessions_completed += shard.sessions_completed;
    result.sessions_active_at_end += shard.sessions_active;
    result.hold_expirations += shard.hold_expirations;
    result.watchdog_recoveries += shard.watchdog_recoveries;
    result.messages_sent += shard.sent;
    result.messages_dropped += shard.dropped;
    result.messages_delivered += shard.delivered;
    result.per_shard.push_back(ShardMechanics{
        shard.sim.executed_count(),
        static_cast<std::int64_t>(shard.sim.peak_pending_count()), shard.sent});
  }
  for (const auto& totals : result.totals) result.overall += totals;
  result.final_capacity =
      core::capacity(core::Bandwidth::from_units(capacity_units));
  result.max_capacity = workload::max_possible_capacity(config_.population);
  result.cross_shard_messages = router_.cross_shard_total();
  result.windows = runner.windows();
  result.peak_rss_bytes = process_peak_rss_bytes();
  return result;
}

}  // namespace p2ps::engine
