#include "engine/sharded_system.hpp"

#include <algorithm>
#include <deque>
#include <utility>

#include "core/admission/requester.hpp"
#include "core/ots.hpp"
#include "engine/result.hpp"
#include "engine/telemetry_probe.hpp"
#include "util/assert.hpp"

namespace p2ps::engine {

namespace {

/// Validation must precede member construction (the router and the
/// lookahead both consume latency bounds in the initializer list).
ShardedConfig validated(ShardedConfig config) {
  config.validate();
  return config;
}

/// Engine ticks as 32-bit milliseconds — validate() bounds every
/// schedulable tick below 2^32 ms (~49.7 simulated days), so the cast is
/// checked, not lossy.
std::uint32_t to_ms32(util::SimTime t) {
  const std::int64_t ms = t.as_millis();
  P2PS_CHECK_MSG(ms >= 0 && ms < 0xFFFFFFFFll,
                 "tick outside the 32-bit millisecond range the compact "
                 "peer state stores (ShardedConfig::validate bounds this)");
  return static_cast<std::uint32_t>(ms);
}

// ---- requester-phase word layout: [31:0] first-request ms,
// [51:32] attempt epoch, [63:52] backoff rejections ----

constexpr std::uint64_t kEpochShift = 32;
constexpr std::uint64_t kEpochMask = (std::uint64_t{1} << 20) - 1;
constexpr std::uint64_t kRejShift = 52;

std::uint32_t req_first_ms(std::uint64_t word) {
  return static_cast<std::uint32_t>(word);
}
std::uint32_t req_epoch(std::uint64_t word) {
  return static_cast<std::uint32_t>((word >> kEpochShift) & kEpochMask);
}
std::int64_t req_rejections(std::uint64_t word) {
  return static_cast<std::int64_t>(word >> kRejShift);
}
std::uint64_t bump_epoch(std::uint64_t word) {
  const std::uint64_t epoch = ((word >> kEpochShift) & kEpochMask) + 1;
  P2PS_CHECK_MSG(epoch <= kEpochMask, "attempt epoch overflow");
  return (word & ~(kEpochMask << kEpochShift)) | (epoch << kEpochShift);
}
std::uint64_t bump_rejections(std::uint64_t word) {
  const std::uint64_t rejections = (word >> kRejShift) + 1;
  P2PS_CHECK_MSG(rejections < (std::uint64_t{1} << 12),
                 "backoff rejection count overflows its 12-bit field");
  return (word & ((std::uint64_t{1} << kRejShift) - 1)) |
         (rejections << kRejShift);
}

// ---- flags byte: [1:0] SupplierStatus, [2] admitted ----

constexpr std::uint8_t kStatusMask = 0x03;
constexpr std::uint8_t kAdmittedBit = 0x04;

}  // namespace

// ---------------------------------------------------------------------------
// Config / totals
// ---------------------------------------------------------------------------

void ShardedConfig::validate() const {
  workload::validate(population);
  P2PS_REQUIRE(population.num_classes == protocol.num_classes);
  P2PS_REQUIRE(protocol.m_candidates > 0);
  P2PS_REQUIRE(arrival_window > util::SimTime::zero());
  P2PS_REQUIRE(horizon >= arrival_window);
  P2PS_REQUIRE(session_duration > util::SimTime::zero());
  latency.validate();
  P2PS_REQUIRE_MSG(latency.min_latency() >= util::SimTime::millis(1),
                   "sharded runs need a nonzero minimum latency — it is the "
                   "conservative lookahead");
  P2PS_REQUIRE(loss >= 0.0 && loss <= 1.0);
  P2PS_REQUIRE_MSG(response_timeout > 2 * latency.max_latency(),
                   "a probe->grant round trip must fit inside the response "
                   "window, so silent-busy is the only cause of missing "
                   "replies under zero loss");
  P2PS_REQUIRE_MSG(hold_timeout > response_timeout + 2 * latency.max_latency(),
                   "holds must outlive the requester's response window plus "
                   "a commit flight, or commits would race their own expiry");
  P2PS_REQUIRE(shards >= 1);
  P2PS_REQUIRE(threads >= 1);
  P2PS_REQUIRE_MSG(fusion >= 1, "window fusion factor must be at least 1");
  P2PS_REQUIRE_MSG(sample_interval > response_timeout &&
                       sample_interval > latency.max_latency(),
                   "samplers are armed one full interval ahead; the interval "
                   "must dominate every message/deadline horizon so the "
                   "sampler always wins same-tick seq races (docs/sharding.md)");
  P2PS_REQUIRE_MSG(selection_policy != nullptr,
                   "ShardedConfig.selection_policy must not be null");
  // The compact peer state stores ticks as 32-bit milliseconds. The latest
  // tick the engine can ever write is a session watchdog armed at the
  // horizon (now + session + 4 holds); everything else (joins, deadlines,
  // deliveries) is bounded tighter. ~49.7 simulated days of headroom.
  const util::SimTime latest_tick = horizon + session_duration +
                                    4 * hold_timeout + response_timeout +
                                    2 * latency.max_latency() +
                                    latency.min_latency();
  P2PS_REQUIRE_MSG(latest_tick.as_millis() < 0xFFFFFFFFll,
                   "horizon + session + hold extents must fit 32-bit "
                   "milliseconds (compact peer state, docs/memory.md)");
  P2PS_REQUIRE_MSG(population.seeds + population.requesters <
                       std::int64_t{0xFFFFFFFFll},
                   "compact peer state stores peer ids as 32 bits");
}

ShardedClassTotals& ShardedClassTotals::operator+=(const ShardedClassTotals& other) {
  first_requests += other.first_requests;
  attempts += other.attempts;
  admissions += other.admissions;
  rejections += other.rejections;
  delay_dt_sum += other.delay_dt_sum;
  rejections_at_admission_sum += other.rejections_at_admission_sum;
  waiting_ms_sum += other.waiting_ms_sum;
  return *this;
}

// ---------------------------------------------------------------------------
// Directory
// ---------------------------------------------------------------------------

void ShardedSystem::Directory::enqueue(std::uint32_t visible_ms,
                                       std::uint32_t peer) {
  pending_.push_back(Join{visible_ms, peer});
  if (visible_ms < next_visible_) next_visible_ = visible_ms;
}

void ShardedSystem::Directory::flush_due(util::SimTime through) {
  const std::int64_t through_ms = through.as_millis();
  // O(1) fast path: the cached minimum visibility tick lies beyond the
  // window end, so nothing can be due. This is the overwhelmingly common
  // case — joins arrive in bursts, windows are many.
  if (static_cast<std::int64_t>(next_visible_) > through_ms) return;
  ++flushes_;
  // Slow path, O(due joins log due joins): sort the whole parked set by
  // (visible, peer) once and publish the due prefix. Sorting wholesale is
  // fine because conservative lookahead makes every parked join due by
  // the NEXT window it survives to (a join created at s <= t1 is visible
  // at s + W <= t1 + W, and window ends advance by at most W) — so the
  // remainder left behind is empty or tiny, never O(population).
  std::sort(pending_.begin(), pending_.end(),
            [](const Join& a, const Join& b) {
              if (a.visible_ms != b.visible_ms) {
                return a.visible_ms < b.visible_ms;
              }
              return a.peer < b.peer;
            });
  std::size_t due = 0;
  while (due < pending_.size() &&
         static_cast<std::int64_t>(pending_[due].visible_ms) <= through_ms) {
    ++due;
  }
  for (std::size_t i = 0; i < due; ++i) {
    const Join entry = pending_[i];
    // The flushed prefix must stay totally ordered by (visible, peer):
    // within one flush the sort guarantees it, and across flushes every
    // later join is visible strictly after the previous flush bound
    // (conservative lookahead — see docs/sharding.md).
    P2PS_CHECK_MSG(
        visible_ms_.empty() || visible_ms_.back() < entry.visible_ms ||
            (visible_ms_.back() == entry.visible_ms &&
             peers_.back() < entry.peer),
        "directory join published out of canonical (visible, peer) order");
    visible_ms_.push_back(entry.visible_ms);
    peers_.push_back(entry.peer);
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(due));
  next_visible_ = pending_.empty() ? kNeverVisible : pending_.front().visible_ms;
}

std::size_t ShardedSystem::Directory::visible_count(int shard, util::SimTime at) {
  const std::int64_t at_ms = at.as_millis();
  std::size_t& cursor = cursors_[static_cast<std::size_t>(shard)];
  while (cursor < visible_ms_.size() && visible_ms_[cursor] <= at_ms) ++cursor;
  return cursor;
}

// ---------------------------------------------------------------------------
// Shard
// ---------------------------------------------------------------------------

struct ShardedSystem::Shard {
  /// Back-pointer for the router's context-pointer delivery trampoline
  /// (ShardRouter::Handler is a raw function pointer, not a std::function,
  /// so the capture state lives here).
  ShardedSystem* owner;
  int index;
  sim::Simulator sim;
  /// Lazy sources — one pending event each for the whole population
  /// (declared after `sim`, destroyed before it).
  RetryHeap retries;
  SessionEndCalendar<Deadline> deadlines;
  SessionEndCalendar<SessionEnd> ends;
  std::unique_ptr<sim::Periodic> sampler;

  // Hot per-peer state: parallel arrays indexed by local peer index (see
  // the layout comment in sharded_system.hpp).
  std::vector<std::uint64_t> word;
  std::vector<std::uint32_t> aux;
  std::vector<std::uint32_t> send_seq;
  std::vector<std::uint32_t> rng_slot;
  std::vector<std::uint8_t> flags;

  // Cold pools, sized by concurrent activity rather than population.
  std::vector<util::Rng> rng_pool;
  std::vector<std::uint32_t> rng_free;
  std::vector<Attempt> attempts;
  std::uint32_t attempt_free = kNoAttempt;
  /// Chosen-supplier ids (global, u32) for every active session,
  /// concatenated in admission order — the FIFO twin of `ends`.
  std::deque<std::uint32_t> chosen_fifo;
  std::uint64_t pool_allocations = 0;
  std::uint64_t pool_reuses = 0;

  /// Next global arrival index owned by this shard (stride = shard count).
  std::int64_t next_arrival = 0;

  /// Per-shard protocol trace ring (null unless trace_capacity > 0).
  /// Thread-confined during windows like every other shard member; the
  /// rings merge into canonical (time, peer) order after the run. Every
  /// recorded detail value is partition-invariant by construction (probe
  /// counts, delay Δt, rejection counts, class offers) so the merged
  /// trace is byte-identical for every shard count when capacity is ample.
  std::unique_ptr<TraceLog> trace;

  void record(util::SimTime t, TraceKind kind, core::PeerId peer,
              core::PeerClass cls, core::SessionId session,
              std::int64_t detail) {
    if (!trace) return;
    trace->record(TraceEvent{t, kind, peer, cls, session, detail});
  }

  // Thread-confined scratch (one shard = one worker during a window).
  core::SelectionResult selection;
  std::vector<core::PeerClass> classes_scratch;
  std::vector<std::size_t> indices_scratch;

  // Per-shard integer sums, merged at the end of the run.
  std::vector<ShardedClassTotals> totals;
  std::vector<ShardedSample> samples;
  std::int64_t capacity_units = 0;
  std::int64_t suppliers = 0;
  std::int64_t sessions_active = 0;
  std::int64_t sessions_completed = 0;
  std::int64_t hold_expirations = 0;
  std::int64_t watchdog_recoveries = 0;
  std::uint64_t sent = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delivered = 0;

  [[nodiscard]] SupplierStatus status_of(std::uint32_t local) const {
    return static_cast<SupplierStatus>(flags[local] & kStatusMask);
  }
  void set_status(std::uint32_t local, SupplierStatus status) {
    flags[local] = static_cast<std::uint8_t>(
        (flags[local] & ~kStatusMask) | static_cast<std::uint8_t>(status));
  }
  [[nodiscard]] bool admitted(std::uint32_t local) const {
    return (flags[local] & kAdmittedBit) != 0;
  }

  Shard(ShardedSystem& system, int index, std::int64_t owned)
      : owner(&system),
        index(index),
        sim(system.config_.event_list),
        retries(sim, system.config_.horizon,
                [&system, this](std::uint32_t local) {
                  system.start_attempt(*this, local);
                }),
        deadlines(sim,
                  [&system, this](Deadline&& deadline) {
                    const std::uint32_t local = deadline.peer_local;
                    // Staleness, phase-first: once admitted (or already a
                    // supplier) word/aux no longer carry requester state.
                    if (admitted(local) ||
                        status_of(local) != SupplierStatus::kNone) {
                      return;
                    }
                    if (aux[local] == kNoAttempt ||
                        req_epoch(word[local]) != deadline.epoch) {
                      return;  // the attempt concluded first — stale
                    }
                    system.conclude_attempt(*this, local);
                  }),
        ends(sim, [&system, this](SessionEnd&& end) {
          system.finish_session(*this, end);
        }) {
    if (system.config_.trace_capacity > 0) {
      trace = std::make_unique<TraceLog>(system.config_.trace_capacity);
    }
    totals.resize(static_cast<std::size_t>(system.config_.protocol.num_classes));
    const auto count = static_cast<std::size_t>(std::max<std::int64_t>(owned, 0));
    word.assign(count, 0);
    aux.assign(count, kNoAttempt);
    send_seq.assign(count, 0);
    rng_slot.assign(count, kRngNever);
    flags.assign(count, 0);
  }
};

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

ShardedSystem::ShardedSystem(ShardedConfig config)
    : config_(validated(std::move(config))),
      lookahead_(config_.latency.min_latency()),
      master_(config_.seed),
      sends_draw_free_(config_.loss == 0.0 && config_.latency.deterministic()),
      // Lazy: arrival times are computed per index from the piece table —
      // identical values to an eager schedule, but O(1) memory where ten
      // million materialised SimTimes would cost 80 MB (docs/memory.md).
      arrivals_(workload::ArrivalSchedule::make_lazy(
          config_.pattern, config_.population.requesters,
          config_.arrival_window)),
      router_(config_.shards, lookahead_),
      directory_(config_.shards),
      join_buffers_(static_cast<std::size_t>(config_.shards)) {
  total_peers_ = config_.population.seeds + config_.population.requesters;

  // Everything global is derived before sharding, so it is identical for
  // every shard count: the class mix (one "population" substream draw
  // sequence) and the arrival schedule. Per-peer random universes are
  // named substreams of the master seed, hydrated lazily on first draw —
  // substream derivation never advances the master, so laziness is
  // bit-invisible (docs/memory.md).
  util::Rng population_rng = master_.substream("population");
  const std::vector<core::PeerClass> classes =
      workload::build_requester_classes(config_.population, population_rng);
  requester_classes_.reserve(classes.size());
  for (const core::PeerClass cls : classes) {
    requester_classes_.push_back(static_cast<std::uint8_t>(cls));
  }

  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int s = 0; s < config_.shards; ++s) {
    const auto owned = (total_peers_ - s + config_.shards - 1) / config_.shards;
    shards_.push_back(std::make_unique<Shard>(*this, s, owned));
    Shard& shard = *shards_.back();
    shard.next_arrival = ((s - config_.population.seeds) % config_.shards +
                          config_.shards) %
                         config_.shards;
    router_.bind(s, shard.sim, &shard,
                 [](void* context, const Envelope& envelope) {
                   Shard& target = *static_cast<Shard*>(context);
                   target.owner->on_deliver(target, envelope);
                 });
  }
}

ShardedSystem::~ShardedSystem() = default;

// ---------------------------------------------------------------------------
// Id plumbing
// ---------------------------------------------------------------------------

int ShardedSystem::shard_of(core::PeerId peer) const {
  return static_cast<int>(peer.value() %
                          static_cast<std::uint64_t>(config_.shards));
}

core::PeerClass ShardedSystem::class_of(core::PeerId peer) const {
  const auto p = static_cast<std::int64_t>(peer.value());
  if (p < config_.population.seeds) return config_.population.seed_class;
  return static_cast<core::PeerClass>(
      requester_classes_[static_cast<std::size_t>(p - config_.population.seeds)]);
}

core::PeerId ShardedSystem::global_id(int shard, std::uint32_t local) const {
  return core::PeerId{static_cast<std::uint64_t>(local) *
                          static_cast<std::uint64_t>(config_.shards) +
                      static_cast<std::uint64_t>(shard)};
}

std::uint32_t ShardedSystem::local_index(core::PeerId peer) const {
  return static_cast<std::uint32_t>(peer.value() /
                                    static_cast<std::uint64_t>(config_.shards));
}

// ---------------------------------------------------------------------------
// Cold-state pools
// ---------------------------------------------------------------------------

util::Rng& ShardedSystem::rng_of(Shard& shard, std::uint32_t local) {
  std::uint32_t slot = shard.rng_slot[local];
  if (slot & kRngDemotedBit) {
    // (Re)hydrate: derive the substream afresh and fast-forward by the
    // recorded raw-draw count — bit-identical to having kept the state
    // resident (substream derivation is pure, and discard replays the
    // exact output sequence, rejection loops included).
    util::Rng stream =
        master_.substream("peer", global_id(shard.index, local).value());
    stream.discard(slot & kRngCountMask);
    if (!shard.rng_free.empty()) {
      slot = shard.rng_free.back();
      shard.rng_free.pop_back();
      shard.rng_pool[slot] = stream;
      ++shard.pool_reuses;
    } else {
      P2PS_CHECK_MSG(shard.rng_pool.size() < kRngDemotedBit,
                     "rng pool exhausted");
      slot = static_cast<std::uint32_t>(shard.rng_pool.size());
      shard.rng_pool.push_back(stream);
      ++shard.pool_allocations;
    }
    shard.rng_slot[local] = slot;
  }
  return shard.rng_pool[slot];
}

void ShardedSystem::release_rng(Shard& shard, std::uint32_t local) {
  const std::uint32_t slot = shard.rng_slot[local];
  if (slot & kRngDemotedBit) return;
  shard.rng_free.push_back(slot);
  shard.rng_slot[local] = kRngNever;
}

void ShardedSystem::demote_rng(Shard& shard, std::uint32_t local) {
  const std::uint32_t slot = shard.rng_slot[local];
  if (slot & kRngDemotedBit) return;  // never hydrated this attempt
  const std::uint64_t draws = shard.rng_pool[slot].draws();
  P2PS_CHECK_MSG(draws <= kRngCountMask, "rng draw count overflows the tag");
  shard.rng_free.push_back(slot);
  shard.rng_slot[local] = kRngDemotedBit | static_cast<std::uint32_t>(draws);
}

std::uint32_t ShardedSystem::acquire_attempt(Shard& shard) {
  if (shard.attempt_free != kNoAttempt) {
    const std::uint32_t index = shard.attempt_free;
    shard.attempt_free = shard.attempts[index].next_free;
    shard.attempts[index].replies.clear();  // capacity kept
    ++shard.pool_reuses;
    return index;
  }
  shard.attempts.emplace_back();
  ++shard.pool_allocations;
  return static_cast<std::uint32_t>(shard.attempts.size() - 1);
}

void ShardedSystem::release_attempt(Shard& shard, std::uint32_t index) {
  shard.attempts[index].next_free = shard.attempt_free;
  shard.attempt_free = index;
}

// ---------------------------------------------------------------------------
// Messaging
// ---------------------------------------------------------------------------

void ShardedSystem::send(Shard& shard, std::uint32_t from_local,
                         core::PeerId to, Msg msg) {
  ++shard.sent;
  const core::PeerId from = global_id(shard.index, from_local);
  // Sender-side draws, in a fixed order: drop first, latency only if kept —
  // all on the sender's private stream, so the draw sequence is a property
  // of the peer's own trajectory, never of shard layout. When no send can
  // draw (zero loss + deterministic latency) the stream is not even
  // hydrated — the null_rng_ sink is never touched by sample().
  if (config_.loss > 0.0 && rng_of(shard, from_local).bernoulli(config_.loss)) {
    ++shard.dropped;
    return;
  }
  const util::SimTime now = shard.sim.now();
  util::Rng& latency_rng = config_.latency.deterministic()
                               ? null_rng_
                               : rng_of(shard, from_local);
  const util::SimTime latency =
      config_.latency.sample(class_of(from), class_of(to), latency_rng);
  Envelope envelope;
  // Peer ids are dense array indexes (far below 2^32); ticks are bounded
  // by validate() — the compact envelope casts are checked, not lossy.
  envelope.from = static_cast<std::uint32_t>(from.value());
  envelope.to = static_cast<std::uint32_t>(to.value());
  envelope.sent_at = to_ms32(now);
  envelope.deliver_at = to_ms32(now + latency);
  envelope.seq = shard.send_seq[from_local]++;
  envelope.payload = msg;
  router_.send(shard.index, std::move(envelope));
}

void ShardedSystem::on_deliver(Shard& shard, const Envelope& envelope) {
  // Deadline-check-on-drain: every requester deadline due at or before
  // this tick fires before any same-tick delivery, so a grant arriving
  // exactly at its deadline tick is deterministically late for every
  // partitioning (docs/sharding.md).
  shard.deadlines.poll();
  ++shard.delivered;
  const std::uint32_t local = local_index(core::PeerId{envelope.to});
  const Msg& msg = envelope.payload;
  switch (msg.kind) {
    case MsgKind::kProbe:
      on_probe(shard, local, envelope);
      return;
    case MsgKind::kGrant:
      on_grant(shard, local, envelope);
      return;
    case MsgKind::kCommit:
      purge_supplier(shard, local, shard.sim.now());
      if (shard.status_of(local) == SupplierStatus::kHeld &&
          shard.word[local] == msg.session) {
        shard.set_status(local, SupplierStatus::kCommitted);
        // Self-recovery if the teardown is lost: a session cannot engage a
        // supplier for much longer than the show time plus control slack.
        shard.aux[local] = to_ms32(shard.sim.now() + config_.session_duration +
                                   4 * config_.hold_timeout);
      }
      // Else: the hold expired (or was re-granted) before the commit
      // landed — the requester counts a supplier it does not have, the
      // same documented race as the async engine's, only under loss.
      return;
    case MsgKind::kRelease:
      purge_supplier(shard, local, shard.sim.now());
      if (shard.status_of(local) == SupplierStatus::kHeld &&
          shard.word[local] == msg.session) {
        shard.set_status(local, SupplierStatus::kFree);
      }
      return;
    case MsgKind::kEnd:
      purge_supplier(shard, local, shard.sim.now());
      if (shard.status_of(local) == SupplierStatus::kCommitted &&
          shard.word[local] == msg.session) {
        shard.set_status(local, SupplierStatus::kFree);
      }
      return;
  }
  P2PS_CHECK_MSG(false, "unreachable message kind");
}

void ShardedSystem::purge_supplier(Shard& shard, std::uint32_t local,
                                   util::SimTime now) {
  const SupplierStatus status = shard.status_of(local);
  if (status != SupplierStatus::kHeld && status != SupplierStatus::kCommitted) {
    return;
  }
  // Supplier phase: aux is the hold/watchdog expiry tick.
  if (static_cast<std::int64_t>(shard.aux[local]) > now.as_millis()) return;
  shard.set_status(local, SupplierStatus::kFree);
  if (status == SupplierStatus::kHeld) {
    ++shard.hold_expirations;
  } else {
    ++shard.watchdog_recoveries;
  }
}

void ShardedSystem::on_probe(Shard& shard, std::uint32_t local,
                             const Envelope& envelope) {
  P2PS_CHECK_MSG(shard.status_of(local) != SupplierStatus::kNone,
                 "probe delivered to a peer the directory never listed");
  purge_supplier(shard, local, shard.sim.now());
  if (shard.status_of(local) != SupplierStatus::kFree) return;  // silent busy
  shard.set_status(local, SupplierStatus::kHeld);
  shard.word[local] = envelope.payload.session;
  shard.aux[local] = to_ms32(shard.sim.now() + config_.hold_timeout);
  send(shard, local, core::PeerId{envelope.from},
       Msg{MsgKind::kGrant, class_of(global_id(shard.index, local)),
           envelope.payload.session});
}

void ShardedSystem::on_grant(Shard& shard, std::uint32_t local,
                             const Envelope& envelope) {
  // Phase first (see the deadline handler): for an admitted peer or a
  // supplier, aux no longer names an attempt slot.
  if (shard.admitted(local) ||
      shard.status_of(local) != SupplierStatus::kNone) {
    return;  // concluded long ago — deterministically late
  }
  const std::uint32_t index = shard.aux[local];
  if (index == kNoAttempt) return;  // concluded — deterministically late
  Attempt& attempt = shard.attempts[index];
  if (attempt.session != envelope.payload.session) return;  // stale attempt
  attempt.replies.push_back(Reply{envelope.from, envelope.payload.cls});
  if (attempt.replies.size() == attempt.probed) {
    conclude_attempt(shard, attempt.peer_local);
  }
}

// ---------------------------------------------------------------------------
// Requester lifecycle
// ---------------------------------------------------------------------------

void ShardedSystem::first_request(Shard& shard, std::uint32_t local) {
  shard.word[local] = to_ms32(shard.sim.now());  // epoch/rejections start at 0
  const core::PeerClass cls = class_of(global_id(shard.index, local));
  ++shard.totals[static_cast<std::size_t>(cls - 1)].first_requests;
  shard.record(shard.sim.now(), TraceKind::kFirstRequest,
               global_id(shard.index, local), cls, core::SessionId::invalid(),
               0);
  start_attempt(shard, local);
}

void ShardedSystem::start_attempt(Shard& shard, std::uint32_t local) {
  P2PS_CHECK(!shard.admitted(local) && shard.aux[local] == kNoAttempt &&
             shard.status_of(local) == SupplierStatus::kNone);
  std::uint64_t word = bump_epoch(shard.word[local]);
  shard.word[local] = word;
  const core::PeerClass cls = class_of(global_id(shard.index, local));
  ++shard.totals[static_cast<std::size_t>(cls - 1)].attempts;

  const util::SimTime now = shard.sim.now();
  const core::PeerId self = global_id(shard.index, local);
  const std::uint64_t session =
      (self.value() << 20) | static_cast<std::uint64_t>(req_epoch(word));

  // Candidate lookup against the visible prefix of the global directory
  // (joins become visible one lookahead window after they happen), sampled
  // with the requester's own stream.
  const std::size_t visible = directory_.visible_count(shard.index, now);
  const std::size_t m = std::min(config_.protocol.m_candidates, visible);
  // The visible directory prefix at a tick is canonical, so the probe
  // count is partition-invariant — safe as a trace detail.
  shard.record(now, TraceKind::kAttempt, self, cls, core::SessionId::invalid(),
               static_cast<std::int64_t>(m));
  if (m == 0) {
    // No supplier is visible yet (cannot happen once seeds are registered,
    // but stay total): an immediate rejection with normal backoff.
    ++shard.totals[static_cast<std::size_t>(cls - 1)].rejections;
    shard.record(now, TraceKind::kRejection, self, cls,
                 core::SessionId::invalid(),
                 req_rejections(shard.word[local]) + 1);
    word = bump_rejections(bump_epoch(word));
    shard.word[local] = word;
    shard.retries.schedule(
        core::scaled_backoff(config_.protocol.t_bkf, config_.protocol.e_bkf,
                             req_rejections(word) - 1),
        local);
    return;
  }
  rng_of(shard, local).sample_indices_into(shard.indices_scratch, visible, m);

  const std::uint32_t index = acquire_attempt(shard);
  Attempt& attempt = shard.attempts[index];
  attempt.session = session;
  attempt.peer_local = local;
  attempt.probed = static_cast<std::uint32_t>(m);
  shard.aux[local] = index;
  for (const std::size_t candidate : shard.indices_scratch) {
    send(shard, local, directory_.peer_at(candidate),
         Msg{MsgKind::kProbe, cls, session});
  }
  shard.deadlines.schedule(now + config_.response_timeout,
                           Deadline{local, req_epoch(word)});
}

void ShardedSystem::conclude_attempt(Shard& shard, std::uint32_t local) {
  const std::uint32_t index = shard.aux[local];
  Attempt& attempt = shard.attempts[index];
  const util::SimTime now = shard.sim.now();
  const core::PeerClass cls = class_of(global_id(shard.index, local));
  auto& totals = shard.totals[static_cast<std::size_t>(cls - 1)];

  shard.classes_scratch.clear();
  for (const Reply& reply : attempt.replies) {
    shard.classes_scratch.push_back(static_cast<core::PeerClass>(reply.cls));
  }
  // The peer is necessarily hydrated here (start_attempt sampled
  // candidates), so rng_of is a plain lookup for randomized policies.
  const core::SelectionContext context{cls, &rng_of(shard, local)};
  config_.selection_policy->select_into(shard.selection, shard.classes_scratch,
                                        core::Bandwidth::playback_rate(), context);

  if (shard.selection.success()) {
    shard.flags[local] |= kAdmittedBit;
    ++shard.sessions_active;
    ++totals.admissions;
    totals.rejections_at_admission_sum += req_rejections(shard.word[local]);
    totals.waiting_ms_sum +=
        now.as_millis() - static_cast<std::int64_t>(req_first_ms(shard.word[local]));

    std::uint32_t chosen_count = 0;
    // Commit the chosen suppliers and release the rest, in reply order —
    // the canonical delivery order, identical for every partitioning. The
    // chosen ids ride the shard's admission-order FIFO (see SessionEnd).
    for (std::size_t r = 0; r < attempt.replies.size(); ++r) {
      const bool chosen = std::find(shard.selection.chosen.begin(),
                                    shard.selection.chosen.end(),
                                    r) != shard.selection.chosen.end();
      send(shard, local, core::PeerId{attempt.replies[r].from},
           Msg{chosen ? MsgKind::kCommit : MsgKind::kRelease, cls,
               attempt.session});
      if (chosen) {
        shard.chosen_fifo.push_back(attempt.replies[r].from);
        ++chosen_count;
      }
    }
    // Theorem-1 buffering delay of the chosen classes (OTS assignment).
    shard.classes_scratch.clear();
    for (const std::size_t r : shard.selection.chosen) {
      shard.classes_scratch.push_back(
          static_cast<core::PeerClass>(attempt.replies[r].cls));
    }
    const std::int64_t delay_dt =
        core::ots_assignment(shard.classes_scratch).min_buffering_delay_dt();
    totals.delay_dt_sum += delay_dt;
    shard.record(now, TraceKind::kAdmission, global_id(shard.index, local),
                 cls, core::SessionId{attempt.session}, delay_dt);
    shard.ends.schedule(now + config_.session_duration,
                        SessionEnd{attempt.session, local, chosen_count});
    // Admitted: the peer's remaining sends (commit flight done, session
    // teardown, grants as a supplier) draw only when loss or a randomized
    // latency model demands it — otherwise its stream is over, and the
    // pool slot goes back for the next hydration.
    if (sends_draw_free_) release_rng(shard, local);
  } else {
    ++totals.rejections;
    for (const Reply& reply : attempt.replies) {
      send(shard, local, core::PeerId{reply.from},
           Msg{MsgKind::kRelease, cls, attempt.session});
    }
    const std::uint64_t word = bump_rejections(shard.word[local]);
    shard.word[local] = word;
    shard.record(now, TraceKind::kRejection, global_id(shard.index, local),
                 cls, core::SessionId::invalid(), req_rejections(word));
    shard.retries.schedule(
        core::scaled_backoff(config_.protocol.t_bkf, config_.protocol.e_bkf,
                             req_rejections(word) - 1),
        local);
    // Rejected: the stream sleeps until the next attempt samples again.
    // With draw-free sends that is the only future draw site, so park the
    // stream as a draw count instead of 32 resident bytes — in a saturated
    // run this is the difference between an activity-sized pool and one
    // live xoshiro per requester (docs/memory.md).
    if (sends_draw_free_) demote_rng(shard, local);
  }

  shard.aux[local] = kNoAttempt;
  shard.word[local] = bump_epoch(shard.word[local]);  // parks stale deadlines
  release_attempt(shard, index);
}

void ShardedSystem::finish_session(Shard& shard, const SessionEnd& end) {
  const core::PeerClass cls = class_of(global_id(shard.index, end.peer_local));
  // Teardown: one EndSession per supplier (loss is survivable — every
  // committed supplier also runs a lazy session watchdog). Sessions finish
  // in admission order, so this session's suppliers are exactly the front
  // `supplier_count` entries of the shard's chosen FIFO.
  for (std::uint32_t i = 0; i < end.supplier_count; ++i) {
    P2PS_CHECK(!shard.chosen_fifo.empty());
    const std::uint32_t supplier = shard.chosen_fifo.front();
    shard.chosen_fifo.pop_front();
    send(shard, end.peer_local, core::PeerId{supplier},
         Msg{MsgKind::kEnd, cls, end.session});
  }
  --shard.sessions_active;
  ++shard.sessions_completed;
  shard.record(shard.sim.now(), TraceKind::kSessionEnd,
               global_id(shard.index, end.peer_local), cls,
               core::SessionId{end.session},
               static_cast<std::int64_t>(end.supplier_count));
  make_supplier(shard, end.peer_local);
}

void ShardedSystem::make_supplier(Shard& shard, std::uint32_t local) {
  P2PS_CHECK(shard.status_of(local) == SupplierStatus::kNone);
  shard.set_status(local, SupplierStatus::kFree);
  // Phase handoff: word/aux now belong to the supplier machinery.
  shard.word[local] = 0;
  shard.aux[local] = 0;
  const core::PeerId self = global_id(shard.index, local);
  shard.capacity_units += core::Bandwidth::class_offer(class_of(self)).units();
  ++shard.suppliers;
  // Detail = this peer's offered units, not running capacity: per-shard
  // capacity depends on the partitioning, the class offer does not.
  shard.record(shard.sim.now(), TraceKind::kBecameSupplier, self,
               class_of(self), core::SessionId::invalid(),
               core::Bandwidth::class_offer(class_of(self)).units());
  // Probe-visible exactly one lookahead window from now: late enough that
  // no query in the current window can see it (partition-independence),
  // as tight as the conservative protocol allows.
  join_buffers_[static_cast<std::size_t>(shard.index)].push_back(
      Directory::Join{to_ms32(shard.sim.now() + lookahead_),
                      static_cast<std::uint32_t>(self.value())});
}

void ShardedSystem::take_sample(Shard& shard, util::SimTime t) {
  // Deterministic tie rule: session ends due at or before the sample tick
  // finish before the sample reads capacity/active counts.
  shard.ends.poll();
  shard.samples.push_back(ShardedSample{t, shard.capacity_units,
                                        shard.sessions_active, shard.suppliers});
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

/// Coordinator-side telemetry wiring, allocated in run() when a sink is
/// attached: the profiler handle the runner's callbacks use, and the
/// cross-shard batch-size histogram observed at every barrier.
struct ShardedSystem::TelemetryState {
  obs::PhaseProfiler* profiler = nullptr;
  obs::Histogram* batch_hist = nullptr;
  /// router_.cross_shard_total() at the previous barrier — the delta is
  /// this window's cross-shard batch.
  std::uint64_t prev_cross_shard = 0;
};

void ShardedSystem::publish_telemetry(util::SimTime now) {
  (void)now;  // the snapshot caller stamps sim time; lanes hold levels
  obs::Registry& registry = config_.telemetry->registry();
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    const int lane = shard.index;
    publish_event_core(registry, shard.sim, lane);
    // Protocol counters share names (and the Counter kind) with the
    // session engines' MetricsCollector binding; here the lane value is
    // written wholesale from the shard's own class sums — same cumulative
    // semantics, no hot-path increments.
    std::int64_t first_requests = 0;
    std::int64_t attempts = 0;
    std::int64_t admissions = 0;
    std::int64_t rejections = 0;
    for (const ShardedClassTotals& totals : shard.totals) {
      first_requests += totals.first_requests;
      attempts += totals.attempts;
      admissions += totals.admissions;
      rejections += totals.rejections;
    }
    registry.counter(obs::kMetricFirstRequests, lane)->value = first_requests;
    registry.counter(obs::kMetricAttempts, lane)->value = attempts;
    registry.counter(obs::kMetricAdmissions, lane)->value = admissions;
    registry.counter(obs::kMetricRejections, lane)->value = rejections;
    registry.gauge("messages_sent", lane)
        ->set(static_cast<std::int64_t>(shard.sent));
    registry.gauge("messages_delivered", lane)
        ->set(static_cast<std::int64_t>(shard.delivered));
    registry.gauge("messages_dropped", lane)
        ->set(static_cast<std::int64_t>(shard.dropped));
    registry.gauge("suppliers", lane)->set(shard.suppliers);
    registry.gauge("sessions_active", lane)->set(shard.sessions_active);
    registry.gauge("sessions_completed", lane)->set(shard.sessions_completed);
    registry.gauge("capacity_units", lane)->set(shard.capacity_units);
    registry.gauge("hold_expirations", lane)->set(shard.hold_expirations);
    registry.gauge("watchdog_recoveries", lane)->set(shard.watchdog_recoveries);
    registry.gauge("pool_allocations", lane)
        ->set(static_cast<std::int64_t>(shard.pool_allocations));
    registry.gauge("pool_reuses", lane)
        ->set(static_cast<std::int64_t>(shard.pool_reuses));
  }
  registry.gauge("cross_shard_messages")
      ->set(static_cast<std::int64_t>(router_.cross_shard_total()));
}

// ---------------------------------------------------------------------------
// Run
// ---------------------------------------------------------------------------

namespace {

/// Arms shard-strided lazy arrivals: one in-flight event per shard walks
/// the global schedule with stride = shard count (re-arm before invoke,
/// the ArrivalSource ordering argument).
void arm_arrival(const workload::ArrivalSchedule& schedule, sim::Simulator& sim,
                 std::int64_t& next, int stride,
                 const std::function<void(std::int64_t)>& on_arrival) {
  if (next >= schedule.total()) return;
  sim.schedule_at(schedule.arrival_at(next),
                  [&schedule, &sim, &next, stride, &on_arrival] {
                    const std::int64_t index = next;
                    next += stride;
                    arm_arrival(schedule, sim, next, stride, on_arrival);
                    on_arrival(index);
                  });
}

}  // namespace

ShardedResult ShardedSystem::run() {
  P2PS_REQUIRE_MSG(!ran_, "run() may be called only once");
  ran_ = true;

  // Seeds supply from t = 0 and are immediately probe-visible.
  for (std::int64_t s = 0; s < config_.population.seeds; ++s) {
    const core::PeerId peer{static_cast<std::uint64_t>(s)};
    Shard& shard = *shards_[static_cast<std::size_t>(shard_of(peer))];
    const std::uint32_t local = local_index(peer);
    shard.set_status(local, SupplierStatus::kFree);
    shard.word[local] = 0;
    shard.aux[local] = 0;
    shard.capacity_units += core::Bandwidth::class_offer(class_of(peer)).units();
    ++shard.suppliers;
    directory_.enqueue(0, static_cast<std::uint32_t>(peer.value()));
  }

  // Per-shard lazy arrival walkers and hourly samplers.
  std::vector<std::function<void(std::int64_t)>> on_arrivals;
  on_arrivals.reserve(shards_.size());
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    on_arrivals.push_back([this, &shard](std::int64_t index) {
      const core::PeerId peer{
          static_cast<std::uint64_t>(config_.population.seeds + index)};
      first_request(shard, local_index(peer));
    });
    arm_arrival(arrivals_, shard.sim, shard.next_arrival, config_.shards,
                on_arrivals.back());
    take_sample(shard, util::SimTime::zero());
    shard.sampler = std::make_unique<sim::Periodic>(
        shard.sim, config_.sample_interval, config_.sample_interval,
        [this, &shard](util::SimTime t) { take_sample(shard, t); });
  }

  if (config_.telemetry != nullptr) {
    telem_ = std::make_unique<TelemetryState>();
    telem_->profiler = config_.telemetry->attach_profiler(config_.shards);
    telem_->batch_hist = config_.telemetry->registry().histogram(
        "cross_shard_batch_messages", {0, 1, 8, 64, 512, 4096, 32768});
  }

  sim::ShardRunner runner(config_.shards, lookahead_, config_.threads,
                          config_.fusion);
  sim::ShardRunner::Callbacks callbacks;
  callbacks.profiler = telem_ ? telem_->profiler : nullptr;
  callbacks.next_event_time = [this](int shard) {
    return shards_[static_cast<std::size_t>(shard)]->sim.next_event_time();
  };
  callbacks.at_window_start = [this](util::SimTime window_end) {
    directory_.flush_due(window_end);
  };
  callbacks.run_to = [this](int shard, util::SimTime t) {
    shards_[static_cast<std::size_t>(shard)]->sim.run_until(t);
  };
  callbacks.at_barrier = [this](util::SimTime window_end) {
    {
      obs::ScopedPhase route(telem_ ? telem_->profiler : nullptr,
                             obs::Phase::kRouteDrain);
      router_.exchange();
    }
    for (auto& joins : join_buffers_) {
      for (const Directory::Join& join : joins) {
        directory_.enqueue(join.visible_ms, join.peer);
      }
      joins.clear();  // capacity kept
    }
    if (telem_) {
      const std::uint64_t total = router_.cross_shard_total();
      telem_->batch_hist->observe(
          static_cast<std::int64_t>(total - telem_->prev_cross_shard));
      telem_->prev_cross_shard = total;
      if (config_.telemetry->snapshot_due()) {
        publish_telemetry(window_end);
        config_.telemetry->snapshot(window_end.as_millis());
      }
    }
  };
  runner.run(config_.horizon, callbacks);

  for (auto& shard_ptr : shards_) shard_ptr->sampler->stop();

  // Merge: integer sums only; every mean/rate is derived (once) by the
  // report layer from the merged sums.
  obs::ScopedPhase merge_phase(telem_ ? telem_->profiler : nullptr,
                               obs::Phase::kMerge);
  ShardedResult result;
  result.num_classes = config_.protocol.num_classes;
  result.totals.resize(static_cast<std::size_t>(config_.protocol.num_classes));
  const std::size_t sample_count = shards_.front()->samples.size();
  result.hourly.resize(sample_count);
  std::int64_t capacity_units = 0;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    for (std::size_t c = 0; c < result.totals.size(); ++c) {
      result.totals[c] += shard.totals[c];
    }
    P2PS_CHECK_MSG(shard.samples.size() == sample_count,
                   "shards disagree on the sample grid");
    for (std::size_t i = 0; i < sample_count; ++i) {
      P2PS_CHECK(result.hourly[i].t == util::SimTime::zero() ||
                 result.hourly[i].t == shard.samples[i].t);
      result.hourly[i].t = shard.samples[i].t;
      result.hourly[i].capacity_units += shard.samples[i].capacity_units;
      result.hourly[i].active_sessions += shard.samples[i].active_sessions;
      result.hourly[i].suppliers += shard.samples[i].suppliers;
    }
    capacity_units += shard.capacity_units;
    result.suppliers_at_end += shard.suppliers;
    result.sessions_completed += shard.sessions_completed;
    result.sessions_active_at_end += shard.sessions_active;
    result.hold_expirations += shard.hold_expirations;
    result.watchdog_recoveries += shard.watchdog_recoveries;
    result.messages_sent += shard.sent;
    result.messages_dropped += shard.dropped;
    result.messages_delivered += shard.delivered;
    result.pool_allocations += shard.pool_allocations;
    result.pool_reuses += shard.pool_reuses;
    result.per_shard.push_back(ShardMechanics{
        shard.sim.executed_count(),
        static_cast<std::int64_t>(shard.sim.peak_pending_count()), shard.sent});
  }
  for (const auto& totals : result.totals) result.overall += totals;
  result.final_capacity =
      core::capacity(core::Bandwidth::from_units(capacity_units));
  result.max_capacity = workload::max_possible_capacity(config_.population);
  result.cross_shard_messages = router_.cross_shard_total();
  result.pool_allocations += router_.pool_allocations();
  result.pool_reuses += router_.pool_reuses();
  result.windows = runner.windows();
  result.windows_fused = runner.windows_fused();
  result.windows_idle_skipped = runner.idle_skips();
  result.lookahead_avg_ms = runner.lookahead_avg_ms();
  result.directory_flushes = directory_.flushes();
  result.peak_rss_bytes = process_peak_rss_bytes();

  // Merge the per-shard trace rings into the canonical (time, peer) order.
  // All of one peer's events live on its single owning shard in canonical
  // relative order, so a stable sort on (t, peer) is partition-invariant.
  if (config_.trace_capacity > 0) {
    for (const auto& shard_ptr : shards_) {
      const TraceLog& log = *shard_ptr->trace;
      result.trace_recorded += log.recorded();
      result.trace_dropped += log.dropped();
      const std::vector<TraceEvent> events = log.events();
      result.trace.insert(result.trace.end(), events.begin(), events.end());
    }
    std::stable_sort(result.trace.begin(), result.trace.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       if (a.t != b.t) return a.t < b.t;
                       return a.peer.value() < b.peer.value();
                     });
  }

  // Leave the registry holding end-of-run levels: the exporter's summary
  // record (Telemetry::finish, emitted by the caller) reads them.
  if (telem_) publish_telemetry(config_.horizon);
  return result;
}

}  // namespace p2ps::engine
