#include "engine/result.hpp"

#include <algorithm>
#include <ostream>

#include "util/assert.hpp"
#include "util/table.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace p2ps::engine {

std::int64_t process_peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(usage.ru_maxrss);  // already bytes
#else
  return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;  // kilobytes
#endif
#else
  return 0;
#endif
}

const metrics::HourlySample& SimulationResult::sample_at(util::SimTime t) const {
  P2PS_REQUIRE(!hourly.empty());
  const auto it = std::upper_bound(
      hourly.begin(), hourly.end(), t,
      [](util::SimTime value, const metrics::HourlySample& s) { return value < s.t; });
  P2PS_REQUIRE_MSG(it != hourly.begin(), "no sample at or before requested time");
  return *(it - 1);
}

std::int64_t SimulationResult::capacity_at(util::SimTime t) const {
  return sample_at(t).capacity;
}

void print_summary(std::ostream& os, const SimulationResult& result) {
  os << "final capacity: " << result.final_capacity << " / max " << result.max_capacity;
  if (result.max_capacity > 0) {
    os << " (" << util::format_double(100.0 * static_cast<double>(result.final_capacity) /
                                          static_cast<double>(result.max_capacity),
                                      1)
       << "%)";
  }
  os << "\nsuppliers at end: " << result.suppliers_at_end
     << ", sessions completed: " << result.sessions_completed
     << ", active at end: " << result.sessions_active_at_end
     << ", events: " << result.events_executed
     << ", peak event list: " << result.peak_event_list << '\n';

  util::TextTable table({"class", "first-req", "admitted", "adm-rate%", "avg-rejections",
                         "avg-delay(dt)", "avg-wait(min)"});
  for (core::PeerClass c = 1; c <= result.num_classes; ++c) {
    const auto& counters = result.totals[static_cast<std::size_t>(c - 1)];
    table.new_row()
        .add_cell(static_cast<long long>(c))
        .add_cell(static_cast<long long>(counters.first_requests))
        .add_cell(static_cast<long long>(counters.admissions));
    const auto rate = counters.admission_rate();
    table.add_cell(rate ? util::format_double(*rate * 100.0, 1) : "-");
    const auto rejections = counters.mean_rejections();
    table.add_cell(rejections ? util::format_double(*rejections, 2) : "-");
    const auto delay = counters.mean_delay_dt();
    table.add_cell(delay ? util::format_double(*delay, 2) : "-");
    const auto wait = counters.mean_waiting_minutes();
    table.add_cell(wait ? util::format_double(*wait, 1) : "-");
  }
  table.print(os);
}

}  // namespace p2ps::engine
