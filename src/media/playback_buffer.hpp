// Receiver-side playback buffer / continuity checker.
//
// Used to *verify* assignment schedules end to end: record when each segment
// finishes arriving, then ask (a) whether playback starting after a given
// buffering delay would underflow, and (b) the minimum buffering delay that
// avoids underflow. This is the executable form of the paper's Figure 1 and
// the check behind our Theorem 1 property tests.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "media/media_file.hpp"
#include "util/sim_time.hpp"

namespace p2ps::media {

/// Outcome of a continuity check.
struct ContinuityReport {
  bool feasible = false;
  /// First segment that would miss its deadline (set when infeasible).
  std::optional<std::int64_t> first_underflow_segment;
  /// How late that segment is (arrival − deadline), when infeasible.
  util::SimTime lateness = util::SimTime::zero();
};

/// Records arrival completion times for a prefix of a media file's segments.
class PlaybackBuffer {
 public:
  /// Tracks the first `tracked_segments` segments of `file`.
  PlaybackBuffer(const MediaFile& file, std::int64_t tracked_segments);

  /// Marks segment `s` as fully received at time `t` (relative to the start
  /// of transmission). Each segment may be recorded exactly once.
  void record_arrival(std::int64_t s, util::SimTime t);

  [[nodiscard]] bool arrived(std::int64_t s) const;
  [[nodiscard]] util::SimTime arrival_time(std::int64_t s) const;
  [[nodiscard]] std::int64_t tracked_segments() const {
    return static_cast<std::int64_t>(arrivals_.size());
  }
  /// True when every tracked segment has an arrival time.
  [[nodiscard]] bool complete() const { return recorded_ == arrivals_.size(); }

  /// Would playback starting at `start_delay` after transmission start play
  /// all tracked segments without stalling?
  [[nodiscard]] ContinuityReport check(util::SimTime start_delay) const;

  /// Minimum buffering delay for stall-free playback of the tracked prefix:
  /// max over segments of (arrival(s) − s·Δt), floored at zero. Requires
  /// complete().
  [[nodiscard]] util::SimTime min_buffering_delay() const;

 private:
  util::SimTime segment_duration_;
  std::vector<std::optional<util::SimTime>> arrivals_;
  std::size_t recorded_ = 0;
};

}  // namespace p2ps::media
