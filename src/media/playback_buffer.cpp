#include "media/playback_buffer.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace p2ps::media {

PlaybackBuffer::PlaybackBuffer(const MediaFile& file, std::int64_t tracked_segments)
    : segment_duration_(file.segment_duration()) {
  P2PS_REQUIRE(tracked_segments > 0);
  P2PS_REQUIRE(tracked_segments <= file.segments());
  arrivals_.resize(static_cast<std::size_t>(tracked_segments));
}

void PlaybackBuffer::record_arrival(std::int64_t s, util::SimTime t) {
  P2PS_REQUIRE(s >= 0 && s < tracked_segments());
  auto& slot = arrivals_[static_cast<std::size_t>(s)];
  P2PS_REQUIRE_MSG(!slot.has_value(), "segment arrival recorded twice");
  P2PS_REQUIRE(t >= util::SimTime::zero());
  slot = t;
  ++recorded_;
}

bool PlaybackBuffer::arrived(std::int64_t s) const {
  P2PS_REQUIRE(s >= 0 && s < tracked_segments());
  return arrivals_[static_cast<std::size_t>(s)].has_value();
}

util::SimTime PlaybackBuffer::arrival_time(std::int64_t s) const {
  P2PS_REQUIRE(arrived(s));
  return *arrivals_[static_cast<std::size_t>(s)];
}

ContinuityReport PlaybackBuffer::check(util::SimTime start_delay) const {
  ContinuityReport report;
  for (std::int64_t s = 0; s < tracked_segments(); ++s) {
    const auto& arrival = arrivals_[static_cast<std::size_t>(s)];
    const util::SimTime deadline = start_delay + segment_duration_ * s;
    if (!arrival.has_value() || *arrival > deadline) {
      report.feasible = false;
      report.first_underflow_segment = s;
      if (arrival.has_value()) report.lateness = *arrival - deadline;
      return report;
    }
  }
  report.feasible = true;
  return report;
}

util::SimTime PlaybackBuffer::min_buffering_delay() const {
  P2PS_REQUIRE_MSG(complete(), "all tracked segments must have arrivals");
  util::SimTime best = util::SimTime::zero();
  for (std::int64_t s = 0; s < tracked_segments(); ++s) {
    const util::SimTime slack = *arrivals_[static_cast<std::size_t>(s)] - segment_duration_ * s;
    best = std::max(best, slack);
  }
  return best;
}

}  // namespace p2ps::media
