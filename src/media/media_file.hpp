// Constant-bit-rate media model (paper Section 2, assumption 5).
//
// A media file is a sequence of equal-size segments; each segment plays for
// exactly `segment_duration` (the paper's Δt). Streaming correctness is
// purely a timing property at segment granularity: segment s must have fully
// arrived before its playback deadline `start_delay + s·Δt`.
#pragma once

#include <cstdint>

#include "util/assert.hpp"
#include "util/sim_time.hpp"

namespace p2ps::media {

/// Description of one CBR media item.
class MediaFile {
 public:
  /// `segments` — total number of segments; `segment_duration` — Δt.
  MediaFile(std::int64_t segments, util::SimTime segment_duration)
      : segments_(segments), segment_duration_(segment_duration) {
    P2PS_REQUIRE(segments > 0);
    P2PS_REQUIRE(segment_duration > util::SimTime::zero());
  }

  /// Convenience: a file with the given total show time, split into
  /// ceil(show_time / Δt) segments.
  [[nodiscard]] static MediaFile from_show_time(util::SimTime show_time,
                                                util::SimTime segment_duration) {
    P2PS_REQUIRE(show_time > util::SimTime::zero());
    P2PS_REQUIRE(segment_duration > util::SimTime::zero());
    const std::int64_t n =
        (show_time.as_millis() + segment_duration.as_millis() - 1) /
        segment_duration.as_millis();
    return MediaFile(n, segment_duration);
  }

  [[nodiscard]] std::int64_t segments() const { return segments_; }
  [[nodiscard]] util::SimTime segment_duration() const { return segment_duration_; }
  [[nodiscard]] util::SimTime show_time() const { return segment_duration_ * segments_; }

  /// Playback deadline of segment `s` relative to transmission start, given
  /// the buffering delay `start_delay`: the moment the player consumes it.
  [[nodiscard]] util::SimTime deadline(std::int64_t s, util::SimTime start_delay) const {
    P2PS_REQUIRE(s >= 0 && s < segments_);
    return start_delay + segment_duration_ * s;
  }

 private:
  std::int64_t segments_;
  util::SimTime segment_duration_;
};

}  // namespace p2ps::media
