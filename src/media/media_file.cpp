#include "media/media_file.hpp"

// MediaFile is header-only today; this TU anchors the library and keeps the
// build target non-empty for tooling that expects one object per module.
namespace p2ps::media {}
