// Wall-clock phase profiler for the sharded lookahead-window runner.
//
// Each lookahead window splits into phases: every shard STEPs its events
// to the window end (the only parallel part), then the coordinator drains
// cross-shard ROUTEs and runs the BARRIER bookkeeping (directory flush,
// telemetry poll); at end of run the per-shard results MERGE. Timing each
// phase — and the step time per shard — is the first real data for the
// ROADMAP's "wall-clock scaling on a multi-core host" follow-on: the
// imbalance ratio (max/mean shard busy time) bounds the speedup the
// barrier design can reach on any core count.
//
// Threading: add_shard_step(s, ·) is called only by shard s's owning
// worker (thread-confined; cells are cache-line padded so neighbouring
// shards don't false-share), coordinator phases only by the coordinator,
// and reads happen at barriers or after the run — the runner's own
// std::barrier provides every needed happens-before edge, so cells are
// plain integers. Note route-drain and telemetry time are part of the
// barrier callback, so barrier_ns includes route_drain_ns.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace p2ps::obs {

enum class Phase : std::uint8_t { kStep = 0, kRouteDrain, kBarrier, kMerge };
inline constexpr int kNumPhases = 4;

[[nodiscard]] std::string_view to_string(Phase phase);

class PhaseProfiler {
 public:
  explicit PhaseProfiler(int num_shards);

  /// Monotonic nanosecond clock for interval timing (never used for
  /// simulation decisions — telemetry is out-of-band by contract). On
  /// x86-64 this reads the invariant TSC (calibrated once per process
  /// against steady_clock) — roughly half the cost of a steady_clock
  /// read, and the profiler makes ~a dozen reads per lookahead window
  /// at hundreds of thousands of windows per run, so the clock itself
  /// is the profiler's dominant overhead. Portable fallback elsewhere.
  [[nodiscard]] static std::uint64_t now_ns();

  /// Shard s's worker accumulates its own window step time.
  void add_shard_step(int shard, std::uint64_t ns) {
    shard_step_[static_cast<std::size_t>(shard)].ns += ns;
  }
  /// Coordinator-only phase accumulation (route drain, barrier, merge).
  void add(Phase phase, std::uint64_t ns) {
    phase_ns_[static_cast<std::size_t>(phase)] += ns;
  }

  /// Coordinator-only: one runner dispatch covering `sub_windows` unit
  /// lookahead windows (>= 1). Splits the window population into unit
  /// dispatches (no fusion happened) and fused dispatches — the
  /// fused-vs-unit breakdown the telemetry phases record reports.
  void record_dispatch(int sub_windows) {
    if (sub_windows > 1) {
      ++fused_dispatches_;
      fused_sub_windows_ += static_cast<std::uint64_t>(sub_windows);
    } else {
      ++unit_dispatches_;
    }
  }
  [[nodiscard]] std::uint64_t unit_dispatches() const {
    return unit_dispatches_;
  }
  [[nodiscard]] std::uint64_t fused_dispatches() const {
    return fused_dispatches_;
  }
  /// Unit sub-windows absorbed by the fused dispatches (each counts all
  /// of its sub-windows, including the first).
  [[nodiscard]] std::uint64_t fused_sub_windows() const {
    return fused_sub_windows_;
  }

  [[nodiscard]] int num_shards() const {
    return static_cast<int>(shard_step_.size());
  }
  [[nodiscard]] std::uint64_t shard_step_ns(int shard) const {
    return shard_step_[static_cast<std::size_t>(shard)].ns;
  }
  /// Phase::kStep reports the SUM of per-shard step time (total busy
  /// work); the wall-clock step time of a window is its max, not its sum.
  [[nodiscard]] std::uint64_t phase_ns(Phase phase) const;

  /// max/mean per-shard step (busy) time: 1.0 = perfectly balanced, N for
  /// one hot shard among N idle ones; 0 before any timing data.
  [[nodiscard]] double imbalance() const;

 private:
  struct alignas(64) Cell {  // one cache line per shard: no false sharing
    std::uint64_t ns = 0;
  };
  std::vector<Cell> shard_step_;
  std::array<std::uint64_t, kNumPhases> phase_ns_{};
  std::uint64_t unit_dispatches_ = 0;
  std::uint64_t fused_dispatches_ = 0;
  std::uint64_t fused_sub_windows_ = 0;
};

/// RAII interval: adds the elapsed time to a profiler phase (or a shard's
/// step cell) on destruction; no-op when the profiler is null.
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler* profiler, Phase phase, int shard = -1)
      : profiler_(profiler),
        phase_(phase),
        shard_(shard),
        start_ns_(profiler ? PhaseProfiler::now_ns() : 0) {}
  ~ScopedPhase() {
    if (profiler_ == nullptr) return;
    const std::uint64_t elapsed = PhaseProfiler::now_ns() - start_ns_;
    if (shard_ >= 0) {
      profiler_->add_shard_step(shard_, elapsed);
    } else {
      profiler_->add(phase_, elapsed);
    }
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfiler* profiler_;
  Phase phase_;
  int shard_;
  std::uint64_t start_ns_;
};

}  // namespace p2ps::obs
