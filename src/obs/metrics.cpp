#include "obs/metrics.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace p2ps::obs {

std::string_view to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1, 0) {
  P2PS_REQUIRE_MSG(!bounds_.empty(), "histogram needs at least one bucket bound");
  P2PS_REQUIRE_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                       std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                           bounds_.end(),
                   "histogram bounds must be strictly increasing");
}

void Histogram::observe(std::int64_t value) {
  // Inclusive upper bounds; anything above the last bound lands in the
  // implicit overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  total_count_ += 1;
  sum_ += value;
}

Registry::Metric& Registry::find_or_create(std::string_view name,
                                           MetricKind kind) {
  P2PS_REQUIRE_MSG(!name.empty(), "metric name must not be empty");
  for (Metric& metric : metrics_) {
    if (metric.name == name) {
      P2PS_REQUIRE_MSG(metric.kind == kind,
                       "metric '" + metric.name + "' registered as " +
                           std::string(to_string(metric.kind)) +
                           ", requested as " + std::string(to_string(kind)));
      return metric;
    }
  }
  Metric& metric = metrics_.emplace_back();
  metric.name = std::string(name);
  metric.kind = kind;
  return metric;
}

Counter* Registry::counter(std::string_view name, int lane) {
  P2PS_REQUIRE(lane >= 0);
  Metric& metric = find_or_create(name, MetricKind::kCounter);
  while (metric.counters.size() <= static_cast<std::size_t>(lane)) {
    metric.counters.emplace_back();
  }
  return &metric.counters[static_cast<std::size_t>(lane)];
}

Gauge* Registry::gauge(std::string_view name, int lane, Aggregation aggregation) {
  P2PS_REQUIRE(lane >= 0);
  Metric& metric = find_or_create(name, MetricKind::kGauge);
  if (metric.gauges.empty()) metric.aggregation = aggregation;
  P2PS_REQUIRE_MSG(metric.aggregation == aggregation,
                   "metric '" + metric.name +
                       "' re-registered with a different aggregation");
  while (metric.gauges.size() <= static_cast<std::size_t>(lane)) {
    metric.gauges.emplace_back();
  }
  return &metric.gauges[static_cast<std::size_t>(lane)];
}

Histogram* Registry::histogram(std::string_view name,
                               std::vector<std::int64_t> bounds, int lane) {
  P2PS_REQUIRE(lane >= 0);
  Metric& metric = find_or_create(name, MetricKind::kHistogram);
  if (metric.histograms.empty()) {
    metric.bounds = std::move(bounds);
  } else {
    P2PS_REQUIRE_MSG(metric.bounds == bounds,
                     "histogram '" + metric.name +
                         "' re-registered with different bounds");
  }
  while (metric.histograms.size() <= static_cast<std::size_t>(lane)) {
    metric.histograms.emplace_back(Histogram(metric.bounds));
  }
  return &metric.histograms[static_cast<std::size_t>(lane)];
}

std::vector<Registry::Value> Registry::snapshot() const {
  std::vector<Value> out;
  out.reserve(metrics_.size());
  for (const Metric& metric : metrics_) {
    Value value;
    value.name = metric.name;
    value.kind = metric.kind;
    switch (metric.kind) {
      case MetricKind::kCounter:
        for (const Counter& cell : metric.counters) value.value += cell.value;
        break;
      case MetricKind::kGauge:
        if (metric.aggregation == Aggregation::kMax) {
          for (const Gauge& cell : metric.gauges) {
            value.value = std::max(value.value, cell.value);
          }
        } else {
          for (const Gauge& cell : metric.gauges) value.value += cell.value;
        }
        break;
      case MetricKind::kHistogram: {
        value.hist_bounds = &metric.bounds;
        value.hist_counts.assign(metric.bounds.size() + 1, 0);
        for (const Histogram& cell : metric.histograms) {
          value.value += cell.total_count();
          value.hist_sum += cell.sum();
          for (std::size_t i = 0; i < value.hist_counts.size(); ++i) {
            value.hist_counts[i] += cell.counts()[i];
          }
        }
        break;
      }
    }
    out.push_back(std::move(value));
  }
  return out;
}

std::int64_t Registry::aggregate(std::string_view name) const {
  for (const Metric& metric : metrics_) {
    if (metric.name != name) continue;
    std::int64_t total = 0;
    switch (metric.kind) {
      case MetricKind::kCounter:
        for (const Counter& cell : metric.counters) total += cell.value;
        break;
      case MetricKind::kGauge:
        if (metric.aggregation == Aggregation::kMax) {
          for (const Gauge& cell : metric.gauges) {
            total = std::max(total, cell.value);
          }
        } else {
          for (const Gauge& cell : metric.gauges) total += cell.value;
        }
        break;
      case MetricKind::kHistogram:
        for (const Histogram& cell : metric.histograms) {
          total += cell.total_count();
        }
        break;
    }
    return total;
  }
  return 0;
}

}  // namespace p2ps::obs
