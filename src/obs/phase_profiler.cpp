#include "obs/phase_profiler.hpp"

#include <algorithm>
#include <chrono>
#include <string_view>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <x86intrin.h>
#define P2PS_OBS_HAVE_RDTSC 1
#endif

#include "util/assert.hpp"

namespace p2ps::obs {

namespace {

[[nodiscard]] std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if defined(P2PS_OBS_HAVE_RDTSC)
/// ns per TSC tick, calibrated once per process with a ~2 ms spin against
/// steady_clock. Modern x86-64 has an invariant (constant-rate) TSC, so a
/// single calibration holds for the process lifetime; the ~0.1% jitter of
/// a short calibration window is irrelevant for phase accounting.
[[nodiscard]] double ns_per_tick() {
  static const double ratio = [] {
    const std::uint64_t ns0 = steady_ns();
    const std::uint64_t tsc0 = __rdtsc();
    while (steady_ns() - ns0 < 2'000'000u) {
    }
    const std::uint64_t tsc1 = __rdtsc();
    const std::uint64_t ns1 = steady_ns();
    return static_cast<double>(ns1 - ns0) / static_cast<double>(tsc1 - tsc0);
  }();
  return ratio;
}
#endif

}  // namespace

std::uint64_t PhaseProfiler::now_ns() {
#if defined(P2PS_OBS_HAVE_RDTSC)
  return static_cast<std::uint64_t>(static_cast<double>(__rdtsc()) *
                                    ns_per_tick());
#else
  return steady_ns();
#endif
}

std::string_view to_string(Phase phase) {
  switch (phase) {
    case Phase::kStep: return "step";
    case Phase::kRouteDrain: return "route_drain";
    case Phase::kBarrier: return "barrier";
    case Phase::kMerge: return "merge";
  }
  return "?";
}

PhaseProfiler::PhaseProfiler(int num_shards)
    : shard_step_(static_cast<std::size_t>(num_shards)) {
  P2PS_REQUIRE_MSG(num_shards >= 1, "profiler needs at least one shard");
}

std::uint64_t PhaseProfiler::phase_ns(Phase phase) const {
  if (phase == Phase::kStep) {
    std::uint64_t total = 0;
    for (const Cell& cell : shard_step_) total += cell.ns;
    return total;
  }
  return phase_ns_[static_cast<std::size_t>(phase)];
}

double PhaseProfiler::imbalance() const {
  std::uint64_t max_ns = 0;
  std::uint64_t total = 0;
  for (const Cell& cell : shard_step_) {
    max_ns = std::max(max_ns, cell.ns);
    total += cell.ns;
  }
  if (total == 0) return 0.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(shard_step_.size());
  return static_cast<double>(max_ns) / mean;
}

}  // namespace p2ps::obs
