// Time-series telemetry exporter: periodic JSONL snapshots of a run.
//
// One Telemetry object lives for one `p2ps_run` invocation (or one test
// run) and owns the whole observability stack: the metric Registry the
// engines publish into, the optional sharded PhaseProfiler, the anomaly
// Watchdog, and the JSONL output stream. Engines hold a borrowed pointer
// through their configs and, at their existing out-of-band sampling
// points (window barriers for the sharded engine, the hourly Periodic
// sampler for session engines), do
//
//     if (telemetry && telemetry->snapshot_due()) {
//       publish_metrics();           // write gauges/counters into lanes
//       telemetry->snapshot(now_ms); // may throw WatchdogAbort
//     }
//
// snapshot_due() gates on WALL clock (steady_clock), so a 90-second run
// at the default 1000 ms interval emits ~90 snapshots regardless of how
// much simulated time each window covers. Because every poll site is a
// point the engine already visits — no new events, no RNG draws — the
// simulation trajectory is bit-identical with telemetry on or off; the
// byte-identity of scenario payloads is enforced by tests/obs_test.cpp.
//
// Output: one JSON object per line —
//   {"type":"snapshot","seq":N,"sim_ms":…,"wall_ms":…,"rss_bytes":…,
//    "metrics":{name:value | {histogram}},
//    "phases":{…,"imbalance":…},        (sharded runs only)
//    "watchdog":[trip,…]}               (only when rules tripped)
// and one final {"type":"summary",…} record. scripts/check_telemetry.py
// validates the schema in CI.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "obs/metrics.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/watchdog.hpp"

namespace p2ps::obs {

struct TelemetryOptions {
  /// JSONL output path; empty = telemetry disabled (enabled() == false).
  std::string path;
  /// Wall-clock milliseconds between snapshots; 0 = snapshot on every
  /// poll (tests and watchdog integration use 0 for determinism).
  std::int64_t interval_ms = 1000;
  /// One-line progress heartbeat to stderr per snapshot — the "is my
  /// 90-second run alive" signal for long runs.
  bool heartbeat = true;
  WatchdogConfig watchdog;
};

/// Current resident set size in bytes (/proc/self/statm); 0 if unreadable.
/// Distinct from engine::process_peak_rss_bytes(): snapshots want the
/// current level, the end-of-run mechanics block wants the high-water mark.
[[nodiscard]] std::int64_t process_current_rss_bytes();

class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions options);
  ~Telemetry();  // emits the summary record if finish() was never called
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] bool enabled() const { return enabled_; }
  /// False when the output path could not be opened (CLI reports and exits).
  [[nodiscard]] bool ok() const { return !enabled_ || out_.is_open(); }

  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] const Registry& registry() const { return registry_; }

  /// Sharded engine announces its shard count; null for session engines.
  PhaseProfiler* attach_profiler(int num_shards);
  [[nodiscard]] PhaseProfiler* profiler() { return profiler_.get(); }

  /// True when the next poll should publish + snapshot.
  [[nodiscard]] bool snapshot_due() const;

  /// Emits one snapshot record and evaluates the watchdog; throws
  /// WatchdogAbort when a rule trips under the abort action (after the
  /// snapshot line — the evidence outlives the abort).
  void snapshot(std::int64_t sim_ms);

  /// Emits the final summary record; idempotent.
  void finish();

  [[nodiscard]] std::int64_t snapshots() const { return snapshots_; }
  [[nodiscard]] const Watchdog& watchdog() const { return watchdog_; }
  [[nodiscard]] std::int64_t wall_ms() const;

 private:
  void write_record(bool is_summary, std::int64_t sim_ms);

  TelemetryOptions options_;
  bool enabled_ = false;
  Registry registry_;
  std::unique_ptr<PhaseProfiler> profiler_;
  Watchdog watchdog_;
  std::ofstream out_;
  std::uint64_t start_ns_ = 0;
  std::int64_t last_snapshot_wall_ms_ = 0;
  std::int64_t snapshots_ = 0;
  std::int64_t last_sim_ms_ = 0;
  bool finished_ = false;
};

}  // namespace p2ps::obs
