#include "obs/telemetry.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "scenario/json.hpp"
#include "util/logging.hpp"

namespace p2ps::obs {

std::int64_t process_current_rss_bytes() {
#if defined(__linux__)
  // /proc/self/statm: size resident shared text lib data dt (pages).
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  long long size_pages = 0;
  long long resident_pages = 0;
  const int parsed =
      std::fscanf(statm, "%lld %lld", &size_pages, &resident_pages);
  std::fclose(statm);
  if (parsed != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<std::int64_t>(resident_pages) *
         static_cast<std::int64_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

Telemetry::Telemetry(TelemetryOptions options)
    : options_(std::move(options)),
      enabled_(!options_.path.empty()),
      watchdog_(options_.watchdog),
      start_ns_(PhaseProfiler::now_ns()) {
  if (enabled_) out_.open(options_.path);
}

Telemetry::~Telemetry() {
  finish();  // safety net: the summary record survives early exits
}

PhaseProfiler* Telemetry::attach_profiler(int num_shards) {
  if (!enabled_) return nullptr;
  // One profiler per run: a scenario that builds several sharded engines
  // (comparison scenarios) keeps accumulating into the widest one.
  if (profiler_ == nullptr || profiler_->num_shards() < num_shards) {
    profiler_ = std::make_unique<PhaseProfiler>(num_shards);
  }
  return profiler_.get();
}

std::int64_t Telemetry::wall_ms() const {
  return static_cast<std::int64_t>((PhaseProfiler::now_ns() - start_ns_) /
                                   1'000'000u);
}

bool Telemetry::snapshot_due() const {
  if (!enabled_ || finished_) return false;
  if (options_.interval_ms <= 0) return true;
  return wall_ms() - last_snapshot_wall_ms_ >= options_.interval_ms;
}

namespace {

scenario::Json metrics_json(const Registry& registry) {
  scenario::Json metrics = scenario::Json::object();
  for (const Registry::Value& value : registry.snapshot()) {
    if (value.kind == MetricKind::kHistogram) {
      scenario::Json hist = scenario::Json::object();
      hist.set("count", value.value);
      hist.set("sum", value.hist_sum);
      scenario::Json bounds = scenario::Json::array();
      for (const std::int64_t bound : *value.hist_bounds) {
        bounds.push_back(bound);
      }
      hist.set("bounds", std::move(bounds));
      scenario::Json counts = scenario::Json::array();
      for (const std::int64_t count : value.hist_counts) {
        counts.push_back(count);
      }
      hist.set("counts", std::move(counts));
      metrics.set(std::string(value.name), std::move(hist));
    } else {
      metrics.set(std::string(value.name), value.value);
    }
  }
  return metrics;
}

scenario::Json phases_json(const PhaseProfiler& profiler) {
  const auto phase_ms = [&](Phase phase) {
    return static_cast<double>(profiler.phase_ns(phase)) / 1e6;
  };
  scenario::Json phases = scenario::Json::object();
  scenario::Json per_shard = scenario::Json::array();
  for (int shard = 0; shard < profiler.num_shards(); ++shard) {
    per_shard.push_back(static_cast<double>(profiler.shard_step_ns(shard)) /
                        1e6);
  }
  phases.set("step_ms_per_shard", std::move(per_shard));
  phases.set("step_ms", phase_ms(Phase::kStep));
  phases.set("route_drain_ms", phase_ms(Phase::kRouteDrain));
  phases.set("barrier_ms", phase_ms(Phase::kBarrier));
  phases.set("merge_ms", phase_ms(Phase::kMerge));
  phases.set("imbalance", profiler.imbalance());
  // Fused-vs-unit dispatch breakdown (sim/shard_runner.hpp window fusion):
  // how many runner dispatches covered exactly one unit sub-window vs
  // several, and how many sub-windows the fused dispatches absorbed.
  phases.set("unit_windows", profiler.unit_dispatches());
  phases.set("fused_windows", profiler.fused_dispatches());
  phases.set("fused_sub_windows", profiler.fused_sub_windows());
  return phases;
}

}  // namespace

void Telemetry::write_record(bool is_summary, std::int64_t sim_ms) {
  scenario::Json record = scenario::Json::object();
  record.set("type", is_summary ? "summary" : "snapshot");
  if (is_summary) {
    record.set("snapshots", snapshots_);
    record.set("watchdog_trips", watchdog_.trips());
  } else {
    record.set("seq", snapshots_);
  }
  record.set("sim_ms", sim_ms);
  record.set("wall_ms", wall_ms());
  record.set("rss_bytes", process_current_rss_bytes());
  record.set("metrics", metrics_json(registry_));
  if (profiler_ != nullptr) record.set("phases", phases_json(*profiler_));
  if (!is_summary) {
    const WatchdogSample sample{
        sim_ms, registry_.aggregate(kMetricAttempts),
        registry_.aggregate(kMetricAdmissions),
        registry_.aggregate(kMetricPendingEvents)};
    const std::vector<std::string> trips = watchdog_.evaluate(sample);
    if (!trips.empty()) {
      scenario::Json tripped = scenario::Json::array();
      for (const std::string& trip : trips) tripped.push_back(trip);
      record.set("watchdog", std::move(tripped));
    }
    out_ << record.dump() << '\n' << std::flush;
    for (const std::string& trip : trips) {
      P2PS_WARN("watchdog: " << trip);
    }
    if (!trips.empty() &&
        watchdog_.config().action == WatchdogAction::kAbort) {
      std::ostringstream os;
      os << trips.front();
      if (trips.size() > 1) os << " (+" << trips.size() - 1 << " more)";
      throw WatchdogAbort(os.str());
    }
    return;
  }
  out_ << record.dump() << '\n' << std::flush;
}

void Telemetry::snapshot(std::int64_t sim_ms) {
  if (!enabled_ || finished_) return;
  last_sim_ms_ = sim_ms;
  ++snapshots_;
  last_snapshot_wall_ms_ = wall_ms();
  if (options_.heartbeat) {
    std::cerr << "[telemetry] snapshot " << snapshots_ << " sim=" << sim_ms
              << "ms wall=" << last_snapshot_wall_ms_ << "ms events="
              << registry_.aggregate(kMetricEventsExecuted) << '\n';
  }
  write_record(/*is_summary=*/false, sim_ms);  // may throw WatchdogAbort
}

void Telemetry::finish() {
  if (!enabled_ || finished_) return;
  finished_ = true;
  write_record(/*is_summary=*/true, last_sim_ms_);
}

}  // namespace p2ps::obs
