// Runtime metric registry — the heart of the telemetry layer.
//
// Design bar (docs/observability.md): telemetry must be ZERO overhead when
// off and strictly OUT OF BAND when on — registry reads and writes never
// schedule events, never draw randomness, and never touch simulation
// state, so scenario payloads stay byte-identical with telemetry enabled
// or disabled (enforced by tests/obs_test.cpp).
//
// Hot-path access is by pointer handle: an engine registers a metric once
// (`registry.counter("attempts")`) and keeps the returned pointer — each
// subsequent update is a single add/store with no name lookup. Handles
// stay valid for the registry's lifetime (deque-backed storage; growth
// never moves existing cells).
//
// Sharded engines use LANES: lane s is shard s's private cell of the same
// named metric. During a lookahead window each shard worker touches only
// its own lane (thread-confined, plain int64 writes — no atomics); the
// coordinator aggregates across lanes at window barriers, where the
// runner's std::barrier already provides the happens-before edge. That is
// the "lock-free at window barriers" contract: no synchronization beyond
// what the sharded runner does anyway.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace p2ps::obs {

/// Monotonically increasing count. Plain struct — hot paths do
/// `if (handle) handle->add();` and nothing else.
struct Counter {
  std::int64_t value = 0;
  void add(std::int64_t n = 1) { value += n; }
};

/// Point-in-time level, overwritten at each publish.
struct Gauge {
  std::int64_t value = 0;
  void set(std::int64_t v) { value = v; }
};

/// Fixed-bucket histogram: `bounds` are strictly increasing inclusive
/// upper bounds; one implicit overflow bucket catches everything above
/// the last bound (counts().size() == bounds().size() + 1).
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  void observe(std::int64_t value);

  [[nodiscard]] const std::vector<std::int64_t>& bounds() const { return bounds_; }
  [[nodiscard]] const std::vector<std::int64_t>& counts() const { return counts_; }
  [[nodiscard]] std::int64_t total_count() const { return total_count_; }
  [[nodiscard]] std::int64_t sum() const { return sum_; }

 private:
  std::vector<std::int64_t> bounds_;
  std::vector<std::int64_t> counts_;  ///< bounds_.size() + 1 (overflow last)
  std::int64_t total_count_ = 0;
  std::int64_t sum_ = 0;
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// How a multi-lane metric folds into one number. kSum fits counts and
/// additive levels (pending events per shard); kMax fits high-water marks
/// (per-shard peak event list), where a sum would overstate the peak.
enum class Aggregation : std::uint8_t { kSum, kMax };

[[nodiscard]] std::string_view to_string(MetricKind kind);

class Registry {
 public:
  /// Registers (or re-finds) a metric and returns the stable handle for
  /// `lane`. Registration is coordinator-side (engine construction or
  /// barrier code), never inside a shard window; kind/bounds mismatches
  /// with an existing name throw ContractViolation.
  Counter* counter(std::string_view name, int lane = 0);
  Gauge* gauge(std::string_view name, int lane = 0,
               Aggregation aggregation = Aggregation::kSum);
  Histogram* histogram(std::string_view name, std::vector<std::int64_t> bounds,
                       int lane = 0);

  /// Aggregated view of one metric at snapshot time.
  struct Value {
    std::string_view name;
    MetricKind kind = MetricKind::kCounter;
    std::int64_t value = 0;  ///< counter/gauge aggregate; histogram total count
    // Histogram-only: bucket counts summed across lanes + shared bounds.
    const std::vector<std::int64_t>* hist_bounds = nullptr;
    std::vector<std::int64_t> hist_counts;
    std::int64_t hist_sum = 0;
  };

  /// All metrics aggregated across lanes, in registration order (stable
  /// and deterministic — engines register in deterministic order).
  [[nodiscard]] std::vector<Value> snapshot() const;

  /// Aggregate of one named counter/gauge; 0 when absent (watchdogs read
  /// by well-known name and tolerate engines that don't emit a metric).
  [[nodiscard]] std::int64_t aggregate(std::string_view name) const;

  [[nodiscard]] std::size_t size() const { return metrics_.size(); }

 private:
  struct Metric {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    Aggregation aggregation = Aggregation::kSum;
    std::vector<std::int64_t> bounds;  ///< histogram template
    // Lane cells. Deques: growing a lane list never invalidates handles
    // already given out for earlier lanes.
    std::deque<Counter> counters;
    std::deque<Gauge> gauges;
    std::deque<Histogram> histograms;
  };

  Metric& find_or_create(std::string_view name, MetricKind kind);

  std::deque<Metric> metrics_;  ///< deque: handles into cells stay valid
};

// Well-known metric names shared between the engines (writers) and the
// watchdogs (readers). Engines that track these concepts must use these
// exact names for anomaly rules to see them.
inline constexpr std::string_view kMetricAttempts = "attempts";
inline constexpr std::string_view kMetricAdmissions = "admissions";
inline constexpr std::string_view kMetricRejections = "rejections";
inline constexpr std::string_view kMetricFirstRequests = "first_requests";
inline constexpr std::string_view kMetricPendingEvents = "pending_events";
inline constexpr std::string_view kMetricEventsExecuted = "events_executed";

}  // namespace p2ps::obs
