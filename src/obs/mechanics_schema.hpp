// The one shared table of event-core mechanics counters.
//
// Mechanics counters describe HOW a run executed (event counts, peaks,
// pool traffic, RSS), not WHAT it computed — they are the only payload
// fields allowed to vary across event-list backends, timer strategies,
// shard counts and machines. Two consumers must agree on the exact key
// set: scenario payloads emit them (behind --mechanics for the partition-
// dependent ones), and scenario::strip_event_mechanics zeroes them before
// parity comparisons. Deriving both from this table means a new counter
// added here is automatically stripped — it cannot silently leak into a
// parity-checked payload — and docs/observability.md documents the same
// list the code enforces.
#pragma once

#include <cstddef>
#include <string_view>

namespace p2ps::obs {

struct MechanicsField {
  std::string_view key;
  std::string_view description;
};

/// The schema, ordered so that no key is a prefix of a LATER key (e.g.
/// "peak_event_list_timers" precedes "peak_event_list") — the order
/// strip_event_mechanics' longest-match-first scan depends on; enforced
/// by a static assert in mechanics_schema.cpp and tests/obs_test.cpp.
[[nodiscard]] const MechanicsField* mechanics_schema();
[[nodiscard]] std::size_t mechanics_schema_size();

}  // namespace p2ps::obs
