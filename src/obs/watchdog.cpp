#include "obs/watchdog.hpp"

#include <algorithm>
#include <sstream>

namespace p2ps::obs {

std::optional<WatchdogAction> parse_watchdog_action(std::string_view token) {
  if (token == "off") return WatchdogAction::kOff;
  if (token == "warn") return WatchdogAction::kWarn;
  if (token == "abort") return WatchdogAction::kAbort;
  return std::nullopt;
}

std::string_view to_string(WatchdogAction action) {
  switch (action) {
    case WatchdogAction::kOff: return "off";
    case WatchdogAction::kWarn: return "warn";
    case WatchdogAction::kAbort: return "abort";
  }
  return "?";
}

std::vector<std::string> Watchdog::evaluate(const WatchdogSample& sample) {
  std::vector<std::string> tripped;
  if (config_.action == WatchdogAction::kOff) return tripped;

  if (baseline_pending_ < 0) {
    baseline_pending_ = std::max<std::int64_t>(sample.pending_events, 1);
  }

  if (prev_) {
    // Admission-rate collapse over the snapshot interval. Interval deltas,
    // not cumulative totals: a long healthy warmup must not mask a
    // collapse, and a rough start must not trip a healthy steady state.
    const std::int64_t d_attempts = sample.attempts - prev_->attempts;
    const std::int64_t d_admissions = sample.admissions - prev_->admissions;
    if (d_attempts >= config_.min_interval_attempts) {
      const double rate =
          static_cast<double>(d_admissions) / static_cast<double>(d_attempts);
      if (rate < config_.min_admission_rate) {
        std::ostringstream os;
        os << "admission-rate collapse: " << d_admissions << "/" << d_attempts
           << " admitted over the last snapshot interval (rate " << rate
           << " < " << config_.min_admission_rate << ")";
        tripped.push_back(os.str());
      }
    }

    // Stalled sim-time: wall clock advances (we are here), sim time not.
    if (sample.sim_ms <= prev_->sim_ms) {
      ++stalled_;
      if (stalled_ >= config_.stall_snapshots) {
        std::ostringstream os;
        os << "stalled sim-time: no progress past " << sample.sim_ms
           << " ms for " << stalled_ << " consecutive snapshots";
        tripped.push_back(os.str());
      }
    } else {
      stalled_ = 0;
    }
  }

  // Event-list blow-up vs the run's baseline.
  if (sample.pending_events >= config_.min_event_list &&
      static_cast<double>(sample.pending_events) >
          config_.growth_factor * static_cast<double>(baseline_pending_)) {
    std::ostringstream os;
    os << "event-list blow-up: " << sample.pending_events
       << " pending events > " << config_.growth_factor << "x baseline "
       << baseline_pending_;
    tripped.push_back(os.str());
  }

  prev_ = sample;
  trips_ += static_cast<std::int64_t>(tripped.size());
  return tripped;
}

}  // namespace p2ps::obs
