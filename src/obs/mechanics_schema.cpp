#include "obs/mechanics_schema.hpp"

namespace p2ps::obs {

namespace {

constexpr MechanicsField kSchema[] = {
    {"peak_event_list_timers",
     "armed-timer share of the pending-event population at its peak "
     "instant (the component the wheel/lazy timer strategies collapse)"},
    {"peak_event_list_other",
     "non-timer share of the pending-event population at its peak instant "
     "(peak_event_list_timers + peak_event_list_other = peak_event_list)"},
    {"peak_event_list",
     "high-water mark of the simulator's pending-event population"},
    {"events_executed",
     "total simulator events executed (per shard in sharded payloads)"},
    {"timer_events_scheduled",
     "simulator events the timer subsystem scheduled (strategy-dependent; "
     "see docs/timers.md)"},
    {"peak_rss_bytes",
     "process peak resident set size (getrusage; machine-dependent)"},
    {"bytes_per_peer",
     "peak_rss_bytes / total peers — the memory-campaign density gate "
     "(docs/memory.md)"},
    {"pool_allocations",
     "cold-state pool slots constructed fresh (engine RNG/attempt pools + "
     "router batch pool)"},
    {"pool_reuses",
     "cold-state pool slots recycled off a free list (healthy steady "
     "state reuses far more than it allocates)"},
    {"windows_idle_skipped",
     "sharded lookahead windows whose start jumped an idle gap instead of "
     "barriering through it"},
    {"windows_fused",
     "unit lookahead sub-windows absorbed into a prior runner dispatch by "
     "window fusion (docs/sharding.md, Adaptive lookahead)"},
    {"directory_flushes",
     "directory slow-path publications — windows where joins were actually "
     "due; every other window takes the O(1) nothing-due fast path"},
    {"lookahead_avg_ms",
     "mean simulated span covered per unit sub-window, ms (idle skips "
     "included, so sparse phases push this above the lookahead)"},
};

/// No key may be a prefix of a later key — the longest-match-first scan in
/// strip_event_mechanics would otherwise zero the wrong field.
constexpr bool prefix_order_ok() {
  for (std::size_t i = 0; i < std::size(kSchema); ++i) {
    for (std::size_t j = i + 1; j < std::size(kSchema); ++j) {
      const std::string_view earlier = kSchema[i].key;
      const std::string_view later = kSchema[j].key;
      if (later.size() > earlier.size() &&
          later.substr(0, earlier.size()) == earlier) {
        return false;
      }
    }
  }
  return true;
}
static_assert(prefix_order_ok(),
              "mechanics schema keys must list longer keys before their "
              "prefixes (strip_event_mechanics scan order)");

}  // namespace

const MechanicsField* mechanics_schema() { return kSchema; }

std::size_t mechanics_schema_size() { return std::size(kSchema); }

}  // namespace p2ps::obs
