// Anomaly watchdogs over the telemetry snapshot stream.
//
// A multi-hour soak run (ROADMAP) must not burn a day producing garbage:
// the watchdog looks at each snapshot's deltas and trips on the failure
// shapes that matter for this simulator —
//   * ADMISSION-RATE COLLAPSE: the admission/attempt ratio over the last
//     snapshot interval fell below a floor while attempts keep flowing
//     (the paper's capacity self-amplification has stalled, e.g. total
//     message loss or a starved class);
//   * EVENT-LIST BLOW-UP: pending events grew by a large factor over the
//     run's baseline (a leak in a lazy source or a retry storm);
//   * STALLED SIM-TIME: wall-clock snapshots keep coming but simulated
//     time stopped advancing (a livelocked window).
// Action is warn (log and keep going) or abort (throw WatchdogAbort; the
// CLI maps it to exit code 3) — the stop-condition substrate the soak
// harness item needs.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace p2ps::obs {

enum class WatchdogAction : std::uint8_t { kOff, kWarn, kAbort };

[[nodiscard]] std::optional<WatchdogAction> parse_watchdog_action(
    std::string_view token);
[[nodiscard]] std::string_view to_string(WatchdogAction action);

struct WatchdogConfig {
  WatchdogAction action = WatchdogAction::kWarn;

  /// Admission-collapse rule: evaluated only when at least this many
  /// attempts happened within the snapshot interval (small deltas make
  /// rates meaningless), trips when interval admissions/attempts falls
  /// below `min_admission_rate`.
  std::int64_t min_interval_attempts = 1000;
  double min_admission_rate = 0.001;

  /// Event-list rule: trips when pending events exceed both this floor
  /// and `growth_factor` × the first snapshot's pending count.
  std::int64_t min_event_list = 1'000'000;
  double growth_factor = 8.0;

  /// Stall rule: trips after this many consecutive snapshots without
  /// sim-time progress.
  int stall_snapshots = 5;
};

/// Thrown by the telemetry layer when a rule trips under kAbort.
class WatchdogAbort : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The registry values one snapshot feeds into the rules.
struct WatchdogSample {
  std::int64_t sim_ms = 0;
  std::int64_t attempts = 0;
  std::int64_t admissions = 0;
  std::int64_t pending_events = 0;
};

class Watchdog {
 public:
  explicit Watchdog(WatchdogConfig config) : config_(config) {}

  /// Evaluates every rule against the previous snapshot; returns the trip
  /// descriptions for this one (empty = healthy). The caller decides what
  /// the action means (warn log vs WatchdogAbort).
  [[nodiscard]] std::vector<std::string> evaluate(const WatchdogSample& sample);

  [[nodiscard]] const WatchdogConfig& config() const { return config_; }
  [[nodiscard]] std::int64_t trips() const { return trips_; }

 private:
  WatchdogConfig config_;
  std::optional<WatchdogSample> prev_;
  std::int64_t baseline_pending_ = -1;  ///< first snapshot's pending count
  int stalled_ = 0;
  std::int64_t trips_ = 0;
};

}  // namespace p2ps::obs
