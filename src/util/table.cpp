#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace p2ps::util {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  P2PS_REQUIRE(!headers_.empty());
}

TextTable& TextTable::new_row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::add_cell(std::string value) {
  P2PS_REQUIRE_MSG(!rows_.empty(), "call new_row() before add_cell()");
  P2PS_REQUIRE_MSG(rows_.back().size() < headers_.size(), "row has too many cells");
  rows_.back().push_back(std::move(value));
  return *this;
}

TextTable& TextTable::add_cell(double value, int precision) {
  return add_cell(format_double(value, precision));
}

TextTable& TextTable::add_cell(long long value) {
  return add_cell(std::to_string(value));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << std::setw(static_cast<int>(widths[c])) << cell;
      if (c + 1 < headers_.size()) os << "  ";
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) os << ',';
      if (c < cells.size()) os << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace p2ps::util
