// Streaming statistics helpers used by the metrics layer and the tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace p2ps::util {

/// Welford-style running mean / variance with min and max.
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  /// Mean of the samples. Requires at least one sample.
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance. Requires at least two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const RunningStat& other);

  void reset() { *this = RunningStat{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp into the
/// first / last bin. Used for distribution-shaped test assertions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Fraction of samples in bin i. Requires total() > 0.
  [[nodiscard]] double fraction(std::size_t i) const;
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exact percentile from a sample vector (nearest-rank). `p` in [0, 100].
[[nodiscard]] double percentile(std::vector<double> samples, double p);

}  // namespace p2ps::util
