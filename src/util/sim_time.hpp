// Simulated-time strong type.
//
// All simulation timestamps and durations are integer milliseconds, which
// keeps every quantity in the paper exact: segment playback times (seconds),
// session lengths (minutes), timeouts and backoffs (minutes), and the
// 144-hour horizon all convert to whole milliseconds.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <limits>

namespace p2ps::util {

/// A point in (or span of) simulated time, in integer milliseconds.
///
/// SimTime doubles as a duration type: differences and sums of SimTime are
/// SimTime. This mirrors the paper, where absolute time and intervals share
/// the same unit axis (hours in the figures, Δt in Theorem 1).
class SimTime {
 public:
  constexpr SimTime() = default;

  /// Named constructors — prefer these over raw milliseconds.
  [[nodiscard]] static constexpr SimTime millis(std::int64_t ms) { return SimTime{ms}; }
  [[nodiscard]] static constexpr SimTime seconds(std::int64_t s) { return SimTime{s * 1000}; }
  [[nodiscard]] static constexpr SimTime minutes(std::int64_t m) { return SimTime{m * 60'000}; }
  [[nodiscard]] static constexpr SimTime hours(std::int64_t h) { return SimTime{h * 3'600'000}; }
  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t as_millis() const { return ms_; }
  [[nodiscard]] constexpr double as_seconds() const { return static_cast<double>(ms_) / 1e3; }
  [[nodiscard]] constexpr double as_minutes() const { return static_cast<double>(ms_) / 60e3; }
  [[nodiscard]] constexpr double as_hours() const { return static_cast<double>(ms_) / 3600e3; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime rhs) { ms_ += rhs.ms_; return *this; }
  constexpr SimTime& operator-=(SimTime rhs) { ms_ -= rhs.ms_; return *this; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime{a.ms_ + b.ms_}; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime{a.ms_ - b.ms_}; }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) { return SimTime{a.ms_ * k}; }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) { return SimTime{a.ms_ * k}; }

  /// Integer division of durations (e.g. how many Δt fit in a span).
  friend constexpr std::int64_t operator/(SimTime a, SimTime b) { return a.ms_ / b.ms_; }

 private:
  explicit constexpr SimTime(std::int64_t ms) : ms_(ms) {}
  std::int64_t ms_ = 0;
};

std::ostream& operator<<(std::ostream& os, SimTime t);

}  // namespace p2ps::util
