#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace p2ps::util {

std::uint64_t Rng::uniform_below(std::uint64_t bound) {
  P2PS_REQUIRE(bound > 0);
  // Lemire-style rejection keeps the draw unbiased.
  const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  P2PS_REQUIRE(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  return lo + static_cast<std::int64_t>(uniform_below(span));
}

double Rng::uniform01() {
  // 53 random bits mapped to [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  P2PS_REQUIRE(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double rate) {
  P2PS_REQUIRE(rate > 0.0);
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k, bool clamp) {
  std::vector<std::size_t> out;
  sample_indices_into(out, n, k, clamp);
  return out;
}

void Rng::sample_indices_into(std::vector<std::size_t>& out, std::size_t n,
                              std::size_t k, bool clamp) {
  if (clamp) k = std::min(k, n);
  P2PS_REQUIRE(k <= n);
  out.clear();
  out.reserve(k);
  if (k == 0) return;

  if (k * 4 <= n) {
    // Floyd's algorithm. The chosen-so-far set is exactly the contents of
    // `out`, so membership is a linear scan — free of allocation and, for
    // the k of a candidate-probe fan-out, faster than a hash set.
    const auto chosen = [&out](std::size_t value) {
      return std::find(out.begin(), out.end(), value) != out.end();
    };
    for (std::size_t j = n - k; j < n; ++j) {
      std::size_t t = static_cast<std::size_t>(uniform_below(j + 1));
      out.push_back(chosen(t) ? j : t);
    }
  } else {
    // Dense request (k close to n): partial Fisher–Yates over an index
    // pool. Only reachable for small n on the engine's hot path (k is the
    // probe fan-out), so the pool allocation is not a steady-state cost.
    std::vector<std::size_t> pool(n);
    for (std::size_t i = 0; i < n; ++i) pool[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + static_cast<std::size_t>(uniform_below(n - i));
      std::swap(pool[i], pool[j]);
    }
    out.assign(pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(k));
  }
}

}  // namespace p2ps::util
