// Minimal leveled logger.
//
// The simulator is hot-path sensitive, so log statements evaluate their
// stream expressions only when the level is enabled. A single global logger
// is sufficient for a CLI research library; sinks are swappable for tests.
//
// Thread safety: shard workers (sim::ShardRunner) and sweep workers log
// through the same global instance, so the level is atomic (the hot
// enabled() check is one relaxed load) and the sink swap/invoke are
// mutex-guarded — a test swapping the sink can never race a worker
// mid-call into a destroyed std::function. Sink callbacks themselves run
// under the mutex, so one sink invocation never interleaves with another.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace p2ps::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] std::string_view to_string(LogLevel level);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  /// The process-wide logger. Defaults to stderr at kWarn.
  [[nodiscard]] static Logger& global();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled(LogLevel level) const {
    const LogLevel current = level_.load(std::memory_order_relaxed);
    return level >= current && current != LogLevel::kOff;
  }

  /// Replaces the output sink (e.g. a capture buffer in tests).
  void set_sink(Sink sink);

  void log(LogLevel level, std::string_view message);

 private:
  Logger();
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex sink_mutex_;
  Sink sink_;
};

}  // namespace p2ps::util

#define P2PS_LOG(level, expr)                                         \
  do {                                                                \
    auto& p2ps_logger = ::p2ps::util::Logger::global();               \
    if (p2ps_logger.enabled(level)) {                                 \
      std::ostringstream p2ps_log_os;                                 \
      p2ps_log_os << expr;                                            \
      p2ps_logger.log(level, p2ps_log_os.str());                      \
    }                                                                 \
  } while (false)

#define P2PS_TRACE(expr) P2PS_LOG(::p2ps::util::LogLevel::kTrace, expr)
#define P2PS_DEBUG(expr) P2PS_LOG(::p2ps::util::LogLevel::kDebug, expr)
#define P2PS_INFO(expr) P2PS_LOG(::p2ps::util::LogLevel::kInfo, expr)
#define P2PS_WARN(expr) P2PS_LOG(::p2ps::util::LogLevel::kWarn, expr)
#define P2PS_ERROR(expr) P2PS_LOG(::p2ps::util::LogLevel::kError, expr)
