// Minimal command-line flag parsing for the examples and harnesses.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Typed
// accessors validate and fall back to defaults; `usage()` renders the
// registered flags. Deliberately tiny — no subcommands, no config files.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace p2ps::util {

class Flags {
 public:
  /// Parses argv. Arguments not starting with "--" are positional and kept
  /// in order. Throws ContractViolation on malformed input (e.g. "--=x").
  Flags(int argc, const char* const* argv);

  /// True when `--name` appeared (with or without a value).
  [[nodiscard]] bool has(std::string_view name) const;

  /// Raw string value of `--name` (empty for bare boolean flags).
  [[nodiscard]] std::optional<std::string> value(std::string_view name) const;

  /// Typed accessors with defaults; throw on unparseable values.
  [[nodiscard]] std::int64_t get_int(std::string_view name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view name, double fallback) const;
  [[nodiscard]] std::string get_string(std::string_view name,
                                       std::string_view fallback) const;
  [[nodiscard]] bool get_bool(std::string_view name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  [[nodiscard]] const std::string& program() const { return program_; }

  /// Names that were passed but never queried — lets callers reject typos.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  struct Entry {
    std::string name;
    std::string value;
    bool has_value = false;
    mutable bool queried = false;
  };
  [[nodiscard]] const Entry* find(std::string_view name) const;

  std::string program_;
  std::vector<Entry> entries_;
  std::vector<std::string> positional_;
};

}  // namespace p2ps::util
