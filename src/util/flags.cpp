#include "util/flags.hpp"

#include <charconv>

#include "util/assert.hpp"

namespace p2ps::util {

Flags::Flags(int argc, const char* const* argv) {
  P2PS_REQUIRE(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    P2PS_REQUIRE_MSG(!body.empty() && body[0] != '=', "malformed flag");
    const std::size_t eq = body.find('=');
    Entry entry;
    if (eq != std::string_view::npos) {
      entry.name = std::string(body.substr(0, eq));
      entry.value = std::string(body.substr(eq + 1));
      entry.has_value = true;
    } else {
      entry.name = std::string(body);
      // A following token that is not itself a flag is this flag's value.
      if (i + 1 < argc && !std::string_view(argv[i + 1]).starts_with("--")) {
        entry.value = argv[++i];
        entry.has_value = true;
      }
    }
    entries_.push_back(std::move(entry));
  }
}

const Flags::Entry* Flags::find(std::string_view name) const {
  // Last occurrence wins, matching common CLI conventions.
  const Entry* found = nullptr;
  for (const Entry& entry : entries_) {
    if (entry.name == name) found = &entry;
  }
  if (found != nullptr) found->queried = true;
  return found;
}

bool Flags::has(std::string_view name) const { return find(name) != nullptr; }

std::optional<std::string> Flags::value(std::string_view name) const {
  const Entry* entry = find(name);
  if (entry == nullptr) return std::nullopt;
  return entry->value;
}

std::int64_t Flags::get_int(std::string_view name, std::int64_t fallback) const {
  const Entry* entry = find(name);
  if (entry == nullptr) return fallback;
  P2PS_REQUIRE_MSG(entry->has_value, "flag requires an integer value");
  std::int64_t out = 0;
  const auto* begin = entry->value.data();
  const auto* end = begin + entry->value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  P2PS_REQUIRE_MSG(ec == std::errc{} && ptr == end, "flag value is not an integer");
  return out;
}

double Flags::get_double(std::string_view name, double fallback) const {
  const Entry* entry = find(name);
  if (entry == nullptr) return fallback;
  P2PS_REQUIRE_MSG(entry->has_value, "flag requires a numeric value");
  try {
    std::size_t consumed = 0;
    const double out = std::stod(entry->value, &consumed);
    P2PS_REQUIRE_MSG(consumed == entry->value.size(), "flag value is not a number");
    return out;
  } catch (const std::exception&) {
    P2PS_REQUIRE_MSG(false, "flag value is not a number");
  }
  return fallback;  // unreachable
}

std::string Flags::get_string(std::string_view name, std::string_view fallback) const {
  const Entry* entry = find(name);
  if (entry == nullptr) return std::string(fallback);
  P2PS_REQUIRE_MSG(entry->has_value, "flag requires a value");
  return entry->value;
}

bool Flags::get_bool(std::string_view name, bool fallback) const {
  const Entry* entry = find(name);
  if (entry == nullptr) return fallback;
  if (!entry->has_value) return true;  // bare --flag
  if (entry->value == "true" || entry->value == "1" || entry->value == "yes") {
    return true;
  }
  if (entry->value == "false" || entry->value == "0" || entry->value == "no") {
    return false;
  }
  P2PS_REQUIRE_MSG(false, "flag value is not a boolean");
  return fallback;  // unreachable
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> out;
  for (const Entry& entry : entries_) {
    if (!entry.queried) out.push_back(entry.name);
  }
  return out;
}

}  // namespace p2ps::util
