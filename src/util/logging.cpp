#include "util/logging.hpp"

#include <iostream>

#include "util/sim_time.hpp"

namespace p2ps::util {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger::Logger() {
  sink_ = [](LogLevel level, std::string_view message) {
    std::cerr << '[' << to_string(level) << "] " << message << '\n';
  };
}

Logger& Logger::global() {
  static Logger instance;
  return instance;
}

void Logger::set_sink(Sink sink) {
  if (sink) {
    const std::lock_guard<std::mutex> guard(sink_mutex_);
    sink_ = std::move(sink);
  }
}

void Logger::log(LogLevel level, std::string_view message) {
  if (!enabled(level)) return;
  // Invoke under the lock: a concurrent set_sink must not destroy the
  // std::function out from under this call, and sink output (a stream, a
  // test capture vector) stays serialized.
  const std::lock_guard<std::mutex> guard(sink_mutex_);
  sink_(level, message);
}

std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << t.as_millis() << "ms";
}

}  // namespace p2ps::util
