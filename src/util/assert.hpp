// Contract-checking macros.
//
// The library uses narrow contracts on internal code and throws on public
// API misuse so that violations are testable (per C++ Core Guidelines I.6 /
// E.12: report precondition violations where recovery/testing is intended).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace p2ps::util {

/// Thrown when a P2PS_REQUIRE / P2PS_ENSURE / P2PS_CHECK contract fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace p2ps::util

/// Precondition check on public entry points. Always enabled.
#define P2PS_REQUIRE(expr)                                                  \
  do {                                                                      \
    if (!(expr))                                                            \
      ::p2ps::util::detail::contract_fail("precondition", #expr, __FILE__, \
                                          __LINE__, "");                   \
  } while (false)

/// Precondition check with an explanatory message.
#define P2PS_REQUIRE_MSG(expr, msg)                                         \
  do {                                                                      \
    if (!(expr))                                                            \
      ::p2ps::util::detail::contract_fail("precondition", #expr, __FILE__, \
                                          __LINE__, (msg));                 \
  } while (false)

/// Internal invariant check. Always enabled (cheap checks only).
#define P2PS_CHECK(expr)                                                    \
  do {                                                                      \
    if (!(expr))                                                            \
      ::p2ps::util::detail::contract_fail("invariant", #expr, __FILE__,    \
                                          __LINE__, "");                   \
  } while (false)

#define P2PS_CHECK_MSG(expr, msg)                                           \
  do {                                                                      \
    if (!(expr))                                                            \
      ::p2ps::util::detail::contract_fail("invariant", #expr, __FILE__,    \
                                          __LINE__, (msg));                 \
  } while (false)

/// Postcondition check.
#define P2PS_ENSURE(expr)                                                   \
  do {                                                                      \
    if (!(expr))                                                            \
      ::p2ps::util::detail::contract_fail("postcondition", #expr, __FILE__,\
                                          __LINE__, "");                    \
  } while (false)
