// Deterministic random-number generation.
//
// Every stochastic component of the simulator draws from its own named
// substream derived from one master seed, so results are reproducible and
// insensitive to the order in which unrelated components consume numbers.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/assert.hpp"

namespace p2ps::util {

/// splitmix64 — used for seeding and for hashing substream labels.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// FNV-1a hash of a label, for deriving named substreams.
[[nodiscard]] constexpr std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// xoshiro256** PRNG. Fast, high quality, tiny state; plenty for a DES.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator from a single 64-bit value via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
    draws_ = 0;
  }

  /// Derives an independent generator for a named purpose.
  ///
  /// `rng.substream("arrivals")` and `rng.substream("admission")` never
  /// interfere, no matter how many numbers each consumes.
  [[nodiscard]] Rng substream(std::string_view label) const {
    return Rng(state_[0] ^ (state_[3] * 0x2545F4914F6CDD1DULL) ^ hash_label(label));
  }

  /// Substream keyed by label and index (e.g. one stream per peer).
  ///
  /// The derivation reads this generator's state without advancing it, so
  /// `master.substream(label, i)` is a pure function of (master seed,
  /// label, i): deriving a stream eagerly at construction and deriving it
  /// lazily on first draw yield bit-identical generators. That purity is
  /// what lets engines hydrate per-entity streams on demand from a pool
  /// instead of storing all N upfront (the sharded engine's lazy RNG
  /// hydration, docs/memory.md) without perturbing any seeded result.
  [[nodiscard]] Rng substream(std::string_view label, std::uint64_t index) const {
    std::uint64_t mix = hash_label(label) ^ (index * 0xD1342543DE82EF95ULL + 0x63652362ULL);
    return Rng(state_[0] ^ (state_[3] * 0x2545F4914F6CDD1DULL) ^ mix);
  }

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  /// Raw 64-bit outputs produced since construction/reseed. Every helper
  /// (uniform_below's rejection loop included) goes through next(), so the
  /// count plus the seed fully determines the stream position: a fresh
  /// generator with the same seed advanced by discard(draws()) is
  /// bit-identical to this one. The sharded engine's demote-to-count RNG
  /// slots rest on exactly this (docs/memory.md).
  [[nodiscard]] std::uint64_t draws() const { return draws_; }

  /// Advances the stream by `n` raw outputs, discarding them.
  void discard(std::uint64_t n) {
    while (n-- > 0) (void)next();
  }

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased (rejection).
  [[nodiscard]] std::uint64_t uniform_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01();

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi);

  /// Bernoulli trial; p is clamped to [0, 1].
  [[nodiscard]] bool bernoulli(double p);

  /// Exponentially distributed value with the given rate (mean 1/rate).
  [[nodiscard]] double exponential(double rate);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) uniformly (Floyd's algorithm
  /// for small k, partial shuffle otherwise). Returns fewer than k only when
  /// k > n is requested with `clamp == true`; otherwise requires k <= n.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k,
                                                        bool clamp = false);

  /// Allocation-free variant of sample_indices for hot paths: clears `out`
  /// and fills it, reusing its capacity. Consumes exactly the same draws as
  /// sample_indices, so the two are interchangeable without perturbing any
  /// seeded result (membership is checked by scanning `out` — for the small
  /// k of a probe fan-out that beats building a hash set, and it is the
  /// reason this variant needs no scratch memory of its own).
  void sample_indices_into(std::vector<std::size_t>& out, std::size_t n,
                           std::size_t k, bool clamp = false);

 private:
  std::uint64_t next() {
    ++draws_;
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  std::uint64_t draws_ = 0;
};

}  // namespace p2ps::util
