// Phantom-tagged integer identifiers.
//
// Peer ids, session ids and event ids are all integers at heart; distinct
// tag types prevent accidentally passing one where another is expected
// (C++ Core Guidelines I.4: make interfaces precisely and strongly typed).
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <ostream>

namespace p2ps::util {

/// A strongly-typed id. `Tag` is any (possibly incomplete) marker type.
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::uint64_t;

  constexpr StrongId() = default;
  explicit constexpr StrongId(underlying_type v) : value_(v) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  constexpr auto operator<=>(const StrongId&) const = default;

  /// Sentinel meaning "no id"; default-constructed ids are invalid.
  [[nodiscard]] static constexpr StrongId invalid() {
    return StrongId{static_cast<underlying_type>(-1)};
  }
  [[nodiscard]] constexpr bool valid() const { return *this != invalid(); }

 private:
  underlying_type value_ = static_cast<underlying_type>(-1);
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, StrongId<Tag> id) {
  return os << '#' << id.value();
}

}  // namespace p2ps::util

template <typename Tag>
struct std::hash<p2ps::util::StrongId<Tag>> {
  std::size_t operator()(p2ps::util::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
