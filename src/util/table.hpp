// Plain-text table and CSV rendering for the benchmark harnesses.
//
// Every figure/table reproduction binary prints an aligned text table (the
// "rows/series the paper reports") and can optionally dump CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace p2ps::util {

/// Column-aligned text table. Cells are strings; numeric helpers format
/// with a fixed precision so series line up visually.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Starts a new row; subsequent add_cell calls fill it left to right.
  TextTable& new_row();
  TextTable& add_cell(std::string value);
  TextTable& add_cell(double value, int precision = 2);
  TextTable& add_cell(long long value);

  /// Renders with column padding. Rows shorter than the header are padded
  /// with empty cells.
  void print(std::ostream& os) const;

  /// Renders as CSV (no quoting needed for our numeric content).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with TextTable).
[[nodiscard]] std::string format_double(double value, int precision);

}  // namespace p2ps::util
