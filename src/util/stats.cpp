#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace p2ps::util {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const {
  P2PS_REQUIRE(n_ > 0);
  return mean_;
}

double RunningStat::variance() const {
  P2PS_REQUIRE(n_ > 1);
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const {
  P2PS_REQUIRE(n_ > 0);
  return min_;
}

double RunningStat::max() const {
  P2PS_REQUIRE(n_ > 0);
  return max_;
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  P2PS_REQUIRE(hi > lo);
  P2PS_REQUIRE(bins > 0);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  P2PS_REQUIRE(i < counts_.size());
  return counts_[i];
}

double Histogram::fraction(std::size_t i) const {
  P2PS_REQUIRE(total_ > 0);
  return static_cast<double>(bin_count(i)) / static_cast<double>(total_);
}

double Histogram::bin_lo(std::size_t i) const {
  P2PS_REQUIRE(i < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return bin_lo(i) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

double percentile(std::vector<double> samples, double p) {
  P2PS_REQUIRE(!samples.empty());
  P2PS_REQUIRE(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  if (p == 0.0) return samples.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples.size())));
  return samples[std::min(rank, samples.size()) - 1];
}

}  // namespace p2ps::util
