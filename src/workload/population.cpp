#include "workload/population.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>

#include "util/assert.hpp"

namespace p2ps::workload {

void validate(const PopulationConfig& config) {
  P2PS_REQUIRE(config.num_classes >= 1 &&
               config.num_classes <= core::kMaxSupportedClasses);
  core::require_valid_class(config.seed_class, config.num_classes);
  P2PS_REQUIRE(config.seeds >= 0);
  P2PS_REQUIRE(config.requesters >= 0);
  P2PS_REQUIRE(static_cast<core::PeerClass>(config.class_fractions.size()) ==
               config.num_classes);
  double sum = 0.0;
  for (double f : config.class_fractions) {
    P2PS_REQUIRE(f >= 0.0);
    sum += f;
  }
  P2PS_REQUIRE_MSG(std::abs(sum - 1.0) < 1e-9, "class fractions must sum to 1");
}

std::vector<core::PeerClass> build_requester_classes(const PopulationConfig& config,
                                                     util::Rng& rng) {
  validate(config);
  const auto n = static_cast<std::size_t>(config.requesters);

  // Largest-remainder apportionment: exact class counts.
  std::vector<std::int64_t> counts(config.class_fractions.size());
  std::vector<std::pair<double, std::size_t>> remainders;
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double exact = config.class_fractions[i] * static_cast<double>(n);
    counts[i] = static_cast<std::int64_t>(std::floor(exact));
    assigned += counts[i];
    remainders.emplace_back(exact - std::floor(exact), i);
  }
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; assigned < config.requesters; ++i) {
    ++counts[remainders[i % remainders.size()].second];
    ++assigned;
  }

  std::vector<core::PeerClass> classes;
  classes.reserve(n);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    classes.insert(classes.end(), static_cast<std::size_t>(counts[i]),
                   static_cast<core::PeerClass>(i + 1));
  }
  rng.shuffle(std::span<core::PeerClass>(classes));
  return classes;
}

std::int64_t max_possible_capacity(const PopulationConfig& config) {
  validate(config);
  core::Bandwidth total =
      config.seeds * core::Bandwidth::class_offer(config.seed_class);
  // Exact per-class counts, mirroring build_requester_classes.
  util::Rng scratch(0);
  const auto classes = build_requester_classes(config, scratch);
  for (core::PeerClass c : classes) total += core::Bandwidth::class_offer(c);
  return core::capacity(total);
}

}  // namespace p2ps::workload
