#include "workload/zipf.hpp"

#include <algorithm>
#include <cmath>

namespace p2ps::workload {

ZipfDistribution::ZipfDistribution(std::size_t items, double s) : s_(s) {
  P2PS_REQUIRE(items >= 1);
  P2PS_REQUIRE(s >= 0.0);
  cdf_.reserve(items);
  double total = 0.0;
  for (std::size_t k = 0; k < items; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_.push_back(total);
  }
  for (double& value : cdf_) value /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

double ZipfDistribution::pmf(std::size_t k) const {
  P2PS_REQUIRE(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

std::size_t ZipfDistribution::sample(util::Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::min<std::ptrdiff_t>(
      it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

}  // namespace p2ps::workload
