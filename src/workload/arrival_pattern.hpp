// First-time request arrival patterns (paper Section 5.1).
//
// The paper evaluates four arrival patterns over the first 72 hours; their
// exact constants live in the unavailable tech report [13], so this module
// implements the described *shapes* (see DESIGN.md, substitutions):
//   Pattern 1 — constant arrivals;
//   Pattern 2 — gradually increasing then gradually decreasing;
//   Pattern 3 — initial burst, then lower constant arrivals;
//   Pattern 4 — periodic bursts with a low constant floor between bursts.
//
// A pattern is a piecewise-constant rate function, normalized so that
// exactly `total` arrivals land in the window; individual arrival times are
// placed at rate-weighted quantiles, which makes runs deterministic and the
// cumulative-arrival curve exact (the stochastic element of the evaluation
// stays in the protocol, where the paper puts it).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace p2ps::workload {

class ArrivalSchedule;

/// Forward-only cursor over an ArrivalSchedule's arrival times.
///
/// This is the lazy consumption API: instead of materialising one simulator
/// event per arrival up front (an O(population) event-list build), a caller
/// walks the schedule one arrival at a time and keeps a single event in
/// flight (see engine::ArrivalSource). The referenced schedule must outlive
/// the cursor.
class ArrivalCursor {
 public:
  explicit ArrivalCursor(const ArrivalSchedule& schedule) : schedule_(&schedule) {}

  /// Returns the next arrival time and advances, or nullopt once every
  /// arrival has been consumed (then keeps returning nullopt).
  [[nodiscard]] std::optional<util::SimTime> next_arrival();

  /// The next arrival time without advancing; nullopt when exhausted.
  [[nodiscard]] std::optional<util::SimTime> peek() const;

  /// Arrivals already handed out; doubles as the index of the next one.
  [[nodiscard]] std::int64_t consumed() const { return consumed_; }

  [[nodiscard]] std::int64_t remaining() const;
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

 private:
  const ArrivalSchedule* schedule_;
  std::int64_t consumed_ = 0;
};

enum class ArrivalPattern : int {
  kConstant = 1,
  kRampUpDown = 2,
  kBurstThenConstant = 3,
  kPeriodicBursts = 4,
};

[[nodiscard]] std::string_view to_string(ArrivalPattern pattern);

/// One piece of a piecewise-constant rate function: `weight` is the
/// fraction of all arrivals carried by this piece (pieces are normalized).
struct RatePiece {
  util::SimTime duration;
  double weight;
};

class ArrivalSchedule {
 public:
  /// Builds one of the paper's four patterns: `total` arrivals spread over
  /// `window` (the paper: 50,000 over 72 h).
  [[nodiscard]] static ArrivalSchedule make(ArrivalPattern pattern, std::int64_t total,
                                            util::SimTime window);

  /// Builds a custom pattern from explicit pieces (weights need not be
  /// normalized; durations must be positive and sum to the window).
  [[nodiscard]] static ArrivalSchedule from_pieces(std::vector<RatePiece> pieces,
                                                   std::int64_t total);

  /// Like make(), but arrival times are sampled i.i.d. from the pattern's
  /// density instead of quantile-placed — the stochastic-arrival variant
  /// (conditioned on the exact total, this is a Poisson process given N).
  [[nodiscard]] static ArrivalSchedule make_sampled(ArrivalPattern pattern,
                                                    std::int64_t total,
                                                    util::SimTime window,
                                                    util::Rng& rng);

  /// Like make(), but arrival_at(i) is computed on demand from the
  /// (tiny) piece table instead of materialising all `total` times — O(1)
  /// memory for arbitrarily large populations. Deterministic placement is
  /// a pure function of the index, so lazy and eager schedules agree
  /// bit-for-bit on every arrival_at; times() is unavailable. The sharded
  /// engine's 10M-peer runs depend on this (docs/memory.md).
  [[nodiscard]] static ArrivalSchedule make_lazy(ArrivalPattern pattern,
                                                 std::int64_t total,
                                                 util::SimTime window);

  /// Arrival times, sorted ascending, exactly `total` of them, all within
  /// [0, window). Unavailable on a make_lazy schedule.
  [[nodiscard]] const std::vector<util::SimTime>& times() const;

  /// A fresh forward-only cursor over the arrival times, for lazy
  /// one-event-in-flight consumption. The schedule must outlive it.
  [[nodiscard]] ArrivalCursor cursor() const { return ArrivalCursor(*this); }

  /// The `index`-th arrival time (0-based, ascending).
  [[nodiscard]] util::SimTime arrival_at(std::int64_t index) const;

  [[nodiscard]] std::int64_t total() const { return total_; }
  [[nodiscard]] util::SimTime window() const { return window_; }
  [[nodiscard]] bool lazy() const { return lazy_; }

  /// Instantaneous arrival rate at `t`, in arrivals per hour (zero outside
  /// the window). For inspection and tests.
  [[nodiscard]] double rate_per_hour_at(util::SimTime t) const;

  /// Number of arrivals in [from, to).
  [[nodiscard]] std::int64_t arrivals_between(util::SimTime from, util::SimTime to) const;

 private:
  ArrivalSchedule(std::vector<RatePiece> pieces, std::int64_t total,
                  util::Rng* rng = nullptr, bool lazy = false);

  /// Exact inversion of the piecewise-linear CDF at quantile q — the one
  /// placement function both the eager fill and lazy arrival_at use, so
  /// the two modes cannot drift apart.
  [[nodiscard]] util::SimTime quantile_time(double q) const;

  std::vector<RatePiece> pieces_;  // weights normalized to sum 1
  util::SimTime window_ = util::SimTime::zero();
  std::int64_t total_ = 0;
  bool lazy_ = false;
  std::vector<util::SimTime> times_;  // empty when lazy_
};

}  // namespace p2ps::workload
