#include "workload/arrival_pattern.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace p2ps::workload {

std::string_view to_string(ArrivalPattern pattern) {
  switch (pattern) {
    case ArrivalPattern::kConstant: return "pattern-1-constant";
    case ArrivalPattern::kRampUpDown: return "pattern-2-ramp";
    case ArrivalPattern::kBurstThenConstant: return "pattern-3-burst";
    case ArrivalPattern::kPeriodicBursts: return "pattern-4-periodic";
  }
  return "pattern-?";
}

namespace {

std::vector<RatePiece> pieces_for(ArrivalPattern pattern, util::SimTime window) {
  const std::int64_t wms = window.as_millis();
  auto span = [&](double fraction) {
    return util::SimTime::millis(static_cast<std::int64_t>(
        std::llround(fraction * static_cast<double>(wms))));
  };

  std::vector<RatePiece> pieces;
  switch (pattern) {
    case ArrivalPattern::kConstant:
      pieces.push_back({window, 1.0});
      break;

    case ArrivalPattern::kRampUpDown: {
      // Twelve equal steps whose heights trace a triangle peaking mid-window
      // ("gradually increasing, then gradually decreasing arrivals").
      constexpr int kSteps = 12;
      for (int i = 0; i < kSteps; ++i) {
        const double height = static_cast<double>(i < kSteps / 2 ? i + 1 : kSteps - i);
        pieces.push_back({span(1.0 / kSteps), height});
      }
      break;
    }

    case ArrivalPattern::kBurstThenConstant:
      // 40% of all arrivals in the first 1/12 of the window (a flash crowd),
      // the remaining 60% at a low constant rate.
      pieces.push_back({span(1.0 / 12.0), 0.4});
      pieces.push_back({span(11.0 / 12.0), 0.6});
      break;

    case ArrivalPattern::kPeriodicBursts: {
      // Six 12-hour cycles (for a 72 h window): a 2-hour burst carrying 10%
      // of all arrivals, then a 10-hour low constant floor carrying ~6.7%.
      constexpr int kCycles = 6;
      for (int i = 0; i < kCycles; ++i) {
        pieces.push_back({span(1.0 / 36.0), 0.6 / kCycles});   // 2 h of a 72 h window
        pieces.push_back({span(5.0 / 36.0), 0.4 / kCycles});   // 10 h floor
      }
      break;
    }
  }

  // Rounding of spans can leave the final piece a few ms short; absorb the
  // remainder there so the pieces tile the window exactly.
  std::int64_t covered = 0;
  for (const auto& piece : pieces) covered += piece.duration.as_millis();
  P2PS_CHECK(!pieces.empty());
  pieces.back().duration += util::SimTime::millis(wms - covered);
  return pieces;
}

}  // namespace

ArrivalSchedule ArrivalSchedule::make(ArrivalPattern pattern, std::int64_t total,
                                      util::SimTime window) {
  P2PS_REQUIRE(total >= 0);
  P2PS_REQUIRE(window > util::SimTime::zero());
  return ArrivalSchedule(pieces_for(pattern, window), total);
}

ArrivalSchedule ArrivalSchedule::from_pieces(std::vector<RatePiece> pieces,
                                             std::int64_t total) {
  P2PS_REQUIRE(total >= 0);
  P2PS_REQUIRE(!pieces.empty());
  return ArrivalSchedule(std::move(pieces), total);
}

ArrivalSchedule ArrivalSchedule::make_sampled(ArrivalPattern pattern,
                                              std::int64_t total,
                                              util::SimTime window, util::Rng& rng) {
  P2PS_REQUIRE(total >= 0);
  P2PS_REQUIRE(window > util::SimTime::zero());
  return ArrivalSchedule(pieces_for(pattern, window), total, &rng);
}

ArrivalSchedule ArrivalSchedule::make_lazy(ArrivalPattern pattern,
                                           std::int64_t total,
                                           util::SimTime window) {
  P2PS_REQUIRE(total >= 0);
  P2PS_REQUIRE(window > util::SimTime::zero());
  return ArrivalSchedule(pieces_for(pattern, window), total, nullptr,
                         /*lazy=*/true);
}

const std::vector<util::SimTime>& ArrivalSchedule::times() const {
  P2PS_REQUIRE_MSG(!lazy_, "times() is unavailable on a lazy schedule");
  return times_;
}

ArrivalSchedule::ArrivalSchedule(std::vector<RatePiece> pieces, std::int64_t total,
                                 util::Rng* rng, bool lazy)
    : pieces_(std::move(pieces)), total_(total), lazy_(lazy) {
  P2PS_REQUIRE_MSG(!(lazy && rng != nullptr),
                   "sampled schedules cannot be lazy (times must be sorted)");
  double weight_sum = 0.0;
  for (const auto& piece : pieces_) {
    P2PS_REQUIRE(piece.duration > util::SimTime::zero());
    P2PS_REQUIRE(piece.weight >= 0.0);
    weight_sum += piece.weight;
    window_ += piece.duration;
  }
  P2PS_REQUIRE_MSG(weight_sum > 0.0, "arrival pattern carries no weight");
  for (auto& piece : pieces_) piece.weight /= weight_sum;

  // Arrival placement: each arrival corresponds to a quantile q of the
  // piecewise-linear CDF, inverted exactly within its piece
  // (quantile_time). Deterministic mode uses the evenly spaced
  // q = (i+0.5)/total (exact cumulative curve); sampled mode draws
  // q ~ U[0,1) i.i.d. — a Poisson process conditioned on the exact total.
  // Lazy mode materialises nothing: deterministic placement is a pure
  // function of the index, so arrival_at computes it on demand.
  if (lazy_) return;
  times_.reserve(static_cast<std::size_t>(total));
  if (rng == nullptr) {
    for (std::int64_t i = 0; i < total; ++i) {
      times_.push_back(
          quantile_time((static_cast<double>(i) + 0.5) / static_cast<double>(total)));
    }
  } else {
    for (std::int64_t i = 0; i < total; ++i) {
      times_.push_back(quantile_time(rng->uniform01()));
    }
    std::sort(times_.begin(), times_.end());
  }
  P2PS_ENSURE(std::is_sorted(times_.begin(), times_.end()));
  P2PS_ENSURE(times_.empty() || times_.back() < window_);
}

util::SimTime ArrivalSchedule::quantile_time(double q) const {
  double cdf_before = 0.0;
  util::SimTime piece_start = util::SimTime::zero();
  std::size_t piece_index = 0;
  while (piece_index + 1 < pieces_.size() &&
         cdf_before + pieces_[piece_index].weight <= q) {
    cdf_before += pieces_[piece_index].weight;
    piece_start += pieces_[piece_index].duration;
    ++piece_index;
  }
  const RatePiece& piece = pieces_[piece_index];
  const double within = piece.weight > 0.0 ? (q - cdf_before) / piece.weight : 0.0;
  const auto offset_ms = static_cast<std::int64_t>(
      std::floor(within * static_cast<double>(piece.duration.as_millis())));
  return piece_start + util::SimTime::millis(offset_ms);
}

double ArrivalSchedule::rate_per_hour_at(util::SimTime t) const {
  if (t < util::SimTime::zero() || t >= window_) return 0.0;
  util::SimTime start = util::SimTime::zero();
  for (const auto& piece : pieces_) {
    if (t < start + piece.duration) {
      const double arrivals = piece.weight * static_cast<double>(total_);
      return arrivals / piece.duration.as_hours();
    }
    start += piece.duration;
  }
  return 0.0;
}

util::SimTime ArrivalSchedule::arrival_at(std::int64_t index) const {
  P2PS_REQUIRE(index >= 0 && index < total());
  if (lazy_) {
    return quantile_time((static_cast<double>(index) + 0.5) /
                         static_cast<double>(total_));
  }
  return times_[static_cast<std::size_t>(index)];
}

std::optional<util::SimTime> ArrivalCursor::next_arrival() {
  if (consumed_ >= schedule_->total()) return std::nullopt;
  return schedule_->arrival_at(consumed_++);
}

std::optional<util::SimTime> ArrivalCursor::peek() const {
  if (consumed_ >= schedule_->total()) return std::nullopt;
  return schedule_->arrival_at(consumed_);
}

std::int64_t ArrivalCursor::remaining() const {
  return schedule_->total() - consumed_;
}

std::int64_t ArrivalSchedule::arrivals_between(util::SimTime from, util::SimTime to) const {
  if (lazy_) {
    // Bisect on the index instead of the (unmaterialised) times; arrival
    // times are nondecreasing in the index, so this matches the eager
    // lower_bound exactly.
    const auto first_at_or_after = [this](util::SimTime t) {
      std::int64_t lo = 0;
      std::int64_t hi = total_;
      while (lo < hi) {
        const std::int64_t mid = lo + (hi - lo) / 2;
        if (arrival_at(mid) < t) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo;
    };
    return first_at_or_after(to) - first_at_or_after(from);
  }
  const auto lo = std::lower_bound(times_.begin(), times_.end(), from);
  const auto hi = std::lower_bound(times_.begin(), times_.end(), to);
  return hi - lo;
}

}  // namespace p2ps::workload
