// Zipf popularity distribution over a finite catalog.
//
// The paper's evaluation streams a single "popular video file"; the catalog
// extension serves a library whose request popularity follows Zipf(s) — the
// standard model for media-library popularity. Rank 1 is the most popular.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace p2ps::workload {

class ZipfDistribution {
 public:
  /// `items` — catalog size; `s` — skew exponent (0 = uniform).
  ZipfDistribution(std::size_t items, double s);

  [[nodiscard]] std::size_t items() const { return cdf_.size(); }
  [[nodiscard]] double skew() const { return s_; }

  /// P(rank k), 0-based (k = 0 is the most popular item).
  [[nodiscard]] double pmf(std::size_t k) const;

  /// Samples a 0-based rank.
  [[nodiscard]] std::size_t sample(util::Rng& rng) const;

 private:
  double s_;
  std::vector<double> cdf_;  // inclusive cumulative probabilities
};

}  // namespace p2ps::workload
