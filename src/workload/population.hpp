// Peer population construction (paper Section 5.1).
//
// The paper's population: 100 class-1 "seed" supplying peers that own the
// media file, plus 50,000 requesting peers whose classes are distributed
// 10% / 10% / 40% / 40% over classes 1–4.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/bandwidth.hpp"
#include "core/peer_class.hpp"
#include "util/rng.hpp"

namespace p2ps::workload {

struct PopulationConfig {
  core::PeerClass num_classes = 4;
  std::int64_t seeds = 100;
  core::PeerClass seed_class = 1;
  std::int64_t requesters = 50'000;
  /// Fraction of requesters in each class 1..num_classes; must sum to ~1.
  std::vector<double> class_fractions = {0.1, 0.1, 0.4, 0.4};
};

/// Validates a population config; throws ContractViolation on bad input.
void validate(const PopulationConfig& config);

/// Shrinks a population by `divisor` for quick runs — the single
/// definition of the scaling policy shared by the bench harnesses
/// (P2PS_BENCH_SCALE) and the scenario runner (--scale). Floors keep tiny
/// runs feasible: at least 4 seeds and 20 requesters.
inline void apply_population_divisor(PopulationConfig& population,
                                     std::int64_t divisor) {
  if (divisor <= 1) return;
  population.seeds = std::max<std::int64_t>(4, population.seeds / divisor);
  population.requesters =
      std::max<std::int64_t>(20, population.requesters / divisor);
}

/// Assigns a class to every requester with *exact* largest-remainder counts
/// (so the mix matches the paper regardless of population size), then
/// shuffles so arrival order and class are independent.
[[nodiscard]] std::vector<core::PeerClass> build_requester_classes(
    const PopulationConfig& config, util::Rng& rng);

/// The system's maximum capacity if every peer became a supplying peer —
/// the paper's "maximum capacity if all 50,100 peers become supplying
/// peers" yardstick (≈7550 for the default population).
[[nodiscard]] std::int64_t max_possible_capacity(const PopulationConfig& config);

}  // namespace p2ps::workload
