#include "lookup/directory.hpp"

#include "util/assert.hpp"

namespace p2ps::lookup {

void DirectoryService::register_supplier(core::PeerId id, core::PeerClass cls) {
  P2PS_REQUIRE(id.valid());
  P2PS_REQUIRE_MSG(slot_of(id) == kNoSlot, "supplier already registered");
  const auto v = static_cast<std::size_t>(id.value());
  if (v >= slot_by_id_.size()) slot_by_id_.resize(v + 1, kNoSlot);
  slot_by_id_[v] = entries_.size();
  entries_.push_back(CandidateInfo{id, cls});
}

void DirectoryService::deregister_supplier(core::PeerId id) {
  const std::size_t slot = slot_of(id);
  P2PS_REQUIRE_MSG(slot != kNoSlot, "supplier not registered");
  slot_by_id_[static_cast<std::size_t>(id.value())] = kNoSlot;
  if (slot + 1 != entries_.size()) {
    entries_[slot] = entries_.back();
    slot_by_id_[static_cast<std::size_t>(entries_[slot].id.value())] = slot;
  }
  entries_.pop_back();
}

bool DirectoryService::contains(core::PeerId id) const {
  return slot_of(id) != kNoSlot;
}

std::size_t DirectoryService::supplier_count() const { return entries_.size(); }

core::PeerClass DirectoryService::class_of(core::PeerId id) const {
  const std::size_t slot = slot_of(id);
  P2PS_REQUIRE_MSG(slot != kNoSlot, "supplier not registered");
  return entries_[slot].cls;
}

void DirectoryService::candidates_into(std::vector<CandidateInfo>& out, std::size_t m,
                                       util::Rng& rng, core::PeerId exclude) {
  out.clear();
  if (entries_.empty() || m == 0) return;

  // Sample from the full table and drop `exclude`; draw one spare index so
  // the exclusion does not shrink the result below m when avoidable.
  const bool may_hit_exclude = contains(exclude);
  const std::size_t want = m + (may_hit_exclude ? 1 : 0);
  rng.sample_indices_into(scratch_picks_, entries_.size(), want, /*clamp=*/true);
  out.reserve(m);
  for (std::size_t slot : scratch_picks_) {
    if (entries_[slot].id == exclude) continue;
    out.push_back(entries_[slot]);
    if (out.size() == m) break;
  }
}

}  // namespace p2ps::lookup
