#include "lookup/directory.hpp"

#include "util/assert.hpp"

namespace p2ps::lookup {

void DirectoryService::register_supplier(core::PeerId id, core::PeerClass cls) {
  P2PS_REQUIRE(id.valid());
  P2PS_REQUIRE_MSG(!index_.contains(id), "supplier already registered");
  index_.emplace(id, entries_.size());
  entries_.push_back(CandidateInfo{id, cls});
}

void DirectoryService::deregister_supplier(core::PeerId id) {
  auto it = index_.find(id);
  P2PS_REQUIRE_MSG(it != index_.end(), "supplier not registered");
  const std::size_t slot = it->second;
  index_.erase(it);
  if (slot + 1 != entries_.size()) {
    entries_[slot] = entries_.back();
    index_[entries_[slot].id] = slot;
  }
  entries_.pop_back();
}

bool DirectoryService::contains(core::PeerId id) const { return index_.contains(id); }

std::size_t DirectoryService::supplier_count() const { return entries_.size(); }

core::PeerClass DirectoryService::class_of(core::PeerId id) const {
  auto it = index_.find(id);
  P2PS_REQUIRE_MSG(it != index_.end(), "supplier not registered");
  return entries_[it->second].cls;
}

std::vector<CandidateInfo> DirectoryService::candidates(std::size_t m, util::Rng& rng,
                                                        core::PeerId exclude) {
  std::vector<CandidateInfo> out;
  if (entries_.empty() || m == 0) return out;

  // Sample from the full table and drop `exclude`; draw one spare index so
  // the exclusion does not shrink the result below m when avoidable.
  const bool may_hit_exclude = index_.contains(exclude);
  const std::size_t want = m + (may_hit_exclude ? 1 : 0);
  const auto picks = rng.sample_indices(entries_.size(), want, /*clamp=*/true);
  out.reserve(m);
  for (std::size_t slot : picks) {
    if (entries_[slot].id == exclude) continue;
    out.push_back(entries_[slot]);
    if (out.size() == m) break;
  }
  return out;
}

}  // namespace p2ps::lookup
