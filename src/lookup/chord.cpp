#include "lookup/chord.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace p2ps::lookup {

std::uint64_t ChordLookup::ring_position(core::PeerId id) {
  std::uint64_t state = id.value() ^ 0xA5A5A5A55A5A5A5AULL;
  return util::splitmix64(state);
}

std::size_t ChordLookup::lower_index(std::uint64_t key) const {
  const auto it = std::lower_bound(
      nodes_.begin(), nodes_.end(), key,
      [](const Node& node, std::uint64_t k) { return node.pos < k; });
  return static_cast<std::size_t>(it - nodes_.begin());
}

std::size_t ChordLookup::owner_index(std::uint64_t key) const {
  const std::size_t index = lower_index(key);
  return index == nodes_.size() ? 0 : index;  // wrap around
}

std::size_t ChordLookup::find_index(core::PeerId id) const {
  const std::uint64_t home = ring_position(id);
  for (std::uint64_t offset = 0; offset <= max_probe_offset_; ++offset) {
    const std::uint64_t pos = home + offset;  // wraps mod 2^64
    const std::size_t index = lower_index(pos);
    if (index < nodes_.size() && nodes_[index].pos == pos &&
        nodes_[index].info.id == id) {
      return index;
    }
  }
  return kNpos;
}

void ChordLookup::register_supplier(core::PeerId id, core::PeerClass cls) {
  P2PS_REQUIRE(id.valid());
  P2PS_REQUIRE_MSG(find_index(id) == kNpos, "supplier already registered");
  const std::uint64_t home = ring_position(id);
  std::uint64_t position = home;
  // Linear probing on the (sparse) ring resolves the astronomically rare
  // position collision deterministically.
  std::size_t index = lower_index(position);
  while (index < nodes_.size() && nodes_[index].pos == position) {
    ++position;
    ++index;
    if (position == 0) index = lower_index(position);  // probed past 2^64
  }
  max_probe_offset_ = std::max(max_probe_offset_, position - home);
  nodes_.insert(nodes_.begin() + static_cast<std::ptrdiff_t>(index),
                Node{position, CandidateInfo{id, cls}});
}

void ChordLookup::deregister_supplier(core::PeerId id) {
  const std::size_t index = find_index(id);
  P2PS_REQUIRE_MSG(index != kNpos, "supplier not registered");
  nodes_.erase(nodes_.begin() + static_cast<std::ptrdiff_t>(index));
}

bool ChordLookup::contains(core::PeerId id) const { return find_index(id) != kNpos; }

std::size_t ChordLookup::supplier_count() const { return nodes_.size(); }

CandidateInfo ChordLookup::owner_of(std::uint64_t key) const {
  P2PS_REQUIRE_MSG(!nodes_.empty(), "lookup on an empty ring");
  return nodes_[owner_index(key)].info;
}

CandidateInfo ChordLookup::route(std::uint64_t from_key, std::uint64_t key) {
  P2PS_REQUIRE_MSG(!nodes_.empty(), "lookup on an empty ring");
  const std::uint64_t target_pos = nodes_[owner_index(key)].pos;

  std::uint64_t current = nodes_[owner_index(from_key)].pos;
  std::uint64_t hops = 0;
  while (current != target_pos) {
    // Greedy: follow the longest finger that does not overshoot the target.
    std::uint64_t best = current;
    std::uint64_t best_advance = 0;
    for (int i = kBits - 1; i >= 0; --i) {
      const std::uint64_t fpos = nodes_[owner_index(finger_target(current, i))].pos;
      if (fpos == current) continue;
      const std::uint64_t advance = clockwise(current, fpos);
      if (advance <= clockwise(current, target_pos) && advance > best_advance) {
        best = fpos;
        best_advance = advance;
        break;  // fingers are sorted by span; the first fit is the longest
      }
    }
    if (best == current) {
      // No finger strictly precedes the target: the successor owns it.
      std::size_t next = lower_index(current + 1);
      if (next == nodes_.size()) next = 0;
      best = nodes_[next].pos;
    }
    current = best;
    ++hops;
    P2PS_CHECK_MSG(hops <= 2 * static_cast<std::uint64_t>(kBits) + nodes_.size(),
                   "chord routing failed to converge");
  }
  ++stats_.lookups;
  stats_.total_hops += hops;
  stats_.max_hops = std::max(stats_.max_hops, hops);
  return nodes_[owner_index(target_pos)].info;
}

void ChordLookup::candidates_into(std::vector<CandidateInfo>& out, std::size_t m,
                                  util::Rng& rng, core::PeerId exclude) {
  out.clear();
  if (nodes_.empty() || m == 0) return;

  const std::size_t distinct_available = nodes_.size() - (contains(exclude) ? 1 : 0);
  const std::size_t want = std::min(m, distinct_available);
  if (want == 0) return;

  std::vector<core::PeerId>& seen = scratch_seen_;
  seen.clear();
  // Random keys resolved via routed lookups, as a real requester would.
  // Bounded retries handle owner collisions on small rings.
  const std::size_t max_tries = 16 * want + 64;
  for (std::size_t tries = 0; out.size() < want && tries < max_tries; ++tries) {
    const std::uint64_t key = rng();
    const CandidateInfo candidate = route(rng(), key);
    if (candidate.id == exclude) continue;
    if (std::find(seen.begin(), seen.end(), candidate.id) != seen.end()) continue;
    seen.push_back(candidate.id);
    out.push_back(candidate);
  }
  // Deterministic fallback: sweep the ring from a random point to fill any
  // remainder (tiny rings with highly uneven arcs).
  if (out.size() < want) {
    std::size_t index = lower_index(rng());
    for (std::size_t steps = 0; steps < nodes_.size() && out.size() < want; ++steps) {
      if (index == nodes_.size()) index = 0;
      const CandidateInfo& candidate = nodes_[index].info;
      if (candidate.id != exclude &&
          std::find(seen.begin(), seen.end(), candidate.id) == seen.end()) {
        seen.push_back(candidate.id);
        out.push_back(candidate);
      }
      ++index;
    }
  }
}

}  // namespace p2ps::lookup
