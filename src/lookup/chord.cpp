#include "lookup/chord.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace p2ps::lookup {

std::uint64_t ChordLookup::ring_position(core::PeerId id) {
  std::uint64_t state = id.value() ^ 0xA5A5A5A55A5A5A5AULL;
  return util::splitmix64(state);
}

void ChordLookup::register_supplier(core::PeerId id, core::PeerClass cls) {
  P2PS_REQUIRE(id.valid());
  P2PS_REQUIRE_MSG(!pos_.contains(id), "supplier already registered");
  std::uint64_t position = ring_position(id);
  // Linear probing on the (sparse) ring resolves the astronomically rare
  // position collision deterministically.
  while (ring_.contains(position)) ++position;
  pos_.emplace(id, position);
  ring_.emplace(position, CandidateInfo{id, cls});
}

void ChordLookup::deregister_supplier(core::PeerId id) {
  auto it = pos_.find(id);
  P2PS_REQUIRE_MSG(it != pos_.end(), "supplier not registered");
  ring_.erase(it->second);
  pos_.erase(it);
}

bool ChordLookup::contains(core::PeerId id) const { return pos_.contains(id); }

std::size_t ChordLookup::supplier_count() const { return ring_.size(); }

CandidateInfo ChordLookup::owner_of(std::uint64_t key) const {
  P2PS_REQUIRE_MSG(!ring_.empty(), "lookup on an empty ring");
  auto it = ring_.lower_bound(key);
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

CandidateInfo ChordLookup::route(std::uint64_t from_key, std::uint64_t key) {
  P2PS_REQUIRE_MSG(!ring_.empty(), "lookup on an empty ring");
  const std::uint64_t target_pos = pos_.at(owner_of(key).id);

  std::uint64_t current = pos_.at(owner_of(from_key).id);
  std::uint64_t hops = 0;
  while (current != target_pos) {
    // Greedy: follow the longest finger that does not overshoot the target.
    std::uint64_t best = current;
    std::uint64_t best_advance = 0;
    for (int i = kBits - 1; i >= 0; --i) {
      const std::uint64_t fpos = pos_.at(owner_of(finger_target(current, i)).id);
      if (fpos == current) continue;
      const std::uint64_t advance = clockwise(current, fpos);
      if (advance <= clockwise(current, target_pos) && advance > best_advance) {
        best = fpos;
        best_advance = advance;
        break;  // fingers are sorted by span; the first fit is the longest
      }
    }
    if (best == current) {
      // No finger strictly precedes the target: the successor owns it.
      auto it = ring_.upper_bound(current);
      if (it == ring_.end()) it = ring_.begin();
      best = it->first;
    }
    current = best;
    ++hops;
    P2PS_CHECK_MSG(hops <= 2 * static_cast<std::uint64_t>(kBits) + ring_.size(),
                   "chord routing failed to converge");
  }
  ++stats_.lookups;
  stats_.total_hops += hops;
  stats_.max_hops = std::max(stats_.max_hops, hops);
  return ring_.at(target_pos);
}

void ChordLookup::candidates_into(std::vector<CandidateInfo>& out, std::size_t m,
                                  util::Rng& rng, core::PeerId exclude) {
  out.clear();
  if (ring_.empty() || m == 0) return;

  const std::size_t distinct_available = ring_.size() - (pos_.contains(exclude) ? 1 : 0);
  const std::size_t want = std::min(m, distinct_available);
  if (want == 0) return;

  std::vector<core::PeerId>& seen = scratch_seen_;
  seen.clear();
  // Random keys resolved via routed lookups, as a real requester would.
  // Bounded retries handle owner collisions on small rings.
  const std::size_t max_tries = 16 * want + 64;
  for (std::size_t tries = 0; out.size() < want && tries < max_tries; ++tries) {
    const std::uint64_t key = rng();
    const CandidateInfo candidate = route(rng(), key);
    if (candidate.id == exclude) continue;
    if (std::find(seen.begin(), seen.end(), candidate.id) != seen.end()) continue;
    seen.push_back(candidate.id);
    out.push_back(candidate);
  }
  // Deterministic fallback: sweep the ring from a random point to fill any
  // remainder (tiny rings with highly uneven arcs).
  if (out.size() < want) {
    auto it = ring_.lower_bound(rng());
    for (std::size_t steps = 0; steps < ring_.size() && out.size() < want; ++steps) {
      if (it == ring_.end()) it = ring_.begin();
      const CandidateInfo& candidate = it->second;
      if (candidate.id != exclude &&
          std::find(seen.begin(), seen.end(), candidate.id) == seen.end()) {
        seen.push_back(candidate.id);
        out.push_back(candidate);
      }
      ++it;
    }
  }
}

}  // namespace p2ps::lookup
